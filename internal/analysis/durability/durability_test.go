package durability_test

import (
	"strings"
	"testing"

	"failtrans/internal/analysis/analysistest"
	"failtrans/internal/analysis/durability"
)

// TestDurability runs the pass over the dur fixture with dur/store in the
// strict set, covering every discard shape (statement, defer, go, blank
// assign), the write-path Close heuristic and its read-only counterexample,
// os.Rename, strict-package calls, and a reasoned errok suppression.
func TestDurability(t *testing.T) {
	analysistest.Run(t, "testdata/src", durability.New("dur/store"), "dur")
}

// TestDurabilityWithoutStrictSet re-runs the fixture with no strict
// packages: the store.Commit finding must disappear while the rest stay.
func TestDurabilityWithoutStrictSet(t *testing.T) {
	res := analysistest.Load(t, "testdata/src", durability.New(), "dur")
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "Commit") {
			t.Errorf("%s: strict-set finding reported without a strict set: %s",
				res.Fset.Position(d.Pos), d.Message)
		}
	}
	if len(res.Diags) != 7 {
		t.Errorf("got %d diagnostics without strict set, want 7", len(res.Diags))
	}
}
