package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// FlowIDBase offsets tracer-generated flow ids (2PC coordination arrows)
// into a range disjoint from message ids, which the simulator assigns from
// 1 upward and which the send→receive arrows use directly.
const FlowIDBase = int64(1) << 40

// Tracer buffers causal spans over virtual time and serializes them as
// Chrome trace-event JSON (the format chrome://tracing, Perfetto and
// speedscope ingest). One track (tid) per simulated process; spans for
// commits, rollbacks, re-execution windows, 2PC rounds and kernel fault
// windows; flow arrows for happens-before edges (send→receive,
// coordinator→member).
//
// Events are buffered in execution order and written in that order, so a
// seeded run reproduces the trace file byte for byte.
type Tracer struct {
	events     []traceEvent
	trackNames map[int]string
	flowSeq    int64
}

// traceEvent is one buffered Chrome trace event. ts/dur are virtual time.
type traceEvent struct {
	name string
	cat  string
	ph   byte // 'X' span, 'B'/'E' window, 'i' instant, 's'/'f' flow
	tid  int
	ts   time.Duration
	dur  time.Duration
	id   int64 // flow id, meaningful for 's'/'f'
	// One optional string arg and one optional integer arg.
	argKey  string
	argVal  string
	argIKey string
	argIVal int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{trackNames: make(map[int]string)}
}

// SetTrackName labels process tid's track (shown as the thread name).
func (t *Tracer) SetTrackName(tid int, name string) { t.trackNames[tid] = name }

// NewFlowID allocates a flow id outside the message-id range.
func (t *Tracer) NewFlowID() int64 {
	t.flowSeq++
	return FlowIDBase + t.flowSeq
}

// Span records a complete span [start, start+dur) on process tid's track.
func (t *Tracer) Span(tid int, cat, name string, start, dur time.Duration) {
	t.events = append(t.events, traceEvent{name: name, cat: cat, ph: 'X', tid: tid, ts: start, dur: dur})
}

// SpanArgs is Span with one string and one integer argument attached.
func (t *Tracer) SpanArgs(tid int, cat, name string, start, dur time.Duration, key, val string, ikey string, ival int64) {
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'X', tid: tid, ts: start, dur: dur,
		argKey: key, argVal: val, argIKey: ikey, argIVal: ival,
	})
}

// Begin opens a window on tid's track; End closes the innermost open one.
func (t *Tracer) Begin(tid int, cat, name string, ts time.Duration) {
	t.events = append(t.events, traceEvent{name: name, cat: cat, ph: 'B', tid: tid, ts: ts})
}

// End closes the window opened by the matching Begin on tid's track.
func (t *Tracer) End(tid int, ts time.Duration) {
	t.events = append(t.events, traceEvent{ph: 'E', tid: tid, ts: ts})
}

// Instant records a point event on tid's track.
func (t *Tracer) Instant(tid int, cat, name string, ts time.Duration) {
	t.events = append(t.events, traceEvent{name: name, cat: cat, ph: 'i', tid: tid, ts: ts})
}

// FlowStart opens flow arrow id at ts on tid's track. The arrow binds to
// the slice enclosing ts, so emit the enclosing Span first.
func (t *Tracer) FlowStart(tid int, cat, name string, id int64, ts time.Duration) {
	t.events = append(t.events, traceEvent{name: name, cat: cat, ph: 's', tid: tid, ts: ts, id: id})
}

// FlowEnd terminates flow arrow id at ts on tid's track.
func (t *Tracer) FlowEnd(tid int, cat, name string, id int64, ts time.Duration) {
	t.events = append(t.events, traceEvent{name: name, cat: cat, ph: 'f', tid: tid, ts: ts, id: id})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int { return len(t.events) }

// usec renders a virtual-time duration as Chrome's microsecond timestamp
// with nanosecond precision, deterministically.
func usec(d time.Duration) string {
	ns := int64(d)
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteJSON serializes the buffered trace: metadata first (process name,
// per-track thread names sorted by tid), then every event in buffered
// order. The output is a single JSON object Perfetto opens directly.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"failtrans\"}}")
	tids := make([]int, 0, len(t.trackNames))
	for tid := range t.trackNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}",
			tid, strconv.Quote(t.trackNames[tid]))
	}
	for i := range t.events {
		e := &t.events[i]
		bw.WriteString(",\n{")
		if e.ph != 'E' {
			fmt.Fprintf(bw, "\"name\":%s,\"cat\":%s,", strconv.Quote(e.name), strconv.Quote(e.cat))
		}
		fmt.Fprintf(bw, "\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%s", e.ph, e.tid, usec(e.ts))
		switch e.ph {
		case 'X':
			fmt.Fprintf(bw, ",\"dur\":%s", usec(e.dur))
		case 's', 'f':
			fmt.Fprintf(bw, ",\"id\":%d", e.id)
			if e.ph == 'f' {
				bw.WriteString(",\"bp\":\"e\"")
			}
		case 'i':
			bw.WriteString(",\"s\":\"t\"")
		}
		if e.argKey != "" || e.argIKey != "" {
			bw.WriteString(",\"args\":{")
			first := true
			if e.argKey != "" {
				fmt.Fprintf(bw, "%s:%s", strconv.Quote(e.argKey), strconv.Quote(e.argVal))
				first = false
			}
			if e.argIKey != "" {
				if !first {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%s:%d", strconv.Quote(e.argIKey), e.argIVal)
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
