package event

import (
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Internal: "internal",
		Visible:  "visible",
		Send:     "send",
		Receive:  "receive",
		Commit:   "commit",
		Crash:    "crash",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNDClassString(t *testing.T) {
	cases := map[NDClass]string{
		Deterministic: "det",
		TransientND:   "transient-nd",
		FixedND:       "fixed-nd",
		NDClass(7):    "NDClass(7)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("NDClass(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestIDString(t *testing.T) {
	id := ID{P: 2, I: 5}
	if got := id.String(); got != "e_2^5" {
		t.Errorf("ID.String() = %q, want e_2^5", got)
	}
}

func TestEffectivelyND(t *testing.T) {
	cases := []struct {
		e    Event
		want bool
	}{
		{Event{ND: Deterministic}, false},
		{Event{ND: TransientND}, true},
		{Event{ND: FixedND}, true},
		{Event{ND: TransientND, Logged: true}, false},
		{Event{ND: FixedND, Logged: true}, false},
		{Event{ND: Deterministic, Logged: true}, false},
	}
	for _, c := range cases {
		if got := c.e.EffectivelyND(); got != c.want {
			t.Errorf("EffectivelyND(%+v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{ID: ID{P: 0, I: 3}, Kind: Receive, ND: TransientND, Logged: true, Msg: 42, Peer: 1, Label: "recv"}
	got := e.String()
	want := "e_0^3 receive transient-nd logged msg=42 peer=1 (recv)"
	if got != want {
		t.Errorf("Event.String() = %q, want %q", got, want)
	}
}

func TestTraceAppendAssignsIndexes(t *testing.T) {
	tr := NewTrace(2)
	e1 := tr.MustAppend(Event{ID: ID{P: 0, I: -1}})
	e2 := tr.MustAppend(Event{ID: ID{P: 0, I: -1}})
	e3 := tr.MustAppend(Event{ID: ID{P: 1, I: -1}})
	if e1.ID.I != 0 || e2.ID.I != 1 || e3.ID.I != 0 {
		t.Errorf("assigned indexes = %d,%d,%d, want 0,1,0", e1.ID.I, e2.ID.I, e3.ID.I)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestTraceAppendRejectsBadProcess(t *testing.T) {
	tr := NewTrace(1)
	if _, err := tr.Append(Event{ID: ID{P: 1, I: -1}}); err == nil {
		t.Error("Append with out-of-range process succeeded, want error")
	}
	if _, err := tr.Append(Event{ID: ID{P: -1, I: -1}}); err == nil {
		t.Error("Append with negative process succeeded, want error")
	}
}

func TestTraceAppendRejectsOutOfOrder(t *testing.T) {
	tr := NewTrace(1)
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}})
	if _, err := tr.Append(Event{ID: ID{P: 0, I: 5}}); err == nil {
		t.Error("Append with skipped index succeeded, want error")
	}
}

func TestByProcess(t *testing.T) {
	tr := NewTrace(2)
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}, Label: "a"})
	tr.MustAppend(Event{ID: ID{P: 1, I: -1}, Label: "b"})
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}, Label: "c"})
	evs := tr.ByProcess(0)
	if len(evs) != 2 || evs[0].Label != "a" || evs[1].Label != "c" {
		t.Errorf("ByProcess(0) = %v", evs)
	}
}

// buildMessageTrace builds the paper's Figure 2 computation: B executes an
// ND event, sends to A, A commits. A is then an orphan of B's lost ND event.
func buildMessageTrace() *Trace {
	tr := NewTrace(2)
	tr.MustAppend(Event{ID: ID{P: 1, I: -1}, Kind: Internal, ND: TransientND, Label: "ND"})
	tr.MustAppend(Event{ID: ID{P: 1, I: -1}, Kind: Send, Msg: 1, Peer: 0})
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}, Kind: Receive, Msg: 1, Peer: 1})
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}, Kind: Commit})
	return tr
}

func TestHappensBeforeProgramOrder(t *testing.T) {
	tr := buildMessageTrace()
	hb := NewHB(tr)
	if !hb.HappensBefore(ID{P: 1, I: 0}, ID{P: 1, I: 1}) {
		t.Error("program order: e_1^0 should happen-before e_1^1")
	}
	if hb.HappensBefore(ID{P: 1, I: 1}, ID{P: 1, I: 0}) {
		t.Error("program order must not be symmetric")
	}
	if hb.HappensBefore(ID{P: 0, I: 0}, ID{P: 0, I: 0}) {
		t.Error("happens-before must be irreflexive")
	}
}

func TestHappensBeforeAcrossMessage(t *testing.T) {
	tr := buildMessageTrace()
	hb := NewHB(tr)
	// B's ND event causally precedes A's commit through the message.
	if !hb.CausallyPrecedes(ID{P: 1, I: 0}, ID{P: 0, I: 1}) {
		t.Error("B's ND event should causally precede A's commit")
	}
	if !hb.HappensBefore(ID{P: 1, I: 1}, ID{P: 0, I: 0}) {
		t.Error("send should happen-before matching receive")
	}
	if hb.HappensBefore(ID{P: 0, I: 1}, ID{P: 1, I: 0}) {
		t.Error("A's commit must not precede B's earlier event")
	}
}

func TestHappensBeforeConcurrent(t *testing.T) {
	tr := NewTrace(2)
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}})
	tr.MustAppend(Event{ID: ID{P: 1, I: -1}})
	hb := NewHB(tr)
	a, b := ID{P: 0, I: 0}, ID{P: 1, I: 0}
	if hb.HappensBefore(a, b) || hb.HappensBefore(b, a) {
		t.Error("events with no message path must be concurrent")
	}
	ca, _ := hb.Clock(a)
	cb, _ := hb.Clock(b)
	if !ca.Concurrent(cb) {
		t.Error("clocks of independent events should be Concurrent")
	}
}

func TestHappensBeforeUnknownEvents(t *testing.T) {
	tr := buildMessageTrace()
	hb := NewHB(tr)
	if hb.HappensBefore(ID{P: 0, I: 99}, ID{P: 0, I: 0}) {
		t.Error("unknown event must relate to nothing")
	}
	if _, ok := hb.Clock(ID{P: 5, I: 0}); ok {
		t.Error("Clock of unknown event should report !ok")
	}
}

func TestUnmatchedReceiveMergesNothing(t *testing.T) {
	tr := NewTrace(2)
	tr.MustAppend(Event{ID: ID{P: 0, I: -1}})
	// Receive with a message id that was never sent inside the trace.
	tr.MustAppend(Event{ID: ID{P: 1, I: -1}, Kind: Receive, Msg: 77})
	hb := NewHB(tr)
	if hb.HappensBefore(ID{P: 0, I: 0}, ID{P: 1, I: 0}) {
		t.Error("unmatched receive must not inherit other processes' history")
	}
}

func TestCausalPast(t *testing.T) {
	tr := buildMessageTrace()
	hb := NewHB(tr)
	past := hb.CausalPast(ID{P: 0, I: 1})
	want := map[ID]bool{{P: 1, I: 0}: true, {P: 1, I: 1}: true, {P: 0, I: 0}: true}
	if len(past) != len(want) {
		t.Fatalf("CausalPast = %v, want 3 events", past)
	}
	for _, id := range past {
		if !want[id] {
			t.Errorf("unexpected event %v in causal past", id)
		}
	}
}

func TestCausalPastUnknown(t *testing.T) {
	tr := buildMessageTrace()
	hb := NewHB(tr)
	if past := hb.CausalPast(ID{P: 9, I: 9}); past != nil {
		t.Errorf("CausalPast of unknown event = %v, want nil", past)
	}
}
