// Package postgres reimplements the paper's fault-study database workload:
// a small relational storage engine in the style of PostgreSQL's storage
// layer — checksummed slotted heap pages on a simulated disk, an LRU buffer
// pool that reads and writes them through kernel syscalls, and a B-tree
// index from keys to record IDs — driven by a scripted query stream.
//
// SELECT and SCAN results are visible events; the query stream is fixed-ND
// user input; syscall traffic comes from buffer-pool misses and write-backs
// (an order of magnitude less than nvi's per-keystroke traffic, as the
// paper observes). Fault points in tuple insertion and page management
// implement the seven Table 1 fault types.
package postgres

import (
	"encoding/binary"
	"fmt"

	"failtrans/internal/apps/apputil"
)

// PageSize is the heap page size (PostgreSQL's 8 KB).
const PageSize = 8192

// Page header layout (little endian):
//
//	[0:4)   page id
//	[4:6)   slot count
//	[6:8)   lower free boundary (end of slot array)
//	[8:10)  upper free boundary (start of tuple data)
//	[10:14) CRC32 over the rest of the page
const (
	offPageID = 0
	offNSlots = 4
	offLower  = 6
	offUpper  = 8
	offCRC    = 10
	headerLen = 14
	slotLen   = 4
)

// Page is one slotted heap page.
type Page struct {
	Data  [PageSize]byte
	Dirty bool
}

// NewPage formats an empty page with the given id.
func NewPage(id uint32) *Page {
	p := &Page{}
	binary.LittleEndian.PutUint32(p.Data[offPageID:], id)
	p.setNSlots(0)
	p.setLower(headerLen)
	p.setUpper(PageSize)
	p.UpdateCRC()
	return p
}

// ID returns the page id.
func (p *Page) ID() uint32 { return binary.LittleEndian.Uint32(p.Data[offPageID:]) }

// maxSlots is the most slot entries that physically fit on a page.
const maxSlots = (PageSize - headerLen) / slotLen

// NSlots returns the slot count, bounded by what can physically fit — a
// corrupted header must not send readers outside the page.
func (p *Page) NSlots() int {
	n := int(binary.LittleEndian.Uint16(p.Data[offNSlots:]))
	if n > maxSlots {
		return maxSlots
	}
	return n
}

func (p *Page) setNSlots(n int) { binary.LittleEndian.PutUint16(p.Data[offNSlots:], uint16(n)) }

func (p *Page) lower() int     { return int(binary.LittleEndian.Uint16(p.Data[offLower:])) }
func (p *Page) setLower(v int) { binary.LittleEndian.PutUint16(p.Data[offLower:], uint16(v)) }
func (p *Page) upper() int     { return int(binary.LittleEndian.Uint16(p.Data[offUpper:])) }
func (p *Page) setUpper(v int) { binary.LittleEndian.PutUint16(p.Data[offUpper:], uint16(v)) }

// FreeSpace returns the bytes available for one more tuple (including its
// slot entry).
func (p *Page) FreeSpace() int {
	free := p.upper() - p.lower() - slotLen
	if free < 0 {
		return 0
	}
	return free
}

// slot returns the offset/length of slot i (zeros for a slot outside the
// physical slot area).
func (p *Page) slot(i int) (off, ln int) {
	base := headerLen + i*slotLen
	if i < 0 || base+slotLen > PageSize {
		return 0, 0
	}
	return int(binary.LittleEndian.Uint16(p.Data[base:])), int(binary.LittleEndian.Uint16(p.Data[base+2:]))
}

func (p *Page) setSlot(i, off, ln int) {
	base := headerLen + i*slotLen
	binary.LittleEndian.PutUint16(p.Data[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(ln))
}

// Insert places a tuple on the page and returns its slot number.
func (p *Page) Insert(tuple []byte) (int, error) {
	if len(tuple) > p.FreeSpace() {
		return 0, fmt.Errorf("postgres: page %d full (%d free, %d needed)", p.ID(), p.FreeSpace(), len(tuple))
	}
	slot := p.NSlots()
	off := p.upper() - len(tuple)
	copy(p.Data[off:], tuple)
	p.setSlot(slot, off, len(tuple))
	p.setNSlots(slot + 1)
	p.setLower(headerLen + (slot+1)*slotLen)
	p.setUpper(off)
	p.Dirty = true
	p.UpdateCRC()
	return slot, nil
}

// Read returns the tuple in slot i (nil if deleted).
func (p *Page) Read(i int) ([]byte, error) {
	if i < 0 || i >= p.NSlots() {
		return nil, fmt.Errorf("postgres: page %d slot %d out of range (%d slots)", p.ID(), i, p.NSlots())
	}
	off, ln := p.slot(i)
	if ln == 0 {
		return nil, nil // deleted
	}
	if off < headerLen || off+ln > PageSize {
		return nil, fmt.Errorf("postgres: page %d slot %d points outside page (%d+%d)", p.ID(), i, off, ln)
	}
	out := make([]byte, ln)
	copy(out, p.Data[off:off+ln])
	return out, nil
}

// Delete marks slot i dead (space is not reclaimed; VACUUM is out of
// scope).
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.NSlots() {
		return fmt.Errorf("postgres: delete slot %d out of range", i)
	}
	off, _ := p.slot(i)
	p.setSlot(i, off, 0)
	p.Dirty = true
	p.UpdateCRC()
	return nil
}

// Overwrite replaces the tuple in slot i in place when the new tuple fits
// the old length; otherwise it reports false and the caller re-inserts.
func (p *Page) Overwrite(i int, tuple []byte) (bool, error) {
	if i < 0 || i >= p.NSlots() {
		return false, fmt.Errorf("postgres: overwrite slot %d out of range", i)
	}
	off, ln := p.slot(i)
	if len(tuple) > ln {
		return false, nil
	}
	copy(p.Data[off:off+len(tuple)], tuple)
	p.setSlot(i, off, len(tuple))
	p.Dirty = true
	p.UpdateCRC()
	return true, nil
}

// UpdateCRC recomputes the page checksum.
func (p *Page) UpdateCRC() {
	binary.LittleEndian.PutUint32(p.Data[offCRC:], p.computeCRC())
}

func (p *Page) computeCRC() uint32 {
	return apputil.Checksum(p.Data[:offCRC], p.Data[offCRC+4:])
}

// VerifyCRC reports whether the stored checksum matches the contents.
func (p *Page) VerifyCRC() bool {
	return binary.LittleEndian.Uint32(p.Data[offCRC:]) == p.computeCRC()
}

// Tuple codec: [key int64][len uint16][value].

// EncodeTuple serializes a key/value pair.
func EncodeTuple(key int64, value []byte) []byte {
	out := make([]byte, 10+len(value))
	binary.LittleEndian.PutUint64(out[0:8], uint64(key))
	binary.LittleEndian.PutUint16(out[8:10], uint16(len(value)))
	copy(out[10:], value)
	return out
}

// DecodeTuple parses a serialized tuple.
func DecodeTuple(t []byte) (key int64, value []byte, err error) {
	if len(t) < 10 {
		return 0, nil, fmt.Errorf("postgres: tuple too short (%d bytes)", len(t))
	}
	key = int64(binary.LittleEndian.Uint64(t[0:8]))
	n := int(binary.LittleEndian.Uint16(t[8:10]))
	if 10+n > len(t) {
		return 0, nil, fmt.Errorf("postgres: tuple length %d overruns %d bytes", n, len(t))
	}
	return key, append([]byte(nil), t[10:10+n]...), nil
}

// Compact rewrites the page without its dead slots and tuples, reclaiming
// the space deletes left behind (VACUUM). It returns the slot renumbering
// (old slot -> new slot) so the caller can fix index entries. An error
// means the page was corrupt (its slots claim more bytes than fit).
func (p *Page) Compact() (map[uint16]uint16, error) {
	type live struct {
		oldSlot int
		data    []byte
	}
	var tuples []live
	for i := 0; i < p.NSlots(); i++ {
		off, ln := p.slot(i)
		if ln == 0 || off < headerLen || off+ln > PageSize {
			// Dead — or corrupt, which compaction must not chase
			// outside the page.
			continue
		}
		data := make([]byte, ln)
		copy(data, p.Data[off:off+ln])
		tuples = append(tuples, live{oldSlot: i, data: data})
	}
	// Re-initialize the page body.
	id := p.ID()
	for i := headerLen; i < PageSize; i++ {
		p.Data[i] = 0
	}
	binary.LittleEndian.PutUint32(p.Data[offPageID:], id)
	p.setNSlots(0)
	p.setLower(headerLen)
	p.setUpper(PageSize)
	remap := make(map[uint16]uint16, len(tuples))
	for _, t := range tuples {
		slot, err := p.Insert(t.data)
		if err != nil {
			// Valid pages always fit their own live tuples; this is
			// slot-directory corruption.
			return nil, fmt.Errorf("postgres: compaction overflow (corrupt slots): %w", err)
		}
		remap[uint16(t.oldSlot)] = uint16(slot)
	}
	p.Dirty = true
	p.UpdateCRC()
	return remap, nil
}

// LiveTuples counts non-deleted slots.
func (p *Page) LiveTuples() int {
	n := 0
	for i := 0; i < p.NSlots(); i++ {
		if _, ln := p.slot(i); ln != 0 {
			n++
		}
	}
	return n
}
