// Package chaos is the integration gauntlet: every workload application
// runs under every measured protocol while randomized stop failures strike
// arbitrary processes at arbitrary points. Each run must complete, and its
// observable outcome must match the failure-free run under the paper's
// consistent-recovery equivalence — failure transparency, verified end to
// end across the whole stack.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"failtrans/internal/apps/magic"
	"failtrans/internal/apps/nvi"
	"failtrans/internal/apps/postgres"
	"failtrans/internal/apps/treadmarks"
	"failtrans/internal/apps/xpilot"
	"failtrans/internal/dc"
	"failtrans/internal/faults"
	"failtrans/internal/kernel"
	"failtrans/internal/obs"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// scenario describes one application's chaos configuration.
type scenario struct {
	name  string
	build func() *sim.World
	// outcome extracts the observable result to compare across runs.
	// For single-process interactive apps this is the visible output
	// (compared with duplicates-allowed equivalence); for others it is
	// an app-specific digest that must match exactly.
	outcome func(w *sim.World) []string
	// digestExact requires exact equality instead of the visible
	// equivalence (used when outputs are digests, not event streams).
	digestExact bool
	maxSteps    int
}

func kernelWorld(seed int64, progs ...sim.Program) *sim.World {
	w := sim.NewWorld(seed, progs...)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	return w
}

func scenarios() []scenario {
	return []scenario{
		{
			name: "nvi",
			build: func() *sim.World {
				e := nvi.New("doc.txt", faults.NviInitial())
				e.ThinkTime = 0
				w := kernelWorld(1, e)
				w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(3, 250))
				return w
			},
			outcome: func(w *sim.World) []string {
				e := w.Procs[0].Prog.(*nvi.Editor)
				k := w.OS.(*kernel.Kernel)
				file, _ := k.ReadFile(0, "doc.txt")
				return []string{strings.Join(e.Contents(), "\n"), string(file)}
			},
			digestExact: true,
			maxSteps:    500_000,
		},
		{
			name: "magic",
			build: func() *sim.World {
				l := magic.New("m1", "m2", "poly")
				l.ThinkTime = 0
				w := kernelWorld(2, l)
				var cmds []string
				for i := 0; i < 25; i++ {
					cmds = append(cmds, fmt.Sprintf("paint m1 %d %d 10 8", i*7%200, i*13%150))
					if i%5 == 4 {
						cmds = append(cmds, "area m1", "drc m1")
					}
				}
				cmds = append(cmds, "quit")
				w.Procs[0].Ctx().Inputs = magic.Script(cmds)
				return w
			},
			outcome: func(w *sim.World) []string {
				l := w.Procs[0].Prog.(*magic.Layout)
				return []string{fmt.Sprintf("tiles=%d", l.TotalTiles())}
			},
			digestExact: true,
			maxSteps:    500_000,
		},
		{
			name: "postgres",
			build: func() *sim.World {
				db := postgres.New("t.dat")
				w := kernelWorld(3, db)
				w.Procs[0].Ctx().Inputs = postgres.Script(faults.PostgresSession(5, 150))
				return w
			},
			outcome: func(w *sim.World) []string {
				return w.Outputs[0] // query results: the visible stream
			},
			maxSteps: 500_000,
		},
		{
			name: "xpilot",
			build: func() *sim.World {
				w := kernelWorld(4, xpilot.Fleet(25)...)
				for i := 1; i <= 3; i++ {
					w.Procs[i].Ctx().Inputs = xpilot.KeyScript(strings.Repeat("w ad", 10))
				}
				return w
			},
			outcome: func(w *sim.World) []string {
				srv := w.Procs[0].Prog.(*xpilot.Server)
				out := []string{fmt.Sprintf("tick=%d", srv.Tick)}
				for _, s := range srv.Ships {
					out = append(out, fmt.Sprintf("ship(%d,%d,s%d,d%d)", s.X, s.Y, s.Score, s.Deaths))
				}
				return out
			},
			digestExact: true,
			maxSteps:    2_000_000,
		},
		{
			name: "treadmarks",
			build: func() *sim.World {
				progs, err := treadmarks.Fleet(4, 72, 3)
				if err != nil {
					panic(err)
				}
				return sim.NewWorld(5, progs...)
			},
			outcome: func(w *sim.World) []string {
				var out []string
				for pi := 0; pi < 4; pi++ {
					tm := w.Procs[pi].Prog.(*treadmarks.TM)
					for i, b := range tm.FinalBodies() {
						out = append(out, fmt.Sprintf("%d:%x:%x:%x", tm.Lo+i, b.X, b.Y, b.Z))
					}
				}
				return out
			},
			digestExact: true,
			maxSteps:    5_000_000,
		},
	}
}

// TestChaos is the gauntlet: for each app × measured protocol, run several
// randomized stop schedules and verify the outcome against the clean run.
func TestChaos(t *testing.T) {
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Failure-free reference.
			clean := sc.build()
			clean.RecordTrace = false
			clean.MaxSteps = sc.maxSteps
			if err := clean.Run(); err != nil {
				t.Fatal(err)
			}
			if !clean.AllDone() {
				t.Fatal("clean run did not finish")
			}
			want := sc.outcome(clean)

			for _, pol := range protocol.Measured() {
				pol := pol
				t.Run(pol.Name, func(t *testing.T) {
					for round := 0; round < rounds; round++ {
						r := rand.New(rand.NewSource(int64(round)*977 + 13))
						w := sc.build()
						w.RecordTrace = false
						w.MaxSteps = sc.maxSteps
						d := dc.New(w, pol, stablestore.Rio)
						if err := d.Attach(); err != nil {
							t.Fatal(err)
						}
						// One to three stop failures on random
						// processes at random points.
						nStops := 1 + r.Intn(3)
						var plan []string
						for s := 0; s < nStops; s++ {
							victim := r.Intn(len(w.Procs))
							at := 5 + r.Intn(150)
							w.ScheduleStop(victim, at)
							plan = append(plan, fmt.Sprintf("%d@%d", victim, at))
						}
						if err := w.Run(); err != nil {
							t.Fatalf("round %d (%v): %v", round, plan, err)
						}
						if !w.AllDone() {
							t.Fatalf("round %d (%v): did not finish", round, plan)
						}
						got := sc.outcome(w)
						if sc.digestExact {
							if strings.Join(got, "|") != strings.Join(want, "|") {
								t.Errorf("round %d (%v): outcome diverged\n got: %.200v\nwant: %.200v", round, plan, got, want)
							}
						} else {
							if eq, complete := recovery.Equivalent(got, want); !eq || !complete {
								t.Errorf("round %d (%v): output not consistent (eq=%v complete=%v)", round, plan, eq, complete)
							}
						}
					}
				})
			}
		})
	}
}

// TestChaosObservability runs one instrumented gauntlet round end to end —
// the nvi editor under CPVS with stop failures and a kernel fault window —
// and checks that the observability layer saw the whole story: crash and
// fault metrics accumulated, rollbacks were measured, and the exported
// trace is valid Chrome trace-event JSON with the promised shapes.
func TestChaosObservability(t *testing.T) {
	e := nvi.New("doc.txt", faults.NviInitial())
	e.ThinkTime = 0
	e.RecoveryFile = true
	w := kernelWorld(1, e)
	w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(3, 200))
	w.RecordTrace = false
	w.MaxSteps = 2_000_000
	m, tr := w.EnableObs(true)
	k := w.OS.(*kernel.Kernel)
	d := dc.New(w, protocol.CPVS, stablestore.Rio)
	crashes := 0
	d.RecoveryHook = func(p *sim.Proc, reason string) {
		crashes++
		if crashes > 4 {
			d.DisableRecovery = true
		}
	}
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	w.ScheduleStop(0, 40)
	injected := false
	injectAt := 5 * time.Millisecond
	for {
		more, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if !injected && w.Clock >= injectAt {
			injected = true
			k.InjectFault(0, 2*time.Millisecond)
		}
	}
	if !w.AllDone() && !w.Procs[0].Dead() {
		t.Fatal("instrumented run hung (neither done nor abandoned)")
	}

	pm := &m.Procs[0]
	if pm.Crashes == 0 {
		t.Error("metrics recorded no crashes despite a scheduled stop")
	}
	if pm.Rollbacks == 0 || pm.RollbackDepth.Count != pm.Rollbacks {
		t.Errorf("rollback metrics inconsistent: rollbacks=%d depth count=%d",
			pm.Rollbacks, pm.RollbackDepth.Count)
	}
	if pm.Commits == 0 || pm.CommitBytes == 0 {
		t.Errorf("commit metrics empty: commits=%d bytes=%d", pm.Commits, pm.CommitBytes)
	}
	if m.FaultWindows == 0 {
		t.Error("kernel fault window was injected but not counted")
	}
	if pm.Syscalls == 0 || len(m.SyscallByName) == 0 {
		t.Error("kernel syscall metrics empty under a syscall-heavy workload")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tracks, spans, fs, fe, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("gauntlet trace is not valid Chrome trace JSON: %v", err)
	}
	if tracks < 1 || spans == 0 {
		t.Errorf("trace shapes too thin: tracks=%d spans=%d", tracks, spans)
	}
	if fs != fe {
		t.Errorf("unbalanced flow arrows: %d starts, %d ends", fs, fe)
	}
	for _, want := range []string{`"commit"`, `"rollback"`, `"fault-window"`, `"crash: `} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s events", want)
		}
	}
}

// TestChaosKernelFaults subjects nvi and postgres to kernel fault windows
// under recovery: the run must either complete or be deliberately abandoned
// after a bounded crash loop (committed corruption — a Lose-work conflict,
// not a hang).
func TestChaosKernelFaults(t *testing.T) {
	for _, app := range []string{"nvi", "postgres"} {
		app := app
		t.Run(app, func(t *testing.T) {
			for round := int64(0); round < 6; round++ {
				var w *sim.World
				if app == "nvi" {
					e := nvi.New("doc.txt", faults.NviInitial())
					e.ThinkTime = 0
					e.RecoveryFile = true
					w = kernelWorld(1, e)
					w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(3, 200))
				} else {
					db := postgres.New("t.dat")
					w = kernelWorld(1, db)
					w.Procs[0].Ctx().Inputs = postgres.Script(faults.PostgresSession(5, 120))
				}
				w.RecordTrace = false
				w.MaxSteps = 2_000_000
				k := w.OS.(*kernel.Kernel)
				d := dc.New(w, protocol.CPVS, stablestore.Rio)
				crashes := 0
				d.RecoveryHook = func(p *sim.Proc, reason string) {
					crashes++
					if crashes > 4 {
						d.DisableRecovery = true
					}
				}
				if err := d.Attach(); err != nil {
					t.Fatal(err)
				}
				r := rand.New(rand.NewSource(round))
				injected := false
				injectAt := time.Duration(1+r.Intn(20)) * time.Millisecond
				for {
					more, err := w.Step()
					if err != nil {
						t.Fatal(err)
					}
					if !more {
						break
					}
					if !injected && w.Clock >= injectAt {
						injected = true
						k.InjectFault(0, time.Duration(r.Intn(5))*time.Millisecond)
					}
				}
				if !w.AllDone() && !w.Procs[0].Dead() {
					t.Errorf("round %d: hung (neither done nor abandoned)", round)
				}
			}
		})
	}
}
