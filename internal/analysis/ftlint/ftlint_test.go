package ftlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/ftlint"
)

// TestRepoTreeIsClean is the regression that keeps the repository
// lint-clean: the full ftlint suite over the whole module must report
// nothing. Any new finding either gets fixed or gets a reasoned
// suppression before this test passes again.
func TestRepoTreeIsClean(t *testing.T) {
	res, err := ftlint.Run(".", nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", analysis.FormatDiag(res.Fset, d))
	}
}

// TestPlantedNondetIsCaught is the in-process twin of CI's negative check:
// a module with a time.Now planted in internal/sim must fail the suite.
// It proves the clean run above is not vacuous.
func TestPlantedNondetIsCaught(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "sim", "clock.go"), `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the planted one: %v", len(res.Diags), res.Diags)
	}
	if d := res.Diags[0]; d.Analyzer != "detlint" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("wrong diagnostic for the plant: %s: %s", d.Analyzer, d.Message)
	}
}

// TestExtraDetPkgExtendsCore mirrors the -detpkg flag: a scratch package
// outside the deterministic core is ignored by default and checked once
// its import path is passed as an extra detlint package.
func TestExtraDetPkgExtendsCore(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "scratch", "scratch.go"), `package scratch

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("scratch package flagged without -detpkg: %v", res.Diags)
	}
	res, err = ftlint.Run(dir, nil, "failtrans/internal/scratch")
	if err != nil {
		t.Fatalf("ftlint.Run with extra pkg: %v", err)
	}
	if len(res.Diags) != 1 || !strings.Contains(res.Diags[0].Message, "time.Now") {
		t.Fatalf("extra detlint package not enforced: %v", res.Diags)
	}
}

// TestHotpathRootsAnnotated pins the hot-path annotations the repo relies
// on: deleting one would silently shrink hotpathcheck's coverage to
// nothing, so their presence is asserted here.
func TestHotpathRootsAnnotated(t *testing.T) {
	roots := map[string]int{ // file -> minimum number of hotpath annotations
		"../../vista/vista.go": 3, // (*Segment).Write, SetContents, Commit
		"../../sim/proc.go":    1, // (*Proc).AppendCheckpointImage
		"../../dc/dc.go":       1, // (*DC).diffOne
	}
	for file, min := range roots {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("read %s: %v", file, err)
			continue
		}
		if got := strings.Count(string(data), "//failtrans:hotpath"); got < min {
			t.Errorf("%s: %d //failtrans:hotpath annotations, want at least %d", file, got, min)
		}
	}
}

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
