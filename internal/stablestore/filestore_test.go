package stablestore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestMediumCommitCost(t *testing.T) {
	m := Medium{PerCommit: time.Millisecond, PerByte: time.Microsecond}
	if got := m.CommitCost(0); got != time.Millisecond {
		t.Errorf("CommitCost(0) = %v", got)
	}
	if got := m.CommitCost(1000); got != time.Millisecond+1000*time.Microsecond {
		t.Errorf("CommitCost(1000) = %v", got)
	}
}

func TestRioFasterThanDisk(t *testing.T) {
	for _, n := range []int{0, 4096, 1 << 20} {
		if Rio.CommitCost(n) >= Disk.CommitCost(n) {
			t.Errorf("Rio commit of %d bytes should be cheaper than disk", n)
		}
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || string(v) != "hello" {
		t.Errorf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get of a missing key must report !ok")
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2"))
	s.Put("gone", []byte("x"))
	s.Delete("gone")
	s.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k"); !ok || string(v) != "v2" {
		t.Errorf("after reopen Get(k) = %q, %v, want v2", v, ok)
	}
	if _, ok := s2.Get("gone"); ok {
		t.Error("tombstone must survive reopen")
	}
	if keys := s2.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFileStoreTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("safe", []byte("data"))
	s.Close()

	// Simulate a torn write: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x53, 0x54, 0x46, 9, 0, 0}) // magic + partial header
	f.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if v, ok := s2.Get("safe"); !ok || string(v) != "data" {
		t.Errorf("pre-tear data lost: %q, %v", v, ok)
	}
	// The store must be writable again after truncating the tear.
	if err := s2.Put("after", []byte("tear")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok := s3.Get("after"); !ok || string(v) != "tear" {
		t.Errorf("post-tear write lost: %q, %v", v, ok)
	}
}

func TestFileStoreInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("one", []byte("11111111"))
	s.Put("two", []byte("22222222"))
	s.Close()

	// Flip a payload byte of the first record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[16+1] ^= 0xff // first byte region after the 16-byte header
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("interior corruption must be reported, not silently dropped")
	}
}

func TestFileStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put("k", bytes.Repeat([]byte{byte(i)}, 100))
	}
	s.Put("other", []byte("keep"))
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	s.Close()
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("other"); !ok || string(v) != "keep" {
		t.Error("compaction lost a live key")
	}
	if v, ok := s2.Get("k"); !ok || v[0] != 49 {
		t.Errorf("compaction kept wrong version of k: %v %v", v, ok)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMem()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("deleted key still present")
	}
	if v, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Error("Get(b) failed")
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	if s.BytesWritten != 2 {
		t.Errorf("BytesWritten = %d, want 2", s.BytesWritten)
	}
	// Returned values must not alias the stored copy.
	v, _ := s.Get("b")
	v[0] = 'x'
	if v2, _ := s.Get("b"); string(v2) != "2" {
		t.Error("Get returned an aliased slice")
	}
}

// TestFileStoreMatchesMapModel: a random operation sequence applied to the
// file store and to a plain map must agree, including across a reopen.
func TestFileStoreMatchesMapModel(t *testing.T) {
	dir := t.TempDir()
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "s", "prop.log")
		os.RemoveAll(filepath.Dir(path))
		s, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		model := make(map[string]string)
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < 30; i++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(3) {
			case 0:
				v := string(rune('0' + r.Intn(10)))
				s.Put(k, []byte(v))
				model[k] = v
			case 1:
				s.Delete(k)
				delete(model, k)
			default:
				got, ok := s.Get(k)
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					s.Close()
					return false
				}
			}
		}
		s.Close()
		s2, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for _, k := range keys {
			got, ok := s2.Get(k)
			want, wok := model[k]
			if ok != wok || (ok && string(got) != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzOpenFile: a log file with arbitrary contents must open (recovering
// what it can) or error — never panic, never loop.
func FuzzOpenFile(f *testing.F) {
	good := func() []byte {
		dir := f.TempDir()
		s, err := OpenFile(filepath.Join(dir, "seed.log"))
		if err != nil {
			f.Fatal(err)
		}
		s.Put("k", []byte("v"))
		s.Close()
		data, _ := os.ReadFile(filepath.Join(dir, "seed.log"))
		return data
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("random garbage that is not a record"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFile(path)
		if err != nil {
			return
		}
		// A recovered store must be fully usable.
		if err := s.Put("after", []byte("fuzz")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if v, ok := s.Get("after"); !ok || string(v) != "fuzz" {
			t.Fatal("Get after recovery failed")
		}
		s.Close()
	})
}

func TestFileStoreDeleteMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Delete("never-there"); err != nil {
		t.Errorf("deleting a missing key must be a no-op: %v", err)
	}
}

func TestFileStoreCompactEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Compact(); err != nil {
		t.Errorf("compacting an empty store: %v", err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Errorf("store unusable after empty compaction: %v", err)
	}
}

func TestOpenFileBadDirectory(t *testing.T) {
	// Parent path is a file, not a directory: open must fail cleanly.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(filepath.Join(blocker, "sub", "s.log")); err == nil {
		t.Error("open under a file must fail")
	}
}

func TestLogCost(t *testing.T) {
	m := Medium{PerLog: time.Millisecond, PerByte: time.Microsecond}
	if got := m.LogCost(100); got != time.Millisecond+100*time.Microsecond {
		t.Errorf("LogCost = %v", got)
	}
}
