// Command ftsim runs one workload application under one recovery protocol
// and commit medium, optionally injecting stop failures, and prints the
// run's event, checkpoint and recovery statistics.
//
// Usage:
//
//	ftsim -app nvi -protocol CPVS -medium rio [-scale 1] [-stop proc:step]...
//	      [-tracefile out.json] [-metrics] [-debug]
//	ftsim -app nvi -seeds 20 [-parallel N]
//
// -tracefile writes a Chrome trace-event / Perfetto-compatible JSON timeline
// of the run over virtual time (one track per process; spans for commits,
// rollbacks, replay windows and 2PC rounds; flow arrows for happens-before
// edges). -metrics prints the full counter/histogram snapshot.
//
// -seeds N runs the same configuration at seeds seed..seed+N-1 as a
// campaign fanned out over -parallel workers, printing one summary line
// per seed. The lines are printed in seed order and are byte-identical to
// a -parallel=1 run (see internal/campaign).
//
// -snapshots runs the snapshot/fork engine's self-check on the configured
// run: the run is forked at its halfway point and both the fork and the
// original must finish byte-identically to an uninterrupted reference run.
// Apps whose programs do not implement sim.Forker fail with a clear error.
//
// -ledger appends one forensic record per run (study "ftsim") to the named
// campaign-ledger file — single runs and -seeds campaigns alike — for
// cmd/ftreport and dangerous -ledger.
//
// -veto arms the run's Discount Checking instance with a mined commit-veto
// policy (an .ftv file from ftreport -veto, key "ftsim/<app>/<protocol>"):
// commits whose mined state is on a dangerous path are deferred, and the
// run's veto counters are printed with the DC statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"failtrans/internal/bench"
	"failtrans/internal/campaign"
	"failtrans/internal/dc"
	"failtrans/internal/event"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/statemachine"
	"failtrans/internal/trace"
)

// apps lists the workloads BuildWorld accepts.
var apps = []string{"nvi", "magic", "xpilot", "treadmarks"}

// validateChoices rejects bad -app/-protocol/-medium values before any work
// happens, each with a one-line error naming the accepted values.
func validateChoices(app, pol, medium string) error {
	ok := false
	for _, a := range apps {
		if app == a {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown -app %q (accepted: %s)", app, strings.Join(apps, ", "))
	}
	if medium != "rio" && medium != "disk" {
		return fmt.Errorf("unknown -medium %q (accepted: rio, disk)", medium)
	}
	if pol != "NONE" {
		if _, err := protocol.ByName(pol); err != nil {
			names := make([]string, 0, len(protocol.Space())+1)
			names = append(names, "NONE")
			for _, p := range protocol.Space() {
				names = append(names, p.Name)
			}
			return fmt.Errorf("unknown -protocol %q (accepted: %s)", pol, strings.Join(names, ", "))
		}
	}
	return nil
}

type stopList []string

func (s *stopList) String() string     { return strings.Join(*s, ",") }
func (s *stopList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	app := flag.String("app", "nvi", "nvi | magic | xpilot | treadmarks")
	polName := flag.String("protocol", "CPVS", "protocol name (see ftbench -experiment space), or NONE")
	mediumName := flag.String("medium", "rio", "rio | disk")
	scale := flag.Int("scale", 1, "workload scale")
	seed := flag.Int64("seed", 11, "simulation seed")
	verbose := flag.Bool("v", false, "print visible output")
	dump := flag.String("dump", "", "write the recorded event trace (JSON lines) to this file")
	tracefile := flag.String("tracefile", "", "write a Perfetto/Chrome trace-event JSON timeline (virtual time) to this file")
	metricsFlag := flag.Bool("metrics", false, "print the full metrics snapshot after the run")
	debug := flag.Bool("debug", false, "print scheduler/recovery debug diagnostics to stderr")
	seeds := flag.Int("seeds", 1, "run a campaign over this many consecutive seeds instead of one run")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "campaign worker count for -seeds (1 = serial; output is identical either way)")
	snapCheck := flag.Bool("snapshots", false, "fork self-check: fork the run mid-stream and verify the fork finishes byte-identically")
	ledgerPath := flag.String("ledger", "", "append one forensic record per run to this campaign-ledger file (for ftreport)")
	vetoPath := flag.String("veto", "", "arm the DC with a mined commit-veto policy from this .ftv file (key ftsim/<app>/<protocol>)")
	schedName := flag.String("sched", "indexed", "World scheduler: indexed (readiness heap) or scan (legacy O(procs); runs are byte-identical either way)")
	var stops stopList
	flag.Var(&stops, "stop", "inject a stop failure as proc:step (repeatable)")
	flag.Parse()

	switch *schedName {
	case "indexed":
		sim.DefaultScanSched = false
	case "scan":
		sim.DefaultScanSched = true
	default:
		fail(fmt.Errorf("-sched must be indexed or scan, got %q", *schedName))
	}
	if err := validateChoices(*app, *polName, *mediumName); err != nil {
		fail(err)
	}

	if *snapCheck {
		if *seeds > 1 || *tracefile != "" || *dump != "" || *metricsFlag || *debug || len(stops) > 0 || *ledgerPath != "" || *vetoPath != "" {
			fail(fmt.Errorf("-snapshots supports none of -seeds, -tracefile, -dump, -metrics, -debug, -stop, -ledger, -veto"))
		}
		if err := runSnapshotCheck(*app, *polName, *mediumName, *scale, *seed); err != nil {
			fail(err)
		}
		return
	}

	// The ledger file is created before any simulation so a bad path fails
	// fast; it is written from the single run or the campaign's ordered
	// accept callback, so its bytes are invariant across -parallel.
	var lw *ledger.Writer
	var ledgerClose func()
	if *ledgerPath != "" {
		f, err := os.Create(*ledgerPath)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		lw = ledger.NewWriter(bw)
		ledgerClose = func() {
			err := lw.Err()
			if err == nil {
				err = bw.Flush()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(fmt.Errorf("-ledger: %w", err))
			}
			fmt.Printf("ledger:         %s (%d records)\n", *ledgerPath, lw.Records())
		}
	}

	if *seeds > 1 {
		if *tracefile != "" || *dump != "" || *metricsFlag || *debug || len(stops) > 0 || *vetoPath != "" {
			fail(fmt.Errorf("-seeds campaigns support none of -tracefile, -dump, -metrics, -debug, -stop, -veto (run a single seed for those)"))
		}
		if err := runCampaign(*app, *polName, *mediumName, *scale, *seed, *seeds, *parallel, lw); err != nil {
			fail(err)
		}
		if ledgerClose != nil {
			ledgerClose()
		}
		return
	}

	w, err := bench.BuildWorld(*app, *scale, *seed)
	if err != nil {
		fail(err)
	}
	if *metricsFlag || *tracefile != "" {
		w.EnableObs(*tracefile != "")
	}
	if *debug {
		w.DebugLog = &obs.DebugLog{Enabled: true, W: os.Stderr}
	}
	medium := stablestore.Rio
	if *mediumName == "disk" {
		medium = stablestore.Disk
	}
	var d *dc.DC
	if *polName != "NONE" {
		pol, err := protocol.ByName(*polName)
		if err != nil {
			fail(err)
		}
		d = dc.New(w, pol, medium)
		if *vetoPath != "" {
			armVeto(d, *vetoPath, "ftsim/"+*app+"/"+*polName)
		}
		if err := d.Attach(); err != nil {
			fail(err)
		}
	} else if *vetoPath != "" {
		fail(fmt.Errorf("-veto arms the DC's commit decisions; it needs a -protocol other than NONE"))
	}
	for _, s := range stops {
		var proc, step int
		if _, err := fmt.Sscanf(s, "%d:%d", &proc, &step); err != nil {
			fail(fmt.Errorf("bad -stop %q (want proc:step)", s))
		}
		w.ScheduleStop(proc, step)
	}
	if err := w.Run(); err != nil {
		fail(err)
	}

	fmt.Printf("app=%s protocol=%s medium=%s\n", *app, *polName, medium.Name)
	fmt.Printf("virtual time:   %v\n", w.Clock)
	fmt.Printf("events:         %d\n", w.EventCount)
	kinds := map[event.Kind]int{}
	nd := 0
	for _, e := range w.Trace.Events {
		kinds[e.Kind]++
		if e.EffectivelyND() {
			nd++
		}
	}
	fmt.Printf("  visible=%d send=%d receive=%d commit=%d effectively-nd=%d\n",
		kinds[event.Visible], kinds[event.Send], kinds[event.Receive], kinds[event.Commit], nd)
	for i, p := range w.Procs {
		fmt.Printf("proc %d (%s): status=%v steps=%d crashes=%d\n",
			i, p.Prog.Name(), p.Status(), p.Steps, p.Crashes)
	}
	if d != nil {
		fmt.Printf("checkpoints:    %v (total %d)\n", d.Stats.Checkpoints, d.Stats.TotalCheckpoints())
		fmt.Printf("commit bytes:   %d  commit time: %v\n", d.Stats.CommitBytes, d.Stats.CommitTime)
		fmt.Printf("log records:    %d (%d bytes)\n", d.Stats.LogRecords, d.Stats.LogBytes)
		fmt.Printf("recoveries:     %d  2pc rounds: %d\n", d.Stats.Recoveries, d.Stats.TwoPhaseRounds)
		if *vetoPath != "" {
			fmt.Printf("commit veto:    %d consulted, %d vetoed (%d at save-work points)\n",
				d.Stats.VetoConsults, d.Stats.CommitsVetoed, d.Stats.VetoedSaveWork)
		}
	}
	// The paper's §3 heuristic, applied to this run's event mix.
	sum := trace.Summarize(w.Trace)
	inputs := 0
	for _, e := range w.Trace.Events {
		if e.Label == "input" {
			inputs++
		}
	}
	mix := protocol.EventMix{
		Visible:     sum.ByKind[event.Visible],
		Sends:       sum.ByKind[event.Send],
		Receives:    sum.ByKind[event.Receive],
		Input:       inputs,
		OtherND:     sum.EffectivelyND - inputs - sum.ByKind[event.Receive],
		Distributed: len(w.Procs) > 1,
	}
	if mix.OtherND < 0 {
		mix.OtherND = 0
	}
	fmt.Printf("recommended:    %s\n", protocol.RecommendString(mix))
	vs := recovery.CheckSaveWork(w.Trace)
	if len(vs) == 0 {
		fmt.Println("save-work:      upheld over the recorded trace")
	} else {
		fmt.Printf("save-work:      violated on the raw trace (rollback-discarded events are counted) (%d), first: %v\n", len(vs), vs[0])
	}
	if *verbose {
		for _, line := range w.GlobalOutputs {
			fmt.Println("  |", line)
		}
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		if err := trace.Save(f, w.Trace); err != nil {
			f.Close() //failtrans:errok best-effort cleanup; the save error being reported is the primary failure
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace:          %s (%s)\n", *dump, trace.Summarize(w.Trace))
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fail(err)
		}
		if err := w.Tracer.WriteJSON(f); err != nil {
			f.Close() //failtrans:errok best-effort cleanup; the export error being reported is the primary failure
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("tracefile:      %s (%d trace events)\n", *tracefile, w.Tracer.Len())
	}
	if *metricsFlag {
		fmt.Println("--- metrics ---")
		w.Metrics.WriteSnapshot(os.Stdout)
	}
	if lw != nil {
		kind := "none"
		if len(stops) > 0 {
			kind = "stop"
		}
		rec := ledger.Get()
		ftsimRecord(rec, *app, *polName, medium.Name, *seed, w, d, kind, len(vs) > 0)
		lw.Append(rec)
		ledger.Put(rec)
		ledgerClose()
	}
}

// armVeto loads the .ftv policy file and installs the policy for key on the
// DC's commit-veto hook. ftsim records carry no fault activation, so the
// run's mined position is simply CommitStateKey(n) after n commits — the
// same commit-count space ftsim-study machines are keyed in.
func armVeto(d *dc.DC, path, key string) {
	f, err := os.Open(path)
	if err != nil {
		fail(fmt.Errorf("-veto: %w", err))
	}
	ps, err := statemachine.ReadPolicies(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail(fmt.Errorf("-veto: %w", err))
	}
	pol := statemachine.FindPolicy(ps, key)
	if pol == nil {
		keys := make([]string, 0, len(ps))
		for _, p := range ps {
			keys = append(keys, p.Key)
		}
		fail(fmt.Errorf("-veto: no policy for %q in %s (have: %s)", key, path, strings.Join(keys, ", ")))
	}
	d.CommitVeto = func(p *sim.Proc, label string) bool {
		return pol.CommitUnsafe(ledger.CommitStateKey(d.Stats.TotalCheckpoints()))
	}
}

// ftsimRecord renders one finished ftsim run into a forensic record.
func ftsimRecord(rec *ledger.Record, app, polName, mediumName string, seed int64,
	w *sim.World, d *dc.DC, kind string, saveWorkViolated bool) {
	rec.Study = "ftsim"
	rec.App = app
	rec.Protocol = polName
	rec.Medium = mediumName
	rec.Kind = kind
	rec.Seed = seed
	rec.Outcome = ledger.Completed
	if !w.AllDone() {
		rec.Outcome = ledger.Crashed
	}
	rec.SaveWork = saveWorkViolated
	if d != nil {
		rec.CommitN = d.Stats.TotalCheckpoints()
	}
	rec.Steps = w.Procs[0].Steps
	rec.WorldSteps = w.StepCount()
	rec.VClockUS = int64(w.Clock / time.Microsecond)
}

// runCampaign executes the configured workload at n consecutive seeds,
// fanned out over workers, printing one line per seed. Lines are emitted
// from the campaign's ordered accept callback, so the output is identical
// for any worker count.
func runCampaign(app, polName, mediumName string, scale int, baseSeed int64, n, workers int, lw *ledger.Writer) error {
	medium := stablestore.Rio
	if mediumName == "disk" {
		medium = stablestore.Disk
	}
	campObs := obs.NewCampaignMetrics(workers)
	type seedRun struct {
		line string
		rec  *ledger.Record
	}
	err := campaign.Run(campaign.Config{Workers: workers, Phase: "ftsim/" + app, Metrics: campObs}, n,
		func(i int) (seedRun, error) {
			seed := baseSeed + int64(i)
			w, err := bench.BuildWorld(app, scale, seed)
			if err != nil {
				return seedRun{}, err
			}
			w.RecordTrace = true
			var d *dc.DC
			if polName != "NONE" {
				pol, err := protocol.ByName(polName)
				if err != nil {
					return seedRun{}, err
				}
				d = dc.New(w, pol, medium)
				if err := d.Attach(); err != nil {
					return seedRun{}, err
				}
			}
			if err := w.Run(); err != nil {
				return seedRun{}, err
			}
			ckpts, recoveries := 0, 0
			if d != nil {
				ckpts = d.Stats.TotalCheckpoints()
				recoveries = d.Stats.Recoveries
			}
			violated := len(recovery.CheckSaveWork(w.Trace)) > 0
			saveWork := "upheld"
			if violated {
				saveWork = "violated"
			}
			r := seedRun{line: fmt.Sprintf("seed=%-6d vtime=%-14v events=%-8d ckpts=%-6d recoveries=%-3d save-work=%s",
				seed, w.Clock, w.EventCount, ckpts, recoveries, saveWork)}
			if lw != nil {
				r.rec = ledger.Get()
				ftsimRecord(r.rec, app, polName, medium.Name, seed, w, d, "none", violated)
			}
			return r, nil
		},
		func(i int, r seedRun) bool {
			fmt.Println(r.line)
			if r.rec != nil {
				r.rec.Run = i
				lw.Append(r.rec)
				ledger.Put(r.rec)
			}
			return true
		})
	if err != nil {
		return err
	}
	return campObs.WriteSummary(os.Stderr)
}

// runSnapshotCheck exercises the snapshot/fork engine on one configured
// run: execute the run to completion for reference, rebuild it, step to the
// halfway point, fork, and run both the fork and the original to the end.
// All three executions must produce byte-identical visible output. Apps
// whose programs do not implement sim.Forker fail with a clear error.
func runSnapshotCheck(app, polName, mediumName string, scale int, seed int64) error {
	medium := stablestore.Rio
	if mediumName == "disk" {
		medium = stablestore.Disk
	}
	build := func() (*sim.World, error) {
		w, err := bench.BuildWorld(app, scale, seed)
		if err != nil {
			return nil, err
		}
		w.RecordTrace = false
		if polName != "NONE" {
			pol, err := protocol.ByName(polName)
			if err != nil {
				return nil, err
			}
			d := dc.New(w, pol, medium)
			if err := d.Attach(); err != nil {
				return nil, err
			}
		}
		return w, nil
	}
	ref, err := build()
	if err != nil {
		return err
	}
	if err := ref.Run(); err != nil {
		return err
	}
	total := ref.StepCount()

	w, err := build()
	if err != nil {
		return err
	}
	if err := w.Init(); err != nil {
		return err
	}
	for w.StepCount() < total/2 {
		more, err := w.Step()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	forkAt := w.StepCount()
	fw, err := w.Fork()
	if err != nil {
		return fmt.Errorf("fork at step %d: %w", forkAt, err)
	}
	if err := fw.Run(); err != nil {
		return fmt.Errorf("forked run: %w", err)
	}
	if err := w.Run(); err != nil {
		return fmt.Errorf("original run after fork: %w", err)
	}
	same := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !same(fw.GlobalOutputs, ref.GlobalOutputs) {
		return fmt.Errorf("fork diverged from reference: %d vs %d outputs", len(fw.GlobalOutputs), len(ref.GlobalOutputs))
	}
	if !same(w.GlobalOutputs, ref.GlobalOutputs) {
		return fmt.Errorf("original diverged after being forked: %d vs %d outputs", len(w.GlobalOutputs), len(ref.GlobalOutputs))
	}
	fmt.Printf("snapshot self-check: app=%s protocol=%s medium=%s\n", app, polName, medium.Name)
	fmt.Printf("forked at step %d of %d; fork and original both finished byte-identical to the reference\n", forkAt, total)
	fmt.Printf("steps saved by resuming from the fork: %d (%.0f%% of the run)\n",
		forkAt, 100*float64(forkAt)/float64(total))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftsim:", err)
	os.Exit(1)
}
