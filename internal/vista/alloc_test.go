package vista

import (
	"bytes"
	"math/rand"
	"testing"

	"failtrans/internal/obs"
)

// TestCommitCycleZeroAllocs pins the tentpole property of the incremental
// commit engine: once warmed up, a write→commit cycle and a
// SetContents→commit cycle allocate nothing — the dirty bitset is cleared
// in place and undo-record page buffers are recycled through the pool.
func TestCommitCycleZeroAllocs(t *testing.T) {
	seg := NewSegment(0, 4096)
	img := make([]byte, 64*1024)
	seg.SetContents(img)
	seg.Commit(nil)

	one := []byte{0}
	i := 0
	writeCycle := func() {
		one[0] = byte(i)
		if err := seg.Write((i*4096+17)%len(img), one); err != nil {
			t.Fatal(err)
		}
		seg.Commit(nil)
		i++
	}
	writeCycle() // prime the buffer pool
	if n := testing.AllocsPerRun(200, writeCycle); n != 0 {
		t.Errorf("write→commit cycle allocates %.1f times per run, want 0", n)
	}

	j := 0
	setCycle := func() {
		img[(j*4096+33)%len(img)] ^= 1
		seg.SetContents(img)
		seg.Commit(nil)
		j++
	}
	setCycle()
	if n := testing.AllocsPerRun(200, setCycle); n != 0 {
		t.Errorf("SetContents→commit cycle allocates %.1f times per run, want 0", n)
	}
}

// TestCommitCycleZeroAllocsWithMetrics proves the observability layer adds
// zero allocations to the commit hot path: the same warmed write→commit and
// SetContents→commit cycles, with a metrics slot attached, still allocate
// nothing — every counter update is a plain fixed-slot increment.
func TestCommitCycleZeroAllocsWithMetrics(t *testing.T) {
	seg := NewSegment(0, 4096)
	m := &obs.VistaMetrics{}
	seg.Metrics = m
	img := make([]byte, 64*1024)
	seg.SetContents(img)
	seg.Commit(nil)

	i := 0
	cycle := func() {
		img[(i*4096+17)%len(img)] ^= 1
		seg.SetContents(img)
		seg.Commit(nil)
		i++
	}
	cycle() // prime the buffer pool
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Errorf("instrumented SetContents→commit cycle allocates %.1f times per run, want 0", n)
	}
	if m.Commits == 0 || m.PagesDirtied == 0 {
		t.Errorf("metrics did not accumulate: %+v", *m)
	}
}

// refSegment is the naive reference model for SetContents semantics: the
// segment holds the last image, zero-padded to the largest extent ever set.
type refSegment struct {
	mem       []byte
	committed []byte
}

func (r *refSegment) set(data []byte) {
	if len(data) > len(r.mem) {
		r.mem = append(r.mem, make([]byte, len(data)-len(r.mem))...)
	}
	copy(r.mem, data)
	for i := len(data); i < len(r.mem); i++ {
		r.mem[i] = 0
	}
}

func (r *refSegment) write(off int, data []byte) {
	if need := off + len(data); need > len(r.mem) {
		r.mem = append(r.mem, make([]byte, need-len(r.mem))...)
	}
	copy(r.mem[off:], data)
}

func (r *refSegment) commit() { r.committed = append(r.committed[:0], r.mem...) }

func (r *refSegment) rollback() {
	for i := range r.mem {
		r.mem[i] = 0
	}
	copy(r.mem, r.committed)
}

func pat(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i*7)
	}
	return out
}

// TestSetContentsBoundaryCases drives the page-diff path across the
// boundary shapes the hash cache must get right: growth with a partial
// final page, shrinking, an all-zero tail, emptying, and re-growth within
// retained capacity.
func TestSetContentsBoundaryCases(t *testing.T) {
	const ps = 64
	seg := NewSegment(0, ps)
	ref := &refSegment{}
	set := func(data []byte) {
		t.Helper()
		seg.SetContents(data)
		ref.set(data)
		if got := seg.Contents(); !bytes.Equal(got, ref.mem) {
			t.Fatalf("after SetContents(len=%d): segment %v != reference %v", len(data), got, ref.mem)
		}
	}

	// Grow across a page boundary ending in a partial final page.
	set(pat(ps*3+17, 1))
	seg.Commit(nil)

	// An identical image must dirty nothing (the clean-skip fast path).
	set(pat(ps*3+17, 1))
	if st := seg.Commit(nil); st.Pages != 0 {
		t.Errorf("identical image dirtied %d pages, want 0", st.Pages)
	}

	// A single-byte change must dirty exactly one page.
	d := pat(ps*3+17, 1)
	d[ps+5] ^= 0xFF
	set(d)
	if st := seg.Commit(nil); st.Pages != 1 {
		t.Errorf("one-byte change dirtied %d pages, want 1", st.Pages)
	}

	// Shrink to a partial first page: the old tail pages must read as zero.
	set(pat(ps/2, 2))
	seg.Commit(nil)

	// All-zero tail: only the first page holds data.
	z := pat(ps*4, 3)
	for i := ps; i < len(z); i++ {
		z[i] = 0
	}
	set(z)
	seg.Commit(nil)

	// Shrink to empty, then regrow within the retained capacity.
	set(nil)
	set(pat(ps*2+1, 4))
}

// TestSetContentsRandomizedAgainstReference interleaves SetContents, Write,
// Commit and Rollback with random extents and checks the segment against
// the naive model after every operation — including that rollback restores
// exactly the committed image (hash-cache invalidation must not let a
// stale entry skip a page that rollback changed).
func TestSetContentsRandomizedAgainstReference(t *testing.T) {
	const ps = 32
	rng := rand.New(rand.NewSource(7))
	seg := NewSegment(0, ps)
	ref := &refSegment{}
	seg.Commit(nil)
	ref.commit()

	randImage := func() []byte {
		n := rng.Intn(6*ps + 1)
		out := make([]byte, n)
		for i := range out {
			if rng.Intn(3) > 0 { // bias toward zeros to exercise zero tails
				out[i] = byte(rng.Intn(256))
			}
		}
		return out
	}

	for iter := 0; iter < 2000; iter++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			img := randImage()
			seg.SetContents(img)
			ref.set(img)
		case 3:
			off := rng.Intn(5 * ps)
			data := pat(rng.Intn(ps)+1, byte(iter))
			if err := seg.Write(off, data); err != nil {
				t.Fatal(err)
			}
			ref.write(off, data)
		case 4:
			seg.Commit(nil)
			ref.commit()
		default:
			seg.Rollback()
			ref.rollback()
		}
		if got := seg.Contents(); !bytes.Equal(got, ref.mem) {
			t.Fatalf("iter %d: segment diverged from reference (len %d vs %d)", iter, len(got), len(ref.mem))
		}
	}
}
