package dc

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"failtrans/internal/event"
	"failtrans/internal/kernel"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// flip draws one random bit, then outputs it twice. Consistent recovery
// demands both outputs agree (the paper's Figure 1 coin flip).
type flip struct {
	Phase int
	Coin  uint64
}

func (f *flip) Name() string                  { return "flip" }
func (f *flip) Init(ctx *sim.Ctx) error       { return nil }
func (f *flip) MarshalState() ([]byte, error) { return json.Marshal(f) }
func (f *flip) UnmarshalState(d []byte) error { return json.Unmarshal(d, f) }
func (f *flip) Step(ctx *sim.Ctx) sim.Status {
	ctx.Compute(time.Millisecond)
	switch f.Phase {
	case 0:
		f.Coin = ctx.Rand() % 2
	case 1, 2:
		ctx.Output(fmt.Sprintf("coin=%d", f.Coin))
	default:
		return sim.Done
	}
	f.Phase++
	return sim.Ready
}

// coinConsistent checks the duplicate-tolerant consistency criterion for
// the flip app: all outputs must name the same coin value.
func coinConsistent(outputs []string) bool {
	for _, s := range outputs[1:] {
		if s != outputs[0] {
			return false
		}
	}
	return true
}

func runFlipWithStop(t *testing.T, pol protocol.Policy, stopAt int) (*sim.World, *DC) {
	t.Helper()
	w := sim.NewWorld(41, &flip{})
	d := New(w, pol, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	w.ScheduleStop(0, stopAt)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w, d
}

// TestStopFailureRecoveryConsistent: under every measured protocol, a stop
// failure at every possible point leaves the coin-flip output consistent
// and the run completes.
func TestStopFailureRecoveryConsistent(t *testing.T) {
	for _, pol := range protocol.Measured() {
		// Steps 1..5 span the initial commit, the coin flip, protocol
		// commits and both outputs for every measured protocol.
		for stopAt := 1; stopAt <= 5; stopAt++ {
			w, d := runFlipWithStop(t, pol, stopAt)
			if !w.AllDone() {
				t.Errorf("%s stop@%d: run did not complete (no-orphan constraint)", pol.Name, stopAt)
				continue
			}
			if w.Procs[0].Crashes != 1 {
				t.Errorf("%s stop@%d: crashes = %d", pol.Name, stopAt, w.Procs[0].Crashes)
			}
			if d.Stats.Recoveries != 1 {
				t.Errorf("%s stop@%d: recoveries = %d", pol.Name, stopAt, d.Stats.Recoveries)
			}
			out := w.Outputs[0]
			if len(out) < 2 {
				t.Errorf("%s stop@%d: outputs = %v", pol.Name, stopAt, out)
				continue
			}
			if !coinConsistent(out) {
				t.Errorf("%s stop@%d: inconsistent recovery, outputs %v", pol.Name, stopAt, out)
			}
			// The visible constraint: the outputs must be equivalent
			// to a failure-free run that prints the coin twice.
			legal := []string{out[0], out[0]}
			if eq, complete := recovery.Equivalent(out, legal); !eq || !complete {
				t.Errorf("%s stop@%d: outputs %v not equivalent to %v", pol.Name, stopAt, out, legal)
			}
		}
	}
}

// TestNoProtocolNoConsistency: with a policy that neither commits nor logs,
// some stop failure produces inconsistent output — demonstrating the
// Save-work theorem's "only if" direction.
func TestNoProtocolNoConsistency(t *testing.T) {
	broken := protocol.Policy{Name: "NONE", Runnable: true}
	sawInconsistent := false
	for seed := int64(0); seed < 30 && !sawInconsistent; seed++ {
		w := sim.NewWorld(seed, &flip{})
		d := New(w, broken, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		// Steps: 1 initial commit, 2 flip, 3 first output; the stop
		// fires just before the second output.
		w.ScheduleStop(0, 3)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if w.Procs[0].Crashes != 1 {
			t.Fatalf("seed %d: crashes = %d, want 1", seed, w.Procs[0].Crashes)
		}
		if len(w.Outputs[0]) >= 2 && !coinConsistent(w.Outputs[0]) {
			sawInconsistent = true
		}
	}
	if !sawInconsistent {
		t.Error("a commit-free, log-free policy should eventually flip the coin differently across a failure")
	}
}

// TestHypervisorRecoversByReplay: the log-everything protocol takes no
// checkpoints beyond the initial one yet recovers consistently by replaying
// its log.
func TestHypervisorRecoversByReplay(t *testing.T) {
	w, d := runFlipWithStop(t, protocol.Hypervisor, 2)
	if !w.AllDone() {
		t.Fatal("run did not complete")
	}
	if got := d.Stats.TotalCheckpoints(); got != 0 {
		t.Errorf("Hypervisor took %d checkpoints, want 0", got)
	}
	if d.Stats.LogRecords == 0 {
		t.Error("Hypervisor must have logged the ND events")
	}
	if !coinConsistent(w.Outputs[0]) {
		t.Errorf("outputs %v inconsistent", w.Outputs[0])
	}
}

// ndWorker does `Rounds` of: one rand draw, one visible output.
type ndWorker struct {
	Rounds int
	I      int
	Acc    uint64
}

func (p *ndWorker) Name() string                  { return "ndworker" }
func (p *ndWorker) Init(ctx *sim.Ctx) error       { return nil }
func (p *ndWorker) MarshalState() ([]byte, error) { return json.Marshal(p) }
func (p *ndWorker) UnmarshalState(d []byte) error { return json.Unmarshal(d, p) }

// ndWorker obeys the one-event-per-step contract: a rand step alternates
// with an output step.
func (p *ndWorker) Step(ctx *sim.Ctx) sim.Status {
	if p.I >= 2*p.Rounds {
		return sim.Done
	}
	if p.I%2 == 0 {
		v := ctx.Rand()
		p.Acc ^= v
	} else {
		ctx.Output(fmt.Sprintf("round %d", p.I/2+1))
	}
	p.I++
	return sim.Ready
}

func runWorker(t *testing.T, pol protocol.Policy) (*sim.World, *DC) {
	t.Helper()
	w := sim.NewWorld(5, &ndWorker{Rounds: 10})
	d := New(w, pol, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("worker did not finish")
	}
	return w, d
}

// TestCommitCounts verifies each protocol's commit pattern on a fixed
// workload of 10 (rand, output) rounds.
func TestCommitCounts(t *testing.T) {
	// CAND: one commit per ND event.
	if _, d := runWorker(t, protocol.CAND); d.Stats.TotalCheckpoints() != 10 {
		t.Errorf("CAND checkpoints = %d, want 10", d.Stats.TotalCheckpoints())
	}
	// CPVS: one commit per visible (no sends here).
	if _, d := runWorker(t, protocol.CPVS); d.Stats.TotalCheckpoints() != 10 {
		t.Errorf("CPVS checkpoints = %d, want 10", d.Stats.TotalCheckpoints())
	}
	// CBNDVS: ND precedes every visible, so same as CPVS here.
	if _, d := runWorker(t, protocol.CBNDVS); d.Stats.TotalCheckpoints() != 10 {
		t.Errorf("CBNDVS checkpoints = %d, want 10", d.Stats.TotalCheckpoints())
	}
	// CAND-LOG doesn't log rand (only input/receives): still 10.
	if _, d := runWorker(t, protocol.CANDLog); d.Stats.TotalCheckpoints() != 10 {
		t.Errorf("CAND-LOG checkpoints = %d, want 10", d.Stats.TotalCheckpoints())
	}
	// Hypervisor logs everything: 0 commits, 10 log records.
	if _, d := runWorker(t, protocol.Hypervisor); d.Stats.TotalCheckpoints() != 0 || d.Stats.LogRecords != 10 {
		t.Errorf("Hypervisor checkpoints/logs = %d/%d, want 0/10", d.Stats.TotalCheckpoints(), d.Stats.LogRecords)
	}
	// COMMIT-ALL commits after every event: 20 events.
	if _, d := runWorker(t, protocol.CommitAll); d.Stats.TotalCheckpoints() != 20 {
		t.Errorf("COMMIT-ALL checkpoints = %d, want 20", d.Stats.TotalCheckpoints())
	}
}

// detWorker emits deterministic visibles only (no ND at all).
type detWorker struct{ ndWorker }

func (p *detWorker) Step(ctx *sim.Ctx) sim.Status {
	if p.I >= p.Rounds {
		return sim.Done
	}
	ctx.Output(fmt.Sprintf("round %d", p.I+1))
	p.I++
	return sim.Ready
}

// TestCBNDVSSkipsWithoutND: with no non-determinism, CBNDVS never commits
// while CPVS still commits before every visible — the refinement the paper
// names.
func TestCBNDVSSkipsWithoutND(t *testing.T) {
	w := sim.NewWorld(5, &detWorker{ndWorker{Rounds: 8}})
	d := New(w, protocol.CBNDVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.TotalCheckpoints() != 0 {
		t.Errorf("CBNDVS checkpoints = %d, want 0 for a deterministic app", d.Stats.TotalCheckpoints())
	}

	w2 := sim.NewWorld(5, &detWorker{ndWorker{Rounds: 8}})
	d2 := New(w2, protocol.CPVS, stablestore.Rio)
	if err := d2.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	if d2.Stats.TotalCheckpoints() != 8 {
		t.Errorf("CPVS checkpoints = %d, want 8", d2.Stats.TotalCheckpoints())
	}
}

// TestSaveWorkHoldsOnFailureFreeTraces: every measured protocol's
// failure-free trace satisfies the Save-work invariant (checker from
// internal/recovery).
func TestSaveWorkHoldsOnFailureFreeTraces(t *testing.T) {
	for _, pol := range protocol.Measured() {
		w, _ := runWorker(t, pol)
		if vs := recovery.CheckSaveWork(w.Trace); len(vs) != 0 {
			t.Errorf("%s violated Save-work: %v", pol.Name, vs[0])
		}
	}
}

// TestNoneProtocolViolatesSaveWork: the broken policy's trace fails the
// checker, confirming the checker has teeth on real traces.
func TestNoneProtocolViolatesSaveWork(t *testing.T) {
	w, _ := runWorker(t, protocol.Policy{Name: "NONE", Runnable: true})
	if vs := recovery.CheckSaveWork(w.Trace); len(vs) == 0 {
		t.Error("commit-free policy should violate Save-work on an ND workload")
	}
}

// --- distributed: a two-process requester/responder pair ---

// requester sends a query containing a random number, awaits the echoed
// answer, outputs it. The answer must match what was sent even across
// failures of either process. One ctx event per step: draw → send →
// receive → output.
type requester struct {
	Rounds int
	I      int
	Phase  int // 0 draw, 1 send, 2 recv, 3 output
	Sent   uint64
	Answer string
}

func (p *requester) Name() string                  { return "requester" }
func (p *requester) Init(ctx *sim.Ctx) error       { return nil }
func (p *requester) MarshalState() ([]byte, error) { return json.Marshal(p) }
func (p *requester) UnmarshalState(d []byte) error { return json.Unmarshal(d, p) }
func (p *requester) Step(ctx *sim.Ctx) sim.Status {
	switch p.Phase {
	case 0:
		if p.I >= p.Rounds {
			return sim.Done
		}
		v := ctx.Rand()
		p.Sent = v % 1000
		p.I++
		p.Phase = 1
	case 1:
		if err := ctx.Send(1, []byte(fmt.Sprintf("%d", p.Sent))); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		p.Phase = 2
	case 2:
		m, ok := ctx.Recv()
		if !ok {
			return sim.WaitMsg
		}
		p.Answer = string(m.Payload)
		p.Phase = 3
	default:
		ctx.Output(fmt.Sprintf("answer %d: %s", p.I, p.Answer))
		p.Phase = 0
	}
	return sim.Ready
}

// responder doubles each query and replies; receive and send are separate
// steps.
type responder struct {
	Seen    int
	Max     int
	Pending int64 // -1 when idle
	ReplyTo int
}

func (p *responder) Name() string                  { return "responder" }
func (p *responder) Init(ctx *sim.Ctx) error       { p.Pending = -1; return nil }
func (p *responder) MarshalState() ([]byte, error) { return json.Marshal(p) }
func (p *responder) UnmarshalState(d []byte) error { return json.Unmarshal(d, p) }
func (p *responder) Step(ctx *sim.Ctx) sim.Status {
	if p.Pending >= 0 {
		if err := ctx.Send(p.ReplyTo, []byte(fmt.Sprintf("%d", p.Pending*2))); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		p.Pending = -1
		return sim.Ready
	}
	if p.Seen >= p.Max {
		return sim.Done
	}
	m, ok := ctx.Recv()
	if !ok {
		return sim.WaitMsg
	}
	var v int64
	fmt.Sscanf(string(m.Payload), "%d", &v)
	p.Pending = v
	p.ReplyTo = m.From
	p.Seen++
	return sim.Ready
}

// checkEcho verifies every answer is exactly double some consistent query
// and answers arrive in round order with duplicates allowed.
func checkEcho(t *testing.T, name string, outputs []string) {
	t.Helper()
	lastRound := 0
	for _, s := range outputs {
		var round int
		var v uint64
		if _, err := fmt.Sscanf(s, "answer %d: %d", &round, &v); err != nil {
			t.Errorf("%s: unparsable output %q", name, s)
			return
		}
		if v%2 != 0 {
			t.Errorf("%s: answer %q is not doubled", name, s)
		}
		if round != lastRound && round != lastRound+1 {
			t.Errorf("%s: round jumped from %d to %d", name, lastRound, round)
		}
		lastRound = round
	}
}

// TestDistributedStopFailures: crash each process in turn, at several
// points, under every measured protocol; the pair must finish with
// consistent output and no orphans.
func TestDistributedStopFailures(t *testing.T) {
	for _, pol := range protocol.Measured() {
		for victim := 0; victim < 2; victim++ {
			for stopAt := 2; stopAt <= 10; stopAt += 2 {
				w := sim.NewWorld(13, &requester{Rounds: 4}, &responder{Max: 4})
				d := New(w, pol, stablestore.Rio)
				if err := d.Attach(); err != nil {
					t.Fatal(err)
				}
				w.ScheduleStop(victim, stopAt)
				w.MaxSteps = 100000
				if err := w.Run(); err != nil {
					t.Fatalf("%s victim=%d stop@%d: %v", pol.Name, victim, stopAt, err)
				}
				if !w.AllDone() {
					t.Errorf("%s victim=%d stop@%d: did not complete (%v/%v)",
						pol.Name, victim, stopAt, w.Procs[0].Status(), w.Procs[1].Status())
					continue
				}
				if w.Procs[victim].Crashes > 0 && d.Stats.Recoveries == 0 {
					t.Errorf("%s victim=%d stop@%d: crash without recovery", pol.Name, victim, stopAt)
				}
				checkEcho(t, fmt.Sprintf("%s victim=%d stop@%d", pol.Name, victim, stopAt), w.Outputs[0])
			}
		}
	}
}

// TestTwoPhaseCommitsPeers: under CPV-2PC every process commits when one
// does a visible event.
func TestTwoPhaseCommitsPeers(t *testing.T) {
	w := sim.NewWorld(13, &requester{Rounds: 3}, &responder{Max: 3})
	d := New(w, protocol.CPV2PC, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.TwoPhaseRounds != 3 {
		t.Errorf("2PC rounds = %d, want 3 (one per visible)", d.Stats.TwoPhaseRounds)
	}
	if d.Stats.Checkpoints[0] != 3 || d.Stats.Checkpoints[1] != 3 {
		t.Errorf("checkpoints = %v, want [3 3]", d.Stats.Checkpoints)
	}
}

// TestDependentTwoPhaseScope: CBNDV-2PC commits only processes with
// relevant uncommitted non-determinism. The responder is deterministic
// apart from its receives... which carry the requester's ND; both end up in
// the dependent set when the requester's rand is uncommitted.
func TestDependentTwoPhaseScope(t *testing.T) {
	w := sim.NewWorld(13, &requester{Rounds: 3}, &responder{Max: 3})
	d := New(w, protocol.CBNDV2PC, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("did not finish")
	}
	// The requester (who outputs) must commit at each visible; rounds
	// happen, and the total stays bounded by the all-processes variant.
	if d.Stats.TwoPhaseRounds == 0 {
		t.Error("CBNDV-2PC should coordinate at visibles")
	}
	if d.Stats.Checkpoints[0] == 0 {
		t.Error("requester never committed")
	}
}

// TestDCDiskSlowerThanRio: same run, disk medium costs more virtual time.
func TestDCDiskSlowerThanRio(t *testing.T) {
	run := func(m stablestore.Medium) time.Duration {
		w := sim.NewWorld(5, &ndWorker{Rounds: 20})
		d := New(w, protocol.CPVS, m)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Clock
	}
	rio := run(stablestore.Rio)
	disk := run(stablestore.Disk)
	if disk <= rio {
		t.Errorf("disk run (%v) should be slower than Rio (%v)", disk, rio)
	}
	if disk < 20*8*time.Millisecond {
		t.Errorf("disk run %v should include 20 sync commits of >=8ms", disk)
	}
}

// TestRepeatedFailures: several stop failures in one run still end
// consistently.
func TestRepeatedFailures(t *testing.T) {
	for _, pol := range []protocol.Policy{protocol.CPVS, protocol.CANDLog, protocol.CBNDV2PC} {
		w := sim.NewWorld(77, &requester{Rounds: 5}, &responder{Max: 5})
		d := New(w, pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, 3)
		w.ScheduleStop(0, 9)
		w.ScheduleStop(1, 6)
		w.MaxSteps = 100000
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("%s: did not complete after 3 failures", pol.Name)
			continue
		}
		if d.Stats.Recoveries != 3 {
			t.Errorf("%s: recoveries = %d, want 3", pol.Name, d.Stats.Recoveries)
		}
		checkEcho(t, pol.Name, w.Outputs[0])
	}
}

// TestCheckpointSizesIncremental: consecutive commits of a mostly-unchanged
// state dirty few pages (the SetContents diff path).
func TestCheckpointSizesIncremental(t *testing.T) {
	w := sim.NewWorld(5, &ndWorker{Rounds: 50})
	d := New(w, protocol.CPVS, stablestore.Rio)
	d.PageSize = 256
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	perCommit := float64(d.Stats.CommitBytes) / float64(d.Stats.TotalCheckpoints())
	// The JSON state is well under one 256-byte page... allow a couple
	// of pages plus the register file, but not the whole state each
	// time if the state were large. Mostly this asserts the diffing
	// path is live.
	if perCommit > 4*256+64 {
		t.Errorf("average commit wrote %.0f bytes; diffing seems broken", perCommit)
	}
}

// TestDisableRecovery leaves the process dead.
func TestDisableRecovery(t *testing.T) {
	w := sim.NewWorld(41, &flip{})
	d := New(w, protocol.CPVS, stablestore.Rio)
	d.DisableRecovery = true
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	w.ScheduleStop(0, 2)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.Procs[0].Dead() {
		t.Error("process should stay dead with DisableRecovery")
	}
}

// TestHooks: commit and recovery hooks fire.
func TestHooks(t *testing.T) {
	w := sim.NewWorld(41, &flip{})
	d := New(w, protocol.CPVS, stablestore.Rio)
	var commits, recoveries int
	d.CommitHook = func(p *sim.Proc, label string) { commits++ }
	d.RecoveryHook = func(p *sim.Proc, reason string) { recoveries++ }
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	w.ScheduleStop(0, 2)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if commits == 0 || recoveries != 1 {
		t.Errorf("hooks: commits=%d recoveries=%d", commits, recoveries)
	}
}

// TestStatsAccounting sanity-checks byte/time counters.
func TestStatsAccounting(t *testing.T) {
	_, d := runWorker(t, protocol.CPVS)
	if d.Stats.CommitBytes <= 0 || d.Stats.CommitTime <= 0 {
		t.Errorf("stats not accumulated: %+v", d.Stats)
	}
	if d.Stats.TotalCheckpoints() != d.Stats.Checkpoints[0] {
		t.Error("TotalCheckpoints mismatch")
	}
}

// TestEventKindsInDCTrace: commits appear in the trace as Commit events.
func TestEventKindsInDCTrace(t *testing.T) {
	w, d := runWorker(t, protocol.CPVS)
	commits := 0
	for _, e := range w.Trace.Events {
		if e.Kind == event.Commit {
			commits++
		}
	}
	// The trace additionally holds the initial commit, which Attach
	// excludes from the measured stats.
	if commits != d.Stats.TotalCheckpoints()+1 {
		t.Errorf("trace commits = %d, stats+initial = %d", commits, d.Stats.TotalCheckpoints()+1)
	}
}

// TestOptimisticLoggingBatchesFlushes: the OPTIMISTIC policy buffers log
// records and forces them only at escape points, so its total log time is
// far below HYPERVISOR's per-record syncs on disk.
func TestOptimisticLoggingBatchesFlushes(t *testing.T) {
	run := func(pol protocol.Policy) (time.Duration, *DC) {
		// Bursts of five ND events per visible: the async variant
		// forces them as one sequential write.
		w := sim.NewWorld(5, &burstWorker{ndWorker{Rounds: 20}})
		d := New(w, pol, stablestore.Disk)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Fatal("did not finish")
		}
		return d.Stats.LogTime, d
	}
	syncT, syncD := run(protocol.Hypervisor)
	asyncT, asyncD := run(protocol.OptimisticLogging)
	if syncD.Stats.LogRecords != asyncD.Stats.LogRecords {
		t.Fatalf("log records differ: %d vs %d", syncD.Stats.LogRecords, asyncD.Stats.LogRecords)
	}
	if asyncT >= syncT {
		t.Errorf("async log time %v should beat per-record sync %v", asyncT, syncT)
	}
}

// TestOptimisticLoggingRecovery: a stop failure with an unflushed log tail
// still recovers consistently — the lost tail's events re-execute live and
// nothing visible depended on them (flush-before-visible).
func TestOptimisticLoggingRecovery(t *testing.T) {
	for stopAt := 1; stopAt <= 5; stopAt++ {
		w := sim.NewWorld(41, &flip{})
		d := New(w, protocol.OptimisticLogging, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Fatalf("stop@%d: did not finish", stopAt)
		}
		if !coinConsistent(w.Outputs[0]) {
			t.Errorf("stop@%d: inconsistent outputs %v", stopAt, w.Outputs[0])
		}
	}
}

// TestOptimisticLoggingDistributed: the requester/responder pair under
// OPTIMISTIC with crashes on both sides.
func TestOptimisticLoggingDistributed(t *testing.T) {
	for victim := 0; victim < 2; victim++ {
		w := sim.NewWorld(13, &requester{Rounds: 4}, &responder{Max: 4})
		d := New(w, protocol.OptimisticLogging, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(victim, 6)
		w.MaxSteps = 200000
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Fatalf("victim %d: did not finish (%v/%v)", victim, w.Procs[0].Status(), w.Procs[1].Status())
		}
		checkEcho(t, "OPTIMISTIC", w.Outputs[0])
	}
}

// burstWorker draws five rands per visible output.
type burstWorker struct{ ndWorker }

func (p *burstWorker) Step(ctx *sim.Ctx) sim.Status {
	if p.I >= 6*p.Rounds {
		return sim.Done
	}
	if p.I%6 < 5 {
		p.Acc ^= ctx.Rand()
	} else {
		ctx.Output(fmt.Sprintf("round %d", p.I/6+1))
	}
	p.I++
	return sim.Ready
}

// corruptible is a program whose consistency check fails after a flag is
// set, for the check-before-commit tests.
type corruptible struct {
	ndWorker
	Corrupt bool
}

func (c *corruptible) MarshalState() ([]byte, error) { return json.Marshal(c) }
func (c *corruptible) UnmarshalState(d []byte) error { return json.Unmarshal(d, c) }
func (c *corruptible) CheckConsistency() error {
	if c.Corrupt {
		return fmt.Errorf("corruptible: poisoned state")
	}
	return nil
}

func (c *corruptible) Step(ctx *sim.Ctx) sim.Status {
	if c.I == 7 && ctx.Fault("corrupt.site") == sim.HeapBitFlip {
		c.Corrupt = true
	}
	return c.ndWorker.Step(ctx)
}

type corruptInjector struct{ fired bool }

func (f *corruptInjector) At(p *sim.Proc, site string) sim.FaultKind {
	if f.fired {
		return sim.NoFault
	}
	f.fired = true
	return sim.HeapBitFlip
}

// TestCheckBeforeCommitRefusesCorruptState: with the §2.6 mitigation on,
// the corrupted state is never committed — the process crashes at the
// refused commit and recovery rolls back to clean state.
func TestCheckBeforeCommitRefusesCorruptState(t *testing.T) {
	run := func(mitigate bool) (*sim.World, *DC) {
		w := sim.NewWorld(5, &corruptible{ndWorker: ndWorker{Rounds: 10}})
		w.Faults = &corruptInjector{}
		d := New(w, protocol.CPVS, stablestore.Rio)
		d.CheckBeforeCommit = mitigate
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w, d
	}
	// Without the mitigation the poisoned state is committed and
	// survives recovery forever (here: the run completes, silently
	// corrupt).
	w, d := run(false)
	if d.ChecksFailed != 0 {
		t.Error("checks should not run when disabled")
	}
	if w.Procs[0].Prog.(*corruptible).Corrupt != true {
		t.Fatal("corruption never injected")
	}
	// With it, the first commit after the corruption is refused, the
	// process rolls back to the last good state, the one-shot fault does
	// not re-fire, and the run completes clean.
	w2, d2 := run(true)
	if d2.ChecksFailed == 0 {
		t.Fatal("the refused commit never happened")
	}
	if w2.Procs[0].Crashes == 0 {
		t.Error("refused commit should crash the process")
	}
	if !w2.AllDone() {
		t.Fatal("run did not complete after the refused commit")
	}
	if w2.Procs[0].Prog.(*corruptible).Corrupt {
		t.Error("corruption survived despite check-before-commit")
	}
}

// TestDeterministicWithRecovery: identical seeds and stop schedules produce
// byte-identical outcomes — recovery does not break the simulator's
// reproducibility guarantee.
func TestDeterministicWithRecovery(t *testing.T) {
	run := func() ([]string, int, time.Duration) {
		w := sim.NewWorld(99, &requester{Rounds: 5}, &responder{Max: 5})
		d := New(w, protocol.CBNDVS, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, 7)
		w.ScheduleStop(1, 12)
		w.MaxSteps = 200000
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.GlobalOutputs, d.Stats.TotalCheckpoints(), w.Clock
	}
	o1, c1, t1 := run()
	o2, c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic recovery: ckpts %d/%d clocks %v/%v", c1, c2, t1, t2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("output lengths differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("output %d differs: %q vs %q", i, o1[i], o2[i])
		}
	}
}

// sigWorker takes one signal mid-run and outputs it; used to verify the
// Targon/32 discipline: everything except signals is logged, and signals
// force a commit (the paper's description of the system).
type sigWorker struct{ ndWorker }

func (p *sigWorker) Step(ctx *sim.Ctx) sim.Status {
	if sig, ok := ctx.TakeSignal(); ok {
		ctx.Output("sig:" + sig)
		return sim.Ready
	}
	if p.I >= 2*p.Rounds {
		return sim.Done
	}
	if p.I%2 == 0 {
		in, ok := ctx.Input()
		if ok {
			p.Acc ^= uint64(in[0])
		}
	} else {
		ctx.Output(fmt.Sprintf("round %d", p.I/2+1))
		ctx.Sleep(time.Millisecond)
		p.I++
		return sim.Sleeping
	}
	p.I++
	return sim.Ready
}

func TestTargonCommitsOnSignals(t *testing.T) {
	w := sim.NewWorld(5, &sigWorker{ndWorker{Rounds: 6}})
	w.Procs[0].Ctx().Inputs = [][]byte{{1}, {2}, {3}, {4}, {5}, {6}}
	w.DeliverSignal(0, "SIGUSR1", 2*time.Millisecond)
	d := New(w, protocol.Targon32, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Targon/32 logs input and receives; the only commit must be the one
	// the signal forced.
	if got := d.Stats.TotalCheckpoints(); got != 1 {
		t.Errorf("checkpoints = %d, want exactly 1 (the signal)", got)
	}
	if d.Stats.LogRecords == 0 {
		t.Error("inputs should have been logged")
	}
}

// TestSignalRecoveryConsistent: a stop failure after an unlogged signal
// commit still recovers consistently.
func TestSignalRecoveryConsistent(t *testing.T) {
	for stopAt := 2; stopAt <= 12; stopAt += 2 {
		w := sim.NewWorld(5, &sigWorker{ndWorker{Rounds: 4}})
		w.Procs[0].Ctx().Inputs = [][]byte{{1}, {2}, {3}, {4}}
		w.DeliverSignal(0, "SIGUSR1", time.Millisecond)
		d := New(w, protocol.Targon32, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("stop@%d: did not finish", stopAt)
		}
	}
}

// fdHog opens Count files, crashing if an open fails — the paper's
// fixed-ND resource exhaustion.
type fdHog struct {
	Count  int
	Opened int
}

func (p *fdHog) Name() string                  { return "fdhog" }
func (p *fdHog) Init(ctx *sim.Ctx) error       { return nil }
func (p *fdHog) MarshalState() ([]byte, error) { return json.Marshal(p) }
func (p *fdHog) UnmarshalState(d []byte) error { return json.Unmarshal(d, p) }
func (p *fdHog) Step(ctx *sim.Ctx) sim.Status {
	if p.Opened >= p.Count {
		ctx.Output(fmt.Sprintf("opened %d", p.Opened))
		return sim.Done
	}
	if _, err := ctx.Syscall("open", []byte(fmt.Sprintf("f%d", p.Opened)), []byte{1}); err != nil {
		ctx.Crash(err.Error())
		return sim.Crashed
	}
	p.Opened++
	return sim.Ready
}

// TestExpandResourcesOnCrash: §2.6's "increase resource limits after a
// failure" converts the fixed-ND open failure into one the re-execution
// survives. Without the mitigation the run crash-loops and is abandoned.
func TestExpandResourcesOnCrash(t *testing.T) {
	run := func(expand bool) (*sim.World, int) {
		w := sim.NewWorld(5, &fdHog{Count: kernel.MaxOpenFiles + 10})
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		d := New(w, protocol.CPVS, stablestore.Rio)
		crashes := 0
		d.RecoveryHook = func(p *sim.Proc, reason string) {
			crashes++
			if crashes > 3 {
				d.DisableRecovery = true
			}
		}
		if expand {
			d.ExpandResourcesOnCrash = func(p *sim.Proc) {
				k.ExpandResources(p.Index)
			}
		}
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w, crashes
	}
	// Without expansion: deterministic open failure, crash loop, abandon.
	w, crashes := run(false)
	if w.AllDone() {
		t.Error("run should not complete against a hard fd limit")
	}
	if crashes < 3 {
		t.Errorf("expected a crash loop, got %d crashes", crashes)
	}
	// With expansion: one crash, limit doubled, run completes.
	w2, crashes2 := run(true)
	if !w2.AllDone() {
		t.Error("resource expansion should let the run complete")
	}
	if crashes2 != 1 {
		t.Errorf("crashes = %d, want exactly 1", crashes2)
	}
	if got := w2.Outputs[0][len(w2.Outputs[0])-1]; got != fmt.Sprintf("opened %d", kernel.MaxOpenFiles+10) {
		t.Errorf("final output = %q", got)
	}
}
