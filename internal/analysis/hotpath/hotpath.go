// Package hotpath statically pins the zero-allocation property of the
// commit hot path — the static companion of the AllocsPerRun regression
// tests. A function whose doc comment carries //failtrans:hotpath is a
// hot-path root (the vista dirty-bitset commit cycle, the dc checkpoint
// serializer); the analyzer propagates hotness through statically-resolved
// calls — across package boundaries, via object facts — and reports every
// construct in a hot function that the Go compiler turns into a heap
// allocation or that is hostile to allocation-freedom:
//
//   - make/new calls and map/slice composite literals (fresh backing store)
//   - composite literals whose address escapes (&T{...})
//   - implicit or explicit conversions of concrete values to interface
//     types, and string<->[]byte/[]rune conversions
//   - any fmt call (formatting allocates and walks interfaces)
//   - closures that capture enclosing locals by reference
//   - append whose result is neither assigned back to the slice it extends
//     nor returned (the Append* idiom), so the grown capacity is lost
//
// `//failtrans:alloc <reason>` on the line (or the line above) silences a
// finding; on a call it also stops hot-path propagation through that call
// (a sanctioned cold branch, e.g. lazy one-time initialization). Calls
// through interfaces and function values are propagation boundaries:
// dynamic dispatch is checked by the runtime AllocsPerRun tests instead.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"failtrans/internal/analysis"
)

// New returns the hotpathcheck analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "hotpathcheck",
		Doc:         "report allocation sites reachable from //failtrans:hotpath roots",
		SuppressTag: analysis.TagAlloc,
		Run:         run,
		Finish:      finish,
	}
}

// A summary is the per-function fact: annotation state, statically-resolved
// callees (facts cross package boundaries through it), and the allocation
// findings to surface should the function prove hot.
type summary struct {
	fn        *types.Func
	annotated bool
	callees   []*types.Func
	findings  []finding
}

type finding struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{fn: obj, annotated: analysis.HotpathAnnotated(fd.Doc)}
			collect(pass, fd, s)
			pass.ExportObjectFact(obj, s)
		}
	}
	return nil
}

// collect walks one function body, recording callees and allocation
// findings into its summary.
func collect(pass *analysis.Pass, fd *ast.FuncDecl, s *summary) {
	info := pass.Pkg.Info
	sanctioned := sanctionedAppends(info, fd.Body)
	// callFuns records every expression in call position, so a selector
	// used as a value — x.Method without the call — is told apart from
	// x.Method(...): the former binds its receiver into a heap closure.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(c.Fun)] = true
		}
		return true
	})
	add := func(pos token.Pos, format string, args ...any) {
		s.findings = append(s.findings, finding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, info, n, s, sanctioned, add)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[n] {
				add(n.Pos(), "method value %s binds its receiver into a heap-allocated closure (use a method expression or a func literal on the stack)",
					n.Sel.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "address-of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			case *types.Slice:
				add(n.Pos(), "slice literal allocates its backing array")
			}
		case *ast.FuncLit:
			if name, ok := capturedLocal(info, fd, n); ok {
				add(n.Pos(), "closure captures %q by reference and is heap-allocated", name)
			}
		}
		return true
	})
}

// checkCall records the call's propagation edge and any allocation finding
// it implies.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, s *summary, sanctioned map[*ast.CallExpr]bool, add func(token.Pos, string, ...any)) {
	// Builtins: make/new allocate; append must follow the reuse idiom.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				add(call.Pos(), "%s allocates", b.Name())
			case "append":
				if !sanctioned[call] {
					add(call.Pos(), "append result is neither assigned back to its slice nor returned; grown capacity is lost")
				}
			}
			return
		}
	}
	tv := info.Types[call.Fun]
	if tv.IsType() {
		// Explicit conversion.
		checkConversion(info, call, tv.Type, add)
		return
	}
	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			add(call.Pos(), "fmt.%s allocates (formatting state and interface walks)", fn.Name())
		} else if !pass.Suppressed(call.Pos()) {
			// A suppressed call is a sanctioned cold branch: the edge is
			// cut and hotness does not propagate into the callee.
			s.callees = append(s.callees, fn)
		}
	}
	// Implicit interface conversions at the call boundary.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed whole; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isConcreteToInterface(info, arg, pt) {
			add(arg.Pos(), "argument converts concrete %s to interface %s (may allocate)",
				info.Types[arg].Type, pt)
		}
	}
}

// checkConversion flags explicit conversions that allocate: concrete →
// interface boxing and string <-> byte/rune slice copies.
func checkConversion(info *types.Info, call *ast.CallExpr, target types.Type, add func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if isConcreteToInterface(info, arg, target) {
		add(call.Pos(), "conversion boxes concrete %s into interface %s", info.Types[arg].Type, target)
		return
	}
	src := info.Types[arg].Type
	if src == nil {
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	tSlice, tIsSlice := tu.(*types.Slice)
	_, sIsString := su.(*types.Basic)
	if tIsSlice && sIsString && isByteOrRune(tSlice.Elem()) && isStringType(su) {
		add(call.Pos(), "string to %s conversion copies", target)
	}
	if isStringType(tu) {
		if sSlice, ok := su.(*types.Slice); ok && isByteOrRune(sSlice.Elem()) {
			add(call.Pos(), "%s to string conversion copies", src)
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isConcreteToInterface reports whether assigning arg to a parameter (or
// conversion target) of type pt boxes a concrete value into an interface.
func isConcreteToInterface(info *types.Info, arg ast.Expr, pt types.Type) bool {
	if pt == nil || !types.IsInterface(pt) {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// sanctionedAppends marks append calls following the two zero-alloc idioms:
// the result is assigned back to the (possibly resliced) slice it extends,
// or it is returned directly (the AppendContents/AppendCheckpointImage
// convention, where the caller owns the buffer).
func sanctionedAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	isAppend := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, isCall := ast.Unparen(e).(*ast.CallExpr)
		if !isCall {
			return nil, false
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent {
			return nil, false
		}
		b, isBuiltin := info.Uses[id].(*types.Builtin)
		return call, isBuiltin && b.Name() == "append"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, is := isAppend(rhs)
				if !is || len(call.Args) == 0 {
					continue
				}
				if types.ExprString(stripSlices(call.Args[0])) == types.ExprString(n.Lhs[i]) {
					ok[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, is := isAppend(res); is {
					ok[call] = true
				}
			}
		}
		return true
	})
	return ok
}

// stripSlices peels reslicing off an expression, so append(buf[:0], ...)
// assigned to buf counts as reuse of buf.
func stripSlices(e ast.Expr) ast.Expr {
	for {
		se, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = se.X
	}
}

// capturedLocal returns the name of a variable of the enclosing function
// that the literal captures by reference, if any.
func capturedLocal(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || !v.Pos().IsValid() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

// finish propagates hotness from annotated roots through the recorded call
// edges — the cross-package fact walk — and reports the findings of every
// function that proves hot.
func finish(f *analysis.Finish) {
	sums := make(map[types.Object]*summary)
	var roots []*summary
	for _, of := range f.AllObjectFacts() {
		s := of.Fact.(*summary)
		sums[of.Object] = s
		if s.annotated {
			roots = append(roots, s)
		}
	}
	// AllObjectFacts is position-sorted, so the BFS — and each function's
	// attributed root — is deterministic.
	hot := make(map[types.Object]string)
	var queue []types.Object
	for _, r := range roots {
		if _, seen := hot[r.fn]; !seen {
			hot[r.fn] = funcLabel(r.fn)
			queue = append(queue, r.fn)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		s := sums[obj]
		for _, callee := range s.callees {
			cs, analyzed := sums[callee]
			if !analyzed {
				continue // outside the analyzed tree (stdlib): boundary
			}
			if _, seen := hot[cs.fn]; !seen {
				hot[cs.fn] = hot[obj]
				queue = append(queue, cs.fn)
			}
		}
	}
	for _, of := range f.AllObjectFacts() {
		root, isHot := hot[of.Object]
		if !isHot {
			continue
		}
		s := of.Fact.(*summary)
		for _, fd := range s.findings {
			f.Reportf(fd.pos, "hot path (via %s): %s", root, fd.msg)
		}
	}
}

// funcLabel renders a function compactly: pkg.Func or pkg.(*Recv).Method.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		star := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			star = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			name = "(" + star + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
