package event

// VC is a vector clock: VC[p] counts the events of process p known to have
// happened at or before the clock's owner. Vector clocks characterize
// happens-before exactly: for events a, b with clocks va, vb,
// a happens-before b iff va.Before(vb).
type VC []int

// NewVC returns a zeroed vector clock for n processes.
func NewVC(n int) VC { return make(VC, n) }

// Clone returns an independent copy of the clock.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Merge sets v to the component-wise maximum of v and o.
func (v VC) Merge(o VC) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// LE reports whether v ≤ o component-wise.
func (v VC) LE(o VC) bool {
	for i := range v {
		ov := 0
		if i < len(o) {
			ov = o[i]
		}
		if v[i] > ov {
			return false
		}
	}
	return true
}

// Before reports whether v happens-before o: v ≤ o and v ≠ o.
func (v VC) Before(o VC) bool {
	return v.LE(o) && !o.LE(v)
}

// Concurrent reports whether neither clock happens-before the other.
func (v VC) Concurrent(o VC) bool {
	return !v.LE(o) && !o.LE(v)
}

// Equal reports component-wise equality.
func (v VC) Equal(o VC) bool {
	return v.LE(o) && o.LE(v)
}
