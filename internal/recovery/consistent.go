package recovery

// This file implements the paper's definition of consistent recovery:
// recovery is consistent iff there exists a complete, failure-free execution
// of the computation that would result in a sequence of visible events
// equivalent to the sequence actually output in the failed and recovered
// run — where a sequence V is equivalent to a failure-free V' if the only
// events in V that differ from V' are repeats of earlier events from V.

// Equivalent reports whether the recovered run's visible output `got` is
// equivalent to the failure-free output `legal` under the paper's
// duplicates-allowed rule, and additionally whether the match is complete
// (all of `legal` was eventually produced, the no-orphan constraint).
//
// Outputs are compared as opaque strings.
func Equivalent(got, legal []string) (equivalent, complete bool) {
	seen := make(map[string]bool)
	j := 0
	for _, v := range got {
		if j < len(legal) && v == legal[j] {
			seen[v] = true
			j++
			continue
		}
		// Not the next legal event: permitted only as a repeat of an
		// event this run already output.
		if !seen[v] {
			return false, false
		}
	}
	return true, j == len(legal)
}

// ExtendsLegal reports whether `got` extends a prefix of `legal` with
// duplicates allowed — the visible constraint of consistent recovery for a
// run that may not have finished yet.
func ExtendsLegal(got, legal []string) bool {
	eq, _ := Equivalent(got, legal)
	return eq
}

// ConsistentAgainstAny reports whether `got` is equivalent to at least one
// of the candidate failure-free output sequences, as required by the
// existential in the definition ("there exists a complete failure-free
// execution").
func ConsistentAgainstAny(got []string, candidates [][]string) bool {
	for _, legal := range candidates {
		if _, complete := Equivalent(got, legal); complete {
			return true
		}
	}
	return false
}
