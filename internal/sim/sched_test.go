package sim

import (
	"fmt"
	"testing"
	"time"
)

// This file pins the readiness index (sched.go) to the legacy scan: the
// edge cases where the two could plausibly diverge — ties, limit
// boundaries, wake clamping, fork rebuilds, redelivery arming — plus the
// hot-path allocation budget the //failtrans:hotpath annotations promise.

// twoWorlds runs the same program set under the scan and the indexed
// scheduler and returns both finished worlds.
func twoWorlds(t *testing.T, seed int64, build func() []Program) (scan, indexed *World) {
	t.Helper()
	scan = NewWorld(seed, build()...)
	scan.ScanSched = true
	indexed = NewWorld(seed, build()...)
	indexed.ScanSched = false
	if err := scan.Run(); err != nil {
		t.Fatal(err)
	}
	if err := indexed.Run(); err != nil {
		t.Fatal(err)
	}
	return scan, indexed
}

// assertSameSchedule fails unless the two worlds took byte-identical
// schedules: same trace, outputs, clock and per-process step counts.
func assertSameSchedule(t *testing.T, scan, indexed *World) {
	t.Helper()
	if scan.Clock != indexed.Clock || scan.StepCount() != indexed.StepCount() {
		t.Fatalf("scan clock=%v steps=%d, indexed clock=%v steps=%d",
			scan.Clock, scan.StepCount(), indexed.Clock, indexed.StepCount())
	}
	if got, want := fmt.Sprint(indexed.GlobalOutputs), fmt.Sprint(scan.GlobalOutputs); got != want {
		t.Fatalf("visible output diverged:\nscan:    %s\nindexed: %s", want, got)
	}
	if got, want := fmt.Sprint(indexed.Trace.Events), fmt.Sprint(scan.Trace.Events); got != want {
		t.Fatal("event traces diverged between scan and indexed schedulers")
	}
	for i := range scan.Procs {
		if scan.Procs[i].Steps != indexed.Procs[i].Steps {
			t.Fatalf("proc %d: scan %d steps, indexed %d",
				i, scan.Procs[i].Steps, indexed.Procs[i].Steps)
		}
	}
}

// TestSchedTieLowestPid: with every process permanently tied at the same
// readyAt, the index must reproduce the scan's lowest-pid-first order for
// arbitrarily many contenders, not just two.
func TestSchedTieLowestPid(t *testing.T) {
	scan, indexed := twoWorlds(t, 5, func() []Program {
		progs := make([]Program, 5)
		for i := range progs {
			progs[i] = &counter{N: 4}
		}
		return progs
	})
	assertSameSchedule(t, scan, indexed)
	// First scheduling round is pid-ascending: all five start tied at 0.
	for i := 0; i < 5; i++ {
		if got := scan.Trace.Events[i].ID.P; got != i {
			t.Fatalf("tie round pick %d = proc %d, want %d", i, got, i)
		}
	}
}

// TestSchedMixedWorkloadIdentical: messages, sleeps and terminations churn
// the index through every transition (push, remove, move-up, move-down).
func TestSchedMixedWorkloadIdentical(t *testing.T) {
	scan, indexed := twoWorlds(t, 9, func() []Program {
		return []Program{
			&pinger{Rounds: 6},
			&ponger{Max: 6},
			&sleeper{},
			&counter{N: 10},
		}
	})
	assertSameSchedule(t, scan, indexed)
	if !indexed.AllDone() {
		t.Fatal("mixed workload did not finish")
	}
}

// TestSchedDelayClampsWakeIntoPresent: Delay clamps a wake that would land
// in the past to the current clock, and the index re-keys the process so it
// is immediately schedulable — identically to the scan.
func TestSchedDelayClampsWakeIntoPresent(t *testing.T) {
	for _, scanSched := range []bool{true, false} {
		w := NewWorld(2, &sleeper{}, &counter{N: 2})
		w.ScanSched = scanSched
		if err := w.Init(); err != nil {
			t.Fatal(err)
		}
		// Run until the sleeper parks 100ms out.
		for w.Procs[0].Status() != Sleeping {
			if more, err := w.Step(); err != nil || !more {
				t.Fatalf("more=%v err=%v before sleeper parked", more, err)
			}
		}
		p := w.Procs[0]
		// Pull the wake far into the past; Delay must clamp to now.
		w.Delay(p, -time.Hour)
		if p.wake != w.Clock {
			t.Fatalf("sched=%v: wake = %v, want clamp to clock %v", scanSched, p.wake, w.Clock)
		}
		at, ok := w.readyAt(p)
		if !ok || at != w.Clock {
			t.Fatalf("sched=%v: readyAt = %v/%v, want %v/true", scanSched, at, ok, w.Clock)
		}
		before := p.Steps
		if more, err := w.Step(); err != nil || !more {
			t.Fatalf("sched=%v: step after clamp: more=%v err=%v", scanSched, more, err)
		}
		if p.Steps != before+1 {
			t.Fatalf("sched=%v: clamped process was not the next pick", scanSched)
		}
	}
}

// TestSchedMaxTimeBoundary: hitting MaxTime returns false without
// consuming the pick; the indexed peek must leave the heap intact so the
// refusal is repeatable and the scan-identical step/clock state survives.
func TestSchedMaxTimeBoundary(t *testing.T) {
	run := func(scanSched bool) *World {
		w := NewWorld(3, &sleeper{}, &sleeper{})
		w.ScanSched = scanSched
		w.MaxTime = 150 * time.Millisecond
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	scan, indexed := run(true), run(false)
	if scan.Clock != indexed.Clock || scan.StepCount() != indexed.StepCount() {
		t.Fatalf("scan clock=%v steps=%d, indexed clock=%v steps=%d",
			scan.Clock, scan.StepCount(), indexed.Clock, indexed.StepCount())
	}
	if indexed.AllDone() {
		t.Fatal("MaxTime should have cut the run short")
	}
	// The refusal is stable: stepping again keeps returning false with no
	// error and no state change (the pick was peeked, not popped).
	for i := 0; i < 3; i++ {
		steps, clock := indexed.StepCount(), indexed.Clock
		more, err := indexed.Step()
		if more || err != nil {
			t.Fatalf("step %d past MaxTime: more=%v err=%v", i, more, err)
		}
		if indexed.StepCount() != steps || indexed.Clock != clock {
			t.Fatalf("step %d past MaxTime mutated the world", i)
		}
	}
}

// TestSchedMaxStepsBoundary: the step budget trips at the same decision
// under either scheduler.
func TestSchedMaxStepsBoundary(t *testing.T) {
	run := func(scanSched bool) (int, error) {
		w := NewWorld(3, &counter{N: 1 << 20})
		w.ScanSched = scanSched
		w.MaxSteps = 25
		return w.StepCount(), w.Run()
	}
	_, errScan := run(true)
	_, errIdx := run(false)
	if errScan == nil || errIdx == nil {
		t.Fatalf("want step-budget errors, got scan=%v indexed=%v", errScan, errIdx)
	}
	if errScan.Error() != errIdx.Error() {
		t.Fatalf("error text diverged: scan %q, indexed %q", errScan, errIdx)
	}
}

// fpinger/fponger are forkable variants of the ping-pong pair.
type fpinger struct{ pinger }

func (p *fpinger) Fork() (Program, error) { return &fpinger{pinger: p.pinger}, nil }

type fponger struct{ ponger }

func (p *fponger) Fork() (Program, error) { return &fponger{ponger: p.ponger}, nil }

// TestSchedForkRearms: a forked world starts with no index (schedBuilt is
// reset) and rebuilds on its first decision; forks of the same template
// finish identically whichever scheduler each uses.
func TestSchedForkRearms(t *testing.T) {
	w := NewWorld(13, &fpinger{pinger{Rounds: 5}}, &fponger{ponger{Max: 5}}, &rngCounter{counter{N: 8}})
	if err := w.Init(); err != nil {
		t.Fatal(err)
	}
	// Run halfway so the parent's index is live and mid-churn.
	for i := 0; i < 10; i++ {
		if more, err := w.Step(); err != nil || !more {
			t.Fatalf("parent step %d: more=%v err=%v", i, more, err)
		}
	}
	forkA, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	forkB, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	forkA.ScanSched = true
	forkB.ScanSched = false
	if err := forkA.Run(); err != nil {
		t.Fatal(err)
	}
	if err := forkB.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameSchedule(t, forkA, forkB)
	if !forkB.AllDone() {
		t.Fatal("fork did not finish")
	}
	// The parent's own index kept working across the forks.
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("parent did not finish after forking")
	}
}

// TestSchedRequeueRearmsBlockedProc: RequeueRetained makes a message-blocked
// process with an empty inbox runnable again (its replay queue now feeds
// Recv); the index must pick it up without any inbox traffic.
func TestSchedRequeueRearmsBlockedProc(t *testing.T) {
	// Ponger consumes two pings, then its partner finishes; a rollback
	// re-arms redelivery of the consumed messages.
	w := NewWorld(21, &pinger{Rounds: 2}, &ponger{Max: 4})
	for {
		more, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	ponger := w.Procs[1]
	if ponger.Status() != WaitMsg {
		t.Fatalf("ponger status = %v, want WaitMsg", ponger.Status())
	}
	if _, ok := w.readyAt(ponger); ok {
		t.Fatal("blocked ponger with drained inbox should not be runnable")
	}
	if len(ponger.retained) == 0 {
		t.Fatal("ponger retained no messages; test premise broken")
	}
	w.RequeueRetained(ponger)
	at, ok := w.readyAt(ponger)
	if !ok {
		t.Fatal("RequeueRetained did not make the ponger runnable")
	}
	// Step until the ponger consumes a redelivered message. (A step that
	// finds the replay head not yet position-due records no event; the
	// divergence fallback then flushes the queue to the inbox.)
	before := ponger.Steps
	for i := 0; i < 4 && ponger.Steps == before; i++ {
		more, err := w.Step()
		if err != nil || !more {
			t.Fatalf("step after requeue: more=%v err=%v", more, err)
		}
	}
	if ponger.Steps == before {
		t.Fatal("requeued process was never scheduled")
	}
	if w.Clock < at {
		t.Fatalf("clock %v did not advance to the requeued readyAt %v", w.Clock, at)
	}
}

// TestSchedRequeueLoggedRearmsBlockedProc: RequeueLogged re-injects a
// logged message through inboxAdd, whose invalidation hook must wake the
// index for a process that was out of the heap entirely.
func TestSchedRequeueLoggedRearmsBlockedProc(t *testing.T) {
	w := NewWorld(22, &pinger{Rounds: 1}, &ponger{Max: 3})
	for {
		more, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	ponger := w.Procs[1]
	if _, ok := w.readyAt(ponger); ok {
		t.Fatal("ponger should be blocked before reinjection")
	}
	// SendIdx must clear the receive high-water mark or Recv dedups the
	// reinjected record as a re-executed duplicate.
	record := EncodeMsgRecord(Msg{From: 0, To: 1, SendIdx: 99, Payload: []byte("replayed ping")})
	w.RequeueLogged(ponger, record)
	if _, ok := w.readyAt(ponger); !ok {
		t.Fatal("RequeueLogged did not make the ponger runnable")
	}
	before := ponger.Steps
	for i := 0; i < 4 && ponger.Steps == before; i++ {
		if more, err := w.Step(); err != nil || !more {
			t.Fatalf("step after RequeueLogged: more=%v err=%v", more, err)
		}
	}
	if ponger.Steps == before {
		t.Fatal("reinjected process was never scheduled")
	}
}

// napper parks for a fixed interval every step, forever: the steady-state
// scheduling workload for the allocation pin.
type napper struct{ counter }

func (n *napper) Step(ctx *Ctx) Status {
	ctx.Sleep(time.Millisecond)
	return Sleeping
}

// TestSchedStepAllocFree pins the //failtrans:hotpath promise: with
// tracing off, a steady-state scheduling decision — pick, program step,
// reindex — performs zero heap allocations under either scheduler.
func TestSchedStepAllocFree(t *testing.T) {
	for _, scanSched := range []bool{true, false} {
		progs := make([]Program, 64)
		for i := range progs {
			progs[i] = &napper{}
		}
		w := NewWorld(4, progs...)
		w.ScanSched = scanSched
		w.RecordTrace = false
		if err := w.Init(); err != nil {
			t.Fatal(err)
		}
		// Warm up past the lazy index build and stale-list growth.
		for i := 0; i < 3*len(progs); i++ {
			if more, err := w.Step(); err != nil || !more {
				t.Fatalf("warmup step %d: more=%v err=%v", i, more, err)
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			if more, err := w.Step(); err != nil || !more {
				t.Fatalf("more=%v err=%v", more, err)
			}
		})
		if allocs != 0 {
			t.Errorf("scanSched=%v: %v allocs per Step, want 0", scanSched, allocs)
		}
	}
}

// TestSchedLenTracksActive: SchedLen is the "active" in O(active) — it
// counts runnable processes, not fleet size.
func TestSchedLenTracksActive(t *testing.T) {
	w := NewWorld(6, &counter{N: 2}, &counter{N: 2}, &pinger{Rounds: 1}, &ponger{Max: 1})
	if err := w.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if got := w.SchedLen(); got == 0 || got > len(w.Procs) {
		t.Fatalf("SchedLen = %d, want within (0, %d]", got, len(w.Procs))
	}
	for {
		more, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	// Drained: one final pick observed an empty heap.
	if got := w.SchedLen(); got != 0 {
		t.Fatalf("SchedLen after drain = %d, want 0", got)
	}
}
