package faults

import (
	"sync"

	"failtrans/internal/dc"
	"failtrans/internal/kernel"
)

// SnapshotStore is a content-addressed memo of frozen prefix caches, shared
// across studies. A fault campaign's template run is pure — the clean
// session is fixed by (app, protocol, seed, session length, commit-check
// flag) — so two studies with equal configuration build byte-identical
// snapshot sequences. The store lets the second one skip the template run
// and fork the first one's frozen templates directly: the benchmark's
// best-of-3 iterations, a protocol sweep over one app/seed, and the COW
// on/off CI comparison all hit the same entry.
//
// Safety rests on Freeze: a stored cache's worlds are sealed, so serving
// them to any number of concurrent studies cannot mutate them — a fork
// privatizes what it touches. Each entry also records the content digest
// of its templates (segment page hashes, kernel filesystem contents,
// recovery replay state) at publish time; a lookup re-derives the digest
// and treats a mismatch as a miss, so any nondeterminism or mutation leak
// trips the wire instead of silently serving a diverged prefix.
type SnapshotStore struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
}

// storeKey is the configuration identity of a clean prefix: everything
// that influences the template run. Injection-side knobs (fault kinds,
// crash targets, parallelism) are deliberately absent — they only matter
// after a fork.
type storeKey struct {
	kind              string // "table1" (app study) or "table2" (OS study)
	app               string
	policy            string
	seed              int64
	sessionLen        int
	checkBeforeCommit bool
}

type storeEntry struct {
	cache  *prefixCache
	digest uint64
}

// NewSnapshotStore returns an empty store, ready to be shared by any
// number of concurrent studies.
func NewSnapshotStore() *SnapshotStore {
	return &SnapshotStore{entries: make(map[storeKey]*storeEntry)}
}

// digest folds the cache's snapshot sequence into one content address:
// each snapshot's position keys (visits, clock, steps), commit history,
// and — through the ContentDigest methods — its recovery layer's page
// contents and replay state plus its kernel's filesystem image.
func (c *prefixCache) digest() uint64 {
	const mul = 0x9E3779B97F4A7C15
	h := uint64(0xC0FFEE1CEBABB1E5)
	for i := range c.snaps {
		snap := &c.snaps[i]
		h = (h ^ uint64(snap.visits)) * mul
		h = (h ^ uint64(snap.clock)) * mul
		h = (h ^ uint64(snap.steps)) * mul
		h = (h ^ uint64(len(snap.commits))) * mul
		for _, cm := range snap.commits {
			h = (h ^ uint64(cm)) * mul
		}
		if d, ok := snap.world.Recovery.(*dc.DC); ok {
			h = (h ^ d.ContentDigest()) * mul
		}
		if k, ok := snap.world.OS.(*kernel.Kernel); ok {
			h = (h ^ k.ContentDigest()) * mul
		}
	}
	return h
}

// lookup returns the cache for key, building and publishing it on a miss.
// A hit whose recomputed digest no longer matches the published one is
// demoted to a miss (and the stale entry replaced) — the nondeterminism
// tripwire.
func (st *SnapshotStore) lookup(key storeKey, build func() (*prefixCache, error)) (*prefixCache, bool, error) {
	st.mu.Lock()
	e := st.entries[key]
	st.mu.Unlock()
	if e != nil && e.cache.digest() == e.digest {
		return e.cache, true, nil
	}
	c, err := build()
	if err != nil {
		return nil, false, err
	}
	st.mu.Lock()
	st.entries[key] = &storeEntry{cache: c, digest: c.digest()}
	st.mu.Unlock()
	return c, false, nil
}

// Len reports how many distinct clean prefixes the store holds.
func (st *SnapshotStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// storeKeyFor derives this study's configuration identity.
func (s *AppStudy) storeKeyFor(kind string) storeKey {
	return storeKey{
		kind:              kind,
		app:               s.App,
		policy:            s.Policy.Name,
		seed:              s.Seed,
		sessionLen:        s.SessionLen,
		checkBeforeCommit: s.CheckBeforeCommit,
	}
}

// cachedPrefix resolves the study's prefix cache: through the store when
// one is attached (and COW guarantees immutability), else by building
// directly. Store traffic is accounted in the campaign metrics.
func (s *AppStudy) cachedPrefix(kind string, build func() (*prefixCache, error)) (*prefixCache, error) {
	if s.Store == nil || !s.COW {
		return build()
	}
	c, hit, err := s.Store.lookup(s.storeKeyFor(kind), build)
	if err != nil {
		return nil, err
	}
	if s.CampaignObs != nil {
		if hit {
			s.CampaignObs.Snapshot.AddStoreHit()
		} else {
			s.CampaignObs.Snapshot.AddStoreMiss()
		}
	}
	return c, nil
}
