package sim

import (
	"fmt"
	"math/rand"
	"time"

	"failtrans/internal/event"
	"failtrans/internal/obs"
)

// Msg is one message in flight or delivered.
type Msg struct {
	ID       int64
	From, To int
	// SendIdx is the per-sender sequence number, used to filter the
	// duplicate messages that re-executed sends produce (the paper's
	// requirement that applications "tolerate or filter duplicate
	// messages" is met here by the runtime, as a transport layer would).
	SendIdx   int64
	Payload   []byte
	DeliverAt time.Duration
}

// Proc is one simulated process.
type Proc struct {
	Index int
	Prog  Program
	World *World

	ctx    *Ctx
	status Status
	// wake is the earliest virtual time the process may run again.
	wake time.Duration

	inbox []*Msg
	// retained holds messages consumed since the process's last commit,
	// for redelivery if the process rolls back (the paper's "recovery
	// buffer"). Each entry remembers the event position (relative to the
	// last commit) at which it was consumed, so redelivery reproduces
	// the original interleaving of receives with computation.
	retained []retainedMsg
	// retainBase anchors those relative positions.
	retainBase int
	// replayQueue holds retained messages being redelivered after a
	// rollback, gated by position.
	replayQueue []retainedMsg

	// rng is materialized lazily by rand(): seeding a rand.Rand fills a
	// 607-word generator, which would dominate fork cost for the many
	// workloads that never draw from it.
	rng *rand.Rand
	// rngSeed and rngDraws make the rng forkable: a fork records the seed
	// and draw count, and the first draw reseeds a fresh generator and
	// fast-forwards to the same point in the stream (rand.Rand state is
	// not otherwise copyable).
	rngSeed  int64
	rngDraws int64

	// Steps counts event positions on this process; fault timelines and
	// protocol bookkeeping are expressed in this counter.
	Steps int
	// Crashes counts how many times the process crashed.
	Crashes int
	// InputCursor indexes the scripted fixed-ND input; it is part of the
	// state Discount Checking must checkpoint (kernel/session state).
	InputCursor int
	// SendSeq is the per-sender message sequence counter; rolled back
	// with the process so re-executed sends reuse their indexes and the
	// receivers' duplicate filters drop them.
	SendSeq int64
	// RecvHW records, per sender, the highest SendIdx consumed; messages
	// at or below it are duplicates from a re-executed send.
	RecvHW map[int]int64

	stops []int
	// signals is the pending signal queue (delivered by virtual time).
	signals []pendingSignal
	dead    bool

	// inboxMin caches the minimum DeliverAt over the inbox so the
	// scheduler's WaitMsg wake-up lookup is O(1) instead of rescanning
	// the inbox at every scheduling decision. inboxMinOK marks the cache
	// valid; any inbox mutation either maintains the minimum (appends)
	// or invalidates it (removals), and the next lookup recomputes.
	inboxMin   time.Duration
	inboxMinOK bool

	// schedAt/schedIdx are the process's slot in the world's readiness
	// index (see sched.go): schedAt is the heap key (the readyAt the heap
	// last saw), schedIdx the heap position (-1 = not runnable / not in
	// the heap), and schedDirty marks a pending reindex on the world's
	// stale list.
	schedAt    time.Duration
	schedIdx   int
	schedDirty bool

	// ctxStore inlines the runtime context in the process's own arena
	// slot (ctx == &ctxStore), making Proc self-referential: Proc values
	// must never be copied — worlds allocate fixed-size slabs and fork
	// fills slots in place.
	ctxStore Ctx

	// ckptSenders is reusable scratch for AppendCheckpointImage.
	ckptSenders []int
}

// initCtx wires the inline context to its owning process. Must run before
// the Proc is shared, and never again after ctx escapes.
func (p *Proc) initCtx() {
	p.ctxStore = Ctx{p: p}
	p.ctx = &p.ctxStore
}

// inboxAdd appends a message, maintaining the cached delivery minimum and
// the inbox-depth gauge.
func (p *Proc) inboxAdd(m *Msg) {
	p.inbox = append(p.inbox, m)
	if len(p.inbox) == 1 {
		p.inboxMin = m.DeliverAt
		p.inboxMinOK = true
	} else if p.inboxMinOK && m.DeliverAt < p.inboxMin {
		p.inboxMin = m.DeliverAt
	}
	if mr := p.World.Metrics; mr != nil {
		pm := &mr.Procs[p.Index]
		if depth := int64(len(p.inbox)); depth > pm.InboxPeak {
			pm.InboxPeak = depth
		}
	}
	p.World.schedTouch(p)
}

// inboxChanged invalidates the cached delivery minimum after a removal or
// wholesale rebuild of the inbox.
func (p *Proc) inboxChanged() {
	p.inboxMinOK = false
	p.World.schedTouch(p)
}

// earliestInbox returns the minimum DeliverAt over the inbox, recomputing
// the cache only when an earlier mutation invalidated it.
func (p *Proc) earliestInbox() (time.Duration, bool) {
	if len(p.inbox) == 0 {
		return 0, false
	}
	if !p.inboxMinOK {
		best := p.inbox[0].DeliverAt
		for _, m := range p.inbox[1:] {
			if m.DeliverAt < best {
				best = m.DeliverAt
			}
		}
		p.inboxMin = best
		p.inboxMinOK = true
	}
	return p.inboxMin, true
}

// pendingSignal is one scheduled asynchronous signal.
type pendingSignal struct {
	sig string
	at  time.Duration
}

// Status returns the process's scheduling status.
func (p *Proc) Status() Status { return p.status }

// Ctx returns the process's runtime context.
func (p *Proc) Ctx() *Ctx { return p.ctx }

// Dead reports whether the process crashed and was not recovered.
func (p *Proc) Dead() bool { return p.dead }

// World is one simulated computation.
type World struct {
	Procs []*Proc
	Clock time.Duration

	// Recovery, if non-nil, intercepts events (Discount Checking).
	Recovery Recovery
	// OS, if non-nil, serves syscalls.
	OS OS
	// Faults, if non-nil, drives application fault injection.
	Faults FaultInjector

	// Latency is the one-way message latency (switched 100 Mb/s
	// Ethernet era: ~100 µs for small messages).
	Latency time.Duration

	// RecordTrace enables full event-trace recording (needed by the
	// invariant checkers; off for long benchmark runs).
	RecordTrace bool
	Trace       *event.Trace

	// Outputs collects each process's visible output, in emission order.
	Outputs [][]string
	// GlobalOutputs interleaves all visible output in global order as
	// "p<idx>:<payload>".
	GlobalOutputs []string

	// MaxTime aborts the run when the virtual clock passes it (0 = no
	// limit); MaxSteps bounds total steps likewise.
	MaxTime  time.Duration
	MaxSteps int

	// EventCount counts all recorded events (even with tracing off).
	EventCount int64

	// Metrics, if non-nil, receives the per-process counters, gauges and
	// virtual-time histograms of the observability layer. The hooks are
	// fixed-slot increments, so the instrumented hot paths stay
	// allocation-free.
	Metrics *obs.Metrics
	// Tracer, if non-nil, receives causal spans and flow arrows over
	// virtual time (exported as Chrome trace-event JSON).
	Tracer *obs.Tracer
	// DebugLog, if non-nil and enabled, receives scheduler diagnostics;
	// nil (the default) is silent.
	DebugLog *obs.DebugLog

	// ScanSched selects the legacy O(Procs) scheduling scan instead of
	// the readiness index — the `-sched=scan` escape hatch and the
	// differential oracle the equivalence tests and CI diff against.
	// Must be set before the first Step; Fork inherits it.
	ScanSched bool

	// sched is the readiness index: a binary min-heap of runnable
	// processes keyed by (readyAt, pid); schedStale lists processes whose
	// readiness inputs changed since the last scheduling decision, and
	// schedBuilt marks the index constructed (it rebuilds lazily on the
	// first indexed decision after NewWorld, Init or Fork). See sched.go.
	sched      []*Proc
	schedStale []*Proc
	schedBuilt bool

	// doneCount/deadCount track status transitions so AllDone and
	// liveness queries are O(1) instead of rescanning Procs.
	doneCount int
	deadCount int

	// msgBlock/payloadBlock are the message arenas: send bump-allocates
	// Msg headers and payload bytes out of fixed-size blocks instead of
	// two heap objects per message. Messages are immutable once enqueued
	// (every mutation path copies first), so blocks are safely shared
	// with forks; a fork starts fresh blocks of its own.
	msgBlock     []Msg
	payloadBlock []byte

	msgSeq    int64
	stepCount int
	seed      int64
	inited    bool
	// frozen marks a world sealed by Freeze as an immutable fork template:
	// stepping it is a bug, and its components fork copy-on-write.
	frozen bool
}

// msgBlockSize and payloadBlockSize size the message arena blocks: big
// enough to amortize allocation to noise, small enough that a mostly-idle
// world wastes little.
const (
	msgBlockSize     = 256
	payloadBlockSize = 16 << 10
)

// allocMsg bump-allocates one message header from the arena. A full block
// is abandoned to the messages already pointing into it (the GC frees it
// when the last one goes) and a fresh block begins.
//
//failtrans:hotpath
func (w *World) allocMsg() *Msg {
	if len(w.msgBlock) == cap(w.msgBlock) {
		//failtrans:alloc amortized arena growth: one block per msgBlockSize messages
		w.msgBlock = make([]Msg, 0, msgBlockSize)
	}
	n := len(w.msgBlock)
	w.msgBlock = w.msgBlock[:n+1]
	return &w.msgBlock[n]
}

// allocBytes bump-allocates n payload bytes, capacity-clamped so an
// appending consumer can never bleed into the next payload.
//
//failtrans:hotpath
func (w *World) allocBytes(n int) []byte {
	if len(w.payloadBlock)+n > cap(w.payloadBlock) {
		size := payloadBlockSize
		if n > size {
			size = n
		}
		//failtrans:alloc amortized arena growth: one block per payloadBlockSize bytes
		w.payloadBlock = make([]byte, 0, size)
	}
	off := len(w.payloadBlock)
	w.payloadBlock = w.payloadBlock[:off+n]
	return w.payloadBlock[off : off+n : off+n]
}

// NewWorld creates a computation of the given programs, seeded
// deterministically. Processes live in one fixed-size slab (their contexts
// inlined), so a 10⁵-proc world is a handful of allocations, not 3n; the
// slab never grows, keeping interior pointers stable. The per-sender
// receive high-water map materializes on first receive (bumpRecvHW), so
// parked processes carry none.
func NewWorld(seed int64, progs ...Program) *World {
	w := &World{
		Latency:     100 * time.Microsecond,
		Trace:       event.NewTrace(len(progs)),
		Outputs:     make([][]string, len(progs)),
		RecordTrace: true,
		seed:        seed,
		ScanSched:   DefaultScanSched,
	}
	slab := make([]Proc, len(progs))
	w.Procs = make([]*Proc, len(progs))
	for i, prog := range progs {
		p := &slab[i]
		p.Index = i
		p.Prog = prog
		p.World = w
		p.rngSeed = seed ^ (int64(i)+1)*0x5851f42d4c957f2d
		p.schedIdx = -1
		p.initCtx()
		w.Procs[i] = p
	}
	return w
}

// record appends an event to the trace (when enabled) and invokes the
// recovery layer's interception hooks around it. It returns the recorded
// event.
func (w *World) record(p *Proc, kind event.Kind, nd event.NDClass, logged bool, msg int64, peer int, label string) event.Event {
	ev := event.Event{
		ID:     event.ID{P: p.Index, I: -1},
		Kind:   kind,
		ND:     nd,
		Logged: logged,
		Msg:    msg,
		Peer:   peer,
		Label:  label,
	}
	w.EventCount++
	p.Steps++
	if m := w.Metrics; m != nil {
		pm := &m.Procs[p.Index]
		pm.Events[kind]++
		if ev.EffectivelyND() {
			pm.EffectivelyND++
		} else if ev.Logged {
			pm.Logged++
		}
	}
	if t := w.Tracer; t != nil {
		ts := w.Clock + p.ctx.elapsed
		switch kind {
		// Sends and receives become small slices carrying the ends of the
		// happens-before flow arrow for their message; visible events are
		// instants. Internal events are counted but not traced (a long run
		// has millions), and commit spans are emitted by the recovery
		// layer, which knows their cost and payload.
		case event.Send:
			t.Span(p.Index, "net", "send", ts-EventOverhead, EventOverhead)
			t.FlowStart(p.Index, "net", "msg", msg, ts-EventOverhead)
		case event.Receive:
			t.Span(p.Index, "net", "recv", ts-EventOverhead, EventOverhead)
			t.FlowEnd(p.Index, "net", "msg", msg, ts-EventOverhead)
		case event.Visible:
			t.Instant(p.Index, "app", label, ts)
		}
	}
	if w.RecordTrace {
		return w.Trace.MustAppend(ev)
	}
	// Without tracing we still need a plausible ID for bookkeeping.
	ev.ID.I = p.Steps
	return ev
}

// RecordCommit lets the recovery layer mark a commit event on p's timeline.
func (w *World) RecordCommit(p *Proc, label string) event.Event {
	return w.record(p, event.Commit, event.Deterministic, false, 0, 0, label)
}

// AddTime charges virtual time to the currently stepping process p (commit
// costs, recovery costs...).
func (w *World) AddTime(p *Proc, d time.Duration) {
	p.ctx.elapsed += d
}

// Delay pushes back the next wake-up of a parked process — used when a
// coordinated commit charges time to processes other than the one whose
// event triggered it.
func (w *World) Delay(p *Proc, d time.Duration) {
	p.wake += d
	if p.wake < w.Clock {
		p.wake = w.Clock
	}
	w.schedTouch(p)
}

// send enqueues a message for delivery.
func (w *World) send(from, to int, payload []byte) (int64, error) {
	if to < 0 || to >= len(w.Procs) {
		return 0, fmt.Errorf("sim: send to unknown process %d", to)
	}
	w.msgSeq++
	src := w.Procs[from]
	src.SendSeq++
	buf := w.allocBytes(len(payload))
	copy(buf, payload)
	m := w.allocMsg()
	*m = Msg{
		ID:        w.msgSeq,
		From:      from,
		To:        to,
		SendIdx:   src.SendSeq,
		Payload:   buf,
		DeliverAt: w.Clock + src.ctx.elapsed + w.Latency,
	}
	w.Procs[to].inboxAdd(m)
	return m.ID, nil
}

// retainedMsg is one consumed message plus the relative event position of
// its consumption.
type retainedMsg struct {
	m   *Msg
	pos int
}

// CommitPoint tells the network that p's consumed messages need no longer
// be retained for redelivery: p's state, including their effects, is now
// stable. It also re-anchors the position counter for future retention.
func (w *World) CommitPoint(p *Proc) {
	p.retained = p.retained[:0]
	p.retainBase = p.Steps
}

// DropRetained clears the retained messages without re-anchoring the
// position counter — used when a persistent log now covers redelivery of
// everything consumed so far (an asynchronous log flush).
func (w *World) DropRetained(p *Proc) {
	p.retained = p.retained[:0]
}

// RequeueRetained arms redelivery of every message p consumed since its
// last commit: each will be handed back to Recv at the same relative event
// position it was originally consumed at, reproducing the pre-failure
// interleaving. The recovery layer calls this when rolling p back.
func (w *World) RequeueRetained(p *Proc) {
	p.replayQueue = append(p.replayQueue[:0], p.retained...)
	p.retained = p.retained[:0]
	p.retainBase = p.Steps
	// A non-empty replay queue makes a blocked process runnable at wake.
	w.schedTouch(p)
}

// flushReplayQueue abandons position-gated redelivery (the re-execution
// diverged) and moves the remaining messages to the inbox for live
// consumption.
func (w *World) flushReplayQueue(p *Proc) {
	if len(p.replayQueue) == 0 {
		return
	}
	w.DebugLog.Printf("sim: flush replay queue p%d steps=%d base=%d queue=%d headpos=%d\n",
		p.Index, p.Steps, p.retainBase, len(p.replayQueue), p.replayQueue[0].pos)
	pre := make([]*Msg, 0, len(p.replayQueue)+len(p.inbox))
	for _, r := range p.replayQueue {
		c := *r.m
		c.DeliverAt = w.Clock
		pre = append(pre, &c)
	}
	p.inbox = append(pre, p.inbox...)
	p.replayQueue = p.replayQueue[:0]
	p.inboxChanged()
}

// DeliverSignal schedules an asynchronous signal for pid at virtual time
// `at`. Signals are the paper's canonical transient non-deterministic
// events ("taking a signal"); programs observe them by polling
// Ctx.TakeSignal.
func (w *World) DeliverSignal(pid int, sig string, at time.Duration) {
	p := w.Procs[pid]
	p.signals = append(p.signals, pendingSignal{sig: sig, at: at})
}

// RequeueLogged reconstructs a logged-but-unreplayed message (an encoded
// receive-log record) back into p's inbox after a re-execution divergence,
// so it is not lost.
func (w *World) RequeueLogged(p *Proc, record []byte) {
	m := DecodeMsgRecord(record)
	m.To = p.Index
	m.DeliverAt = w.Clock
	p.inboxAdd(&m)
}

// readyAt returns the earliest time p can run, or ok=false if it never can.
func (w *World) readyAt(p *Proc) (time.Duration, bool) {
	if p.dead {
		return 0, false
	}
	switch p.status {
	case Ready:
		return p.wake, true
	case Sleeping:
		return p.wake, true
	case WaitMsg:
		// A pending position-gated redelivery counts as an available
		// message.
		if len(p.replayQueue) > 0 {
			return p.wake, true
		}
		best, ok := p.earliestInbox()
		if !ok {
			return 0, false
		}
		if best < p.wake {
			best = p.wake
		}
		return best, true
	default: // Done, Crashed (unrecovered)
		return 0, false
	}
}

// scanPick is the legacy O(Procs) scheduling scan: the first process with
// the strictly smallest readyAt wins, so ties go to the lowest pid. Kept
// behind ScanSched as an escape hatch and as the differential oracle the
// readiness index is byte-identity-checked against.
func (w *World) scanPick() (*Proc, time.Duration) {
	var pick *Proc
	var pickAt time.Duration
	for _, p := range w.Procs {
		at, ok := w.readyAt(p)
		if !ok {
			continue
		}
		if pick == nil || at < pickAt {
			pick, pickAt = p, at
		}
	}
	return pick, pickAt
}

// Step executes a single scheduling decision: pick the earliest runnable
// process and run one Program step. It returns false when no process can
// run.
func (w *World) Step() (bool, error) {
	if w.frozen {
		return false, fmt.Errorf("sim: stepping a frozen template world")
	}
	var pick *Proc
	var pickAt time.Duration
	if w.ScanSched {
		pick, pickAt = w.scanPick()
	} else {
		pick, pickAt = w.schedPick()
	}
	if pick == nil {
		return false, nil
	}
	if pickAt > w.Clock {
		w.Clock = pickAt
	}
	if w.MaxTime > 0 && w.Clock > w.MaxTime {
		return false, nil
	}
	w.stepCount++
	if w.MaxSteps > 0 && w.stepCount > w.MaxSteps {
		return false, fmt.Errorf("sim: exceeded %d steps (livelock?)", w.MaxSteps)
	}
	if w.Metrics != nil {
		w.Metrics.Steps++
	}

	p := pick
	p.ctx.elapsed = 0
	p.ctx.sleepFor = 0
	var st Status
	if p.pendingStop() {
		p.ctx.crashed = true
		p.ctx.crashReason = "stop failure"
		st = Crashed
	} else {
		st = p.safeStep()
	}
	if p.ctx.crashed {
		st = Crashed
	}
	if st != Crashed && w.Recovery != nil {
		w.Recovery.EndStep(p)
	}
	// A process that blocks on messages while its gated redelivery head
	// is not yet due has diverged from its pre-failure execution (the
	// original could only have advanced past this point by consuming):
	// fall back to live delivery.
	if st == WaitMsg && len(p.replayQueue) > 0 {
		if p.Steps-p.retainBase < p.replayQueue[0].pos {
			w.flushReplayQueue(p)
		}
	}
	// Give a log-replaying recovery layer the same chance: it may have a
	// due record to supply (retry the step) or a divergence to resolve.
	if st == WaitMsg && w.Recovery != nil && w.Recovery.OnBlocked(p) {
		st = Ready
		p.wake = w.Clock + p.ctx.elapsed
	}
	p.status = st
	switch st {
	case Ready:
		p.wake = w.Clock + p.ctx.elapsed
	case Sleeping:
		p.wake = w.Clock + p.ctx.elapsed + p.ctx.sleepFor
	case WaitMsg:
		p.wake = w.Clock + p.ctx.elapsed
	case Crashed:
		p.Crashes++
		if w.Metrics != nil {
			w.Metrics.Procs[p.Index].Crashes++
		}
		if w.Tracer != nil {
			w.Tracer.Instant(p.Index, "fault", "crash: "+p.ctx.crashReason, w.Clock+p.ctx.elapsed)
		}
		p.ctx.crashed = false
		recovered := false
		if w.Recovery != nil {
			recovered = w.Recovery.OnCrash(p, p.ctx.crashReason)
		}
		if recovered {
			p.status = Ready
			p.wake = w.Clock + p.ctx.elapsed
		} else {
			p.dead = true
			w.deadCount++
		}
	case Done:
		p.wake = w.Clock + p.ctx.elapsed
		// The pick was runnable, so this is always a fresh transition
		// (Done processes never step again).
		w.doneCount++
	}
	// The stepped process's status, wake and inbox all changed; reindex it
	// at the next scheduling decision.
	w.schedTouch(p)
	return true, nil
}

// Init initializes every program. Run calls it implicitly, but a harness
// that must act between initialization and execution (e.g. to take the
// initial checkpoint the theory assumes always exists) can call it first.
func (w *World) Init() error {
	if w.inited {
		return nil
	}
	w.inited = true
	w.wireOSObs()
	for _, p := range w.Procs {
		if err := p.Prog.Init(p.ctx); err != nil {
			return fmt.Errorf("sim: init process %d (%s): %w", p.Index, p.Prog.Name(), err)
		}
		p.wake = w.Clock + p.ctx.elapsed
		p.ctx.elapsed = 0
	}
	// Wakes moved wholesale; the first scheduling decision rebuilds the
	// readiness index from scratch (covers a pre-Init Step too).
	w.schedBuilt = false
	return nil
}

// Run drives the computation until nothing can run or a limit trips.
func (w *World) Run() error {
	if err := w.Init(); err != nil {
		return err
	}
	for {
		more, err := w.Step()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// StepCount returns the number of scheduling decisions executed so far —
// the unit the snapshot engine's steps-saved accounting is expressed in.
func (w *World) StepCount() int { return w.stepCount }

// AllDone reports whether every process ran to completion. O(1): status
// transitions maintain the done counter (Done is terminal — a Done process
// is never runnable again).
func (w *World) AllDone() bool {
	return w.doneCount == len(w.Procs)
}

// DoneCount reports how many processes ran to completion.
func (w *World) DoneCount() int { return w.doneCount }

// DeadCount reports how many processes crashed unrecovered.
func (w *World) DeadCount() int { return w.deadCount }

// Live reports how many processes are neither Done nor dead — the "active"
// the scheduler's O(active) is measured against. O(1) via the same
// transition counters.
func (w *World) Live() int {
	return len(w.Procs) - w.doneCount - w.deadCount
}
