package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVCMerge(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2, 0}
	a.Merge(b)
	want := VC{3, 5, 0}
	if !a.Equal(want) {
		t.Errorf("Merge = %v, want %v", a, want)
	}
}

func TestVCMergeShorterOther(t *testing.T) {
	a := VC{1, 5, 2}
	a.Merge(VC{9})
	if !a.Equal(VC{9, 5, 2}) {
		t.Errorf("Merge with shorter clock = %v", a)
	}
}

func TestVCBefore(t *testing.T) {
	a := VC{1, 2}
	b := VC{1, 3}
	if !a.Before(b) {
		t.Error("{1,2} should be Before {1,3}")
	}
	if b.Before(a) {
		t.Error("Before must be asymmetric")
	}
	if a.Before(a) {
		t.Error("Before must be irreflexive")
	}
}

func TestVCConcurrent(t *testing.T) {
	a := VC{2, 0}
	b := VC{0, 2}
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Error("{2,0} and {0,2} should be concurrent")
	}
	if a.Concurrent(a) {
		t.Error("a clock is not concurrent with itself")
	}
}

func TestVCClone(t *testing.T) {
	a := VC{1, 2}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone must not alias the original")
	}
}

// randomVC generates small clocks so that related pairs occur often.
func randomVC(r *rand.Rand, n int) VC {
	v := NewVC(n)
	for i := range v {
		v[i] = r.Intn(3)
	}
	return v
}

func TestVCPartialOrderProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Antisymmetry: a.Before(b) implies !b.Before(a).
	anti := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		if a.Before(b) && b.Before(a) {
			return false
		}
		return true
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	// Transitivity: a≤b and b≤c imply a≤c.
	trans := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(r, 4), randomVC(r, 4), randomVC(r, 4)
		if a.LE(b) && b.LE(c) && !a.LE(c) {
			return false
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	// Trichotomy over the defined relations: exactly one of Before,
	// inverse-Before, Equal, Concurrent holds.
	tri := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		n := 0
		if a.Before(b) {
			n++
		}
		if b.Before(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		if a.Concurrent(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(tri, cfg); err != nil {
		t.Errorf("trichotomy: %v", err)
	}
	// Merge is an upper bound of both inputs.
	ub := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		m := a.Clone()
		m.Merge(b)
		return a.LE(m) && b.LE(m)
	}
	if err := quick.Check(ub, cfg); err != nil {
		t.Errorf("merge upper bound: %v", err)
	}
}

// TestHBMatchesTransitiveClosure checks the vector-clock oracle against a
// brute-force transitive closure of (program order ∪ send→receive) on random
// traces.
func TestHBMatchesTransitiveClosure(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nproc := 2 + r.Intn(3)
		tr := NewTrace(nproc)
		var msgID int64
		type pending struct {
			msg  int64
			from int
		}
		var inflight []pending
		n := 5 + r.Intn(15)
		for i := 0; i < n; i++ {
			p := r.Intn(nproc)
			switch r.Intn(4) {
			case 0:
				tr.MustAppend(Event{ID: ID{P: p, I: -1}, Kind: Internal})
			case 1:
				msgID++
				to := (p + 1 + r.Intn(nproc-1)) % nproc
				tr.MustAppend(Event{ID: ID{P: p, I: -1}, Kind: Send, Msg: msgID, Peer: to})
				inflight = append(inflight, pending{msgID, p})
			case 2:
				if len(inflight) == 0 {
					tr.MustAppend(Event{ID: ID{P: p, I: -1}, Kind: Internal})
					continue
				}
				m := inflight[0]
				inflight = inflight[1:]
				tr.MustAppend(Event{ID: ID{P: p, I: -1}, Kind: Receive, Msg: m.msg, Peer: m.from})
			default:
				tr.MustAppend(Event{ID: ID{P: p, I: -1}, Kind: Visible})
			}
		}
		// Brute force closure.
		sz := tr.Len()
		adj := make([][]bool, sz)
		for i := range adj {
			adj[i] = make([]bool, sz)
		}
		lastOf := make(map[int]int)
		sendAt := make(map[int64]int)
		for i, e := range tr.Events {
			if j, ok := lastOf[e.ID.P]; ok {
				adj[j][i] = true
			}
			lastOf[e.ID.P] = i
			if e.Kind == Send {
				sendAt[e.Msg] = i
			}
			if e.Kind == Receive {
				if j, ok := sendAt[e.Msg]; ok {
					adj[j][i] = true
				}
			}
		}
		for k := 0; k < sz; k++ {
			for i := 0; i < sz; i++ {
				if !adj[i][k] {
					continue
				}
				for j := 0; j < sz; j++ {
					if adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		hb := NewHB(tr)
		for i := 0; i < sz; i++ {
			for j := 0; j < sz; j++ {
				got := hb.HappensBefore(tr.Events[i].ID, tr.Events[j].ID)
				if got != adj[i][j] {
					t.Logf("seed %d: HB(%v,%v)=%v, closure=%v", seed, tr.Events[i].ID, tr.Events[j].ID, got, adj[i][j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
