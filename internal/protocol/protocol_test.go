package protocol

import "testing"

func TestMeasuredOrder(t *testing.T) {
	got := Measured()
	want := []string{"CAND", "CPVS", "CBNDVS", "CAND-LOG", "CBNDVS-LOG", "CPV-2PC", "CBNDV-2PC"}
	if len(got) != len(want) {
		t.Fatalf("Measured returned %d protocols", len(got))
	}
	for i, p := range got {
		if p.Name != want[i] {
			t.Errorf("Measured[%d] = %s, want %s", i, p.Name, want[i])
		}
		if !p.Runnable {
			t.Errorf("%s must be runnable", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("CBNDVS-LOG")
	if err != nil || p.Name != "CBNDVS-LOG" {
		t.Errorf("ByName = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestLogsLabel(t *testing.T) {
	if CAND.LogsLabel("input") || CAND.LogsLabel("recv") {
		t.Error("CAND logs nothing")
	}
	if !CANDLog.LogsLabel("input") || !CANDLog.LogsLabel("recv") {
		t.Error("CAND-LOG logs input and receives")
	}
	if CANDLog.LogsLabel("gettimeofday") {
		t.Error("CAND-LOG does not log the clock")
	}
	if !Hypervisor.LogsLabel("gettimeofday") || !Hypervisor.LogsLabel("rand") || !Hypervisor.LogsLabel("sys.select") {
		t.Error("Hypervisor logs all non-determinism")
	}
}

func TestSpaceContainsAllAndUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Space() {
		if seen[p.Name] {
			t.Errorf("duplicate protocol name %s", p.Name)
		}
		seen[p.Name] = true
		if p.SpaceX < 0 || p.SpaceX > 10 || p.SpaceY < 0 || p.SpaceY > 10 {
			t.Errorf("%s has out-of-range space coordinates (%v,%v)", p.Name, p.SpaceX, p.SpaceY)
		}
	}
	for _, m := range Measured() {
		if !seen[m.Name] {
			t.Errorf("measured protocol %s missing from space", m.Name)
		}
	}
	if !seen["COMMIT-ALL"] || !seen["HYPERVISOR"] || !seen["MANETHO"] {
		t.Error("catalog protocols missing from space")
	}
}

// TestFigure4Trend: protocols that commit after every ND event (the
// horizontal axis) leave the least non-determinism, and Lose-work says they
// guarantee failure to recover from propagation failures; CPVS and the 2PC
// protocols leave more.
func TestFigure4Trend(t *testing.T) {
	if CAND.LeavesNonDeterminism() >= CPVS.LeavesNonDeterminism() {
		t.Error("CAND must leave less non-determinism than CPVS")
	}
	if Hypervisor.LeavesNonDeterminism() >= CPVS.LeavesNonDeterminism() {
		t.Error("Hypervisor (logs all) must leave less non-determinism than CPVS")
	}
	if CPVS.LeavesNonDeterminism() > CPV2PC.LeavesNonDeterminism() {
		t.Error("2PC variants leave at least as much non-determinism as CPVS")
	}
}

func TestPolicyString(t *testing.T) {
	if CAND.String() != "CAND" {
		t.Errorf("String = %q", CAND.String())
	}
}

// TestRecommendMatchesPaperWinners: the advisor reproduces the paper's §3
// per-application conclusions from each workload's event mix.
func TestRecommendMatchesPaperWinners(t *testing.T) {
	cases := []struct {
		name string
		mix  EventMix
		want string
	}{
		// nvi: one visible and one fixed-ND input per keystroke, a
		// handful of residual clock events.
		{"nvi", EventMix{Visible: 100, Input: 100, OtherND: 2}, "CBNDVS-LOG"},
		// magic: plenty of unloggable transient ND per command (clock
		// reads), fewer visibles; the paper's winner was CBNDVS
		// (logging helped little, 27% vs 31% on disk).
		{"magic", EventMix{Visible: 20, Input: 60, OtherND: 30}, "CBNDVS"},
		// TreadMarks: copious sends/receives, almost no visibles.
		{"treadmarks", EventMix{Visible: 1, Sends: 400, Receives: 400, OtherND: 10, Distributed: true}, "CBNDV-2PC"},
		// xpilot: frequent visibles AND frequent unloggable ND on the
		// same processes; 2PC would raise the commit rate.
		{"xpilot", EventMix{Visible: 45, Sends: 45, Receives: 15, Input: 5, OtherND: 300, Distributed: true}, "CBNDVS"},
		// A compute-only app with purely loggable ND.
		{"batch", EventMix{Visible: 5, Input: 50}, "CBNDVS-LOG"},
		// Deterministic renderer: ND is the rare class.
		{"renderer", EventMix{Visible: 100, OtherND: 3}, "CBNDVS"},
	}
	for _, c := range cases {
		got, why := Recommend(c.mix)
		if got.Name != c.want {
			t.Errorf("%s: recommended %s (%s), want %s", c.name, got.Name, why, c.want)
		}
	}
	if s := RecommendString(EventMix{Visible: 1, Sends: 100, Distributed: true}); s == "" {
		t.Error("empty recommendation string")
	}
}
