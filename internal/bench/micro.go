package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"failtrans/internal/apps/nvi"
	"failtrans/internal/dc"
	"failtrans/internal/faults"
	"failtrans/internal/obs"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/vista"
)

// MicroResult is one commit-path microbenchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SeedReference is the same microbenchmark suite measured at the growth
// seed (commit bf636d4), before the incremental commit engine: the
// baseline the ≥50% allocs/op and ≥25% ns/op acceptance deltas are
// computed against.
var SeedReference = []MicroResult{
	{Name: "VistaCommit", NsPerOp: 42093, BytesPerOp: 4288, AllocsPerOp: 3},
	{Name: "DCCommit", NsPerOp: 6903, BytesPerOp: 12737, AllocsPerOp: 16},
	{Name: "DCRollback", NsPerOp: 2744, BytesPerOp: 6992, AllocsPerOp: 48},
}

// MediumInfo records a stable-storage cost model alongside the numbers
// that were measured under it.
type MediumInfo struct {
	Name        string `json:"name"`
	PerCommitNs int64  `json:"per_commit_ns"`
	PerByteNs   int64  `json:"per_byte_ns"`
	PerLogNs    int64  `json:"per_log_ns"`
}

func mediumInfo(m stablestore.Medium) MediumInfo {
	return MediumInfo{
		Name:        m.Name,
		PerCommitNs: m.PerCommit.Nanoseconds(),
		PerByteNs:   m.PerByte.Nanoseconds(),
		PerLogNs:    m.PerLog.Nanoseconds(),
	}
}

// Fig8BenchRow is one protocol's Figure 8 cell in the bench report:
// checkpoint count and virtual-time overhead on both media.
type Fig8BenchRow struct {
	Protocol        string  `json:"protocol"`
	Coordinated     bool    `json:"coordinated"`
	Checkpoints     int     `json:"checkpoints"`
	LogRecords      int64   `json:"log_records"`
	OverheadRioPct  float64 `json:"overhead_rio_pct"`
	OverheadDiskPct float64 `json:"overhead_disk_pct"`
	// Metrics is the observability-layer summary of the DC (Rio) run.
	Metrics obs.RunSummary `json:"metrics"`
}

// Fig8Summary is one application's protocol sweep in the bench report.
type Fig8Summary struct {
	App                string         `json:"app"`
	BaselineVirtualSec float64        `json:"baseline_virtual_sec"`
	Rows               []Fig8BenchRow `json:"rows"`
}

// BenchReport is the machine-readable output of `ftbench -bench`: the
// commit-path microbenchmarks plus the Figure 8 drivers, with the seed
// baseline and the media cost models they were measured under.
type BenchReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Scale  int    `json:"scale"`

	Media []MediumInfo `json:"media"`
	// Seed holds the microbenchmark baseline measured at the growth seed.
	Seed []MicroResult `json:"seed_reference"`
	// Micro holds the same suite measured by this run.
	Micro []MicroResult `json:"micro"`
	// CampaignSnapshot compares a reduced fault campaign from scratch vs
	// served from the prefix-snapshot cache.
	CampaignSnapshot CampaignSnapshotResult `json:"campaign_snapshot"`
	// CampaignCOW compares scratch vs deep-copied snapshots vs frozen
	// copy-on-write templates served through the snapshot store.
	CampaignCOW CampaignCOWResult `json:"campaign_cow"`
	Fig8        []Fig8Summary     `json:"fig8"`
	// Fleet is the scheduler/protocol scalability sweep (see fleet.go);
	// its NONE rows carry the fleet_step_ns CI regression gates.
	Fleet *FleetResult `json:"fleet,omitempty"`
}

// runMicro executes one benchmark body under the testing harness.
func runMicro(name string, body func(b *testing.B)) MicroResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	ns := 0.0
	if r.N > 0 {
		ns = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return MicroResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchVistaCommit measures a Vista page-diff commit of a 64 KB image with
// one dirty page per iteration (steady state: zero allocations). The
// metrics slot is attached to prove instrumentation keeps the path
// allocation-free.
func benchVistaCommit(b *testing.B) {
	seg := vista.NewSegment(0, 4096)
	seg.Metrics = &obs.VistaMetrics{}
	img := make([]byte, 64*1024)
	seg.SetContents(img)
	seg.Commit(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img[(i*4096+17)%len(img)] ^= 1
		seg.SetContents(img)
		seg.Commit(nil)
	}
}

func benchNviDC(b *testing.B) (*dc.DC, *sim.Proc) {
	e := nvi.New("doc.txt", faults.NviInitial())
	w := sim.NewWorld(1, e)
	// Metrics stay attached while measuring: the commit path must remain
	// allocation-free with instrumentation enabled.
	w.EnableObs(false)
	d := dc.New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		b.Fatal(err)
	}
	return d, w.Procs[0]
}

// benchDCCommit measures one full Discount Checking commit of the nvi
// editor state: marshal + page diff + commit bookkeeping.
func benchDCCommit(b *testing.B) {
	d, p := benchNviDC(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Checkpoint(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDCRollback measures a rollback + state reload.
func benchDCRollback(b *testing.B) {
	d, p := benchNviDC(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Rollback(p); err != nil {
			b.Fatal(err)
		}
	}
}

// RunBench runs the commit microbenchmarks and the Figure 8 drivers and
// assembles the combined report. workers parallelizes the Figure 8 cells
// (the microbenchmarks always run alone, so their timings stay honest).
func RunBench(scale, workers int) (*BenchReport, error) {
	rep := &BenchReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Scale:  scale,
		Media:  []MediumInfo{mediumInfo(stablestore.Rio), mediumInfo(stablestore.Disk)},
		Seed:   SeedReference,
	}
	rep.Micro = []MicroResult{
		runMicro("VistaCommit", benchVistaCommit),
		runMicro("DCCommit", benchDCCommit),
		runMicro("DCRollback", benchDCRollback),
		runMicro("SchedUpdate", benchSchedUpdate),
		runMicro("FleetStep", benchFleetStep),
	}
	cs, err := benchCampaignSnapshot(scale)
	if err != nil {
		return nil, err
	}
	rep.CampaignSnapshot = cs
	cc, err := benchCampaignCOW(scale)
	if err != nil {
		return nil, err
	}
	rep.CampaignCOW = cc
	fl, err := FleetCurves(FleetSizesForScale(scale))
	if err != nil {
		return nil, err
	}
	rep.Fleet = fl
	for _, app := range Fig8Apps {
		res, err := Fig8(app, scale, workers, nil)
		if err != nil {
			return nil, err
		}
		sum := Fig8Summary{App: app, BaselineVirtualSec: res.Baseline.Seconds()}
		for _, row := range res.Rows {
			pol, err := protocol.ByName(row.Protocol)
			if err != nil {
				return nil, err
			}
			sum.Rows = append(sum.Rows, Fig8BenchRow{
				Protocol:        row.Protocol,
				Coordinated:     pol.Coordinated(),
				Checkpoints:     row.Checkpoints,
				LogRecords:      row.LogRecords,
				OverheadRioPct:  row.OverheadRioPct,
				OverheadDiskPct: row.OverheadDiskPct,
				Metrics:         row.Metrics,
			})
		}
		rep.Fig8 = append(rep.Fig8, sum)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the report for a terminal, with deltas vs the seed.
func (r *BenchReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Commit-path microbenchmarks (%s/%s):\n", r.GOOS, r.GOARCH)
	fmt.Fprintf(w, "%-12s %12s %10s %10s %18s\n", "benchmark", "ns/op", "B/op", "allocs/op", "vs seed")
	seed := make(map[string]MicroResult, len(r.Seed))
	for _, s := range r.Seed {
		seed[s.Name] = s
	}
	for _, m := range r.Micro {
		delta := ""
		if s, ok := seed[m.Name]; ok && s.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.0f%% ns, %d→%d allocs",
				100*(m.NsPerOp-s.NsPerOp)/s.NsPerOp, s.AllocsPerOp, m.AllocsPerOp)
		}
		fmt.Fprintf(w, "%-12s %12.0f %10d %10d %18s\n", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, delta)
	}
	cs := r.CampaignSnapshot
	fmt.Fprintf(w, "\nCampaign snapshot cache (%s, %d runs):\n", cs.App, cs.Runs)
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "", "from-scratch", "snapshot", "ratio")
	fmt.Fprintf(w, "%-14s %14.0f %14.0f %9.1fx\n", "ns/run", cs.ScratchNsPerRun, cs.SnapshotNsPerRun, cs.SpeedupX)
	fmt.Fprintf(w, "%-14s %14.1f %14.1f %9.1fx\n", "steps replayed", cs.ScratchStepsReplayedPerRun,
		cs.SnapshotStepsReplayedPerRun, cs.ReplayReductionX)
	fmt.Fprintf(w, "%-14s snapshots=%d forks=%d fork-mean=%dns\n", "", cs.Snapshots, cs.Forks, cs.ForkMeanNs)
	cc := r.CampaignCOW
	fmt.Fprintf(w, "\nCampaign COW forking (%s, %d runs):\n", cc.App, cc.Runs)
	fmt.Fprintf(w, "%-14s %14s %14s %14s %10s\n", "", "from-scratch", "deep-fork", "cow+store", "ratio")
	fmt.Fprintf(w, "%-14s %14.0f %14.0f %14.0f %9.1fx\n", "ns/run",
		cc.ScratchNsPerRun, cc.DeepForkNsPerRun, cc.COWNsPerRun, cc.SpeedupX)
	fmt.Fprintf(w, "%-14s %14s %14d %14d %9.1fx\n", "fork ns", "-",
		cc.DeepForkMeanNs, cc.COWForkMeanNs, cc.ForkSpeedupX)
	fmt.Fprintf(w, "%-14s pages-privatized=%d bytes-cow=%d store-hits=%d\n", "",
		cc.PagesPrivatized, cc.BytesCOW, cc.StoreHits)
	for _, f := range r.Fig8 {
		fmt.Fprintf(w, "\nFigure 8 (%s): baseline %.2fs virtual\n", f.App, f.BaselineVirtualSec)
		fmt.Fprintf(w, "%-12s %8s %8s %10s %10s\n", "protocol", "ckpts", "logrecs", "DC ovhd", "disk ovhd")
		for _, row := range f.Rows {
			fmt.Fprintf(w, "%-12s %8d %8d %9.1f%% %9.1f%%\n",
				row.Protocol, row.Checkpoints, row.LogRecords, row.OverheadRioPct, row.OverheadDiskPct)
		}
	}
}
