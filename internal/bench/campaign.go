package bench

import (
	"time"

	"failtrans/internal/faults"
	"failtrans/internal/obs"
)

// CampaignSnapshotResult is the campaign-snapshot bench row: the same
// reduced nvi Table 1 campaign measured from scratch and snapshot-served,
// at the study's default SessionLen (where the clean prefix dominates each
// injection run). Both modes produce byte-identical study results; the row
// quantifies what the prefix-snapshot cache saves.
type CampaignSnapshotResult struct {
	App  string `json:"app"`
	Runs int64  `json:"runs"` // injection runs executed per mode

	ScratchNsPerRun  float64 `json:"scratch_ns_per_run"`
	SnapshotNsPerRun float64 `json:"snapshot_ns_per_run"`
	SpeedupX         float64 `json:"speedup_x"`

	// Steps of the clean prefix re-executed before fault activation, per
	// activated injection run: the work memoization removes.
	ScratchStepsReplayedPerRun  float64 `json:"scratch_steps_replayed_per_run"`
	SnapshotStepsReplayedPerRun float64 `json:"snapshot_steps_replayed_per_run"`
	ReplayReductionX            float64 `json:"replay_reduction_x"`

	Snapshots  int64 `json:"snapshots"`
	Forks      int64 `json:"forks"`
	ForkMeanNs int64 `json:"fork_mean_ns"`
}

// benchCampaignSnapshot runs the reduced campaign in both modes, serially
// (so the ns/run comparison is not confounded by worker scheduling) and
// best-of-three (so a cold first iteration does not masquerade as the
// steady state). The counters come from the final iteration; they are
// identical across iterations.
func benchCampaignSnapshot(scale int) (CampaignSnapshotResult, error) {
	res := CampaignSnapshotResult{App: "nvi"}
	runCampaign := func(snapshots bool) (ns int64, m *obs.CampaignMetrics, err error) {
		for i := 0; i < 3; i++ {
			s := faults.NewAppStudy("nvi") // default SessionLen
			s.CrashTarget = 2 * scale
			s.MaxRunsPerType = s.CrashTarget * 12
			s.Snapshots = snapshots
			s.WallClock = wallClock
			m = obs.NewCampaignMetrics(1)
			s.CampaignObs = m
			start := time.Now()
			if _, err := s.Run(); err != nil {
				return 0, nil, err
			}
			if d := time.Since(start).Nanoseconds(); i == 0 || d < ns {
				ns = d
			}
		}
		return ns, m, nil
	}

	scratchNs, scratchM, err := runCampaign(false)
	if err != nil {
		return res, err
	}
	snapNs, snapM, err := runCampaign(true)
	if err != nil {
		return res, err
	}

	// Both modes execute the identical run sequence, so either run count
	// divides both timings.
	res.Runs = scratchM.SerialRuns
	if res.Runs > 0 {
		res.ScratchNsPerRun = float64(scratchNs) / float64(res.Runs)
		res.SnapshotNsPerRun = float64(snapNs) / float64(res.Runs)
	}
	if res.SnapshotNsPerRun > 0 {
		res.SpeedupX = res.ScratchNsPerRun / res.SnapshotNsPerRun
	}
	ssteps, sruns := scratchM.Snapshot.ReplaySnapshot()
	nsteps, nruns := snapM.Snapshot.ReplaySnapshot()
	if sruns > 0 {
		res.ScratchStepsReplayedPerRun = float64(ssteps) / float64(sruns)
	}
	if nruns > 0 {
		res.SnapshotStepsReplayedPerRun = float64(nsteps) / float64(nruns)
	}
	if res.SnapshotStepsReplayedPerRun > 0 {
		res.ReplayReductionX = res.ScratchStepsReplayedPerRun / res.SnapshotStepsReplayedPerRun
	}
	res.Snapshots = snapM.Snapshot.Snapshots
	res.Forks = snapM.Snapshot.Forks
	res.ForkMeanNs = snapM.Snapshot.ForkLatency.Mean()
	return res, nil
}
