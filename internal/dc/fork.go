package dc

import (
	"failtrans/internal/sim"
	"failtrans/internal/vista"
)

// ForkRecovery implements sim.ForkableRecovery: it copies the whole
// Discount Checking state — Vista segments mid-transaction, ND logs and
// replay cursors, dependency maps, commit epochs — against the forked world
// w, so the copy recovers and commits exactly as the original would from
// this point on. The CommitHook/RecoveryHook/CommitVeto/
// ExpandResourcesOnCrash callbacks do NOT carry over: they are per-run
// harness wiring (the original's closures would observe the wrong run);
// callers re-install their own on the returned *DC (the concrete type is
// the return value's dynamic type).
//
// Forking a frozen DC is copy-on-write: segments fork as overlay views of
// the frozen template pages, the ND logs and message-dependency map are
// shared behind immutable references (log slices are capacity-clamped so a
// fork's appends reallocate instead of scribbling on the shared backing;
// msgDeps is copied top-level on first insert), and the per-process image
// buffers start empty and grow lazily. Forking a mutable DC deep-copies.
func (d *DC) ForkRecovery(w *sim.World) sim.Recovery {
	n := len(d.segs)
	// The fixed-length per-process bookkeeping shares two backing arrays —
	// forks are taken millions of times per campaign, and each separate
	// small slice is one more allocation on that path. Capacity clamps keep
	// an (impossible today) append from crossing into a neighbor field.
	ints := make([]int, 6*n)
	bools := make([]bool, 3*n)
	nd := &DC{
		World:         w,
		Policy:        d.Policy,
		Medium:        d.Medium,
		PageSize:      d.PageSize,
		segs:          make([]*vista.Segment, n),
		ndSince:       bools[0:n:n],
		deps:          make([]map[int]int, n),
		epoch:         ints[0:n:n],
		ndLog:         make([][]logRec, n),
		watermark:     ints[n : 2*n : 2*n],
		replaying:     bools[n : 2*n : 2*n],
		cursor:        ints[2*n : 3*n : 3*n],
		stepsBase:     ints[3*n : 4*n : 4*n],
		replayOpen:    bools[2*n : 3*n : 3*n], // stays false: no tracer on a fork
		flushed:       ints[4*n : 5*n : 5*n],
		pendingCommit: append([]string(nil), d.pendingCommit...),
		// registers is written once at New and only ever read afterwards
		// (Segment.Commit copies it out), so every fork shares it.
		registers:         d.registers,
		imgBuf:            make([][]byte, n),
		DisableRecovery:   d.DisableRecovery,
		CheckBeforeCommit: d.CheckBeforeCommit,
		EssentialOnly:     d.EssentialOnly,
		SerialCommit:      d.SerialCommit,
		ChecksFailed:      d.ChecksFailed,
		Stats:             d.Stats,
	}
	copy(nd.ndSince, d.ndSince)
	copy(nd.replaying, d.replaying)
	copy(nd.epoch, d.epoch)
	copy(nd.watermark, d.watermark)
	copy(nd.cursor, d.cursor)
	copy(nd.stepsBase, d.stepsBase)
	copy(nd.flushed, d.flushed)
	nd.Stats.Checkpoints = ints[5*n : 6*n : 6*n]
	copy(nd.Stats.Checkpoints, d.Stats.Checkpoints)
	for i, dep := range d.deps {
		if len(dep) == 0 {
			continue // the receive path allocates on first insert
		}
		nd.deps[i] = make(map[int]int, len(dep))
		for q, ep := range dep {
			nd.deps[i][q] = ep
		}
	}
	for i, seg := range d.segs {
		if seg != nil {
			nd.segs[i] = seg.Fork() // COW automatically when seg is frozen
		}
	}
	if d.frozen {
		// Records are appended, truncated and read, never mutated in
		// place; with the capacity clamp a fork's append can only
		// reallocate, so sharing the frozen template's backing is safe.
		for i, log := range d.ndLog {
			nd.ndLog[i] = log[:len(log):len(log)]
		}
		// Message-dependency snapshots are write-once; the top-level map
		// is copied on the fork's first insert (mutableMsgDeps).
		nd.msgDeps = d.msgDeps
		nd.msgDepsShared = true
		// imgBuf slots stay nil: they grow on the fork's first commit or
		// rollback, and most campaign forks crash before either.
		return nd
	}
	nd.msgDeps = make(map[int64]map[int]int, len(d.msgDeps))
	for msg, snap := range d.msgDeps {
		c := make(map[int]int, len(snap))
		for q, ep := range snap {
			c[q] = ep
		}
		nd.msgDeps[msg] = c
	}
	for i, log := range d.ndLog {
		// Same sharing argument as the frozen branch: record slices are
		// copied, the value bytes stay shared.
		nd.ndLog[i] = append([]logRec(nil), log...)
	}
	for i, buf := range d.imgBuf {
		nd.imgBuf[i] = make([]byte, 0, cap(buf))
	}
	return nd
}

// Freeze seals the DC as an immutable fork template: every segment is
// frozen (mutators panic; forks become COW overlays) and subsequent
// ForkRecovery calls take the structural-sharing path. There is no thaw —
// a frozen DC exists only to be forked.
func (d *DC) Freeze() {
	for _, seg := range d.segs {
		if seg != nil {
			seg.Freeze()
		}
	}
	d.frozen = true
}

// CowStats sums the copy-on-write cost this DC's segments have paid since
// forking: pages privatized out of their frozen templates and bytes copied
// doing so. Zero for deep-copied forks and templates.
func (d *DC) CowStats() (pages int, bytes int64) {
	for _, seg := range d.segs {
		if seg != nil {
			pages += seg.CowPages
			bytes += seg.CowBytes
		}
	}
	return pages, bytes
}

// ContentDigest folds every segment's page digests with the recovery
// protocol's replay state (epochs, watermarks, log lengths) into one
// deterministic value — the recovery layer's contribution to a snapshot's
// content address.
func (d *DC) ContentDigest() uint64 {
	const mul = 0x9E3779B97F4A7C15
	h := uint64(0xD15C0C4EC4E8B1A7)
	for i, seg := range d.segs {
		h = (h ^ uint64(i)) * mul
		if seg != nil {
			h = (h ^ seg.ContentDigest()) * mul
		}
		if i < len(d.epoch) {
			h = (h ^ uint64(d.epoch[i])) * mul
		}
		if i < len(d.watermark) {
			h = (h ^ uint64(d.watermark[i])) * mul
		}
		if i < len(d.ndLog) {
			h = (h ^ uint64(len(d.ndLog[i]))) * mul
		}
		if i < len(d.flushed) {
			h = (h ^ uint64(d.flushed[i])) * mul
		}
	}
	h = (h ^ uint64(len(d.registers))) * mul
	for _, c := range d.registers {
		h = (h ^ uint64(c)) * mul
	}
	return h
}
