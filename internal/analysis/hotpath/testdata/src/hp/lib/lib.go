// Package lib is the dependency half of the hotpathcheck fixture: nothing
// here is annotated, yet Helper is reported — its hotness arrives as a
// fact from the annotated root in hp/root, across the package boundary.
package lib

// Helper is hot only because the annotated root calls it.
func Helper(b []byte) int {
	m := map[int]int{len(b): 1} // want `hot path \(via root\.\(\*T\)\.Commit\): map literal allocates`
	return len(m)
}

// Cold has an allocation, but the only call edge into it carries a
// //failtrans:alloc suppression, which cuts propagation: no finding.
func Cold() *int {
	return new(int)
}

// Unreached also allocates and is never called from a hot root: silent.
func Unreached() []int {
	return []int{1, 2, 3}
}
