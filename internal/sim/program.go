// Package sim is a deterministic discrete-event simulator for computations
// in the paper's model: one or more processes, each a state machine, compute
// asynchronously and communicate by messages. Virtual time replaces wall
// time, so commit costs, think times and network latencies are charged
// exactly and runs are reproducible from a seed.
//
// The simulator is the substitute substrate for the paper's FreeBSD
// testbed (see DESIGN.md): applications are Programs whose every external
// action — reading the clock, consuming user input, sending and receiving
// messages, producing visible output, calling into the simulated OS — flows
// through a Ctx that records the corresponding event, classifies its
// non-determinism, and gives the recovery layer (Discount Checking) its
// interception points.
package sim

import "failtrans/internal/event"

// Status is what a Program's Step reports back to the scheduler.
type Status uint8

const (
	// Ready means the process has more work immediately available.
	Ready Status = iota
	// WaitMsg blocks the process until a message is delivered.
	WaitMsg
	// Sleeping blocks the process until the wake time requested with
	// Ctx.Sleep.
	Sleeping
	// Done means the program ran to completion.
	Done
	// Crashed means the program executed a crash event (it detected
	// corruption or hit a fatal error); the recovery layer may roll it
	// back.
	Crashed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case WaitMsg:
		return "wait-msg"
	case Sleeping:
		return "sleeping"
	case Done:
		return "done"
	case Crashed:
		return "crashed"
	default:
		return "unknown"
	}
}

// Program is an application process. Programs must be deterministic
// functions of their state and the values returned by Ctx: given the same
// state and the same ND results, Step must take identical actions. All
// mutable state must round-trip through MarshalState/UnmarshalState so the
// recovery layer can checkpoint and roll back the process.
//
// Checkpoint contract: a real Discount Checking commits the whole address
// space, including the thread of control; a Program's state is only
// captured between Steps. Two rules make every commit point resumable:
//
//  1. each Step executes at most ONE commit-relevant Ctx event (Now, Rand,
//     Input, Send, Recv, Output, or a non-deterministic Syscall) — a failed
//     Recv that returns ok=false records no event and does not count, and
//     any number of deterministic Syscalls (read, write, lseek, close) may
//     batch in a step, since no protocol commits around them;
//  2. state mutations in a Step come AFTER its Ctx event call, so a
//     commit taken before the event sees exactly the step-start state,
//     and a commit after the event (deferred to the step's end) sees the
//     event's full effect.
type Program interface {
	// Name identifies the program in traces and stats.
	Name() string
	// Init prepares the program's initial state. It runs before the
	// first Step and may use the Ctx.
	Init(ctx *Ctx) error
	// Step executes one unit of work and reports how to schedule the
	// process next.
	Step(ctx *Ctx) Status
	// MarshalState serializes the complete mutable state. The runtime
	// copies the result into the checkpoint image before the next call,
	// so implementations may reuse one buffer across calls to keep the
	// commit hot path allocation-free.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces the state with a previously marshaled one.
	UnmarshalState(data []byte) error
}

// Checker is an optional Program extension: a consistency check over the
// program's own data structures (checksums, invariants, guard bands). The
// paper's §2.6 observes that running such checks "right before committing
// is particularly important" — a failed check crashes the process instead
// of committing corrupt state, upholding Lose-work more often.
type Checker interface {
	CheckConsistency() error
}

// PartialState is an optional Program extension implementing the paper's
// §2.6 "reduce the comprehensiveness of the state saved" mitigation: the
// program identifies the state that absolutely must be preserved, and
// recomputes everything else from it after a failure. Committing less both
// shrinks checkpoints and leaves corrupted derived state uncommitted, so
// recovery can regenerate it cleanly.
type PartialState interface {
	// MarshalEssential serializes only the must-preserve state.
	MarshalEssential() ([]byte, error)
	// UnmarshalEssential restores it and recomputes all derived state.
	UnmarshalEssential(data []byte) error
}

// Recovery is the interception surface the recovery layer (Discount
// Checking) implements. A nil Recovery runs the computation unrecoverably.
type Recovery interface {
	// BeforeEvent runs before the process executes an event of the given
	// kind/class; the implementation may execute a commit here (the
	// commit-prior-to-visible-or-send family of protocols).
	BeforeEvent(p *Proc, kind event.Kind, nd event.NDClass, label string)
	// AfterEvent runs after the event executed (the commit-after-
	// non-deterministic family). Commits triggered here must be deferred
	// to EndStep so the checkpoint includes the state mutations the
	// program derives from the event's result within the same step.
	AfterEvent(p *Proc, ev event.Event)
	// EndStep runs after the program's Step returns (and did not
	// crash); deferred commits execute here.
	EndStep(p *Proc)
	// OnBlocked runs when a step returns WaitMsg. During constrained
	// re-execution the recovery layer reports true when the process's
	// next logged event is due now (the scheduler then retries the step
	// so the log can supply it), or resolves a divergence and returns
	// false.
	OnBlocked(p *Proc) bool
	// SupplyND gives the recovery layer a chance to replay a logged
	// value for the next ND event with this label during constrained
	// re-execution. ok=false means execute the event live.
	SupplyND(p *Proc, label string) (val []byte, ok bool)
	// RecordND offers the live value of an ND event for logging; the
	// return value reports whether it was logged (rendering the event
	// deterministic for Save-work purposes).
	RecordND(p *Proc, label string, val []byte) bool
	// OnCrash handles a crash of p; returning true means the process was
	// rolled back and may continue, false leaves it dead.
	OnCrash(p *Proc, reason string) bool
}

// OS is the simulated operating system interface; see internal/kernel for
// the implementation. Syscalls go through the kernel so that kernel faults
// can corrupt their results (the Table 2 study).
type OS interface {
	// Call executes a system call for process pid. It returns the
	// result, the call's non-determinism class (e.g. gettimeofday is
	// transient, open is fixed, a plain read of a regular file is
	// deterministic), and an error for invalid calls.
	Call(pid int, name string, args [][]byte) ([][]byte, event.NDClass, error)
	// SaveProcState captures the kernel state Discount Checking must
	// preserve for process pid (open file table entries, offsets, ...).
	SaveProcState(pid int) []byte
	// RestoreProcState reconstructs kernel state for pid during
	// recovery.
	RestoreProcState(pid int, blob []byte)
}
