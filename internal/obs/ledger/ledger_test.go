package ledger

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"failtrans/internal/event"
	"failtrans/internal/statemachine"
)

// sampleRecords covers every outcome, both commit representations
// (positions vs count-only), and every flag combination the studies emit.
func sampleRecords() []Record {
	return []Record{
		{Run: 0, Study: "table1", App: "nvi", Protocol: "CPVS", Medium: "rio", Kind: "heap bit flip",
			Seed: 1, FireAt: 40, Outcome: Crashed, LoseWork: true,
			Activation: 10, Crash: 50, Steps: 50, WorldSteps: 61, PrefixSteps: 12,
			VClockUS: 12345, RollbackDepth: 10, CommitN: 3, Commits: []int{3, 7, 40},
			ViolFirst: 2, ViolN: 1},
		{Run: 1, Study: "table1", App: "nvi", Protocol: "CPVS", Medium: "rio", Kind: "heap bit flip",
			Seed: 1, FireAt: 90, Outcome: Inert,
			Activation: -1, Crash: -1, Steps: 120, WorldSteps: 150, PrefixSteps: -1,
			VClockUS: 999, RollbackDepth: -1, CommitN: 2, Commits: []int{3, 7},
			ViolFirst: -1},
		{Run: 2, Study: "table2", App: "postgres", Protocol: "CPVS", Medium: "rio", Kind: "delete branch",
			Seed: 7, FireAt: 110_000, Outcome: Crashed, LoseWork: false, Recovered: true, SaveWork: true,
			Activation: -1, Crash: -1, Steps: 400, WorldSteps: 700, PrefixSteps: 333,
			VClockUS: 5_000_000, RollbackDepth: -1, CommitN: 17, ViolFirst: -1,
			VetoActive: true, VetoN: 4, VetoSaveWorkN: 1},
		{Run: 3, Study: "fig8", App: "magic", Protocol: "baseline", Medium: "disk", Kind: "none",
			Seed: 11, FireAt: -1, Outcome: Completed,
			Activation: -1, Crash: -1, Steps: 80, WorldSteps: 100, PrefixSteps: -1,
			VClockUS: 77, RollbackDepth: -1, CommitN: 0, ViolFirst: -1},
		{Run: 4, Study: "table1", App: "nvi", Protocol: "CPVS", Medium: "rio", Kind: "off by one",
			Seed: 1, FireAt: 12, Outcome: WrongOutput, SaveWork: true,
			Activation: 30, Crash: -1, Steps: 200, WorldSteps: 260, PrefixSteps: 40,
			VClockUS: 31337, RollbackDepth: -1, CommitN: 1, Commits: []int{5}, ViolFirst: -1},
	}
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		w.Append(&recs[i])
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != int64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", w.Records(), len(recs))
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestWriterDeterminism(t *testing.T) {
	recs := sampleRecords()
	render := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range recs {
			w.Append(&recs[i])
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("two renderings of the same records differ")
	}
}

func TestWriterRejectsBadField(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := Record{Study: "table1", App: "nvi|evil"}
	w.Append(&r)
	if w.Err() == nil {
		t.Fatal("field containing '|' was accepted")
	}
	if w.Records() != 0 {
		t.Fatal("rejected record was counted")
	}
}

// TestAppendZeroAllocs is the hot-path contract: a warm writer appends a
// record without heap allocation. The emit point sits inside the campaign
// executor's ordered accept loop.
func TestAppendZeroAllocs(t *testing.T) {
	w := NewWriter(io.Discard)
	r := sampleRecords()[0]
	w.Append(&r) // warm the buffer
	if allocs := testing.AllocsPerRun(200, func() { w.Append(&r) }); allocs != 0 {
		t.Fatalf("Append allocates %.1f times per record, want 0", allocs)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejects(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		r := sampleRecords()[0]
		w.Append(&r)
		return buf.String()
	}()
	headerOnly := valid[:strings.Index(valid, "\n0|")+1]
	cases := map[string]string{
		"bad magic":      strings.Replace(valid, "ftledger v2", "notaledger", 1),
		"future version": strings.Replace(valid, "ftledger v2", "ftledger v9", 1),
		"short line":     headerOnly + "0|only|three\n",
		"bad outcome":    strings.Replace(valid, "|crash|L|", "|exploded|L|", 1),
		"commit count":   strings.Replace(valid, "3,7,40", "3,7", 1),
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadFiles(t *testing.T) {
	files := map[string]string{}
	for i, name := range []string{"a.ftl", "b.ftl"} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		r := sampleRecords()[i]
		w.Append(&r)
		files[name] = buf.String()
	}
	recs, err := ReadFiles(func(path string) (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(files[path])), nil
	}, []string{"a.ftl", "b.ftl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Study != "table1" || recs[1].Outcome != Inert {
		t.Fatalf("concatenated read wrong: %+v", recs)
	}
}

// TestPathEventsShape pins the synthesized path: pre-activation commits,
// the transient-ND activation, post-activation commits, the crash.
func TestPathEventsShape(t *testing.T) {
	r := Record{Outcome: Crashed, FireAt: 40, Kind: "heap bit flip",
		Activation: 10, Crash: 50, CommitN: 3, Commits: []int{3, 7, 40}}
	evs := PathEvents(&r)
	kinds := make([]event.Kind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []event.Kind{event.Commit, event.Commit, event.Internal, event.Commit, event.Crash}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("path = %v, want %v", kinds, want)
	}
	if evs[2].ND != event.TransientND {
		t.Fatal("activation event is not transient-ND")
	}
}

// TestCrossCheckAgreement feeds a record whose emitter-side violation range
// is correct and one where it is wrong; the miner must confirm the first
// and flag the second.
func TestCrossCheckAgreement(t *testing.T) {
	good := Record{Study: "table1", App: "nvi", Protocol: "CPVS", Kind: "heap bit flip",
		Outcome: Crashed, FireAt: 40, Activation: 10, Crash: 35,
		CommitN: 3, Commits: []int{5, 20, 30}, ViolFirst: 1, ViolN: 2}
	mn := NewMiner()
	mn.Add(&good)
	md := mn.Get("table1/nvi/CPVS")
	if md.Checked != 1 || md.Mismatched != 0 {
		t.Fatalf("good record: checked=%d mismatched=%d (%s)", md.Checked, md.Mismatched, md.FirstMismatch)
	}

	bad := good
	bad.Run = 9
	bad.ViolFirst, bad.ViolN = 0, 3 // claims the pre-activation commit violates too
	mn.Add(&bad)
	if md.Mismatched != 1 {
		t.Fatalf("bad record not flagged: mismatched=%d", md.Mismatched)
	}
	if !strings.Contains(md.FirstMismatch, "run 9") {
		t.Fatalf("FirstMismatch = %q, want run 9 named", md.FirstMismatch)
	}
}

// TestMinedColoring checks the merged machine's dangerous-path coloring:
// post-activation commits of an always-fatal kind are dangerous,
// pre-activation commits never are (the activation's escape edge protects
// them), and a kind observed to complete is not colored.
func TestMinedColoring(t *testing.T) {
	fatal := Record{Study: "table1", App: "nvi", Protocol: "CPVS", Kind: "delete branch",
		Outcome: Crashed, FireAt: 9, Activation: 10, Crash: 40,
		CommitN: 3, Commits: []int{5, 20, 30}, ViolFirst: 1, ViolN: 2}
	benign := Record{Study: "table1", App: "nvi", Protocol: "CPVS", Kind: "stack bit flip",
		Outcome: Completed, FireAt: 9, Activation: 10,
		CommitN: 3, Commits: []int{5, 20, 30}, ViolFirst: -1}
	mn := NewMiner()
	mn.Add(&fatal)
	mn.Add(&benign)
	md := mn.Get("table1/nvi/CPVS")
	col := md.Coloring()
	m := md.Machine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	dangerous := 0
	for i := range m.Edges {
		if m.Edges[i].Label != "commit" {
			continue
		}
		if col.Dangerous(statemachine.EventID(i)) {
			dangerous++
		}
	}
	// The fatal kind's two post-activation commits, and nothing else: not
	// the shared pre-activation commit, not the benign kind's chain.
	if dangerous != 2 {
		t.Fatalf("dangerous commit edges = %d, want 2", dangerous)
	}
	// Coloring is cached until a new record arrives.
	if md.Coloring() != col {
		t.Fatal("coloring recomputed without new records")
	}
	mn.Add(&fatal)
	if md.Coloring() == col {
		t.Fatal("coloring not refreshed after a new record")
	}
}

func TestAggregator(t *testing.T) {
	recs := sampleRecords()
	agg := NewAggregator()
	for i := range recs {
		agg.Add(&recs[i])
	}
	groups := agg.Groups()
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	g := groups[0] // table1/nvi/heap bit flip, first appearance
	if g.Key.Kind != "heap bit flip" || g.Runs != 2 || g.Crashes != 1 || g.Inert != 1 {
		t.Fatalf("group 0 wrong: %+v", g)
	}
	if g.ViolationPct() != 100 {
		t.Fatalf("ViolationPct = %v, want 100 (1 LoseWork / 1 crash)", g.ViolationPct())
	}
	if g.DoomIndex[2] != 1 {
		t.Fatalf("DoomIndex = %v, want {2:1}", g.DoomIndex)
	}
	if g.RollbackDepth.Count != 1 || g.RollbackDepth.Max != 10 {
		t.Fatalf("RollbackDepth = %+v", g.RollbackDepth)
	}
	// FireAt 40 lands in log2 bucket 6 (32..63) with outcome Crashed.
	if g.Heat[6][Crashed] != 1 {
		t.Fatalf("Heat = %v", g.Heat[6])
	}
}

func TestReportDeterministicAndComplete(t *testing.T) {
	recs := sampleRecords()
	render := func() string {
		var buf bytes.Buffer
		if err := Analyze(recs).WriteMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	md := render()
	if md != render() {
		t.Fatal("two renderings of the same ledger differ")
	}
	for _, want := range []string{
		"Table 1 (from ledger)",
		"Table 2 (from ledger)",
		"Figure 8 cells (from ledger)",
		"heap bit flip",
		"Injection-point outcomes",
		"Conflict attribution",
		"Cross-run histograms",
		"Mined dangerous-path machines",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}

func TestCampaignTrace(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Analyze(recs).WriteCampaignTrace(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("campaign trace is not valid JSON")
	}
	s := buf.String()
	for _, want := range []string{"worker 0", "worker 1", "outcome:crash", "table1/nvi/heap bit flip"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace lacks %q", want)
		}
	}
}

func TestMachineDot(t *testing.T) {
	recs := sampleRecords()
	rp := Analyze(recs)
	var buf bytes.Buffer
	if err := rp.WriteMachineDot(&buf, "table1/nvi/CPVS"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("dot output lacks digraph")
	}
	if err := rp.WriteMachineDot(io.Discard, "no/such/machine"); err == nil {
		t.Fatal("unknown machine key accepted")
	}
}

func TestRecordPoolReset(t *testing.T) {
	r := Get()
	r.Study = "x"
	r.Commits = append(r.Commits, 1, 2, 3)
	Put(r)
	r2 := Get()
	if r2.Study != "" || len(r2.Commits) != 0 {
		t.Fatalf("pooled record not reset: %+v", r2)
	}
	if r2.FireAt != -1 || r2.Activation != -1 || r2.ViolFirst != -1 || r2.RollbackDepth != -1 {
		t.Fatalf("pooled record positions not -1: %+v", r2)
	}
	Put(r2)
}
