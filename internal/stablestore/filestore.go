package stablestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FileStore is a crash-safe key/value store backed by an append-only log
// with per-record CRCs. It is the real-disk analogue of the simulator's
// in-memory stable store: writes are synchronous (fsync'ed), torn tail
// records are detected and discarded on open, and the log can be compacted.
//
// Record format (little endian):
//
//	magic   uint32 = 0x46545331 ("FTS1")
//	keyLen  uint32
//	valLen  uint32 (math.MaxUint32 marks a tombstone)
//	crc     uint32 over key || val
//	key     [keyLen]byte
//	val     [valLen]byte
type FileStore struct {
	path string
	f    logFile
	// size is the offset just past the last durably appended record: the
	// log's last-good length. A failed append truncates back to it, so
	// torn bytes can never sit in the log interior beneath a later
	// successful record (replay stops at the first bad record, silently
	// discarding everything after it).
	size int64
	// broken, once set, refuses further appends: a failed append could
	// not be rolled back, so the on-disk tail state is unknown. A
	// successful Compact rewrites the log from the in-memory index and
	// clears it.
	broken error
	// index maps keys to current values; the log is the truth, the map
	// is a cache rebuilt on open.
	index map[string][]byte
}

// logFile is the slice of *os.File the store uses; crash-injection tests
// substitute a fault-injecting wrapper.
type logFile interface {
	io.ReadWriteSeeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

const (
	recordMagic = 0x46545331
	tombstone   = ^uint32(0)
)

// ErrCorrupt reports a record whose checksum did not match in the interior
// of the log (a torn tail is silently truncated instead).
var ErrCorrupt = errors.New("stablestore: corrupt record in log interior")

// OpenFile opens (creating if needed) the store at path and replays its log.
func OpenFile(path string) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("stablestore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stablestore: %w", err)
	}
	s := &FileStore{path: path, f: f, index: make(map[string][]byte)}
	valid, err := s.replay()
	if err != nil {
		f.Close() //failtrans:errok open fails anyway; the replay error is the primary failure
		return nil, err
	}
	// Truncate any torn tail so future appends start on a record
	// boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close() //failtrans:errok open fails anyway; the truncate error is the primary failure
		return nil, fmt.Errorf("stablestore: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close() //failtrans:errok open fails anyway; the seek error is the primary failure
		return nil, fmt.Errorf("stablestore: %w", err)
	}
	s.size = valid
	return s, nil
}

// replay scans the log, rebuilding the index, and returns the byte offset
// of the last valid record's end.
func (s *FileStore) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("stablestore: %w", err)
	}
	r := bufio.NewReader(s.f)
	var off int64
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		keyLen := binary.LittleEndian.Uint32(hdr[4:8])
		valLen := binary.LittleEndian.Uint32(hdr[8:12])
		crc := binary.LittleEndian.Uint32(hdr[12:16])
		if magic != recordMagic || keyLen > 1<<20 || (valLen != tombstone && valLen > 1<<28) {
			return off, nil // garbage tail
		}
		vLen := int(valLen)
		if valLen == tombstone {
			vLen = 0
		}
		buf := make([]byte, int(keyLen)+vLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, nil // torn body
		}
		if crc32.ChecksumIEEE(buf) != crc {
			// A bad checksum at the tail is a torn write; anywhere
			// else it is corruption.
			if _, err := r.Peek(1); err != nil {
				return off, nil
			}
			return off, ErrCorrupt
		}
		key := string(buf[:keyLen])
		if valLen == tombstone {
			delete(s.index, key)
		} else {
			s.index[key] = append([]byte(nil), buf[keyLen:]...)
		}
		off += int64(len(hdr)) + int64(len(buf))
	}
}

// appendRecord writes and syncs one record. On any failure it rolls the
// log back to the last-good offset so the partial bytes cannot become
// interior garbage under a later successful append.
func (s *FileStore) appendRecord(key string, val []byte, del bool) error {
	if s.broken != nil {
		return s.broken
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
	if del {
		binary.LittleEndian.PutUint32(hdr[8:12], tombstone)
	} else {
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(val)))
	}
	body := make([]byte, 0, len(key)+len(val))
	body = append(body, key...)
	if !del {
		body = append(body, val...)
	}
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(body))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return s.failAppend(err)
	}
	if _, err := s.f.Write(body); err != nil {
		return s.failAppend(err)
	}
	if err := s.f.Sync(); err != nil {
		return s.failAppend(err)
	}
	s.size += int64(len(hdr)) + int64(len(body))
	return nil
}

// failAppend handles a torn append: truncate back to the last durable
// record boundary and reposition the write offset there. If the rollback
// itself fails, the tail state on disk is unknown and the store refuses
// all further appends (reads still serve the in-memory index; a Compact
// rewrites the log and restores write availability).
func (s *FileStore) failAppend(cause error) error {
	if terr := s.truncateToLastGood(); terr != nil {
		s.broken = fmt.Errorf("stablestore: append failed (%v), rollback to offset %d failed (%v): refusing further appends", cause, s.size, terr)
	}
	return fmt.Errorf("stablestore: %w", cause)
}

// truncateToLastGood discards any partially written tail and makes the
// truncation durable.
func (s *FileStore) truncateToLastGood() error {
	if err := s.f.Truncate(s.size); err != nil {
		return err
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return err
	}
	return s.f.Sync()
}

// Put durably records key=val.
func (s *FileStore) Put(key string, val []byte) error {
	if err := s.appendRecord(key, val, false); err != nil {
		return err
	}
	s.index[key] = append([]byte(nil), val...)
	return nil
}

// Get returns the current value of key.
func (s *FileStore) Get(key string) ([]byte, bool) {
	v, ok := s.index[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete durably removes key.
func (s *FileStore) Delete(key string) error {
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.appendRecord(key, nil, true); err != nil {
		return err
	}
	delete(s.index, key)
	return nil
}

// Keys returns all live keys, sorted.
func (s *FileStore) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compact rewrites the log to contain only live records, atomically
// replacing the old file. A successful compaction also clears the
// refusing-appends state a failed, unrollbackable append leaves behind:
// the fresh log is rebuilt entirely from the in-memory index.
func (s *FileStore) Compact() error {
	tmp := s.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stablestore: %w", err)
	}
	old, oldSize, oldBroken := s.f, s.size, s.broken
	s.f, s.size, s.broken = nf, 0, nil
	restore := func() {
		s.f, s.size, s.broken = old, oldSize, oldBroken
		nf.Close() //failtrans:errok rolling back a failed compaction; the temp file is removed next, so its close error carries no durability
		os.Remove(tmp)
	}
	for _, k := range s.Keys() {
		if err := s.appendRecord(k, s.index[k], false); err != nil {
			restore()
			return err
		}
	}
	if err := nf.Sync(); err != nil {
		restore()
		return fmt.Errorf("stablestore: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		restore()
		return fmt.Errorf("stablestore: %w", err)
	}
	// The rename is not durable until the directory entry is: without a
	// parent-directory fsync a crash can lose the rename entirely or
	// resurrect the old (longer) log.
	err = syncDir(filepath.Dir(s.path))
	old.Close()
	if err != nil {
		return fmt.Errorf("stablestore: sync directory after compact: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a renamed entry inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// MemStore is the simulator-facing stable store: a plain map that, by
// construction, survives simulated crashes (a simulated crash destroys only
// process-volatile state, never the stable store).
type MemStore struct {
	m map[string][]byte
	// BytesWritten accumulates the total payload written, for cost
	// accounting.
	BytesWritten int64
}

// NewMem returns an empty in-memory stable store.
func NewMem() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put records key=val.
func (s *MemStore) Put(key string, val []byte) error {
	s.m[key] = append([]byte(nil), val...)
	s.BytesWritten += int64(len(val))
	return nil
}

// Get returns the current value of key.
func (s *MemStore) Get(key string) ([]byte, bool) {
	v, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes key.
func (s *MemStore) Delete(key string) error {
	delete(s.m, key)
	return nil
}

// Keys returns all live keys, sorted.
func (s *MemStore) Keys() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Store is the interface shared by MemStore and FileStore.
type Store interface {
	Put(key string, val []byte) error
	Get(key string) ([]byte, bool)
	Delete(key string) error
	Keys() []string
}

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
