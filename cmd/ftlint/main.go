// Command ftlint runs the failtrans invariant checkers over the module:
//
//	go run ./cmd/ftlint ./...
//
// Three passes (see internal/analysis/<pass> for the full rules):
//
//	detlint       no wall clock, global math/rand, or map-ordered output in
//	              the deterministic core
//	hotpathcheck  no allocation sites reachable from //failtrans:hotpath
//	              commit entry points
//	durability    no discarded errors from Sync/Truncate/Seek/Rename,
//	              write-path Close, or the stable-storage APIs
//
// ftlint exits 0 when the tree is clean, 1 when it has findings, 2 on
// usage or load errors. Suppressions (//failtrans:nondet, //failtrans:alloc,
// //failtrans:errok) require a written reason; a reasonless or misspelled
// directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/ftlint"
)

func main() {
	var detpkg string
	flag.StringVar(&detpkg, "detpkg", "",
		"comma-separated extra import paths to add to detlint's deterministic core")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ftlint [-detpkg pkgs] [patterns]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range ftlint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	var extra []string
	if detpkg != "" {
		extra = strings.Split(detpkg, ",")
	}
	res, err := ftlint.Run(".", flag.Args(), extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(analysis.FormatDiag(res.Fset, d))
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "ftlint: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
