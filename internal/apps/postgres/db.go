package postgres

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/kernel"
	"failtrans/internal/sim"
)

// Phases of the query cycle.
const (
	phaseOpen = iota
	phaseRead
	phaseApply
	phaseRender
	phaseDone
)

// checkEveryOps is how often the engine runs its full consistency check.
const checkEveryOps = 40

// DB is the postgres application: index + buffer pool + query driver.
type DB struct {
	Index *BTree
	Pool  *Pool
	// CurPage is the current insertion target.
	CurPage uint32
	// HavePage notes whether CurPage is valid yet.
	HavePage bool

	Phase   int
	Cmd     string
	LastMsg string
	Ops     int

	File    string
	OpCost  time.Duration
	PoolCap int

	faultSalt uint64

	// encBuf is the reusable MarshalState buffer. Not part of the state:
	// it never round-trips through the image and is rebuilt lazily after a
	// restore or fork.
	encBuf []byte
}

// New returns a database storing its heap in `file`.
func New(file string) *DB {
	return &DB{
		Index:   NewBTree(),
		Pool:    NewPool(8),
		File:    file,
		OpCost:  300 * time.Microsecond,
		PoolCap: 8,
	}
}

// Script converts textual queries (one per input) into the input script.
// Grammar:
//
//	insert <key> <value>
//	select <key>
//	update <key> <value>
//	delete <key>
//	scan <lo> <hi>
//	count <lo> <hi>
//	check
//	flush
//	vacuum
//	quit
func Script(queries []string) [][]byte {
	out := make([][]byte, 0, len(queries))
	for _, q := range queries {
		out = append(out, []byte(q))
	}
	return out
}

// Name implements sim.Program.
func (db *DB) Name() string { return "postgres" }

// Init implements sim.Program.
func (db *DB) Init(ctx *sim.Ctx) error {
	db.Pool.Cap = db.PoolCap
	return nil
}

// Step implements sim.Program.
func (db *DB) Step(ctx *sim.Ctx) sim.Status {
	switch db.Phase {
	case phaseOpen:
		ret, err := ctx.Syscall("open", []byte(db.File), []byte{1})
		if err != nil {
			ctx.Crash("postgres: " + err.Error())
			return sim.Crashed
		}
		db.Pool.FD = kernel.Int(ret[0])
		db.Phase = phaseRead
		return sim.Ready
	case phaseRead:
		in, ok := ctx.Input()
		if !ok {
			db.Phase = phaseDone
			return sim.Ready
		}
		db.Cmd = string(in)
		db.Ops++
		db.Phase = phaseApply
		return sim.Ready
	case phaseApply:
		ctx.Compute(db.OpCost)
		db.apply(ctx)
		if db.Ops%checkEveryOps == 0 {
			db.runCheck(ctx)
		}
		return sim.Ready
	case phaseRender:
		ctx.Output(db.LastMsg)
		db.Phase = phaseRead
		return sim.Ready
	default:
		return sim.Done
	}
}

// CheckConsistency implements sim.Checker: validate the index invariants
// and the checksums of every cached page.
func (db *DB) CheckConsistency() error {
	if err := db.Index.Check(); err != nil {
		return err
	}
	return db.Pool.CheckCached()
}

// runCheck validates the engine, crashing on corruption.
func (db *DB) runCheck(ctx *sim.Ctx) {
	if err := db.CheckConsistency(); err != nil {
		ctx.Crash(err.Error())
	}
}

func (db *DB) apply(ctx *sim.Ctx) {
	db.Phase = phaseRead
	fields := strings.Fields(db.Cmd)
	if len(fields) == 0 {
		return
	}
	kind := ctx.Fault("pg.op")
	key, _ := strconv.ParseInt(field(fields, 1), 10, 64)
	if kind == sim.StackBitFlip {
		key ^= 1 << (db.salt() % 16) // the parsed key flips in flight
	}
	switch fields[0] {
	case "insert":
		db.insert(ctx, key, []byte(field(fields, 2)), kind)
	case "select":
		db.query(ctx, key)
	case "update":
		db.update(ctx, key, []byte(field(fields, 2)))
	case "delete":
		db.del(ctx, key)
	case "scan":
		hi, _ := strconv.ParseInt(field(fields, 2), 10, 64)
		db.scan(ctx, key, hi)
	case "count":
		hi, _ := strconv.ParseInt(field(fields, 2), 10, 64)
		n := 0
		db.Index.Scan(key, hi, func(int64, RID) bool { n++; return true })
		db.LastMsg = fmt.Sprintf("count [%d,%d]: %d", key, hi, n)
		db.Phase = phaseRender
	case "check":
		db.runCheck(ctx)
	case "flush":
		if err := db.Pool.FlushAll(ctx); err != nil {
			ctx.Crash(err.Error())
		}
	case "vacuum":
		n, err := db.vacuum(ctx)
		if err != nil {
			ctx.Crash(err.Error())
			return
		}
		db.LastMsg = fmt.Sprintf("vacuum: reclaimed %d dead slots", n)
		db.Phase = phaseRender
	case "quit":
		db.Phase = phaseDone
	default:
		db.LastMsg = "?cmd " + fields[0]
		db.Phase = phaseRender
	}
}

// insert adds a tuple to the heap and the index.
func (db *DB) insert(ctx *sim.Ctx, key int64, value []byte, kind sim.FaultKind) {
	tuple := EncodeTuple(key, value)
	switch kind {
	case sim.OffByOne:
		// The slot bookkeeping will point one byte into the tuple.
		defer func() { db.offByOneLastRID() }()
	case sim.HeapBitFlip:
		db.flipCachedPageBit()
	case sim.InitFault:
		tuple = tuple[:10] // the value bytes are never initialized... and length says otherwise
		tuple[8] = 0xff    // length field left as garbage
	case sim.DestReg:
		key = int64(uint16(key)) << 16 // the computed key lands shifted in the wrong register
	case sim.DeleteInstr:
		// The heap-insert instruction is skipped but the bookkeeping
		// still runs: the index points at a slot that was never
		// written.
		p, err := db.targetPage(ctx, len(tuple))
		if err != nil {
			return
		}
		db.Index.Put(key, RID{Page: p.ID(), Slot: uint16(p.NSlots())})
		return
	case sim.DeleteBranch:
		// The free-space validation branch is gone: the upper
		// boundary drifts, so the next tuples overwrite earlier ones.
		if db.HavePage {
			if p, err := db.Pool.Get(ctx, db.CurPage); err == nil {
				p.setUpper(p.upper() + 64)
				p.Dirty = true
				p.UpdateCRC()
			}
		}
	}
	p, err := db.targetPage(ctx, len(tuple))
	if err != nil {
		ctx.Crash(err.Error())
		return
	}
	slot, err := p.Insert(tuple)
	if err != nil {
		ctx.Crash(err.Error())
		return
	}
	db.Index.Put(key, RID{Page: p.ID(), Slot: uint16(slot)})
}

// targetPage returns the current insertion page, allocating a fresh one
// when the tuple does not fit.
func (db *DB) targetPage(ctx *sim.Ctx, need int) (*Page, error) {
	if db.HavePage {
		p, err := db.Pool.Get(ctx, db.CurPage)
		if err != nil {
			return nil, err
		}
		if p.FreeSpace() >= need {
			return p, nil
		}
	}
	p, err := db.Pool.Alloc(ctx)
	if err != nil {
		return nil, err
	}
	db.CurPage = p.ID()
	db.HavePage = true
	return p, nil
}

// query executes a SELECT: index lookup, heap fetch, key verification,
// visible result.
func (db *DB) query(ctx *sim.Ctx, key int64) {
	rid, ok := db.Index.Get(key)
	if !ok {
		db.LastMsg = fmt.Sprintf("select %d: not found", key)
		db.Phase = phaseRender
		return
	}
	p, err := db.Pool.Get(ctx, rid.Page)
	if err != nil {
		return // Get crashed or errored
	}
	raw, err := p.Read(int(rid.Slot))
	if err != nil {
		ctx.Crash(err.Error())
		return
	}
	if raw == nil {
		ctx.Crash(fmt.Sprintf("postgres: index points to deleted tuple %d/%d", rid.Page, rid.Slot))
		return
	}
	k, v, err := DecodeTuple(raw)
	if err != nil {
		ctx.Crash(err.Error())
		return
	}
	if k != key {
		ctx.Crash(fmt.Sprintf("postgres: tuple key %d != index key %d", k, key))
		return
	}
	db.LastMsg = fmt.Sprintf("select %d: %s", key, v)
	db.Phase = phaseRender
}

func (db *DB) update(ctx *sim.Ctx, key int64, value []byte) {
	rid, ok := db.Index.Get(key)
	if !ok {
		db.LastMsg = fmt.Sprintf("update %d: not found", key)
		db.Phase = phaseRender
		return
	}
	p, err := db.Pool.Get(ctx, rid.Page)
	if err != nil {
		return
	}
	tuple := EncodeTuple(key, value)
	ok, err = p.Overwrite(int(rid.Slot), tuple)
	if err != nil {
		ctx.Crash(err.Error())
		return
	}
	if !ok {
		// Does not fit in place: delete and re-insert.
		if err := p.Delete(int(rid.Slot)); err != nil {
			ctx.Crash(err.Error())
			return
		}
		db.insert(ctx, key, value, sim.NoFault)
	}
}

func (db *DB) del(ctx *sim.Ctx, key int64) {
	rid, ok := db.Index.Get(key)
	if !ok {
		return
	}
	p, err := db.Pool.Get(ctx, rid.Page)
	if err != nil {
		return
	}
	if err := p.Delete(int(rid.Slot)); err != nil {
		ctx.Crash(err.Error())
		return
	}
	db.Index.Delete(key)
}

// scan outputs the number of tuples and a value checksum over [lo,hi],
// verifying every heap tuple against its index key.
func (db *DB) scan(ctx *sim.Ctx, lo, hi int64) {
	type hit struct {
		key int64
		rid RID
	}
	var hits []hit
	db.Index.Scan(lo, hi, func(k int64, rid RID) bool {
		hits = append(hits, hit{k, rid})
		return true
	})
	count := 0
	var sum uint32
	for _, h := range hits {
		p, err := db.Pool.Get(ctx, h.rid.Page)
		if err != nil {
			return
		}
		raw, err := p.Read(int(h.rid.Slot))
		if err != nil {
			ctx.Crash(err.Error())
			return
		}
		if raw == nil {
			continue
		}
		k, _, err := DecodeTuple(raw)
		if err != nil {
			ctx.Crash(err.Error())
			return
		}
		if k != h.key {
			ctx.Crash(fmt.Sprintf("postgres: scan tuple key %d != index key %d", k, h.key))
			return
		}
		count++
		sum ^= apputil.Checksum(raw)
	}
	db.LastMsg = fmt.Sprintf("scan [%d,%d]: %d tuples sum=%08x", lo, hi, count, sum)
	db.Phase = phaseRender
}

// flipCachedPageBit corrupts a cached page's tuple area without touching
// its checksum — latent until the next pool check or disk round trip.
func (db *DB) flipCachedPageBit() {
	s := db.salt()
	if len(db.Pool.lru) == 0 {
		return
	}
	id := db.Pool.lru[int(s)%len(db.Pool.lru)]
	p := db.Pool.pages[id]
	// Flip within the tuple data area to avoid trivially breaking the
	// header.
	bit := headerLen*8 + s%(uint64(PageSize-headerLen)*8)
	apputil.FlipBit(p.Data[:], bit)
}

// offByOneLastRID nudges the most recently inserted index entry's slot by
// one — the classic fencepost in slot arithmetic.
func (db *DB) offByOneLastRID() {
	if db.Index.Len() == 0 {
		return
	}
	// Walk to the rightmost leaf and bump its last RID's slot.
	n := db.Index.root
	for !n.Leaf {
		n = n.Children[len(n.Children)-1]
	}
	if len(n.RIDs) > 0 {
		n.RIDs[len(n.RIDs)-1].Slot++
	}
}

func (db *DB) salt() uint64 {
	db.faultSalt = db.faultSalt*6364136223846793005 + 1442695040888963407
	return db.faultSalt
}

func field(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

// marshalInto encodes the full database state into e.
func (db *DB) marshalInto(e *apputil.Enc) {
	db.Index.Marshal(e)
	db.Pool.Marshal(e)
	e.I64(int64(db.CurPage))
	e.Bool(db.HavePage)
	e.Int(db.Phase)
	e.Str(db.Cmd)
	e.Str(db.LastMsg)
	e.Int(db.Ops)
	e.Str(db.File)
	e.I64(int64(db.OpCost))
	e.Int(db.PoolCap)
	e.I64(int64(db.faultSalt))
}

// MarshalState implements sim.Program. The returned slice aliases an
// internal buffer reused across calls; callers that retain it must copy
// (the checkpoint path appends it into the image immediately).
func (db *DB) MarshalState() ([]byte, error) {
	e := apputil.Enc{B: db.encBuf[:0]}
	db.marshalInto(&e)
	db.encBuf = e.B
	return e.B, nil
}

// Fork implements sim.Forker via a marshal round trip into a fresh
// instance: Unmarshal rebuilds the BTree and buffer pool from scratch, and
// marshalInto only reads the receiver (the encoder here is deliberately
// fresh, not the shared encBuf), so a quiescent template may be forked
// from many goroutines at once.
func (db *DB) Fork() (sim.Program, error) {
	var e apputil.Enc
	db.marshalInto(&e)
	nd := &DB{}
	if err := nd.UnmarshalState(e.B); err != nil {
		return nil, err
	}
	return nd, nil
}

// UnmarshalState implements sim.Program.
func (db *DB) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	idx, err := UnmarshalBTree(&d)
	if err != nil {
		return err
	}
	pool, err := UnmarshalPool(&d)
	if err != nil {
		return err
	}
	db.Index = idx
	db.Pool = pool
	db.CurPage = uint32(d.I64())
	db.HavePage = d.Bool()
	db.Phase = d.Int()
	db.Cmd = d.Str()
	db.LastMsg = d.Str()
	db.Ops = d.Int()
	db.File = d.Str()
	db.OpCost = time.Duration(d.I64())
	db.PoolCap = d.Int()
	db.faultSalt = uint64(d.I64())
	return d.Err
}

// vacuum compacts every heap page and rewrites the index entries whose
// slots moved. It returns the number of slots reclaimed.
func (db *DB) vacuum(ctx *sim.Ctx) (int, error) {
	// Group live index entries by page.
	byPage := make(map[uint32][]struct {
		key  int64
		slot uint16
	})
	db.Index.Scan(math.MinInt64, math.MaxInt64, func(k int64, rid RID) bool {
		byPage[rid.Page] = append(byPage[rid.Page], struct {
			key  int64
			slot uint16
		}{k, rid.Slot})
		return true
	})
	reclaimed := 0
	for pid := uint32(0); pid < db.Pool.NumPages; pid++ {
		p, err := db.Pool.Get(ctx, pid)
		if err != nil {
			return reclaimed, err
		}
		before := p.NSlots()
		remap, err := p.Compact()
		if err != nil {
			return reclaimed, err
		}
		reclaimed += before - p.NSlots()
		for _, ent := range byPage[pid] {
			newSlot, ok := remap[ent.slot]
			if !ok {
				return reclaimed, fmt.Errorf("postgres: vacuum lost tuple for key %d (page %d slot %d)", ent.key, pid, ent.slot)
			}
			db.Index.Put(ent.key, RID{Page: pid, Slot: newSlot})
		}
		ctx.Compute(100 * time.Microsecond)
	}
	return reclaimed, nil
}
