package postgres

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// --- Page tests ---

func TestPageInsertRead(t *testing.T) {
	p := NewPage(7)
	if p.ID() != 7 {
		t.Errorf("ID = %d", p.ID())
	}
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s1); string(got) != "hello" {
		t.Errorf("Read(s1) = %q", got)
	}
	if got, _ := p.Read(s2); string(got) != "world!" {
		t.Errorf("Read(s2) = %q", got)
	}
	if !p.VerifyCRC() {
		t.Error("checksum should hold after inserts")
	}
}

func TestPageDelete(t *testing.T) {
	p := NewPage(0)
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if got, err := p.Read(s); err != nil || got != nil {
		t.Errorf("deleted slot Read = %q, %v", got, err)
	}
	if err := p.Delete(99); err == nil {
		t.Error("out-of-range delete must fail")
	}
}

func TestPageOverwrite(t *testing.T) {
	p := NewPage(0)
	s, _ := p.Insert([]byte("abcdef"))
	ok, err := p.Overwrite(s, []byte("xyz"))
	if err != nil || !ok {
		t.Fatalf("Overwrite = %v, %v", ok, err)
	}
	if got, _ := p.Read(s); string(got) != "xyz" {
		t.Errorf("Read = %q", got)
	}
	if ok, _ := p.Overwrite(s, []byte("waytoolongforslot")); ok {
		t.Error("oversized overwrite must report false")
	}
}

func TestPageFull(t *testing.T) {
	p := NewPage(0)
	tuple := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(tuple); err != nil {
			break
		}
		n++
	}
	if n != 8 { // 8*1004 < 8178 < 9*1004
		t.Errorf("fit %d 1000-byte tuples, want 8", n)
	}
}

func TestPageReadOutOfRange(t *testing.T) {
	p := NewPage(0)
	if _, err := p.Read(0); err == nil {
		t.Error("read of nonexistent slot must fail")
	}
}

func TestPageCRCDetectsCorruption(t *testing.T) {
	p := NewPage(0)
	p.Insert([]byte("data"))
	p.Data[5000] ^= 1
	if p.VerifyCRC() {
		t.Error("corruption must break the checksum")
	}
}

func TestTupleCodec(t *testing.T) {
	tp := EncodeTuple(-42, []byte("value"))
	k, v, err := DecodeTuple(tp)
	if err != nil || k != -42 || string(v) != "value" {
		t.Errorf("decode = %d %q %v", k, v, err)
	}
	if _, _, err := DecodeTuple([]byte{1, 2}); err == nil {
		t.Error("short tuple must fail")
	}
	bad := EncodeTuple(1, []byte("abc"))
	bad[8] = 0xff // length overrun
	if _, _, err := DecodeTuple(bad[:11]); err == nil {
		t.Error("overrunning length must fail")
	}
}

// --- B-tree tests ---

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	if bt.Put(5, RID{1, 2}) != true {
		t.Error("first Put should report new")
	}
	if bt.Put(5, RID{3, 4}) != false {
		t.Error("second Put of same key should report replace")
	}
	rid, ok := bt.Get(5)
	if !ok || rid != (RID{3, 4}) {
		t.Errorf("Get = %v %v", rid, ok)
	}
	if _, ok := bt.Get(6); ok {
		t.Error("missing key should not be found")
	}
	if !bt.Delete(5) || bt.Delete(5) {
		t.Error("Delete semantics wrong")
	}
	if bt.Len() != 0 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestBTreeManyKeysAndScan(t *testing.T) {
	bt := NewBTree()
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		bt.Put(int64(k), RID{Page: uint32(k), Slot: uint16(k)})
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	if err := bt.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for k := 0; k < n; k++ {
		rid, ok := bt.Get(int64(k))
		if !ok || rid.Page != uint32(k) {
			t.Fatalf("Get(%d) = %v %v", k, rid, ok)
		}
	}
	var got []int64
	bt.Scan(100, 199, func(k int64, _ RID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Errorf("Scan returned %d keys [%v..%v]", len(got), got[0], got[len(got)-1])
	}
	// Early termination.
	count := 0
	bt.Scan(0, int64(n), func(int64, RID) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early-stop scan visited %d", count)
	}
}

// TestBTreeMatchesMapModel is the core property test: random operations
// against the tree and a map oracle agree, and invariants hold throughout.
func TestBTreeMatchesMapModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		model := make(map[int64]RID)
		for i := 0; i < 300; i++ {
			k := int64(rng.Intn(120))
			switch rng.Intn(3) {
			case 0:
				rid := RID{Page: uint32(rng.Intn(100)), Slot: uint16(rng.Intn(100))}
				bt.Put(k, rid)
				model[k] = rid
			case 1:
				got := bt.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			default:
				rid, ok := bt.Get(k)
				wrid, wok := model[k]
				if ok != wok || (ok && rid != wrid) {
					return false
				}
			}
		}
		if bt.Len() != len(model) {
			return false
		}
		if err := bt.Check(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Scan over everything must equal the sorted model.
		var scanned []int64
		bt.Scan(-1000, 1000, func(k int64, _ RID) bool {
			scanned = append(scanned, k)
			return true
		})
		if len(scanned) != len(model) {
			return false
		}
		for i := 1; i < len(scanned); i++ {
			if scanned[i-1] >= scanned[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeMarshalRoundTrip(t *testing.T) {
	bt := NewBTree()
	for k := 0; k < 500; k++ {
		bt.Put(int64(k*7%500), RID{Page: uint32(k), Slot: 1})
	}
	var e apputil.Enc
	bt.Marshal(&e)
	d := &apputil.Dec{B: e.B}
	bt2, err := UnmarshalBTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Len() != bt.Len() {
		t.Fatalf("Len = %d vs %d", bt2.Len(), bt.Len())
	}
	if err := bt2.Check(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		a, aok := bt.Get(int64(k))
		b, bok := bt2.Get(int64(k))
		if aok != bok || a != b {
			t.Fatalf("key %d diverged", k)
		}
	}
}

// --- DB integration tests ---

func runDB(t *testing.T, queries ...string) (*sim.World, *DB) {
	t.Helper()
	db := New("table.dat")
	w := sim.NewWorld(5, db)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = Script(queries)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w, db
}

func TestDBInsertSelect(t *testing.T) {
	w, _ := runDB(t,
		"insert 1 alpha",
		"insert 2 beta",
		"select 1",
		"select 2",
		"select 3",
		"quit",
	)
	out := w.Outputs[0]
	if len(out) != 3 {
		t.Fatalf("outputs = %v", out)
	}
	if out[0] != "select 1: alpha" || out[1] != "select 2: beta" || !strings.Contains(out[2], "not found") {
		t.Errorf("outputs = %v", out)
	}
}

func TestDBUpdateDelete(t *testing.T) {
	w, _ := runDB(t,
		"insert 1 short",
		"update 1 xy",
		"select 1",
		"update 1 muchlongerthanbefore",
		"select 1",
		"delete 1",
		"select 1",
		"quit",
	)
	out := w.Outputs[0]
	if len(out) != 3 {
		t.Fatalf("outputs = %v", out)
	}
	if out[0] != "select 1: xy" || out[1] != "select 1: muchlongerthanbefore" || !strings.Contains(out[2], "not found") {
		t.Errorf("outputs = %v", out)
	}
}

func TestDBScan(t *testing.T) {
	var qs []string
	for i := 0; i < 20; i++ {
		qs = append(qs, fmt.Sprintf("insert %d v%d", i, i))
	}
	qs = append(qs, "scan 5 14", "quit")
	w, _ := runDB(t, qs...)
	out := w.Outputs[0]
	if len(out) != 1 || !strings.Contains(out[0], "10 tuples") {
		t.Errorf("outputs = %v", out)
	}
}

// TestDBSpillsAcrossPagesAndPool: enough data to overflow pages and evict
// from the pool; everything must remain readable (round trip through the
// simulated disk).
func TestDBSpillsAcrossPagesAndPool(t *testing.T) {
	var qs []string
	big := strings.Repeat("x", 500)
	const n = 200 // ~200*512B ≈ 100KB ≈ 13 pages > pool cap 8
	for i := 0; i < n; i++ {
		qs = append(qs, fmt.Sprintf("insert %d %s%d", i, big, i))
	}
	for i := 0; i < n; i += 17 {
		qs = append(qs, fmt.Sprintf("select %d", i))
	}
	qs = append(qs, "check", "quit")
	w, db := runDB(t, qs...)
	if w.Procs[0].Crashes != 0 {
		t.Fatal("database crashed")
	}
	if db.Pool.NumPages < 10 {
		t.Errorf("NumPages = %d, want >= 10", db.Pool.NumPages)
	}
	if db.Pool.Evictions == 0 || db.Pool.Misses == 0 {
		t.Errorf("pool never exercised: %d evictions, %d misses", db.Pool.Evictions, db.Pool.Misses)
	}
	for _, o := range w.Outputs[0] {
		if !strings.Contains(o, big[:20]) {
			t.Errorf("bad select result %q", o[:40])
		}
	}
}

func TestDBStateRoundTrip(t *testing.T) {
	_, db := runDB(t, "insert 1 a", "insert 2 b", "quit")
	img, err := db.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	db2 := &DB{}
	if err := db2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if db2.Index.Len() != 2 || db2.Pool.NumPages != db.Pool.NumPages {
		t.Error("state diverged")
	}
	if err := db2.UnmarshalState([]byte{3}); err == nil {
		t.Error("garbage must fail")
	}
}

// TestDBUnderRecoveryWithStops: the database survives stop failures under
// CBNDVS and answers queries identically to the failure-free run.
func TestDBUnderRecoveryWithStops(t *testing.T) {
	var qs []string
	for i := 0; i < 30; i++ {
		qs = append(qs, fmt.Sprintf("insert %d value%d", i, i))
	}
	for i := 0; i < 30; i += 3 {
		qs = append(qs, fmt.Sprintf("select %d", i))
	}
	qs = append(qs, "quit")

	_, clean := runDB(t, qs...)
	cleanWorld := sim.NewWorld(5, clean) // only for output capture shape
	_ = cleanWorld
	wantRun, _ := runDB(t, qs...)
	want := strings.Join(wantRun.Outputs[0], "\n")

	for stopAt := 5; stopAt < 100; stopAt += 20 {
		db := New("table.dat")
		w := sim.NewWorld(5, db)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = Script(qs)
		d := dc.New(w, protocol.CBNDVS, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("stop@%d: run did not complete", stopAt)
			continue
		}
		// Recovery may duplicate an output; squash consecutive dups.
		var dedup []string
		for _, o := range w.Outputs[0] {
			if len(dedup) == 0 || dedup[len(dedup)-1] != o {
				dedup = append(dedup, o)
			}
		}
		if got := strings.Join(dedup, "\n"); got != want {
			t.Errorf("stop@%d: outputs diverged\n got: %.120s\nwant: %.120s", stopAt, got, want)
		}
	}
}

type faultAt struct {
	kind sim.FaultKind
	n    int
	seen int
	done bool
}

func (f *faultAt) At(p *sim.Proc, site string) sim.FaultKind {
	if f.done || site != "pg.op" {
		return sim.NoFault
	}
	f.seen++
	if f.seen < f.n {
		return sim.NoFault
	}
	f.done = true
	return f.kind
}

// TestDBFaults: each fault kind leads to a crash through the engine's own
// checks (or stays silent, which is a legal outcome the study discards).
func TestDBFaults(t *testing.T) {
	kinds := []sim.FaultKind{
		sim.HeapBitFlip, sim.OffByOne, sim.InitFault, sim.DeleteInstr, sim.DeleteBranch, sim.DestReg,
	}
	crashed := 0
	for _, kind := range kinds {
		db := New("table.dat")
		w := sim.NewWorld(5, db)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		var qs []string
		payload := strings.Repeat("y", 400)
		for i := 0; i < 80; i++ {
			qs = append(qs, fmt.Sprintf("insert %d %s", i, payload))
			if i%4 == 3 {
				qs = append(qs, fmt.Sprintf("select %d", i-1))
			}
		}
		qs = append(qs, "scan 0 1000", "check", "quit")
		w.Procs[0].Ctx().Inputs = Script(qs)
		// Ops run in blocks of five (four inserts, one select); 27 is
		// an insert with two heap pages already live.
		w.Faults = &faultAt{kind: kind, n: 27}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if w.Procs[0].Crashes > 0 {
			crashed++
		} else {
			t.Logf("%v did not crash postgres", kind)
		}
	}
	if crashed < 3 {
		t.Errorf("only %d/6 fault kinds crashed postgres", crashed)
	}
}

func TestPageCompact(t *testing.T) {
	p := NewPage(3)
	s0, _ := p.Insert([]byte("keep-a"))
	s1, _ := p.Insert([]byte("dead-b"))
	s2, _ := p.Insert([]byte("keep-c"))
	p.Delete(s1)
	freeBefore := p.FreeSpace()
	remap, err := p.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if p.NSlots() != 2 || p.LiveTuples() != 2 {
		t.Fatalf("after compact: %d slots, %d live", p.NSlots(), p.LiveTuples())
	}
	if p.FreeSpace() <= freeBefore {
		t.Error("compaction should reclaim space")
	}
	if !p.VerifyCRC() {
		t.Error("checksum must hold after compaction")
	}
	a, _ := p.Read(int(remap[uint16(s0)]))
	c, _ := p.Read(int(remap[uint16(s2)]))
	if string(a) != "keep-a" || string(c) != "keep-c" {
		t.Errorf("tuples after compact: %q %q", a, c)
	}
	if _, ok := remap[uint16(s1)]; ok {
		t.Error("dead slot must not be remapped")
	}
}

func TestDBVacuum(t *testing.T) {
	var qs []string
	for i := 0; i < 40; i++ {
		qs = append(qs, fmt.Sprintf("insert %d value-%d", i, i))
	}
	for i := 0; i < 40; i += 2 {
		qs = append(qs, fmt.Sprintf("delete %d", i))
	}
	qs = append(qs, "vacuum", "check")
	for i := 1; i < 40; i += 2 {
		qs = append(qs, fmt.Sprintf("select %d", i))
	}
	qs = append(qs, "scan 0 100", "quit")
	w, db := runDB(t, qs...)
	if w.Procs[0].Crashes != 0 {
		t.Fatal("vacuum run crashed")
	}
	out := w.Outputs[0]
	if !strings.Contains(out[0], "reclaimed 20 dead slots") {
		t.Errorf("vacuum output = %q", out[0])
	}
	// Every surviving key still resolves through the rewritten index.
	for i, o := range out[1 : len(out)-1] {
		want := fmt.Sprintf("select %d: value-%d", 2*i+1, 2*i+1)
		if o != want {
			t.Errorf("post-vacuum select = %q, want %q", o, want)
		}
	}
	if !strings.Contains(out[len(out)-1], "20 tuples") {
		t.Errorf("post-vacuum scan = %q", out[len(out)-1])
	}
	if err := db.CheckConsistency(); err != nil {
		t.Errorf("consistency after vacuum: %v", err)
	}
}

// TestDBVacuumUnderRecovery: a stop failure in the middle of vacuuming must
// not lose or duplicate tuples.
func TestDBVacuumUnderRecovery(t *testing.T) {
	var qs []string
	for i := 0; i < 30; i++ {
		qs = append(qs, fmt.Sprintf("insert %d v%d", i, i))
	}
	for i := 0; i < 30; i += 3 {
		qs = append(qs, fmt.Sprintf("delete %d", i))
	}
	qs = append(qs, "vacuum", "scan 0 100", "quit")

	clean, _ := runDB(t, qs...)
	want := clean.Outputs[0][len(clean.Outputs[0])-1]

	for stopAt := 30; stopAt < 80; stopAt += 10 {
		db := New("table.dat")
		w := sim.NewWorld(5, db)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = Script(qs)
		d := dc.New(w, protocol.CBNDVS, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("stop@%d: did not finish", stopAt)
			continue
		}
		got := w.Outputs[0][len(w.Outputs[0])-1]
		if got != want {
			t.Errorf("stop@%d: final scan %q, want %q", stopAt, got, want)
		}
	}
}

func TestDBCount(t *testing.T) {
	w, _ := runDB(t,
		"insert 1 a", "insert 2 b", "insert 3 c", "insert 9 d",
		"delete 2",
		"count 1 5",
		"quit",
	)
	out := w.Outputs[0]
	if len(out) != 1 || out[0] != "count [1,5]: 2" {
		t.Errorf("outputs = %v", out)
	}
}
