package analysis_test

import (
	"strings"
	"testing"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/detlint"
)

// TestDirectiveHandling drives the full Run pipeline over the dirfix
// fixture and pins down the driver's directive semantics:
//
//   - a trailing suppression covers its own line only; a standalone
//     comment line covers the line below it (Trailing, Standalone, NoBleed)
//   - a reasonless suppression silences its finding but surfaces a
//     directive diagnostic, so the tree still fails CI (Reasonless)
//   - an unknown tag suppresses nothing and is itself reported (Typo)
func TestDirectiveHandling(t *testing.T) {
	res, err := analysis.Run(
		analysis.Config{Dir: "testdata/src", Patterns: []string{"dirfix"}},
		[]*analysis.Analyzer{detlint.New("dirfix")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	type diag struct {
		analyzer string
		line     int
		contains string
	}
	want := []diag{
		{"directive", 30, "requires a reason"},
		{"directive", 36, `unknown failtrans directive tag "nodet"`},
		{"detlint", 23, "time.Now"},
		{"detlint", 38, "time.Now"},
		// A trailing directive on one element line of a multi-line
		// composite literal does not bleed to the next element.
		{"detlint", 48, "time.Now"},
		// A standalone directive above a label covers the label's own
		// line, not the labeled statement under it.
		{"detlint", 61, "time.Now"},
	}
	for _, w := range want {
		found := false
		for _, d := range res.Diags {
			pos := res.Fset.Position(d.Pos)
			if d.Analyzer == w.analyzer && pos.Line == w.line && strings.Contains(d.Message, w.contains) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic on line %d containing %q", w.analyzer, w.line, w.contains)
		}
	}
	if len(res.Diags) != len(want) {
		for _, d := range res.Diags {
			t.Logf("got: %s: %s: %s", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Errorf("got %d diagnostics, want %d", len(res.Diags), len(want))
	}
}
