package sim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"failtrans/internal/event"
)

// fakeOS serves a single syscall and records calls.
type fakeOS struct {
	calls []string
	ret   [][]byte
	nd    event.NDClass
	err   error
	saved []byte
}

func (f *fakeOS) Call(pid int, name string, args [][]byte) ([][]byte, event.NDClass, error) {
	f.calls = append(f.calls, name)
	return f.ret, f.nd, f.err
}
func (f *fakeOS) SaveProcState(pid int) []byte          { return f.saved }
func (f *fakeOS) RestoreProcState(pid int, blob []byte) { f.saved = blob }

// sysUser makes one syscall then finishes.
type sysUser struct {
	counter
	Err error
}

func (p *sysUser) Step(ctx *Ctx) Status {
	if p.Done > 0 {
		return Done
	}
	p.Done++
	_, p.Err = ctx.Syscall("stat", []byte("f"))
	return Ready
}

func TestCtxSyscall(t *testing.T) {
	w := NewWorld(1, &sysUser{})
	os := &fakeOS{ret: [][]byte{{1, 2}}, nd: event.Deterministic}
	w.OS = os
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(os.calls) != 1 || os.calls[0] != "stat" {
		t.Errorf("calls = %v", os.calls)
	}
	if w.Procs[0].Prog.(*sysUser).Err != nil {
		t.Error("syscall errored")
	}
	// Deterministic syscalls are recorded as deterministic events.
	for _, e := range w.Trace.Events {
		if e.Label == "sys.stat" && e.ND != event.Deterministic {
			t.Errorf("sys.stat class = %v", e.ND)
		}
	}
}

func TestCtxSyscallNoOS(t *testing.T) {
	w := NewWorld(1, &sysUser{})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Procs[0].Prog.(*sysUser).Err == nil {
		t.Error("syscall without an OS must error")
	}
}

func TestCtxSyscallKernelError(t *testing.T) {
	w := NewWorld(1, &sysUser{})
	w.OS = &fakeOS{err: errors.New("boom")}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Procs[0].Prog.(*sysUser).Err == nil {
		t.Error("kernel error must propagate")
	}
}

// faultUser visits a fault site each step.
type faultUser struct {
	counter
	Kinds []FaultKind
}

func (p *faultUser) Step(ctx *Ctx) Status {
	if p.Done >= 3 {
		return Done
	}
	p.Done++
	p.Kinds = append(p.Kinds, ctx.Fault("site.x"))
	return Ready
}

type onceInjector struct{ fired bool }

func (o *onceInjector) At(p *Proc, site string) FaultKind {
	if o.fired || site != "site.x" {
		return NoFault
	}
	o.fired = true
	return OffByOne
}

func TestCtxFault(t *testing.T) {
	w := NewWorld(1, &faultUser{})
	w.Faults = &onceInjector{}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := w.Procs[0].Prog.(*faultUser).Kinds
	if len(kinds) != 3 || kinds[0] != OffByOne || kinds[1] != NoFault {
		t.Errorf("kinds = %v", kinds)
	}
	// No injector: always NoFault.
	w2 := NewWorld(1, &faultUser{})
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	for _, k := range w2.Procs[0].Prog.(*faultUser).Kinds {
		if k != NoFault {
			t.Error("fault without injector")
		}
	}
}

func TestMsgRecordCodec(t *testing.T) {
	m := Msg{ID: 7, From: 2, SendIdx: 99, Payload: []byte("data")}
	got := DecodeMsgRecord(EncodeMsgRecord(m))
	if got.ID != 7 || got.From != 2 || got.SendIdx != 99 || string(got.Payload) != "data" {
		t.Errorf("round trip = %+v", got)
	}
	if short := DecodeMsgRecord([]byte{1, 2}); short.ID != 0 {
		t.Error("short record must decode to zero message")
	}
}

func TestPartsCodec(t *testing.T) {
	parts := [][]byte{{1, 2}, nil, {3}}
	got := DecodeParts(EncodeParts(parts))
	if len(got) != 3 || !bytes.Equal(got[0], []byte{1, 2}) || len(got[1]) != 0 || !bytes.Equal(got[2], []byte{3}) {
		t.Errorf("round trip = %v", got)
	}
	if DecodeParts([]byte{1}) != nil {
		t.Error("short parts must decode to nil")
	}
	// Truncated payload stops gracefully.
	enc := EncodeParts([][]byte{{1, 2, 3, 4}})
	if got := DecodeParts(enc[:len(enc)-2]); len(got) != 0 {
		t.Errorf("truncated decode = %v", got)
	}
}

func TestDelayParkedProcess(t *testing.T) {
	w := NewWorld(1, &sleeper{})
	if err := w.Init(); err != nil {
		t.Fatal(err)
	}
	p := w.Procs[0]
	w.Delay(p, 50*time.Millisecond)
	if p.wake < 50*time.Millisecond {
		t.Errorf("wake = %v", p.wake)
	}
	// Delay never moves the wake time before the clock.
	w.Clock = 200 * time.Millisecond
	w.Delay(p, -time.Hour)
	if p.wake < w.Clock {
		t.Errorf("wake %v fell behind clock %v", p.wake, w.Clock)
	}
}

func TestAccessors(t *testing.T) {
	w := NewWorld(2, &counter{N: 1}, &counter{N: 1})
	p := w.Procs[1]
	if p.Ctx().Proc() != p || p.Ctx().World() != w {
		t.Error("accessor identity broken")
	}
	ev := w.RecordCommit(p, "manual")
	if ev.Kind != event.Commit || ev.ID.P != 1 {
		t.Errorf("RecordCommit = %v", ev)
	}
}

func TestScheduleStopOrdering(t *testing.T) {
	w := NewWorld(1, &counter{N: 10})
	w.ScheduleStop(0, 8)
	w.ScheduleStop(0, 3) // out of order: must fire at 3 first
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Without recovery the first stop kills the process.
	if !w.Procs[0].Dead() {
		t.Fatal("process should be dead")
	}
	if got := len(w.Outputs[0]); got != 3 {
		t.Errorf("outputs before the earlier stop = %d, want 3", got)
	}
}
