// Package fleet is the scalability workload: a parameterizable n-process
// client/server echo fleet for the scheduler and protocol scalability
// curves (overhead vs fleet size at 10²–10⁵ processes). The first
// cfg.Servers processes are sharded echo servers; the remaining
// cfg.Clients processes each run cfg.Rounds request/reply rounds against
// server (client % Servers), thinking a deterministic, client-staggered
// interval between rounds so the fleet's wake-ups spread over virtual time
// instead of arriving as one storm.
//
// Only the first cfg.Reporters clients emit visible output (one line per
// round). That keeps the commit-prior-to-visible protocol family — and in
// particular the coordinated 2PC points, which commit every process per
// visible event — measurable at 10⁴⁺ processes: visible-event count is a
// workload parameter, not O(fleet).
//
// Every program follows the repo's checkpoint contract: at most one
// commit-relevant Ctx event per Step, state mutations after the event, and
// full state round-tripping through MarshalState/UnmarshalState, so the
// fleet runs under every measured protocol and forks/freezes like the
// paper workloads.
package fleet

import (
	"fmt"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/sim"
)

// Config parameterizes one fleet.
type Config struct {
	// Servers is the number of echo shards (≥1).
	Servers int
	// Clients is the number of client processes (≥1).
	Clients int
	// Rounds is the request/reply rounds each client runs.
	Rounds int
	// Payload is the request payload size in bytes.
	Payload int
	// Reporters is how many clients emit visible output each round
	// (clamped to Clients).
	Reporters int
	// Think is the base think time between a client's rounds; each
	// client adds a deterministic stagger derived from its index.
	Think time.Duration
}

// Norm returns cfg with zero fields defaulted and bounds clamped.
func (cfg Config) Norm() Config {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	if cfg.Payload < 8 {
		cfg.Payload = 8
	}
	if cfg.Reporters < 0 {
		cfg.Reporters = 0
	}
	if cfg.Reporters > cfg.Clients {
		cfg.Reporters = cfg.Clients
	}
	if cfg.Think <= 0 {
		cfg.Think = 10 * time.Millisecond
	}
	return cfg
}

// Procs is the total process count of the fleet cfg describes.
func (cfg Config) Procs() int { n := cfg.Norm(); return n.Servers + n.Clients }

// Sized returns the canonical curve configuration for a fleet of about n
// total processes: one server shard per 64 clients, two rounds, and the
// visible-output width fixed at 16 reporters regardless of n.
func Sized(n int) Config {
	if n < 2 {
		n = 2
	}
	servers := n / 64
	if servers < 1 {
		servers = 1
	}
	clients := n - servers
	reporters := 16
	if reporters > clients {
		reporters = clients
	}
	return Config{
		Servers:   servers,
		Clients:   clients,
		Rounds:    2,
		Payload:   64,
		Reporters: reporters,
		Think:     10 * time.Millisecond,
	}.Norm()
}

// Fleet builds the programs: servers first (pids 0..Servers-1), then
// clients.
func Fleet(cfg Config) []sim.Program {
	cfg = cfg.Norm()
	progs := make([]sim.Program, 0, cfg.Servers+cfg.Clients)
	for s := 0; s < cfg.Servers; s++ {
		progs = append(progs, NewServer(cfg, s))
	}
	for c := 0; c < cfg.Clients; c++ {
		progs = append(progs, NewClient(cfg, c))
	}
	return progs
}

// Message kinds on the wire.
const (
	msgEcho = iota + 1 // client request: kind, client pid, round, padding
	msgReply           // server reply: same bytes echoed back
	msgBye             // client is finished
)

// clientsOf returns how many clients shard s serves.
func clientsOf(cfg Config, shard int) int {
	n := cfg.Clients / cfg.Servers
	if shard < cfg.Clients%cfg.Servers {
		n++
	}
	return n
}

// reply is one pending echo the server owes.
type reply struct {
	To      int
	Payload []byte
}

// Server is one echo shard: it answers msgEcho with msgReply (one receive
// step, one send step — one event each) and finishes once every client of
// its shard said bye.
type Server struct {
	Cfg   Config
	Shard int

	Byes    int
	Pending []reply

	buf []byte
}

// NewServer returns shard `shard` of the fleet.
func NewServer(cfg Config, shard int) *Server {
	return &Server{Cfg: cfg.Norm(), Shard: shard}
}

// Name implements sim.Program.
func (s *Server) Name() string { return "fleet-server" }

// Init implements sim.Program.
func (s *Server) Init(ctx *sim.Ctx) error { return nil }

// Step implements sim.Program: flush one owed reply, else consume one
// message.
func (s *Server) Step(ctx *sim.Ctx) sim.Status {
	if len(s.Pending) > 0 {
		r := s.Pending[0]
		if err := ctx.Send(r.To, r.Payload); err != nil {
			ctx.Crash("fleet-server: " + err.Error())
			return sim.Crashed
		}
		s.Pending = s.Pending[1:]
		return sim.Ready
	}
	if s.Byes >= clientsOf(s.Cfg, s.Shard) {
		return sim.Done
	}
	m, ok := ctx.Recv()
	if !ok {
		return sim.WaitMsg
	}
	switch {
	case len(m.Payload) > 0 && m.Payload[0] == msgEcho:
		echo := append([]byte(nil), m.Payload...)
		echo[0] = msgReply
		s.Pending = append(s.Pending, reply{To: m.From, Payload: echo})
	case len(m.Payload) > 0 && m.Payload[0] == msgBye:
		s.Byes++
	}
	return sim.Ready
}

// MarshalState implements sim.Program.
func (s *Server) MarshalState() ([]byte, error) {
	e := apputil.Enc{B: s.buf[:0]}
	e.Int(s.Shard)
	e.Int(s.Byes)
	e.Int(len(s.Pending))
	for _, r := range s.Pending {
		e.Int(r.To)
		e.Bytes(r.Payload)
	}
	s.buf = e.B
	return s.buf, nil
}

// UnmarshalState implements sim.Program.
func (s *Server) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	s.Shard = d.Int()
	s.Byes = d.Int()
	n := d.Int()
	s.Pending = s.Pending[:0]
	for i := 0; i < n; i++ {
		to := d.Int()
		payload := d.Bytes()
		s.Pending = append(s.Pending, reply{To: to, Payload: payload})
	}
	if d.Err != nil {
		return fmt.Errorf("fleet-server: unmarshal: %w", d.Err)
	}
	return nil
}

// Fork implements sim.Forker.
func (s *Server) Fork() (sim.Program, error) {
	ns := &Server{Cfg: s.Cfg, Shard: s.Shard, Byes: s.Byes}
	ns.Pending = append([]reply(nil), s.Pending...)
	for i := range ns.Pending {
		ns.Pending[i].Payload = append([]byte(nil), s.Pending[i].Payload...)
	}
	return ns, nil
}

// Client phases.
const (
	clSend = iota // send the round's request
	clAwait       // consume the reply (then think)
	clReport      // visible output for reporter clients
	clBye         // tell the shard we are finished
	clDone
)

// Client runs Rounds request/reply rounds against its shard.
type Client struct {
	Cfg Config
	// ID is the client index (0-based); the process pid is Servers+ID.
	ID int

	Phase int
	Round int

	req []byte
	buf []byte
}

// NewClient returns fleet client id.
func NewClient(cfg Config, id int) *Client {
	return &Client{Cfg: cfg.Norm(), ID: id}
}

// shard is the pid of this client's server.
func (c *Client) shard() int { return c.ID % c.Cfg.Servers }

// think is the deterministic client- and round-staggered pause between
// rounds, spreading the fleet's wake-ups over virtual time.
func (c *Client) think() time.Duration {
	jitter := time.Duration((c.ID*2654435761+c.Round*40503)%4096) * time.Microsecond
	return c.Cfg.Think + jitter
}

// Name implements sim.Program.
func (c *Client) Name() string { return "fleet-client" }

// Init implements sim.Program: stagger the first request so n clients do
// not all fire at virtual time zero.
func (c *Client) Init(ctx *sim.Ctx) error {
	ctx.Compute(time.Duration(c.ID%8192) * 3 * time.Microsecond)
	return nil
}

// request fills the reusable round-request buffer.
func (c *Client) request() []byte {
	if cap(c.req) < c.Cfg.Payload {
		c.req = make([]byte, c.Cfg.Payload)
	}
	c.req = c.req[:c.Cfg.Payload]
	e := apputil.Enc{B: c.req[:0]}
	e.B = append(e.B, msgEcho)
	e.Int(c.ID)
	e.Int(c.Round)
	for len(e.B) < c.Cfg.Payload {
		e.B = append(e.B, byte(len(e.B)))
	}
	c.req = e.B[:c.Cfg.Payload]
	return c.req
}

// Step implements sim.Program.
func (c *Client) Step(ctx *sim.Ctx) sim.Status {
	switch c.Phase {
	case clSend:
		if err := ctx.Send(c.shard(), c.request()); err != nil {
			ctx.Crash("fleet-client: " + err.Error())
			return sim.Crashed
		}
		c.Phase = clAwait
		return sim.Ready
	case clAwait:
		m, ok := ctx.Recv()
		if !ok {
			return sim.WaitMsg
		}
		if len(m.Payload) == 0 || m.Payload[0] != msgReply {
			ctx.Crash("fleet-client: bad reply kind")
			return sim.Crashed
		}
		c.Round++
		if c.ID < c.Cfg.Reporters {
			c.Phase = clReport
			return sim.Ready
		}
		return c.nextRound(ctx)
	case clReport:
		ctx.Output(fmt.Sprintf("c%d r%d ok", c.ID, c.Round))
		return c.nextRound(ctx)
	case clBye:
		if err := ctx.Send(c.shard(), []byte{msgBye}); err != nil {
			ctx.Crash("fleet-client: " + err.Error())
			return sim.Crashed
		}
		c.Phase = clDone
		return sim.Ready
	default:
		return sim.Done
	}
}

// nextRound schedules the next round (thinking first) or moves to bye.
// Called after this step's one event; Sleep is scheduling, not an event.
func (c *Client) nextRound(ctx *sim.Ctx) sim.Status {
	if c.Round >= c.Cfg.Rounds {
		c.Phase = clBye
		return sim.Ready
	}
	c.Phase = clSend
	ctx.Sleep(c.think())
	return sim.Sleeping
}

// MarshalState implements sim.Program.
func (c *Client) MarshalState() ([]byte, error) {
	e := apputil.Enc{B: c.buf[:0]}
	e.Int(c.ID)
	e.Int(c.Phase)
	e.Int(c.Round)
	c.buf = e.B
	return c.buf, nil
}

// UnmarshalState implements sim.Program.
func (c *Client) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	c.ID = d.Int()
	c.Phase = d.Int()
	c.Round = d.Int()
	if d.Err != nil {
		return fmt.Errorf("fleet-client: unmarshal: %w", d.Err)
	}
	return nil
}

// Fork implements sim.Forker.
func (c *Client) Fork() (sim.Program, error) {
	return &Client{Cfg: c.Cfg, ID: c.ID, Phase: c.Phase, Round: c.Round}, nil
}
