// Package dirfix exercises the driver's directive handling: placement
// (trailing vs standalone), mandatory reasons, and unknown-tag detection.
// The line numbers of this file are asserted in run_test.go.
package dirfix

import "time"

// Trailing's finding is silenced by the directive on the same line.
func Trailing() time.Time {
	return time.Now() //failtrans:nondet fixture: trailing, suppresses this line
}

// Standalone's finding is silenced by the full-line comment above it.
func Standalone() time.Time {
	//failtrans:nondet fixture: standalone, suppresses the line below
	return time.Now()
}

// NoBleed shows a trailing directive covering only its own line: the
// second time.Now must still be reported (line 23).
func NoBleed() (time.Time, time.Time) {
	a := time.Now() //failtrans:nondet fixture: suppresses only this line
	b := time.Now()
	return a, b
}

// Reasonless's suppression still silences the finding, but the driver
// reports the missing reason (line 30), so the tree cannot lint clean.
func Reasonless() time.Time {
	return time.Now() //failtrans:nondet
}

// A typoed tag suppresses nothing and is itself reported (line 36), so
// Typo's time.Now (line 38) is also still reported.
//
//failtrans:nodet oops
func Typo() time.Time {
	return time.Now()
}
