// Package campaign is the deterministic parallel executor behind the fault
// studies and the Figure 8 sweep: it fans independent runs out across a
// worker pool while producing results byte-identical to the serial loops it
// replaces.
//
// The subtle requirement is early exit. The studies stop each fault type at
// a run-order-dependent index (the run whose crash reaches CrashTarget), so
// naive parallelism would accept whichever runs finish first and change the
// aggregate. Run instead uses speculative execution with ordered
// acceptance: a bounded window of runs is dispatched to workers in index
// order, but results are accepted strictly in serial run order, and the
// loop stops at exactly the run the serial loop would have stopped at.
// Results computed beyond that point (the speculation overshoot) are
// discarded. Provided each job is independent — it reads only its index and
// immutable configuration, as the studies' fresh-world-per-run jobs do —
// the accepted sequence is identical to the serial one.
package campaign

import (
	"sync"
	"time"

	"failtrans/internal/obs"
)

// speculation sizes the dispatch window in multiples of the worker count: a
// worker may run at most this many batches ahead of the acceptance
// frontier. Larger values hide more scheduling jitter but waste more work
// past an early exit.
const speculation = 2

// Config parameterizes one campaign phase.
type Config struct {
	// Workers is the pool size; values <= 1 run the serial loop directly.
	Workers int
	// Phase labels the progress span and debug output (e.g. "table1/nvi/HeapBitFlip").
	Phase string
	// Metrics, if non-nil, receives per-worker run counts and the
	// dispatched/accepted/discarded totals.
	Metrics *obs.CampaignMetrics
	// Tracer, if non-nil, receives one campaign progress span per phase on
	// Track, positioned by cumulative accepted-run count (deterministic,
	// unlike wall time).
	Tracer *obs.Tracer
	Track  int
}

// result carries one speculative run's outcome back to the acceptor.
type result[T any] struct {
	i   int
	v   T
	err error
}

// Run executes job(i) for i in [0, n) and feeds the results to accept
// strictly in index order, stopping as soon as accept returns false. Its
// observable behavior is exactly the serial loop
//
//	for i := 0; i < n; i++ {
//		v, err := job(i)
//		if err != nil {
//			return err
//		}
//		if !accept(i, v) {
//			break
//		}
//	}
//
// but with up to cfg.Workers jobs in flight. accept runs on the calling
// goroutine and needs no locking. Jobs must be independent of one another;
// jobs past the stopping point may or may not execute, and their results
// are discarded.
func Run[T any](cfg Config, n int, job func(i int) (T, error), accept func(i int, v T) bool) error {
	m := cfg.Metrics
	if m != nil {
		m.Phases++
	}
	acceptedBefore := int64(0)
	if m != nil {
		acceptedBefore = m.Accepted
	}
	var err error
	if cfg.Workers <= 1 || n <= 1 {
		err = runSerial(cfg, n, job, accept)
	} else {
		err = runParallel(cfg, n, job, accept)
	}
	if t := cfg.Tracer; t != nil {
		// Progress spans over a deterministic "accepted runs" timeline:
		// this phase covers [acceptedBefore, accepted) in microseconds.
		accepted := int64(0)
		if m != nil {
			accepted = m.Accepted - acceptedBefore
		}
		t.SpanArgs(cfg.Track, "campaign", cfg.Phase,
			time.Duration(acceptedBefore)*time.Microsecond,
			time.Duration(accepted)*time.Microsecond,
			"phase", cfg.Phase, "accepted", accepted)
	}
	return err
}

// runSerial is the reference loop, with the same metrics accounting.
func runSerial[T any](cfg Config, n int, job func(i int) (T, error), accept func(i int, v T) bool) error {
	m := cfg.Metrics
	for i := 0; i < n; i++ {
		v, err := job(i)
		if m != nil {
			m.SerialRuns++
			m.Dispatched++
		}
		if err != nil {
			return err
		}
		if m != nil {
			m.Accepted++
		}
		if !accept(i, v) {
			return nil
		}
	}
	return nil
}

// runParallel is the speculative pool. A feeder hands indexes to workers in
// order, gated by a credit window so speculation stays bounded; the calling
// goroutine accepts results in strict index order and, on early exit or
// error, halts the feeder and drains (discarding) whatever was in flight.
func runParallel[T any](cfg Config, n int, job func(i int) (T, error), accept func(i int, v T) bool) error {
	m := cfg.Metrics
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	window := workers * speculation

	var (
		stopOnce sync.Once
		stop     = make(chan struct{})
		jobs     = make(chan int)
		results  = make(chan result[T], window)
		credits  = make(chan struct{}, window)
	)
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	// Feeder: dispatch indexes in order, at most `window` past the
	// acceptance frontier (each dispatch takes a credit; the acceptor
	// returns one per result consumed).
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case <-stop:
				return
			case credits <- struct{}{}:
			}
			select {
			case <-stop:
				return
			case jobs <- i:
				if m != nil {
					m.Dispatched++ // feeder is the sole writer
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := range jobs {
				v, jerr := job(i)
				if m != nil && k < len(m.Workers) {
					m.Workers[k].Runs++ // each worker owns its slot
				}
				results <- result[T]{i: i, v: v, err: jerr}
			}
		}(k)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Acceptor: reorder buffer keyed by index, consumed at the frontier.
	pending := make(map[int]result[T], window)
	next := 0
	stopped := false
	var firstErr error
	for r := range results {
		<-credits
		if stopped {
			if m != nil {
				m.Discarded++
			}
			continue
		}
		pending[r.i] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if q.err != nil {
				firstErr = q.err
				stopped = true
				halt()
				break
			}
			if m != nil {
				m.Accepted++
			}
			if !accept(q.i, q.v) {
				stopped = true
				halt()
				break
			}
		}
	}
	if m != nil {
		m.Discarded += int64(len(pending))
	}
	return firstErr
}
