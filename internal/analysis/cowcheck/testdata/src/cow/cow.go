// Package cow is the cowcheck golden fixture: a miniature of the nvi
// editor's fork-sharing contract. Editor.Lines mirrors the PR 6 bug —
// insertBad is the un-privatized splice that scribbled on a frozen fork
// template, and must be a finding.
package cow

type Editor struct {
	// Lines may alias a frozen fork template's per-line buffers until a
	// privatizer runs.
	//failtrans:cowshared privatizeLines,SnapshotUndo — forks share the backing until first write
	Lines [][]byte

	//failtrans:cowshared privatizeLines — recomputed alongside Lines
	sums []uint32

	//failtrans:cowshared none — capacity-clamped views; every store must justify itself
	log []int

	// nodes mirrors the kernel's lazily-cloned node map.
	//failtrans:cowshared cloneNode — fork maps fill in by cloning template entries
	nodes map[int]*int

	// valid is mutated only through its own methods; the mutator-method
	// rule must see bits.set as a store.
	//failtrans:cowshared privatizeLines — validity bits ride with the line backing
	valid bits

	shared bool
}

type bits []uint64

func (b bits) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bits) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (e *Editor) privatizeLines() {
	if !e.shared {
		return
	}
	lines := make([][]byte, len(e.Lines))
	copy(lines, e.Lines)
	e.Lines = lines
	e.shared = false
}

func (e *Editor) SnapshotUndo() {
	e.privatizeLines()
}

// insertBad is the PR 6 nvi bug in miniature: splicing into Lines without
// privatizing first.
func (e *Editor) insertBad(row int, b byte) {
	line := e.Lines[row]
	e.Lines[row] = append(line, b) // want `store through COW-shared field Editor\.Lines`
}

// insertGood privatizes on every path first.
func (e *Editor) insertGood(row int, b byte) {
	e.privatizeLines()
	e.Lines[row] = append(e.Lines[row], b)
}

// viaSnapshot shows a second listed privatizer sanctioning the store.
func (e *Editor) viaSnapshot(row int) {
	e.SnapshotUndo()
	e.Lines[row] = nil
}

// condBad privatizes on only one arm, so the store after the join is
// reachable unprivatized.
func (e *Editor) condBad(row int) {
	if e.shared {
		e.privatizeLines()
	}
	e.Lines[row] = nil // want `store through COW-shared field Editor\.Lines`
}

// condGood privatizes on both arms.
func (e *Editor) condGood(row int) {
	if e.shared {
		e.privatizeLines()
	} else {
		e.SnapshotUndo()
	}
	e.Lines[row] = nil
}

// sameStatement mirrors the kernel's lazy node clone: the privatizer on
// the right-hand side evaluates before the store completes, so
// `nodes[pid] = cloneNode(n)` is sanctioned by itself.
func (e *Editor) sameStatement(pid int) {
	e.nodes[pid] = cloneNode(e.nodes[0])
}

// cloneNode is a package-level privatizer (the kernel shape).
func cloneNode(n *int) *int {
	c := *n
	return &c
}

// copyBad writes the shared backing through the builtin.
func (e *Editor) copyBad(row int, data []byte) {
	copy(e.Lines[row], data) // want `copy into COW-shared field Editor\.Lines`
}

// copyGood is dominated.
func (e *Editor) copyGood(row int, data []byte) {
	e.privatizeLines()
	copy(e.Lines[row], data)
}

// appendBad reassigns the header, but append writes in place whenever
// capacity allows — the idiom is still a store.
func (e *Editor) appendBad(line []byte) {
	e.Lines = append(e.Lines, line) // want `append over COW-shared field Editor\.Lines`
}

// headerOnly replaces the slice header without touching the backing;
// plain reassignment is not a finding.
func (e *Editor) headerOnly(lines [][]byte) {
	e.Lines = lines
}

// wrongReceiver privatizes a different editor, which must not sanction
// the store.
func (e *Editor) wrongReceiver(other *Editor, row int) {
	other.privatizeLines()
	e.Lines[row] = nil // want `store through COW-shared field Editor\.Lines`
}

// mutatorBad hits valid's backing through its set method.
func (e *Editor) mutatorBad(i int) {
	e.valid.set(i) // want `mutating call set on COW-shared field Editor\.valid`
}

// mutatorGood is dominated; the pure query method never flags.
func (e *Editor) mutatorGood(i int) bool {
	e.privatizeLines()
	e.valid.set(i)
	return e.valid.has(i)
}

// sumsBad exercises the second annotated field independently.
func (e *Editor) sumsBad(i int) {
	e.sums[i]++ // want `store through COW-shared field Editor\.sums`
}

// noPrivatizer: the "none" payload means every store needs a written
// cowok reason.
func (e *Editor) noPrivatizer(i int) {
	e.log[i] = 1 // want `field has no privatizer`
	e.log[i] = 2 //failtrans:cowok fixture: the clamped view makes this store private
}

// loopBad privatizes only after the first store iteration.
func (e *Editor) loopBad(rows []int) {
	for _, r := range rows {
		e.Lines[r] = nil // want `store through COW-shared field Editor\.Lines`
		e.privatizeLines()
	}
}

// fresh constructs its own editor; nothing can be template-shared yet.
func fresh(n int) *Editor {
	e := &Editor{Lines: make([][]byte, n)}
	e.Lines[0] = []byte("seed")
	return e
}

// valueCopy duplicates slice headers, not backing — stores through the
// copy still hit the template and must be flagged.
func valueCopy(e *Editor, row int) *Editor {
	ne := *e
	ne.Lines[row] = nil // want `store through COW-shared field Editor\.Lines`
	return &ne
}
