package statemachine

import "failtrans/internal/event"

// FromExecution builds the state machine of one executed path: state i
// steps to state i+1 by executing events[i]. Each effectively-transient
// non-deterministic event also gets an escape edge — the result it could
// have had instead, leading to a state from which the paper conservatively
// assumes completion is possible. If crashed is true the path's final state
// is a crash state.
//
// This is the bridge between recorded traces and the Lose-work machinery:
// running DangerousPaths on the result identifies exactly the commits that
// doomed recovery.
func FromExecution(events []event.Event, crashed bool) *Machine {
	// Path states 0..n, plus one escape terminal per transient event.
	n := len(events)
	m := New(n + 1)
	for i, e := range events {
		nd := event.Deterministic
		if e.EffectivelyND() {
			nd = e.ND
		}
		m.AddEdge(Edge{From: StateID(i), To: StateID(i + 1), ND: nd, Msg: e.Msg, Label: e.Label})
		if nd == event.TransientND {
			escape := StateID(m.NumStates)
			m.NumStates++
			m.AddEdge(Edge{From: StateID(i), To: escape, ND: event.TransientND, Label: "escape"})
		}
	}
	if crashed && n > 0 {
		m.MarkCrash(StateID(n))
	}
	return m
}

// CommitViolations returns the indexes (into events) of the commit events
// that lie on a dangerous path of the executed run — the Lose-work
// violations the Lose-work Theorem forbids.
func CommitViolations(events []event.Event, crashed bool) []int {
	m := FromExecution(events, crashed)
	c := m.DangerousPaths()
	var out []int
	edge := 0
	for i, e := range events {
		onPath := c.Dangerous(EventID(edge))
		edge++
		if e.EffectivelyND() && e.ND == event.TransientND {
			edge++ // skip the escape edge
		}
		if e.Kind == event.Commit && onPath {
			out = append(out, i)
		}
	}
	return out
}
