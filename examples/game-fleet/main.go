// game-fleet: the four-machine xpilot deployment (one server, three
// players) under two recovery protocols, with the server and one client
// crashing mid-game.
//
// The demo shows the paper's xpilot result in miniature: on reliable
// memory every protocol sustains the full 15 frames per second, and the
// coordinated-commit (2PC) protocols trade extra checkpoints for never
// committing before sends.
//
// Run: go run ./examples/game-fleet
package main

import (
	"fmt"
	"strings"
	"time"

	"failtrans"
	"failtrans/internal/apps/xpilot"
	"failtrans/internal/kernel"
)

func run(pol failtrans.Policy, medium failtrans.Medium, crashy bool) {
	const ticks = 60
	w := failtrans.NewWorld(7, xpilot.Fleet(ticks)...)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	for i := 1; i <= 3; i++ {
		w.Procs[i].Ctx().Inputs = xpilot.KeyScript(strings.Repeat("wwad  d", 30))
	}
	w.MaxSteps = 10_000_000
	d := failtrans.NewDC(w, pol, medium)
	if err := d.Attach(); err != nil {
		panic(err)
	}
	if crashy {
		w.ScheduleStop(0, 300) // the server machine dies mid-game
		w.ScheduleStop(2, 150) // so does player 2's
	}
	if err := w.Run(); err != nil {
		panic(err)
	}
	srv := w.Procs[0].Prog.(*xpilot.Server)
	fps := float64(len(w.Outputs[1])) / w.Clock.Seconds()
	scores := make([]int, len(srv.Ships))
	for i, s := range srv.Ships {
		scores[i] = s.Score
	}
	fmt.Printf("%-11s %-5s crashy=%-5v fps=%4.1f ckpts=%-5d 2pc=%-4d recoveries=%d scores=%v done=%v\n",
		pol.Name, medium.Name, crashy, fps, d.Stats.TotalCheckpoints(), d.Stats.TwoPhaseRounds,
		d.Stats.Recoveries, scores, w.AllDone())
}

func main() {
	fmt.Println("game-fleet: 60 frames of 4-machine xpilot at 15 fps")
	fmt.Println()
	for _, pol := range []failtrans.Policy{failtrans.CPVS, failtrans.CPV2PC, failtrans.CANDLog} {
		run(pol, failtrans.Rio, false)
		run(pol, failtrans.Rio, true)
	}
	fmt.Println()
	fmt.Println("And the paper's DC-disk pain, felt by the commit-happy protocol:")
	run(failtrans.CAND, failtrans.Disk, false)
	run(failtrans.CBNDVS, failtrans.Disk, false)
}
