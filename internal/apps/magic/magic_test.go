package magic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"failtrans/internal/dc"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if r.Area() != 12 {
		t.Errorf("Area = %d", r.Area())
	}
	if (Rect{2, 2, 2, 5}).Area() != 0 {
		t.Error("degenerate rect must have zero area")
	}
	if !r.Intersects(Rect{3, 2, 10, 10}) {
		t.Error("overlapping rects should intersect")
	}
	if r.Intersects(Rect{4, 0, 8, 3}) {
		t.Error("touching rects (half-open) do not intersect")
	}
	got := r.Intersect(Rect{2, 1, 10, 10})
	if got != (Rect{2, 1, 4, 3}) {
		t.Errorf("Intersect = %+v", got)
	}
}

func TestSubtractFullCover(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	if frags := r.Subtract(Rect{0, 0, 5, 5}); len(frags) != 0 {
		t.Errorf("fully covered rect should vanish, got %v", frags)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	frags := r.Subtract(Rect{5, 5, 6, 6})
	if len(frags) != 1 || frags[0] != r {
		t.Errorf("disjoint subtract = %v", frags)
	}
}

func TestSubtractHole(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	frags := r.Subtract(Rect{4, 4, 6, 6})
	if len(frags) != 4 {
		t.Fatalf("hole should leave 4 fragments, got %v", frags)
	}
	area := 0
	for i, f := range frags {
		area += f.Area()
		for j := i + 1; j < len(frags); j++ {
			if f.Intersects(frags[j]) {
				t.Errorf("fragments %d and %d overlap", i, j)
			}
		}
		if f.Intersects(Rect{4, 4, 6, 6}) {
			t.Errorf("fragment %v overlaps the hole", f)
		}
	}
	if area != 100-4 {
		t.Errorf("fragment area = %d, want 96", area)
	}
}

// TestSubtractProperty: for random rects, fragments tile exactly r minus b.
func TestSubtractProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rr := func() Rect {
			x, y := rng.Intn(8), rng.Intn(8)
			return Rect{x, y, x + 1 + rng.Intn(8), y + 1 + rng.Intn(8)}
		}
		r, b := rr(), rr()
		frags := r.Subtract(b)
		// Check point-by-point over the bounding grid.
		for x := r.X1; x < r.X2; x++ {
			for y := r.Y1; y < r.Y2; y++ {
				inB := x >= b.X1 && x < b.X2 && y >= b.Y1 && y < b.Y2
				inFrag := 0
				for _, f := range frags {
					if x >= f.X1 && x < f.X2 && y >= f.Y1 && y < f.Y2 {
						inFrag++
					}
				}
				if inB && inFrag != 0 {
					return false
				}
				if !inB && inFrag != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpacing(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if s := a.Spacing(Rect{5, 0, 7, 2}); s != 3 {
		t.Errorf("horizontal spacing = %d", s)
	}
	if s := a.Spacing(Rect{0, 6, 2, 8}); s != 4 {
		t.Errorf("vertical spacing = %d", s)
	}
	if s := a.Spacing(Rect{2, 0, 4, 2}); s != 0 {
		t.Errorf("touching spacing = %d", s)
	}
	if s := a.Spacing(Rect{4, 5, 6, 7}); s != 3 {
		t.Errorf("diagonal spacing = %d, want max(dx,dy)=3", s)
	}
}

// run executes a command script with no think time and returns the layout
// and world.
func run(t *testing.T, commands ...string) (*sim.World, *Layout) {
	t.Helper()
	l := New("m1", "m2", "poly")
	l.ThinkTime = 0
	w := sim.NewWorld(3, l)
	w.Procs[0].Ctx().Inputs = Script(commands)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w, l
}

func TestPaintAndArea(t *testing.T) {
	w, l := run(t,
		"paint m1 0 0 10 10",
		"paint m1 5 5 10 10", // overlaps: union area 100+100-25
		"area m1",
		"quit",
	)
	layer := l.layer("m1")
	if layer.Area != 175 {
		t.Errorf("area = %d, want 175 (overlap subtracted)", layer.Area)
	}
	if len(w.Outputs[0]) != 1 || !strings.Contains(w.Outputs[0][0], "175") {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
	// The invariant must hold.
	w2 := sim.NewWorld(1, l)
	if !l.check(w2.Procs[0].Ctx()) {
		t.Error("check failed after overlapping paints")
	}
}

func TestErase(t *testing.T) {
	_, l := run(t,
		"paint m1 0 0 10 10",
		"erase m1 4 4 2 2",
		"quit",
	)
	layer := l.layer("m1")
	if layer.Area != 96 {
		t.Errorf("area after hole = %d, want 96", layer.Area)
	}
	if len(layer.Rects) != 4 {
		t.Errorf("tiles = %d, want 4", len(layer.Rects))
	}
}

func TestBoxQueryAndRender(t *testing.T) {
	w, _ := run(t,
		"paint m2 0 0 4 4",
		"paint m2 10 10 4 4",
		"box m2 0 0 6 6",
		"quit",
	)
	if len(w.Outputs[0]) != 1 || !strings.Contains(w.Outputs[0][0], "1 tiles") {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
}

func TestDRC(t *testing.T) {
	w, _ := run(t,
		"paint poly 0 0 4 4",
		"paint poly 5 0 4 4", // gap 1 < MinSpacing 2
		"paint poly 20 0 4 4",
		"drc poly",
		"quit",
	)
	if len(w.Outputs[0]) != 1 || !strings.Contains(w.Outputs[0][0], "1 violations") {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
	// DRC stamps the clock: the render includes the timestamp.
	if !strings.Contains(w.Outputs[0][0], "@") {
		t.Errorf("drc output missing timestamp: %v", w.Outputs[0])
	}
}

func TestUnknownCommandAndLayer(t *testing.T) {
	w, _ := run(t, "frob m1", "paint nope 0 0 1 1", "paint m1", "quit")
	out := w.Outputs[0]
	if len(out) != 3 {
		t.Fatalf("outputs = %v", out)
	}
	if !strings.HasPrefix(out[0], "?cmd") || !strings.HasPrefix(out[1], "?layer") || !strings.HasPrefix(out[2], "?syntax") {
		t.Errorf("error renders = %v", out)
	}
}

func TestStateRoundTrip(t *testing.T) {
	_, l := run(t, "paint m1 0 0 10 10", "erase m1 2 2 3 3", "paint m2 1 1 5 5", "quit")
	img, err := l.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var l2 Layout
	if err := l2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if l2.TotalTiles() != l.TotalTiles() || l2.layer("m1").Area != l.layer("m1").Area {
		t.Error("layout diverged across round trip")
	}
	if err := l2.UnmarshalState([]byte{9}); err == nil {
		t.Error("garbage must fail to unmarshal")
	}
}

// TestPaintInvariantProperty: random paint/erase sequences keep the
// no-overlap and area invariants.
func TestPaintInvariantProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New("x")
		l.ThinkTime = 0
		w := sim.NewWorld(seed, l)
		ctx := w.Procs[0].Ctx()
		layer := l.layer("x")
		for i := 0; i < 40; i++ {
			x, y := rng.Intn(20), rng.Intn(20)
			r := Rect{x, y, x + 1 + rng.Intn(10), y + 1 + rng.Intn(10)}
			if rng.Intn(3) == 0 {
				l.Erase(ctx, layer, r)
			} else {
				l.Paint(ctx, layer, r)
			}
		}
		return l.check(ctx)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// faultAt arms one fault kind at a site after n visits.
type faultAt struct {
	kind sim.FaultKind
	site string
	n    int
	seen int
	done bool
}

func (f *faultAt) At(p *sim.Proc, site string) sim.FaultKind {
	if f.done || site != f.site {
		return sim.NoFault
	}
	f.seen++
	if f.seen < f.n {
		return sim.NoFault
	}
	f.done = true
	return f.kind
}

// TestFaultsBreakInvariants: each geometry fault type leads to a crash via
// the consistency check (or an immediate panic).
func TestFaultsBreakInvariants(t *testing.T) {
	kinds := []sim.FaultKind{
		sim.HeapBitFlip, sim.OffByOne, sim.DestReg, sim.InitFault,
		sim.DeleteBranch, sim.DeleteInstr,
	}
	crashed := 0
	for _, kind := range kinds {
		l := New("m1")
		l.ThinkTime = 0
		w := sim.NewWorld(11, l)
		var cmds []string
		for i := 0; i < 12; i++ {
			cmds = append(cmds, "paint m1 0 0 10 10", "paint m1 5 5 10 10", "erase m1 2 2 4 4", "check")
		}
		cmds = append(cmds, "quit")
		w.Procs[0].Ctx().Inputs = Script(cmds)
		w.Faults = &faultAt{kind: kind, site: "magic.paint", n: 3}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if w.Procs[0].Crashes > 0 {
			crashed++
		} else {
			t.Logf("%v did not crash magic", kind)
		}
	}
	if crashed < 4 {
		t.Errorf("only %d/6 fault kinds crashed magic", crashed)
	}
}

func TestCellDefinitionAndPlacement(t *testing.T) {
	w, l := run(t,
		"defcell inv",
		"paint m1 0 0 4 4",
		"paint poly 1 1 2 2",
		"endcell",
		"place inv 0 0",
		"place inv 10 0",
		"place inv 20 0",
		"flatarea m1",
		"quit",
	)
	if len(l.Cells) != 1 || l.Cells[0].Name != "inv" {
		t.Fatalf("cells = %+v", l.Cells)
	}
	if len(l.Instances) != 3 {
		t.Fatalf("instances = %d", len(l.Instances))
	}
	// Top-level m1 is empty; flattened area = 3 instances × 16.
	out := w.Outputs[0]
	if len(out) != 1 || !strings.Contains(out[0], "flatarea m1: 48") {
		t.Errorf("outputs = %v", out)
	}
}

func TestFlattenTranslatesInstances(t *testing.T) {
	_, l := run(t,
		"defcell c",
		"paint m1 0 0 2 2",
		"endcell",
		"place c 100 50",
		"quit",
	)
	flat := l.Flatten("m1")
	if len(flat) != 1 || flat[0] != (Rect{100, 50, 102, 52}) {
		t.Errorf("flattened = %v", flat)
	}
}

func TestFlatDRCCatchesCrossInstanceViolations(t *testing.T) {
	w, _ := run(t,
		"defcell c",
		"paint m1 0 0 4 4",
		"endcell",
		"place c 0 0",
		"place c 5 0", // 1 < MinSpacing 2 between instance tiles
		"place c 20 0",
		"flatdrc m1",
		"quit",
	)
	out := w.Outputs[0]
	if len(out) != 1 || !strings.Contains(out[0], "1 violations") {
		t.Errorf("outputs = %v", out)
	}
}

func TestCellTopLevelMixing(t *testing.T) {
	// Top-level paint + instance tiles combine in the flattened view.
	_, l := run(t,
		"paint m1 0 0 3 3",
		"defcell c",
		"paint m1 0 0 2 2",
		"endcell",
		"place c 50 50",
		"quit",
	)
	if got := l.FlatArea("m1"); got != 9+4 {
		t.Errorf("FlatArea = %d, want 13", got)
	}
	// Per-definition invariants still hold.
	w2 := sim.NewWorld(1, l)
	if !l.check(w2.Procs[0].Ctx()) {
		t.Error("check failed with hierarchy present")
	}
}

func TestPlaceUnknownCell(t *testing.T) {
	w, _ := run(t, "place nope 0 0", "quit")
	if len(w.Outputs[0]) != 1 || !strings.HasPrefix(w.Outputs[0][0], "?cell") {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
}

func TestCellStateRoundTrip(t *testing.T) {
	_, l := run(t,
		"defcell c",
		"paint m1 0 0 2 2",
		"endcell",
		"place c 7 9",
		"defcell open",
		"quit",
	)
	img, err := l.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var l2 Layout
	if err := l2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if len(l2.Cells) != 2 || len(l2.Instances) != 1 || l2.Editing != "open" {
		t.Errorf("hierarchy diverged: %d cells, %d instances, editing %q",
			len(l2.Cells), len(l2.Instances), l2.Editing)
	}
	if l2.Instances[0] != (Instance{Cell: "c", DX: 7, DY: 9}) {
		t.Errorf("instance = %+v", l2.Instances[0])
	}
}

// TestCellsSurviveRecovery: hierarchy editing with stop failures under
// CBNDVS ends with the same flattened layout as the clean run.
func TestCellsSurviveRecovery(t *testing.T) {
	cmds := []string{
		"defcell nand",
		"paint m1 0 0 6 4",
		"paint poly 1 1 2 6",
		"endcell",
		"place nand 0 0",
		"place nand 10 0",
		"paint m1 30 0 4 4",
		"flatarea m1",
		"flatdrc m1",
		"quit",
	}
	clean := New("m1", "m2", "poly")
	clean.ThinkTime = 0
	wClean := sim.NewWorld(3, clean)
	wClean.Procs[0].Ctx().Inputs = Script(cmds)
	if err := wClean.Run(); err != nil {
		t.Fatal(err)
	}
	want := wClean.Outputs[0]

	for stopAt := 3; stopAt < 25; stopAt += 6 {
		l := New("m1", "m2", "poly")
		l.ThinkTime = 0
		w := sim.NewWorld(3, l)
		w.Procs[0].Ctx().Inputs = Script(cmds)
		d := dc.New(w, protocol.CBNDVS, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("stop@%d: did not finish", stopAt)
			continue
		}
		// Squash duplicate re-renders (allowed by consistent
		// recovery) and strip the DRC timestamps — they come from
		// gettimeofday, a transient ND event whose value may
		// legitimately differ across a recovery.
		strip := func(ss []string) string {
			var out []string
			for _, o := range ss {
				if i := strings.Index(o, " @"); i >= 0 {
					o = o[:i]
				}
				if len(out) == 0 || out[len(out)-1] != o {
					out = append(out, o)
				}
			}
			return strings.Join(out, "|")
		}
		if strip(w.Outputs[0]) != strip(want) {
			t.Errorf("stop@%d: outputs %v, want %v", stopAt, w.Outputs[0], want)
		}
	}
}
