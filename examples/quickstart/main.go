// Quickstart: the paper's Figure 1 coin flip under failure transparency.
//
// A process flips a coin (a transient non-deterministic event), then prints
// the result twice (visible events). Without a Save-work protocol, a crash
// between the prints can make the re-executed flip land differently — the
// user sees both "heads" and "tails", output no failure-free run produces.
// Under CPVS with Discount Checking, the flip is committed before anything
// becomes visible and recovery is consistent.
//
// Run: go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"

	"failtrans"
)

// coinFlip is a minimal failtrans.Program.
type coinFlip struct {
	Phase int
	Coin  uint64
}

func (c *coinFlip) Name() string                  { return "coinflip" }
func (c *coinFlip) Init(ctx *failtrans.Ctx) error { return nil }
func (c *coinFlip) MarshalState() ([]byte, error) { return json.Marshal(c) }
func (c *coinFlip) UnmarshalState(d []byte) error { return json.Unmarshal(d, c) }

func (c *coinFlip) Step(ctx *failtrans.Ctx) failtrans.Status {
	switch c.Phase {
	case 0:
		c.Coin = ctx.Rand() % 2 // transient non-deterministic event
	case 1, 2:
		ctx.Output([]string{"heads", "tails"}[c.Coin]) // visible events
	default:
		return failtrans.Done
	}
	c.Phase++
	return failtrans.Ready
}

func run(pol failtrans.Policy, label string, seed int64) {
	w := failtrans.NewWorld(seed, &coinFlip{})
	d := failtrans.NewDC(w, pol, failtrans.Rio)
	if err := d.Attach(); err != nil {
		panic(err)
	}
	// Stop failure right before the second output.
	w.ScheduleStop(0, 3)
	if err := w.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("%-28s outputs=%v  checkpoints=%d  recoveries=%d\n",
		label, w.Outputs[0], d.Stats.TotalCheckpoints(), d.Stats.Recoveries)
}

func main() {
	fmt.Println("A stop failure hits between the two prints of one coin flip.")
	fmt.Println()

	// A policy that neither commits nor logs: inconsistency is possible.
	broken := failtrans.Policy{Name: "NONE"}
	fmt.Println("no protocol (several seeds; watch for heads AND tails in one run):")
	for seed := int64(0); seed < 6; seed++ {
		run(broken, fmt.Sprintf("  seed %d", seed), seed)
	}

	fmt.Println()
	fmt.Println("CPVS (commit prior to visible or send) — always consistent:")
	for seed := int64(0); seed < 6; seed++ {
		run(failtrans.CPVS, fmt.Sprintf("  seed %d", seed), seed)
	}

	fmt.Println()
	fmt.Println("HYPERVISOR (log everything, never commit) — consistent by replay:")
	for seed := int64(0); seed < 3; seed++ {
		run(failtrans.Hypervisor, fmt.Sprintf("  seed %d", seed), seed)
	}

	fmt.Println()
	fmt.Println("The Save-work invariant in action: every non-deterministic event that")
	fmt.Println("causally precedes a visible event must be committed (or logged) first.")
}
