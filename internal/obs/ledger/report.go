package ledger

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"failtrans/internal/obs"
	"failtrans/internal/statemachine"
)

// Report is an analyzed ledger: the records plus their aggregates and
// mined machines. Everything it writes is deterministic — iteration
// follows ledger order or sorted keys, never raw map order — so the same
// ledger produces byte-identical reports.
type Report struct {
	Recs  []Record
	Agg   *Aggregator
	Miner *Miner
}

// Analyze builds the aggregates and mined machines for a record stream.
func Analyze(recs []Record) *Report {
	rp := &Report{Recs: recs, Agg: NewAggregator(), Miner: NewMiner()}
	for i := range recs {
		rp.Agg.Add(&recs[i])
		rp.Miner.Add(&recs[i])
	}
	return rp
}

// studies lists the report's studies in first-appearance order.
func (rp *Report) studies() []string {
	var out []string
	seen := map[string]bool{}
	for _, g := range rp.Agg.Groups() {
		if !seen[g.Key.Study] {
			seen[g.Key.Study] = true
			out = append(out, g.Key.Study)
		}
	}
	return out
}

// groupsOf filters baseline groups by study, preserving order. Veto-phase
// cells are excluded: the main tables report the baseline, and the veto
// section pairs each veto cell with its counterpart.
func (rp *Report) groupsOf(study string) []*Group {
	var out []*Group
	for _, g := range rp.Agg.Groups() {
		if g.Key.Study == study && !g.Key.Veto {
			out = append(out, g)
		}
	}
	return out
}

// appsAndKinds lists the distinct apps and fault kinds of a group list, in
// first-appearance order.
func appsAndKinds(groups []*Group) (apps, kinds []string) {
	seenA, seenK := map[string]bool{}, map[string]bool{}
	for _, g := range groups {
		if !seenA[g.Key.App] {
			seenA[g.Key.App] = true
			apps = append(apps, g.Key.App)
		}
		if g.Key.Kind != "" && !seenK[g.Key.Kind] {
			seenK[g.Key.Kind] = true
			kinds = append(kinds, g.Key.Kind)
		}
	}
	return apps, kinds
}

func findGroup(groups []*Group, app, kind string) *Group {
	for _, g := range groups {
		if g.Key.App == app && g.Key.Kind == kind {
			return g
		}
	}
	return nil
}

// writeHistRow renders one histogram as a markdown table row.
func writeHistRow(w io.Writer, name string, h *obs.Histogram) {
	fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d |\n",
		name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
}

// WriteMarkdown renders the full forensic report: the Table 1/Table 2
// reproductions computed from the ledger alone, injection-point outcome
// heatmaps, conflict attribution by commit index, cross-run histograms,
// and the mined dangerous-path machines with their cross-check verdicts.
func (rp *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# Campaign forensics report\n\n")
	fmt.Fprintf(w, "%d records", len(rp.Recs))
	for i, study := range rp.studies() {
		n := int64(0)
		for _, g := range rp.groupsOf(study) {
			n += g.Runs
		}
		if i == 0 {
			fmt.Fprintf(w, " (")
		} else {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%s: %d", study, n)
	}
	if len(rp.studies()) > 0 {
		fmt.Fprintf(w, ")")
	}
	fmt.Fprintf(w, "\n")

	for _, study := range rp.studies() {
		groups := rp.groupsOf(study)
		switch study {
		case "table1":
			rp.writeFaultTable(w, study, groups,
				"Table 1 (from ledger): fraction of application faults that violate Lose-work",
				"violating commit after fault activation, among crashes")
		case "table2":
			rp.writeFaultTable(w, study, groups,
				"Table 2 (from ledger): percent of OS faults with failed recovery",
				"failed end-to-end recoveries, among crashes")
		case "fig8":
			rp.writeFig8(w, groups)
		default:
			rp.writeGeneric(w, study, groups)
		}
	}

	rp.writeVeto(w)
	rp.writeMachines(w)
	return nil
}

// writeVeto renders the two-phase veto comparison: every veto-phase cell
// paired with its baseline counterpart (same key modulo the Veto bit),
// the Lose-work violations the veto clawed back, and the cost it paid —
// commits deferred overall and at Save-work decision points.
func (rp *Report) writeVeto(w io.Writer) {
	var vetoGroups []*Group
	for _, g := range rp.Agg.Groups() {
		if g.Key.Veto {
			vetoGroups = append(vetoGroups, g)
		}
	}
	if len(vetoGroups) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Commit veto\n\n")
	fmt.Fprintf(w, "Phase-2 runs re-executed under the mined dangerous-path commit veto,\n")
	fmt.Fprintf(w, "paired with their phase-1 baselines. \"clawed back\" counts Lose-work\n")
	fmt.Fprintf(w, "violations the veto prevented; \"vetoed\" the commits it deferred;\n")
	fmt.Fprintf(w, "\"save-work cost\" the deferrals at visible-output decision points.\n\n")
	fmt.Fprintf(w, "| study | app | protocol | kind | crashes | violations base→veto | clawed back | vetoed | save-work cost |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|\n")
	var totBase, totVeto, totN, totSW int64
	for _, g := range vetoGroups {
		baseKey := g.Key
		baseKey.Veto = false
		baseViol := int64(-1)
		if b := rp.Agg.byKey[baseKey]; b != nil {
			baseViol = b.LoseWork
		}
		baseCell, clawCell := "?", "?"
		if baseViol >= 0 {
			baseCell = strconv.FormatInt(baseViol, 10)
			clawCell = strconv.FormatInt(baseViol-g.LoseWork, 10)
			totBase += baseViol
			totVeto += g.LoseWork
		}
		totN += g.VetoN
		totSW += g.VetoSaveWork
		fmt.Fprintf(w, "| %s | %s | %s | %s | %d | %s→%d | %s | %d | %d |\n",
			g.Key.Study, g.Key.App, g.Key.Protocol, g.Key.Kind, g.Crashes,
			baseCell, g.LoseWork, clawCell, g.VetoN, g.VetoSaveWork)
	}
	fmt.Fprintf(w, "| **Total** | | | | | %d→%d | %d | %d | %d |\n",
		totBase, totVeto, totBase-totVeto, totN, totSW)
}

// writeFaultTable renders one fault study's per-kind violation matrix plus
// its heatmap, attribution and histogram sections.
func (rp *Report) writeFaultTable(w io.Writer, study string, groups []*Group, title, cellNote string) {
	apps, kinds := appsAndKinds(groups)
	fmt.Fprintf(w, "\n## %s\n\n", title)
	fmt.Fprintf(w, "Cell: %s.\n\n", cellNote)
	fmt.Fprintf(w, "| Fault type |")
	for _, app := range apps {
		fmt.Fprintf(w, " %s |", app)
	}
	fmt.Fprintf(w, "\n|---|")
	for range apps {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintf(w, "\n")
	avg := make([]float64, len(apps))
	for _, kind := range kinds {
		fmt.Fprintf(w, "| %s |", kind)
		for i, app := range apps {
			g := findGroup(groups, app, kind)
			if g == nil {
				fmt.Fprintf(w, " - |")
				continue
			}
			avg[i] += g.ViolationPct() / float64(len(kinds))
			fmt.Fprintf(w, " %.0f%% (%d/%d) |", g.ViolationPct(), g.LoseWork, g.Crashes)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "| **Average** |")
	for i := range apps {
		fmt.Fprintf(w, " %.0f%% |", avg[i])
	}
	fmt.Fprintf(w, "\n")

	// Save-work conflicts: silent wrong output (table1) / propagation into
	// application state (table2).
	fmt.Fprintf(w, "\n| App | runs | crashes | save-work conflicts | recovered |\n|---|---|---|---|---|\n")
	for _, app := range apps {
		var runs, crashes, sw, rec int64
		for _, g := range groups {
			if g.Key.App != app {
				continue
			}
			runs += g.Runs
			crashes += g.Crashes
			sw += g.SaveWork
			rec += g.Recovered
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %d |\n", app, runs, crashes, sw, rec)
	}

	rp.writeHeatmap(w, study, groups, apps)
	rp.writeAttribution(w, study, groups, apps)
	rp.writeHistograms(w, study, groups)
}

// writeHeatmap renders the per-injection-point outcome heatmap, one table
// per app with fault kinds merged.
func (rp *Report) writeHeatmap(w io.Writer, study string, groups []*Group, apps []string) {
	for _, app := range apps {
		var heat [obs.HistBuckets][int(outcomeCount)]int64
		for _, g := range groups {
			if g.Key.App != app {
				continue
			}
			for b := range g.Heat {
				for o := range g.Heat[b] {
					heat[b][o] += g.Heat[b][o]
				}
			}
		}
		fmt.Fprintf(w, "\n### Injection-point outcomes: %s/%s\n\n", study, app)
		fmt.Fprintf(w, "Rows bucket the armed fire point (log2); columns count run outcomes.\n\n")
		fmt.Fprintf(w, "| fire point | inert | ok | wrongout | crash |\n|---|---|---|---|---|\n")
		for b := range heat {
			total := int64(0)
			for _, c := range heat[b] {
				total += c
			}
			if total == 0 {
				continue
			}
			lo, hi := int64(0), int64(0)
			if b > 0 {
				lo = int64(1) << uint(b-1)
				hi = int64(1)<<uint(b) - 1
			}
			fmt.Fprintf(w, "| %d–%d | %d | %d | %d | %d |\n",
				lo, hi, heat[b][Inert], heat[b][Completed], heat[b][WrongOutput], heat[b][Crashed])
		}
	}
}

// writeAttribution renders the doomed-commit-index attribution, one table
// per app with fault kinds merged.
func (rp *Report) writeAttribution(w io.Writer, study string, groups []*Group, apps []string) {
	for _, app := range apps {
		doom := map[int]int64{}
		var doomed int64
		for _, g := range groups {
			if g.Key.App != app {
				continue
			}
			for i, c := range g.DoomIndex {
				doom[i] += c
				doomed += c
			}
		}
		if doomed == 0 {
			continue
		}
		idxs := make([]int, 0, len(doom))
		for i := range doom {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		fmt.Fprintf(w, "\n### Conflict attribution: %s/%s\n\n", study, app)
		fmt.Fprintf(w, "Which commit index is the first to land inside the violation window, and how often.\n\n")
		fmt.Fprintf(w, "| first violating commit | runs | share |\n|---|---|---|\n")
		for _, i := range idxs {
			fmt.Fprintf(w, "| #%d | %d | %.0f%% |\n", i, doom[i], 100*float64(doom[i])/float64(doomed))
		}
	}
}

// writeHistograms renders the study's merged cross-run histograms — the
// Histogram.Merge consumer: per-group histograms fold into study-wide ones.
func (rp *Report) writeHistograms(w io.Writer, study string, groups []*Group) {
	var rollback, commits, prefix obs.Histogram
	for _, g := range groups {
		rollback.Merge(&g.RollbackDepth)
		commits.Merge(&g.CommitsPerRun)
		prefix.Merge(&g.PrefixSteps)
	}
	fmt.Fprintf(w, "\n### Cross-run histograms: %s\n\n", study)
	fmt.Fprintf(w, "| histogram | count | mean | p50 | p99 | max |\n|---|---|---|---|---|---|\n")
	writeHistRow(w, "rollback depth (steps)", &rollback)
	writeHistRow(w, "commits per run", &commits)
	writeHistRow(w, "activation prefix (world steps)", &prefix)
}

// writeFig8 renders the protocol-sweep cells.
func (rp *Report) writeFig8(w io.Writer, groups []*Group) {
	fmt.Fprintf(w, "\n## Figure 8 cells (from ledger)\n\n")
	fmt.Fprintf(w, "| app | protocol | medium | runs | commits (mean) | vclock mean (s) |\n|---|---|---|---|---|---|\n")
	for _, g := range groups {
		fmt.Fprintf(w, "| %s | %s | %s | %d | %d | %.2f |\n",
			g.Key.App, g.Key.Protocol, g.Key.Medium, g.Runs, g.CommitsPerRun.Mean(),
			float64(g.VClockSum)/float64(g.Runs)/1e6)
	}
}

// writeGeneric renders any other study's outcome counts.
func (rp *Report) writeGeneric(w io.Writer, study string, groups []*Group) {
	fmt.Fprintf(w, "\n## Study %s\n\n", study)
	fmt.Fprintf(w, "| app | protocol | kind | runs | inert | ok | wrongout | crash | save-work | recovered |\n|---|---|---|---|---|---|---|---|---|---|\n")
	for _, g := range groups {
		fmt.Fprintf(w, "| %s | %s | %s | %d | %d | %d | %d | %d | %d | %d |\n",
			g.Key.App, g.Key.Protocol, g.Key.Kind, g.Runs, g.Inert, g.Completed,
			g.WrongOutput, g.Crashes, g.SaveWork, g.Recovered)
	}
	rp.writeHistograms(w, study, groups)
}

// writeMachines renders every mined machine's shape, its dangerous-path
// coloring, and the ledger-vs-algorithm cross-check verdict.
func (rp *Report) writeMachines(w io.Writer) {
	keys := rp.Miner.Keys()
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Mined dangerous-path machines\n\n")
	fmt.Fprintf(w, "States are commit-count positions; coloring follows the paper's\n")
	fmt.Fprintf(w, "Single-Process Dangerous Paths Algorithm over the merged machine.\n\n")
	fmt.Fprintf(w, "| machine | runs | states | edges | dangerous commit edges | cross-checked | mismatches |\n|---|---|---|---|---|---|---|\n")
	for _, key := range keys {
		md := rp.Miner.Get(key)
		col := md.Coloring()
		m := md.Machine()
		dangerous := 0
		for i := range m.Edges {
			if m.Edges[i].Label == "commit" && col.Dangerous(statemachine.EventID(i)) {
				dangerous++
			}
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %d |\n",
			key, md.Runs, m.NumStates, len(m.Edges), dangerous, md.Checked, md.Mismatched)
	}
	for _, key := range keys {
		md := rp.Miner.Get(key)
		if md.FirstMismatch != "" {
			fmt.Fprintf(w, "\n**%s cross-check mismatch:** %s\n", key, md.FirstMismatch)
		}
	}
}

// WriteMachineDot writes the Graphviz rendering of one mined machine's
// coloring (crash states black, dangerous edges red).
func (rp *Report) WriteMachineDot(w io.Writer, key string) error {
	md := rp.Miner.Get(key)
	if md == nil {
		return fmt.Errorf("ledger: no mined machine %q (have %v)", key, rp.Miner.Keys())
	}
	return md.Coloring().WriteDot(w, key)
}

// WriteCampaignTrace renders the campaign overview as Chrome trace-event
// JSON: one span per run, colored by outcome (the span category), laid out
// over the given number of virtual worker tracks. The ledger deliberately
// records no physical worker IDs (they would break byte-identity across
// worker counts), so tracks are synthesized deterministically: each run
// goes to the earliest-free track, with its logical world-step count as
// the span duration — a what-if schedule of the campaign at that width.
func (rp *Report) WriteCampaignTrace(w io.Writer, workers int) error {
	if workers < 1 {
		workers = 1
	}
	t := obs.NewTracer()
	for i := 0; i < workers; i++ {
		t.SetTrackName(i, "worker "+strconv.Itoa(i))
	}
	ends := make([]time.Duration, workers)
	for i := range rp.Recs {
		r := &rp.Recs[i]
		wk := 0
		for j := 1; j < workers; j++ {
			if ends[j] < ends[wk] {
				wk = j
			}
		}
		dur := time.Duration(r.WorldSteps) * time.Microsecond
		if dur <= 0 {
			dur = time.Microsecond
		}
		name := r.Study + "/" + r.App
		if r.Kind != "" {
			name += "/" + r.Kind
		} else if r.Protocol != "" {
			name += "/" + r.Protocol
		}
		t.SpanArgs(wk, "outcome:"+r.Outcome.String(), name, ends[wk], dur,
			"outcome", r.Outcome.String(), "run", int64(r.Run))
		ends[wk] += dur
	}
	return t.WriteJSON(w)
}
