// Package magic reimplements the paper's second workload: magic, the
// Berkeley VLSI layout editor. It is a real (small) layout engine: named
// layers hold sets of non-overlapping axis-aligned rectangles with true
// rectangle algebra — painting subtracts overlaps before inserting, erasing
// splits tiles into up to four fragments — plus area accounting, a
// design-rule check (minimum spacing between tiles of a layer), and a box
// query. A scripted command session (fixed-ND user input, one command per
// second as in the paper's measurements) drives it; commands that redraw
// the screen produce visible events, and "ts"/DRC commands read the clock
// (transient ND).
//
// Fault points in the geometry kernel implement the seven Table 1 fault
// types: a heap bit flip lands in a stored coordinate (latent until the
// area consistency check), a deleted branch skips overlap subtraction (the
// no-overlap invariant breaks, caught later), an off-by-one shifts a
// fragment boundary, and so on.
package magic

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/sim"
)

// Rect is a half-open axis-aligned rectangle [X1,X2) × [Y1,Y2).
type Rect struct {
	X1, Y1, X2, Y2 int
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 >= r.X2 || r.Y1 >= r.Y2 }

// Area returns the rectangle's area.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return (r.X2 - r.X1) * (r.Y2 - r.Y1)
}

// Intersects reports whether two rectangles overlap with positive area.
func (r Rect) Intersects(o Rect) bool {
	return r.X1 < o.X2 && o.X1 < r.X2 && r.Y1 < o.Y2 && o.Y1 < r.Y2
}

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{max(r.X1, o.X1), max(r.Y1, o.Y1), min(r.X2, o.X2), min(r.Y2, o.Y2)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Subtract returns the up-to-four fragments of r outside b.
func (r Rect) Subtract(b Rect) []Rect {
	if !r.Intersects(b) {
		return []Rect{r}
	}
	var out []Rect
	add := func(f Rect) {
		if !f.Empty() {
			out = append(out, f)
		}
	}
	// Bands below and above b.
	add(Rect{r.X1, r.Y1, r.X2, min(r.Y2, b.Y1)})
	add(Rect{r.X1, max(r.Y1, b.Y2), r.X2, r.Y2})
	// Side fragments within b's vertical span.
	y1, y2 := max(r.Y1, b.Y1), min(r.Y2, b.Y2)
	add(Rect{r.X1, y1, min(r.X2, b.X1), y2})
	add(Rect{max(r.X1, b.X2), y1, r.X2, y2})
	return out
}

// Spacing returns the L∞ gap between two disjoint rectangles (0 if they
// touch or overlap).
func (r Rect) Spacing(o Rect) int {
	dx := 0
	if r.X2 <= o.X1 {
		dx = o.X1 - r.X2
	} else if o.X2 <= r.X1 {
		dx = r.X1 - o.X2
	}
	dy := 0
	if r.Y2 <= o.Y1 {
		dy = o.Y1 - r.Y2
	} else if o.Y2 <= r.Y1 {
		dy = r.Y1 - o.Y2
	}
	return max(dx, dy)
}

// Layer is one mask layer's tile set. Invariant: no two rects overlap, and
// Area equals the sum of rect areas.
type Layer struct {
	Name  string
	Rects []Rect
	Area  int
}

// Phases of the command cycle.
const (
	phaseRead = iota
	phaseApply
	phaseRender
	phaseStamp // reads the clock (transient ND)
	phaseDone
)

// Layout is the magic application.
type Layout struct {
	Layers []Layer

	// Hierarchy: reusable cell definitions and their placed instances;
	// Editing names the cell currently being defined ("" = top level).
	Cells     []Cell
	Instances []Instance
	Editing   string

	Phase    int
	Cmd      string
	Commands int
	// LastMsg is what the next render shows.
	LastMsg string
	// MinSpacing is the design rule for drc.
	MinSpacing int

	ThinkTime time.Duration
	CmdCost   time.Duration

	faultSalt   uint64
	skipOverlap bool
}

// New returns a layout with the given layer names.
func New(layerNames ...string) *Layout {
	l := &Layout{ThinkTime: time.Second, CmdCost: 2 * time.Millisecond, MinSpacing: 2}
	for _, n := range layerNames {
		l.Layers = append(l.Layers, Layer{Name: n})
	}
	return l
}

// Script converts textual commands (one per line) into the input script.
func Script(commands []string) [][]byte {
	out := make([][]byte, 0, len(commands))
	for _, c := range commands {
		out = append(out, []byte(c))
	}
	return out
}

// Name implements sim.Program.
func (l *Layout) Name() string { return "magic" }

// Init implements sim.Program.
func (l *Layout) Init(ctx *sim.Ctx) error { return nil }

func (l *Layout) layer(name string) *Layer {
	for i := range l.Layers {
		if l.Layers[i].Name == name {
			return &l.Layers[i]
		}
	}
	return nil
}

// Paint adds r to the layer, subtracting it from existing tiles first so
// the no-overlap invariant holds.
func (l *Layout) Paint(ctx *sim.Ctx, layer *Layer, r Rect) {
	r = l.injectGeometry(ctx, "magic.paint", r, layer)
	if r.Empty() {
		return
	}
	if !l.skipOverlap {
		var kept []Rect
		removed := 0
		for _, t := range layer.Rects {
			if t.Intersects(r) {
				removed += t.Intersect(r).Area()
				kept = append(kept, t.Subtract(r)...)
			} else {
				kept = append(kept, t)
			}
		}
		layer.Rects = kept
		layer.Area -= removed
	}
	layer.Rects = append(layer.Rects, r)
	layer.Area += r.Area()
}

// Erase removes r's area from the layer.
func (l *Layout) Erase(ctx *sim.Ctx, layer *Layer, r Rect) {
	r = l.injectGeometry(ctx, "magic.erase", r, layer)
	if r.Empty() {
		return
	}
	var kept []Rect
	removed := 0
	for _, t := range layer.Rects {
		if t.Intersects(r) {
			removed += t.Intersect(r).Area()
			kept = append(kept, t.Subtract(r)...)
		} else {
			kept = append(kept, t)
		}
	}
	layer.Rects = kept
	layer.Area -= removed
}

// DRC counts min-spacing violations on a layer.
func (l *Layout) DRC(layer *Layer) int {
	violations := 0
	for i := 0; i < len(layer.Rects); i++ {
		for j := i + 1; j < len(layer.Rects); j++ {
			a, b := layer.Rects[i], layer.Rects[j]
			if a.Intersects(b) {
				violations++ // overlap is always a violation
				continue
			}
			if s := a.Spacing(b); s > 0 && s < l.MinSpacing {
				violations++
			}
		}
	}
	return violations
}

// BoxQuery returns the tiles of a layer intersecting r.
func (l *Layout) BoxQuery(layer *Layer, r Rect) []Rect {
	var out []Rect
	for _, t := range layer.Rects {
		if t.Intersects(r) {
			out = append(out, t)
		}
	}
	return out
}

// check verifies the no-overlap and area invariants of every layer, in the
// top level and in every cell definition.
func (l *Layout) check(ctx *sim.Ctx) bool {
	all := make([]*Layer, 0, len(l.Layers))
	for li := range l.Layers {
		all = append(all, &l.Layers[li])
	}
	for ci := range l.Cells {
		for li := range l.Cells[ci].Layers {
			all = append(all, &l.Cells[ci].Layers[li])
		}
	}
	for _, layer := range all {
		area := 0
		for i, a := range layer.Rects {
			if a.Empty() || a.X2 < a.X1 || a.Y2 < a.Y1 {
				ctx.Crash(fmt.Sprintf("magic: layer %s tile %d degenerate %+v", layer.Name, i, a))
				return false
			}
			area += a.Area()
			for j := i + 1; j < len(layer.Rects); j++ {
				if a.Intersects(layer.Rects[j]) {
					ctx.Crash(fmt.Sprintf("magic: layer %s tiles %d,%d overlap", layer.Name, i, j))
					return false
				}
			}
		}
		if area != layer.Area {
			ctx.Crash(fmt.Sprintf("magic: layer %s area %d != accounted %d", layer.Name, area, layer.Area))
			return false
		}
	}
	return true
}

// Step implements sim.Program: read command → apply → (stamp) → render.
func (l *Layout) Step(ctx *sim.Ctx) sim.Status {
	switch l.Phase {
	case phaseRead:
		in, ok := ctx.Input()
		if !ok {
			l.Phase = phaseDone
			return sim.Ready
		}
		l.Cmd = string(in)
		l.Commands++
		l.Phase = phaseApply
		if l.ThinkTime > 0 {
			ctx.Sleep(l.ThinkTime)
			return sim.Sleeping
		}
		return sim.Ready
	case phaseApply:
		ctx.Compute(l.CmdCost)
		l.apply(ctx)
		return sim.Ready
	case phaseStamp:
		now := ctx.Now()
		l.LastMsg += fmt.Sprintf(" @%dms", now/time.Millisecond)
		l.Phase = phaseRender
		return sim.Ready
	case phaseRender:
		ctx.Output(l.LastMsg)
		l.Phase = phaseRead
		return sim.Ready
	default:
		return sim.Done
	}
}

// apply parses and executes one command. Command grammar:
//
//	paint <layer> <x> <y> <w> <h>
//	erase <layer> <x> <y> <w> <h>
//	box   <layer> <x> <y> <w> <h>   (query, renders)
//	drc   <layer>                   (stamps the clock, renders)
//	area  <layer>                   (renders)
//	check                           (consistency check, silent)
//	quit
func (l *Layout) apply(ctx *sim.Ctx) {
	l.Phase = phaseRead // commands that render override below
	fields := strings.Fields(l.Cmd)
	if len(fields) == 0 {
		return
	}
	if l.applyCellCommand(fields) {
		return
	}
	kind := ctx.Fault("magic.cmd")
	if kind == sim.StackBitFlip && len(fields) > 1 {
		// The parsed opcode byte flips in flight.
		op := []byte(fields[0])
		apputil.FlipBit(op, l.salt())
		fields[0] = string(op)
	}
	switch fields[0] {
	case "paint", "erase", "box":
		if len(fields) != 6 {
			l.LastMsg = "?syntax " + l.Cmd
			l.Phase = phaseRender
			return
		}
		var layer *Layer
		if l.Editing != "" {
			layer = l.cell(l.Editing).cellLayer(fields[1])
		} else {
			layer = l.layer(fields[1])
		}
		if layer == nil {
			l.LastMsg = "?layer " + fields[1]
			l.Phase = phaseRender
			return
		}
		x, _ := strconv.Atoi(fields[2])
		y, _ := strconv.Atoi(fields[3])
		wd, _ := strconv.Atoi(fields[4])
		h, _ := strconv.Atoi(fields[5])
		r := Rect{x, y, x + wd, y + h}
		switch fields[0] {
		case "paint":
			l.Paint(ctx, layer, r)
		case "erase":
			l.Erase(ctx, layer, r)
		default:
			hits := l.BoxQuery(layer, r)
			l.LastMsg = fmt.Sprintf("box %s: %d tiles", layer.Name, len(hits))
			l.Phase = phaseRender
		}
	case "drc":
		layer := l.layer(field(fields, 1))
		if layer == nil {
			l.LastMsg = "?layer"
			l.Phase = phaseRender
			return
		}
		ctx.Compute(time.Duration(len(layer.Rects)) * 50 * time.Microsecond)
		v := l.DRC(layer)
		l.LastMsg = fmt.Sprintf("drc %s: %d violations", layer.Name, v)
		l.Phase = phaseStamp
	case "area":
		layer := l.layer(field(fields, 1))
		if layer == nil {
			l.LastMsg = "?layer"
			l.Phase = phaseRender
			return
		}
		l.LastMsg = fmt.Sprintf("area %s: %d in %d tiles", layer.Name, layer.Area, len(layer.Rects))
		l.Phase = phaseRender
	case "check":
		l.check(ctx)
	case "quit":
		l.Phase = phaseDone
	default:
		l.LastMsg = "?cmd " + fields[0]
		l.Phase = phaseRender
	}
}

func field(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

// injectGeometry applies the armed fault to a geometry operation.
func (l *Layout) injectGeometry(ctx *sim.Ctx, site string, r Rect, layer *Layer) Rect {
	switch ctx.Fault(site) {
	case sim.HeapBitFlip:
		// Corrupt a stored coordinate of an existing tile: latent until
		// the next check/DRC-triggered invariant test.
		if len(layer.Rects) > 0 {
			s := l.salt()
			t := &layer.Rects[int(s)%len(layer.Rects)]
			switch s % 4 {
			case 0:
				t.X1 ^= 1 << (s % 8)
			case 1:
				t.Y1 ^= 1 << (s % 8)
			case 2:
				t.X2 ^= 1 << (s % 8)
			default:
				t.Y2 ^= 1 << (s % 8)
			}
		}
	case sim.OffByOne:
		r.X2++ // fragment boundary off by one (often silently wrong output)
	case sim.DestReg:
		// The computed X lands in the Y register and the buggy path
		// skips normalization: the swapped tile goes straight into the
		// database, breaking the no-overlap/area invariants.
		bad := Rect{r.Y1, r.X1, r.Y2, r.X2}
		layer.Rects = append(layer.Rects, bad)
		return Rect{}
	case sim.InitFault:
		// The width is never initialized: a degenerate tile is
		// inserted directly (the validation belonged to the skipped
		// initialization path).
		layer.Rects = append(layer.Rects, Rect{r.X1, r.Y1, r.X1, r.Y2})
		return Rect{}
	case sim.DeleteBranch:
		l.skipOverlap = true // the overlap-subtraction branch is gone
	case sim.DeleteInstr:
		layer.Area += r.Area() // account the paint, skip the insert...
		return Rect{}          // by returning an empty op after accounting
	case sim.StackBitFlip:
		r.X1 ^= 1 << (l.salt() % 16)
	}
	return r
}

func (l *Layout) salt() uint64 {
	l.faultSalt = l.faultSalt*6364136223846793005 + 1442695040888963407
	return l.faultSalt
}

// TotalTiles returns the tile count across layers (assertions).
func (l *Layout) TotalTiles() int {
	n := 0
	for _, layer := range l.Layers {
		n += len(layer.Rects)
	}
	return n
}

// MarshalState implements sim.Program.
func (l *Layout) MarshalState() ([]byte, error) {
	var e apputil.Enc
	e.Int(len(l.Layers))
	for _, layer := range l.Layers {
		e.Str(layer.Name)
		e.Int(layer.Area)
		e.Int(len(layer.Rects))
		for _, r := range layer.Rects {
			e.Int(r.X1)
			e.Int(r.Y1)
			e.Int(r.X2)
			e.Int(r.Y2)
		}
	}
	e.Int(l.Phase)
	e.Str(l.Cmd)
	e.Int(l.Commands)
	e.Str(l.LastMsg)
	e.Int(l.MinSpacing)
	e.I64(int64(l.ThinkTime))
	e.I64(int64(l.CmdCost))
	e.I64(int64(l.faultSalt))
	e.Bool(l.skipOverlap)
	l.marshalCells(&e)
	return e.B, nil
}

// UnmarshalState implements sim.Program.
func (l *Layout) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	n := d.Int()
	if n < 0 || n > 1<<16 {
		return fmt.Errorf("magic: implausible layer count %d", n)
	}
	layers := make([]Layer, 0, n)
	for i := 0; i < n; i++ {
		var layer Layer
		layer.Name = d.Str()
		layer.Area = d.Int()
		rn := d.Int()
		if rn < 0 || rn > 1<<24 {
			return fmt.Errorf("magic: implausible rect count %d", rn)
		}
		layer.Rects = make([]Rect, 0, rn)
		for j := 0; j < rn; j++ {
			layer.Rects = append(layer.Rects, Rect{d.Int(), d.Int(), d.Int(), d.Int()})
		}
		layers = append(layers, layer)
	}
	l.Layers = layers
	l.Phase = d.Int()
	l.Cmd = d.Str()
	l.Commands = d.Int()
	l.LastMsg = d.Str()
	l.MinSpacing = d.Int()
	l.ThinkTime = time.Duration(d.I64())
	l.CmdCost = time.Duration(d.I64())
	l.faultSalt = uint64(d.I64())
	l.skipOverlap = d.Bool()
	if err := l.unmarshalCells(&d); err != nil {
		return err
	}
	return d.Err
}
