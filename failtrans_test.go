package failtrans

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// pingPong is a public-API program pair used by the façade tests.
type flipProg struct {
	Phase int
	Coin  uint64
}

func (f *flipProg) Name() string                  { return "flip" }
func (f *flipProg) Init(ctx *Ctx) error           { return nil }
func (f *flipProg) MarshalState() ([]byte, error) { return json.Marshal(f) }
func (f *flipProg) UnmarshalState(d []byte) error { return json.Unmarshal(d, f) }
func (f *flipProg) Step(ctx *Ctx) Status {
	switch f.Phase {
	case 0:
		f.Coin = ctx.Rand() % 2
	case 1, 2:
		ctx.Output([]string{"heads", "tails"}[f.Coin])
	default:
		return Done
	}
	f.Phase++
	return Ready
}

// TestPublicAPIEndToEnd exercises the façade: world, DC, stop failure,
// invariant checker, equivalence checker.
func TestPublicAPIEndToEnd(t *testing.T) {
	for _, pol := range MeasuredProtocols() {
		w := NewWorld(9, &flipProg{})
		d := NewDC(w, pol, Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, 3)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Fatalf("%s: did not finish", pol.Name)
		}
		out := w.Outputs[0]
		if eq, complete := Equivalent(out, []string{out[0], out[0]}); !eq || !complete {
			t.Errorf("%s: output %v not consistent", pol.Name, out)
		}
	}
}

func TestPublicAPICheckers(t *testing.T) {
	tr := NewTrace(1)
	tr.MustAppend(Event{ID: EventID{P: 0, I: -1}, Kind: Internal, ND: TransientND})
	tr.MustAppend(Event{ID: EventID{P: 0, I: -1}, Kind: Visible})
	if vs := CheckSaveWork(tr); len(vs) != 1 {
		t.Errorf("CheckSaveWork = %v", vs)
	}
	hb := NewHB(tr)
	if !hb.HappensBefore(EventID{P: 0, I: 0}, EventID{P: 0, I: 1}) {
		t.Error("program order lost through the façade")
	}
}

func TestPublicAPIDangerousPaths(t *testing.T) {
	m := NewMachine(4)
	m.AddEdge(MachineEdge{From: 0, To: 1, ND: TransientND})
	m.AddEdge(MachineEdge{From: 0, To: 3, ND: TransientND})
	m.AddEdge(MachineEdge{From: 1, To: 2})
	m.MarkCrash(2)
	c := m.DangerousPaths()
	if c.CommitUnsafeAt(0) {
		t.Error("transient escape should keep state 0 safe")
	}
	if !c.CommitUnsafeAt(1) {
		t.Error("state 1 is doomed")
	}
}

func TestPublicAPIProtocolSpace(t *testing.T) {
	if len(ProtocolSpace()) < len(MeasuredProtocols()) {
		t.Error("space must include the measured protocols")
	}
	p, err := ProtocolByName("CAND")
	if err != nil || p.Name != "CAND" {
		t.Errorf("ProtocolByName: %v %v", p, err)
	}
	var buf bytes.Buffer
	PrintProtocolSpace(&buf)
	if !strings.Contains(buf.String(), "HYPERVISOR") {
		t.Error("space print incomplete")
	}
}

func TestPublicAPIFaultTimeline(t *testing.T) {
	ft := FaultTimeline{Commits: []int{7}, LastTransientND: 2, Activation: 5, Crash: 9}
	if !ft.ViolatesLoseWork() || !ft.CommitAfterActivation() || ft.RecoverySucceeds() {
		t.Error("timeline checks wrong through the façade")
	}
}

func TestMediaOrdering(t *testing.T) {
	if Rio.CommitCost(4096) >= Disk.CommitCost(4096) {
		t.Error("Rio must be cheaper than disk")
	}
	if Disk.LogCost(64) >= Disk.CommitCost(64) {
		t.Error("a log append must be cheaper than a checkpoint sync")
	}
}

func TestPublicAPIOrphansAndMultiProcess(t *testing.T) {
	// Figure 2 through the façade: B's uncommitted ND flows to A's commit.
	tr := NewTrace(2)
	tr.MustAppend(Event{ID: EventID{P: 1, I: -1}, Kind: Internal, ND: TransientND})
	tr.MustAppend(Event{ID: EventID{P: 1, I: -1}, Kind: Send, Msg: 1, Peer: 0})
	tr.MustAppend(Event{ID: EventID{P: 0, I: -1}, Kind: Receive, Msg: 1, Peer: 1})
	tr.MustAppend(Event{ID: EventID{P: 0, I: -1}, Kind: Commit})
	orphans := FindOrphans(tr, 1, 2)
	if len(orphans) != 1 || orphans[0].Process != 0 {
		t.Errorf("orphans = %v", orphans)
	}

	m := NewMachine(4)
	m.AddEdge(MachineEdge{From: 0, To: 1, ND: TransientND, Msg: 1})
	m.AddEdge(MachineEdge{From: 0, To: 3, ND: TransientND, Msg: 1})
	m.AddEdge(MachineEdge{From: 1, To: 2})
	m.MarkCrash(2)
	c, err := MultiProcessDangerousPaths(m, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The sender never committed, so the receive is transient: state 0
	// keeps its escape.
	if c.CommitUnsafeAt(0) {
		t.Error("uncommitted sender should leave the receive transient")
	}
}

func TestPublicAPIFaultKinds(t *testing.T) {
	kinds := []FaultKind{StackBitFlip, HeapBitFlip, DestReg, InitFault, DeleteBranch, DeleteInstr, OffByOne}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Errorf("duplicate fault name %q", k)
		}
		seen[k.String()] = true
	}
}

func TestPublicAPICheckerAndPartialState(t *testing.T) {
	// The nvi editor implements both optional interfaces through the
	// public types.
	var _ Checker = (*checkedProg)(nil)
	var _ PartialStater = (*checkedProg)(nil)
}

type checkedProg struct{ flipProg }

func (c *checkedProg) CheckConsistency() error           { return nil }
func (c *checkedProg) MarshalEssential() ([]byte, error) { return c.MarshalState() }
func (c *checkedProg) UnmarshalEssential(d []byte) error { return c.UnmarshalState(d) }
