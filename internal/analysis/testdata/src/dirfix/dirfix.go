// Package dirfix exercises the driver's directive handling: placement
// (trailing vs standalone), mandatory reasons, and unknown-tag detection.
// The line numbers of this file are asserted in run_test.go.
package dirfix

import "time"

// Trailing's finding is silenced by the directive on the same line.
func Trailing() time.Time {
	return time.Now() //failtrans:nondet fixture: trailing, suppresses this line
}

// Standalone's finding is silenced by the full-line comment above it.
func Standalone() time.Time {
	//failtrans:nondet fixture: standalone, suppresses the line below
	return time.Now()
}

// NoBleed shows a trailing directive covering only its own line: the
// second time.Now must still be reported (line 23).
func NoBleed() (time.Time, time.Time) {
	a := time.Now() //failtrans:nondet fixture: suppresses only this line
	b := time.Now()
	return a, b
}

// Reasonless's suppression still silences the finding, but the driver
// reports the missing reason (line 30), so the tree cannot lint clean.
func Reasonless() time.Time {
	return time.Now() //failtrans:nondet
}

// A typoed tag suppresses nothing and is itself reported (line 36), so
// Typo's time.Now (line 38) is also still reported.
//
//failtrans:nodet oops
func Typo() time.Time {
	return time.Now()
}

// Composite spreads findings across a multi-line composite literal: a
// trailing directive on an interior element line covers exactly that
// line, not the whole literal, so the second element (line 48) is still
// reported.
func Composite() []time.Time {
	return []time.Time{
		time.Now(), //failtrans:nondet fixture: trailing on one composite-literal element line
		time.Now(),
	}
}

// Labeled pins the label sharp edge: a standalone directive above a label
// covers the label's own (finding-free) line and does NOT travel through
// to the labeled statement, so the time.Now on line 61 is still reported.
// A standalone directive between the label and a later statement covers
// the line below it as usual (line 66 is silenced).
func Labeled() time.Time {
	var t time.Time
	//failtrans:nondet fixture: covers only the label line below, not the labeled statement
retry:
	t = time.Now()
	if t.IsZero() {
		goto retry
	}
	//failtrans:nondet fixture: standalone below the label covers the next line as usual
	u := time.Now()
	_ = t
	return u
}
