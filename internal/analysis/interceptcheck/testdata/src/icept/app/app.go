// Package app is interceptcheck's workload fixture: the recoverable core
// whose every externally-visible effect must flow through the alphabet.
package app

import (
	"fmt"
	"os"
	"time"

	"icept/alphabet"
	"icept/store"
	"icept/util"
)

// Step plants the acceptance-criteria bug: a direct file write in
// workload code.
func Step(data []byte) error {
	return os.WriteFile("out.dat", data, 0o644) // want `os\.WriteFile bypasses the intercepted event alphabet \(in workload function icept/app\.Step\)`
}

// Clock reads the real clock, so its output cannot be replayed.
func Clock() int64 {
	return time.Now().UnixNano() // want `time\.Now \(wall clock\) bypasses`
}

// Render writes the real stdout instead of the simulated output event.
func Render(msg string) {
	fmt.Println(msg) // want `fmt\.Println \(writes the real stdout\) bypasses`
}

// RenderErr writes the real stderr through an explicit stream handle;
// writing a bytes.Buffer with the same verb is pure and stays silent.
func RenderErr(msg string) {
	fmt.Fprintln(os.Stderr, msg) // want `fmt\.Fprintln to os\.Stdout/os\.Stderr bypasses`
}

// ViaUtil shows propagation: the effect lives in a helper package, the
// finding names this root.
func ViaUtil() error {
	return util.Leak()
}

// ViaAlphabet routes the same payload through the interception boundary —
// the sanctioned shape.
func ViaAlphabet(data []byte) {
	alphabet.Send(data)
}

// Direct bypasses dc and hits stable storage itself.
func Direct(s *store.Log) error {
	return s.Append(nil) // want `direct stable-store call store\.Append bypasses`
}

// Escape demonstrates the mandatory-reason escape hatch on the effect
// itself.
func Escape() {
	os.Remove("scratch") //failtrans:uninterceptible fixture: host-side artifact outside the recoverable state
}

// EscapeCall cuts propagation at the call: the suppressed line sanctions
// util.Audited's entire subtree.
func EscapeCall() error {
	return util.Audited() //failtrans:uninterceptible fixture: audited by hand, no replay-visible effect
}

// Boundary is alphabet implementation living inside the core tree; the
// annotation sanctions its direct effect and stops traversal into it.
//
//failtrans:intercepted
func Boundary() error {
	f, err := os.Create("journal")
	if err != nil {
		return err
	}
	return f.Close()
}

// UsesBoundary reaches a real effect only through Boundary, which is
// below the alphabet — silent.
func UsesBoundary() error {
	return Boundary()
}
