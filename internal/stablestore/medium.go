// Package stablestore models the stable storage that commit events write
// to. The paper evaluates two media: the Rio reliable file cache (battery-
// backed main memory that survives operating system crashes, giving
// memory-speed commits) and a synchronous SCSI disk (the DC-disk variant).
//
// The package provides (1) virtual-time cost models for both media, used by
// the simulator to charge commit latency, and (2) an actual crash-safe
// file-backed store with checksummed records, used by the command-line
// tools and examples that persist across real process restarts.
package stablestore

import "time"

// Medium describes where commits are written and what they cost in
// (virtual) time. The constants below are calibrated to the paper's era —
// a 400 MHz Pentium II with 100 MHz SDRAM and an IBM Ultrastar SCSI disk —
// so that relative protocol overheads reproduce the paper's shape.
type Medium struct {
	Name string
	// PerCommit is the fixed cost of one commit: for Rio, the register
	// save, log discard and page re-protection; for disk, seek +
	// rotational latency of a synchronous write.
	PerCommit time.Duration
	// PerByte is the incremental cost of each dirtied byte written.
	PerByte time.Duration
	// PerLog is the fixed cost of one synchronous log append. Log
	// appends land sequentially at the disk head (or are a store fence
	// on Rio), so they avoid the seek + rotation a checkpoint sync pays.
	PerLog time.Duration
}

// CommitCost returns the virtual-time cost of committing n dirty bytes.
func (m Medium) CommitCost(n int) time.Duration {
	return m.PerCommit + time.Duration(n)*m.PerByte
}

// LogCost returns the virtual-time cost of appending one n-byte record to
// the non-determinism log.
func (m Medium) LogCost(n int) time.Duration {
	return m.PerLog + time.Duration(n)*m.PerByte
}

// Rio models commits into reliable main memory: tens of microseconds fixed
// cost plus memcpy bandwidth (~100 MB/s on the paper's hardware).
var Rio = Medium{Name: "rio", PerCommit: 50 * time.Microsecond, PerByte: 10 * time.Nanosecond, PerLog: 5 * time.Microsecond}

// Disk models synchronous commits to a late-1990s SCSI disk: ~8 ms of seek
// and rotational latency plus ~15 MB/s of media bandwidth; sequential log
// appends cost about a millisecond.
var Disk = Medium{Name: "disk", PerCommit: 8 * time.Millisecond, PerByte: 66 * time.Nanosecond, PerLog: time.Millisecond}
