package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestMagicSessionTerminates(t *testing.T) {
	s := MagicSession(1, 50)
	if s[len(s)-1] != "quit" {
		t.Error("session must end with quit")
	}
	kinds := map[string]bool{}
	for _, c := range s {
		kinds[strings.Fields(c)[0]] = true
	}
	for _, k := range []string{"paint", "erase", "drc", "box", "area"} {
		if !kinds[k] {
			t.Errorf("session lacks %s commands", k)
		}
	}
}

func TestFig8Nvi(t *testing.T) {
	res, err := Fig8("nvi", 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rows := map[string]Fig8Row{}
	for _, r := range res.Rows {
		rows[r.Protocol] = r
	}
	// Paper shape: CAND/CPVS/CBNDVS take thousands of checkpoints (one
	// per keystroke-ish); the LOG variants collapse to almost none.
	if rows["CAND"].Checkpoints < 100 {
		t.Errorf("CAND checkpoints = %d, want ~per-keystroke", rows["CAND"].Checkpoints)
	}
	if rows["CAND-LOG"].Checkpoints*10 > rows["CAND"].Checkpoints {
		t.Errorf("CAND-LOG (%d) should collapse vs CAND (%d)", rows["CAND-LOG"].Checkpoints, rows["CAND"].Checkpoints)
	}
	// DC overhead tiny for an interactive app; disk overhead noticeable.
	for _, name := range []string{"CAND", "CPVS", "CBNDVS"} {
		if rows[name].OverheadRioPct > 5 {
			t.Errorf("%s DC overhead %.1f%%, want < 5%%", name, rows[name].OverheadRioPct)
		}
		if rows[name].OverheadDiskPct < 2 {
			t.Errorf("%s disk overhead %.1f%%, want noticeable", name, rows[name].OverheadDiskPct)
		}
		if rows[name].OverheadDiskPct <= rows[name].OverheadRioPct {
			t.Errorf("%s: disk must cost more than Rio", name)
		}
	}
	// Logging cuts the disk overhead (CBNDVS-LOG ≈ 12%-class vs CPVS
	// 44%-class in the paper).
	if rows["CBNDVS-LOG"].OverheadDiskPct >= rows["CPVS"].OverheadDiskPct {
		t.Errorf("CBNDVS-LOG disk overhead %.1f%% should beat CPVS %.1f%%",
			rows["CBNDVS-LOG"].OverheadDiskPct, rows["CPVS"].OverheadDiskPct)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "CBNDVS-LOG") {
		t.Error("Print output missing protocols")
	}
}

func TestFig8Magic(t *testing.T) {
	res, err := Fig8("magic", 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig8Row{}
	for _, r := range res.Rows {
		rows[r.Protocol] = r
	}
	// Paper shape: magic has more ND than visible events, so CAND
	// commits far more than CPVS/CBNDVS.
	if rows["CAND"].Checkpoints <= rows["CPVS"].Checkpoints {
		t.Errorf("CAND (%d) should out-commit CPVS (%d)", rows["CAND"].Checkpoints, rows["CPVS"].Checkpoints)
	}
	// CAND-LOG logs the input stream and lands between.
	if !(rows["CAND-LOG"].Checkpoints < rows["CAND"].Checkpoints) {
		t.Errorf("CAND-LOG (%d) should commit less than CAND (%d)", rows["CAND-LOG"].Checkpoints, rows["CAND"].Checkpoints)
	}
}

func TestFig8Xpilot(t *testing.T) {
	res, err := Fig8("xpilot", 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig8Row{}
	for _, r := range res.Rows {
		rows[r.Protocol] = r
	}
	// DC sustains full speed (~15 fps) for the low-commit protocols.
	if rows["CBNDVS"].FPSRio < 13 {
		t.Errorf("CBNDVS DC fps = %.1f, want ~15", rows["CBNDVS"].FPSRio)
	}
	// DC-disk degrades CAND badly (0-fps class in the paper).
	if rows["CAND"].FPSDisk >= rows["CBNDVS"].FPSDisk {
		t.Errorf("CAND disk fps %.1f should be worst (CBNDVS %.1f)", rows["CAND"].FPSDisk, rows["CBNDVS"].FPSDisk)
	}
	if rows["CAND"].FPSDisk > 12 {
		t.Errorf("CAND disk fps = %.1f, want clearly degraded", rows["CAND"].FPSDisk)
	}
	// The paper's exception: 2PC *raises* xpilot's commit rate vs CPVS.
	if rows["CPV-2PC"].CkptsPerSec <= rows["CPVS"].CkptsPerSec {
		t.Errorf("CPV-2PC ckpts/s %.1f should exceed CPVS %.1f (the paper's exception)",
			rows["CPV-2PC"].CkptsPerSec, rows["CPVS"].CkptsPerSec)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "fps") {
		t.Error("xpilot print should report fps")
	}
}

func TestFig8TreadMarks(t *testing.T) {
	res, err := Fig8("treadmarks", 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig8Row{}
	for _, r := range res.Rows {
		rows[r.Protocol] = r
	}
	// Paper shape: the 2PC protocols are the big win (rare visibles).
	if rows["CBNDV-2PC"].Checkpoints*5 > rows["CPVS"].Checkpoints {
		t.Errorf("CBNDV-2PC (%d ckpts) should be far below CPVS (%d)",
			rows["CBNDV-2PC"].Checkpoints, rows["CPVS"].Checkpoints)
	}
	// Disk is catastrophically slower than Rio for the chatty protocols.
	if rows["CAND"].OverheadDiskPct < 5*rows["CAND"].OverheadRioPct {
		t.Errorf("CAND disk %.0f%% should dwarf Rio %.0f%%",
			rows["CAND"].OverheadDiskPct, rows["CAND"].OverheadRioPct)
	}
	if rows["CAND"].OverheadDiskPct < 100 {
		t.Errorf("CAND disk overhead %.0f%%, want unusable-class", rows["CAND"].OverheadDiskPct)
	}
}

func TestFig8UnknownApp(t *testing.T) {
	if _, err := Fig8("word", 1, 4, nil); err == nil {
		t.Error("unknown app must error")
	}
}

func TestTable1Small(t *testing.T) {
	res, err := Table1(3, 4, true, true, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "heap bit flip") || !strings.Contains(out, "Average") {
		t.Errorf("Table 1 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "Heisenbugs") {
		t.Error("Table 1 should print the §4.1 composition")
	}
}

func TestTable2Small(t *testing.T) {
	res, err := Table2(2, 4, true, true, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "failed recovery") {
		t.Errorf("Table 2 output malformed:\n%s", buf.String())
	}
}

func TestPrintSpace(t *testing.T) {
	var buf bytes.Buffer
	PrintSpace(&buf)
	out := buf.String()
	for _, name := range []string{"CAND", "HYPERVISOR", "MANETHO", "COMMIT-ALL"} {
		if !strings.Contains(out, name) {
			t.Errorf("space print missing %s", name)
		}
	}
}

// TestFig8ParallelMatchesSerial pins the parallel sweep to the serial one:
// same cells, same numbers, regardless of worker count.
func TestFig8ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig8("nvi", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8("nvi", 1, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel Fig8 diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
