package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config tells the driver what to load and how to map import paths to
// directories.
type Config struct {
	// Dir is the root directory: a module root (the directory holding
	// go.mod) when ModulePath is set, or a GOPATH-src-style root where
	// import path "a/b" lives in Dir/a/b (the analysistest fixture
	// layout) when ModulePath is empty.
	Dir string
	// ModulePath is the module's import-path prefix ("failtrans").
	ModulePath string
	// Patterns selects packages: "./..." for every package under Dir, or
	// explicit import paths.
	Patterns []string
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader loads and type-checks packages from source. Local packages (as
// defined by Config) are resolved under Dir; everything else falls back to
// the standard library's source importer, so the whole run works with no
// compiled export data and no network.
type loader struct {
	cfg     Config
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	order   []*Package // load-completion (= topological) order
	loading map[string]bool
}

func newLoader(cfg Config) *loader {
	fset := token.NewFileSet()
	return &loader{
		cfg:     cfg,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path to a local directory, or ok=false when the
// path is not local (standard library).
func (l *loader) dirFor(path string) (string, bool) {
	if l.cfg.ModulePath != "" {
		if path == l.cfg.ModulePath {
			return l.cfg.Dir, true
		}
		if rel, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
			return filepath.Join(l.cfg.Dir, filepath.FromSlash(rel)), true
		}
		return "", false
	}
	// GOPATH-style fixture root: local iff the directory exists.
	dir := filepath.Join(l.cfg.Dir, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	return "", false
}

// Import implements types.Importer for the type checker's import clauses.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// sourceFiles lists the package's non-test Go files in sorted order.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks the package at dir, memoized by import path.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// expand resolves the Config patterns into import paths.
func (l *loader) expand() ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range l.cfg.Patterns {
		if pat != "./..." {
			add(pat)
			continue
		}
		err := filepath.WalkDir(l.cfg.Dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != l.cfg.Dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := sourceFiles(p)
			if err != nil || len(names) == 0 {
				return nil
			}
			rel, err := filepath.Rel(l.cfg.Dir, p)
			if err != nil {
				return err
			}
			switch {
			case rel == "." && l.cfg.ModulePath != "":
				add(l.cfg.ModulePath)
			case rel == ".":
				// A GOPATH-style root itself is not a package.
			case l.cfg.ModulePath != "":
				add(l.cfg.ModulePath + "/" + filepath.ToSlash(rel))
			default:
				add(filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// loadAll loads every package the patterns select (plus their local
// transitive dependencies, via the importer) and returns them in
// topological order, dependencies first.
func (l *loader) loadAll() ([]*Package, error) {
	paths, err := l.expand()
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		dir, ok := l.dirFor(p)
		if !ok {
			return nil, fmt.Errorf("package %q is outside the analysis root", p)
		}
		if _, err := l.load(p, dir); err != nil {
			return nil, err
		}
	}
	return l.order, nil
}
