package dc

import (
	"failtrans/internal/sim"
	"failtrans/internal/vista"
)

// ForkRecovery implements sim.ForkableRecovery: it deep-copies the whole
// Discount Checking state — Vista segments mid-transaction, ND logs and
// replay cursors, dependency maps, commit epochs — against the forked world
// w, so the copy recovers and commits exactly as the original would from
// this point on. The CommitHook/RecoveryHook/ExpandResourcesOnCrash
// callbacks do NOT carry over: they are per-run harness wiring (the
// original's closures would observe the wrong run); callers re-install
// their own on the returned *DC (the concrete type is the return value's
// dynamic type).
func (d *DC) ForkRecovery(w *sim.World) sim.Recovery {
	n := len(d.segs)
	nd := &DC{
		World:             w,
		Policy:            d.Policy,
		Medium:            d.Medium,
		PageSize:          d.PageSize,
		segs:              make([]*vista.Segment, n),
		ndSince:           append([]bool(nil), d.ndSince...),
		deps:              make([]map[int]int, n),
		epoch:             append([]int(nil), d.epoch...),
		msgDeps:           make(map[int64]map[int]int, len(d.msgDeps)),
		ndLog:             make([][]logRec, n),
		watermark:         append([]int(nil), d.watermark...),
		replaying:         append([]bool(nil), d.replaying...),
		cursor:            append([]int(nil), d.cursor...),
		stepsBase:         append([]int(nil), d.stepsBase...),
		replayOpen:        make([]bool, n), // no tracer on a fork: no open windows
		flushed:           append([]int(nil), d.flushed...),
		pendingCommit:     append([]string(nil), d.pendingCommit...),
		registers:         append([]byte(nil), d.registers...),
		imgBuf:            make([][]byte, n),
		coStats:           make([]vista.Stats, n),
		coErrs:            make([]error, n),
		DisableRecovery:   d.DisableRecovery,
		CheckBeforeCommit: d.CheckBeforeCommit,
		EssentialOnly:     d.EssentialOnly,
		SerialCommit:      d.SerialCommit,
		ChecksFailed:      d.ChecksFailed,
		Stats:             d.Stats,
	}
	nd.Stats.Checkpoints = append([]int(nil), d.Stats.Checkpoints...)
	for i, dep := range d.deps {
		nd.deps[i] = make(map[int]int, len(dep))
		for q, ep := range dep {
			nd.deps[i][q] = ep
		}
	}
	for msg, snap := range d.msgDeps {
		c := make(map[int]int, len(snap))
		for q, ep := range snap {
			c[q] = ep
		}
		nd.msgDeps[msg] = c
	}
	for i, log := range d.ndLog {
		// Records are appended, truncated and read, never mutated in
		// place, and each val is a fresh copy at RecordND time — copying
		// the record slice suffices; the value bytes are shared.
		nd.ndLog[i] = append([]logRec(nil), log...)
	}
	for i, seg := range d.segs {
		if seg != nil {
			nd.segs[i] = seg.Fork()
		}
	}
	for i, buf := range d.imgBuf {
		nd.imgBuf[i] = make([]byte, 0, cap(buf))
	}
	return nd
}
