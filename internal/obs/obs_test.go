package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 20, -5} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Errorf("count = %d, want 7", h.Count)
	}
	if h.Max != 1<<20 {
		t.Errorf("max = %d, want %d", h.Max, 1<<20)
	}
	if h.Buckets[0] != 2 { // the zero and the clamped negative
		t.Errorf("zero bucket = %d, want 2", h.Buckets[0])
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1<<20 {
		t.Errorf("p50 = %d out of range", q)
	}
	if q := h.Quantile(1.0); q != 1<<20 {
		t.Errorf("p100 = %d, want max", q)
	}
	h2 := Histogram{}
	h2.ObserveDuration(3 * time.Microsecond)
	if h2.Sum != 3000 {
		t.Errorf("duration observed as %d ns, want 3000", h2.Sum)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(200, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Observe allocates %.1f times per run, want 0", n)
	}
}

func TestMetricsSnapshotDeterministic(t *testing.T) {
	build := func() *Metrics {
		m := NewMetrics(2)
		m.Procs[0].Events[1] = 3
		m.Procs[0].CommitLatency.Observe(1500)
		m.Procs[1].Rollbacks = 2
		m.Vista[1].PagesDirtied = 9
		m.Syscall(0, "open")
		m.Syscall(0, "read")
		m.Syscall(1, "read")
		m.Steps = 42
		return m
	}
	a := build().Snapshot()
	b := build().Snapshot()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	s := string(a)
	for _, want := range []string{"steps 42", "syscall open 1", "syscall read 2", "proc 0", "vista 1", "commit_latency_ns count=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %q:\n%s", want, s)
		}
	}
}

func TestMetricsSummarize(t *testing.T) {
	m := NewMetrics(2)
	m.Procs[0].Commits = 2
	m.Procs[0].CommitLatency.Observe(1000)
	m.Procs[0].CommitLatency.Observe(3000)
	m.Procs[1].Commits = 1
	m.Procs[1].CommitLatency.Observe(8000)
	m.Procs[1].Syscalls = 5
	m.TwoPhaseRounds = 4
	m.Vista[0].PagesDirtied = 7
	s := m.Summarize()
	if s.Commits != 3 || s.Syscalls != 5 || s.TwoPhaseRounds != 4 || s.VistaPagesDirty != 7 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.CommitMaxNs != 8000 {
		t.Errorf("commit max = %d, want 8000", s.CommitMaxNs)
	}
	if s.CommitP50Ns <= 0 {
		t.Errorf("commit p50 = %d, want > 0", s.CommitP50Ns)
	}
}

func TestTracerJSONShapes(t *testing.T) {
	tr := NewTracer()
	tr.SetTrackName(0, "p0 nvi")
	tr.SetTrackName(1, "p1 srv")
	tr.SpanArgs(0, "dc", "commit", 100*time.Microsecond, 10*time.Microsecond, "label", "before-visible", "bytes", 4160)
	tr.Span(0, "net", "send", 120*time.Microsecond, 2*time.Microsecond)
	tr.FlowStart(0, "net", "msg", 7, 120*time.Microsecond)
	tr.Span(1, "net", "recv", 220*time.Microsecond, 2*time.Microsecond)
	tr.FlowEnd(1, "net", "msg", 7, 220*time.Microsecond)
	tr.Begin(1, "dc", "replay", 230*time.Microsecond)
	tr.Instant(1, "fault", "crash", 240*time.Microsecond)
	tr.End(1, 250*time.Microsecond)
	if id := tr.NewFlowID(); id <= FlowIDBase {
		t.Errorf("flow id %d not offset above FlowIDBase", id)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tracks, spans, fs, fe, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if tracks != 2 || spans != 3 || fs != 1 || fe != 1 {
		t.Errorf("shapes tracks=%d spans=%d flowStarts=%d flowEnds=%d, want 2/3/1/1", tracks, spans, fs, fe)
	}
	s := buf.String()
	for _, want := range []string{`"bp":"e"`, `"name":"p0 nvi"`, `"args":{"label":"before-visible","bytes":4160}`, `"ts":120.000`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}

	var buf2 bytes.Buffer
	if err := tr.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-serializing the same tracer must be byte-identical")
	}
}

func TestDebugLogGating(t *testing.T) {
	var nilLog *DebugLog
	nilLog.Printf("must not panic %d", 1)
	var buf bytes.Buffer
	l := &DebugLog{W: &buf}
	l.Printf("hidden")
	if buf.Len() != 0 {
		t.Error("disabled logger must be silent")
	}
	l.Enabled = true
	l.Printf("shown %d\n", 7)
	if got := buf.String(); got != "shown 7\n" {
		t.Errorf("got %q", got)
	}
}
