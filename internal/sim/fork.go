package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// This file is the snapshot/fork engine: World.Fork deep-copies a mid-run
// world in O(state) so fault campaigns can resume from a memoized clean
// prefix instead of re-executing it from step zero. A forked world is fully
// independent of the original — stepping one never changes the other — and
// a quiescent template world may be forked concurrently from many
// goroutines (Fork only reads the template).
//
// Three optional interfaces extend the protocol to pluggable components:
// the Program, OS and Recovery attached to a world must implement their
// respective Forkable* interface for the world to be forkable.

// Forker is implemented by Programs that can produce an independent deep
// copy of themselves. Implementations must copy every bit of state that
// influences future Step calls; scratch buffers may be omitted.
type Forker interface {
	Fork() (Program, error)
}

// ForkableOS is implemented by OS implementations that can deep-copy their
// state into a new instance. The clock callback reads the forked world's
// virtual clock (the original's callback would read the template).
type ForkableOS interface {
	ForkOS(clock func() time.Duration) OS
}

// ForkableRecovery is implemented by Recovery layers that can deep-copy
// their state against a forked world. The returned Recovery must observe w
// (not the template world) from then on.
type ForkableRecovery interface {
	ForkRecovery(w *World) Recovery
}

// Freezer is implemented by components (OS, Recovery) that can seal
// themselves as immutable fork templates: after Freeze, the component is
// never mutated again, and its Forkable* method returns structural-sharing
// copy-on-write forks instead of deep copies.
type Freezer interface {
	Freeze()
}

// Freeze seals a quiescent world as an immutable fork template: components
// that implement Freezer switch their fork paths from deep-copy to
// copy-on-write, and the world itself must never be stepped again. Forks
// taken afterwards are O(metadata); the template's pages are shared and
// privatized by each fork on first write. Freeze is idempotent, and
// freezing a world whose components lack Freezer is a no-op (forks simply
// stay deep copies).
func (w *World) Freeze() {
	if w.frozen {
		return
	}
	if f, ok := w.OS.(Freezer); ok {
		f.Freeze()
	}
	if f, ok := w.Recovery.(Freezer); ok {
		f.Freeze()
	}
	for _, p := range w.Procs {
		if f, ok := p.Prog.(Freezer); ok {
			f.Freeze()
		}
	}
	w.frozen = true
}

// Frozen reports whether Freeze has sealed this world as a fork template.
func (w *World) Frozen() bool { return w.frozen }

// Fork returns an independent deep copy of the world, ready to resume from
// the exact point the original has reached. Observability sinks (Metrics,
// Tracer, DebugLog) and the Faults injector are NOT carried over — they are
// per-run harness concerns; the caller re-installs what it needs. The event
// Trace is copied when RecordTrace is set.
//
// Fork fails if an attached Program, OS or Recovery does not implement its
// Forkable* interface.
func (w *World) Fork() (*World, error) {
	nw := &World{
		Clock:         w.Clock,
		Latency:       w.Latency,
		RecordTrace:   w.RecordTrace,
		Outputs:       make([][]string, len(w.Procs)),
		GlobalOutputs: w.GlobalOutputs[:len(w.GlobalOutputs):len(w.GlobalOutputs)],
		MaxTime:       w.MaxTime,
		MaxSteps:      w.MaxSteps,
		EventCount:    w.EventCount,
		ScanSched:     w.ScanSched,
		doneCount:     w.doneCount,
		deadCount:     w.deadCount,
		msgSeq:        w.msgSeq,
		stepCount:     w.stepCount,
		seed:          w.seed,
		inited:        w.inited,
	}
	// The readiness index is not forked: nw.schedBuilt stays false and the
	// fork's first scheduling decision rebuilds its own heap (O(live), and
	// campaign forks typically step only a short suffix). Message arenas
	// likewise start fresh; the template's messages are immutable and
	// shared by pointer.
	// Outputs slices are append-only; a capacity-clamped reslice shares the
	// committed prefix copy-on-write: either side's next append reallocates.
	for i, o := range w.Outputs {
		nw.Outputs[i] = o[:len(o):len(o)]
	}
	if w.Trace != nil && w.RecordTrace {
		// With RecordTrace off nothing ever appends to or reads the copy,
		// so campaign forks skip it (it is not cheap at fork rates).
		nw.Trace = w.Trace.Fork()
	}
	nw.Procs = make([]*Proc, len(w.Procs))
	slab := make([]Proc, len(w.Procs))
	for i, p := range w.Procs {
		np := &slab[i]
		if err := p.forkInto(np, nw); err != nil {
			return nil, err
		}
		nw.Procs[i] = np
	}
	if w.OS != nil {
		fo, ok := w.OS.(ForkableOS)
		if !ok {
			return nil, fmt.Errorf("sim: attached OS %T is not forkable", w.OS)
		}
		nw.OS = fo.ForkOS(func() time.Duration { return nw.Clock })
	}
	if w.Recovery != nil {
		fr, ok := w.Recovery.(ForkableRecovery)
		if !ok {
			return nil, fmt.Errorf("sim: attached recovery %T is not forkable", w.Recovery)
		}
		nw.Recovery = fr.ForkRecovery(nw)
	}
	return nw, nil
}

// forkInto deep-copies the process into slab slot np of world nw. Messages
// are immutable once enqueued (every mutation path copies first), so
// inbox/retained/replay entries share *Msg pointers with the template.
func (p *Proc) forkInto(np *Proc, nw *World) error {
	fp, ok := p.Prog.(Forker)
	if !ok {
		return fmt.Errorf("sim: program %T (%s) is not forkable", p.Prog, p.Prog.Name())
	}
	prog, err := fp.Fork()
	if err != nil {
		return fmt.Errorf("sim: fork program %s: %w", p.Prog.Name(), err)
	}
	*np = Proc{
		Index:       p.Index,
		Prog:        prog,
		World:       nw,
		status:      p.status,
		wake:        p.wake,
		inbox:       append([]*Msg(nil), p.inbox...),
		retained:    append([]retainedMsg(nil), p.retained...),
		retainBase:  p.retainBase,
		replayQueue: append([]retainedMsg(nil), p.replayQueue...),
		rngSeed:     p.rngSeed,
		rngDraws:    p.rngDraws,
		Steps:       p.Steps,
		Crashes:     p.Crashes,
		InputCursor: p.InputCursor,
		SendSeq:     p.SendSeq,
		stops:       append([]int(nil), p.stops...),
		signals:     append([]pendingSignal(nil), p.signals...),
		dead:        p.dead,
		inboxMin:    p.inboxMin,
		inboxMinOK:  p.inboxMinOK,
		schedIdx:    -1, // the fork builds its own readiness index
	}
	// Single-process worlds never populate RecvHW; bumpRecvHW rebuilds the
	// map on the fork's first receive.
	if len(p.RecvHW) > 0 {
		np.RecvHW = make(map[int]int64, len(p.RecvHW))
		for k, v := range p.RecvHW {
			np.RecvHW[k] = v
		}
	}
	// np.rng stays nil: rand.Rand state cannot be copied, and seeding a
	// fresh generator per fork would dominate fork cost for the campaign
	// workloads that never call Ctx.Rand. The recorded seed and draw count
	// let rand() rebuild the identical stream position on first draw.
	np.initCtx()
	np.ctx.Inputs = p.ctx.Inputs // scripted input is immutable
	return nil
}

// bumpRecvHW advances the per-sender receive high-water mark, building the
// map on first use (forks and single-process worlds start without one).
func (p *Proc) bumpRecvHW(from int, idx int64) {
	if idx <= p.RecvHW[from] {
		return
	}
	if p.RecvHW == nil {
		p.RecvHW = make(map[int]int64)
	}
	p.RecvHW[from] = idx
}

// rand returns the process's transient-ND generator, materializing it on
// first use: a fresh (or forked) process reseeds and fast-forwards the
// recorded number of draws to reach the exact point in the stream.
func (p *Proc) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.rngSeed))
		for i := int64(0); i < p.rngDraws; i++ {
			p.rng.Uint64()
		}
	}
	return p.rng
}
