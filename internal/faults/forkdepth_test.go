package faults

import (
	"testing"
	"time"
)

// TestForkCostBySnapshotDepth is a diagnostic: it prints per-snapshot COW
// fork cost so regressions can be localized to a layer that stops sharing
// as the prefix deepens. Run with -v to see the table.
func TestForkCostBySnapshotDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	s := NewAppStudy("nvi")
	s.WallClock = nil
	c, err := s.buildPrefixCache()
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.snaps {
		snap := &c.snaps[i]
		const reps = 200
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := snap.world.Fork(); err != nil {
				t.Fatal(err)
			}
		}
		ns := time.Since(start).Nanoseconds() / reps
		t.Logf("snap %2d visits=%4d steps=%5d fork=%6dns", i, snap.visits, snap.steps, ns)
	}
}
