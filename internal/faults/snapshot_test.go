package faults

import (
	"testing"

	"failtrans/internal/obs"
	"failtrans/internal/sim"
)

// TestAppStudySnapshotMatchesScratch is the snapshot engine's acceptance
// bar: the Table 1 aggregate must be byte-identical with snapshots off,
// snapshots on, and snapshots on under a parallel campaign.
func TestAppStudySnapshotMatchesScratch(t *testing.T) {
	for _, app := range []string{"nvi", "postgres"} {
		scratch := smallStudy(app)
		scratch.Snapshots = false
		got, err := scratch.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := asJSON(t, got)

		snap := smallStudy(app)
		snap.CampaignObs = obs.NewCampaignMetrics(1)
		rs, err := snap.Run()
		if err != nil {
			t.Fatal(err)
		}
		if j := asJSON(t, rs); j != want {
			t.Errorf("%s: snapshot run diverged from scratch:\n got %s\nwant %s", app, j, want)
		}
		if sn := &snap.CampaignObs.Snapshot; sn.Snapshots == 0 || sn.Forks == 0 {
			t.Errorf("%s: snapshot path not exercised: snapshots=%d forks=%d",
				app, sn.Snapshots, sn.Forks)
		}

		par := smallStudy(app)
		par.Parallel = 4
		par.CampaignObs = obs.NewCampaignMetrics(4)
		rs, err = par.Run()
		if err != nil {
			t.Fatal(err)
		}
		if j := asJSON(t, rs); j != want {
			t.Errorf("%s: parallel snapshot run diverged from scratch:\n got %s\nwant %s", app, j, want)
		}
	}
}

// TestAppStudySnapshotTimelines compares individual runs, not just the
// aggregate: the fault timeline (commit positions, activation, crash) each
// run reports must match between a from-scratch run and a fork-served run.
func TestAppStudySnapshotTimelines(t *testing.T) {
	s := smallStudy("nvi")
	clean, err := s.cleanOutputs(s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := s.buildPrefixCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.snaps) < 3 {
		t.Fatalf("template captured only %d snapshots", len(cache.snaps))
	}
	compared := 0
	for _, kind := range []sim.FaultKind{sim.HeapBitFlip, sim.DeleteBranch, sim.OffByOne} {
		for run := int64(0); run < 10; run++ {
			injSeed := s.Seed*100000 + run
			want, err := s.RunOne(kind, injSeed, clean)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.runOneSnap(kind, injSeed, clean, cache)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := asJSON(t, got), asJSON(t, want); g != w {
				t.Errorf("%v run %d: fork-served run diverged:\n got %s\nwant %s",
					kind, run, g, w)
			}
			if want.Crashed {
				compared++
			}
		}
	}
	if compared < 4 {
		t.Fatalf("only %d crashing runs compared", compared)
	}
}

// TestSnapshotForkIsolation: two forks of the same snapshot serve different
// faults without bleeding state into each other or the template, and the
// template still forks a clean continuation afterwards.
func TestSnapshotForkIsolation(t *testing.T) {
	s := smallStudy("nvi")
	clean, err := s.cleanOutputs(s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := s.buildPrefixCache()
	if err != nil {
		t.Fatal(err)
	}
	snap := &cache.snaps[len(cache.snaps)/2]

	// Two different faults from one snapshot, interleaved with a repeat of
	// the first: run 1 and run 3 must agree exactly despite run 2.
	seed := s.Seed*100000 + 2
	r1, err := s.runOneSnap(sim.HeapBitFlip, seed, clean, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runOneSnap(sim.DeleteBranch, seed, clean, cache); err != nil {
		t.Fatal(err)
	}
	r3, err := s.runOneSnap(sim.HeapBitFlip, seed, clean, cache)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := asJSON(t, r1), asJSON(t, r3); a != b {
		t.Errorf("repeat of the same fork-served run diverged:\n got %s\nwant %s", b, a)
	}

	// The template snapshot still forks a clean, fault-free continuation.
	w, _, err := s.forkSnap(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !equalOutputs(w.Outputs[0], clean) {
		t.Errorf("clean continuation from template snapshot diverged from clean run")
	}
}

// TestOSStudySnapshotMatchesScratch is the Table 2 equivalent of the
// acceptance bar.
func TestOSStudySnapshotMatchesScratch(t *testing.T) {
	mk := func(snapshots bool, workers int) *OSStudy {
		o := NewOSStudy("nvi")
		o.CrashTarget = 3
		o.MaxRunsPerType = 20
		o.SessionLen = 120
		o.Snapshots = snapshots
		o.Parallel = workers
		return o
	}
	got, err := mk(false, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := asJSON(t, got)
	rs, err := mk(true, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if j := asJSON(t, rs); j != want {
		t.Errorf("OS snapshot run diverged from scratch:\n got %s\nwant %s", j, want)
	}
	rs, err = mk(true, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	if j := asJSON(t, rs); j != want {
		t.Errorf("OS parallel snapshot run diverged from scratch:\n got %s\nwant %s", j, want)
	}
}

// TestSnapshotReplayAccounting: the steps-replayed counters that back the
// campaign-snapshot bench row must show forks re-executing well under half
// the prefix steps a from-scratch campaign replays (the ISSUE's >= 2x bar;
// the snapshot interval targets ~10x).
func TestSnapshotReplayAccounting(t *testing.T) {
	replayPerRun := func(snapshots bool) float64 {
		s := smallStudy("nvi")
		s.Snapshots = snapshots
		s.CampaignObs = obs.NewCampaignMetrics(1)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		steps, runs := s.CampaignObs.Snapshot.ReplaySnapshot()
		if runs == 0 {
			t.Fatal("no activated injection runs accounted")
		}
		return float64(steps) / float64(runs)
	}
	scratch := replayPerRun(false)
	snap := replayPerRun(true)
	if snap*2 > scratch {
		t.Errorf("steps replayed per run: snapshot %.1f vs scratch %.1f, want >= 2x reduction",
			snap, scratch)
	}
	t.Logf("steps replayed per activated run: scratch=%.1f snapshot=%.1f (%.1fx)",
		scratch, snap, scratch/snap)
}
