// Package cowclient proves cowshared facts cross package boundaries: the
// annotation lives on cow.Editor, the stores live here.
package cowclient

import "cow"

// Smash writes a dependency's COW-shared field without privatizing.
func Smash(e *cow.Editor, row int) {
	e.Lines[row] = nil // want `store through COW-shared field Editor\.Lines`
}

// Polite reaches the exported privatizer first, which the imported fact
// resolves.
func Polite(e *cow.Editor, row int) {
	e.SnapshotUndo()
	e.Lines[row] = nil
}
