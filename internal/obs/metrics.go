// Package obs is the observability layer threaded through the whole stack:
// a per-process metrics registry (fixed-slot counters, gauges, and
// virtual-time histograms), a span-based causal tracer over *virtual* time
// that exports Chrome trace-event / Perfetto-compatible JSON, and a gated
// debug logger.
//
// The registry is engineered so the instrumented commit hot paths stay at
// zero steady-state heap allocations: every per-process slot is
// preallocated at construction, counters are plain int64 fields, and
// histogram observation is a single array-bucket increment. The tracer, by
// contrast, buffers events in a growing slice (tracing is a diagnostic
// mode, not a hot-path one) and serializes them deterministically, so the
// same seed produces a byte-identical trace file.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"

	"failtrans/internal/event"
)

// HistBuckets is the number of power-of-two histogram buckets. Bucket i
// holds values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0
// holds zeros); 48 buckets cover every virtual-time duration the simulator
// can represent.
const HistBuckets = 48

// Histogram is a fixed-bucket log2 histogram of non-negative int64 values.
// Durations are observed as nanoseconds. Observe is a counter increment and
// a bucket increment — no allocation, ever.
type Histogram struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [HistBuckets]int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
}

// ObserveDuration records a virtual-time duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Merge folds histogram o into h. Buckets align exactly — every Histogram
// uses the same HistBuckets log2 layout — so merging is an elementwise sum,
// and merging per-process (or per-run) histograms is equivalent to having
// observed every value into one histogram. Merge(nil) is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range o.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile returns the upper bound of the bucket containing quantile q in
// [0,1] — a conservative estimate with power-of-two resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			if i == 0 {
				return 0
			}
			ub := int64(1) << uint(i)
			if ub > h.Max || ub < 0 {
				ub = h.Max
			}
			return ub
		}
	}
	return h.Max
}

// ProcMetrics is one process's fixed-slot counter block. Every field is
// updated by plain increments on paths that must not allocate.
type ProcMetrics struct {
	// Events counts recorded events by kind (internal, visible, send,
	// receive, commit, crash).
	Events [event.KindCount]int64
	// EffectivelyND counts events still non-deterministic after logging;
	// Logged counts ND events whose result went to the persistent log.
	EffectivelyND int64
	Logged        int64

	// Commits / CommitBytes / CommitPages account the Discount Checking
	// commit path; CommitLatency is the per-commit virtual-time cost and
	// CommitSize the per-commit dirty payload in bytes. CommitsVetoed
	// counts commits a CommitVeto policy deferred.
	Commits       int64
	CommitBytes   int64
	CommitPages   int64
	CommitsVetoed int64
	CommitLatency Histogram
	CommitSize    Histogram

	// LogForces counts synchronous log-force points; LogForceLatency is
	// their virtual-time cost.
	LogForces       int64
	LogForceLatency Histogram

	// Rollbacks counts recoveries; RolledBackEvents sums the events
	// discarded by them; RollbackDepth is the per-recovery distribution of
	// that depth (events since the last commit).
	Rollbacks        int64
	RolledBackEvents int64
	RollbackDepth    Histogram
	// ReplayedEvents counts events executed under constrained re-execution
	// (the recovery tax the paper's timelines visualize).
	ReplayedEvents int64

	// Crashes counts crash events (stop failures, panics, refused commits).
	Crashes int64

	// Syscalls counts kernel calls served for this process.
	Syscalls int64

	// InboxPeak is a gauge: the deepest the process's inbox ever got.
	InboxPeak int64
}

// VistaMetrics is one segment's fixed-slot counter block, updated from the
// vista page-diff/undo-log hot path (plain increments only). Coordinated
// commits diff different processes' segments in parallel goroutines, so the
// registry keeps one block per process and each segment touches only its
// own.
type VistaMetrics struct {
	Commits      int64
	Rollbacks    int64
	PagesDirtied int64
	UndoBytes    int64
	// HashHits counts clean pages skipped via the per-page hash cache;
	// HashMisses counts pages that fell back to the byte comparison.
	HashHits   int64
	HashMisses int64
	// PagesPrivatized counts pages a copy-on-write fork copied out of its
	// frozen template on first touch; BytesCOW totals the bytes copied.
	PagesPrivatized int64
	BytesCOW        int64
}

// Metrics is the per-run registry. All slots are preallocated by NewMetrics
// so instrumented hot paths never allocate; the syscall-by-name map is the
// one exception and is touched only on the (cold) kernel dispatch path.
type Metrics struct {
	Procs []ProcMetrics
	Vista []VistaMetrics

	// Steps counts scheduler decisions; TwoPhaseRounds counts coordinated
	// commit rounds.
	Steps          int64
	TwoPhaseRounds int64

	// SchedUpdates counts readiness-index reindex operations (push, move,
	// remove) and SchedRebuilds counts full heap rebuilds (first decision
	// after construction, Init, or Fork). Zero under the scan scheduler.
	SchedUpdates  int64
	SchedRebuilds int64

	// FaultWindows / FaultCorruptions / KernelPanics account the kernel
	// fault-injection study.
	FaultWindows     int64
	FaultCorruptions int64
	KernelPanics     int64

	// SyscallByName counts kernel calls per syscall name.
	SyscallByName map[string]int64
}

// NewMetrics returns a registry with n preallocated per-process slots.
func NewMetrics(n int) *Metrics {
	return &Metrics{
		Procs:         make([]ProcMetrics, n),
		Vista:         make([]VistaMetrics, n),
		SyscallByName: make(map[string]int64),
	}
}

// merge folds one process block into another (counter sums, gauge max,
// histogram merges).
func (p *ProcMetrics) merge(o *ProcMetrics) {
	for i := range o.Events {
		p.Events[i] += o.Events[i]
	}
	p.EffectivelyND += o.EffectivelyND
	p.Logged += o.Logged
	p.Commits += o.Commits
	p.CommitBytes += o.CommitBytes
	p.CommitPages += o.CommitPages
	p.CommitsVetoed += o.CommitsVetoed
	p.CommitLatency.Merge(&o.CommitLatency)
	p.CommitSize.Merge(&o.CommitSize)
	p.LogForces += o.LogForces
	p.LogForceLatency.Merge(&o.LogForceLatency)
	p.Rollbacks += o.Rollbacks
	p.RolledBackEvents += o.RolledBackEvents
	p.RollbackDepth.Merge(&o.RollbackDepth)
	p.ReplayedEvents += o.ReplayedEvents
	p.Crashes += o.Crashes
	p.Syscalls += o.Syscalls
	if o.InboxPeak > p.InboxPeak {
		p.InboxPeak = o.InboxPeak
	}
}

// merge folds one segment block into another.
func (v *VistaMetrics) merge(o *VistaMetrics) {
	v.Commits += o.Commits
	v.Rollbacks += o.Rollbacks
	v.PagesDirtied += o.PagesDirtied
	v.UndoBytes += o.UndoBytes
	v.HashHits += o.HashHits
	v.HashMisses += o.HashMisses
	v.PagesPrivatized += o.PagesPrivatized
	v.BytesCOW += o.BytesCOW
}

// Merge folds registry o into m: counters sum, gauges take the max,
// histograms merge bucket-for-bucket, and per-process slots pair up by
// index (m grows if o has more processes). Merging per-run registries is
// how a campaign aggregates observability across runs that each carried
// their own registry. Merge(nil) is a no-op.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	for len(m.Procs) < len(o.Procs) {
		m.Procs = append(m.Procs, ProcMetrics{})
	}
	for i := range o.Procs {
		m.Procs[i].merge(&o.Procs[i])
	}
	for len(m.Vista) < len(o.Vista) {
		m.Vista = append(m.Vista, VistaMetrics{})
	}
	for i := range o.Vista {
		m.Vista[i].merge(&o.Vista[i])
	}
	m.Steps += o.Steps
	m.TwoPhaseRounds += o.TwoPhaseRounds
	m.SchedUpdates += o.SchedUpdates
	m.SchedRebuilds += o.SchedRebuilds
	m.FaultWindows += o.FaultWindows
	m.FaultCorruptions += o.FaultCorruptions
	m.KernelPanics += o.KernelPanics
	if m.SyscallByName == nil {
		m.SyscallByName = make(map[string]int64)
	}
	for name, c := range o.SyscallByName {
		m.SyscallByName[name] += c
	}
}

// Syscall counts one kernel call for process pid under the given name.
func (m *Metrics) Syscall(pid int, name string) {
	if pid >= 0 && pid < len(m.Procs) {
		m.Procs[pid].Syscalls++
	}
	m.SyscallByName[name]++
}

// writeHist renders one histogram line.
func writeHist(w io.Writer, indent, name string, h *Histogram) {
	fmt.Fprintf(w, "%s%s count=%d sum=%d mean=%d p50=%d p99=%d max=%d\n",
		indent, name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
}

// WriteSnapshot writes a deterministic, human-readable snapshot of every
// counter, gauge and histogram: same counters in, byte-identical snapshot
// out. Field order is fixed and the one map is emitted sorted.
func (m *Metrics) WriteSnapshot(w io.Writer) error {
	fmt.Fprintf(w, "# failtrans metrics snapshot (procs=%d)\n", len(m.Procs))
	fmt.Fprintf(w, "steps %d\n", m.Steps)
	fmt.Fprintf(w, "two_phase_rounds %d\n", m.TwoPhaseRounds)
	fmt.Fprintf(w, "sched_updates %d\n", m.SchedUpdates)
	fmt.Fprintf(w, "sched_rebuilds %d\n", m.SchedRebuilds)
	fmt.Fprintf(w, "fault_windows %d\n", m.FaultWindows)
	fmt.Fprintf(w, "fault_corruptions %d\n", m.FaultCorruptions)
	fmt.Fprintf(w, "kernel_panics %d\n", m.KernelPanics)
	names := make([]string, 0, len(m.SyscallByName))
	for name := range m.SyscallByName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "syscall %s %d\n", name, m.SyscallByName[name])
	}
	for i := range m.Procs {
		p := &m.Procs[i]
		fmt.Fprintf(w, "proc %d\n", i)
		fmt.Fprintf(w, "  events internal=%d visible=%d send=%d receive=%d commit=%d crash=%d\n",
			p.Events[event.Internal], p.Events[event.Visible], p.Events[event.Send],
			p.Events[event.Receive], p.Events[event.Commit], p.Events[event.Crash])
		fmt.Fprintf(w, "  effectively_nd %d\n", p.EffectivelyND)
		fmt.Fprintf(w, "  logged %d\n", p.Logged)
		fmt.Fprintf(w, "  commits %d bytes=%d pages=%d vetoed=%d\n", p.Commits, p.CommitBytes, p.CommitPages, p.CommitsVetoed)
		writeHist(w, "  ", "commit_latency_ns", &p.CommitLatency)
		writeHist(w, "  ", "commit_size_bytes", &p.CommitSize)
		fmt.Fprintf(w, "  log_forces %d\n", p.LogForces)
		writeHist(w, "  ", "log_force_latency_ns", &p.LogForceLatency)
		fmt.Fprintf(w, "  rollbacks %d rolled_back_events=%d replayed_events=%d\n",
			p.Rollbacks, p.RolledBackEvents, p.ReplayedEvents)
		writeHist(w, "  ", "rollback_depth_events", &p.RollbackDepth)
		fmt.Fprintf(w, "  crashes %d\n", p.Crashes)
		fmt.Fprintf(w, "  syscalls %d\n", p.Syscalls)
		fmt.Fprintf(w, "  inbox_peak %d\n", p.InboxPeak)
	}
	for i := range m.Vista {
		v := &m.Vista[i]
		fmt.Fprintf(w, "vista %d commits=%d rollbacks=%d pages_dirtied=%d undo_bytes=%d hash_hits=%d hash_misses=%d pages_privatized=%d bytes_cow=%d\n",
			i, v.Commits, v.Rollbacks, v.PagesDirtied, v.UndoBytes, v.HashHits, v.HashMisses, v.PagesPrivatized, v.BytesCOW)
	}
	return nil
}

// Snapshot returns WriteSnapshot's output as a byte slice.
func (m *Metrics) Snapshot() []byte {
	var b sliceWriter
	m.WriteSnapshot(&b)
	return b
}

type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) { *s = append(*s, p...); return len(p), nil }

// RunSummary condenses a registry into the compact per-experiment metrics
// block embedded in machine-readable reports (ftbench -json).
type RunSummary struct {
	Events          int64 `json:"events"`
	EffectivelyND   int64 `json:"effectively_nd"`
	Syscalls        int64 `json:"syscalls"`
	Commits         int64 `json:"commits"`
	CommitBytes     int64 `json:"commit_bytes"`
	CommitP50Ns     int64 `json:"commit_p50_ns"`
	CommitMaxNs     int64 `json:"commit_max_ns"`
	LogForces       int64 `json:"log_forces"`
	Rollbacks       int64 `json:"rollbacks"`
	ReplayedEvents  int64 `json:"replayed_events"`
	TwoPhaseRounds  int64 `json:"two_phase_rounds"`
	VistaPagesDirty int64 `json:"vista_pages_dirtied"`
	VistaHashHits   int64 `json:"vista_hash_hits"`
}

// Summarize rolls the registry up across processes.
func (m *Metrics) Summarize() RunSummary {
	var s RunSummary
	s.TwoPhaseRounds = m.TwoPhaseRounds
	var lat Histogram
	for i := range m.Procs {
		p := &m.Procs[i]
		for _, c := range p.Events {
			s.Events += c
		}
		s.EffectivelyND += p.EffectivelyND
		s.Syscalls += p.Syscalls
		s.Commits += p.Commits
		s.CommitBytes += p.CommitBytes
		s.LogForces += p.LogForces
		s.Rollbacks += p.Rollbacks
		s.ReplayedEvents += p.ReplayedEvents
		lat.Count += p.CommitLatency.Count
		lat.Sum += p.CommitLatency.Sum
		if p.CommitLatency.Max > lat.Max {
			lat.Max = p.CommitLatency.Max
		}
		for b := range p.CommitLatency.Buckets {
			lat.Buckets[b] += p.CommitLatency.Buckets[b]
		}
	}
	for i := range m.Vista {
		s.VistaPagesDirty += m.Vista[i].PagesDirtied
		s.VistaHashHits += m.Vista[i].HashHits
	}
	s.CommitP50Ns = lat.Quantile(0.50)
	s.CommitMaxNs = lat.Max
	return s
}
