package cowcheck_test

import (
	"testing"

	"failtrans/internal/analysis/analysistest"
	"failtrans/internal/analysis/cowcheck"
)

// TestCowcheck runs the pass over its golden fixture: the PR 6 nvi bug in
// miniature (insertBad), branch/loop dominance, same-statement and
// both-arms privatization, the copy/append/mutator store classes, the
// receiver-mismatch rule, fresh-object and privatizer-body exemptions, a
// "none"-payload field, a cowok suppression — and, via cowclient, that
// field facts propagate to stores in a dependent package.
func TestCowcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", cowcheck.New(), "cow", "cowclient")
}
