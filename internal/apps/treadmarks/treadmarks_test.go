package treadmarks

import (
	"math"
	"testing"
	"time"

	"failtrans/internal/dc"
	"failtrans/internal/event"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

func TestBodyCodecRoundTrip(t *testing.T) {
	b := Body{1.5, -2.25, 3, 0.125, -7, 42, 1.001}
	buf := make([]byte, BodySize)
	EncodeBody(buf, b)
	if got := DecodeBody(buf); got != b {
		t.Errorf("round trip = %+v", got)
	}
}

func TestOctreeCountAndMass(t *testing.T) {
	bodies := InitBodies(100)
	tree := BuildTree(bodies)
	if got := tree.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	var mass float64
	for _, b := range bodies {
		mass += b.Mass
	}
	if math.Abs(tree.Mass-mass) > 1e-9 {
		t.Errorf("tree mass %f != %f", tree.Mass, mass)
	}
}

func TestOctreeForceSymmetryTwoBodies(t *testing.T) {
	a := Body{X: 0, Mass: 1}
	b := Body{X: 2, Mass: 1}
	tree := BuildTree([]Body{a, b})
	ax, _, _ := tree.Force(a)
	bx, _, _ := tree.Force(b)
	if ax <= 0 || bx >= 0 {
		t.Errorf("forces should attract: a %.4f, b %.4f", ax, bx)
	}
	if math.Abs(ax+bx) > 1e-9 {
		t.Errorf("two-body forces should be equal and opposite: %f vs %f", ax, bx)
	}
}

func TestForceApproximatesDirectSum(t *testing.T) {
	bodies := InitBodies(200)
	tree := BuildTree(bodies)
	// Compare the tree force on a body against the exact direct sum.
	target := bodies[17]
	var ex, ey, ez float64
	for i, o := range bodies {
		if i == 17 {
			continue
		}
		dx, dy, dz := o.X-target.X, o.Y-target.Y, o.Z-target.Z
		d2 := dx*dx + dy*dy + dz*dz + soften*soften
		d := math.Sqrt(d2)
		f := gravity * o.Mass / (d2 * d)
		ex += f * dx
		ey += f * dy
		ez += f * dz
	}
	ax, ay, az := tree.Force(target)
	mag := math.Sqrt(ex*ex + ey*ey + ez*ez)
	err := math.Sqrt((ax-ex)*(ax-ex) + (ay-ey)*(ay-ey) + (az-ez)*(az-ez))
	if err/mag > 0.05 {
		t.Errorf("tree force off by %.1f%% from direct sum", 100*err/mag)
	}
}

func TestEnergyRoughlyConserved(t *testing.T) {
	bodies := InitBodies(64)
	e0 := TotalEnergy(bodies)
	for it := 0; it < 10; it++ {
		copy(bodies, StepBodies(bodies, 0, len(bodies)))
	}
	e1 := TotalEnergy(bodies)
	if math.Abs(e1-e0) > 0.2*math.Abs(e0) {
		t.Errorf("energy drifted %f -> %f", e0, e1)
	}
}

// --- DSM tests ---

func runFleet(t *testing.T, nbodies, iters int, seed int64) (*sim.World, []*TM) {
	t.Helper()
	progs, err := Fleet(4, nbodies, iters)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld(seed, progs...)
	w.MaxSteps = 5_000_000
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	tms := make([]*TM, 4)
	for i := range tms {
		tms[i] = w.Procs[i].Prog.(*TM)
	}
	return w, tms
}

// TestDSMMatchesSequentialOracle is the core correctness test: the
// four-process DSM run produces bit-identical physics to the sequential
// oracle.
func TestDSMMatchesSequentialOracle(t *testing.T) {
	const nbodies, iters = 72, 5
	w, tms := runFleet(t, nbodies, iters, 3)
	if !w.AllDone() {
		for _, p := range w.Procs {
			t.Logf("%s: %v", p.Prog.Name(), p.Status())
		}
		t.Fatal("fleet did not finish")
	}
	oracle := SequentialOracle(nbodies, iters)
	for pi, tm := range tms {
		final := tm.FinalBodies()
		for i, b := range final {
			want := oracle[tm.Lo+i]
			if b != want {
				t.Fatalf("proc %d body %d = %+v, want %+v", pi, tm.Lo+i, b, want)
			}
		}
	}
	// The DSM generated real traffic.
	var faults int64
	for _, tm := range tms {
		faults += tm.DSM.Faults
	}
	if faults < int64(iters)*4 {
		t.Errorf("only %d page faults; DSM traffic looks wrong", faults)
	}
}

func TestDSMEventShape(t *testing.T) {
	w, _ := runFleet(t, 72, 3, 9)
	var sends, recvs, visibles int
	for _, e := range w.Trace.Events {
		switch e.Kind {
		case event.Send:
			sends++
		case event.Receive:
			recvs++
		case event.Visible:
			visibles++
		}
	}
	// Copious messaging, almost no visible output — the paper's
	// characterization of TreadMarks.
	if sends < 100 || recvs < 100 {
		t.Errorf("sends=%d recvs=%d; expected copious messaging", sends, recvs)
	}
	if visibles > 3 {
		t.Errorf("visibles=%d; expected almost none", visibles)
	}
	if sends != recvs {
		t.Errorf("sends %d != recvs %d (lost messages?)", sends, recvs)
	}
}

func TestTMStateRoundTrip(t *testing.T) {
	_, tms := runFleet(t, 72, 2, 5)
	img, err := tms[1].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var tm2 TM
	if err := tm2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if tm2.DSM.Me != 1 || tm2.Iter != tms[1].Iter || len(tm2.Bodies) != 72 {
		t.Error("state diverged")
	}
	if err := tm2.UnmarshalState([]byte{1, 2}); err == nil {
		t.Error("garbage must fail")
	}
}

func TestNewRejectsUnevenPartition(t *testing.T) {
	if _, err := New(0, 4, 71, 1); err == nil {
		t.Error("71 bodies across 4 procs must be rejected")
	}
}

// TestDSMSurvivesStopFailures: crash two processes mid-run under CPVS and
// CBNDV-2PC; physics must still match the oracle exactly.
func TestDSMSurvivesStopFailures(t *testing.T) {
	const nbodies, iters = 72, 4
	oracle := SequentialOracle(nbodies, iters)
	for _, pol := range []protocol.Policy{protocol.CPVS, protocol.CBNDV2PC, protocol.CANDLog} {
		progs, err := Fleet(4, nbodies, iters)
		if err != nil {
			t.Fatal(err)
		}
		w := sim.NewWorld(3, progs...)
		w.MaxSteps = 5_000_000
		d := dc.New(w, pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(1, 20)
		w.ScheduleStop(3, 60)
		if err := w.Run(); err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		if !w.AllDone() {
			for _, p := range w.Procs {
				t.Logf("%s: %v (crashes %d)", p.Prog.Name(), p.Status(), p.Crashes)
			}
			t.Errorf("%s: fleet did not finish after failures", pol.Name)
			continue
		}
		if d.Stats.Recoveries < 2 {
			t.Errorf("%s: recoveries = %d", pol.Name, d.Stats.Recoveries)
		}
		for pi := 0; pi < 4; pi++ {
			tm := w.Procs[pi].Prog.(*TM)
			for i, b := range tm.FinalBodies() {
				if want := oracle[tm.Lo+i]; b != want {
					t.Errorf("%s: proc %d body %d diverged from oracle", pol.Name, pi, tm.Lo+i)
					break
				}
			}
		}
	}
}

// TestTwoPhaseWinsForTreadMarks reproduces the paper's observation that 2PC
// protocols are the big win for TreadMarks: with visible events rare, the
// 2PC variants commit far less than commit-before-send ones.
func TestTwoPhaseWinsForTreadMarks(t *testing.T) {
	run := func(pol protocol.Policy) (int, time.Duration) {
		progs, err := Fleet(4, 72, 3)
		if err != nil {
			t.Fatal(err)
		}
		w := sim.NewWorld(3, progs...)
		w.MaxSteps = 5_000_000
		w.RecordTrace = false
		d := dc.New(w, pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats.TotalCheckpoints(), w.Clock
	}
	cpvsCkpts, _ := run(protocol.CPVS)
	tpcCkpts, _ := run(protocol.CBNDV2PC)
	if tpcCkpts*5 > cpvsCkpts {
		t.Errorf("CBNDV-2PC ckpts %d should be well below CPVS %d", tpcCkpts, cpvsCkpts)
	}
}
