package kernel

import (
	"time"

	"failtrans/internal/sim"
)

// ForkOS implements sim.ForkableOS: it deep-copies every node — filesystem
// contents, open-file tables, fault window, corruption counters — into a
// new kernel wired to the forked world's clock. The Metrics/Tracer sinks
// and the OnCorrupt/OnPanic callbacks do not carry over: they are per-run
// harness wiring, and the original's callbacks would observe the wrong
// world. An open fault window forks with traced cleared, since the fork has
// no tracer holding the matching Begin.
func (k *Kernel) ForkOS(clock func() time.Duration) sim.OS {
	nk := &Kernel{Clock: clock, nodes: make(map[int]*node, len(k.nodes))}
	for pid, n := range k.nodes {
		nn := &node{
			fs:      make(map[string][]byte, len(n.fs)),
			fds:     make(map[int]*fdEntry, len(n.fds)),
			nextFD:  n.nextFD,
			fdLimit: n.fdLimit,
			edits:   n.edits,
			Syscall: n.Syscall,
		}
		for path, data := range n.fs {
			nn.fs[path] = append([]byte(nil), data...)
		}
		for fd, e := range n.fds {
			nn.fds[fd] = &fdEntry{Path: e.Path, Offset: e.Offset}
		}
		if n.fault != nil {
			nn.fault = &kernelFault{
				start:     n.fault.start,
				window:    n.fault.window,
				corrupted: n.fault.corrupted,
				panicked:  n.fault.panicked,
			}
		}
		nk.nodes[pid] = nn
	}
	return nk
}
