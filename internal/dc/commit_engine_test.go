package dc

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// idleProg is a program whose state never changes and whose MarshalState
// reuses one buffer, so a commit of it measures pure commit-engine cost.
type idleProg struct {
	buf   []byte
	state [64]byte
}

func (p *idleProg) Name() string            { return "idle" }
func (p *idleProg) Init(ctx *sim.Ctx) error { p.buf = make([]byte, 0, 256); return nil }
func (p *idleProg) Step(ctx *sim.Ctx) sim.Status {
	return sim.Done
}
func (p *idleProg) MarshalState() ([]byte, error) {
	return append(p.buf[:0], p.state[:]...), nil
}
func (p *idleProg) UnmarshalState(d []byte) error { copy(p.state[:], d); return nil }

// TestCommitSteadyStateZeroAllocs pins the tentpole acceptance property at
// the Discount Checking layer: a steady-state commit of an idle process —
// marshal, page diff, bookkeeping — performs zero heap allocations.
func TestCommitSteadyStateZeroAllocs(t *testing.T) {
	w := sim.NewWorld(1, &idleProg{})
	w.RecordTrace = false
	d := New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	p := w.Procs[0]
	for k := 0; k < 3; k++ { // warm the image buffer and undo pool
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("steady-state commit allocates %.1f times per run, want 0", n)
	}
}

// TestCommitSteadyStateZeroAllocsWithMetrics re-pins the zero-allocation
// acceptance property with the observability layer's per-process metrics
// attached: instrumentation must be free on the commit hot path.
func TestCommitSteadyStateZeroAllocsWithMetrics(t *testing.T) {
	w := sim.NewWorld(1, &idleProg{})
	w.RecordTrace = false
	m, _ := w.EnableObs(false)
	d := New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	p := w.Procs[0]
	for k := 0; k < 3; k++ { // warm the image buffer and undo pool
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("instrumented steady-state commit allocates %.1f times per run, want 0", n)
	}
	pm := &m.Procs[0]
	if pm.Commits == 0 || pm.CommitLatency.Count != pm.Commits {
		t.Errorf("commit metrics did not accumulate: commits=%d latency count=%d", pm.Commits, pm.CommitLatency.Count)
	}
	if m.Vista[0].Commits == 0 {
		t.Error("vista metrics slot was not wired to the segment")
	}
}

// TestParallelCoordinatedCommitDeterministic runs the requester/responder
// pair under CPV-2PC twice — once on the serial coordinated-commit path,
// once with the member page diffs fanned out to goroutines — and demands
// byte-identical traces, outputs, virtual clocks, stats, metrics snapshots
// and observability trace JSON. The parallel diff phase must not reorder or
// perturb any globally visible bookkeeping, including trace emission.
func TestParallelCoordinatedCommitDeterministic(t *testing.T) {
	type outcome struct {
		events   interface{}
		outputs  []string
		clock    time.Duration
		ckpts    int
		bytes    int64
		rounds   int
		snapshot []byte
		obsJSON  []byte
	}
	run := func(serial bool) outcome {
		w := sim.NewWorld(13, &requester{Rounds: 5}, &responder{Max: 5})
		m, tr := w.EnableObs(true)
		d := New(w, protocol.CPV2PC, stablestore.Rio)
		d.SerialCommit = serial
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return outcome{
			events:   w.Trace.Events,
			outputs:  w.GlobalOutputs,
			clock:    w.Clock,
			ckpts:    d.Stats.TotalCheckpoints(),
			bytes:    d.Stats.CommitBytes,
			rounds:   d.Stats.TwoPhaseRounds,
			snapshot: m.Snapshot(),
			obsJSON:  buf.Bytes(),
		}
	}
	serial := run(true)
	parallel := run(false)
	if serial.rounds == 0 {
		t.Fatal("workload triggered no coordinated commits; test is vacuous")
	}
	if serial.clock != parallel.clock || serial.ckpts != parallel.ckpts ||
		serial.bytes != parallel.bytes || serial.rounds != parallel.rounds {
		t.Fatalf("serial/parallel stats diverge: clock %v/%v ckpts %d/%d bytes %d/%d rounds %d/%d",
			serial.clock, parallel.clock, serial.ckpts, parallel.ckpts,
			serial.bytes, parallel.bytes, serial.rounds, parallel.rounds)
	}
	if !reflect.DeepEqual(serial.outputs, parallel.outputs) {
		t.Fatalf("outputs diverge:\nserial:   %q\nparallel: %q", serial.outputs, parallel.outputs)
	}
	if !reflect.DeepEqual(serial.events, parallel.events) {
		t.Fatal("event traces diverge between serial and parallel coordinated commits")
	}
	if !bytes.Equal(serial.snapshot, parallel.snapshot) {
		t.Errorf("metrics snapshots diverge:\nserial:\n%s\nparallel:\n%s", serial.snapshot, parallel.snapshot)
	}
	if !bytes.Equal(serial.obsJSON, parallel.obsJSON) {
		t.Error("observability trace JSON diverges between serial and parallel coordinated commits")
	}
}

// TestObsDeterministicAcrossRuns pins the acceptance property of the
// observability layer itself: the same seed produces a byte-identical
// metrics snapshot and trace JSON file, including across a crash and a
// log-constrained re-execution.
func TestObsDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]byte, []byte) {
		w := sim.NewWorld(29, &requester{Rounds: 6}, &responder{Max: 6})
		m, tr := w.EnableObs(true)
		d := New(w, protocol.CPV2PC, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, 9)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if d.Stats.Recoveries == 0 {
			t.Fatal("no recovery happened; determinism test is vacuous")
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot(), buf.Bytes()
	}
	snapA, jsonA := run()
	snapB, jsonB := run()
	if !bytes.Equal(snapA, snapB) {
		t.Errorf("same seed produced different metrics snapshots:\n%s\n---\n%s", snapA, snapB)
	}
	if !bytes.Equal(jsonA, jsonB) {
		t.Error("same seed produced different trace JSON")
	}
	if len(jsonA) == 0 || tracksIn(jsonA) < 2 {
		t.Errorf("trace JSON looks empty or untracked (%d bytes)", len(jsonA))
	}
}

// tracksIn counts thread_name metadata records in a trace JSON blob.
func tracksIn(data []byte) int {
	return bytes.Count(data, []byte(`"thread_name"`))
}
