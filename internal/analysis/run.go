package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Result is the outcome of one driver run.
type Result struct {
	// Diags holds every surviving (unsuppressed) finding, sorted by
	// position.
	Diags []Diagnostic
	// Pkgs are the loaded local packages in topological order.
	Pkgs []*Package
	// Fset positions every Diagnostic and every Pkg file.
	Fset *token.FileSet
}

type driver struct {
	fset  *token.FileSet
	index *directiveIndex
	facts map[factKey]any
	diags []Diagnostic
}

func (d *driver) report(diag Diagnostic)                 { d.diags = append(d.diags, diag) }
func (d *driver) suppressed(pos token.Pos, t string) bool { return d.index.suppressed(pos, t) }

// Run loads the packages cfg selects and applies every analyzer: each
// per-package Run in dependency order, then each Finish hook over the
// accumulated fact table. Findings suppressed by their analyzer's tag are
// filtered out; malformed directives become "directive" findings of their
// own.
func Run(cfg Config, analyzers []*Analyzer) (*Result, error) {
	l := newLoader(cfg)
	pkgs, err := l.loadAll()
	if err != nil {
		return nil, err
	}
	d := &driver{
		fset:  l.fset,
		index: newDirectiveIndex(l.fset),
		facts: make(map[factKey]any),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			d.index.addFile(f)
		}
	}
	d.index.validate(d.report)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if err := a.Run(&Pass{Analyzer: a, Pkg: pkg, driver: d}); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(&Finish{Analyzer: a, driver: d})
		}
	}
	tags := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		tags[a.Name] = a.SuppressTag
	}
	var kept []Diagnostic
	for _, diag := range d.diags {
		if d.suppressed(diag.Pos, tags[diag.Analyzer]) {
			continue
		}
		kept = append(kept, diag)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := l.fset.Position(kept[i].Pos), l.fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Message < kept[j].Message
	})
	return &Result{Diags: kept, Pkgs: pkgs, Fset: l.fset}, nil
}

// FormatDiag renders one finding the way cmd/ftlint prints it.
func FormatDiag(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// Finding is the machine-readable shape of one diagnostic, used by
// ftlint -json so CI can archive findings as an artifact.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Findings converts the result's diagnostics to their JSON shape,
// preserving the position-sorted order.
func (r *Result) Findings() []Finding {
	out := make([]Finding, len(r.Diags))
	for i, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		out[i] = Finding{
			File:     p.Filename,
			Line:     p.Line,
			Col:      p.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return out
}

// WriteJSON emits the findings as one indented JSON document:
// {"count": N, "findings": [...]}. The findings array is always present
// (empty, not null, on a clean run) so downstream jq stays simple.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := struct {
		Count    int       `json:"count"`
		Findings []Finding `json:"findings"`
	}{Count: len(r.Diags), Findings: r.Findings()}
	if doc.Findings == nil {
		doc.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
