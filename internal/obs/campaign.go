package obs

import (
	"fmt"
	"io"
	"sync"
)

// CampaignWorkerMetrics is one campaign worker's fixed-slot counter block.
// Each slot is written only by its own worker goroutine while the campaign
// runs and read only after the pool has drained, so plain increments are
// race-free.
type CampaignWorkerMetrics struct {
	// Runs counts the jobs this worker executed, whether their results
	// were later accepted or discarded as speculative overshoot.
	Runs int64
}

// CampaignMetrics accounts a campaign executor's work: how many runs were
// dispatched speculatively, how many were accepted in serial order, and how
// many were overshoot past the early-exit point the equivalent serial loop
// would have stopped at. The per-worker distribution depends on goroutine
// scheduling and is diagnostic only; the accepted totals are deterministic.
type CampaignMetrics struct {
	Workers []CampaignWorkerMetrics

	// Phases counts ordered-acceptance loops executed (one per fault kind
	// in a study, one per application in a Figure 8 sweep).
	Phases int64
	// Dispatched counts runs handed to workers; Accepted counts results
	// consumed in serial run order; Discarded counts speculative overshoot
	// thrown away after an early exit.
	Dispatched int64
	Accepted   int64
	Discarded  int64
	// SerialRuns counts runs executed on the serial (single-worker) path.
	SerialRuns int64

	// Snapshot accounts the prefix-snapshot cache when a study runs with
	// snapshots enabled.
	Snapshot SnapshotMetrics
}

// SnapshotMetrics accounts the snapshot/fork engine's work for a campaign.
// Unlike the per-worker counter blocks, forks are served to whichever
// worker asks, so the counters are mutex-guarded. Fork and StepsSaved
// totals count every fork served, including speculative overshoot runs
// whose results were later discarded, so they vary with the worker count
// (diagnostic, like the per-worker run distribution).
type SnapshotMetrics struct {
	mu sync.Mutex
	// Snapshots counts snapshots captured from template runs.
	Snapshots int64
	// Forks counts worlds forked from a snapshot.
	Forks int64
	// StepsSaved totals the clean-prefix steps the forks did not have to
	// re-execute (the snapshot's step count, per fork).
	StepsSaved int64
	// ForkLatency distributes wall-clock fork cost in nanoseconds. Only
	// populated when the study was handed a wall clock (the deterministic
	// core cannot read one itself).
	ForkLatency Histogram
	// StepsReplayed totals the clean-prefix steps injection runs actually
	// re-executed before fault activation; InjectionRuns counts the runs
	// (activated faults only). Both study modes update them — a
	// from-scratch run replays its whole prefix, a fork only the tail past
	// its snapshot — so the pair quantifies what memoization saves.
	StepsReplayed int64
	InjectionRuns int64
	// PagesPrivatized and BytesCOW total the copy-on-write cost the
	// campaign's forks paid: pages copied out of frozen templates on first
	// touch and the bytes moved doing so. ForkSize distributes that cost
	// per fork (bytes privatized over the fork's whole run), so the COW
	// win — forks that touch a sliver of the template — is visible in
	// metrics, not just the benchmark row.
	PagesPrivatized int64
	BytesCOW        int64
	ForkSize        Histogram
	// StoreHits and StoreMisses account the content-addressed snapshot
	// store: a hit reuses a memoized template's snapshot cache outright, a
	// miss builds (and publishes) a new one.
	StoreHits   int64
	StoreMisses int64
}

// AddSnapshot records one captured snapshot.
func (s *SnapshotMetrics) AddSnapshot() {
	s.mu.Lock()
	s.Snapshots++
	s.mu.Unlock()
}

// AddFork records one served fork: the steps its run did not re-execute
// and, when ns >= 0, the wall-clock fork latency.
func (s *SnapshotMetrics) AddFork(stepsSaved int, ns int64) {
	s.mu.Lock()
	s.Forks++
	s.StepsSaved += int64(stepsSaved)
	if ns >= 0 {
		s.ForkLatency.Observe(ns)
	}
	s.mu.Unlock()
}

// AddCOW records one finished fork's copy-on-write cost: the pages it
// privatized out of its frozen template and the bytes copied doing so.
func (s *SnapshotMetrics) AddCOW(pages int, bytes int64) {
	s.mu.Lock()
	s.PagesPrivatized += int64(pages)
	s.BytesCOW += bytes
	s.ForkSize.Observe(bytes)
	s.mu.Unlock()
}

// AddStoreHit records a snapshot-store lookup that reused a memoized
// template; AddStoreMiss records one that had to build it.
func (s *SnapshotMetrics) AddStoreHit() {
	s.mu.Lock()
	s.StoreHits++
	s.mu.Unlock()
}

// AddStoreMiss records a snapshot-store lookup that found no memoized
// template.
func (s *SnapshotMetrics) AddStoreMiss() {
	s.mu.Lock()
	s.StoreMisses++
	s.mu.Unlock()
}

// AddReplay records one activated injection run that re-executed `steps`
// clean-prefix steps before its fault fired.
func (s *SnapshotMetrics) AddReplay(steps int) {
	s.mu.Lock()
	s.StepsReplayed += int64(steps)
	s.InjectionRuns++
	s.mu.Unlock()
}

// ReplaySnapshot returns the current replay totals (the campaign workers
// update them concurrently).
func (s *SnapshotMetrics) ReplaySnapshot() (stepsReplayed, injectionRuns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.StepsReplayed, s.InjectionRuns
}

// NewCampaignMetrics returns a registry with one preallocated slot per
// worker.
func NewCampaignMetrics(workers int) *CampaignMetrics {
	if workers < 1 {
		workers = 1
	}
	return &CampaignMetrics{Workers: make([]CampaignWorkerMetrics, workers)}
}

// WriteSummary writes a human-readable summary block.
func (c *CampaignMetrics) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w, "campaign phases=%d dispatched=%d accepted=%d discarded=%d serial=%d\n",
		c.Phases, c.Dispatched, c.Accepted, c.Discarded, c.SerialRuns)
	if err != nil {
		return err
	}
	for i := range c.Workers {
		if _, err := fmt.Fprintf(w, "  worker %d runs=%d\n", i, c.Workers[i].Runs); err != nil {
			return err
		}
	}
	s := &c.Snapshot
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Snapshots > 0 || s.Forks > 0 {
		if _, err := fmt.Fprintf(w, "  snapshots=%d forks=%d steps-saved=%d fork-latency-mean=%dns\n",
			s.Snapshots, s.Forks, s.StepsSaved, s.ForkLatency.Mean()); err != nil {
			return err
		}
	}
	if s.PagesPrivatized > 0 || s.BytesCOW > 0 || s.StoreHits > 0 || s.StoreMisses > 0 {
		if _, err := fmt.Fprintf(w, "  cow pages-privatized=%d bytes-copied=%d fork-size-mean=%dB fork-size-p99=%dB store-hits=%d store-misses=%d\n",
			s.PagesPrivatized, s.BytesCOW, s.ForkSize.Mean(), s.ForkSize.Quantile(0.99), s.StoreHits, s.StoreMisses); err != nil {
			return err
		}
	}
	return nil
}
