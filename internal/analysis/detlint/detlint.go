// Package detlint forbids nondeterminism sources inside the simulator's
// deterministic core. The whole evaluation method rests on runs being
// deterministic state-machine replays — the campaign runner's serial/parallel
// equivalence and the trace exporter's byte-identical contract both diff
// outputs across executions — so any wall-clock read, globally-seeded RNG
// draw, or map-iteration-ordered output silently breaks the experiments'
// credibility even when every test still passes.
//
// Three rules, checked only in the configured deterministic-core packages:
//
//  1. No wall clock: calls to time.Now, time.Since, or time.Until, and no
//     wall-clock timers — time.After, time.Tick, time.AfterFunc,
//     time.NewTimer, time.NewTicker. The simulator owns a virtual clock;
//     wall-clock reads and timer fires diverge run to run. os.Getpid and
//     os.Getppid are banned for the same reason: process identity is a
//     per-run hash/RNG seed in disguise.
//  2. No global math/rand: calls to math/rand (or math/rand/v2)
//     package-level functions, whose shared RNG is seeded per process.
//     Deterministic locals built with rand.New(rand.NewSource(seed)) are
//     the sanctioned pattern and are not flagged.
//  3. No map-ordered output: a `range` statement over a map whose body
//     writes to an output sink (fmt formatting, io.WriteString, a Write/
//     WriteString/Encode method, encoding/json) emits bytes in Go's
//     randomized map order. Collect and sort the keys first (see
//     sim.Proc.AppendCheckpointImage for the idiom).
//
// A finding is silenced by `//failtrans:nondet <reason>` on the same line
// or the line above; the reason is mandatory.
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"failtrans/internal/analysis"
)

// New returns the detlint analyzer restricted to the given package paths
// (each matches itself and its subpackages).
func New(restricted ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "detlint",
		Doc:         "forbid wall-clock, global-RNG and map-ordered-output nondeterminism in the deterministic core",
		SuppressTag: analysis.TagNondet,
		Run: func(pass *analysis.Pass) error {
			run(pass, restricted)
			return nil
		},
	}
}

func restrictedPkg(path string, restricted []string) bool {
	for _, r := range restricted {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, restricted []string) {
	if !restrictedPkg(pass.Pkg.Path, restricted) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, info, n)
			case *ast.RangeStmt:
				checkMapRange(pass, info, n)
			}
			return true
		})
	}
}

// allowedRandFuncs are the math/rand package-level functions that build
// explicitly-seeded deterministic generators rather than drawing from the
// shared one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"call to time.%s reads the wall clock; the deterministic core must use the simulator's virtual clock", fn.Name())
		case "After", "Tick", "AfterFunc", "NewTimer", "NewTicker":
			pass.Reportf(call.Pos(),
				"call to time.%s arms a wall-clock runtime timer; the deterministic core must schedule through the simulator's virtual clock", fn.Name())
		}
	case "os":
		if fn.Name() == "Getpid" || fn.Name() == "Getppid" {
			pass.Reportf(call.Pos(),
				"call to os.%s leaks process identity (a per-run hash/RNG seed in disguise); derive seeds from the campaign's seed chain", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to global %s.%s draws from the shared nondeterministically-seeded RNG; use a local rand.New(rand.NewSource(seed))", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `range` over a map whose body writes to an output
// sink: the emitted byte order then depends on Go's randomized map
// iteration.
func checkMapRange(pass *analysis.Pass, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sink := sinkName(info, call); sink != "" {
			pass.Reportf(rng.Pos(),
				"range over map feeds output through %s in nondeterministic iteration order; collect and sort the keys first", sink)
			return false
		}
		return true
	})
}

// sinkMethods are method names that emit bytes into an output stream.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
}

// sinkName classifies a call as an output sink, returning a printable name
// ("" when it is not one).
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		switch fn.Pkg().Path() {
		case "fmt":
			if strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Sprint") ||
				strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Append") {
				return "fmt." + fn.Name()
			}
		case "io":
			if fn.Name() == "WriteString" || fn.Name() == "Copy" {
				return "io." + fn.Name()
			}
		case "encoding/json":
			return "json." + fn.Name()
		}
		return ""
	}
	if sinkMethods[fn.Name()] {
		return "(" + sig.Recv().Type().String() + ")." + fn.Name()
	}
	return ""
}
