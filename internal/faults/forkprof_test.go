package faults

import (
	"testing"
)

// BenchmarkWorldForkCOW measures forking a frozen mid-session template —
// the operation the campaign performs once per injection run.
func BenchmarkWorldForkCOW(b *testing.B) {
	s := NewAppStudy("nvi")
	s.WallClock = nil
	c, err := s.buildPrefixCache()
	if err != nil {
		b.Fatal(err)
	}
	if len(c.snaps) == 0 {
		b.Fatal("no snapshots")
	}
	snap := &c.snaps[len(c.snaps)/2]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := snap.world.Fork(); err != nil {
			b.Fatal(err)
		}
	}
}
