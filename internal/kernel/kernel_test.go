package kernel

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"failtrans/internal/event"
)

func call(t *testing.T, k *Kernel, pid int, name string, args ...[]byte) [][]byte {
	t.Helper()
	ret, _, err := k.Call(pid, name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return ret
}

func TestOpenReadWrite(t *testing.T) {
	k := New()
	fd := Int(call(t, k, 0, "open", []byte("f"), []byte{1})[0])
	call(t, k, 0, "write", I64(fd), []byte("hello world"))
	call(t, k, 0, "lseek", I64(fd), I64(0))
	got := call(t, k, 0, "read", I64(fd), I64(5))[0]
	if string(got) != "hello" {
		t.Errorf("read = %q", got)
	}
	got = call(t, k, 0, "read", I64(fd), I64(100))[0]
	if string(got) != " world" {
		t.Errorf("read rest = %q", got)
	}
	// EOF returns empty.
	got = call(t, k, 0, "read", I64(fd), I64(10))[0]
	if len(got) != 0 {
		t.Errorf("read at EOF = %q", got)
	}
	call(t, k, 0, "close", I64(fd))
	if _, _, err := k.Call(0, "read", [][]byte{I64(fd), I64(1)}); err == nil {
		t.Error("read on closed fd must fail")
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	k := New()
	if _, _, err := k.Call(0, "open", [][]byte{[]byte("nope")}); err == nil {
		t.Error("open of missing file without create must fail")
	}
}

func TestWriteAtOffsetOverwrites(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", []byte("abcdef"))
	fd := Int(call(t, k, 0, "open", []byte("f"))[0])
	call(t, k, 0, "lseek", I64(fd), I64(2))
	call(t, k, 0, "write", I64(fd), []byte("XY"))
	data, _ := k.ReadFile(0, "f")
	if string(data) != "abXYef" {
		t.Errorf("file = %q", data)
	}
}

func TestUnlinkStatTruncate(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", []byte("12345678"))
	if n := Int(call(t, k, 0, "stat", []byte("f"))[0]); n != 8 {
		t.Errorf("stat = %d", n)
	}
	call(t, k, 0, "truncate", []byte("f"), I64(3))
	if n := Int(call(t, k, 0, "stat", []byte("f"))[0]); n != 3 {
		t.Errorf("stat after truncate = %d", n)
	}
	call(t, k, 0, "unlink", []byte("f"))
	if n := Int(call(t, k, 0, "stat", []byte("f"))[0]); n != -1 {
		t.Errorf("stat after unlink = %d", n)
	}
}

func TestNodesIsolated(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", []byte("node0"))
	if _, ok := k.ReadFile(1, "f"); ok {
		t.Error("node 1 must not see node 0's files")
	}
	if files := k.Files(0); len(files) != 1 || files[0] != "f" {
		t.Errorf("Files(0) = %v", files)
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]event.NDClass{
		"gettimeofday": event.TransientND,
		"select":       event.TransientND,
		"open":         event.FixedND,
		"read":         event.Deterministic,
		"write":        event.Deterministic,
		"close":        event.Deterministic,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestFileTableLimit(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", nil)
	for i := 0; i < MaxOpenFiles; i++ {
		call(t, k, 0, "open", []byte("f"))
	}
	if _, _, err := k.Call(0, "open", [][]byte{[]byte("f")}); err == nil {
		t.Error("open beyond MaxOpenFiles must fail (the paper's fixed-ND resource)")
	}
}

func TestSaveRestoreProcState(t *testing.T) {
	k := New()
	k.WriteFile(0, "a", []byte("aaaa"))
	k.WriteFile(0, "b", []byte("bbbb"))
	fdA := Int(call(t, k, 0, "open", []byte("a"))[0])
	fdB := Int(call(t, k, 0, "open", []byte("b"))[0])
	call(t, k, 0, "lseek", I64(fdA), I64(2))
	blob := k.SaveProcState(0)

	// Scramble: close everything, move offsets.
	call(t, k, 0, "close", I64(fdA))
	call(t, k, 0, "lseek", I64(fdB), I64(4))

	k.RestoreProcState(0, blob)
	// fdA must be back with its offset.
	got := call(t, k, 0, "read", I64(fdA), I64(2))[0]
	if string(got) != "aa" {
		t.Errorf("restored fdA read = %q", got)
	}
	got = call(t, k, 0, "read", I64(fdB), I64(4))[0]
	if string(got) != "bbbb" {
		t.Errorf("restored fdB read = %q (offset should be 0)", got)
	}
}

func TestRestoreEmptyBlob(t *testing.T) {
	k := New()
	k.RestoreProcState(0, nil) // must not panic
	if got := k.SaveProcState(0); Int(got[0:8]) != 0 {
		t.Errorf("fresh node should have empty fd table")
	}
}

func TestFaultCorruptionWindow(t *testing.T) {
	now := time.Duration(0)
	k := New()
	k.Clock = func() time.Duration { return now }
	var corrupted []int
	k.OnCorrupt = func(pid int) { corrupted = append(corrupted, pid) }
	var panicked []int
	k.OnPanic = func(pid int) { panicked = append(panicked, pid) }

	k.WriteFile(0, "f", []byte("AAAAAAAA"))
	fd := Int(call(t, k, 0, "open", []byte("f"))[0])
	k.InjectFault(0, 10*time.Millisecond)

	// Within the window: results are corrupted.
	got := call(t, k, 0, "read", I64(fd), I64(8))[0]
	if bytes.Equal(got, []byte("AAAAAAAA")) {
		t.Error("read inside fault window should be corrupted")
	}
	if len(corrupted) != 1 || corrupted[0] != 0 {
		t.Errorf("OnCorrupt calls = %v", corrupted)
	}
	if !k.FaultCorrupted(0) {
		t.Error("FaultCorrupted must report true")
	}

	// After the window: node panics.
	now = 20 * time.Millisecond
	_, _, err := k.Call(0, "read", [][]byte{I64(fd), I64(1)})
	if !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("err = %v, want ErrNodeCrashed", err)
	}
	if len(panicked) != 1 {
		t.Errorf("OnPanic calls = %v", panicked)
	}

	// Reboot clears the panic; the file table is gone but files remain.
	k.Reboot(0)
	if _, _, err := k.Call(0, "read", [][]byte{I64(fd), I64(1)}); err == nil {
		t.Error("old fd must be invalid after reboot")
	}
	if _, ok := k.ReadFile(0, "f"); !ok {
		t.Error("filesystem must survive reboot")
	}
}

func TestImmediateStopFault(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", []byte("x"))
	fd := Int(call(t, k, 0, "open", []byte("f"))[0])
	k.InjectFault(0, 0)
	_, _, err := k.Call(0, "read", [][]byte{I64(fd), I64(1)})
	if !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("err = %v, want immediate crash", err)
	}
	if k.FaultCorrupted(0) {
		t.Error("a zero-window fault is a pure stop failure")
	}
}

func TestGettimeofdayAndSelect(t *testing.T) {
	now := 42 * time.Millisecond
	k := New()
	k.Clock = func() time.Duration { return now }
	ret, nd, err := k.Call(0, "gettimeofday", nil)
	if err != nil || nd != event.TransientND || Int(ret[0]) != int64(now) {
		t.Errorf("gettimeofday = %v %v %v", ret, nd, err)
	}
	ret, nd, err = k.Call(0, "select", nil)
	if err != nil || nd != event.TransientND || Int(ret[0]) != 1 {
		t.Errorf("select = %v %v %v", ret, nd, err)
	}
}

func TestUnknownSyscall(t *testing.T) {
	k := New()
	if _, _, err := k.Call(0, "frobnicate", nil); err == nil {
		t.Error("unknown syscall must fail")
	}
}

func TestIntHelpers(t *testing.T) {
	if Int(I64(-7)) != -7 {
		t.Error("I64/Int round trip failed")
	}
	if Int([]byte{1, 2}) != 0 {
		t.Error("short Int must return 0")
	}
}

func TestExpandResources(t *testing.T) {
	k := New()
	k.WriteFile(0, "f", nil)
	for i := 0; i < MaxOpenFiles; i++ {
		call(t, k, 0, "open", []byte("f"))
	}
	if _, _, err := k.Call(0, "open", [][]byte{[]byte("f")}); err == nil {
		t.Fatal("expected fd exhaustion")
	}
	if got := k.ExpandResources(0); got != 2*MaxOpenFiles {
		t.Errorf("new limit = %d", got)
	}
	// The formerly fixed-ND failure now succeeds.
	call(t, k, 0, "open", []byte("f"))
}

func TestLseekAndBadFDs(t *testing.T) {
	k := New()
	if _, _, err := k.Call(0, "lseek", [][]byte{I64(99), I64(0)}); err == nil {
		t.Error("lseek on bad fd must fail")
	}
	if _, _, err := k.Call(0, "write", [][]byte{I64(99), []byte("x")}); err == nil {
		t.Error("write on bad fd must fail")
	}
	if _, _, err := k.Call(0, "truncate", [][]byte{[]byte("missing"), I64(0)}); err == nil {
		t.Error("truncate of missing file must fail")
	}
	if _, _, err := k.Call(0, "getpid", nil); err != nil {
		t.Error("getpid must succeed")
	}
}
