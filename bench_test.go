package failtrans

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"failtrans/internal/apps/nvi"
	"failtrans/internal/apps/postgres"
	"failtrans/internal/apps/treadmarks"
	"failtrans/internal/dc"
	"failtrans/internal/faults"
	"failtrans/internal/kernel"
	"failtrans/internal/obs"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/vista"
)

// ---- One benchmark per paper figure/table ----

// benchFig8 runs the full Figure 8 sweep for one app and reports the key
// series as custom metrics.
func benchFig8(b *testing.B, app string) {
	var res *Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig8(app, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.Checkpoints), "ckpts:"+row.Protocol)
	}
	if app == "xpilot" {
		for _, row := range res.Rows {
			b.ReportMetric(row.FPSDisk, "fpsDisk:"+row.Protocol)
		}
	} else {
		for _, row := range res.Rows {
			b.ReportMetric(row.OverheadDiskPct, "diskOvhdPct:"+row.Protocol)
		}
	}
}

// BenchmarkFig8Nvi regenerates Figure 8a.
func BenchmarkFig8Nvi(b *testing.B) { benchFig8(b, "nvi") }

// BenchmarkFig8Magic regenerates Figure 8b.
func BenchmarkFig8Magic(b *testing.B) { benchFig8(b, "magic") }

// BenchmarkFig8Xpilot regenerates Figure 8c.
func BenchmarkFig8Xpilot(b *testing.B) { benchFig8(b, "xpilot") }

// BenchmarkFig8TreadMarks regenerates Figure 8d.
func BenchmarkFig8TreadMarks(b *testing.B) { benchFig8(b, "treadmarks") }

// BenchmarkTable1 regenerates the application fault study (reduced crash
// target per iteration; run cmd/ftbench for the paper-scale version).
func BenchmarkTable1(b *testing.B) {
	var res *Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Table1(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, tr := range res.Nvi {
		kind := strings.ReplaceAll(tr.Kind.String(), " ", "-")
		b.ReportMetric(tr.ViolationPct(), "nviViolPct:"+kind)
		b.ReportMetric(res.Postgres[i].ViolationPct(), "pgViolPct:"+kind)
	}
}

// BenchmarkTable2 regenerates the OS fault study (reduced crash target).
func BenchmarkTable2(b *testing.B) {
	var res *Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Table2(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	nv, pg := 0.0, 0.0
	for i, tr := range res.Nvi {
		nv += tr.FailurePct()
		pg += res.Postgres[i].FailurePct()
	}
	b.ReportMetric(nv/float64(len(res.Nvi)), "nviFailPct")
	b.ReportMetric(pg/float64(len(res.Postgres)), "pgFailPct")
}

// ---- Ablation benches for DESIGN.md's design choices ----

// nviCell runs one (protocol, medium) nvi cell and returns duration stats.
func nviCell(b *testing.B, pol protocol.Policy, medium stablestore.Medium, pageSize int) (time.Duration, *dc.DC) {
	b.Helper()
	e := nvi.New("doc.txt", faults.NviInitial())
	e.ThinkTime = 100 * time.Millisecond
	w := sim.NewWorld(11, e)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(11, 300))
	w.RecordTrace = false
	d := dc.New(w, pol, medium)
	if pageSize > 0 {
		d.PageSize = pageSize
	}
	if err := d.Attach(); err != nil {
		b.Fatal(err)
	}
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	return w.Clock, d
}

// BenchmarkAblationMediumRio vs ...Disk: the DC vs DC-disk column pair.
func BenchmarkAblationMediumRio(b *testing.B) {
	var t time.Duration
	for i := 0; i < b.N; i++ {
		t, _ = nviCell(b, protocol.CPVS, stablestore.Rio, 0)
	}
	b.ReportMetric(t.Seconds(), "virtualSec")
}

func BenchmarkAblationMediumDisk(b *testing.B) {
	var t time.Duration
	for i := 0; i < b.N; i++ {
		t, _ = nviCell(b, protocol.CPVS, stablestore.Disk, 0)
	}
	b.ReportMetric(t.Seconds(), "virtualSec")
}

// BenchmarkAblationLogging sweeps the logging scope: none (CAND), input +
// receives (CAND-LOG), everything (Hypervisor).
func BenchmarkAblationLogging(b *testing.B) {
	for _, pol := range []protocol.Policy{protocol.CAND, protocol.CANDLog, protocol.Hypervisor} {
		b.Run(pol.Name, func(b *testing.B) {
			var d *dc.DC
			for i := 0; i < b.N; i++ {
				_, d = nviCell(b, pol, stablestore.Disk, 0)
			}
			b.ReportMetric(float64(d.Stats.TotalCheckpoints()), "ckpts")
			b.ReportMetric(float64(d.Stats.LogRecords), "logRecords")
		})
	}
}

// BenchmarkAblation2PCScope compares committing all processes vs only
// causally dependent ones on the DSM workload.
func BenchmarkAblation2PCScope(b *testing.B) {
	run := func(b *testing.B, pol protocol.Policy) {
		var d *dc.DC
		for i := 0; i < b.N; i++ {
			// Ten iterations so progress reports (visible events)
			// actually occur and trigger coordinated commits.
			progs, err := treadmarks.Fleet(4, 72, 10)
			if err != nil {
				b.Fatal(err)
			}
			w := sim.NewWorld(3, progs...)
			w.RecordTrace = false
			w.MaxSteps = 10_000_000
			d = dc.New(w, pol, stablestore.Rio)
			if err := d.Attach(); err != nil {
				b.Fatal(err)
			}
			if err := w.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(d.Stats.TotalCheckpoints()), "ckpts")
		b.ReportMetric(float64(d.Stats.TwoPhaseRounds), "2pcRounds")
	}
	b.Run("AllProcesses", func(b *testing.B) { run(b, protocol.CPV2PC) })
	b.Run("DependentOnly", func(b *testing.B) { run(b, protocol.CBNDV2PC) })
}

// BenchmarkAblationPageSize sweeps the Vista trap granularity: small pages
// log less per commit but cost more bookkeeping.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, ps := range []int{512, 4096, 16384} {
		b.Run(fmt.Sprintf("%dB", ps), func(b *testing.B) {
			var d *dc.DC
			for i := 0; i < b.N; i++ {
				_, d = nviCell(b, protocol.CPVS, stablestore.Disk, ps)
			}
			b.ReportMetric(float64(d.Stats.CommitBytes)/float64(d.Stats.TotalCheckpoints()), "bytes/ckpt")
		})
	}
}

// BenchmarkAblationCheckFrequency measures how consistency-check frequency
// changes fault-detection latency (§2.6: crash sooner to shorten dangerous
// paths).
func BenchmarkAblationCheckFrequency(b *testing.B) {
	for _, every := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			latency := 0
			for i := 0; i < b.N; i++ {
				e := nvi.New("doc.txt", faults.NviInitial())
				e.ThinkTime = 0
				e.CheckEvery = every
				w := sim.NewWorld(11, e)
				k := kernel.New()
				k.Clock = func() time.Duration { return w.Clock }
				w.OS = k
				w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(11, 600))
				w.RecordTrace = false
				inj := &heapFlipAt{at: 30}
				w.Faults = inj
				if err := w.Run(); err != nil {
					b.Fatal(err)
				}
				if w.Procs[0].Crashes > 0 {
					latency = w.Procs[0].Steps - inj.firedAt
				}
			}
			b.ReportMetric(float64(latency), "eventsToDetect")
		})
	}
}

type heapFlipAt struct {
	at      int
	visits  int
	firedAt int
}

func (h *heapFlipAt) At(p *sim.Proc, site string) sim.FaultKind {
	if h.firedAt > 0 || site != "nvi.key" {
		return sim.NoFault
	}
	h.visits++
	if h.visits < h.at {
		return sim.NoFault
	}
	h.firedAt = p.Steps
	return sim.HeapBitFlip
}

// ---- Microbenchmarks of the hot substrate paths ----

// BenchmarkVistaCommit measures a Vista page-diff commit of a 64 KB image
// with one dirty page, with the observability metrics slot attached (the
// instrumented path must stay at 0 allocs/op).
func BenchmarkVistaCommit(b *testing.B) {
	seg := vista.NewSegment(0, 4096)
	seg.Metrics = &obs.VistaMetrics{}
	img := make([]byte, 64*1024)
	seg.SetContents(img)
	seg.Commit(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img[(i*4096+17)%len(img)] ^= 1
		seg.SetContents(img)
		seg.Commit(nil)
	}
}

// BenchmarkBTreeInsert measures index insertion.
func BenchmarkBTreeInsert(b *testing.B) {
	bt := postgres.NewBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Put(int64(i*2654435761%1000003), postgres.RID{Page: uint32(i)})
	}
}

// BenchmarkOctreeForce measures one Barnes-Hut force evaluation over 512
// bodies.
func BenchmarkOctreeForce(b *testing.B) {
	bodies := treadmarks.InitBodies(512)
	tree := treadmarks.BuildTree(bodies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Force(bodies[i%len(bodies)])
	}
}

// BenchmarkSaveWorkChecker measures the invariant checker on a 200-event
// disciplined trace.
func BenchmarkSaveWorkChecker(b *testing.B) {
	tr := NewTrace(3)
	var msg int64
	for i := 0; i < 60; i++ {
		p := i % 3
		tr.MustAppend(Event{ID: EventID{P: p, I: -1}, Kind: Internal, ND: TransientND})
		tr.MustAppend(Event{ID: EventID{P: p, I: -1}, Kind: Commit})
		msg++
		tr.MustAppend(Event{ID: EventID{P: p, I: -1}, Kind: Send, Msg: msg, Peer: (p + 1) % 3})
		tr.MustAppend(Event{ID: EventID{P: (p + 1) % 3, I: -1}, Kind: Receive, Msg: msg, Peer: p, ND: TransientND})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := recovery.CheckSaveWork(tr); len(vs) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// BenchmarkDCCommit measures one full Discount Checking commit of the nvi
// editor state (marshal + page diff + commit bookkeeping), with the
// observability metrics registry attached (must stay at 0 allocs/op).
func BenchmarkDCCommit(b *testing.B) {
	e := nvi.New("doc.txt", faults.NviInitial())
	w := sim.NewWorld(1, e)
	w.EnableObs(false)
	d := dc.New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		b.Fatal(err)
	}
	p := w.Procs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Checkpoint(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCRollback measures a rollback + state reload.
func BenchmarkDCRollback(b *testing.B) {
	e := nvi.New("doc.txt", faults.NviInitial())
	w := sim.NewWorld(1, e)
	d := dc.New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		b.Fatal(err)
	}
	p := w.Procs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Rollback(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCheckBeforeCommit measures the §2.6 mitigation: running
// the application's consistency check before every commit reduces how often
// Save-work commits violate Lose-work.
func BenchmarkAblationCheckBeforeCommit(b *testing.B) {
	for _, mitigate := range []bool{false, true} {
		name := "off"
		if mitigate {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var viol, crashes int
			for i := 0; i < b.N; i++ {
				s := faults.NewAppStudy("nvi")
				s.CrashTarget = 6
				s.MaxRunsPerType = 40
				s.SessionLen = 200
				s.CheckBeforeCommit = mitigate
				rs, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				viol, crashes = 0, 0
				for _, tr := range rs {
					viol += tr.Violations
					crashes += tr.Crashes
				}
			}
			if crashes > 0 {
				b.ReportMetric(100*float64(viol)/float64(crashes), "violationPct")
			}
		})
	}
}

// BenchmarkAblationEssentialCommits compares full-state vs essential-only
// checkpoint sizes (§2.6's "reduce the comprehensiveness of the state
// saved").
func BenchmarkAblationEssentialCommits(b *testing.B) {
	for _, essential := range []bool{false, true} {
		name := "full"
		if essential {
			name = "essential"
		}
		b.Run(name, func(b *testing.B) {
			var d *dc.DC
			for i := 0; i < b.N; i++ {
				e := nvi.New("doc.txt", faults.NviInitial())
				e.ThinkTime = 0
				w := sim.NewWorld(11, e)
				k := kernel.New()
				k.Clock = func() time.Duration { return w.Clock }
				w.OS = k
				w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(11, 300))
				w.RecordTrace = false
				d = dc.New(w, protocol.CPVS, stablestore.Rio)
				d.EssentialOnly = essential
				if err := d.Attach(); err != nil {
					b.Fatal(err)
				}
				if err := w.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Stats.CommitBytes)/float64(d.Stats.TotalCheckpoints()), "bytes/ckpt")
		})
	}
}
