// Package xpilot reimplements the paper's distributed real-time workload: a
// multi-player space game with one server and three clients on four
// simulated machines. The server runs a 15 frames-per-second physics loop —
// ship thrust and rotation, inertial motion, wall bounces, shots with
// time-to-live, hit detection, respawns and scoring — polling for client
// input (select, a transient-ND syscall, plus message receives), stamping
// frames with gettimeofday, and broadcasting state. Clients consume
// scripted keyboard input (fixed ND), send commands, and render every
// received frame (visible events).
//
// As in the paper, the interesting metric is the sustainable frame rate:
// commit costs that exceed the 66.7 ms frame budget push the server's tick
// late, and the measured fps (client renders per virtual second) drops.
package xpilot

import (
	"fmt"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/sim"
)

// FrameInterval is the 15 fps tick.
const FrameInterval = time.Second / 15

// Arena bounds and physics constants.
const (
	arenaW, arenaH = 1000, 800
	thrustAccel    = 8
	turnStep       = 16 // heading units of 256
	shotSpeed      = 30
	shotTTL        = 20
	hitRadius      = 12
)

// Ship is one player's craft.
type Ship struct {
	X, Y   int
	VX, VY int
	// Heading is in 256ths of a turn.
	Heading int
	Fuel    int
	Score   int
	Deaths  int
}

// Shot is a projectile.
type Shot struct {
	X, Y   int
	VX, VY int
	Owner  int
	TTL    int
}

// Wall is an axis-aligned obstacle.
type Wall struct {
	X1, Y1, X2, Y2 int
}

// Server is process 0: the authoritative game state and physics loop.
type Server struct {
	Ships []Ship
	Shots []Shot
	Walls []Wall

	Tick     int
	MaxTicks int
	// NextTick is the virtual time the next frame is due.
	NextTick time.Duration

	Phase    int // 0 poll, 1 drain, 2 physics, 3 stamp, 4 send, 5 pace
	SendIdx  int
	LastPoll int64
	// NeedSelect interleaves a select poll before each drain receive.
	NeedSelect bool
	// EffectsLeft counts this frame's remaining visual-effect rand
	// draws; EffectSeed holds the latest.
	EffectsLeft int
	EffectSeed  uint64

	PhysicsCost time.Duration
}

// Server phases.
const (
	srvPoll = iota
	srvDrain
	srvPhysics
	srvEffects
	srvStamp
	srvSend
	srvPace
	srvDone
)

// NewServer returns a server for nClients ships running for ticks frames.
func NewServer(nClients, ticks int) *Server {
	s := &Server{MaxTicks: ticks, PhysicsCost: 2 * time.Millisecond}
	for i := 0; i < nClients; i++ {
		s.Ships = append(s.Ships, Ship{
			X: 100 + 300*i, Y: 400, Heading: 64 * i, Fuel: 1000,
		})
	}
	s.Walls = []Wall{
		{0, 0, arenaW, 10}, {0, arenaH - 10, arenaW, arenaH},
		{0, 0, 10, arenaH}, {arenaW - 10, 0, arenaW, arenaH},
		{400, 300, 600, 340},
	}
	return s
}

// Name implements sim.Program.
func (s *Server) Name() string { return "xpilot-server" }

// Init implements sim.Program.
func (s *Server) Init(ctx *sim.Ctx) error { return nil }

// Step implements sim.Program: one commit-relevant event per step.
func (s *Server) Step(ctx *sim.Ctx) sim.Status {
	switch s.Phase {
	case srvPoll:
		if s.Tick >= s.MaxTicks {
			// Tell the clients the game is over, one send per step
			// (the index advances after the send so a commit in the
			// pre-send hook captures a resumable state).
			if s.SendIdx < len(s.Ships) {
				if err := ctx.Send(s.SendIdx+1, []byte{0xff}); err != nil {
					ctx.Crash(err.Error())
					return sim.Crashed
				}
				s.SendIdx++
				return sim.Ready
			}
			s.Phase = srvDone
			return sim.Done
		}
		// Poll readiness: a transient-ND syscall, as in real xpilot's
		// select loop.
		ret, err := ctx.Syscall("select")
		if err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		s.LastPoll = int64(ret[0][0])
		s.Phase = srvDrain
		return sim.Ready
	case srvDrain:
		// Real xpilot's event loop re-polls select before every
		// recvfrom; each poll is another transient-ND syscall.
		if s.NeedSelect {
			if _, err := ctx.Syscall("select"); err != nil {
				ctx.Crash(err.Error())
				return sim.Crashed
			}
			s.NeedSelect = false
			return sim.Ready
		}
		m, ok := ctx.Recv()
		if !ok {
			s.Phase = srvPhysics
			return sim.Ready
		}
		s.applyInput(m.From, m.Payload)
		s.NeedSelect = true
		return sim.Ready // keep draining, one receive per step
	case srvPhysics:
		ctx.Compute(s.PhysicsCost)
		s.physics()
		s.Phase = srvEffects
		s.EffectsLeft = 8 + 2*len(s.Shots)
		if s.EffectsLeft > 24 {
			s.EffectsLeft = 24
		}
		return sim.Ready
	case srvEffects:
		// Real xpilot burns rand() on per-frame visual effects —
		// debris, sparks, engine flames — each draw a transient-ND
		// event (one per step, per the runtime contract).
		if s.EffectsLeft <= 0 {
			s.Phase = srvStamp
			return sim.Ready
		}
		s.EffectsLeft--
		s.EffectSeed = ctx.Rand()
		return sim.Ready
	case srvStamp:
		now := ctx.Now()
		if s.NextTick == 0 {
			s.NextTick = now
		}
		s.NextTick += FrameInterval
		s.Tick++
		s.Phase = srvSend
		s.SendIdx = 0
		return sim.Ready
	case srvSend:
		if s.SendIdx >= len(s.Ships) {
			s.Phase = srvPace
			return sim.Ready
		}
		if err := ctx.Send(s.SendIdx+1, s.encodeFrame()); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		s.SendIdx++
		return sim.Ready
	case srvPace:
		s.Phase = srvPoll
		s.SendIdx = 0
		if wait := s.NextTick - ctx.NowVirtual(); wait > 0 {
			ctx.Sleep(wait)
			return sim.Sleeping
		}
		return sim.Ready // already late: tick immediately
	default:
		return sim.Done
	}
}

// applyInput handles one client command byte.
func (s *Server) applyInput(from int, payload []byte) {
	idx := from - 1
	if idx < 0 || idx >= len(s.Ships) || len(payload) == 0 {
		return
	}
	ship := &s.Ships[idx]
	switch payload[0] {
	case 'w': // thrust
		if ship.Fuel > 0 {
			dx, dy := dir(ship.Heading)
			ship.VX += dx * thrustAccel / 16
			ship.VY += dy * thrustAccel / 16
			ship.Fuel--
		}
	case 'a':
		ship.Heading = (ship.Heading + turnStep) % 256
	case 'd':
		ship.Heading = (ship.Heading - turnStep + 256) % 256
	case ' ': // fire
		dx, dy := dir(ship.Heading)
		s.Shots = append(s.Shots, Shot{
			X: ship.X, Y: ship.Y,
			VX:    ship.VX + dx*shotSpeed/16,
			VY:    ship.VY + dy*shotSpeed/16,
			Owner: idx, TTL: shotTTL,
		})
	}
}

// dir converts a 256-unit heading to a (x,y) direction scaled by 16 using
// a coarse integer sine table.
func dir(heading int) (int, int) {
	// Quarter-wave table of sin values scaled by 16.
	quarter := [17]int{0, 2, 3, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 15, 16, 16, 16}
	sin := func(h int) int {
		h %= 256
		if h < 0 {
			h += 256
		}
		switch {
		case h < 64:
			return quarter[h/4]
		case h < 128:
			return quarter[(128-h)/4]
		case h < 192:
			return -quarter[(h-128)/4]
		default:
			return -quarter[(256-h)/4]
		}
	}
	return sin(heading + 64), sin(heading) // cos, sin
}

// physics advances the world one tick.
func (s *Server) physics() {
	for i := range s.Ships {
		ship := &s.Ships[i]
		ship.X += ship.VX / 4
		ship.Y += ship.VY / 4
		s.bounce(ship)
	}
	// Shots fly and expire.
	alive := s.Shots[:0]
	for _, sh := range s.Shots {
		sh.X += sh.VX / 4
		sh.Y += sh.VY / 4
		sh.TTL--
		if sh.TTL <= 0 || s.hitsWall(sh.X, sh.Y) {
			continue
		}
		hit := false
		for i := range s.Ships {
			if i == sh.Owner {
				continue
			}
			ship := &s.Ships[i]
			dx, dy := ship.X-sh.X, ship.Y-sh.Y
			if dx*dx+dy*dy <= hitRadius*hitRadius {
				s.Ships[sh.Owner].Score++
				ship.Deaths++
				ship.X, ship.Y = 100+300*i, 400
				ship.VX, ship.VY = 0, 0
				hit = true
				break
			}
		}
		if !hit {
			alive = append(alive, sh)
		}
	}
	s.Shots = alive
}

// bounce reflects a ship off walls and arena bounds.
func (s *Server) bounce(ship *Ship) {
	for _, w := range s.Walls {
		if ship.X >= w.X1-4 && ship.X <= w.X2+4 && ship.Y >= w.Y1-4 && ship.Y <= w.Y2+4 {
			// Push out along the smaller penetration axis and flip
			// that velocity.
			ship.VX, ship.VY = -ship.VX/2, -ship.VY/2
			if ship.X < (w.X1+w.X2)/2 {
				ship.X = w.X1 - 5
			} else {
				ship.X = w.X2 + 5
			}
			if ship.Y < (w.Y1+w.Y2)/2 {
				ship.Y = w.Y1 - 5
			} else {
				ship.Y = w.Y2 + 5
			}
		}
	}
	if ship.X < 0 {
		ship.X = 0
	}
	if ship.X >= arenaW {
		ship.X = arenaW - 1
	}
	if ship.Y < 0 {
		ship.Y = 0
	}
	if ship.Y >= arenaH {
		ship.Y = arenaH - 1
	}
}

func (s *Server) hitsWall(x, y int) bool {
	for _, w := range s.Walls {
		if x >= w.X1 && x <= w.X2 && y >= w.Y1 && y <= w.Y2 {
			return true
		}
	}
	return false
}

// encodeFrame serializes tick + ships + shot count.
func (s *Server) encodeFrame() []byte {
	var e apputil.Enc
	e.Int(s.Tick)
	e.Int(len(s.Ships))
	for _, sh := range s.Ships {
		e.Int(sh.X)
		e.Int(sh.Y)
		e.Int(sh.Heading)
		e.Int(sh.Score)
	}
	e.Int(len(s.Shots))
	return e.B
}

// MarshalState implements sim.Program.
func (s *Server) MarshalState() ([]byte, error) {
	var e apputil.Enc
	e.Int(len(s.Ships))
	for _, sh := range s.Ships {
		e.Int(sh.X)
		e.Int(sh.Y)
		e.Int(sh.VX)
		e.Int(sh.VY)
		e.Int(sh.Heading)
		e.Int(sh.Fuel)
		e.Int(sh.Score)
		e.Int(sh.Deaths)
	}
	e.Int(len(s.Shots))
	for _, sh := range s.Shots {
		e.Int(sh.X)
		e.Int(sh.Y)
		e.Int(sh.VX)
		e.Int(sh.VY)
		e.Int(sh.Owner)
		e.Int(sh.TTL)
	}
	e.Int(len(s.Walls))
	for _, w := range s.Walls {
		e.Int(w.X1)
		e.Int(w.Y1)
		e.Int(w.X2)
		e.Int(w.Y2)
	}
	e.Int(s.Tick)
	e.Int(s.MaxTicks)
	e.I64(int64(s.NextTick))
	e.Int(s.Phase)
	e.Int(s.SendIdx)
	e.I64(s.LastPoll)
	e.Bool(s.NeedSelect)
	e.Int(s.EffectsLeft)
	e.I64(int64(s.EffectSeed))
	e.I64(int64(s.PhysicsCost))
	return e.B, nil
}

// UnmarshalState implements sim.Program.
func (s *Server) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	n := d.Int()
	if n < 0 || n > 64 {
		return fmt.Errorf("xpilot: implausible ship count %d", n)
	}
	s.Ships = make([]Ship, 0, n)
	for i := 0; i < n; i++ {
		s.Ships = append(s.Ships, Ship{
			X: d.Int(), Y: d.Int(), VX: d.Int(), VY: d.Int(),
			Heading: d.Int(), Fuel: d.Int(), Score: d.Int(), Deaths: d.Int(),
		})
	}
	n = d.Int()
	if n < 0 || n > 1<<16 {
		return fmt.Errorf("xpilot: implausible shot count %d", n)
	}
	s.Shots = make([]Shot, 0, n)
	for i := 0; i < n; i++ {
		s.Shots = append(s.Shots, Shot{
			X: d.Int(), Y: d.Int(), VX: d.Int(), VY: d.Int(),
			Owner: d.Int(), TTL: d.Int(),
		})
	}
	n = d.Int()
	if n < 0 || n > 1<<16 {
		return fmt.Errorf("xpilot: implausible wall count %d", n)
	}
	s.Walls = make([]Wall, 0, n)
	for i := 0; i < n; i++ {
		s.Walls = append(s.Walls, Wall{d.Int(), d.Int(), d.Int(), d.Int()})
	}
	s.Tick = d.Int()
	s.MaxTicks = d.Int()
	s.NextTick = time.Duration(d.I64())
	s.Phase = d.Int()
	s.SendIdx = d.Int()
	s.LastPoll = d.I64()
	s.NeedSelect = d.Bool()
	s.EffectsLeft = d.Int()
	s.EffectSeed = uint64(d.I64())
	s.PhysicsCost = time.Duration(d.I64())
	return d.Err
}

// Client is one player process: scripted keyboard input, frame rendering.
type Client struct {
	Server int // server process index (0)
	Me     int // my process index

	Phase      int // 0 maybe-input, 1 send, 2 recv, 3 render
	PendingKey byte
	LastFrame  []byte
	Frames     int
	GameOver   bool
	InputEvery int // consume input when frame count %InputEvery == offset
	RenderCost time.Duration
}

// Client phases.
const (
	cliInput = iota
	cliSend
	cliRecv
	cliRender
	cliDone
)

// NewClient returns a client for process index me (1-based; server is 0).
func NewClient(me int) *Client {
	return &Client{Me: me, Phase: cliRecv, InputEvery: 5, RenderCost: time.Millisecond}
}

// Name implements sim.Program.
func (c *Client) Name() string { return fmt.Sprintf("xpilot-client%d", c.Me) }

// Init implements sim.Program.
func (c *Client) Init(ctx *sim.Ctx) error { return nil }

// Step implements sim.Program.
func (c *Client) Step(ctx *sim.Ctx) sim.Status {
	switch c.Phase {
	case cliInput:
		in, ok := ctx.Input()
		if !ok {
			c.Phase = cliRecv
			return sim.Ready
		}
		c.PendingKey = in[0]
		c.Phase = cliSend
		return sim.Ready
	case cliSend:
		if err := ctx.Send(c.Server, []byte{c.PendingKey}); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		c.Phase = cliRecv
		return sim.Ready
	case cliRecv:
		m, ok := ctx.Recv()
		if !ok {
			return sim.WaitMsg
		}
		if len(m.Payload) == 1 && m.Payload[0] == 0xff {
			c.GameOver = true
			c.Phase = cliDone
			return sim.Done
		}
		c.LastFrame = m.Payload
		c.Phase = cliRender
		return sim.Ready
	case cliRender:
		ctx.Compute(c.RenderCost)
		d := apputil.Dec{B: c.LastFrame}
		tick := d.Int()
		nships := d.Int()
		var mine string
		for i := 0; i < nships && d.Err == nil; i++ {
			x, y := d.Int(), d.Int()
			h, score := d.Int(), d.Int()
			if i == c.Me-1 {
				mine = fmt.Sprintf("me@(%d,%d) h=%d score=%d", x, y, h, score)
			}
		}
		ctx.Output(fmt.Sprintf("frame %d %s", tick, mine))
		c.Frames++
		if c.Frames%c.InputEvery == c.Me%c.InputEvery {
			c.Phase = cliInput
		} else {
			c.Phase = cliRecv
		}
		return sim.Ready
	default:
		return sim.Done
	}
}

// MarshalState implements sim.Program.
func (c *Client) MarshalState() ([]byte, error) {
	var e apputil.Enc
	e.Int(c.Server)
	e.Int(c.Me)
	e.Int(c.Phase)
	e.B = append(e.B, c.PendingKey)
	e.Bytes(c.LastFrame)
	e.Int(c.Frames)
	e.Bool(c.GameOver)
	e.Int(c.InputEvery)
	e.I64(int64(c.RenderCost))
	return e.B, nil
}

// UnmarshalState implements sim.Program.
func (c *Client) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	c.Server = d.Int()
	c.Me = d.Int()
	c.Phase = d.Int()
	c.PendingKey = d.Byte()
	c.LastFrame = d.Bytes()
	c.Frames = d.Int()
	c.GameOver = d.Bool()
	c.InputEvery = d.Int()
	c.RenderCost = time.Duration(d.I64())
	return d.Err
}

// Fleet builds the standard four-process world programs: server + three
// clients, running for `ticks` frames.
func Fleet(ticks int) []sim.Program {
	return []sim.Program{
		NewServer(3, ticks),
		NewClient(1),
		NewClient(2),
		NewClient(3),
	}
}

// KeyScript builds a client input script from a key string.
func KeyScript(keys string) [][]byte {
	out := make([][]byte, 0, len(keys))
	for i := 0; i < len(keys); i++ {
		out = append(out, []byte{keys[i]})
	}
	return out
}
