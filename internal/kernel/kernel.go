// Package kernel is the simulated operating system under the applications:
// a per-node flat filesystem, per-process open-file tables, and a syscall
// surface whose calls are classified by their non-determinism the way the
// paper's Discount Checking classifies FreeBSD's (gettimeofday and select
// are transient-ND; open is fixed-ND, it depends on kernel resource state;
// regular-file reads and writes are deterministic in the simulator).
//
// The kernel is also the fault-injection target for the paper's Table 2
// study: an injected kernel fault opens a corruption window during which
// syscall results returned to the application are silently corrupted
// (a propagation failure); when the window closes the kernel panics, which
// the application observes as ErrNodeCrashed on its next syscall (a stop
// failure). A fault whose window sees no syscalls is a pure stop failure.
package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"failtrans/internal/event"
	"failtrans/internal/obs"
)

// ErrNodeCrashed is returned by every syscall after the node's kernel has
// panicked and before it reboots.
var ErrNodeCrashed = errors.New("kernel: node crashed")

// MaxOpenFiles bounds each process's file table (the paper's example of
// fixed non-determinism in open).
const MaxOpenFiles = 64

type fdEntry struct {
	Path   string
	Offset int64
}

type kernelFault struct {
	start  time.Duration
	window time.Duration
	// corrupted reports whether any syscall result was corrupted before
	// the panic.
	corrupted bool
	// panicked is set once the window closes.
	panicked bool
	// traced marks a window with an open tracer Begin awaiting its End.
	traced bool
}

type node struct {
	// fs's byte-slice values may alias a frozen base node's contents
	// (file() hands them out uncopied); setFile requires owned data and
	// ownFile privatizes a base file before mutation, so every insert
	// goes through one of the two.
	//failtrans:cowshared setFile,ownFile
	fs  map[string][]byte
	fds map[int]*fdEntry
	nextFD int
	// fdLimit is the node's open-file limit; ExpandResources raises it,
	// turning the paper's fixed non-determinism of open into transient
	// non-determinism for the re-execution (§2.6).
	fdLimit int
	fault   *kernelFault
	edits   int64 // corruption counter for deterministic bit choice
	Syscall int64 // total syscalls served

	// base, when non-nil, is the frozen template node this node was COW-
	// forked from: file contents read through it until the first mutation
	// privatizes them into fs, and deleted masks paths unlinked locally.
	// The base belongs to a frozen kernel, so it can never change.
	base    *node
	deleted map[string]bool

	// saveFDs and saveBuf are SaveProcState's reusable scratch: the commit
	// path serializes the file table once per checkpoint and appends the
	// blob into the image immediately. Per-node (not per-kernel) because a
	// coordinated commit saves all processes concurrently; never cloned
	// into forks (each fork's nodes start with zero scratch).
	saveFDs []int
	saveBuf []byte
}

// file resolves a path overlay-first: the node's own fs, then (unless
// locally deleted) the frozen base chain. The returned slice must not be
// mutated unless it came from the node's own fs.
func (n *node) file(path string) ([]byte, bool) {
	if d, ok := n.fs[path]; ok {
		return d, true
	}
	if n.base == nil || n.deleted[path] {
		return nil, false
	}
	return n.base.file(path)
}

// setFile stores data (which the node must own) under path, clearing any
// local deletion mask.
func (n *node) setFile(path string, data []byte) {
	if n.fs == nil {
		n.fs = make(map[string][]byte) // COW forks defer the overlay map
	}
	n.fs[path] = data
	if n.deleted != nil {
		delete(n.deleted, path)
	}
}

// ownFile returns a privately-owned copy of path's contents, privatizing it
// out of the frozen base on first mutation — the per-file analogue of
// vista's first-touch page copy. The second return mirrors file().
func (n *node) ownFile(path string, k *Kernel) ([]byte, bool) {
	if d, ok := n.fs[path]; ok {
		return d, true
	}
	if n.base == nil || n.deleted[path] {
		return nil, false
	}
	d, ok := n.base.file(path)
	if !ok {
		return nil, false
	}
	cow := append([]byte(nil), d...)
	if n.fs == nil {
		n.fs = make(map[string][]byte) // COW forks defer the overlay map
	}
	n.fs[path] = cow
	k.CowFiles++
	k.CowBytes += int64(len(cow))
	return cow, true
}

// removeFile unlinks path, masking any base copy.
func (n *node) removeFile(path string) {
	delete(n.fs, path)
	if n.base != nil {
		if n.deleted == nil {
			n.deleted = make(map[string]bool)
		}
		n.deleted[path] = true
	}
}

// addNames accumulates the node's live file names: the base's, minus local
// deletions, plus the node's own.
func (n *node) addNames(set map[string]bool) {
	if n.base != nil {
		n.base.addNames(set)
		for p := range n.deleted {
			delete(set, p)
		}
	}
	for p := range n.fs {
		set[p] = true
	}
}

// Kernel implements sim.OS for any number of processes, each on its own
// node (its own filesystem and file table), matching the paper's testbed
// where distributed workloads ran on four machines.
type Kernel struct {
	// Clock supplies current virtual time; the world wires it up.
	Clock func() time.Duration
	// OnCorrupt, if set, is called every time a fault corrupts a syscall
	// result for a process (the Table 2 propagation marker; callers can
	// decide per corruption whether kernel state also reached user
	// memory).
	OnCorrupt func(pid int)
	// OnPanic, if set, is called when a node's kernel panics.
	OnPanic func(pid int)

	// Metrics, if non-nil, receives per-syscall and fault-study counters.
	Metrics *obs.Metrics
	// Tracer, if non-nil, receives fault-window spans and corruption
	// markers on the faulted process's track.
	Tracer *obs.Tracer

	// CowFiles and CowBytes count files privatized out of a frozen
	// template kernel on first mutation, and the bytes copied doing so.
	CowFiles int
	CowBytes int64

	// nodes's *node values are cloned out of the frozen base chain by
	// node() before any mutation; a COW fork starts with a nil map and
	// node() also materializes it, so inserts outside node() would hand
	// a fork a template-owned node.
	//failtrans:cowshared node
	nodes  map[int]*node
	frozen bool
	// base, when non-nil, is the frozen template kernel this one was COW-
	// forked from: nodes absent from the local map are cloned out of the
	// base chain on first touch. The base is frozen, so it never changes.
	base *Kernel
	// mu guards the nodes map. Stepping is serial, but a coordinated commit
	// saves every process's state from one goroutine per process, and on a
	// COW fork those saves can materialize node clones concurrently.
	mu sync.RWMutex
}

// Freeze seals the kernel as an immutable copy-on-write template:
// subsequent ForkOS calls share node filesystems behind base references
// instead of deep-copying them, and the template must never serve another
// syscall. Any number of forks may then be taken concurrently.
func (k *Kernel) Freeze() { k.frozen = true }

// New returns a kernel with no nodes; nodes are created on first use.
func New() *Kernel {
	return &Kernel{Clock: func() time.Duration { return 0 }, nodes: make(map[int]*node)}
}

// SetObs implements sim.ObsSink: the world hands the kernel its metrics
// registry and tracer when observability is enabled.
func (k *Kernel) SetObs(m *obs.Metrics, t *obs.Tracer) {
	k.Metrics = m
	k.Tracer = t
}

func (k *Kernel) node(pid int) *node {
	k.mu.RLock()
	n, ok := k.nodes[pid]
	k.mu.RUnlock()
	if ok {
		return n
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if n, ok := k.nodes[pid]; ok {
		return n // raced with another materializing save
	}
	if k.nodes == nil {
		k.nodes = make(map[int]*node) // COW forks start with no local map
	}
	if tn, ok := k.lookupBase(pid); ok {
		n = cloneNode(tn)
	} else {
		n = &node{fs: make(map[string][]byte), fds: make(map[int]*fdEntry), nextFD: 3, fdLimit: MaxOpenFiles}
	}
	k.nodes[pid] = n
	return n
}

// lookup resolves pid to its node without materializing a clone: the local
// map first, then the frozen base chain.
func (k *Kernel) lookup(pid int) (*node, bool) {
	k.mu.RLock()
	n, ok := k.nodes[pid]
	k.mu.RUnlock()
	if ok {
		return n, true
	}
	return k.lookupBase(pid)
}

// lookupBase resolves pid through the frozen base chain only. Frozen
// kernels never serve syscalls, so their maps are immutable and need no
// locking.
func (k *Kernel) lookupBase(pid int) (*node, bool) {
	for b := k.base; b != nil; b = b.base {
		if n, ok := b.nodes[pid]; ok {
			return n, true
		}
	}
	return nil, false
}

// pids returns the sorted union of node ids across this kernel and its
// frozen base chain.
func (k *Kernel) pids() []int {
	k.mu.RLock()
	seen := make(map[int]bool, len(k.nodes))
	for pid := range k.nodes {
		seen[pid] = true
	}
	k.mu.RUnlock()
	for b := k.base; b != nil; b = b.base {
		for pid := range b.nodes {
			seen[pid] = true
		}
	}
	out := make([]int, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// WriteFile seeds a file on pid's node (test/bench setup).
func (k *Kernel) WriteFile(pid int, path string, data []byte) {
	k.node(pid).setFile(path, append([]byte(nil), data...))
}

// ReadFile reads a file from pid's node directly (assertions in tests).
func (k *Kernel) ReadFile(pid int, path string) ([]byte, bool) {
	d, ok := k.node(pid).file(path)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Files lists pid's node's files, sorted.
func (k *Kernel) Files(pid int) []string {
	n := k.node(pid)
	set := make(map[string]bool, len(n.fs))
	n.addNames(set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Syscalls returns the number of syscalls pid's node has served.
func (k *Kernel) Syscalls(pid int) int64 { return k.node(pid).Syscall }

// InjectFault opens a corruption window on pid's node starting now; after
// `window` of virtual time the kernel panics. window == 0 is an immediate
// stop failure.
func (k *Kernel) InjectFault(pid int, window time.Duration) {
	n := k.node(pid)
	n.fault = &kernelFault{start: k.Clock(), window: window}
	if k.Metrics != nil {
		k.Metrics.FaultWindows++
	}
	if k.Tracer != nil {
		k.Tracer.Begin(pid, "kernel", "fault-window", n.fault.start)
		n.fault.traced = true
	}
}

// FaultCorrupted reports whether pid's current/last fault corrupted any
// syscall result before panicking (i.e. manifested as a propagation
// failure rather than a stop failure).
func (k *Kernel) FaultCorrupted(pid int) bool {
	n := k.node(pid)
	return n.fault != nil && n.fault.corrupted
}

// ExpandResources raises pid's resource limits (here: doubles the open-file
// limit) — the paper's §2.6 suggestion for converting fixed
// non-deterministic events into transient ones after a failure: the open
// that deterministically failed before the crash can succeed on
// re-execution. It returns the new limit.
func (k *Kernel) ExpandResources(pid int) int {
	n := k.node(pid)
	n.fdLimit *= 2
	return n.fdLimit
}

// Reboot clears the node's panic state and file table (open files do not
// survive a reboot); filesystem contents, being on disk, survive.
func (k *Kernel) Reboot(pid int) {
	n := k.node(pid)
	if n.fault != nil && n.fault.traced {
		// The node went down with the window still open (e.g. a stop
		// failure that never reached another syscall); close it here.
		n.fault.traced = false
		k.Tracer.End(pid, k.Clock())
	}
	n.fault = nil
	n.fds = make(map[int]*fdEntry)
	n.nextFD = 3
}

// Classify returns the non-determinism class of a syscall name.
func Classify(name string) event.NDClass {
	switch name {
	case "gettimeofday", "select":
		return event.TransientND
	case "open":
		return event.FixedND
	default:
		return event.Deterministic
	}
}

// Call implements sim.OS.
func (k *Kernel) Call(pid int, name string, args [][]byte) ([][]byte, event.NDClass, error) {
	n := k.node(pid)
	nd := Classify(name)
	if n.fault != nil {
		now := k.Clock()
		if n.fault.panicked || now >= n.fault.start+n.fault.window {
			if !n.fault.panicked {
				n.fault.panicked = true
				if k.Metrics != nil {
					k.Metrics.KernelPanics++
				}
				if n.fault.traced {
					n.fault.traced = false
					k.Tracer.End(pid, now)
					k.Tracer.Instant(pid, "kernel", "panic", now)
				}
				if k.OnPanic != nil {
					k.OnPanic(pid)
				}
			}
			return nil, nd, ErrNodeCrashed
		}
	}
	n.Syscall++
	if k.Metrics != nil {
		k.Metrics.Syscall(pid, name)
	}
	ret, err := k.dispatch(n, name, args)
	if err != nil {
		return nil, nd, err
	}
	if n.fault != nil && !n.fault.panicked {
		ret = k.corrupt(pid, n, ret)
	}
	return ret, nd, nil
}

// corrupt flips one bit of the syscall result (if it has any payload),
// modeling buggy kernel data propagating into the application.
func (k *Kernel) corrupt(pid int, n *node, ret [][]byte) [][]byte {
	for i, part := range ret {
		if len(part) == 0 {
			continue
		}
		mut := append([]byte(nil), part...)
		bit := n.edits % int64(len(mut)*8)
		n.edits += 7 // vary the corrupted bit deterministically
		mut[bit/8] ^= 1 << (bit % 8)
		ret[i] = mut
		n.fault.corrupted = true
		if k.Metrics != nil {
			k.Metrics.FaultCorruptions++
		}
		if k.Tracer != nil {
			k.Tracer.Instant(pid, "kernel", "corrupt", k.Clock())
		}
		if k.OnCorrupt != nil {
			k.OnCorrupt(pid)
		}
		return ret
	}
	return ret
}

func (k *Kernel) dispatch(n *node, name string, args [][]byte) ([][]byte, error) {
	switch name {
	case "open":
		if len(args) < 1 {
			return nil, fmt.Errorf("kernel: open needs a path")
		}
		if len(n.fds) >= n.fdLimit {
			return nil, fmt.Errorf("kernel: out of file table slots")
		}
		path := string(args[0])
		create := len(args) > 1 && len(args[1]) > 0 && args[1][0] == 1
		if _, ok := n.file(path); !ok {
			if !create {
				return nil, fmt.Errorf("kernel: open %s: no such file", path)
			}
			n.setFile(path, nil)
		}
		fd := n.nextFD
		n.nextFD++
		n.fds[fd] = &fdEntry{Path: path}
		return [][]byte{I64(int64(fd))}, nil
	case "close":
		fd, err := fdArg(args)
		if err != nil {
			return nil, err
		}
		if _, ok := n.fds[fd]; !ok {
			return nil, fmt.Errorf("kernel: close bad fd %d", fd)
		}
		delete(n.fds, fd)
		return nil, nil
	case "read":
		fd, err := fdArg(args)
		if err != nil {
			return nil, err
		}
		e, ok := n.fds[fd]
		if !ok {
			return nil, fmt.Errorf("kernel: read bad fd %d", fd)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("kernel: read needs a length")
		}
		want := Int(args[1])
		data, _ := n.file(e.Path)
		if e.Offset >= int64(len(data)) {
			return [][]byte{nil}, nil
		}
		end := e.Offset + want
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		out := append([]byte(nil), data[e.Offset:end]...)
		e.Offset = end
		return [][]byte{out}, nil
	case "write":
		fd, err := fdArg(args)
		if err != nil {
			return nil, err
		}
		e, ok := n.fds[fd]
		if !ok {
			return nil, fmt.Errorf("kernel: write bad fd %d", fd)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("kernel: write needs data")
		}
		data := args[1]
		file, _ := n.ownFile(e.Path, k)
		need := e.Offset + int64(len(data))
		if int64(len(file)) < need {
			file = growFile(file, need)
		}
		copy(file[e.Offset:], data)
		n.setFile(e.Path, file)
		e.Offset += int64(len(data))
		return [][]byte{I64(int64(len(data)))}, nil
	case "lseek":
		fd, err := fdArg(args)
		if err != nil {
			return nil, err
		}
		e, ok := n.fds[fd]
		if !ok {
			return nil, fmt.Errorf("kernel: lseek bad fd %d", fd)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("kernel: lseek needs an offset")
		}
		e.Offset = Int(args[1])
		return [][]byte{I64(e.Offset)}, nil
	case "truncate":
		if len(args) < 2 {
			return nil, fmt.Errorf("kernel: truncate needs path and size")
		}
		path := string(args[0])
		size := Int(args[1])
		data, ok := n.ownFile(path, k)
		if !ok {
			return nil, fmt.Errorf("kernel: truncate %s: no such file", path)
		}
		if int64(len(data)) > size {
			n.setFile(path, data[:size])
		}
		return nil, nil
	case "unlink":
		if len(args) < 1 {
			return nil, fmt.Errorf("kernel: unlink needs a path")
		}
		n.removeFile(string(args[0]))
		return nil, nil
	case "stat":
		if len(args) < 1 {
			return nil, fmt.Errorf("kernel: stat needs a path")
		}
		data, ok := n.file(string(args[0]))
		if !ok {
			return [][]byte{I64(-1)}, nil
		}
		return [][]byte{I64(int64(len(data)))}, nil
	case "gettimeofday":
		return [][]byte{I64(int64(k.Clock()))}, nil
	case "select":
		// Readiness polling: in the simulator, always "ready".
		return [][]byte{I64(1)}, nil
	case "getpid":
		return [][]byte{I64(int64(0))}, nil
	default:
		return nil, fmt.Errorf("kernel: unknown syscall %q", name)
	}
}

// SaveProcState implements sim.OS: it serializes pid's open-file table.
// The returned slice aliases a per-node buffer reused across calls; callers
// that retain it past the node's next save must copy (the commit path
// appends it into the checkpoint image immediately). The scratch lives on
// the node, not the kernel, because a coordinated commit saves every
// process concurrently — one goroutine per process, so per-pid state is the
// widest scratch that stays race-free.
func (k *Kernel) SaveProcState(pid int) []byte {
	n := k.node(pid)
	fds := n.saveFDs[:0]
	for fd := range n.fds {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	n.saveFDs = fds
	out := appendI64(n.saveBuf[:0], int64(len(fds)))
	out = appendI64(out, int64(n.nextFD))
	for _, fd := range fds {
		e := n.fds[fd]
		out = appendI64(out, int64(fd))
		out = appendI64(out, e.Offset)
		out = appendI64(out, int64(len(e.Path)))
		out = append(out, e.Path...)
	}
	n.saveBuf = out
	return out
}

// RestoreProcState implements sim.OS: the node reboots (clearing any panic)
// and the file table is rebuilt from the checkpointed blob — the paper's
// "copies syscall parameters and uses them to directly reconstruct relevant
// kernel state during recovery".
func (k *Kernel) RestoreProcState(pid int, blob []byte) {
	k.Reboot(pid)
	n := k.node(pid)
	if len(blob) < 16 {
		return
	}
	count := Int(blob[0:8])
	n.nextFD = int(Int(blob[8:16]))
	p := 16
	for i := int64(0); i < count && p+24 <= len(blob); i++ {
		fd := Int(blob[p : p+8])
		off := Int(blob[p+8 : p+16])
		plen := int(Int(blob[p+16 : p+24]))
		p += 24
		if p+plen > len(blob) {
			return
		}
		path := string(blob[p : p+plen])
		p += plen
		if _, ok := n.file(path); !ok {
			n.setFile(path, nil)
		}
		n.fds[int(fd)] = &fdEntry{Path: path, Offset: off}
	}
}

func fdArg(args [][]byte) (int, error) {
	if len(args) < 1 || len(args[0]) < 8 {
		return 0, fmt.Errorf("kernel: missing fd argument")
	}
	return int(Int(args[0])), nil
}

// I64 encodes an int64 argument/result.
func I64(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// growFile extends a file buffer to n bytes, zero-filling the extension
// (write past EOF zero-fills the gap, and spare capacity may hold stale
// bytes from before a truncate). Capacity grows with headroom so a stream
// of small appends costs amortized O(1) reallocations instead of one exact
// resize per write.
func growFile(b []byte, n int64) []byte {
	if int64(cap(b)) >= n {
		old := len(b)
		b = b[:n]
		clear(b[old:])
		return b
	}
	grown := make([]byte, n, n+n/2)
	copy(grown, b)
	return grown
}

// appendI64 appends v to buf in the same wire format without the
// intermediate slice I64 escapes to the heap.
func appendI64(buf []byte, v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(buf, b[:]...)
}

// Int decodes an int64 argument/result.
func Int(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b[:8]))
}
