// Package util is a helper outside both the core and the boundary: its
// effects only matter when workload code reaches them.
package util

import "net"

// Leak is reached from app.ViaUtil, so its socket open is a finding
// attributed to that root.
func Leak() error {
	_, err := net.Dial("tcp", "localhost:1") // want `net\.Dial bypasses the intercepted event alphabet \(reachable from workload function icept/app\.ViaUtil\)`
	return err
}

// Audited is reached only through a //failtrans:uninterceptible call
// line, which cuts the edge — silent.
func Audited() error {
	_, err := net.Dial("tcp", "localhost:2")
	return err
}

// Unreached has the same effect but no workload path to it — silent.
func Unreached() {
	net.Dial("tcp", "localhost:3")
}
