package recovery

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquivalentExactMatch(t *testing.T) {
	got := []string{"a", "b", "c"}
	eq, complete := Equivalent(got, got)
	if !eq || !complete {
		t.Error("identical sequences must be complete-equivalent")
	}
}

func TestEquivalentWithDuplicates(t *testing.T) {
	// After a failure the application re-emits "b" before continuing.
	got := []string{"a", "b", "b", "c"}
	legal := []string{"a", "b", "c"}
	eq, complete := Equivalent(got, legal)
	if !eq || !complete {
		t.Error("repeats of earlier events must be allowed")
	}
}

func TestEquivalentHeadsTails(t *testing.T) {
	// The paper's Figure 1: a run outputs heads then tails, but no
	// failure-free execution outputs both.
	got := []string{"heads", "tails"}
	if eq, _ := Equivalent(got, []string{"heads"}); eq {
		t.Error("heads,tails is not equivalent to heads")
	}
	if eq, _ := Equivalent(got, []string{"tails"}); eq {
		t.Error("heads,tails is not equivalent to tails")
	}
	if ConsistentAgainstAny(got, [][]string{{"heads"}, {"tails"}}) {
		t.Error("heads,tails must not be consistent against either legal run")
	}
	if !ConsistentAgainstAny([]string{"heads", "heads"}, [][]string{{"heads"}, {"tails"}}) {
		t.Error("a duplicated heads is consistent with the heads run")
	}
}

func TestEquivalentIncomplete(t *testing.T) {
	got := []string{"a"}
	legal := []string{"a", "b"}
	eq, complete := Equivalent(got, legal)
	if !eq {
		t.Error("a prefix extends the legal sequence")
	}
	if complete {
		t.Error("a strict prefix is not complete")
	}
	if !ExtendsLegal(got, legal) {
		t.Error("ExtendsLegal should accept a prefix")
	}
}

func TestEquivalentWrongEvent(t *testing.T) {
	if eq, _ := Equivalent([]string{"a", "x"}, []string{"a", "b"}); eq {
		t.Error("an event that is neither next-legal nor a repeat must fail")
	}
}

func TestEquivalentRepeatBeforeFirstOutput(t *testing.T) {
	// A "repeat" of something never output is not a repeat.
	if eq, _ := Equivalent([]string{"b", "a"}, []string{"a", "b"}); eq {
		t.Error("out-of-order first event must fail")
	}
}

func TestEquivalentEmpty(t *testing.T) {
	if eq, complete := Equivalent(nil, nil); !eq || !complete {
		t.Error("empty vs empty must be complete-equivalent")
	}
	if eq, complete := Equivalent(nil, []string{"a"}); !eq || complete {
		t.Error("empty output extends but does not complete a nonempty legal run")
	}
}

// TestEquivalentPropertyInsertingRepeats: inserting a repeat of any already
// produced event at any later position preserves equivalence.
func TestEquivalentPropertyInsertingRepeats(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		legal := make([]string, n)
		for i := range legal {
			legal[i] = string(rune('a' + r.Intn(4)))
		}
		got := append([]string(nil), legal...)
		// Insert up to 3 repeats.
		for k := 0; k < r.Intn(4); k++ {
			pos := 1 + r.Intn(len(got))
			dup := got[r.Intn(pos)]
			got = append(got[:pos], append([]string{dup}, got[pos:]...)...)
		}
		eq, complete := Equivalent(got, legal)
		return eq && complete
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTimelineCommitAfterActivation(t *testing.T) {
	ft := FaultTimeline{Commits: []int{5, 20}, LastTransientND: 2, Activation: 10, Crash: 30}
	if !ft.CommitAfterActivation() {
		t.Error("commit at 20 is within [10,30]")
	}
	if ft.RecoverySucceeds() {
		t.Error("recovery must fail when a commit follows activation")
	}
}

func TestFaultTimelineCommitBeforeActivationStillViolates(t *testing.T) {
	// Commit between the transient ND event and the activation is on the
	// dangerous path even though it precedes the corruption.
	ft := FaultTimeline{Commits: []int{5}, LastTransientND: 2, Activation: 10, Crash: 30}
	if ft.CommitAfterActivation() {
		t.Error("commit at 5 is before activation")
	}
	if !ft.ViolatesLoseWork() {
		t.Error("commit on (ND, crash] violates Lose-work")
	}
	if !ft.RecoverySucceeds() {
		t.Error("the paper's measured criterion (commit after activation) passes here")
	}
}

func TestFaultTimelineSafeCommit(t *testing.T) {
	ft := FaultTimeline{Commits: []int{1}, LastTransientND: 2, Activation: 10, Crash: 30}
	if ft.ViolatesLoseWork() {
		t.Error("commit before the dangerous path must not violate")
	}
}

func TestFaultTimelineBohrbug(t *testing.T) {
	ft := FaultTimeline{LastTransientND: -1, Activation: 10, Crash: 30}
	if !ft.ViolatesLoseWork() {
		t.Error("a Bohrbug inherently violates Lose-work (initial state is committed)")
	}
}

func TestFaultTimelineCrashBoundaryInclusive(t *testing.T) {
	ft := FaultTimeline{Commits: []int{30}, LastTransientND: 0, Activation: 10, Crash: 30}
	if !ft.CommitAfterActivation() || !ft.ViolatesLoseWork() {
		t.Error("a commit at the crash position is on the dangerous path")
	}
}
