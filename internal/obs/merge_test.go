package obs

import (
	"testing"
	"time"
)

// TestHistogramMergeBucketAlignment is the mergeability contract: observing
// a value set split across two histograms and merging must equal observing
// the whole set into one — bucket for bucket, plus Count/Sum/Max.
func TestHistogramMergeBucketAlignment(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 20, 1 << 40, 3}
	var whole, a, b Histogram
	for i, v := range vals {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatalf("merged halves != whole:\nmerged %+v\nwhole  %+v", a, whole)
	}
}

func TestHistogramMergeMaxAndNil(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	b.Observe(500)
	a.Merge(&b)
	if a.Max != 500 {
		t.Fatalf("Max = %d, want 500", a.Max)
	}
	if a.Count != 2 || a.Sum != 505 {
		t.Fatalf("Count/Sum = %d/%d, want 2/505", a.Count, a.Sum)
	}
	before := a
	a.Merge(nil)
	if a != before {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

// TestHistogramMergeEmpty checks the identity element: merging an empty
// histogram changes nothing, and merging into an empty histogram copies.
func TestHistogramMergeEmpty(t *testing.T) {
	var a, empty Histogram
	a.Observe(42)
	want := a
	a.Merge(&empty)
	if a != want {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	var dst Histogram
	dst.Merge(&a)
	if dst != a {
		t.Fatal("merging into an empty histogram did not copy it")
	}
}

func TestHistogramMergeQuantiles(t *testing.T) {
	// Quantiles over a merged histogram must match the union distribution's.
	var union, lo, hi Histogram
	for i := int64(1); i <= 1000; i++ {
		union.Observe(i)
		if i <= 500 {
			lo.Observe(i)
		} else {
			hi.Observe(i)
		}
	}
	lo.Merge(&hi)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := lo.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %d after merge, want %d", q, got, want)
		}
	}
}

// TestMetricsMerge exercises the registry-level merge: counter sums, gauge
// max, histogram folds, slot growth, and the syscall map union.
func TestMetricsMerge(t *testing.T) {
	a := NewMetrics(1)
	b := NewMetrics(2)
	a.Steps = 10
	b.Steps = 32
	a.Procs[0].Commits = 3
	a.Procs[0].InboxPeak = 7
	a.Procs[0].CommitLatency.ObserveDuration(time.Millisecond)
	b.Procs[0].Commits = 4
	b.Procs[0].InboxPeak = 5
	b.Procs[0].CommitLatency.ObserveDuration(2 * time.Millisecond)
	b.Procs[1].Rollbacks = 9
	b.Vista[1].PagesDirtied = 11
	a.SyscallByName["read"] = 2
	b.SyscallByName["read"] = 3
	b.SyscallByName["write"] = 1

	a.Merge(b)
	if a.Steps != 42 {
		t.Fatalf("Steps = %d, want 42", a.Steps)
	}
	if len(a.Procs) != 2 || len(a.Vista) != 2 {
		t.Fatalf("slots = %d/%d, want 2/2 (growth by merge)", len(a.Procs), len(a.Vista))
	}
	if a.Procs[0].Commits != 7 {
		t.Fatalf("Procs[0].Commits = %d, want 7", a.Procs[0].Commits)
	}
	if a.Procs[0].InboxPeak != 7 {
		t.Fatalf("InboxPeak = %d, want max 7", a.Procs[0].InboxPeak)
	}
	if a.Procs[0].CommitLatency.Count != 2 {
		t.Fatalf("CommitLatency.Count = %d, want 2", a.Procs[0].CommitLatency.Count)
	}
	if a.Procs[1].Rollbacks != 9 || a.Vista[1].PagesDirtied != 11 {
		t.Fatal("grown slots did not receive o's values")
	}
	if a.SyscallByName["read"] != 5 || a.SyscallByName["write"] != 1 {
		t.Fatalf("SyscallByName = %v, want read:5 write:1", a.SyscallByName)
	}
	a.Merge(nil) // must not panic
}
