package trace

import (
	"bytes"
	"strings"
	"testing"

	"failtrans/internal/event"
)

// FuzzLoad: arbitrary input must load or error, never panic; successful
// loads must re-save identically.
func FuzzLoad(f *testing.F) {
	tr := event.NewTrace(2)
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Send, Msg: 1, Peer: 1})
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Receive, Msg: 1, Peer: 0, ND: event.TransientND})
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"numProcs":1,"events":0}`)
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		got, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Save(&out, got); err != nil {
			t.Fatalf("re-save of loaded trace failed: %v", err)
		}
		again, err := Load(&out)
		if err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
		if len(again.Events) != len(got.Events) {
			t.Fatal("round trip changed event count")
		}
	})
}
