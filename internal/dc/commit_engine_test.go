package dc

import (
	"reflect"
	"testing"
	"time"

	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// idleProg is a program whose state never changes and whose MarshalState
// reuses one buffer, so a commit of it measures pure commit-engine cost.
type idleProg struct {
	buf   []byte
	state [64]byte
}

func (p *idleProg) Name() string            { return "idle" }
func (p *idleProg) Init(ctx *sim.Ctx) error { p.buf = make([]byte, 0, 256); return nil }
func (p *idleProg) Step(ctx *sim.Ctx) sim.Status {
	return sim.Done
}
func (p *idleProg) MarshalState() ([]byte, error) {
	return append(p.buf[:0], p.state[:]...), nil
}
func (p *idleProg) UnmarshalState(d []byte) error { copy(p.state[:], d); return nil }

// TestCommitSteadyStateZeroAllocs pins the tentpole acceptance property at
// the Discount Checking layer: a steady-state commit of an idle process —
// marshal, page diff, bookkeeping — performs zero heap allocations.
func TestCommitSteadyStateZeroAllocs(t *testing.T) {
	w := sim.NewWorld(1, &idleProg{})
	w.RecordTrace = false
	d := New(w, protocol.CPVS, stablestore.Rio)
	if err := d.Attach(); err != nil {
		t.Fatal(err)
	}
	p := w.Procs[0]
	for k := 0; k < 3; k++ { // warm the image buffer and undo pool
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		if err := d.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("steady-state commit allocates %.1f times per run, want 0", n)
	}
}

// TestParallelCoordinatedCommitDeterministic runs the requester/responder
// pair under CPV-2PC twice — once on the serial coordinated-commit path,
// once with the member page diffs fanned out to goroutines — and demands
// byte-identical traces, outputs, virtual clocks and stats. The parallel
// diff phase must not reorder or perturb any globally visible bookkeeping.
func TestParallelCoordinatedCommitDeterministic(t *testing.T) {
	type outcome struct {
		events  interface{}
		outputs []string
		clock   time.Duration
		ckpts   int
		bytes   int64
		rounds  int
	}
	run := func(serial bool) outcome {
		w := sim.NewWorld(13, &requester{Rounds: 5}, &responder{Max: 5})
		d := New(w, protocol.CPV2PC, stablestore.Rio)
		d.SerialCommit = serial
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return outcome{
			events:  w.Trace.Events,
			outputs: w.GlobalOutputs,
			clock:   w.Clock,
			ckpts:   d.Stats.TotalCheckpoints(),
			bytes:   d.Stats.CommitBytes,
			rounds:  d.Stats.TwoPhaseRounds,
		}
	}
	serial := run(true)
	parallel := run(false)
	if serial.rounds == 0 {
		t.Fatal("workload triggered no coordinated commits; test is vacuous")
	}
	if serial.clock != parallel.clock || serial.ckpts != parallel.ckpts ||
		serial.bytes != parallel.bytes || serial.rounds != parallel.rounds {
		t.Fatalf("serial/parallel stats diverge: clock %v/%v ckpts %d/%d bytes %d/%d rounds %d/%d",
			serial.clock, parallel.clock, serial.ckpts, parallel.ckpts,
			serial.bytes, parallel.bytes, serial.rounds, parallel.rounds)
	}
	if !reflect.DeepEqual(serial.outputs, parallel.outputs) {
		t.Fatalf("outputs diverge:\nserial:   %q\nparallel: %q", serial.outputs, parallel.outputs)
	}
	if !reflect.DeepEqual(serial.events, parallel.events) {
		t.Fatal("event traces diverge between serial and parallel coordinated commits")
	}
}
