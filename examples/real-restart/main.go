// real-restart: failure transparency across REAL process restarts.
//
// The other examples simulate crashes inside one process. This one
// persists the editor's checkpoint image in a crash-safe file store
// (append-only log, per-record CRCs, torn-write recovery), so you can kill
// the actual program between invocations and the session continues where
// its last commit left it:
//
//	go run ./examples/real-restart        # types a few keystrokes, exits
//	go run ./examples/real-restart        # continues the same session
//	go run ./examples/real-restart -reset # start over
//
// Every invocation plays the role of "execution until a stop failure";
// the next invocation is the recovery.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"failtrans"
	"failtrans/internal/apps/nvi"
	"failtrans/internal/kernel"
	"failtrans/internal/stablestore"
)

const session = "iFailure transparency works across real restarts.\x1b" +
	"oEach run executes a slice of the session and commits.\x1b" +
	"oKill it anywhere; the next run resumes from the last commit.\x1b" +
	":wq\n"

const keystrokesPerRun = 20

func main() {
	reset := flag.Bool("reset", false, "discard the persisted session")
	statePath := flag.String("state", "/tmp/failtrans-restart.db", "checkpoint store path")
	flag.Parse()

	if *reset {
		os.Remove(*statePath)
		fmt.Println("session reset")
		return
	}
	store, err := stablestore.OpenFile(*statePath)
	if err != nil {
		panic(err)
	}
	defer store.Close()

	e := nvi.New("novel.txt", []string{"draft"})
	e.ThinkTime = 0
	w := failtrans.NewWorld(1, e)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = nvi.Script(session)

	// Recovery: load the persisted checkpoint image, if any.
	if img, ok := store.Get("checkpoint"); ok {
		if err := w.Init(); err != nil {
			panic(err)
		}
		if err := w.Procs[0].RestoreCheckpointImage(img); err != nil {
			panic(err)
		}
		fmt.Printf("resumed at keystroke %d\n", e.Keystroke)
	} else {
		fmt.Println("fresh session")
	}

	// Execute a slice of the session, committing after every keystroke
	// (the CPVS discipline, done by hand against the durable store).
	start := e.Keystroke
	for e.Keystroke < start+keystrokesPerRun && !e.Done() {
		more, err := w.Step()
		if err != nil {
			panic(err)
		}
		if !more {
			break
		}
		img, err := w.Procs[0].CheckpointImage(false)
		if err != nil {
			panic(err)
		}
		if err := store.Put("checkpoint", img); err != nil {
			panic(err)
		}
	}

	fmt.Printf("executed through keystroke %d; document now:\n", e.Keystroke)
	for _, l := range e.Contents() {
		fmt.Println("  |", l)
	}
	if e.Done() {
		fmt.Println("session complete — run with -reset to start over")
	} else {
		fmt.Println("kill/restart me to continue (state in", *statePath+")")
	}
}
