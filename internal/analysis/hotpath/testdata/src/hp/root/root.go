// Package root is the entry-point half of the hotpathcheck fixture: Commit
// carries the //failtrans:hotpath annotation, so its body and everything it
// statically calls — including hp/lib across the package boundary — must be
// allocation-free or explicitly waved off.
package root

import (
	"fmt"

	"hp/lib"
)

// T is a fake segment with a reusable buffer.
type T struct {
	buf []byte
	n   int
}

// Commit is the annotated hot-path root.
//
//failtrans:hotpath
func (t *T) Commit(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n) // want `fmt.Errorf allocates` `argument converts concrete int to interface`
	}
	b := make([]byte, n) // want `hot path \(via root\.\(\*T\)\.Commit\): make allocates`
	t.buf = append(t.buf[:0], b...) // the reuse idiom: assigned back to its (resliced) slice — silent
	lost := append(b, 1) // want `append result is neither assigned back to its slice nor returned`
	p := &T{n: len(lost)} // want `address-of composite literal escapes to the heap`
	boxed := any(p.n) // want `conversion boxes concrete int into interface any`
	_ = boxed
	s := string(t.buf) // want `\[\]byte to string conversion copies`
	t.n = len(s) + lib.Helper(t.buf)
	lib.Cold() //failtrans:alloc fixture: sanctioned cold branch, propagation stops at this call
	f := func() { t.n++ } // want `closure captures "t" by reference`
	f()
	return nil
}

// Grow shows the returned-append idiom staying silent.
//
//failtrans:hotpath
func (t *T) Grow(data []byte) []byte {
	return append(t.buf, data...)
}

// Bind exercises the method-value blind spot: returning x.Method as a
// func value binds x into a heap-allocated closure.
//
//failtrans:hotpath
func (t *T) Bind() func(int) error {
	return t.Commit // want `method value Commit binds its receiver into a heap-allocated closure`
}

// Indirect contrasts the three shapes: a method expression is a static
// func value (silent), a direct call is a call (silent), a bound method
// value allocates.
//
//failtrans:hotpath
func (t *T) Indirect() error {
	direct := (*T).Commit // method expression: no receiver bound — silent
	_ = direct
	h := t.Commit // want `method value Commit binds its receiver into a heap-allocated closure`
	return h(1)
}

// NotHot allocates freely: it is neither annotated nor reachable from an
// annotated root.
func NotHot() []byte {
	return make([]byte, 1024)
}
