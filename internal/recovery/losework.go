package recovery

// This file implements the Section 4 measurement methodology: given the
// timeline of a propagation failure — the last transient non-deterministic
// event before the bug was activated, the fault activation, the eventual
// crash, and the positions of the commits the process executed — decide
// whether the run violated the Lose-work invariant.
//
// The dangerous path of the failure extends from the transient ND event at
// its beginning (or from the initial state, for Bohrbugs) through the fault
// activation to the crash event; any commit on that span violates
// Lose-work and makes application-generic recovery impossible.

// FaultTimeline records the positions, in a single process's event counter,
// of the marks relevant to one injected fault. Positions are arbitrary
// monotone integers (the simulator's per-process step counter).
type FaultTimeline struct {
	// Commits holds the step positions of the process's commit events.
	Commits []int
	// LastTransientND is the position of the last transient
	// non-deterministic event executed before the fault activation, or
	// -1 if none exists (a Bohrbug: the dangerous path extends all the
	// way back to the initial state, which is always committed).
	LastTransientND int
	// Activation is the position at which the fault was activated (the
	// buggy code executed).
	Activation int
	// Crash is the position of the crash event. Crash must be >=
	// Activation.
	Crash int
}

// CommitAfterActivation reports whether some commit falls in
// [Activation, Crash] — the portion of the dangerous path the paper's
// fault-injection study measures directly (Table 1).
func (ft FaultTimeline) CommitAfterActivation() bool {
	for _, c := range ft.Commits {
		if c >= ft.Activation && c <= ft.Crash {
			return true
		}
	}
	return false
}

// ViolatesLoseWork reports whether the run committed anywhere on the
// dangerous path: in (LastTransientND, Crash]. A Bohrbug
// (LastTransientND < 0) violates inherently, because the initial state of
// any application is always committed.
func (ft FaultTimeline) ViolatesLoseWork() bool {
	if ft.LastTransientND < 0 {
		return true
	}
	for _, c := range ft.Commits {
		if c > ft.LastTransientND && c <= ft.Crash {
			return true
		}
	}
	return false
}

// RecoverySucceeds is the end-to-end criterion of the paper's experiment:
// with the fault suppressed during re-execution, recovery succeeds iff the
// process did not commit after the fault activation (the committed state
// then predates all corruption, and replaying from it with the activation
// suppressed completes the run).
func (ft FaultTimeline) RecoverySucceeds() bool {
	return !ft.CommitAfterActivation()
}
