package bench

import (
	"fmt"
	"io"
	"testing"
	"time"

	"failtrans/internal/apps/fleet"
	"failtrans/internal/dc"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// This file is the fleet-scale scalability driver: protocol overhead vs
// fleet size at 10²–10⁵ processes, plus the scan-vs-indexed scheduler
// comparison the O(active) refactor is judged by (BENCH.json `fleet` rows;
// CI gates the n=10⁴ step-throughput ratio).

// FleetScanMax caps the fleet sizes the legacy scan scheduler is measured
// at: the scan is O(procs) per step, so a 10⁵-proc run would cost ~10¹⁰
// proc-visits — the very behavior the index removes. The indexed points
// above the cap stand alone.
const FleetScanMax = 10_000

// FleetProtocolMax caps the sizes the seven recoverable protocols are
// measured at. Discount Checking's per-process bookkeeping (vista segments,
// logs) makes 10⁵-proc recoverable runs minutes-long; the baseline curve
// still extends to 10⁵ to show scheduler scaling alone.
const FleetProtocolMax = 10_000

// FleetPoint is one (size, protocol, scheduler) fleet measurement.
type FleetPoint struct {
	Procs    int    `json:"procs"`
	Protocol string `json:"protocol"` // "NONE" = unrecoverable baseline
	Sched    string `json:"sched"`    // "indexed" | "scan"

	Steps  int   `json:"steps"`
	WallNs int64 `json:"wall_ns"`
	// StepNs is wall nanoseconds per scheduling decision — the number the
	// O(active) claim is measured by.
	StepNs float64 `json:"step_ns"`
	// VirtualUs is the run's virtual duration; protocol overhead at one
	// size is VirtualUs vs the NONE point's.
	VirtualUs    int64 `json:"virtual_us"`
	Checkpoints  int   `json:"checkpoints,omitempty"`
	SchedUpdates int64 `json:"sched_updates,omitempty"`
}

// FleetResult is the full sweep.
type FleetResult struct {
	Sizes  []int        `json:"sizes"`
	Points []FleetPoint `json:"points"`
	// SpeedupAt is the indexed-vs-scan step-throughput ratio per size for
	// the NONE baseline (sizes above FleetScanMax are absent).
	SpeedupAt map[string]float64 `json:"speedup_at"`
}

// runFleetOnce runs one fleet cell and measures it.
func runFleetOnce(n int, pol *protocol.Policy, scan bool) (FleetPoint, error) {
	cfg := fleet.Sized(n)
	w := sim.NewWorld(23, fleet.Fleet(cfg)...)
	w.ScanSched = scan
	w.RecordTrace = false
	w.MaxSteps = 100_000_000
	m, _ := w.EnableObs(false)
	name := "NONE"
	var d *dc.DC
	if pol != nil {
		name = pol.Name
		d = dc.New(w, *pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			return FleetPoint{}, err
		}
	}
	sched := "indexed"
	if scan {
		sched = "scan"
	}
	start := time.Now()
	if err := w.Run(); err != nil {
		return FleetPoint{}, err
	}
	wall := time.Since(start)
	if !w.AllDone() {
		return FleetPoint{}, fmt.Errorf("bench: fleet n=%d %s/%s did not finish (%d/%d done)",
			n, name, sched, w.DoneCount(), len(w.Procs))
	}
	pt := FleetPoint{
		Procs:        len(w.Procs),
		Protocol:     name,
		Sched:        sched,
		Steps:        w.StepCount(),
		WallNs:       wall.Nanoseconds(),
		VirtualUs:    int64(w.Clock / time.Microsecond),
		SchedUpdates: m.SchedUpdates,
	}
	if pt.Steps > 0 {
		pt.StepNs = float64(pt.WallNs) / float64(pt.Steps)
	}
	if d != nil {
		pt.Checkpoints = d.Stats.TotalCheckpoints()
	}
	return pt, nil
}

// FleetCurves measures the overhead-vs-fleet-size sweep: for every size the
// unrecoverable baseline under both schedulers (scan capped at
// FleetScanMax), and every measured protocol under the indexed scheduler
// (capped at FleetProtocolMax).
func FleetCurves(sizes []int) (*FleetResult, error) {
	res := &FleetResult{Sizes: sizes, SpeedupAt: map[string]float64{}}
	for _, n := range sizes {
		base, err := runFleetOnce(n, nil, false)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, base)
		if n <= FleetScanMax {
			scanPt, err := runFleetOnce(n, nil, true)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, scanPt)
			if base.StepNs > 0 {
				res.SpeedupAt[fmt.Sprint(n)] = scanPt.StepNs / base.StepNs
			}
		}
		if n > FleetProtocolMax {
			continue
		}
		for _, pol := range protocol.Measured() {
			pol := pol
			pt, err := runFleetOnce(n, &pol, false)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// FleetSizesForScale picks the default sweep sizes: the full 10²–10⁵ curve
// at every scale. The expensive cells are capped by size, not by scale —
// the scan and the protocols stop at 10⁴, so the 10⁵ point costs only one
// indexed baseline run (~2s) and fits the CI budget.
func FleetSizesForScale(scale int) []int {
	return []int{100, 1_000, 10_000, 100_000}
}

// Print renders the sweep.
func (r *FleetResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fleet scalability (sizes %v):\n", r.Sizes)
	fmt.Fprintf(w, "%8s %-12s %-8s %10s %12s %10s %12s %8s\n",
		"procs", "protocol", "sched", "steps", "wall", "ns/step", "virtual", "ckpts")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %-12s %-8s %10d %12s %10.0f %12s %8d\n",
			p.Procs, p.Protocol, p.Sched, p.Steps,
			time.Duration(p.WallNs).Round(time.Millisecond),
			p.StepNs, time.Duration(p.VirtualUs)*time.Microsecond, p.Checkpoints)
	}
	for _, n := range r.Sizes {
		if x, ok := r.SpeedupAt[fmt.Sprint(n)]; ok {
			fmt.Fprintf(w, "indexed vs scan at n=%d: %.1fx step throughput\n", n, x)
		}
	}
}

// sleeper is the SchedUpdate microbenchmark's program: every step does one
// Sleep and nothing else, so a world of sleepers measures pure scheduler
// cost — one pick, one reindex, no events, no allocation.
type sleeper struct{ d time.Duration }

func (s *sleeper) Name() string                  { return "sleeper" }
func (s *sleeper) Init(ctx *sim.Ctx) error       { return nil }
func (s *sleeper) MarshalState() ([]byte, error) { return nil, nil }
func (s *sleeper) UnmarshalState([]byte) error   { return nil }
func (s *sleeper) Step(ctx *sim.Ctx) sim.Status {
	ctx.Sleep(s.d)
	return sim.Sleeping
}

// benchSchedUpdate measures one scheduling decision on a 10⁴-process world
// where every process is a sleeper: each Step is a heap peek plus exactly
// one reindex of the stepped process (steady state: zero allocations).
func benchSchedUpdate(b *testing.B) {
	const n = 10_000
	progs := make([]sim.Program, n)
	for i := range progs {
		progs[i] = &sleeper{d: time.Duration(1+i%7) * time.Millisecond}
	}
	w := sim.NewWorld(3, progs...)
	w.RecordTrace = false
	if err := w.Init(); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Step(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetStep measures end-to-end scheduling-decision cost on the real
// 10⁴-proc fleet baseline, rebuilding the world off-clock whenever a run
// drains.
func benchFleetStep(b *testing.B) {
	cfg := fleet.Sized(10_000)
	build := func() *sim.World {
		w := sim.NewWorld(23, fleet.Fleet(cfg)...)
		w.RecordTrace = false
		if err := w.Init(); err != nil {
			b.Fatal(err)
		}
		return w
	}
	b.StopTimer()
	w := build()
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		more, err := w.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !more {
			b.StopTimer()
			w = build()
			b.StartTimer()
		}
	}
}
