// Package faults implements the paper's Section 4 measurements: the
// application fault-injection study (Table 1 — how often upholding
// Save-work violates Lose-work) and the operating-system fault-injection
// study (Table 2 — how often applications fail to recover from kernel
// faults).
//
// Both studies run nvi and postgres under Discount Checking with the CPVS
// protocol, "the best protocol possible for not violating Lose-work for
// non-distributed applications" per the paper, and use the same fault model
// (seven source-level programming-error types).
package faults

import (
	"fmt"
	"math/rand"
)

// NviSession generates a deterministic pseudo-random vi editing session of
// roughly n keystrokes: movement bursts, insert-mode text, character and
// line deletes, periodic :w saves, ending with :wq.
func NviSession(seed int64, n int) string {
	r := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	var out []byte
	emit := func(s string) { out = append(out, s...) }
	for len(out) < n {
		switch r.Intn(10) {
		case 0, 1, 2: // movement burst
			moves := "hjkl"
			for i := 0; i < 2+r.Intn(6); i++ {
				emit(string(moves[r.Intn(4)]))
			}
		case 3, 4, 5: // insert a word
			emit("i")
			emit(words[r.Intn(len(words))])
			emit(" ")
			emit("\x1b")
		case 6: // open a line
			emit("o")
			emit(words[r.Intn(len(words))])
			emit("\x1b")
		case 7: // delete characters
			emit("0")
			for i := 0; i < 1+r.Intn(3); i++ {
				emit("x")
			}
		case 8: // delete a line
			emit("dd")
		default: // save
			emit(":w\n")
		}
	}
	emit(":wq\n")
	return string(out)
}

// NviInitial is the starting document for the study sessions.
func NviInitial() []string {
	doc := make([]string, 40)
	for i := range doc {
		doc[i] = fmt.Sprintf("line %02d: the quick brown fox jumps over the lazy dog", i)
	}
	return doc
}

// PostgresSession generates a deterministic pseudo-random query stream of n
// operations: inserts, selects, updates, deletes and range scans over a
// growing key space, with periodic consistency checks (as a production
// engine's background validation would run).
func PostgresSession(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	var out []string
	maxKey := 1
	val := func() string {
		return fmt.Sprintf("payload-%d-%s", r.Intn(1000), "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"[:10+r.Intn(20)])
	}
	for len(out) < n {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // insert
			out = append(out, fmt.Sprintf("insert %d %s", maxKey, val()))
			maxKey++
		case 4, 5: // select
			out = append(out, fmt.Sprintf("select %d", r.Intn(maxKey)))
		case 6: // update
			out = append(out, fmt.Sprintf("update %d %s", r.Intn(maxKey), val()))
		case 7: // delete
			out = append(out, fmt.Sprintf("delete %d", r.Intn(maxKey)))
		case 8: // scan
			lo := r.Intn(maxKey)
			out = append(out, fmt.Sprintf("scan %d %d", lo, lo+r.Intn(20)))
		default:
			out = append(out, "flush")
		}
	}
	out = append(out, "quit")
	return out
}
