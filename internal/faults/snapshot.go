package faults

import (
	"fmt"
	"time"

	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// This file is the campaign-side consumer of the sim snapshot/fork engine:
// a prefix-snapshot cache. Every injection run of a study executes the
// same clean session — fixed by the study seed — up to its injection
// point; only the injection point varies. One template run per study
// executes that clean session once, capturing world snapshots along the
// way; each injection run then forks the deepest snapshot strictly before
// its injection point and resumes, re-executing only the prefix tail
// instead of the whole prefix.
//
// Byte-identity argument: a snapshot is taken at a step boundary of a
// template configured exactly as an injection run is before its fault
// activates (same world seed, same DC policy and flags; the injector
// differences are invisible before activation — Ctx.Fault records no
// event, and both the template's visit counter and an unfired one-shot
// return NoFault with no other side effect). World.Fork reproduces the
// complete simulation state, so the forked run's remaining execution is
// step-for-step the from-scratch run's. The one piece of prefix history a
// fork cannot regenerate — the commit positions its Timeline must report —
// is stored in the snapshot and prepended.
//
// The cache is immutable once built; PR 3's parallel campaign workers fork
// it concurrently without locking (Fork only reads the template).

// snapshotEveryVisits spaces AppStudy snapshots in fault-site visits (the
// unit fire points are expressed in).
const snapshotEveryVisits = 8

// osSnapshotSlices divides the OS study's clean duration into this many
// snapshot intervals (injection points are drawn in virtual time).
const osSnapshotSlices = 64

// visitCounter counts fault-site visits without ever firing — the
// template's stand-in for an injection run's not-yet-fired injector.
type visitCounter struct{ visits int }

//failtrans:hotpath
func (v *visitCounter) At(p *sim.Proc, site string) sim.FaultKind {
	v.visits++
	return sim.NoFault
}

// prefixSnapshot is one memoized point of the clean session.
type prefixSnapshot struct {
	// visits is the fault-site visit count completed before the snapshot
	// (AppStudy lookups); clock is the virtual time reached (OSStudy
	// lookups); steps is the world step count — what a fork saves.
	visits int
	clock  time.Duration
	steps  int
	// commits holds the commit positions the template recorded up to this
	// point; forks prepend it so their timelines cover the whole run.
	commits []int
	// world is the quiescent deep copy injection runs fork from. It is
	// never stepped.
	world *sim.World
}

// prefixCache is one study's snapshot sequence, in capture order (so
// visits and clock are both nondecreasing).
type prefixCache struct {
	snaps []prefixSnapshot
}

// byVisits returns the deepest snapshot strictly before the given fire
// point. Strictly: a one-shot injector seeded with the snapshot's visit
// count must still have the firing visit ahead of it. The baseline
// snapshot (visits 0, taken before the first step) matches every fire
// point, so there is always a hit.
//
//failtrans:hotpath
func (c *prefixCache) byVisits(fireAt int) *prefixSnapshot {
	best := &c.snaps[0]
	for i := range c.snaps {
		if c.snaps[i].visits < fireAt {
			best = &c.snaps[i]
		}
	}
	return best
}

// byClock returns the deepest snapshot strictly before the given virtual
// injection time. Strictly: the injection check runs at every post-step
// boundary after the fork, and every pre-snapshot boundary had
// Clock <= snap.clock < injectAt, so the fork injects at the same boundary
// the from-scratch loop does.
//
//failtrans:hotpath
func (c *prefixCache) byClock(injectAt time.Duration) *prefixSnapshot {
	best := &c.snaps[0]
	for i := range c.snaps {
		if c.snaps[i].clock < injectAt {
			best = &c.snaps[i]
		}
	}
	return best
}

// capture forks the running template into a new snapshot. With COW set the
// snapshot world is frozen immediately: it exists only to be forked, and
// freezing switches those forks from O(state) deep copies to O(metadata)
// overlays while turning any accidental template mutation into a panic.
func (c *prefixCache) capture(s *AppStudy, w *sim.World, visits int, commits []int) error {
	fw, err := w.Fork()
	if err != nil {
		return err
	}
	if s.COW {
		fw.Freeze()
	}
	c.snaps = append(c.snaps, prefixSnapshot{
		visits:  visits,
		clock:   w.Clock,
		steps:   w.StepCount(),
		commits: append([]int(nil), commits...),
		world:   fw,
	})
	if s.CampaignObs != nil {
		s.CampaignObs.Snapshot.AddSnapshot()
	}
	return nil
}

// forkSnap serves one injection run from a snapshot: a fresh world plus
// its recovery layer, with fork latency and steps saved accounted.
func (s *AppStudy) forkSnap(snap *prefixSnapshot) (*sim.World, *dc.DC, error) {
	var start int64
	if s.WallClock != nil {
		start = s.WallClock()
	}
	w, err := snap.world.Fork()
	if err != nil {
		return nil, nil, err
	}
	if s.CampaignObs != nil {
		ns := int64(-1)
		if s.WallClock != nil {
			ns = s.WallClock() - start
		}
		s.CampaignObs.Snapshot.AddFork(snap.steps, ns)
	}
	d, ok := w.Recovery.(*dc.DC)
	if !ok {
		return nil, nil, fmt.Errorf("faults: forked recovery is %T, want *dc.DC", w.Recovery)
	}
	return w, d, nil
}

// buildPrefixCache runs the Table 1 template: the clean session under the
// study's exact injection-run configuration, snapshotted every
// snapshotEveryVisits fault-site visits. The template stops once every
// possible fire point is behind it.
func (s *AppStudy) buildPrefixCache() (*prefixCache, error) {
	w, err := s.buildWorld(s.Seed)
	if err != nil {
		return nil, err
	}
	w.RecordTrace = false
	vc := &visitCounter{}
	w.Faults = vc
	d := dc.New(w, s.Policy, stablestore.Rio)
	d.DisableRecovery = true
	d.CheckBeforeCommit = s.CheckBeforeCommit
	var commits []int
	d.CommitHook = func(p *sim.Proc, label string) {
		commits = append(commits, p.Steps)
	}
	if err := d.Attach(); err != nil {
		return nil, err
	}
	cache := &prefixCache{}
	if err := cache.capture(s, w, vc.visits, commits); err != nil {
		return nil, err
	}
	// fireAtFor draws from [fireBase, fireHorizon]; past that visit count
	// no injector can still fire, so deeper snapshots would serve nobody.
	horizon := s.fireHorizon()
	last := 0
	for vc.visits < horizon {
		more, err := w.Step()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if vc.visits >= last+snapshotEveryVisits {
			if err := cache.capture(s, w, vc.visits, commits); err != nil {
				return nil, err
			}
			last = vc.visits
		}
	}
	return cache, nil
}

// runOneSnap is RunOne served from the prefix cache: fork the deepest
// snapshot before the fire point, arm a one-shot injector seeded with the
// snapshot's visit count, and resume. Byte-identical to RunOne for the
// same (kind, injSeed).
func (s *AppStudy) runOneSnap(kind sim.FaultKind, injSeed int64, clean []string, cache *prefixCache) (RunResult, error) {
	var res RunResult
	fireAt := s.fireAtFor(injSeed)
	snap := cache.byVisits(fireAt)
	w, d, err := s.forkSnap(snap)
	if err != nil {
		return res, err
	}
	inj := &oneShot{kind: kind, fireAt: fireAt, visits: snap.visits}
	w.Faults = inj
	commits := append([]int(nil), snap.commits...)
	d.CommitHook = func(p *sim.Proc, label string) {
		commits = append(commits, p.Steps)
	}
	// The template ran veto-free (pre-activation states are never doomed,
	// so a veto would have deferred nothing anyway); the fork gets the
	// study's policy armed over its full commit history.
	s.armVeto(d, inj, &commits)
	if err := w.Run(); err != nil {
		return res, err
	}
	s.noteReplay(inj, snap.steps)
	s.noteCOW(w, d)
	res = s.finishRun(w, inj, commits, clean)
	if res.Crashed {
		res.Recovered = s.endToEndSnap(kind, inj.fireAt, cache)
	}
	if s.records() {
		// Every record field is fork-invariant (the fork resumed at the
		// template's step count and clock), so this record is
		// byte-identical to the one RunOne would have produced.
		res.Rec = s.ledgerRecord(kind, w, d, inj, commits, res)
	}
	return res, nil
}

// endToEndSnap is endToEnd served from the same cache: the clean prefix is
// identical with recovery enabled or disabled (the flags only matter after
// a crash, and the prefix has none), so the fork just flips the flag on.
func (s *AppStudy) endToEndSnap(kind sim.FaultKind, fireAt int, cache *prefixCache) bool {
	snap := cache.byVisits(fireAt)
	w, d, err := s.forkSnap(snap)
	if err != nil {
		return false
	}
	inj := &oneShot{kind: kind, fireAt: fireAt, visits: snap.visits}
	w.Faults = inj
	d.DisableRecovery = false
	if s.Veto != nil {
		commits := append([]int(nil), snap.commits...)
		d.CommitHook = func(p *sim.Proc, label string) {
			commits = append(commits, p.Steps)
		}
		s.armVeto(d, inj, &commits)
	}
	crashes := 0
	d.RecoveryHook = func(p *sim.Proc, reason string) {
		crashes++
		if crashes > 3 {
			// Crash-looping: the committed state re-triggers the
			// failure every time. Give up, as an operator would.
			d.DisableRecovery = true
		}
	}
	if err := w.Run(); err != nil {
		return false
	}
	s.noteReplay(inj, snap.steps)
	s.noteCOW(w, d)
	return w.AllDone()
}

// buildOSPrefixCache runs the Table 2 template: the clean session under a
// recovery-enabled DC (the OS study's injection-run configuration),
// snapshotted every 1/osSnapshotSlices of the clean duration. An unarmed
// scribble injector and no injector at all are indistinguishable before
// injection, so the template attaches none.
func (o *OSStudy) buildOSPrefixCache() (*prefixCache, error) {
	cleanDur, err := o.cleanDuration()
	if err != nil {
		return nil, err
	}
	w, err := o.buildWorld(o.Seed)
	if err != nil {
		return nil, err
	}
	w.RecordTrace = false
	d := dc.New(w, o.Policy, stablestore.Rio)
	if err := d.Attach(); err != nil {
		return nil, err
	}
	cache := &prefixCache{}
	if err := cache.capture(o.AppStudy, w, 0, nil); err != nil {
		return nil, err
	}
	// Injection times are drawn from [0.05, 0.95) of the clean duration;
	// snapshots past the draw ceiling would serve nobody.
	horizon := time.Duration(0.95 * float64(cleanDur))
	interval := cleanDur / osSnapshotSlices
	if interval <= 0 {
		interval = 1
	}
	nextAt := w.Clock + interval
	for w.Clock < horizon {
		more, err := w.Step()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if w.Clock >= nextAt {
			if err := cache.capture(o.AppStudy, w, 0, nil); err != nil {
				return nil, err
			}
			nextAt = w.Clock + interval
		}
	}
	return cache, nil
}

// runOneSnap is OSStudy.RunOne served from the prefix cache: fork the
// deepest snapshot before the injection time and resume the injection
// loop. Byte-identical to RunOne for the same (kind, injSeed).
func (o *OSStudy) runOneSnap(kind sim.FaultKind, injSeed int64, cache *prefixCache, rec *ledger.Record) (crashed, recovered, propagated bool, err error) {
	cleanDur, err := o.cleanDuration()
	if err != nil {
		return false, false, false, err
	}
	r := newSplitmix(injSeed)
	injectAt := time.Duration(float64(cleanDur) * (0.05 + 0.9*r.Float64()))
	snap := cache.byClock(injectAt)
	w, d, err := o.forkSnap(snap)
	if err != nil {
		return false, false, false, err
	}
	k := w.OS.(*kernel.Kernel)
	scribble := &memoryScribble{}
	w.Faults = scribble
	propRng := newSplitmix(injSeed ^ 0x2545f491)
	k.OnCorrupt = func(pid int) {
		if propRng.Float64() < scribbleProbability {
			scribble.armed = true
		}
	}
	crashes := 0
	d.RecoveryHook = func(p *sim.Proc, reason string) {
		crashes++
		if crashes > 3 {
			d.DisableRecovery = true // crash-looping on committed corruption
		}
	}
	window := osFaultWindow[kind]
	injected := false
	injSteps := -1
	o.armOSVeto(d, kind, &injected)
	for {
		more, err := w.Step()
		if err != nil {
			return false, false, false, err
		}
		if !more {
			break
		}
		if !injected && w.Clock >= injectAt {
			injected = true
			injSteps = w.StepCount()
			k.InjectFault(0, window)
			o.noteOSReplay(w.StepCount() - snap.steps)
		}
	}
	o.noteCOW(w, d)
	propagated = k.FaultCorrupted(0)
	if injected && crashes > 0 {
		crashed = true
		recovered = w.AllDone()
		propagated = propagated || scribble.fired
	}
	// Every record field is fork-invariant: the fork resumes at the
	// template's absolute step count and clock, and the forked DC's stats
	// carry the template's checkpoint count forward.
	o.fillOSRecord(rec, kind, w, d, injectAt, injSteps, injected, crashed, recovered, propagated)
	return crashed, recovered, propagated, nil
}

// noteOSReplay accounts one injection run's re-executed clean prefix (in
// world steps up to the injection boundary).
func (o *OSStudy) noteOSReplay(steps int) {
	if o.CampaignObs == nil {
		return
	}
	o.CampaignObs.Snapshot.AddReplay(steps)
}
