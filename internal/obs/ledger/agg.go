package ledger

import (
	"math/bits"

	"failtrans/internal/obs"
)

// GroupKey identifies one aggregation cell: a study's (app, protocol,
// medium, fault-kind) combination. Veto-phase runs aggregate separately
// (Veto true) so the main tables keep reporting the baseline and the veto
// section can pair each cell with its counterpart.
type GroupKey struct {
	Study    string
	App      string
	Protocol string
	Medium   string
	Kind     string
	Veto     bool
}

// Group accumulates one cell's cross-run aggregates. Every field is
// order-independent (sums, mergeable obs.Histograms, count matrices), so a
// group built incrementally record-by-record equals one built from any
// permutation or partition of the same records — the property that lets
// sharded campaigns aggregate by merging.
type Group struct {
	Key GroupKey

	Runs        int64
	Inert       int64
	Completed   int64
	WrongOutput int64
	Crashes     int64
	// LoseWork counts crashes with a commit inside the violation window
	// (table1's Violations, table2's FailedRecoveries); SaveWork counts
	// silent-corruption/propagation flags; Recovered counts successful
	// end-to-end recoveries.
	LoseWork  int64
	SaveWork  int64
	Recovered int64

	// RollbackDepth distributes the process steps each crash discarded;
	// CommitsPerRun the commit count per run; PrefixSteps the world-step
	// position of fault activation.
	RollbackDepth obs.Histogram
	CommitsPerRun obs.Histogram
	PrefixSteps   obs.Histogram

	// Heat is the injection-point outcome heatmap: Heat[b][o] counts runs
	// whose armed fire point falls in log2 bucket b (the obs.Histogram
	// bucket convention) and ended with outcome o.
	Heat [obs.HistBuckets][int(outcomeCount)]int64

	// DoomIndex[i] counts crashed runs whose first violating commit was
	// commit index i — "which commit index dooms recovery, how often".
	DoomIndex map[int]int64

	// VClockSum sums run virtual time (µs) for mean-duration reporting.
	VClockSum int64

	// VetoN sums the commits the veto policy deferred across the cell's
	// runs; VetoSaveWork the deferrals at Save-work (visible output)
	// decision points. Zero for baseline cells.
	VetoN        int64
	VetoSaveWork int64
}

// ViolationPct is the Table 1 / Table 2 cell: percent of crashes whose
// recovery was doomed by a committed dependence.
func (g *Group) ViolationPct() float64 {
	if g.Crashes == 0 {
		return 0
	}
	return 100 * float64(g.LoseWork) / float64(g.Crashes)
}

// Aggregator folds ledger records into groups, preserving first-appearance
// order (which, for a deterministic ledger, is itself deterministic).
type Aggregator struct {
	byKey map[GroupKey]*Group
	order []*Group
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{byKey: make(map[GroupKey]*Group)}
}

// heatBucket maps a fire point to its log2 bucket.
func heatBucket(fire int64) int {
	b := bits.Len64(uint64(fire))
	if b >= obs.HistBuckets {
		b = obs.HistBuckets - 1
	}
	return b
}

// Add folds one record in.
func (a *Aggregator) Add(r *Record) {
	key := GroupKey{Study: r.Study, App: r.App, Protocol: r.Protocol, Medium: r.Medium, Kind: r.Kind, Veto: r.VetoActive}
	g, ok := a.byKey[key]
	if !ok {
		g = &Group{Key: key, DoomIndex: make(map[int]int64)}
		a.byKey[key] = g
		a.order = append(a.order, g)
	}
	g.Runs++
	switch r.Outcome {
	case Inert:
		g.Inert++
	case Completed:
		g.Completed++
	case WrongOutput:
		g.WrongOutput++
	case Crashed:
		g.Crashes++
	}
	if r.LoseWork {
		g.LoseWork++
	}
	if r.SaveWork {
		g.SaveWork++
	}
	if r.Recovered {
		g.Recovered++
	}
	if r.RollbackDepth >= 0 {
		g.RollbackDepth.Observe(int64(r.RollbackDepth))
	}
	g.CommitsPerRun.Observe(int64(r.CommitN))
	if r.PrefixSteps >= 0 {
		g.PrefixSteps.Observe(int64(r.PrefixSteps))
	}
	if r.FireAt >= 0 {
		g.Heat[heatBucket(r.FireAt)][r.Outcome]++
	}
	if r.ViolFirst >= 0 {
		g.DoomIndex[r.ViolFirst]++
	}
	g.VClockSum += r.VClockUS
	g.VetoN += int64(r.VetoN)
	g.VetoSaveWork += int64(r.VetoSaveWorkN)
}

// Groups lists cells in first-appearance order.
func (a *Aggregator) Groups() []*Group { return a.order }
