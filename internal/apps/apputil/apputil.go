// Package apputil holds helpers shared by the workload applications: a
// compact binary state codec for checkpoint marshaling and the corruption
// primitives the fault injector's seven fault types are built from.
package apputil

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Enc is an append-only binary encoder for checkpoint images.
type Enc struct{ B []byte }

// I64 appends an int64.
func (e *Enc) I64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	e.B = append(e.B, b[:]...)
}

// Int appends an int.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64.
func (e *Enc) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], mathFloat64bits(v))
	e.B = append(e.B, b[:]...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(v []byte) {
	e.Int(len(v))
	e.B = append(e.B, v...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(v string) { e.Bytes([]byte(v)) }

// Bool appends a bool.
func (e *Enc) Bool(v bool) {
	if v {
		e.B = append(e.B, 1)
	} else {
		e.B = append(e.B, 0)
	}
}

// Dec decodes what Enc produced.
type Dec struct {
	B   []byte
	pos int
	Err error
}

func (d *Dec) need(n int) bool {
	if d.Err != nil {
		return false
	}
	if d.pos+n > len(d.B) {
		d.Err = fmt.Errorf("apputil: decode overrun at byte %d (+%d of %d)", d.pos, n, len(d.B))
		return false
	}
	return true
}

// I64 reads an int64.
func (d *Dec) I64() int64 {
	if !d.need(8) {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.B[d.pos:]))
	d.pos += 8
	return v
}

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 {
	if !d.need(8) {
		return 0
	}
	v := mathFloat64frombits(binary.LittleEndian.Uint64(d.B[d.pos:]))
	d.pos += 8
	return v
}

// Bytes reads a length-prefixed byte slice (copied).
func (d *Dec) Bytes() []byte {
	n := d.Int()
	if n < 0 || !d.need(n) {
		if d.Err == nil {
			d.Err = fmt.Errorf("apputil: negative length %d", n)
		}
		return nil
	}
	out := make([]byte, n)
	copy(out, d.B[d.pos:])
	d.pos += n
	return out
}

// BytesInto reads a length-prefixed byte slice into dst's backing array,
// reallocating only when dst is too small — the reuse form of Bytes for
// restore paths that decode into long-lived buffers every rollback.
func (d *Dec) BytesInto(dst []byte) []byte {
	n := d.Int()
	if n < 0 || !d.need(n) {
		if d.Err == nil {
			d.Err = fmt.Errorf("apputil: negative length %d", n)
		}
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	copy(dst, d.B[d.pos:])
	d.pos += n
	return dst
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Bytes()) }

// StrReuse reads a length-prefixed string, returning cur itself when the
// decoded bytes match it — strings like filenames rarely change between
// checkpoints, so the steady-state restore allocates nothing for them.
func (d *Dec) StrReuse(cur string) string {
	n := d.Int()
	if n < 0 || !d.need(n) {
		if d.Err == nil {
			d.Err = fmt.Errorf("apputil: negative length %d", n)
		}
		return ""
	}
	b := d.B[d.pos : d.pos+n]
	d.pos += n
	if string(b) == cur { // compiler-recognized comparison: no allocation
		return cur
	}
	return string(b)
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if !d.need(1) {
		return 0
	}
	v := d.B[d.pos]
	d.pos++
	return v
}

// Bool reads a bool.
func (d *Dec) Bool() bool {
	if !d.need(1) {
		return false
	}
	v := d.B[d.pos] != 0
	d.pos++
	return v
}

// FlipBit flips bit `bit` (mod the slice's size) in buf; no-op on empty
// buffers. It is the corruption primitive behind the bit-flip fault types.
func FlipBit(buf []byte, bit uint64) {
	if len(buf) == 0 {
		return
	}
	bit %= uint64(len(buf) * 8)
	buf[bit/8] ^= 1 << (bit % 8)
}

// Checksum is the integrity checksum the applications' consistency checks
// use (the paper's §2.6 mitigation: "compute a checksum over some data").
func Checksum(bufs ...[]byte) uint32 {
	h := crc32.NewIEEE()
	for _, b := range bufs {
		h.Write(b)
	}
	return h.Sum32()
}

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
