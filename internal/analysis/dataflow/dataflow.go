// Package dataflow builds intraprocedural control-flow graphs over go/ast
// and answers the guard-dominance query the COW aliasing checker needs:
// "does every execution path from the function entry to this node evaluate
// one of these guard expressions first?". cowcheck instantiates the guard
// predicate with privatization calls (privatizeLines, touchPage, ownFile,
// ...) and the target with a store into a template-shared field, turning
// the PR 6 "scribbled on a frozen fork template" bug class into a static
// finding.
//
// The graph is statement-level: each basic block holds a sequence of
// units, where a unit is either a simple statement or the evaluated
// sub-part of a compound one (an if condition, a for post-statement, a
// switch tag). Calls inside defer and go statements do not execute at the
// point they appear, so their units never satisfy a guard; the same goes
// for calls inside function literals, which only run when the closure is
// invoked. An explicit panic(...) statement terminates its path.
//
// The query is deliberately stronger than single-block dominance: a guard
// placed in both arms of an if guards the code after the join even though
// neither arm dominates it. GuardedAt therefore searches for a guard-free
// path from the entry rather than intersecting dominator sets.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A unit is one atomically-executed node within a block.
type unit struct {
	node ast.Node
	// noGuard marks units whose calls do not run at this program point
	// (defer/go statements evaluate operands but invoke later/elsewhere).
	noGuard bool
}

// A Block is a maximal straight-line run of units.
type Block struct {
	units []unit
	succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	entry  *Block
	blocks []*Block
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	return g
}

type breakable struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block // nil: current point is unreachable
	stack  []breakable
	labels map[string]*Block
	// label is a pending statement label, consumed by the next
	// loop/switch/select so labeled break/continue resolve.
	label string
	// fallTo is the next case clause's block, the target of a
	// fallthrough statement inside the current clause.
	fallTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// emit appends a unit at the current point. Unreachable code (after a
// return or branch) is parked in a fresh predecessor-less block, which
// GuardedAt treats as never executed.
func (b *builder) emit(n ast.Node, noGuard bool) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.units = append(b.cur.units, unit{n, noGuard})
}

// jump adds an edge from the current point to `to`, if both exist.
func (b *builder) jump(to *Block) {
	if b.cur != nil && to != nil {
		b.cur.succs = append(b.cur.succs, to)
	}
}

// ensure returns the current block, materializing one for unreachable
// regions so compound statements always have a dispatch point.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) labelBlock(name string) *Block {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

// takeLabel consumes the pending statement label for the construct that
// claims it.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// find pops breakable-stack entries down to the one a break/continue with
// the given label targets (empty label: the innermost eligible one).
func (b *builder) findBreakable(label string, needCont bool) *breakable {
	for i := len(b.stack) - 1; i >= 0; i-- {
		e := &b.stack[i]
		if needCont && e.cont == nil {
			continue
		}
		if label == "" || e.label == label {
			return e
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		b.jump(blk)
		b.cur = blk
		b.label = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.takeLabel()
		b.emit(s.Init, false)
		b.emit(s.Cond, false)
		cond := b.ensure()
		after := b.newBlock()
		then := b.newBlock()
		cond.succs = append(cond.succs, then)
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			cond.succs = append(cond.succs, els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			cond.succs = append(cond.succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.emit(s.Init, false)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		b.emit(s.Cond, false)
		head = b.ensure() // Cond emits into head; keep the handle honest
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		head.succs = append(head.succs, body)
		if s.Cond != nil {
			head.succs = append(head.succs, after)
		}
		b.stack = append(b.stack, breakable{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(s.Body)
		b.jump(post)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = post
		b.emit(s.Post, false)
		b.jump(head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.emit(s.X, false)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		body := b.newBlock()
		after := b.newBlock()
		head.succs = append(head.succs, body, after)
		b.stack = append(b.stack, breakable{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, nil, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, s.Assign, nil, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		b.stack = append(b.stack, breakable{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			head.succs = append(head.succs, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm, false)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = after

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if e := b.findBreakable(label, false); e != nil {
				b.jump(e.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if e := b.findBreakable(label, true); e != nil {
				b.jump(e.cont)
			}
			b.cur = nil
		case token.GOTO:
			b.jump(b.labelBlock(label))
			b.cur = nil
		case token.FALLTHROUGH:
			b.jump(b.fallTo)
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.emit(s, false)
		b.cur = nil

	case *ast.DeferStmt:
		b.emit(s, true)

	case *ast.GoStmt:
		b.emit(s, true)

	case *ast.ExprStmt:
		b.emit(s, false)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.cur = nil
			}
		}

	case nil:
		// nothing

	default:
		// Assign, IncDec, Send, Decl, Empty, ...
		b.emit(s, false)
	}
}

// switchLike builds switch and type-switch statements; assign is the
// type-switch's `x := y.(type)` statement, tag the expression switch's tag.
func (b *builder) switchLike(init, assign ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.emit(init, false)
	b.emit(assign, false)
	if tag != nil {
		b.emit(tag, false)
	}
	head := b.ensure()
	after := b.newBlock()
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		head.succs = append(head.succs, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.succs = append(head.succs, after)
	}
	b.stack = append(b.stack, breakable{label: label, brk: after})
	prevFall := b.fallTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e, false)
		}
		if i+1 < len(clauses) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.fallTo = prevFall
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

// containsGuard reports whether any executed node of the unit satisfies
// isGuard. Function-literal bodies are skipped: their calls run only when
// the closure does.
func (u unit) containsGuard(isGuard func(ast.Node) bool) bool {
	if u.noGuard {
		return false
	}
	found := false
	ast.Inspect(u.node, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil && isGuard(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// locate finds the block and unit index whose node encloses target,
// preferring the tightest enclosure (units never overlap except through
// nesting such as a closure inside a statement).
func (g *Graph) locate(target ast.Node) (*Block, int) {
	var bestB *Block
	bestI := -1
	var bestSpan token.Pos = -1
	for _, blk := range g.blocks {
		for i, u := range blk.units {
			if u.node.Pos() <= target.Pos() && target.End() <= u.node.End() {
				span := u.node.End() - u.node.Pos()
				if bestB == nil || span < bestSpan {
					bestB, bestI, bestSpan = blk, i, span
				}
			}
		}
	}
	return bestB, bestI
}

// GuardedAt reports whether every path from the function entry to target
// evaluates a node satisfying isGuard before reaching target. A guard in
// the same unit (statement) as the target counts: Go evaluates a
// statement's operands before completing its store, so
// `m[k] = cloneNode(n)` is privatized by its own right-hand side.
//
// If target cannot be located in the graph (e.g. it sits in unreachable
// code), GuardedAt returns true — such code never executes, so it cannot
// violate the contract.
func (g *Graph) GuardedAt(target ast.Node, isGuard func(ast.Node) bool) bool {
	tb, ti := g.locate(target)
	if tb == nil {
		return true
	}
	// Same unit, or an earlier unit in the target's own block.
	for i := ti; i >= 0; i-- {
		if tb.units[i].containsGuard(isGuard) {
			return true
		}
	}
	if tb == g.entry {
		return false
	}
	// Search for a guard-free path entry -> tb. A block may be traversed
	// only if no unit in it is a guard (passing through executes them
	// all); arrival at tb itself needs no such check — its prefix was
	// scanned above.
	guardFreeThrough := func(blk *Block) bool {
		for _, u := range blk.units {
			if u.containsGuard(isGuard) {
				return false
			}
		}
		return true
	}
	if !guardFreeThrough(g.entry) {
		return true
	}
	seen := map[*Block]bool{g.entry: true}
	work := []*Block{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, succ := range blk.succs {
			if succ == tb {
				return false // guard-free path reaches the target block
			}
			if !seen[succ] && guardFreeThrough(succ) {
				seen[succ] = true
				work = append(work, succ)
			}
		}
	}
	return true
}
