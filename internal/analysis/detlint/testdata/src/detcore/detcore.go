// Package detcore is the detlint golden fixture: the test registers it as
// a deterministic-core package, so the wall-clock, global-RNG, and
// map-ordered-output rules all apply here.
package detcore

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Clock demonstrates rule 1: no wall-clock reads.
func Clock() time.Duration {
	t0 := time.Now()  // want `call to time.Now reads the wall clock`
	d := time.Since(t0) // want `call to time.Since reads the wall clock`
	var virtual time.Duration
	virtual += 5 * time.Millisecond // arithmetic on durations is fine
	return d + virtual
}

// Timers demonstrates the wall-clock timer half of rule 1: every
// timer-arming constructor is banned, while reading a timer handed in
// (t.C) or stopping it stays silent.
func Timers(t *time.Timer) {
	<-time.After(time.Millisecond)      // want `call to time.After arms a wall-clock runtime timer`
	_ = time.Tick(time.Second)          // want `call to time.Tick arms a wall-clock runtime timer`
	_ = time.NewTimer(time.Second)      // want `call to time.NewTimer arms a wall-clock runtime timer`
	_ = time.NewTicker(time.Second)     // want `call to time.NewTicker arms a wall-clock runtime timer`
	_ = time.AfterFunc(time.Second, nil) // want `call to time.AfterFunc arms a wall-clock runtime timer`
	t.Stop() // methods on an existing timer are fine
}

// Seed demonstrates the process-identity rule: pid-seeded hashing diverges
// across runs.
func Seed() uint64 {
	h := uint64(os.Getpid()) // want `call to os.Getpid leaks process identity`
	h ^= uint64(os.Getppid()) // want `call to os.Getppid leaks process identity`
	return h * 0x9e3779b97f4a7c15
}

// Roll demonstrates rule 2: no draws from the global math/rand generator.
func Roll(seed int64) int {
	if rand.Intn(6) == 0 { // want `call to global rand.Intn draws from the shared nondeterministically-seeded RNG`
		return 0
	}
	r := rand.New(rand.NewSource(seed)) // the sanctioned seeded-local pattern
	return r.Intn(6)
}

// Dump demonstrates rule 3: map iteration order must not reach output.
func Dump(m map[string]int) {
	for k, v := range m { // want `range over map feeds output through fmt.Fprintf`
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
	// The sorted-keys idiom: the collection loop has no sink, the output
	// loop ranges over a slice.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Tally shows that ranging over a map without emitting output is fine:
// commutative aggregation does not observe iteration order.
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Suppressed shows the opt-out: a reasoned //failtrans:nondet silences the
// finding on the next line.
func Suppressed() time.Time {
	//failtrans:nondet fixture: proves a reasoned suppression silences the wall-clock rule
	return time.Now()
}
