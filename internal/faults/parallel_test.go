package faults

import (
	"encoding/json"
	"runtime"
	"testing"

	"failtrans/internal/obs"
)

// asJSON pins results down to the byte level: the parallel studies promise
// byte-identical output, not just statistically similar output.
func asJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestAppStudyParallelMatchesSerial(t *testing.T) {
	serial := smallStudy("nvi")
	got, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := asJSON(t, got)
	for _, workers := range []int{2, 4, 7} {
		s := smallStudy("nvi")
		s.Parallel = workers
		s.CampaignObs = obs.NewCampaignMetrics(workers)
		rs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if j := asJSON(t, rs); j != want {
			t.Errorf("workers=%d diverged from serial:\n got %s\nwant %s", workers, j, want)
		}
		// The early exit means speculation overshoots; every overshot run
		// must be accounted as discarded, never folded into the results.
		var workerRuns int64
		for i := range s.CampaignObs.Workers {
			workerRuns += s.CampaignObs.Workers[i].Runs
		}
		if workerRuns != s.CampaignObs.Accepted+s.CampaignObs.Discarded {
			t.Errorf("workers=%d: runs %d != accepted %d + discarded %d",
				workers, workerRuns, s.CampaignObs.Accepted, s.CampaignObs.Discarded)
		}
	}
}

func TestOSStudyParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) *OSStudy {
		o := NewOSStudy("nvi")
		o.CrashTarget = 3
		o.MaxRunsPerType = 20
		o.SessionLen = 120
		o.Parallel = workers
		return o
	}
	got, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := asJSON(t, got)
	for _, workers := range []int{3, 6} {
		rs, err := mk(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		if j := asJSON(t, rs); j != want {
			t.Errorf("workers=%d diverged from serial:\n got %s\nwant %s", workers, j, want)
		}
	}
}

func TestAppStudyCampaignTrace(t *testing.T) {
	s := smallStudy("nvi")
	s.Parallel = 4
	s.CampaignTracer = obs.NewTracer()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.CampaignTracer.Len(), len(AppFaultTypes); got != want {
		t.Errorf("campaign trace has %d spans, want one per fault type (%d)", got, want)
	}
}

// BenchmarkAppStudyNvi measures the nvi application study serial vs fanned
// out over all cores — the speedup the parallel campaign runner exists
// for. The study is sized a notch above smallStudy so the speculation
// overshoot (bounded per fault type) amortizes the way a paper-scale
// campaign's does. See EXPERIMENTS.md for checked-in numbers.
func BenchmarkAppStudyNvi(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "serial"
		if workers > 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewAppStudy("nvi")
				s.CrashTarget = 8
				s.MaxRunsPerType = 60
				s.SessionLen = 150
				s.Parallel = workers
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
