package sim

import (
	"encoding/binary"
	"fmt"
	"time"

	"failtrans/internal/event"
)

// EventOverhead is the virtual CPU cost charged per intercepted event — the
// trap/classification overhead of the recovery layer's interception (system
// call wrapping on the paper's hardware).
const EventOverhead = 2 * time.Microsecond

// FaultKind enumerates the paper's injected programming-error types
// (Table 1; fault model from Chandra's thesis [6]).
type FaultKind uint8

const (
	// NoFault means the site executes normally.
	NoFault FaultKind = iota
	// StackBitFlip flips a bit in local (short-lived) working data.
	StackBitFlip
	// HeapBitFlip flips a bit in long-lived heap data.
	HeapBitFlip
	// DestReg directs a computed value to the wrong destination.
	DestReg
	// InitFault skips an initialization, leaving garbage/zero.
	InitFault
	// DeleteBranch forces a conditional the wrong way.
	DeleteBranch
	// DeleteInstr skips one state update.
	DeleteInstr
	// OffByOne perturbs a bound or index by one.
	OffByOne
)

// String names the fault kind as in Table 1.
func (k FaultKind) String() string {
	switch k {
	case NoFault:
		return "none"
	case StackBitFlip:
		return "stack bit flip"
	case HeapBitFlip:
		return "heap bit flip"
	case DestReg:
		return "destination reg"
	case InitFault:
		return "initialization"
	case DeleteBranch:
		return "delete branch"
	case DeleteInstr:
		return "delete instruction"
	case OffByOne:
		return "off by one"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultInjector decides whether a fault fires at an application fault site.
type FaultInjector interface {
	// At is consulted every time a process passes a fault site; a
	// non-NoFault return tells the application to corrupt itself there.
	At(p *Proc, site string) FaultKind
}

// Ctx is the runtime interface handed to Programs. Every method that has an
// external effect or a non-deterministic result records the corresponding
// event and passes through the recovery layer's hooks.
type Ctx struct {
	p *Proc

	// Inputs scripts the process's fixed-ND user input; Input consumes
	// it at the process's InputCursor.
	Inputs [][]byte

	elapsed     time.Duration
	sleepFor    time.Duration
	crashed     bool
	crashReason string
}

// Proc returns the owning process.
func (c *Ctx) Proc() *Proc { return c.p }

// World returns the owning world.
func (c *Ctx) World() *World { return c.p.World }

// NowVirtual returns the current virtual time without recording any event
// (scheduling/bookkeeping use only — not visible to Program semantics).
func (c *Ctx) NowVirtual() time.Duration { return c.p.World.Clock + c.elapsed }

// Compute charges d of CPU time to the current step.
func (c *Ctx) Compute(d time.Duration) { c.elapsed += d }

// Sleep asks the scheduler to park the process for d after this step; the
// Program should return Sleeping.
func (c *Ctx) Sleep(d time.Duration) { c.sleepFor = d }

// Crash marks the process as having executed a crash event. The Program
// should return Crashed (the scheduler enforces it regardless).
func (c *Ctx) Crash(reason string) {
	c.crashed = true
	c.crashReason = reason
}

// before runs the pre-event recovery hook.
func (c *Ctx) before(kind event.Kind, nd event.NDClass, label string) {
	if r := c.p.World.Recovery; r != nil {
		r.BeforeEvent(c.p, kind, nd, label)
	}
}

// after records the event and runs the post-event recovery hook.
func (c *Ctx) after(kind event.Kind, nd event.NDClass, logged bool, msg int64, peer int, label string) event.Event {
	c.elapsed += EventOverhead
	ev := c.p.World.record(c.p, kind, nd, logged, msg, peer, label)
	if r := c.p.World.Recovery; r != nil {
		r.AfterEvent(c.p, ev)
	}
	return ev
}

// ndValue runs the replay/log protocol for one ND event: during constrained
// re-execution the logged value is replayed; otherwise the live value may be
// recorded into the log. It returns the value to use and whether the event
// counts as logged (deterministic for Save-work).
func (c *Ctx) ndValue(label string, live func() []byte) ([]byte, bool) {
	r := c.p.World.Recovery
	if r != nil {
		if v, ok := r.SupplyND(c.p, label); ok {
			return v, true
		}
	}
	v := live()
	logged := false
	if r != nil {
		logged = r.RecordND(c.p, label, v)
	}
	return v, logged
}

// Now executes a gettimeofday: a transient non-deterministic event.
func (c *Ctx) Now() time.Duration {
	c.before(event.Internal, event.TransientND, "gettimeofday")
	v, logged := c.ndValue("gettimeofday", func() []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(c.NowVirtual()))
		return b[:]
	})
	c.after(event.Internal, event.TransientND, logged, 0, 0, "gettimeofday")
	return time.Duration(binary.LittleEndian.Uint64(v))
}

// Rand draws from the process's transient-ND random stream (scheduling
// jitter, signal timing and similar sources are modeled through it).
func (c *Ctx) Rand() uint64 {
	c.before(event.Internal, event.TransientND, "rand")
	v, logged := c.ndValue("rand", func() []byte {
		var b [8]byte
		r := c.p.rand() // materialize before counting this draw
		c.p.rngDraws++
		binary.LittleEndian.PutUint64(b[:], r.Uint64())
		return b[:]
	})
	c.after(event.Internal, event.TransientND, logged, 0, 0, "rand")
	return binary.LittleEndian.Uint64(v)
}

// Input consumes the next scripted user input: a fixed non-deterministic
// event (the user will retype the same thing after a failure). ok=false
// means the script is exhausted.
func (c *Ctx) Input() ([]byte, bool) {
	if c.p.InputCursor >= len(c.Inputs) {
		return nil, false
	}
	c.before(event.Internal, event.FixedND, "input")
	v, logged := c.ndValue("input", func() []byte {
		v := c.Inputs[c.p.InputCursor]
		return append([]byte(nil), v...)
	})
	c.p.InputCursor++
	c.after(event.Internal, event.FixedND, logged, 0, 0, "input")
	return v, true
}

// TakeSignal polls for a delivered signal: a transient non-deterministic
// event (its timing relative to the computation is unpredictable, and a
// re-execution may not see it at the same point — or at all). ok=false
// means no signal is pending.
func (c *Ctx) TakeSignal() (string, bool) {
	// Constrained re-execution replays logged signals at their recorded
	// positions.
	if r := c.p.World.Recovery; r != nil {
		if v, ok := r.SupplyND(c.p, "signal"); ok {
			c.before(event.Internal, event.TransientND, "signal")
			c.after(event.Internal, event.TransientND, true, 0, 0, "signal")
			return string(v), true
		}
	}
	now := c.NowVirtual()
	idx := -1
	for i, ps := range c.p.signals {
		if ps.at <= now && (idx < 0 || ps.at < c.p.signals[idx].at) {
			idx = i
		}
	}
	if idx < 0 {
		return "", false
	}
	c.before(event.Internal, event.TransientND, "signal")
	sig := c.p.signals[idx].sig
	c.p.signals = append(c.p.signals[:idx], c.p.signals[idx+1:]...)
	logged := false
	if r := c.p.World.Recovery; r != nil {
		logged = r.RecordND(c.p, "signal", []byte(sig))
	}
	c.after(event.Internal, event.TransientND, logged, 0, 0, "signal")
	return sig, true
}

// Send transmits payload to process `to`.
func (c *Ctx) Send(to int, payload []byte) error {
	c.before(event.Send, event.Deterministic, "send")
	if c.crashed {
		// The recovery layer crashed the process in its pre-send hook
		// (e.g. a refused commit): the send never happens.
		return nil
	}
	id, err := c.p.World.send(c.p.Index, to, payload)
	if err != nil {
		return err
	}
	c.after(event.Send, event.Deterministic, false, id, to, "send")
	return nil
}

// Recv consumes the next delivered message. ok=false means nothing has
// arrived yet and the Program should return WaitMsg. A receive is a
// transient non-deterministic event (message timing and ordering).
func (c *Ctx) Recv() (Msg, bool) {
	// Constrained re-execution: replay a logged receive without
	// touching the inbox. The high-water mark still advances so that a
	// rolled-back sender's re-sent duplicate of this message is
	// filtered.
	if r := c.p.World.Recovery; r != nil {
		if v, ok := r.SupplyND(c.p, "recv"); ok {
			m := DecodeMsgRecord(v)
			c.p.bumpRecvHW(m.From, m.SendIdx)
			c.before(event.Receive, event.TransientND, "recv")
			c.after(event.Receive, event.TransientND, true, m.ID, m.From, "recv")
			return m, true
		}
	}
	// Position-gated redelivery of retained messages after a rollback:
	// each message is handed back at the event position it was
	// originally consumed at, so the re-execution interleaves receives
	// with computation exactly as before the failure.
	if len(c.p.replayQueue) > 0 {
		head := c.p.replayQueue[0]
		rel := c.p.Steps - c.p.retainBase
		switch {
		case rel == head.pos:
			c.p.replayQueue = c.p.replayQueue[1:]
			m := *head.m
			c.before(event.Receive, event.TransientND, "recv")
			c.p.retained = append(c.p.retained, retainedMsg{m: &m, pos: rel})
			c.p.bumpRecvHW(m.From, m.SendIdx)
			logged := false
			if r := c.p.World.Recovery; r != nil {
				logged = r.RecordND(c.p, "recv", EncodeMsgRecord(m))
			}
			c.after(event.Receive, event.TransientND, logged, m.ID, m.From, "recv")
			return m, true
		case rel < head.pos:
			// Not due yet: let the program re-execute up to the
			// consumption position. (If it instead blocks, the
			// scheduler detects the divergence and flushes.)
			return Msg{}, false
		default: // rel > head.pos: ran past the due position
			c.p.World.flushReplayQueue(c.p)
		}
	}
	now := c.NowVirtual()
	// Drop duplicates produced by re-executed sends: anything at or
	// below the consumed high-water mark for its sender.
	before := len(c.p.inbox)
	kept := c.p.inbox[:0]
	for _, m := range c.p.inbox {
		if m.DeliverAt <= now && m.SendIdx <= c.p.RecvHW[m.From] {
			continue
		}
		kept = append(kept, m)
	}
	c.p.inbox = kept
	if len(kept) != before {
		c.p.inboxChanged()
	}
	idx := -1
	for i, m := range c.p.inbox {
		if m.DeliverAt <= now && (idx < 0 || m.DeliverAt < c.p.inbox[idx].DeliverAt) {
			idx = i
		}
	}
	if idx < 0 {
		return Msg{}, false
	}
	m := c.p.inbox[idx]
	rel := c.p.Steps - c.p.retainBase
	c.before(event.Receive, event.TransientND, "recv")
	c.p.inbox = append(c.p.inbox[:idx], c.p.inbox[idx+1:]...)
	c.p.inboxChanged()
	c.p.retained = append(c.p.retained, retainedMsg{m: m, pos: rel})
	c.p.bumpRecvHW(m.From, m.SendIdx)
	logged := false
	if r := c.p.World.Recovery; r != nil {
		logged = r.RecordND(c.p, "recv", EncodeMsgRecord(*m))
	}
	c.after(event.Receive, event.TransientND, logged, m.ID, m.From, "recv")
	return *m, true
}

// Output emits a visible event the user can see. Visible events can never
// be undone.
func (c *Ctx) Output(s string) {
	c.before(event.Visible, event.Deterministic, "output")
	if c.crashed {
		// Crashed in the pre-visible hook: nothing becomes visible.
		return
	}
	w := c.p.World
	w.Outputs[c.p.Index] = append(w.Outputs[c.p.Index], s)
	w.GlobalOutputs = append(w.GlobalOutputs, fmt.Sprintf("p%d:%s", c.p.Index, s))
	c.after(event.Visible, event.Deterministic, false, 0, 0, "output")
}

// Syscall calls into the simulated OS. The kernel classifies each call's
// non-determinism; deterministic calls need no logging or commit support.
func (c *Ctx) Syscall(name string, args ...[]byte) ([][]byte, error) {
	os := c.p.World.OS
	if os == nil {
		return nil, fmt.Errorf("sim: no OS attached (syscall %s)", name)
	}
	ret, nd, err := os.Call(c.p.Index, name, args)
	if err != nil {
		return nil, err
	}
	c.before(event.Internal, nd, "sys."+name)
	logged := false
	if nd != event.Deterministic {
		if r := c.p.World.Recovery; r != nil {
			// During constrained re-execution a logged result
			// replaces the live one (the live call above already
			// replayed any kernel-state side effects).
			if v, ok := r.SupplyND(c.p, "sys."+name); ok {
				ret = DecodeParts(v)
				logged = true
			} else {
				logged = r.RecordND(c.p, "sys."+name, EncodeParts(ret))
			}
		}
	}
	c.after(event.Internal, nd, logged, 0, 0, "sys."+name)
	return ret, nil
}

// Fault consults the fault injector at a named site. Applications call it
// at their instrumented fault points and apply the returned corruption
// themselves.
func (c *Ctx) Fault(site string) FaultKind {
	if c.p.World.Faults == nil {
		return NoFault
	}
	return c.p.World.Faults.At(c.p, site)
}

// EncodeMsgRecord serializes a message for the receive log.
func EncodeMsgRecord(m Msg) []byte {
	b := make([]byte, 24+len(m.Payload))
	binary.LittleEndian.PutUint64(b[0:8], uint64(m.ID))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.From))
	binary.LittleEndian.PutUint64(b[16:24], uint64(m.SendIdx))
	copy(b[24:], m.Payload)
	return b
}

// DecodeMsgRecord is the inverse of EncodeMsgRecord.
func DecodeMsgRecord(b []byte) Msg {
	if len(b) < 24 {
		return Msg{}
	}
	return Msg{
		ID:      int64(binary.LittleEndian.Uint64(b[0:8])),
		From:    int(binary.LittleEndian.Uint64(b[8:16])),
		SendIdx: int64(binary.LittleEndian.Uint64(b[16:24])),
		Payload: append([]byte(nil), b[24:]...),
	}
}

// EncodeParts serializes a multi-part syscall result with length prefixes
// so logged values can be replayed structurally intact.
func EncodeParts(parts [][]byte) []byte {
	var out []byte
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(parts)))
	out = append(out, b[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint64(b[:], uint64(len(p)))
		out = append(out, b[:]...)
		out = append(out, p...)
	}
	return out
}

// DecodeParts is the inverse of EncodeParts.
func DecodeParts(data []byte) [][]byte {
	if len(data) < 8 {
		return nil
	}
	n := int(binary.LittleEndian.Uint64(data[0:8]))
	pos := 8
	out := make([][]byte, 0, n)
	for i := 0; i < n && pos+8 <= len(data); i++ {
		l := int(binary.LittleEndian.Uint64(data[pos : pos+8]))
		pos += 8
		if pos+l > len(data) {
			return out
		}
		out = append(out, append([]byte(nil), data[pos:pos+l]...))
		pos += l
	}
	return out
}
