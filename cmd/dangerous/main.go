// Command dangerous computes the paper's dangerous paths for a process
// state machine: the events along which a commit would violate the
// Lose-work invariant and make recovery from a propagation failure
// impossible.
//
// It accepts four input modes, mutually exclusive:
//
//   - -demo reproduces the paper's Figures 5 and 6;
//
//   - -trace builds the executed-path machine of one process from a
//     recorded run trace (cmd/ftsim -trace), exactly as
//     statemachine.FromExecution does inside the recovery checkers;
//
//   - -ledger reports a machine mined from a campaign ledger
//     (ftbench -ledger / ftsim -ledger), merged across every run of one
//     (study, app, protocol) key;
//
//   - otherwise it reads a machine description from the file named by -f
//     (or stdin):
//
//     states <n>
//     start <state>
//     crash <state>
//     edge <from> <to> det|transient|fixed [label ...]
//
// In every mode it prints the coloring and the safe commit states.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"failtrans/internal/event"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/statemachine"
	"failtrans/internal/trace"
)

func main() {
	demo := flag.Bool("demo", false, "reproduce the paper's Figure 5 and Figure 6 examples")
	file := flag.String("f", "", "machine description file (default: stdin)")
	traceFile := flag.String("trace", "", "build the machine from a recorded run trace (cmd/ftsim -trace)")
	procID := flag.Int("proc", 0, "with -trace: process whose events form the path")
	crashed := flag.Bool("crashed", true, "with -trace: treat the path's final state as a crash state")
	ledgerFile := flag.String("ledger", "", "report a machine mined from this campaign ledger (ftbench -ledger)")
	key := flag.String("key", "", "with -ledger: machine key study/app/protocol (default: first mined)")
	dot := flag.String("dot", "", "also write a Graphviz rendering of the coloring to this file")
	flag.Parse()
	dotOut = *dot

	modes := 0
	for _, on := range []bool{*demo, *file != "", *traceFile != "", *ledgerFile != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "dangerous: -demo, -f, -trace and -ledger are mutually exclusive")
		os.Exit(2)
	}

	switch {
	case *demo:
		runDemo()
	case *traceFile != "":
		report(fromTrace(*traceFile, *procID, *crashed))
	case *ledgerFile != "":
		report(fromLedger(*ledgerFile, *key))
	default:
		in := io.Reader(os.Stdin)
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			in = f
		}
		m, err := parse(in)
		if err != nil {
			fail(err)
		}
		report(m)
	}
}

// fromTrace loads a recorded run trace and builds the executed-path machine
// of one process.
func fromTrace(path string, proc int, crashed bool) *statemachine.Machine {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	t, err := trace.Load(f)
	if err != nil {
		fail(err)
	}
	var evs []event.Event
	for _, e := range t.Events {
		if e.ID.P == proc {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		fail(fmt.Errorf("trace %s has no events for process %d (of %d procs)", path, proc, t.NumProcs))
	}
	fmt.Printf("trace %s: proc %d, %d events, crashed=%v\n", path, proc, len(evs), crashed)
	return statemachine.FromExecution(evs, crashed)
}

// fromLedger mines machines from a campaign ledger and returns the keyed
// (or first) one.
func fromLedger(path, key string) *statemachine.Machine {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	recs, err := ledger.ReadAll(f)
	if err != nil {
		fail(err)
	}
	miner := ledger.NewMiner()
	for i := range recs {
		miner.Add(&recs[i])
	}
	keys := miner.Keys()
	if len(keys) == 0 {
		fail(fmt.Errorf("ledger %s: no machines mined from %d records", path, len(recs)))
	}
	if key == "" {
		key = keys[0]
	}
	md := miner.Get(key)
	if md == nil {
		fail(fmt.Errorf("ledger %s: no machine %q (have %v)", path, key, keys))
	}
	fmt.Printf("ledger %s: machine %s mined from %d runs (of %v)\n", path, key, md.Runs, keys)
	return md.Machine()
}

func parse(in io.Reader) (*statemachine.Machine, error) {
	sc := bufio.NewScanner(in)
	var m *statemachine.Machine
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		bad := func(msg string) error { return fmt.Errorf("line %d: %s", line, msg) }
		switch fields[0] {
		case "states":
			var n int
			if len(fields) != 2 || scan(fields[1], &n) != nil || n <= 0 {
				return nil, bad("states <n>")
			}
			m = statemachine.New(n)
		case "start":
			if m == nil {
				return nil, bad("start before states")
			}
			var s int
			if len(fields) != 2 || scan(fields[1], &s) != nil {
				return nil, bad("start <state>")
			}
			m.Start = statemachine.StateID(s)
		case "crash":
			if m == nil {
				return nil, bad("crash before states")
			}
			var s int
			if len(fields) != 2 || scan(fields[1], &s) != nil {
				return nil, bad("crash <state>")
			}
			m.MarkCrash(statemachine.StateID(s))
		case "edge":
			if m == nil {
				return nil, bad("edge before states")
			}
			if len(fields) < 4 {
				return nil, bad("edge <from> <to> det|transient|fixed [label]")
			}
			var from, to int
			if scan(fields[1], &from) != nil || scan(fields[2], &to) != nil {
				return nil, bad("edge states must be integers")
			}
			var nd event.NDClass
			switch fields[3] {
			case "det":
				nd = event.Deterministic
			case "transient":
				nd = event.TransientND
			case "fixed":
				nd = event.FixedND
			default:
				return nil, bad("class must be det, transient or fixed")
			}
			m.AddEdge(statemachine.Edge{
				From: statemachine.StateID(from), To: statemachine.StateID(to),
				ND: nd, Label: strings.Join(fields[4:], " "),
			})
		default:
			return nil, bad("unknown directive " + fields[0])
		}
	}
	if m == nil {
		return nil, fmt.Errorf("empty machine description")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, sc.Err()
}

func scan(s string, v *int) error {
	_, err := fmt.Sscanf(s, "%d", v)
	return err
}

// dotOut, when set, receives a Graphviz rendering of the last coloring.
var dotOut string

func report(m *statemachine.Machine) {
	c := m.DangerousPaths()
	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			fail(err)
		}
		if err := c.WriteDot(f, "dangerous"); err != nil {
			f.Close() //failtrans:errok best-effort cleanup; the export error being reported is the primary failure
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", dotOut)
	}
	fmt.Printf("machine: %d states, %d events, %d crash states\n", m.NumStates, len(m.Edges), len(m.CrashStates))
	fmt.Println("events (colored = on a dangerous path):")
	for i, e := range m.Edges {
		mark := " "
		if c.Dangerous(statemachine.EventID(i)) {
			mark = "*"
		}
		nd := map[event.NDClass]string{event.Deterministic: "det", event.TransientND: "transient", event.FixedND: "fixed"}[e.ND]
		fmt.Printf("  %s e%-3d %3d -> %-3d %-9s %s\n", mark, i, e.From, e.To, nd, e.Label)
	}
	fmt.Print("safe commit states: ")
	for _, s := range c.SafeCommitStates() {
		fmt.Printf("%d ", s)
	}
	fmt.Println()
	fmt.Print("doomed commit states: ")
	for s := 0; s < m.NumStates; s++ {
		if !m.CrashStates[statemachine.StateID(s)] && c.CommitUnsafeAt(statemachine.StateID(s)) {
			fmt.Printf("%d ", s)
		}
	}
	fmt.Println()
}

func runDemo() {
	fmt.Println("=== Figure 5: buffer-overrun timeline ===")
	fmt.Println("A transient ND event e sends execution down a path that overruns a")
	fmt.Println("buffer, trashes a pointer, and crashes on its use. Committing any")
	fmt.Println("time after e dooms recovery; committing before e is safe.")
	m := statemachine.New(7)
	m.AddEdge(statemachine.Edge{From: 0, To: 1, ND: event.TransientND, Label: "ND event e (unlucky result)"})
	m.AddEdge(statemachine.Edge{From: 0, To: 6, ND: event.TransientND, Label: "ND event e (lucky result)"})
	m.AddEdge(statemachine.Edge{From: 1, To: 2, Label: "begin buffer init"})
	m.AddEdge(statemachine.Edge{From: 2, To: 3, Label: "overwrite pointer"})
	m.AddEdge(statemachine.Edge{From: 3, To: 4, Label: "use pointer (crash)"})
	m.MarkCrash(4)
	report(m)

	fmt.Println()
	fmt.Println("=== Figure 6B: transient non-determinism with an escape ===")
	b := statemachine.New(5)
	b.AddEdge(statemachine.Edge{From: 0, To: 1, ND: event.TransientND, Label: "bad result"})
	b.AddEdge(statemachine.Edge{From: 0, To: 2, ND: event.TransientND, Label: "good result"})
	b.AddEdge(statemachine.Edge{From: 1, To: 3, Label: "doomed"})
	b.AddEdge(statemachine.Edge{From: 2, To: 4, Label: "completes"})
	b.MarkCrash(3)
	report(b)

	fmt.Println()
	fmt.Println("=== Figure 6C: the same fork, but FIXED non-determinism ===")
	c := statemachine.New(5)
	c.AddEdge(statemachine.Edge{From: 0, To: 1, ND: event.FixedND, Label: "bad result"})
	c.AddEdge(statemachine.Edge{From: 0, To: 2, ND: event.FixedND, Label: "good result"})
	c.AddEdge(statemachine.Edge{From: 1, To: 3, Label: "doomed"})
	c.AddEdge(statemachine.Edge{From: 2, To: 4, Label: "completes"})
	c.MarkCrash(3)
	report(c)
	fmt.Println()
	fmt.Println("Note how state 0 is a safe commit point under transient ND (6B) but")
	fmt.Println("doomed under fixed ND (6C): recovery cannot rely on fixed events changing.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dangerous:", err)
	os.Exit(1)
}
