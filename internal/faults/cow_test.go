package faults

import (
	"testing"

	"failtrans/internal/obs"
)

// TestAppStudyCOWMatchesDeepFork is the COW engine's campaign-level
// acceptance bar: serving injection runs from frozen copy-on-write
// templates must produce byte-identical Table 1 aggregates to deep-copied
// snapshots (which TestAppStudySnapshotMatchesScratch in turn pins against
// the from-scratch loop), while actually exercising the COW path.
func TestAppStudyCOWMatchesDeepFork(t *testing.T) {
	for _, app := range []string{"nvi", "postgres"} {
		deep := smallStudy(app)
		deep.COW = false
		deep.CampaignObs = obs.NewCampaignMetrics(1)
		got, err := deep.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := asJSON(t, got)
		if n := deep.CampaignObs.Snapshot.PagesPrivatized; n != 0 {
			t.Errorf("%s: deep-fork study privatized %d pages; COW leaked into the deep path", app, n)
		}

		cow := smallStudy(app)
		cow.CampaignObs = obs.NewCampaignMetrics(1)
		rs, err := cow.Run()
		if err != nil {
			t.Fatal(err)
		}
		if j := asJSON(t, rs); j != want {
			t.Errorf("%s: COW study diverged from deep-fork study:\n got %s\nwant %s", app, j, want)
		}
		sn := &cow.CampaignObs.Snapshot
		if sn.PagesPrivatized == 0 || sn.BytesCOW == 0 {
			t.Errorf("%s: COW path not exercised: pages=%d bytes=%d", app, sn.PagesPrivatized, sn.BytesCOW)
		}
	}
}

// TestSnapshotStoreReuse: two studies with equal configuration sharing a
// store must agree byte-for-byte, with the second skipping its template
// run via a store hit.
func TestSnapshotStoreReuse(t *testing.T) {
	store := NewSnapshotStore()
	run := func() (string, *obs.CampaignMetrics) {
		s := smallStudy("nvi")
		s.Store = store
		s.CampaignObs = obs.NewCampaignMetrics(1)
		rs, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return asJSON(t, rs), s.CampaignObs
	}
	first, m1 := run()
	if m1.Snapshot.StoreMisses != 1 || m1.Snapshot.StoreHits != 0 {
		t.Errorf("first study: hits=%d misses=%d, want 0/1",
			m1.Snapshot.StoreHits, m1.Snapshot.StoreMisses)
	}
	second, m2 := run()
	if second != first {
		t.Errorf("store-served study diverged:\n got %s\nwant %s", second, first)
	}
	if m2.Snapshot.StoreHits != 1 {
		t.Errorf("second study: hits=%d, want 1 (template run should have been skipped)",
			m2.Snapshot.StoreHits)
	}
	if m2.Snapshot.Snapshots != 0 {
		t.Errorf("second study captured %d snapshots despite a store hit", m2.Snapshot.Snapshots)
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", store.Len())
	}
}

// TestSnapshotStoreKeysByConfig: a study with a different configuration
// must not be served another configuration's prefix.
func TestSnapshotStoreKeysByConfig(t *testing.T) {
	store := NewSnapshotStore()
	a := smallStudy("nvi")
	a.Store = store
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	b := smallStudy("nvi")
	b.SessionLen = a.SessionLen / 2
	b.Store = store
	b.CampaignObs = obs.NewCampaignMetrics(1)
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if b.CampaignObs.Snapshot.StoreHits != 0 {
		t.Error("differently-configured study hit the other configuration's entry")
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d entries, want 2", store.Len())
	}
}

// TestSnapshotStoreDigestTripwire: an entry whose content digest no longer
// matches what was published is treated as a miss and rebuilt, not served.
func TestSnapshotStoreDigestTripwire(t *testing.T) {
	store := NewSnapshotStore()
	s := smallStudy("nvi")
	s.Store = store
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Simulate a mutation leak: tamper with the stored cache's recorded
	// commit history, which the digest covers.
	store.mu.Lock()
	for _, e := range store.entries {
		if len(e.cache.snaps) > 1 {
			e.cache.snaps[1].commits = append(e.cache.snaps[1].commits, 9999)
		}
	}
	store.mu.Unlock()
	s2 := smallStudy("nvi")
	s2.Store = store
	s2.CampaignObs = obs.NewCampaignMetrics(1)
	rs, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s2.CampaignObs.Snapshot.StoreHits != 0 {
		t.Error("tampered entry was served as a hit; digest tripwire failed")
	}
	if len(rs) == 0 {
		t.Fatal("rebuilt study returned no results")
	}
}
