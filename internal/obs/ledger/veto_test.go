package ledger

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"failtrans/internal/statemachine"
)

// vetoRecords is a small table1-shaped campaign: runs through "c0 c1 c2"
// that always crash after a post-activation commit (dooming that chain),
// plus runs that survive the same prefix, so the mined machine has both
// doomed and safe states.
func vetoRecords() []Record {
	mk := func(run int, kind string, outcome Outcome, commits []int, act int) Record {
		r := Record{Run: run, Study: "table1", App: "nvi", Protocol: "CPVS", Medium: "rio",
			Kind: kind, Seed: 1, FireAt: 10, Outcome: outcome,
			Activation: act, Crash: -1, Steps: 50, WorldSteps: 60, PrefixSteps: 5,
			VClockUS: 100, RollbackDepth: -1, CommitN: len(commits), Commits: commits,
			ViolFirst: -1}
		if outcome == Inert {
			r.FireAt = -1
			r.Activation = -1
		}
		return r
	}
	return []Record{
		// stop faults: activation at step 20 after 2 commits, then one more
		// commit, then crash — every run; the post-activation chain is doomed.
		mk(0, "stop", Crashed, []int{3, 8, 25}, 20),
		mk(1, "stop", Crashed, []int{3, 8, 25}, 20),
		// the same pre-activation prefix survives in other runs, keeping
		// c0..c2 safe.
		mk(2, "stop", Inert, []int{3, 8}, -1),
		mk(3, "stop", Completed, []int{3, 8}, 20),
	}
}

// TestLedgerMineVetoRoundTrip closes the loop the subsystem exists for:
// records → mined machine → VetoPolicy → ftveto bytes → loaded policy must
// reproduce the in-memory coloring's verdict for every mined state.
func TestLedgerMineVetoRoundTrip(t *testing.T) {
	mn := NewMiner()
	recs := vetoRecords()
	for i := range recs {
		mn.Add(&recs[i])
	}
	md := mn.Get("table1/nvi/CPVS")
	if md == nil {
		t.Fatalf("no machine mined (keys %v)", mn.Keys())
	}
	col := md.Coloring()
	pol := md.VetoPolicy()
	if pol.Key != md.Key || pol.Runs != md.Runs {
		t.Fatalf("policy header (%s, %d), want (%s, %d)", pol.Key, pol.Runs, md.Key, md.Runs)
	}
	unsafe := 0
	for name, id := range md.states {
		if got, want := pol.CommitUnsafe(name), col.CommitUnsafeAt(id); got != want {
			t.Errorf("in-memory policy: %s = %v, coloring says %v", name, got, want)
		}
		if pol.CommitUnsafe(name) {
			unsafe++
		}
	}
	// The always-crashing post-activation state must be doomed; the state
	// a survivor (run 3) passed through must not be, and neither may the
	// shared pre-activation prefix.
	if !pol.CommitUnsafe(ActStateKey(2, "stop", 1)) {
		t.Error("always-fatal post-activation state not vetoed")
	}
	if pol.CommitUnsafe(ActStateKey(2, "stop", 0)) {
		t.Error("post-activation state with a surviving continuation vetoed")
	}
	for k := 0; k <= 2; k++ {
		if pol.CommitUnsafe(CommitStateKey(k)) {
			t.Errorf("pre-activation state %s vetoed; survivors pass through it", CommitStateKey(k))
		}
	}
	if unsafe == 0 {
		t.Fatal("policy vetoes nothing")
	}

	var buf bytes.Buffer
	if err := statemachine.WritePolicies(&buf, mn.VetoPolicies()); err != nil {
		t.Fatal(err)
	}
	loaded, err := statemachine.ReadPolicies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lp := statemachine.FindPolicy(loaded, md.Key)
	if lp == nil {
		t.Fatalf("serialized file lost machine %q", md.Key)
	}
	for name, id := range md.states {
		if got, want := lp.CommitUnsafe(name), col.CommitUnsafeAt(id); got != want {
			t.Errorf("loaded policy: %s = %v, coloring says %v", name, got, want)
		}
	}
}

// TestVetoPhaseMinesSeparately pins the MineKey split: a veto-phase record
// must not fold into — and corrupt — the baseline machine its policy came
// from.
func TestVetoPhaseMinesSeparately(t *testing.T) {
	mn := NewMiner()
	recs := vetoRecords()
	for i := range recs {
		mn.Add(&recs[i])
		v := recs[i]
		v.VetoActive = true
		mn.Add(&v)
	}
	base, veto := mn.Get("table1/nvi/CPVS"), mn.Get("table1/nvi/CPVS/veto")
	if base == nil || veto == nil {
		t.Fatalf("want both baseline and veto machines, keys %v", mn.Keys())
	}
	if base.Runs != int64(len(recs)) || veto.Runs != int64(len(recs)) {
		t.Fatalf("runs split %d/%d, want %d each", base.Runs, veto.Runs, len(recs))
	}
}

// TestReadAllTruncatedAtEveryByte is the S3 sweep: for every prefix of a
// valid ledger the reader must return a clean record prefix and either nil
// or an error wrapping ErrTruncated — never a panic, never silent
// acceptance of a torn line as data.
func TestReadAllTruncatedAtEveryByte(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		w.Append(&recs[i])
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	all, err := ReadAll(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		got, err := ReadAll(bytes.NewReader(full[:cut]))
		if cut == len(full) {
			if err != nil {
				t.Fatalf("full input: %v", err)
			}
		} else if err != nil && !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: error %v does not wrap ErrTruncated", cut, err)
		} else if err == nil && full[cut-1] != '\n' {
			// Only a cut landing exactly after a newline is a complete file.
			t.Fatalf("cut at %d (mid-line) accepted without error", cut)
		}
		if len(got) > len(all) || (len(got) > 0 && !reflect.DeepEqual(got, all[:len(got)])) {
			t.Fatalf("cut at %d: records are not a prefix of the full parse", cut)
		}
	}
}
