package apputil

import "testing"

// FuzzDecNoPanic: the decoder must reject arbitrary bytes gracefully (set
// Err), never panic — checkpoint images can be corrupted by the faults
// under study.
func FuzzDecNoPanic(f *testing.F) {
	var e Enc
	e.Int(3)
	e.Bytes([]byte("abc"))
	e.F64(1.5)
	e.Bool(true)
	f.Add(e.B)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := Dec{B: data}
		// Exercise every accessor in a fixed pattern; all must return
		// zero values once Err is set.
		_ = d.Int()
		_ = d.Bytes()
		_ = d.F64()
		_ = d.Bool()
		_ = d.Str()
		_ = d.Byte()
		_ = d.I64()
	})
}
