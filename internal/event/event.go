// Package event defines the computation model of Lowell, Chandra and Chen's
// OSDI 2000 paper "Exploring Failure Transparency and the Limits of Generic
// Recovery": computations are sets of processes modeled as state machines,
// and every state transition a process executes is an Event.
//
// Events carry a Kind (what the transition does externally: nothing, visible
// output, a message send or receive, a commit, a crash) and an NDClass
// (whether the transition is deterministic, transient non-deterministic, or
// fixed non-deterministic). The split mirrors the paper: non-determinism is
// orthogonal to visibility — a message receive is both a Receive and
// (usually) non-deterministic, while a gettimeofday call is internal but
// transient-ND.
//
// The package also provides Lamport's happens-before relation over recorded
// Traces, computed with vector clocks. Following the paper, happens-before
// is used both as an ordering constraint and as the approximation of
// causality ("causally precedes").
package event

import "fmt"

// Kind classifies what an event does beyond changing local process state.
type Kind uint8

const (
	// Internal events change only local process state.
	Internal Kind = iota
	// Visible events have an effect on the user (the paper's "output
	// events"). Systems providing failure transparency must never undo
	// them.
	Visible
	// Send events transmit a message to another process.
	Send
	// Receive events consume a message from another process.
	Receive
	// Commit events preserve the executing process's state so it can be
	// restored after a failure (a checkpoint, an ended transaction, or a
	// state-update message to a backup).
	Commit
	// Crash events transition the process into a state from which it
	// cannot continue execution; they model the eventual crash of a
	// propagation failure.
	Crash
)

// KindCount is the number of defined kinds — the size of fixed per-kind
// counter arrays (the observability layer indexes them by Kind).
const KindCount = int(Crash) + 1

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Internal:
		return "internal"
	case Visible:
		return "visible"
	case Send:
		return "send"
	case Receive:
		return "receive"
	case Commit:
		return "commit"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NDClass classifies an event's determinism. The distinction between
// transient and fixed non-determinism is central to the Lose-work theorem:
// only transient ND events can rescue a recovery from re-executing into the
// same crash.
type NDClass uint8

const (
	// Deterministic events have exactly one possible result.
	Deterministic NDClass = iota
	// TransientND events can have a different result before and after a
	// failure: scheduling decisions, signals, message ordering, the
	// timing of user input, gettimeofday.
	TransientND
	// FixedND events are non-deterministic in the Save-work sense but
	// are likely to repeat the same result after a failure, so recovery
	// cannot depend on them changing: user input values, disk-fullness
	// checks, open-file-table capacity.
	FixedND
)

// String returns the lower-case name of the class.
func (c NDClass) String() string {
	switch c {
	case Deterministic:
		return "det"
	case TransientND:
		return "transient-nd"
	case FixedND:
		return "fixed-nd"
	default:
		return fmt.Sprintf("NDClass(%d)", uint8(c))
	}
}

// ID names event e_p^i: the i'th event executed by process p. Indexes are
// zero-based and dense within each process.
type ID struct {
	P int // process index
	I int // event index within the process
}

// String renders the ID in the paper's e_p^i notation.
func (id ID) String() string { return fmt.Sprintf("e_%d^%d", id.P, id.I) }

// Event is one state transition executed by a process.
type Event struct {
	ID   ID
	Kind Kind
	ND   NDClass

	// Logged reports that the result of this ND event was written to a
	// persistent log, rendering it effectively deterministic during
	// recovery. Logged is meaningful only when ND != Deterministic.
	Logged bool

	// Msg identifies the message for Send/Receive events; a Receive
	// matches the Send with the same Msg value. Zero means no message.
	Msg int64
	// Peer is the other process of a Send/Receive.
	Peer int

	// Label is an optional human-readable description ("keystroke",
	// "gettimeofday", "frame", ...). It has no semantic weight.
	Label string
}

// EffectivelyND reports whether the event still behaves non-deterministically
// during recovery: it is non-deterministic and its result was not logged.
func (e Event) EffectivelyND() bool {
	return e.ND != Deterministic && !e.Logged
}

// String renders a compact single-line description of the event.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.ID, e.Kind)
	if e.ND != Deterministic {
		s += " " + e.ND.String()
		if e.Logged {
			s += " logged"
		}
	}
	if e.Kind == Send || e.Kind == Receive {
		s += fmt.Sprintf(" msg=%d peer=%d", e.Msg, e.Peer)
	}
	if e.Label != "" {
		s += " (" + e.Label + ")"
	}
	return s
}
