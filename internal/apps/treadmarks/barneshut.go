package treadmarks

import (
	"encoding/binary"
	"math"
)

// Body is one particle of the N-body simulation.
type Body struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	Mass       float64
}

// BodySize is the serialized size of a body in shared memory.
const BodySize = 7 * 8

// EncodeBody writes a body at off in page memory.
func EncodeBody(buf []byte, b Body) {
	fs := [7]float64{b.X, b.Y, b.Z, b.VX, b.VY, b.VZ, b.Mass}
	for i, f := range fs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f))
	}
}

// DecodeBody reads a body from page memory.
func DecodeBody(buf []byte) Body {
	var fs [7]float64
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return Body{fs[0], fs[1], fs[2], fs[3], fs[4], fs[5], fs[6]}
}

// Simulation constants.
const (
	theta   = 0.5  // Barnes-Hut opening criterion
	dt      = 0.05 // integration step
	gravity = 1.0
	soften  = 0.1 // softening length avoids singular forces
)

// octNode is one node of the Barnes-Hut octree.
type octNode struct {
	// Cube center and half-size.
	CX, CY, CZ, Half float64
	// Aggregate mass and center of mass.
	Mass       float64
	MX, MY, MZ float64
	// Leaf body (valid when NBodies == 1 and no children).
	Body    Body
	NBodies int
	Kids    [8]*octNode
}

// BuildTree constructs the octree over the bodies.
func BuildTree(bodies []Body) *octNode {
	if len(bodies) == 0 {
		return nil
	}
	// Bounding cube.
	min, max := math.Inf(1), math.Inf(-1)
	for _, b := range bodies {
		for _, v := range [3]float64{b.X, b.Y, b.Z} {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	half := (max-min)/2 + 1e-9
	c := (max + min) / 2
	root := &octNode{CX: c, CY: c, CZ: c, Half: half}
	for _, b := range bodies {
		root.insert(b)
	}
	root.summarize()
	return root
}

// octant returns which child cube the body falls in.
func (n *octNode) octant(b Body) int {
	i := 0
	if b.X >= n.CX {
		i |= 1
	}
	if b.Y >= n.CY {
		i |= 2
	}
	if b.Z >= n.CZ {
		i |= 4
	}
	return i
}

func (n *octNode) childCube(i int) (cx, cy, cz, half float64) {
	half = n.Half / 2
	cx, cy, cz = n.CX-half, n.CY-half, n.CZ-half
	if i&1 != 0 {
		cx = n.CX + half
	}
	if i&2 != 0 {
		cy = n.CY + half
	}
	if i&4 != 0 {
		cz = n.CZ + half
	}
	return
}

func (n *octNode) insert(b Body) {
	if n.NBodies == 0 {
		n.Body = b
		n.NBodies = 1
		return
	}
	if n.NBodies == 1 {
		// Split: push the resident body down (unless the cube has
		// degenerated, then aggregate in place).
		if n.Half < 1e-12 {
			n.Body.Mass += b.Mass
			n.NBodies++
			return
		}
		old := n.Body
		n.pushDown(old)
	}
	n.NBodies++
	n.pushDown(b)
}

func (n *octNode) pushDown(b Body) {
	i := n.octant(b)
	if n.Kids[i] == nil {
		cx, cy, cz, half := n.childCube(i)
		n.Kids[i] = &octNode{CX: cx, CY: cy, CZ: cz, Half: half}
	}
	n.Kids[i].insert(b)
}

// summarize computes mass and center of mass bottom-up.
func (n *octNode) summarize() {
	if n.isLeaf() {
		n.Mass = n.Body.Mass
		n.MX, n.MY, n.MZ = n.Body.X, n.Body.Y, n.Body.Z
		return
	}
	n.Mass, n.MX, n.MY, n.MZ = 0, 0, 0, 0
	for _, k := range n.Kids {
		if k == nil {
			continue
		}
		k.summarize()
		n.Mass += k.Mass
		n.MX += k.MX * k.Mass
		n.MY += k.MY * k.Mass
		n.MZ += k.MZ * k.Mass
	}
	if n.Mass > 0 {
		n.MX /= n.Mass
		n.MY /= n.Mass
		n.MZ /= n.Mass
	}
}

func (n *octNode) isLeaf() bool {
	for _, k := range n.Kids {
		if k != nil {
			return false
		}
	}
	return true
}

// Count returns the number of bodies in the subtree (for invariants).
func (n *octNode) Count() int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return n.NBodies
	}
	c := 0
	for _, k := range n.Kids {
		c += k.Count()
	}
	return c
}

// Force accumulates the gravitational acceleration on body b from the tree
// using the theta opening criterion.
func (n *octNode) Force(b Body) (ax, ay, az float64) {
	if n == nil || n.Mass == 0 {
		return 0, 0, 0
	}
	dx, dy, dz := n.MX-b.X, n.MY-b.Y, n.MZ-b.Z
	d2 := dx*dx + dy*dy + dz*dz + soften*soften
	d := math.Sqrt(d2)
	if n.isLeaf() || (2*n.Half)/d < theta {
		// Treat as a point mass (skip self-interaction).
		if d2 <= soften*soften*1.0000001 && n.isLeaf() {
			return 0, 0, 0
		}
		f := gravity * n.Mass / (d2 * d)
		return f * dx, f * dy, f * dz
	}
	for _, k := range n.Kids {
		if k == nil {
			continue
		}
		kx, ky, kz := k.Force(b)
		ax += kx
		ay += ky
		az += kz
	}
	return ax, ay, az
}

// StepBodies advances the subset [lo,hi) of bodies one dt using forces from
// the tree built over all bodies; it returns the updated slice entries.
func StepBodies(all []Body, lo, hi int) []Body {
	tree := BuildTree(all)
	out := make([]Body, hi-lo)
	for i := lo; i < hi; i++ {
		b := all[i]
		ax, ay, az := tree.Force(b)
		b.VX += ax * dt
		b.VY += ay * dt
		b.VZ += az * dt
		b.X += b.VX * dt
		b.Y += b.VY * dt
		b.Z += b.VZ * dt
		out[i-lo] = b
	}
	return out
}

// InitBodies builds the deterministic initial condition: a Plummer-like
// spiral of n bodies (no randomness, so every process and the sequential
// oracle agree bit-for-bit).
func InitBodies(n int) []Body {
	bodies := make([]Body, n)
	for i := range bodies {
		t := float64(i) * 2.399963229728653 // golden angle
		r := 10 * math.Sqrt(float64(i+1)/float64(n))
		bodies[i] = Body{
			X:    r * math.Cos(t),
			Y:    r * math.Sin(t),
			Z:    2 * math.Sin(3*t),
			VX:   -0.3 * r * math.Sin(t),
			VY:   0.3 * r * math.Cos(t),
			Mass: 1 + 0.001*float64(i%7),
		}
	}
	return bodies
}

// TotalEnergy returns kinetic + potential energy (O(n²); used for progress
// output and conservation sanity checks).
func TotalEnergy(bodies []Body) float64 {
	e := 0.0
	for i, b := range bodies {
		e += 0.5 * b.Mass * (b.VX*b.VX + b.VY*b.VY + b.VZ*b.VZ)
		for j := i + 1; j < len(bodies); j++ {
			o := bodies[j]
			dx, dy, dz := o.X-b.X, o.Y-b.Y, o.Z-b.Z
			d := math.Sqrt(dx*dx + dy*dy + dz*dz + soften*soften)
			e -= gravity * b.Mass * o.Mass / d
		}
	}
	return e
}
