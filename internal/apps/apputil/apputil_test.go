package apputil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.Int(-42)
	e.I64(1 << 60)
	e.F64(3.14159)
	e.Bytes([]byte("payload"))
	e.Str("string")
	e.Bool(true)
	e.Bool(false)
	e.B = append(e.B, 0xAB)

	d := Dec{B: e.B}
	if d.Int() != -42 || d.I64() != 1<<60 || d.F64() != 3.14159 {
		t.Error("numeric round trip failed")
	}
	if string(d.Bytes()) != "payload" || d.Str() != "string" {
		t.Error("bytes/string round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool round trip failed")
	}
	if d.Byte() != 0xAB {
		t.Error("byte round trip failed")
	}
	if d.Err != nil {
		t.Errorf("unexpected decode error: %v", d.Err)
	}
}

func TestDecOverrun(t *testing.T) {
	d := Dec{B: []byte{1, 2}}
	if d.I64(); d.Err == nil {
		t.Error("short I64 must set Err")
	}
	d2 := Dec{B: (&Enc{}).B}
	if d2.Bytes(); d2.Err == nil {
		t.Error("empty Bytes must set Err")
	}
	// Negative length.
	var e Enc
	e.Int(-5)
	d3 := Dec{B: e.B}
	if d3.Bytes(); d3.Err == nil {
		t.Error("negative length must set Err")
	}
	// Errors are sticky.
	if d3.Int(); d3.Err == nil {
		t.Error("Err must stay set")
	}
}

func TestF64SpecialValues(t *testing.T) {
	for _, v := range []float64{0, math.Inf(1), math.Inf(-1), -0.0, math.SmallestNonzeroFloat64} {
		var e Enc
		e.F64(v)
		d := Dec{B: e.B}
		if got := d.F64(); got != v {
			t.Errorf("F64(%v) round trip = %v", v, got)
		}
	}
	var e Enc
	e.F64(math.NaN())
	d := Dec{B: e.B}
	if !math.IsNaN(d.F64()) {
		t.Error("NaN must survive")
	}
}

func TestFlipBit(t *testing.T) {
	buf := []byte{0x00, 0x00}
	FlipBit(buf, 0)
	if buf[0] != 0x01 {
		t.Errorf("bit 0 flip = %02x", buf[0])
	}
	FlipBit(buf, 9)
	if buf[1] != 0x02 {
		t.Errorf("bit 9 flip = %02x", buf[1])
	}
	// Wraps modulo size; never panics on empty.
	FlipBit(buf, 1_000_003)
	FlipBit(nil, 7)
}

func TestChecksum(t *testing.T) {
	a := Checksum([]byte("hello"), []byte("world"))
	b := Checksum([]byte("helloworld"))
	if a != b {
		t.Error("checksum must be over the concatenation")
	}
	if Checksum([]byte("x")) == Checksum([]byte("y")) {
		t.Error("different data should differ (overwhelmingly)")
	}
}

// TestCodecProperty: random value sequences round-trip.
func TestCodecProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		kinds := make([]int, n)
		ints := make([]int64, n)
		blobs := make([][]byte, n)
		var e Enc
		for i := 0; i < n; i++ {
			kinds[i] = r.Intn(3)
			switch kinds[i] {
			case 0:
				ints[i] = r.Int63() - r.Int63()
				e.I64(ints[i])
			case 1:
				blob := make([]byte, r.Intn(64))
				r.Read(blob)
				blobs[i] = blob
				e.Bytes(blob)
			default:
				ints[i] = int64(r.Intn(2))
				e.Bool(ints[i] == 1)
			}
		}
		d := Dec{B: e.B}
		for i := 0; i < n; i++ {
			switch kinds[i] {
			case 0:
				if d.I64() != ints[i] {
					return false
				}
			case 1:
				got := d.Bytes()
				if string(got) != string(blobs[i]) {
					return false
				}
			default:
				if d.Bool() != (ints[i] == 1) {
					return false
				}
			}
		}
		return d.Err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
