// Package treadmarks reimplements the paper's distributed scientific
// workload: a page-based software distributed shared memory system running
// a Barnes-Hut N-body simulation across four simulated machines.
//
// Substitution note (see DESIGN.md): TreadMarks proper implements lazy
// release consistency with twins, diffs and interval vector timestamps. We
// implement the classic Li & Hudak fixed-distributed-manager ownership
// protocol instead — a real published DSM design whose event shape (copious
// message sends and receives per page fault, barriers through a manager,
// almost no visible events) matches what the paper's measurements depend
// on, while being tractable to verify: a four-process run must produce
// bit-identical physics to the sequential oracle.
//
// Protocol: every page has a manager (page % nprocs) that serializes
// transfers. A faulting process sends REQ to the manager; the manager marks
// the page busy and sends FETCH to the current owner; the owner gives up
// the page and returns DATA to the manager; the manager GRANTs page +
// ownership to the requester and serves the next queued REQ. Barriers
// funnel through process 0.
package treadmarks

import (
	"fmt"

	"failtrans/internal/apps/apputil"
)

// PageSize is the DSM page granularity in bytes.
const PageSize = 1024

// Message types.
const (
	msgReq   = iota + 1 // requester -> manager: I need this page
	msgFetch            // manager -> owner: surrender the page
	msgData             // owner -> manager: page contents
	msgGrant            // manager -> requester: page contents + ownership
	msgBEnter
	msgBRelease
	msgLockAcq
	msgLockRel
	msgLockGrant
)

// dsmMsg is the wire format of every DSM message.
type dsmMsg struct {
	Type int
	Page int
	// Requester identifies who a FETCH/DATA cycle is ultimately for.
	Requester int
	// Barrier sequence number for enter/release.
	Barrier int
	Data    []byte
}

func (m dsmMsg) encode() []byte {
	var e apputil.Enc
	e.Int(m.Type)
	e.Int(m.Page)
	e.Int(m.Requester)
	e.Int(m.Barrier)
	e.Bytes(m.Data)
	return e.B
}

func decodeMsg(b []byte) (dsmMsg, error) {
	d := apputil.Dec{B: b}
	m := dsmMsg{
		Type:      d.Int(),
		Page:      d.Int(),
		Requester: d.Int(),
		Barrier:   d.Int(),
		Data:      d.Bytes(),
	}
	return m, d.Err
}

// outMsg is a queued send.
type outMsg struct {
	To  int
	Msg dsmMsg
}

// dsm is one process's view of the shared memory.
type dsm struct {
	Me       int
	NumProcs int
	NumPages int

	// Pages I currently own (and their contents).
	Pages map[int][]byte
	// Owner records for pages I manage (page % NumProcs == Me).
	Owner map[int]int
	// Busy/queue for pages I manage, serializing transfers.
	Busy  map[int]bool
	Queue map[int][]int

	// Outbox of protocol messages to send, one per step.
	Outbox []outMsg

	// AwaitPage is the page I'm blocked faulting on (-1 when none).
	AwaitPage int

	// Barrier state.
	BarrierSeq     int
	BarrierWaiting bool
	BarrierCount   int // manager only (process 0)

	// Lock state. Locks are TreadMarks' second synchronization
	// primitive; process 0 manages them all. Page carries the lock id
	// in lock messages.
	LockWaiting bool
	HeldLocks   map[int]bool
	// Manager-side (process 0): current owner per lock (-1 = free) and
	// FIFO waiter queues.
	LockOwner map[int]int
	LockQueue map[int][]int

	// Stats.
	Faults    int64
	Transfers int64
}

// newDSM initializes page ownership round-robin: page p starts owned by its
// manager.
func newDSM(me, nprocs, npages int) *dsm {
	d := &dsm{
		Me: me, NumProcs: nprocs, NumPages: npages,
		Pages: make(map[int][]byte), Owner: make(map[int]int),
		Busy: make(map[int]bool), Queue: make(map[int][]int),
		AwaitPage: -1,
		HeldLocks: make(map[int]bool),
		LockOwner: make(map[int]int), LockQueue: make(map[int][]int),
	}
	for p := 0; p < npages; p++ {
		if d.manager(p) == me {
			d.Owner[p] = me
			d.Pages[p] = make([]byte, PageSize)
		}
	}
	return d
}

func (d *dsm) manager(page int) int { return page % d.NumProcs }

// Have reports whether the page is locally owned.
func (d *dsm) Have(page int) bool {
	_, ok := d.Pages[page]
	return ok
}

// Fault initiates a page fetch; the caller then waits for AwaitPage to
// clear.
func (d *dsm) Fault(page int) {
	d.Faults++
	d.AwaitPage = page
	d.Outbox = append(d.Outbox, outMsg{
		To:  d.manager(page),
		Msg: dsmMsg{Type: msgReq, Page: page, Requester: d.Me},
	})
}

// Handle processes one incoming DSM message, queueing any replies.
func (d *dsm) Handle(m dsmMsg) error {
	switch m.Type {
	case msgReq:
		if d.manager(m.Page) != d.Me {
			return fmt.Errorf("treadmarks: REQ for page %d at non-manager %d", m.Page, d.Me)
		}
		d.Queue[m.Page] = append(d.Queue[m.Page], m.Requester)
		d.pump(m.Page)
	case msgFetch:
		data, ok := d.Pages[m.Page]
		if !ok {
			return fmt.Errorf("treadmarks: FETCH of page %d from non-owner %d", m.Page, d.Me)
		}
		delete(d.Pages, m.Page) // surrender ownership
		d.Transfers++
		d.Outbox = append(d.Outbox, outMsg{
			To:  d.manager(m.Page),
			Msg: dsmMsg{Type: msgData, Page: m.Page, Requester: m.Requester, Data: data},
		})
	case msgData:
		if d.manager(m.Page) != d.Me {
			return fmt.Errorf("treadmarks: DATA for page %d at non-manager %d", m.Page, d.Me)
		}
		d.grant(m.Page, m.Requester, m.Data)
	case msgGrant:
		if len(m.Data) == 0 && d.Have(m.Page) {
			// Stale-fault confirmation: local copy is authoritative.
		} else {
			d.Pages[m.Page] = append([]byte(nil), m.Data...)
		}
		if d.AwaitPage == m.Page {
			d.AwaitPage = -1
		}
	case msgBEnter:
		if d.Me != 0 {
			return fmt.Errorf("treadmarks: BENTER at non-coordinator %d", d.Me)
		}
		d.BarrierCount++
		d.releaseBarrierIfReady()
	case msgBRelease:
		if m.Barrier == d.BarrierSeq && d.BarrierWaiting {
			d.BarrierWaiting = false
			d.BarrierSeq++
		}
	case msgLockAcq:
		if d.Me != 0 {
			return fmt.Errorf("treadmarks: LOCK_ACQ at non-manager %d", d.Me)
		}
		owner, held := d.LockOwner[m.Page]
		if !held || owner < 0 {
			d.lockGrant(m.Page, m.Requester)
		} else {
			d.LockQueue[m.Page] = append(d.LockQueue[m.Page], m.Requester)
		}
	case msgLockRel:
		if d.Me != 0 {
			return fmt.Errorf("treadmarks: LOCK_REL at non-manager %d", d.Me)
		}
		d.LockOwner[m.Page] = -1
		if q := d.LockQueue[m.Page]; len(q) > 0 {
			d.LockQueue[m.Page] = q[1:]
			d.lockGrant(m.Page, q[0])
		}
	case msgLockGrant:
		d.HeldLocks[m.Page] = true
		d.LockWaiting = false
	default:
		return fmt.Errorf("treadmarks: unknown message type %d", m.Type)
	}
	return nil
}

// pump serves the next queued request for a page I manage.
func (d *dsm) pump(page int) {
	if d.Busy[page] || len(d.Queue[page]) == 0 {
		return
	}
	req := d.Queue[page][0]
	d.Queue[page] = d.Queue[page][1:]
	owner := d.Owner[page]
	if req == owner {
		// Stale fault: the requester already owns the page. Confirm
		// with an empty GRANT (the requester's copy is authoritative)
		// so it does not wait forever.
		if req == d.Me {
			if d.AwaitPage == page {
				d.AwaitPage = -1
			}
		} else {
			d.Outbox = append(d.Outbox, outMsg{
				To:  req,
				Msg: dsmMsg{Type: msgGrant, Page: page},
			})
		}
		d.pump(page)
		return
	}
	d.Busy[page] = true
	if owner == d.Me {
		data, ok := d.Pages[page]
		if !ok {
			// Manager believed itself owner but lacks the page:
			// protocol corruption.
			panic(fmt.Sprintf("treadmarks: manager %d lost page %d", d.Me, page))
		}
		delete(d.Pages, page)
		d.Transfers++
		d.grant(page, req, data)
		return
	}
	d.Outbox = append(d.Outbox, outMsg{
		To:  owner,
		Msg: dsmMsg{Type: msgFetch, Page: page, Requester: req},
	})
}

// grant hands page + ownership to the requester and unblocks the queue.
func (d *dsm) grant(page, req int, data []byte) {
	d.Owner[page] = req
	d.Busy[page] = false
	if req == d.Me {
		// Manager requested its own page back.
		d.Pages[page] = append([]byte(nil), data...)
		if d.AwaitPage == page {
			d.AwaitPage = -1
		}
	} else {
		d.Outbox = append(d.Outbox, outMsg{
			To:  req,
			Msg: dsmMsg{Type: msgGrant, Page: page, Data: data},
		})
	}
	d.pump(page)
}

// lockGrant (manager only) hands lock id to req.
func (d *dsm) lockGrant(id, req int) {
	d.LockOwner[id] = req
	if req == d.Me {
		d.HeldLocks[id] = true
		d.LockWaiting = false
		return
	}
	d.Outbox = append(d.Outbox, outMsg{
		To:  req,
		Msg: dsmMsg{Type: msgLockGrant, Page: id},
	})
}

// AcquireLock requests lock id; the caller then waits for LockWaiting to
// clear.
func (d *dsm) AcquireLock(id int) {
	d.LockWaiting = true
	if d.Me == 0 {
		// Local fast path through the same manager logic.
		if err := d.Handle(dsmMsg{Type: msgLockAcq, Page: id, Requester: 0}); err != nil {
			panic(err)
		}
		return
	}
	d.Outbox = append(d.Outbox, outMsg{
		To:  0,
		Msg: dsmMsg{Type: msgLockAcq, Page: id, Requester: d.Me},
	})
}

// ReleaseLock gives lock id back to the manager.
func (d *dsm) ReleaseLock(id int) {
	delete(d.HeldLocks, id)
	if d.Me == 0 {
		if err := d.Handle(dsmMsg{Type: msgLockRel, Page: id, Requester: 0}); err != nil {
			panic(err)
		}
		return
	}
	d.Outbox = append(d.Outbox, outMsg{
		To:  0,
		Msg: dsmMsg{Type: msgLockRel, Page: id, Requester: d.Me},
	})
}

// EnterBarrier queues this process's arrival at the current barrier.
func (d *dsm) EnterBarrier() {
	d.BarrierWaiting = true
	if d.Me == 0 {
		d.BarrierCount++
		d.releaseBarrierIfReady()
		return
	}
	d.Outbox = append(d.Outbox, outMsg{
		To:  0,
		Msg: dsmMsg{Type: msgBEnter, Barrier: d.BarrierSeq},
	})
}

// releaseBarrierIfReady (coordinator only) releases everyone once all have
// arrived.
func (d *dsm) releaseBarrierIfReady() {
	if d.BarrierCount < d.NumProcs {
		return
	}
	d.BarrierCount = 0
	for p := 1; p < d.NumProcs; p++ {
		d.Outbox = append(d.Outbox, outMsg{
			To:  p,
			Msg: dsmMsg{Type: msgBRelease, Barrier: d.BarrierSeq},
		})
	}
	if d.BarrierWaiting {
		d.BarrierWaiting = false
		d.BarrierSeq++
	}
}

// marshal/unmarshal for checkpointing.
func (d *dsm) marshal(e *apputil.Enc) {
	e.Int(d.Me)
	e.Int(d.NumProcs)
	e.Int(d.NumPages)
	e.Int(len(d.Pages))
	for p := 0; p < d.NumPages; p++ {
		if data, ok := d.Pages[p]; ok {
			e.Int(p)
			e.Bytes(data)
		}
	}
	e.Int(len(d.Owner))
	for p := 0; p < d.NumPages; p++ {
		if o, ok := d.Owner[p]; ok {
			e.Int(p)
			e.Int(o)
		}
	}
	busy := 0
	for p := 0; p < d.NumPages; p++ {
		if d.Busy[p] {
			busy++
		}
	}
	e.Int(busy)
	for p := 0; p < d.NumPages; p++ {
		if d.Busy[p] {
			e.Int(p)
		}
	}
	queued := 0
	for p := 0; p < d.NumPages; p++ {
		if len(d.Queue[p]) > 0 {
			queued++
		}
	}
	e.Int(queued)
	for p := 0; p < d.NumPages; p++ {
		if q := d.Queue[p]; len(q) > 0 {
			e.Int(p)
			e.Int(len(q))
			for _, r := range q {
				e.Int(r)
			}
		}
	}
	e.Int(len(d.Outbox))
	for _, om := range d.Outbox {
		e.Int(om.To)
		e.Bytes(om.Msg.encode())
	}
	e.Int(d.AwaitPage)
	e.Int(d.BarrierSeq)
	e.Bool(d.BarrierWaiting)
	e.Int(d.BarrierCount)
	e.Bool(d.LockWaiting)
	held := make([]int, 0, len(d.HeldLocks))
	for id := range d.HeldLocks {
		held = append(held, id)
	}
	sortInts(held)
	e.Int(len(held))
	for _, id := range held {
		e.Int(id)
	}
	owners := make([]int, 0, len(d.LockOwner))
	for id := range d.LockOwner {
		owners = append(owners, id)
	}
	sortInts(owners)
	e.Int(len(owners))
	for _, id := range owners {
		e.Int(id)
		e.Int(d.LockOwner[id])
	}
	lockQueued := make([]int, 0, len(d.LockQueue))
	for id := range d.LockQueue {
		if len(d.LockQueue[id]) > 0 {
			lockQueued = append(lockQueued, id)
		}
	}
	sortInts(lockQueued)
	e.Int(len(lockQueued))
	for _, id := range lockQueued {
		e.Int(id)
		e.Int(len(d.LockQueue[id]))
		for _, r := range d.LockQueue[id] {
			e.Int(r)
		}
	}
	e.I64(d.Faults)
	e.I64(d.Transfers)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func unmarshalDSM(dec *apputil.Dec) (*dsm, error) {
	d := &dsm{
		Pages: make(map[int][]byte), Owner: make(map[int]int),
		Busy: make(map[int]bool), Queue: make(map[int][]int),
	}
	d.Me = dec.Int()
	d.NumProcs = dec.Int()
	d.NumPages = dec.Int()
	n := dec.Int()
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("treadmarks: implausible page count %d", n)
	}
	for i := 0; i < n; i++ {
		p := dec.Int()
		d.Pages[p] = dec.Bytes()
	}
	n = dec.Int()
	for i := 0; i < n; i++ {
		p := dec.Int()
		d.Owner[p] = dec.Int()
	}
	n = dec.Int()
	for i := 0; i < n; i++ {
		d.Busy[dec.Int()] = true
	}
	n = dec.Int()
	for i := 0; i < n; i++ {
		p := dec.Int()
		qn := dec.Int()
		if qn < 0 || qn > 1<<16 {
			return nil, fmt.Errorf("treadmarks: implausible queue length %d", qn)
		}
		q := make([]int, 0, qn)
		for j := 0; j < qn; j++ {
			q = append(q, dec.Int())
		}
		d.Queue[p] = q
	}
	n = dec.Int()
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("treadmarks: implausible outbox length %d", n)
	}
	for i := 0; i < n; i++ {
		to := dec.Int()
		m, err := decodeMsg(dec.Bytes())
		if err != nil {
			return nil, err
		}
		d.Outbox = append(d.Outbox, outMsg{To: to, Msg: m})
	}
	d.AwaitPage = dec.Int()
	d.BarrierSeq = dec.Int()
	d.BarrierWaiting = dec.Bool()
	d.BarrierCount = dec.Int()
	d.LockWaiting = dec.Bool()
	d.HeldLocks = make(map[int]bool)
	n = dec.Int()
	for i := 0; i < n; i++ {
		d.HeldLocks[dec.Int()] = true
	}
	d.LockOwner = make(map[int]int)
	n = dec.Int()
	for i := 0; i < n; i++ {
		id := dec.Int()
		d.LockOwner[id] = dec.Int()
	}
	d.LockQueue = make(map[int][]int)
	n = dec.Int()
	for i := 0; i < n; i++ {
		id := dec.Int()
		qn := dec.Int()
		if qn < 0 || qn > 1<<16 {
			return nil, fmt.Errorf("treadmarks: implausible lock queue %d", qn)
		}
		q := make([]int, 0, qn)
		for j := 0; j < qn; j++ {
			q = append(q, dec.Int())
		}
		d.LockQueue[id] = q
	}
	d.Faults = dec.I64()
	d.Transfers = dec.I64()
	return d, dec.Err
}
