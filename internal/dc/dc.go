// Package dc reimplements Discount Checking (Lowell & Chen, CSE-TR-410-99),
// the transparent recovery system the paper's evaluation runs on: per-
// process full-state checkpoints held in a Vista persistent segment over
// reliable memory (or synchronously written to disk, the DC-disk variant),
// interception of every non-deterministic, visible and send event, pluggable
// Save-work commit policies, non-determinism logging, two-phase coordinated
// commits, and rollback with constrained re-execution after a failure.
//
// DC attaches to a sim.World as its Recovery implementation. Commits
// serialize the process's checkpoint image into its segment with page-
// granularity diffing (the analogue of copy-on-write: untouched pages cost
// nothing), charge the commit's virtual-time cost from the configured
// stable-storage medium, and release the process's retained messages.
// Recovery restores the last committed image, re-queues or log-replays
// messages, and replays logged non-deterministic results until the log is
// exhausted, after which execution continues live.
package dc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"failtrans/internal/event"
	"failtrans/internal/obs"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/vista"
)

// registerFileSize is the pseudo register-file blob saved with each commit.
const registerFileSize = 64

// Stats aggregates what DC did during a run.
type Stats struct {
	// Checkpoints counts commits per process.
	Checkpoints []int
	// CommitBytes is the total dirty payload written by commits.
	CommitBytes int64
	// CommitTime is the virtual time spent committing.
	CommitTime time.Duration
	// LogRecords / LogBytes / LogTime account the ND log writes.
	LogRecords int64
	LogBytes   int64
	LogTime    time.Duration
	// Recoveries counts rollbacks performed.
	Recoveries int
	// TwoPhaseRounds counts coordinated-commit rounds.
	TwoPhaseRounds int
	// VetoConsults counts CommitVeto policy consultations; CommitsVetoed
	// the commits the policy deferred. VetoedSaveWork counts deferred
	// commits at Save-work decision points (commit-before-visible and
	// coordinated visible commits) — each one is output made visible
	// without a covering commit, the Save-work cost the veto induces.
	VetoConsults   int
	CommitsVetoed  int
	VetoedSaveWork int
}

// TotalCheckpoints sums commits across processes.
func (s *Stats) TotalCheckpoints() int {
	n := 0
	for _, c := range s.Checkpoints {
		n += c
	}
	return n
}

type logRec struct {
	label string
	val   []byte
	// pos is the event's position relative to the process's last commit
	// (its receive sequence number). Replay supplies the record only
	// when the re-execution reaches the same position, preserving the
	// original interleaving of consumption with computation.
	pos int
}

// DC is one Discount Checking instance governing every process of a world.
type DC struct {
	World  *sim.World
	Policy protocol.Policy
	Medium stablestore.Medium

	// PageSize configures the Vista segments' trap granularity.
	PageSize int

	segs    []*vista.Segment
	ndSince []bool
	// deps[p][q] = q's commit epoch when p acquired a dependence on q's
	// then-uncommitted non-determinism; stale entries (q committed
	// since) are pruned at coordination time.
	deps    []map[int]int
	epoch []int
	//failtrans:cowshared mutableMsgDeps
	msgDeps map[int64]map[int]int
	// msgDepsShared marks msgDeps as borrowed from a frozen template; the
	// first write copies it (the inner snapshots are write-once and stay
	// shared). frozen marks this instance sealed as a COW fork template.
	msgDepsShared bool
	frozen        bool

	// ndLog's outer array is remade per fork (fork clones the headers),
	// but each inner per-process log aliases the frozen template's
	// records behind a capacity clamp; there is no privatizer — every
	// store must justify why it cannot write the template's backing.
	//failtrans:cowshared none
	ndLog     [][]logRec
	watermark []int
	replaying []bool
	cursor    []int
	// stepsBase anchors relative event positions: the process's Steps
	// counter just after its last commit (or restore point).
	stepsBase []int
	// replayOpen marks processes with an open "replay" tracer window, so
	// the End pairs with its Begin exactly once.
	replayOpen []bool
	// flushed counts how many log records have reached stable storage
	// (== len(ndLog) except under asynchronous logging, where the tail
	// is volatile and is lost in a crash).
	flushed []int

	// pendingCommit defers commit-after-event to the end of the step.
	pendingCommit []string

	registers []byte

	// imgBuf holds one reusable checkpoint-image buffer per process, so
	// a steady-state commit serializes into preallocated memory.
	imgBuf [][]byte
	// coStats/coErrs are reusable scratch for the parallel coordinated-
	// commit diff phase.
	coStats []vista.Stats
	coErrs  []error

	// CommitHook, if set, is called after every commit (fault studies
	// record commit positions through it).
	CommitHook func(p *sim.Proc, label string)
	// CommitVeto, if set, is consulted before every policy-driven commit
	// (every label except the "initial" checkpoint, which the theory
	// requires unconditionally). Returning true defers the commit: no
	// state changes, no time is charged, and the run proceeds uncommitted
	// until the policy relents at a later decision point. The fault
	// studies wire this to a mined dangerous-path coloring — the commit
	// veto that trades induced Save-work violations (counted in
	// Stats.VetoedSaveWork, never hidden) for Lose-work safety. Setting
	// the hook forces coordinated commits onto the serial member path so
	// every member's commit funnels through the veto check.
	CommitVeto func(p *sim.Proc, label string) bool
	// RecoveryHook, if set, is called after every successful rollback.
	RecoveryHook func(p *sim.Proc, reason string)
	// DisableRecovery leaves crashed processes dead (the fault studies
	// decide recovery outcomes analytically and per-run).
	DisableRecovery bool
	// CheckBeforeCommit runs the program's CheckConsistency (when it
	// implements sim.Checker) before every commit, crashing instead of
	// committing corrupt state — the paper's §2.6 mitigation for
	// Lose-work violations.
	CheckBeforeCommit bool
	// EssentialOnly commits only the application's essential state (for
	// Programs implementing sim.PartialState); derived state is
	// recomputed during recovery — the paper's §2.6 "reduce the
	// comprehensiveness of the state saved" mitigation.
	EssentialOnly bool
	// SerialCommit forces coordinated (2PC) commits to diff and log
	// members one at a time instead of in parallel goroutines. The two
	// paths produce byte-identical traces (asserted in tests); the knob
	// exists for that assertion and for debugging.
	SerialCommit bool
	// ExpandResourcesOnCrash calls the hook after each rollback — the
	// paper's §2.6 "make some fixed non-deterministic events into
	// transient ones by increasing disk space or other application
	// resource limits after a failure". Wire it to
	// kernel.ExpandResources to let re-execution past a resource-
	// exhaustion crash.
	ExpandResourcesOnCrash func(p *sim.Proc)
	// ChecksFailed counts commits refused by a failed consistency check.
	ChecksFailed int

	Stats Stats
}

// New builds a DC for w with the given policy and commit medium and
// attaches it as the world's recovery layer.
func New(w *sim.World, pol protocol.Policy, medium stablestore.Medium) *DC {
	n := len(w.Procs)
	d := &DC{
		World:         w,
		Policy:        pol,
		Medium:        medium,
		PageSize:      vista.DefaultPageSize,
		segs:          make([]*vista.Segment, n),
		ndSince:       make([]bool, n),
		deps:          make([]map[int]int, n),
		epoch:         make([]int, n),
		msgDeps:       make(map[int64]map[int]int),
		ndLog:         make([][]logRec, n),
		watermark:     make([]int, n),
		replaying:     make([]bool, n),
		cursor:        make([]int, n),
		stepsBase:     make([]int, n),
		replayOpen:    make([]bool, n),
		flushed:       make([]int, n),
		pendingCommit: make([]string, n),
		registers:     make([]byte, registerFileSize),
		imgBuf:        make([][]byte, n),
	}
	d.Stats.Checkpoints = make([]int, n)
	for i := range d.deps {
		d.deps[i] = make(map[int]int)
	}
	w.Recovery = d
	return d
}

// Attach initializes all programs and takes the initial checkpoint of every
// process — the theory's standing assumption that "the initial state of any
// application is always committed". Call it before World.Run.
func (d *DC) Attach() error {
	if err := d.World.Init(); err != nil {
		return err
	}
	for _, p := range d.World.Procs {
		if err := d.commitOne(p, "initial"); err != nil {
			return err
		}
	}
	// The initial commit is part of setup, not of the measured run.
	d.Stats = Stats{Checkpoints: make([]int, len(d.World.Procs))}
	return nil
}

func (d *DC) seg(i int) *vista.Segment {
	if d.segs[i] == nil {
		//failtrans:alloc lazy one-time segment construction; every later commit of the process reuses it
		d.segs[i] = vista.NewSegment(0, d.PageSize)
		if m := d.World.Metrics; m != nil && i < len(m.Vista) {
			// Each segment gets its own fixed slot: coordinated commits
			// diff different segments in parallel goroutines.
			d.segs[i].Metrics = &m.Vista[i]
		}
	}
	return d.segs[i]
}

// errCheckFailed marks a commit refused by a pre-commit consistency check;
// the process crashes instead of committing corrupt state.
var errCheckFailed = errors.New("dc: pre-commit consistency check failed")

// vetoed consults the CommitVeto policy for one commit decision point and
// keeps the deferred-commit books. The initial checkpoint is exempt: "the
// initial state of any application is always committed".
func (d *DC) vetoed(p *sim.Proc, label string) bool {
	if d.CommitVeto == nil || label == "initial" {
		return false
	}
	d.Stats.VetoConsults++
	if !d.CommitVeto(p, label) {
		return false
	}
	d.Stats.CommitsVetoed++
	if label == "before-visible" || label == "2pc-visible" {
		d.Stats.VetoedSaveWork++
	}
	if m := d.World.Metrics; m != nil {
		m.Procs[p.Index].CommitsVetoed++
	}
	if t := d.World.Tracer; t != nil {
		t.Instant(p.Index, "dc", "commit-vetoed", p.Ctx().NowVirtual())
	}
	return true
}

// commitOne checkpoints a single process: the consistency/log preamble,
// the page diff+log, and the bookkeeping, in order.
func (d *DC) commitOne(p *sim.Proc, label string) error {
	if d.vetoed(p, label) {
		return nil
	}
	if d.CheckBeforeCommit {
		if c, ok := p.Prog.(sim.Checker); ok {
			d.World.AddTime(p, 20*time.Microsecond)
			if err := c.CheckConsistency(); err != nil {
				d.ChecksFailed++
				p.Ctx().Crash(err.Error())
				return errCheckFailed
			}
		}
	}
	if d.Policy.LogAsync {
		d.flushLog(p)
	}
	st, err := d.diffOne(p)
	if err != nil {
		return err
	}
	d.finishCommit(p, st, label)
	return nil
}

// diffOne serializes p's checkpoint image into its reusable per-process
// buffer and lays it into the Vista segment with page-granularity diffing.
// It touches only p's own state (program, session counters, segment,
// buffer), so coordinated commits run it for different processes
// concurrently. All global bookkeeping lives in finishCommit.
//
//failtrans:hotpath
func (d *DC) diffOne(p *sim.Proc) (vista.Stats, error) {
	buf, err := p.AppendCheckpointImage(d.imgBuf[p.Index][:0], d.EssentialOnly)
	if err != nil {
		//failtrans:alloc cold error path: a failed serialization aborts the commit, so the formatting never runs in a committing cycle
		return vista.Stats{}, fmt.Errorf("dc: commit %s: %w", p.Prog.Name(), err)
	}
	d.imgBuf[p.Index] = buf
	seg := d.seg(p.Index)
	seg.SetContents(buf)
	return seg.Commit(d.registers), nil
}

// finishCommit applies a commit's bookkeeping: virtual-time charge, stats,
// trace, retention release and replay anchors. Coordinated commits call it
// in fixed member order so seeded runs stay byte-identical regardless of
// how the diff phase was scheduled.
func (d *DC) finishCommit(p *sim.Proc, st vista.Stats, label string) {
	start := p.Ctx().NowVirtual()
	cost := d.Medium.CommitCost(st.Bytes)
	d.World.AddTime(p, cost)
	d.Stats.Checkpoints[p.Index]++
	d.Stats.CommitBytes += int64(st.Bytes)
	d.Stats.CommitTime += cost
	if m := d.World.Metrics; m != nil {
		pm := &m.Procs[p.Index]
		pm.Commits++
		pm.CommitBytes += int64(st.Bytes)
		pm.CommitPages += int64(st.Pages)
		pm.CommitLatency.ObserveDuration(cost)
		pm.CommitSize.Observe(int64(st.Bytes))
	}
	if t := d.World.Tracer; t != nil {
		t.SpanArgs(p.Index, "dc", "commit", start, cost, "label", label, "bytes", int64(st.Bytes))
	}
	d.World.RecordCommit(p, label)
	d.World.CommitPoint(p)
	d.ndSince[p.Index] = false
	d.epoch[p.Index]++
	if d.replaying[p.Index] {
		d.watermark[p.Index] = d.cursor[p.Index]
	} else {
		d.watermark[p.Index] = len(d.ndLog[p.Index])
	}
	d.stepsBase[p.Index] = p.Steps
	if d.CommitHook != nil {
		d.CommitHook(p, label)
	}
}

// commitCoordinated runs a two-phase commit over the given set. The
// triggering process pays the coordination round trips; every member pays
// its own commit.
//
// The members' page diffs are independent (each reads only its own
// process's state and writes only its own segment), so they run in
// parallel goroutines, joined before any bookkeeping; the bookkeeping then
// runs serially in member order, charging stats/trace/virtual time exactly
// as the serial path would — seeded traces are byte-identical either way.
// Policies that interleave per-member side effects with the diff
// (pre-commit consistency checks, asynchronous log flushes) take the
// serial path.
func (d *DC) commitCoordinated(trigger *sim.Proc, members []*sim.Proc, label string) {
	d.Stats.TwoPhaseRounds++
	if m := d.World.Metrics; m != nil {
		m.TwoPhaseRounds++
	}
	start := trigger.Ctx().NowVirtual()
	rounds := 2 * d.World.Latency
	d.World.AddTime(trigger, rounds) // prepare + commit rounds
	tr := d.World.Tracer
	if tr != nil {
		tr.SpanArgs(trigger.Index, "dc", "2pc", start, rounds, "label", label, "members", int64(len(members)))
	}
	if d.SerialCommit || d.CheckBeforeCommit || d.Policy.LogAsync || d.CommitVeto != nil || len(members) < 2 {
		for _, q := range members {
			fid := d.flowToMember(tr, trigger, q, start)
			qs := q.Ctx().NowVirtual()
			err := d.commitOne(q, label)
			if err != nil && !errors.Is(err, errCheckFailed) {
				// A process whose state cannot be serialized cannot
				// be made recoverable; surface loudly.
				panic(err)
			}
			if q != trigger {
				d.World.Delay(q, d.Medium.CommitCost(0))
			}
			if fid != 0 {
				tr.FlowEnd(q.Index, "dc", "2pc", fid, qs)
			}
		}
		return
	}
	if d.coStats == nil { // scratch is lazy: most forks never 2PC
		d.coStats = make([]vista.Stats, len(d.segs))
		d.coErrs = make([]error, len(d.segs))
	}
	var wg sync.WaitGroup
	for i, q := range members {
		wg.Add(1)
		go func(i int, q *sim.Proc) {
			defer wg.Done()
			d.coStats[i], d.coErrs[i] = d.diffOne(q)
		}(i, q)
	}
	wg.Wait()
	for i, q := range members {
		if err := d.coErrs[i]; err != nil {
			panic(err)
		}
		fid := d.flowToMember(tr, trigger, q, start)
		qs := q.Ctx().NowVirtual()
		d.finishCommit(q, d.coStats[i], label)
		if q != trigger {
			d.World.Delay(q, d.Medium.CommitCost(0))
		}
		if fid != 0 {
			tr.FlowEnd(q.Index, "dc", "2pc", fid, qs)
		}
	}
}

// flowToMember opens a coordinator→member flow arrow anchored in the
// trigger's 2pc span and returns its id (0 when not traced or q is the
// trigger itself). The caller terminates the arrow at the member's commit.
// Both coordinated paths (serial and parallel diff) call it at the same
// point in member order, so their trace buffers stay byte-identical.
func (d *DC) flowToMember(tr *obs.Tracer, trigger, q *sim.Proc, start time.Duration) int64 {
	if tr == nil || q == trigger {
		return 0
	}
	fid := tr.NewFlowID()
	tr.FlowStart(trigger.Index, "dc", "2pc", fid, start)
	return fid
}

// dependentSet returns the processes whose uncommitted non-determinism p
// causally depends on (including p itself when it has uncommitted ND),
// pruning satisfied dependencies.
func (d *DC) dependentSet(p *sim.Proc) []*sim.Proc {
	var out []*sim.Proc
	if d.ndSince[p.Index] {
		out = append(out, p)
	}
	for q, ep := range d.deps[p.Index] {
		if d.epoch[q] > ep {
			delete(d.deps[p.Index], q) // q committed since: satisfied
			continue
		}
		if q != p.Index {
			out = append(out, d.World.Procs[q])
		}
	}
	return out
}

// flushLog forces the volatile log tail to stable storage as one
// sequential write, after which the retained messages it covers need no
// separate redelivery buffer.
func (d *DC) flushLog(p *sim.Proc) {
	i := p.Index
	pending := d.ndLog[i][d.flushed[i]:]
	if len(pending) == 0 {
		return
	}
	bytes := 0
	for _, rec := range pending {
		bytes += len(rec.val)
	}
	start := p.Ctx().NowVirtual()
	cost := d.Medium.LogCost(bytes)
	d.World.AddTime(p, cost)
	d.Stats.LogTime += cost
	d.flushed[i] = len(d.ndLog[i])
	d.World.DropRetained(p)
	d.noteLogForce(p, start, cost, bytes)
}

// noteLogForce accounts one synchronous log force (a flush of buffered
// records or a single-record sync write) in the metrics and the trace.
func (d *DC) noteLogForce(p *sim.Proc, start time.Duration, cost time.Duration, bytes int) {
	if m := d.World.Metrics; m != nil {
		pm := &m.Procs[p.Index]
		pm.LogForces++
		pm.LogForceLatency.ObserveDuration(cost)
	}
	if t := d.World.Tracer; t != nil {
		t.SpanArgs(p.Index, "dc", "log-force", start, cost, "", "", "bytes", int64(bytes))
	}
}

// BeforeEvent implements sim.Recovery: the commit-prior-to family.
func (d *DC) BeforeEvent(p *sim.Proc, kind event.Kind, nd event.NDClass, label string) {
	pol := d.Policy
	// Asynchronous logging must force its buffered records before any
	// event whose effects can escape the process: a visible event (the
	// Save-work flush of Optimistic Logging/Manetho) or a send (so no
	// receiver depends on a log record that a crash could lose — our
	// recovery performs no cascading rollbacks).
	if pol.LogAsync && (kind == event.Visible || kind == event.Send) {
		d.flushLog(p)
	}
	switch kind {
	case event.Visible:
		switch pol.TwoPhase {
		case protocol.AllProcesses:
			if pol.OnlyIfNDSinceCommit && !d.anyND() {
				return
			}
			d.commitCoordinated(p, d.World.Procs, "2pc-visible")
		case protocol.DependentProcesses:
			set := d.dependentSet(p)
			if len(set) == 0 {
				return
			}
			d.commitCoordinated(p, set, "2pc-visible")
		default:
			if pol.CommitBeforeVisible && (!pol.OnlyIfNDSinceCommit || d.ndSince[p.Index]) {
				d.mustCommit(p, "before-visible")
			}
		}
	case event.Send:
		if !pol.Coordinated() && pol.CommitBeforeSend &&
			(!pol.OnlyIfNDSinceCommit || d.ndSince[p.Index]) {
			d.mustCommit(p, "before-send")
		}
	}
}

func (d *DC) anyND() bool {
	for _, nd := range d.ndSince {
		if nd {
			return true
		}
	}
	return false
}

func (d *DC) mustCommit(p *sim.Proc, label string) {
	err := d.commitOne(p, label)
	if err == nil || errors.Is(err, errCheckFailed) {
		return // a refused commit crashes the process; recovery follows
	}
	panic(err)
}

// AfterEvent implements sim.Recovery: dependency tracking and the
// commit-after family.
func (d *DC) AfterEvent(p *sim.Proc, ev event.Event) {
	if d.replaying[p.Index] {
		if m := d.World.Metrics; m != nil {
			m.Procs[p.Index].ReplayedEvents++
		}
	}
	switch ev.Kind {
	case event.Send:
		// Piggyback p's uncommitted-ND dependency snapshot on the
		// message (out of band; a real system stamps the packet).
		snap := make(map[int]int, len(d.deps[p.Index])+1)
		for q, ep := range d.deps[p.Index] {
			if d.epoch[q] == ep {
				snap[q] = ep
			}
		}
		if d.ndSince[p.Index] {
			snap[p.Index] = d.epoch[p.Index]
		}
		if len(snap) > 0 {
			d.mutableMsgDeps()[ev.Msg] = snap
		}
	case event.Receive:
		if snap, ok := d.msgDeps[ev.Msg]; ok {
			for q, ep := range snap {
				if d.epoch[q] == ep && q != p.Index {
					if d.deps[p.Index] == nil {
						d.deps[p.Index] = make(map[int]int)
					}
					d.deps[p.Index][q] = ep
				}
			}
		}
	}
	if ev.EffectivelyND() {
		d.ndSince[p.Index] = true
	}
	// Replay missed its due record: the re-execution ran past the
	// position where the original consumed a logged event.
	if i := p.Index; d.replaying[i] && d.cursor[i] < len(d.ndLog[i]) &&
		p.Steps-d.stepsBase[i] > d.ndLog[i][d.cursor[i]].pos {
		d.divergeLog(p)
	}
	// Commits triggered by an event that already executed are deferred
	// to the end of the step so the checkpoint image includes the state
	// the program derives from the event's result (in real DC the value
	// is in the committed address space; here it reaches state only when
	// the step's code runs).
	if d.Policy.CommitEveryEvent {
		d.pendingCommit[p.Index] = "every-event"
		return
	}
	if d.Policy.CommitAfterND && ev.EffectivelyND() {
		d.pendingCommit[p.Index] = "after-nd"
	}
}

// EndStep implements sim.Recovery: execute a deferred commit-after.
func (d *DC) EndStep(p *sim.Proc) {
	if label := d.pendingCommit[p.Index]; label != "" {
		d.pendingCommit[p.Index] = ""
		d.mustCommit(p, label)
	}
}

// SupplyND implements sim.Recovery: constrained re-execution from the ND
// log. Each record is due at the event position (relative to the last
// commit) where the original run consumed it; earlier requests execute
// live, which reproduces the original interleaving of consumption with
// computation. A mismatch at the due position means the re-execution
// diverged at an unlogged transient event; the stale tail is discarded,
// with any unconsumed logged receives re-queued as live messages so they
// are not lost.
func (d *DC) SupplyND(p *sim.Proc, label string) ([]byte, bool) {
	i := p.Index
	if !d.replaying[i] {
		return nil, false
	}
	if d.cursor[i] >= len(d.ndLog[i]) {
		d.replaying[i] = false
		d.endReplayWindow(p)
		return nil, false
	}
	rec := d.ndLog[i][d.cursor[i]]
	rel := p.Steps - d.stepsBase[i]
	if rel < rec.pos {
		return nil, false // not due yet: execute live
	}
	if rel > rec.pos || rec.label != label {
		d.divergeLog(p)
		return nil, false
	}
	d.cursor[i]++
	if d.cursor[i] >= len(d.ndLog[i]) {
		d.replaying[i] = false
		d.endReplayWindow(p)
	}
	return rec.val, true
}

// divergeLog truncates the unreplayed log tail after a divergence,
// re-queueing logged-but-unreplayed receives into the inbox. The truncation
// clamps capacity: a COW fork shares the log's backing array with its
// frozen template, and an uncapped truncate-then-append would overwrite
// record headers other forks still read.
func (d *DC) divergeLog(p *sim.Proc) {
	i := p.Index
	for _, rec := range d.ndLog[i][d.cursor[i]:] {
		if rec.label == "recv" {
			d.World.RequeueLogged(p, rec.val)
		}
	}
	//failtrans:cowok writes only the fork-private outer array; the capacity clamp keeps later appends from reaching the template's shared records
	d.ndLog[i] = d.ndLog[i][:d.cursor[i]:d.cursor[i]]
	d.replaying[i] = false
	d.endReplayWindow(p)
}

// mutableMsgDeps returns msgDeps, copying the top-level map first when it
// is still shared with a frozen template. The per-message snapshots are
// written once at send time and only read afterwards, so they stay shared.
func (d *DC) mutableMsgDeps() map[int64]map[int]int {
	if d.msgDepsShared {
		c := make(map[int64]map[int]int, len(d.msgDeps)+1)
		for msg, snap := range d.msgDeps {
			c[msg] = snap
		}
		d.msgDeps = c
		d.msgDepsShared = false
	}
	return d.msgDeps
}

// OnBlocked implements sim.Recovery: when a replaying process blocks on
// messages, either its next logged record is due now (wake it so SupplyND
// can deliver) or the re-execution diverged (resolve by flushing logged
// receives back into the inbox).
func (d *DC) OnBlocked(p *sim.Proc) bool {
	i := p.Index
	if !d.replaying[i] || d.cursor[i] >= len(d.ndLog[i]) {
		return false
	}
	rec := d.ndLog[i][d.cursor[i]]
	rel := p.Steps - d.stepsBase[i]
	if rel >= rec.pos && rec.label == "recv" {
		return true
	}
	// Blocked before the due position, or the due record is not a
	// receive while the process wants one: divergence.
	d.divergeLog(p)
	return false
}

// RecordND implements sim.Recovery: log the ND value if the policy asks,
// charging the synchronous log-force cost.
func (d *DC) RecordND(p *sim.Proc, label string, val []byte) bool {
	if !d.Policy.LogsLabel(label) {
		return false
	}
	i := p.Index
	//failtrans:cowok the inner log was capacity-clamped at fork (and by every truncation), so append reallocates rather than writing template backing; the outer array is fork-private
	d.ndLog[i] = append(d.ndLog[i], logRec{
		label: label,
		val:   append([]byte(nil), val...),
		pos:   p.Steps - d.stepsBase[i],
	})
	d.Stats.LogRecords++
	d.Stats.LogBytes += int64(len(val))
	if d.Policy.LogAsync {
		// Buffered: the write is a memory copy; the force happens at
		// the next flush point.
		return true
	}
	start := p.Ctx().NowVirtual()
	cost := d.Medium.LogCost(len(val))
	d.World.AddTime(p, cost)
	d.Stats.LogTime += cost
	d.flushed[i] = len(d.ndLog[i])
	d.noteLogForce(p, start, cost, len(val))
	return true
}

// OnCrash implements sim.Recovery: roll the process back to its last
// committed state and arm constrained re-execution.
func (d *DC) OnCrash(p *sim.Proc, reason string) bool {
	if d.DisableRecovery {
		return false
	}
	if err := d.Rollback(p); err != nil {
		return false
	}
	if d.ExpandResourcesOnCrash != nil {
		d.ExpandResourcesOnCrash(p)
	}
	if d.RecoveryHook != nil {
		d.RecoveryHook(p, reason)
	}
	return true
}

// Checkpoint forces an immediate commit of p outside any protocol rule —
// for applications that want explicit commit points in addition to the
// policy's.
func (d *DC) Checkpoint(p *sim.Proc) error { return d.commitOne(p, "explicit") }

// Rollback restores p to its last committed state: reload the segment
// image, rebuild session and kernel state, restore or log-replay messages.
func (d *DC) Rollback(p *sim.Proc) error {
	i := p.Index
	// Depth must be read before the restore rewinds p.Steps.
	depth := int64(p.Steps - d.stepsBase[i])
	start := p.Ctx().NowVirtual()
	d.endReplayWindow(p) // a crash mid-replay abandons the open window
	if err := d.rollbackRestore(p); err != nil {
		return fmt.Errorf("dc: rollback %s: %w", p.Prog.Name(), err)
	}
	// A crash loses the volatile tail of an asynchronous log; the
	// re-execution runs those events live (their messages are still in
	// the retention buffer). Capacity is clamped for the same reason as
	// divergeLog: a COW fork's log may share backing with its template.
	if d.flushed[i] < len(d.ndLog[i]) {
		//failtrans:cowok writes only the fork-private outer array; the capacity clamp keeps later appends from reaching the template's shared records
		d.ndLog[i] = d.ndLog[i][:d.flushed[i]:d.flushed[i]]
	}
	if d.Policy.LogsLabel("recv") && !d.Policy.LogAsync {
		// Consumed messages live in the log past the watermark; replay
		// supplies them, so retention is dropped.
		d.World.CommitPoint(p)
	} else {
		d.World.RequeueRetained(p)
	}
	d.cursor[i] = d.watermark[i]
	d.replaying[i] = d.cursor[i] < len(d.ndLog[i])
	d.stepsBase[i] = p.Steps // restore point == last commit position
	d.ndSince[i] = false
	d.pendingCommit[i] = "" // a commit deferred by the crashed step is void
	cost := d.Medium.CommitCost(len(d.imgBuf[i]))
	d.World.AddTime(p, cost)
	d.Stats.Recoveries++
	if m := d.World.Metrics; m != nil {
		pm := &m.Procs[i]
		pm.Rollbacks++
		pm.RolledBackEvents += depth
		pm.RollbackDepth.Observe(depth)
	}
	if t := d.World.Tracer; t != nil {
		t.SpanArgs(i, "dc", "rollback", start, cost, "", "", "depth", depth)
		if d.replaying[i] {
			// The constrained re-execution window opens where the restore
			// ends and closes when the log runs dry or replay diverges.
			t.Begin(i, "dc", "replay", start+cost)
			d.replayOpen[i] = true
		}
	}
	return nil
}

// rollbackRestore is the undo/redo core of a rollback: apply the segment's
// undo log, materialize the committed image into the reusable per-process
// buffer, and rebuild process state from it. It is the recovery-side
// counterpart of diffOne and, like it, must not allocate in the steady
// state — rollback buffers are pooled in the segment, the image buffer is
// reused across rollbacks and commits, and the register file is read in
// place rather than copied out.
//
//failtrans:hotpath
func (d *DC) rollbackRestore(p *sim.Proc) error {
	i := p.Index
	seg := d.seg(i)
	seg.RollbackPages()
	img := seg.AppendContents(d.imgBuf[i][:0])
	d.imgBuf[i] = img
	return p.RestoreCheckpointImage(img)
}

// endReplayWindow closes the process's open "replay" tracer window, if any.
// Every site that clears replaying goes through it so Begin/End pair 1:1.
func (d *DC) endReplayWindow(p *sim.Proc) {
	if d.replayOpen[p.Index] {
		d.replayOpen[p.Index] = false
		d.World.Tracer.End(p.Index, p.Ctx().NowVirtual())
	}
}
