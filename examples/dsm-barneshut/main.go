// dsm-barneshut: a Barnes-Hut N-body simulation on a four-node software
// distributed shared memory, crash-tested against a sequential oracle.
//
// The DSM implements the Li & Hudak fixed-distributed-manager ownership
// protocol; the physics is a real 3D octree force solver. Two nodes are
// stop-failed mid-run; transparent recovery must leave the physics
// bit-identical to the single-process oracle.
//
// Run: go run ./examples/dsm-barneshut
package main

import (
	"fmt"

	"failtrans"
	"failtrans/internal/apps/treadmarks"
)

const (
	nbodies = 72
	iters   = 6
)

func main() {
	oracle := treadmarks.SequentialOracle(nbodies, iters)
	fmt.Printf("dsm-barneshut: %d bodies, %d iterations, 4 DSM nodes\n\n", nbodies, iters)

	for _, pol := range []failtrans.Policy{failtrans.CPVS, failtrans.CBNDV2PC} {
		progs, err := treadmarks.Fleet(4, nbodies, iters)
		if err != nil {
			panic(err)
		}
		w := failtrans.NewWorld(3, progs...)
		w.MaxSteps = 10_000_000
		d := failtrans.NewDC(w, pol, failtrans.Rio)
		if err := d.Attach(); err != nil {
			panic(err)
		}
		w.ScheduleStop(1, 40)
		w.ScheduleStop(3, 120)
		if err := w.Run(); err != nil {
			panic(err)
		}

		exact := true
		var faults, transfers int64
		for pi := 0; pi < 4; pi++ {
			tm := w.Procs[pi].Prog.(*treadmarks.TM)
			faults += tm.DSM.Faults
			transfers += tm.DSM.Transfers
			for i, b := range tm.FinalBodies() {
				if b != oracle[tm.Lo+i] {
					exact = false
				}
			}
		}
		fmt.Printf("%-11s done=%-5v recoveries=%d ckpts=%-4d pageFaults=%-4d transfers=%-4d physics==oracle: %v\n",
			pol.Name, w.AllDone(), d.Stats.Recoveries, d.Stats.TotalCheckpoints(), faults, transfers, exact)
		if len(w.Outputs[0]) > 0 {
			fmt.Printf("            progress: %s\n", w.Outputs[0][len(w.Outputs[0])-1])
		}
	}

	fmt.Println("\nBit-identical physics across two machine crashes: the user cannot")
	fmt.Println("tell a failure ever happened — failure transparency, delivered.")
}
