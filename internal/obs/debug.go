package obs

import (
	"fmt"
	"io"
)

// DebugLog is the gated diagnostics sink: scheduler and recovery internals
// route their debug prints through it instead of writing to stdout. A nil
// logger, a disabled one, and one without a writer are all silent, so
// instrumented code calls Printf unconditionally.
type DebugLog struct {
	// Enabled is the explicit debug flag; off (the default) is silent.
	Enabled bool
	// W receives the output (typically os.Stderr).
	W io.Writer
}

// Printf writes one formatted diagnostic line when the logger is enabled.
func (l *DebugLog) Printf(format string, args ...interface{}) {
	if l == nil || !l.Enabled || l.W == nil {
		return
	}
	fmt.Fprintf(l.W, format, args...)
}
