package postgres

import (
	"fmt"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/kernel"
	"failtrans/internal/sim"
)

// Pool is the LRU buffer pool: it caches heap pages and moves them to and
// from the table file with kernel syscalls (deterministic, so they may
// batch within a step).
type Pool struct {
	Cap      int
	FD       int64
	NumPages uint32

	pages map[uint32]*Page
	lru   []uint32 // most recent last

	// Misses / Evictions / Reads / Writes count I/O activity.
	Misses    int64
	Evictions int64
}

// NewPool returns a pool of the given capacity (pages).
func NewPool(capacity int) *Pool {
	return &Pool{Cap: capacity, pages: make(map[uint32]*Page)}
}

func (bp *Pool) touch(id uint32) {
	for i, v := range bp.lru {
		if v == id {
			bp.lru = append(bp.lru[:i], bp.lru[i+1:]...)
			break
		}
	}
	bp.lru = append(bp.lru, id)
}

// Alloc formats a fresh page at the end of the file and caches it.
func (bp *Pool) Alloc(ctx *sim.Ctx) (*Page, error) {
	id := bp.NumPages
	bp.NumPages++
	p := NewPage(id)
	p.Dirty = true
	if err := bp.install(ctx, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Get returns page id, reading it from disk on a miss. Pages read from
// disk have their checksums verified; a mismatch crashes the process (the
// storage engine's fail-fast detection).
func (bp *Pool) Get(ctx *sim.Ctx, id uint32) (*Page, error) {
	if p, ok := bp.pages[id]; ok {
		bp.touch(id)
		return p, nil
	}
	bp.Misses++
	if _, err := ctx.Syscall("lseek", kernel.I64(bp.FD), kernel.I64(int64(id)*PageSize)); err != nil {
		return nil, err
	}
	ret, err := ctx.Syscall("read", kernel.I64(bp.FD), kernel.I64(PageSize))
	if err != nil {
		return nil, err
	}
	if len(ret[0]) != PageSize {
		return nil, fmt.Errorf("postgres: short page read (%d bytes) for page %d", len(ret[0]), id)
	}
	p := &Page{}
	copy(p.Data[:], ret[0])
	if !p.VerifyCRC() || p.ID() != id {
		ctx.Crash(fmt.Sprintf("postgres: page %d failed checksum on read", id))
		return nil, fmt.Errorf("postgres: page %d corrupt", id)
	}
	if err := bp.install(ctx, p); err != nil {
		return nil, err
	}
	return p, nil
}

// install caches p, evicting (with write-back) if full.
func (bp *Pool) install(ctx *sim.Ctx, p *Page) error {
	for len(bp.pages) >= bp.Cap {
		victim := bp.lru[0]
		bp.lru = bp.lru[1:]
		vp := bp.pages[victim]
		delete(bp.pages, victim)
		bp.Evictions++
		if vp.Dirty {
			if err := bp.writeBack(ctx, vp); err != nil {
				return err
			}
		}
	}
	bp.pages[p.ID()] = p
	bp.touch(p.ID())
	return nil
}

func (bp *Pool) writeBack(ctx *sim.Ctx, p *Page) error {
	if _, err := ctx.Syscall("lseek", kernel.I64(bp.FD), kernel.I64(int64(p.ID())*PageSize)); err != nil {
		return err
	}
	if _, err := ctx.Syscall("write", kernel.I64(bp.FD), p.Data[:]); err != nil {
		return err
	}
	p.Dirty = false
	return nil
}

// FlushAll writes back every dirty cached page.
func (bp *Pool) FlushAll(ctx *sim.Ctx) error {
	for _, id := range append([]uint32(nil), bp.lru...) {
		p := bp.pages[id]
		if p != nil && p.Dirty {
			if err := bp.writeBack(ctx, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckCached verifies the checksums of every cached page.
func (bp *Pool) CheckCached() error {
	for id, p := range bp.pages {
		if !p.VerifyCRC() {
			return fmt.Errorf("postgres: cached page %d checksum mismatch", id)
		}
	}
	return nil
}

// Marshal serializes pool state including cached page images.
func (bp *Pool) Marshal(e *apputil.Enc) {
	e.Int(bp.Cap)
	e.I64(bp.FD)
	e.I64(int64(bp.NumPages))
	e.Int(len(bp.lru))
	for _, id := range bp.lru {
		e.I64(int64(id))
		p := bp.pages[id]
		e.Bool(p.Dirty)
		e.Bytes(p.Data[:])
	}
}

// UnmarshalPool reverses Marshal.
func UnmarshalPool(d *apputil.Dec) (*Pool, error) {
	bp := &Pool{pages: make(map[uint32]*Page)}
	bp.Cap = d.Int()
	bp.FD = d.I64()
	bp.NumPages = uint32(d.I64())
	n := d.Int()
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("postgres: implausible cached page count %d", n)
	}
	for i := 0; i < n; i++ {
		id := uint32(d.I64())
		dirty := d.Bool()
		img := d.Bytes()
		if d.Err != nil {
			return nil, d.Err
		}
		if len(img) != PageSize {
			return nil, fmt.Errorf("postgres: cached page %d has %d bytes", id, len(img))
		}
		p := &Page{Dirty: dirty}
		copy(p.Data[:], img)
		bp.pages[id] = p
		bp.lru = append(bp.lru, id)
	}
	return bp, d.Err
}
