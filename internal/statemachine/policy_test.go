package statemachine

import (
	"bytes"
	"strings"
	"testing"

	"failtrans/internal/event"
)

// fixedNDMachine is the golden machine for the FixedND doom rule: state
// "mid" has one colored fixed-ND out-edge (into the crash state) and one
// uncolored deterministic out-edge (into completion), so it is doomed by
// the "some colored fixed-ND event" rule while the "all events colored"
// rule does not fire. State "tmid" is the transient-ND contrast: the same
// shape with a transient-ND crash alternative is NOT doomed.
func fixedNDMachine() (*Machine, map[string]StateID) {
	names := map[string]StateID{"start": 0, "mid": 1, "tmid": 2, "done": 3, "crash": 4}
	m := New(len(names))
	m.AddEdge(Edge{From: 0, To: 1, ND: event.Deterministic, Label: "to-mid"})
	m.AddEdge(Edge{From: 0, To: 2, ND: event.Deterministic, Label: "to-tmid"})
	m.AddEdge(Edge{From: 1, To: 4, ND: event.FixedND, Label: "fixed-fail"})
	m.AddEdge(Edge{From: 1, To: 3, ND: event.Deterministic, Label: "ok"})
	m.AddEdge(Edge{From: 2, To: 4, ND: event.TransientND, Label: "transient-fail"})
	m.AddEdge(Edge{From: 2, To: 3, ND: event.Deterministic, Label: "ok"})
	m.MarkCrash(4)
	return m, names
}

func TestFixedNDDoomGolden(t *testing.T) {
	m, names := fixedNDMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	col := m.DangerousPaths()
	want := map[string]bool{
		"start": false,
		"mid":   true,  // colored fixed-ND out-edge dooms it despite the safe exit
		"tmid":  false, // transient-ND alternative can be escaped; not doomed
		"done":  false,
		"crash": true, // crash states are always commit-unsafe
	}
	for name, id := range names {
		if got := col.CommitUnsafeAt(id); got != want[name] {
			t.Errorf("CommitUnsafeAt(%s) = %v, want %v", name, got, want[name])
		}
	}

	p := NewVetoPolicyFromColoring("golden/fixednd", 7, names, col)
	for name, id := range names {
		if p.CommitUnsafe(name) != col.CommitUnsafeAt(id) {
			t.Errorf("policy verdict for %s diverges from coloring", name)
		}
	}
	if p.CommitUnsafe("never-mined") {
		t.Error("unknown state vetoed; evidence-free states must be safe")
	}
	var nilPol *VetoPolicy
	if nilPol.CommitUnsafe("mid") {
		t.Error("nil policy vetoed a commit")
	}
}

func TestVetoPolicyFileRoundTrip(t *testing.T) {
	m, names := fixedNDMachine()
	col := m.DangerousPaths()
	ps := []*VetoPolicy{
		NewVetoPolicyFromColoring("table1/nvi/CPVS", 42, names, col),
		{Key: "table1/postgres/CPVS", Runs: 3, Unsafe: map[string]bool{"c9": true, "a2/stop:1": true}},
	}
	var buf bytes.Buffer
	if err := WritePolicies(&buf, ps); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), VetoMagic+"\n") {
		t.Fatalf("missing magic line in %q", buf.String())
	}
	var buf2 bytes.Buffer
	if err := WritePolicies(&buf2, ps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two serializations of the same policies differ")
	}

	got, err := ReadPolicies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("read %d policies, want %d", len(got), len(ps))
	}
	for i, want := range ps {
		p := got[i]
		if p.Key != want.Key || p.Runs != want.Runs {
			t.Errorf("policy %d header (%s, %d), want (%s, %d)", i, p.Key, p.Runs, want.Key, want.Runs)
		}
		for s := range want.Unsafe {
			if !p.CommitUnsafe(s) {
				t.Errorf("policy %d lost unsafe state %s", i, s)
			}
		}
		if len(p.Unsafe) != len(want.Unsafe) {
			t.Errorf("policy %d has %d unsafe states, want %d", i, len(p.Unsafe), len(want.Unsafe))
		}
	}
	if FindPolicy(got, "table1/postgres/CPVS") != got[1] {
		t.Error("FindPolicy missed an existing key")
	}
	if FindPolicy(got, "missing") != nil {
		t.Error("FindPolicy invented a policy")
	}
}

func TestVetoPolicyRejects(t *testing.T) {
	bad := []*VetoPolicy{{Key: "evil|key", Unsafe: map[string]bool{}}}
	if err := WritePolicies(&bytes.Buffer{}, bad); err == nil {
		t.Error("key containing '|' accepted")
	}
	bad = []*VetoPolicy{{Key: "k", Unsafe: map[string]bool{"s|t": true}}}
	if err := WritePolicies(&bytes.Buffer{}, bad); err == nil {
		t.Error("state containing '|' accepted")
	}
	for name, in := range map[string]string{
		"empty":           "",
		"bad magic":       "notveto v1\nmachine|k|1\n",
		"orphan unsafe":   VetoMagic + "\nunsafe|c1\n",
		"bad run count":   VetoMagic + "\nmachine|k|many\n",
		"unknown line":    VetoMagic + "\nwat|c1\n",
		"machine 2 field": VetoMagic + "\nmachine|k\n",
	} {
		if _, err := ReadPolicies(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// chainMachine builds a deep commit chain with a branchy tail, the shape
// mined campaigns produce, sized so an O(E) scan per query is visibly
// distinct from an O(out-degree) lookup.
func chainMachine(n int) *Machine {
	m := New(n + 2)
	crash := StateID(n + 1)
	for i := 0; i < n; i++ {
		m.AddEdge(Edge{From: StateID(i), To: StateID(i + 1), ND: event.Deterministic, Label: "commit"})
		if i%3 == 0 {
			m.AddEdge(Edge{From: StateID(i), To: crash, ND: event.TransientND, Label: "fault"})
		}
	}
	m.MarkCrash(crash)
	return m
}

// TestCommitUnsafeAtNoAlloc pins the S1 fix: a per-commit query must use
// the adjacency cached at DangerousPaths time, not rebuild the O(E) index
// (which would heap-allocate every call).
func TestCommitUnsafeAtNoAlloc(t *testing.T) {
	col := chainMachine(512).DangerousPaths()
	if allocs := testing.AllocsPerRun(100, func() {
		for s := 0; s < 512; s++ {
			col.CommitUnsafeAt(StateID(s))
		}
	}); allocs != 0 {
		t.Fatalf("CommitUnsafeAt allocates %.1f times per sweep, want 0 (adjacency not cached?)", allocs)
	}
}

func BenchmarkCommitUnsafeAt(b *testing.B) {
	col := chainMachine(4096).DangerousPaths()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.CommitUnsafeAt(StateID(i % 4096))
	}
}
