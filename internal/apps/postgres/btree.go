package postgres

import (
	"fmt"
	"sort"

	"failtrans/internal/apps/apputil"
)

// btreeOrder is the maximum keys per node before a split.
const btreeOrder = 32

// RID is a record id: heap page number and slot.
type RID struct {
	Page uint32
	Slot uint16
}

// node is one B-tree node. Leaves hold RIDs; interior nodes hold children.
// Deletes remove keys from leaves without rebalancing (underfull leaves are
// permitted, as in append-mostly workloads); the ordering and uniform-depth
// invariants always hold.
type node struct {
	Leaf     bool
	Keys     []int64
	RIDs     []RID   // leaves only, parallel to Keys
	Children []*node // interior only, len(Keys)+1
}

// BTree is an in-memory B-tree index from int64 keys to heap RIDs.
type BTree struct {
	root *node
	size int
}

// NewBTree returns an empty index.
func NewBTree() *BTree { return &BTree{root: &node{Leaf: true}} }

// Len returns the number of live keys.
func (t *BTree) Len() int { return t.size }

// Get returns the RID for key.
func (t *BTree) Get(key int64) (RID, bool) {
	n := t.root
	for !n.Leaf {
		n = n.Children[childIndex(n.Keys, key)]
	}
	i := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] >= key })
	if i < len(n.Keys) && n.Keys[i] == key {
		return n.RIDs[i], true
	}
	return RID{}, false
}

// childIndex returns which child of an interior node covers key: the first
// separator strictly greater than key.
func childIndex(keys []int64, key int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

// Put inserts or replaces key's RID. It reports whether the key was new.
func (t *BTree) Put(key int64, rid RID) bool {
	added, split, right, sep := t.root.put(key, rid)
	if split {
		t.root = &node{Keys: []int64{sep}, Children: []*node{t.root, right}}
	}
	if added {
		t.size++
	}
	return added
}

// put inserts into the subtree; on split it returns the new right sibling
// and separator key.
func (n *node) put(key int64, rid RID) (added, split bool, right *node, sep int64) {
	if n.Leaf {
		i := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] >= key })
		if i < len(n.Keys) && n.Keys[i] == key {
			n.RIDs[i] = rid
			return false, false, nil, 0
		}
		n.Keys = append(n.Keys, 0)
		copy(n.Keys[i+1:], n.Keys[i:])
		n.Keys[i] = key
		n.RIDs = append(n.RIDs, RID{})
		copy(n.RIDs[i+1:], n.RIDs[i:])
		n.RIDs[i] = rid
		added = true
	} else {
		ci := childIndex(n.Keys, key)
		a, s, r, sk := n.Children[ci].put(key, rid)
		added = a
		if s {
			n.Keys = append(n.Keys, 0)
			copy(n.Keys[ci+1:], n.Keys[ci:])
			n.Keys[ci] = sk
			n.Children = append(n.Children, nil)
			copy(n.Children[ci+2:], n.Children[ci+1:])
			n.Children[ci+1] = r
		}
	}
	if len(n.Keys) <= btreeOrder {
		return added, false, nil, 0
	}
	// Split.
	mid := len(n.Keys) / 2
	r := &node{Leaf: n.Leaf}
	if n.Leaf {
		r.Keys = append(r.Keys, n.Keys[mid:]...)
		r.RIDs = append(r.RIDs, n.RIDs[mid:]...)
		n.Keys = n.Keys[:mid:mid]
		n.RIDs = n.RIDs[:mid:mid]
		// childIndex routes key == separator to the right child, so
		// the separator is the right leaf's minimum.
		sep = r.Keys[0]
	} else {
		sep = n.Keys[mid]
		r.Keys = append(r.Keys, n.Keys[mid+1:]...)
		r.Children = append(r.Children, n.Children[mid+1:]...)
		n.Keys = n.Keys[:mid:mid]
		n.Children = n.Children[: mid+1 : mid+1]
	}
	return added, true, r, sep
}

// Delete removes key; it reports whether the key existed.
func (t *BTree) Delete(key int64) bool {
	n := t.root
	for !n.Leaf {
		n = n.Children[childIndex(n.Keys, key)]
	}
	i := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] >= key })
	if i >= len(n.Keys) || n.Keys[i] != key {
		return false
	}
	n.Keys = append(n.Keys[:i], n.Keys[i+1:]...)
	n.RIDs = append(n.RIDs[:i], n.RIDs[i+1:]...)
	t.size--
	return true
}

// Scan calls fn for every key in [lo, hi] in order; fn returning false
// stops the scan.
func (t *BTree) Scan(lo, hi int64, fn func(key int64, rid RID) bool) {
	t.root.scan(lo, hi, fn)
}

func (n *node) scan(lo, hi int64, fn func(int64, RID) bool) bool {
	if n.Leaf {
		i := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] >= lo })
		for ; i < len(n.Keys) && n.Keys[i] <= hi; i++ {
			if !fn(n.Keys[i], n.RIDs[i]) {
				return false
			}
		}
		return true
	}
	// First child that can hold keys >= lo: child ci covers
	// [keys[ci-1], keys[ci]), so we need the first keys[ci] > lo.
	start := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] > lo })
	for ci := start; ci < len(n.Children); ci++ {
		if ci > 0 && n.Keys[ci-1] > hi {
			break
		}
		if !n.Children[ci].scan(lo, hi, fn) {
			return false
		}
	}
	return true
}

// Check verifies the ordering, bound, and uniform-depth invariants; it
// returns an error naming the first violation.
func (t *BTree) Check() error {
	depth := -1
	count := 0
	var last *int64
	var walk func(n *node, d int, lo, hi *int64) error
	walk = func(n *node, d int, lo, hi *int64) error {
		for i, k := range n.Keys {
			if i > 0 && n.Keys[i-1] >= k {
				return fmt.Errorf("postgres: btree node keys out of order (%d before %d)", n.Keys[i-1], k)
			}
			// Child i covers [keys[i-1], keys[i]).
			if lo != nil && k < *lo {
				return fmt.Errorf("postgres: btree key %d violates lower bound %d", k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("postgres: btree key %d violates upper bound %d", k, *hi)
			}
		}
		if n.Leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("postgres: btree leaf depth %d != %d", d, depth)
			}
			if len(n.RIDs) != len(n.Keys) {
				return fmt.Errorf("postgres: btree leaf rid/key mismatch")
			}
			count += len(n.Keys)
			for _, k := range n.Keys {
				if last != nil && k <= *last {
					return fmt.Errorf("postgres: btree keys out of order across leaves (%d after %d)", k, *last)
				}
				kk := k
				last = &kk
			}
			return nil
		}
		if len(n.Children) != len(n.Keys)+1 {
			return fmt.Errorf("postgres: btree interior child count %d for %d keys", len(n.Children), len(n.Keys))
		}
		for i, c := range n.Children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.Keys[i-1]
			}
			if i < len(n.Keys) {
				chi = &n.Keys[i]
			}
			if err := walk(c, d+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("postgres: btree size %d != counted %d", t.size, count)
	}
	return nil
}

// Marshal serializes the tree (preorder).
func (t *BTree) Marshal(e *apputil.Enc) {
	e.Int(t.size)
	var emit func(n *node)
	emit = func(n *node) {
		e.Bool(n.Leaf)
		e.Int(len(n.Keys))
		for _, k := range n.Keys {
			e.I64(k)
		}
		if n.Leaf {
			for _, r := range n.RIDs {
				e.I64(int64(r.Page))
				e.I64(int64(r.Slot))
			}
			return
		}
		for _, c := range n.Children {
			emit(c)
		}
	}
	emit(t.root)
}

// UnmarshalBTree reverses Marshal.
func UnmarshalBTree(d *apputil.Dec) (*BTree, error) {
	t := &BTree{}
	t.size = d.Int()
	var read func() (*node, error)
	read = func() (*node, error) {
		if d.Err != nil {
			return nil, d.Err
		}
		n := &node{Leaf: d.Bool()}
		k := d.Int()
		if k < 0 || k > btreeOrder+1 {
			return nil, fmt.Errorf("postgres: implausible node size %d", k)
		}
		for i := 0; i < k; i++ {
			n.Keys = append(n.Keys, d.I64())
		}
		if n.Leaf {
			for i := 0; i < k; i++ {
				n.RIDs = append(n.RIDs, RID{Page: uint32(d.I64()), Slot: uint16(d.I64())})
			}
			return n, d.Err
		}
		for i := 0; i <= k; i++ {
			c, err := read()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, d.Err
	}
	root, err := read()
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, d.Err
}
