// editor-recovery: an interactive nvi editing session that survives three
// machine crashes without losing a keystroke of committed work.
//
// The editor is the real (small) modal editor from the workload suite; the
// session types a document, saves with :w, and is hit by stop failures at
// awkward moments. Discount Checking with CBNDVS-LOG (input logging) makes
// the failures invisible: the final document equals the failure-free run's.
//
// Run: go run ./examples/editor-recovery
package main

import (
	"fmt"
	"strings"
	"time"

	"failtrans"
	"failtrans/internal/apps/nvi"
	"failtrans/internal/kernel"
)

const script = "iThe Save-work invariant guarantees consistent recovery.\x1b" +
	"oIt forces commits before visible events.\x1b" +
	"oThe Lose-work invariant forbids commits on dangerous paths.\x1b" +
	":w\n" +
	"ggdd" + // not a real vi 'gg', the two g's are ignored beeps; dd deletes a line
	"oEdited after the first save.\x1b" +
	":wq\n"

func run(withFailures bool) ([]string, string, int) {
	e := nvi.New("novel.txt", []string{"draft v1"})
	e.ThinkTime = 50 * time.Millisecond
	w := failtrans.NewWorld(42, e)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = nvi.Script(script)

	d := failtrans.NewDC(w, failtrans.CBNDVSLog, failtrans.Rio)
	if err := d.Attach(); err != nil {
		panic(err)
	}
	if withFailures {
		w.ScheduleStop(0, 25)  // mid-typing
		w.ScheduleStop(0, 90)  // around the first :w
		w.ScheduleStop(0, 150) // during the post-save edits
	}
	if err := w.Run(); err != nil {
		panic(err)
	}
	file, _ := k.ReadFile(0, "novel.txt")
	return e.Contents(), string(file), d.Stats.Recoveries
}

func main() {
	cleanDoc, cleanFile, _ := run(false)
	crashDoc, crashFile, recoveries := run(true)

	fmt.Println("editor-recovery: an nvi session with three stop failures")
	fmt.Printf("\nrecoveries performed: %d\n", recoveries)
	fmt.Println("\nfinal buffer (crashy run):")
	for _, l := range crashDoc {
		fmt.Println("  |", l)
	}
	fmt.Println("\nfile on disk (crashy run):")
	for _, l := range strings.Split(strings.TrimRight(crashFile, "\n"), "\n") {
		fmt.Println("  |", l)
	}
	same := strings.Join(cleanDoc, "\n") == strings.Join(crashDoc, "\n") && cleanFile == crashFile
	fmt.Printf("\nidentical to the failure-free run: %v\n", same)
	if !same {
		fmt.Println("!! recovery was not transparent")
	}
}
