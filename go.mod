module failtrans

go 1.22

// Dependency pin note: the static-analysis suite (internal/analysis,
// cmd/ftlint) deliberately mirrors the golang.org/x/tools/go/analysis
// API (as of x/tools v0.24.0 — Analyzer/Pass/Diagnostic, object facts,
// analysistest want-comments) on the standard library alone
// (go/parser + go/types + go/importer), so the module keeps zero
// external requirements and builds offline. If x/tools is ever vendored,
// pin it here and the passes can be ported to the real driver verbatim.
