package statemachine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"failtrans/internal/event"
	"failtrans/internal/recovery"
)

func ev(kind event.Kind, nd event.NDClass) event.Event {
	return event.Event{Kind: kind, ND: nd}
}

// TestFromExecutionPaperTimeline reproduces the Figure 9 timeline: a
// transient ND event, fault activation (a plain deterministic event), a
// visible event, then the crash. The commit Save-work demands between the
// ND event and the visible event is exactly a Lose-work violation.
func TestFromExecutionPaperTimeline(t *testing.T) {
	events := []event.Event{
		ev(event.Internal, event.TransientND),   // 0: transient ND
		ev(event.Internal, event.Deterministic), // 1: fault activation
		ev(event.Commit, event.Deterministic),   // 2: Save-work's forced commit
		ev(event.Visible, event.Deterministic),  // 3: the visible event
		ev(event.Internal, event.Deterministic), // 4: buggy continuation
	}
	viol := CommitViolations(events, true)
	if len(viol) != 1 || viol[0] != 2 {
		t.Errorf("violations = %v, want [2]", viol)
	}
	// The same run without a crash has no dangerous paths at all.
	if viol := CommitViolations(events, false); len(viol) != 0 {
		t.Errorf("no crash but violations %v", viol)
	}
}

// TestFromExecutionCommitBeforeTransientSafe: a commit before the transient
// ND event is off the dangerous path.
func TestFromExecutionCommitBeforeTransientSafe(t *testing.T) {
	events := []event.Event{
		ev(event.Commit, event.Deterministic),
		ev(event.Internal, event.TransientND),
		ev(event.Internal, event.Deterministic),
	}
	if viol := CommitViolations(events, true); len(viol) != 0 {
		t.Errorf("violations = %v, want none", viol)
	}
}

// TestFromExecutionFixedNDNoEscape: fixed ND events give recovery no escape,
// so commits before them still violate.
func TestFromExecutionFixedNDNoEscape(t *testing.T) {
	events := []event.Event{
		ev(event.Commit, event.Deterministic),
		ev(event.Internal, event.FixedND),
		ev(event.Internal, event.Deterministic),
	}
	viol := CommitViolations(events, true)
	if len(viol) != 1 || viol[0] != 0 {
		t.Errorf("violations = %v, want [0]", viol)
	}
}

// TestFromExecutionLoggedTransientPinned: a logged transient event replays
// identically, so it cannot rescue recovery — the dangerous path runs
// through it.
func TestFromExecutionLoggedTransientPinned(t *testing.T) {
	events := []event.Event{
		ev(event.Commit, event.Deterministic),
		{Kind: event.Internal, ND: event.TransientND, Logged: true},
		ev(event.Internal, event.Deterministic),
	}
	viol := CommitViolations(events, true)
	if len(viol) != 1 {
		t.Errorf("violations = %v, want the pre-logged-event commit", viol)
	}
}

// TestCommitViolationsMatchFaultTimeline: the machine-based Lose-work check
// agrees with the recovery package's timeline criterion on random
// executions — two independent formulations of the same theorem.
func TestCommitViolationsMatchFaultTimeline(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		events := make([]event.Event, 0, n)
		var commits []int
		lastTransient := -1
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				events = append(events, ev(event.Commit, event.Deterministic))
				commits = append(commits, i)
			case 1:
				events = append(events, ev(event.Internal, event.TransientND))
				lastTransient = i
			case 2:
				events = append(events, ev(event.Internal, event.FixedND))
			default:
				events = append(events, ev(event.Internal, event.Deterministic))
			}
		}
		// The crash happens after the last event.
		ft := recovery.FaultTimeline{
			Commits:         commits,
			LastTransientND: lastTransient,
			Activation:      n - 1, // somewhere on the path; irrelevant to the full criterion
			Crash:           n,
		}
		machineViolates := len(CommitViolations(events, true)) > 0
		timelineViolates := ft.ViolatesLoseWork()
		if lastTransient < 0 {
			// Bohrbug: the timeline criterion says inherent violation
			// (the initial state is always committed); the machine
			// only sees the commits actually in the window.
			return timelineViolates
		}
		if machineViolates != timelineViolates {
			t.Logf("seed %d: machine=%v timeline=%v (lastTransient=%d commits=%v)",
				seed, machineViolates, timelineViolates, lastTransient, commits)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
