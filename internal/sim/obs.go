package sim

import (
	"fmt"

	"failtrans/internal/obs"
)

// ObsSink is implemented by OS layers (notably kernel.Kernel) that accept
// the world's metrics registry and tracer. EnableObs and Init wire the
// world's instances into any OS that implements it, so harnesses never have
// to plumb them by hand.
type ObsSink interface {
	SetObs(m *obs.Metrics, t *obs.Tracer)
}

// EnableObs attaches a fresh metrics registry to the world — and, when
// trace is true, a tracer with one named track per process — and returns
// both (the tracer is nil when trace is false). Call it after NewWorld and
// before Run; attaching an OS later is fine, Init re-wires it.
func (w *World) EnableObs(trace bool) (*obs.Metrics, *obs.Tracer) {
	w.Metrics = obs.NewMetrics(len(w.Procs))
	if trace {
		w.Tracer = obs.NewTracer()
		for _, p := range w.Procs {
			w.Tracer.SetTrackName(p.Index, fmt.Sprintf("p%d %s", p.Index, p.Prog.Name()))
		}
	}
	w.wireOSObs()
	return w.Metrics, w.Tracer
}

// wireOSObs hands the world's metrics/tracer to an ObsSink OS, if any.
func (w *World) wireOSObs() {
	if o, ok := w.OS.(ObsSink); ok && (w.Metrics != nil || w.Tracer != nil) {
		o.SetObs(w.Metrics, w.Tracer)
	}
}
