package sim

import (
	"io"
	"testing"
	"time"

	"failtrans/internal/obs"
)

// TestInboxMinCacheMatchesScan cross-checks the cached inbox delivery
// minimum (the O(1) readyAt fast path) against a naive scan through a mix
// of appends and removals.
func TestInboxMinCacheMatchesScan(t *testing.T) {
	w := NewWorld(1, &counter{N: 1}, &counter{N: 1})
	p := w.Procs[1]
	naive := func() (time.Duration, bool) {
		var best time.Duration
		ok := false
		for _, m := range p.inbox {
			if !ok || m.DeliverAt < best {
				best, ok = m.DeliverAt, true
			}
		}
		return best, ok
	}
	check := func(when string) {
		t.Helper()
		got, gok := p.earliestInbox()
		want, wok := naive()
		if gok != wok || (gok && got != want) {
			t.Fatalf("%s: earliestInbox = (%v,%v), naive scan = (%v,%v)", when, got, gok, want, wok)
		}
	}

	check("empty")
	for i, at := range []time.Duration{5, 3, 9, 3, 1, 7} {
		p.inboxAdd(&Msg{ID: int64(i), DeliverAt: at * time.Millisecond})
		check("after add")
	}
	// Remove from the front, the middle and the back, as Recv's splice does.
	for _, pick := range []func() int{
		func() int { return 0 },
		func() int { return len(p.inbox) / 2 },
		func() int { return len(p.inbox) - 1 },
	} {
		idx := pick()
		p.inbox = append(p.inbox[:idx], p.inbox[idx+1:]...)
		p.inboxChanged()
		check("after removal")
	}
	for len(p.inbox) > 0 {
		p.inbox = p.inbox[:len(p.inbox)-1]
		p.inboxChanged()
		check("after drain")
	}

	// readyAt must see the cached minimum for a blocked process.
	p.status = WaitMsg
	p.inboxAdd(&Msg{ID: 99, DeliverAt: 42 * time.Millisecond})
	at, ok := w.readyAt(p)
	want := 42 * time.Millisecond
	if want < p.wake {
		want = p.wake
	}
	if !ok || at != want {
		t.Fatalf("readyAt = (%v,%v), want (%v,true)", at, ok, want)
	}
}

// TestFlushReplayQueueEmpty: flushing an empty replay queue must be a
// no-op — in particular the debug diagnostic must not index the queue head.
func TestFlushReplayQueueEmpty(t *testing.T) {
	w := NewWorld(1, &counter{N: 1})
	w.DebugLog = &obs.DebugLog{Enabled: true, W: io.Discard}
	p := w.Procs[0]
	w.flushReplayQueue(p) // must not panic
	if len(p.inbox) != 0 || len(p.replayQueue) != 0 {
		t.Fatalf("flush of empty queue mutated state: inbox=%d replay=%d", len(p.inbox), len(p.replayQueue))
	}
}

// TestFlushReplayQueueRequeues: a non-empty flush moves replayed messages
// ahead of the live inbox, re-timed to now, and refreshes the cached
// delivery minimum.
func TestFlushReplayQueueRequeues(t *testing.T) {
	w := NewWorld(1, &counter{N: 1})
	p := w.Procs[0]
	p.inboxAdd(&Msg{ID: 1, DeliverAt: time.Second})
	p.replayQueue = append(p.replayQueue, retainedMsg{m: &Msg{ID: 2, DeliverAt: time.Hour}, pos: 1})
	w.Clock = 5 * time.Millisecond
	w.flushReplayQueue(p)
	if len(p.inbox) != 2 || p.inbox[0].ID != 2 || p.inbox[0].DeliverAt != w.Clock {
		t.Fatalf("flush did not requeue ahead of live inbox: %+v", p.inbox)
	}
	if at, ok := p.earliestInbox(); !ok || at != w.Clock {
		t.Fatalf("cached minimum stale after flush: (%v,%v), want (%v,true)", at, ok, w.Clock)
	}
}
