// Package ledger is the campaign forensics layer: an append-only,
// deterministic per-run record stream written while a fault-injection
// campaign executes, plus the machinery that turns a recorded stream back
// into the paper's analyses — incremental dangerous-path mining through
// statemachine.FromExecution, mergeable cross-run aggregates, and the
// deterministic reports behind cmd/ftreport.
//
// Determinism contract. A ledger is byte-identical across worker counts
// and across snapshots/COW on/off, for the same study configuration. Two
// disciplines deliver that:
//
//   - Records are appended from the campaign executor's accept callback,
//     which runs on the calling goroutine strictly in serial run order
//     (see internal/campaign) — so worker count cannot reorder records.
//   - Every field is a *logical* quantity of the simulated run: process
//     step positions, world step counts, virtual time. World.Fork
//     preserves step counts and the virtual clock, so a run served from a
//     prefix snapshot reports the same values as a from-scratch run.
//     Physical execution costs that DO differ by mode (steps actually
//     replayed vs skipped by forking, fork latencies) are deliberately
//     kept out of the ledger, in obs.SnapshotMetrics, which is reported to
//     stderr — the same split the study JSON uses.
//
// The emit path is allocation-free: records come from a pool, and
// Writer.Append renders into a reused buffer with strconv append calls
// (enforced by ftlint's hotpathcheck and an AllocsPerRun test).
package ledger

import "sync"

// Outcome classifies how one injection run ended.
type Outcome uint8

const (
	// Inert: the fault never activated (no fault-site visit reached the
	// fire point, or the kernel fault window opened after the run ended).
	Inert Outcome = iota
	// Completed: the fault activated but the run finished with correct
	// visible output.
	Completed
	// WrongOutput: the run finished but its visible output diverged from
	// the fault-free run — silent corruption, the Save-work conflict
	// Table 1 counts separately from crashes.
	WrongOutput
	// Crashed: the run crashed (or, in the OS study, the kernel fault
	// forced at least one recovery).
	Crashed

	outcomeCount
)

// outcomeNames are the on-disk names, indexed by Outcome.
var outcomeNames = [outcomeCount]string{"inert", "ok", "wrongout", "crash"}

// String returns the on-disk name of the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Record is one injection run's forensic record. All positions are logical
// simulation coordinates (process steps, world steps, virtual time), never
// physical execution counts — see the package comment's determinism
// contract. Fields that do not apply to a run hold -1 (positions) or zero
// (counts).
type Record struct {
	// Run is the serial run index within its campaign phase.
	Run int
	// Study names the campaign phase: "table1", "table2", "fig8", "ftsim".
	Study string
	// App is the workload ("nvi", "postgres", ...); Protocol the Save-work
	// protocol name (or "baseline"); Medium the commit medium ("rio",
	// "disk"); Kind the injected fault type ("" when none applies).
	App      string
	Protocol string
	Medium   string
	Kind     string
	// Seed is the study seed (the workload session; injection points are
	// derived per Run).
	Seed int64
	// FireAt is the armed injection point in the study's own unit:
	// fault-site visits for table1, virtual microseconds for table2, -1
	// when no injection was armed.
	FireAt int64
	// Outcome classifies the run; LoseWork marks a commit inside
	// (activation, crash] — the Lose-work violation; SaveWork marks silent
	// output corruption (table1) or fault propagation into application
	// state (table2); Recovered reports the end-to-end recovery check.
	Outcome   Outcome
	LoseWork  bool
	SaveWork  bool
	Recovered bool
	// Activation and Crash are process-step positions of fault activation
	// and the crash (-1 when absent). Steps is the process's final step
	// count; WorldSteps the world's; PrefixSteps the world step count at
	// activation (the clean prefix every run re-executes or forks past).
	Activation  int
	Crash       int
	Steps       int
	WorldSteps  int
	PrefixSteps int
	// VClockUS is the run's final virtual clock in microseconds.
	VClockUS int64
	// RollbackDepth is the process steps a crash discards (crash minus the
	// last commit at or before it; -1 for non-crashed runs).
	RollbackDepth int
	// CommitN counts commits; Commits holds their process-step positions
	// when the study records them (table1), nil when it records only the
	// count (table2, fig8).
	CommitN int
	Commits []int
	// ViolFirst is the index (into Commits) of the first violating commit
	// and ViolN the number of violating commits — the commits in
	// [Activation, Crash] that doom recovery. ViolFirst is -1 when none.
	ViolFirst int
	ViolN     int
	// VetoActive marks runs executed under a commit-veto policy (flag 'V'
	// on disk); VetoN counts commits the policy deferred and VetoSaveWorkN
	// the deferred commits at Save-work decision points (visible output) —
	// the induced Save-work cost the veto trades for Lose-work safety.
	// New in ftledger v2; v1 records read back with all three zero.
	VetoActive    bool
	VetoN         int
	VetoSaveWorkN int
}

// Reset clears the record for reuse, keeping the Commits capacity.
func (r *Record) Reset() {
	c := r.Commits[:0]
	*r = Record{}
	r.Commits = c
	r.FireAt = -1
	r.Activation = -1
	r.Crash = -1
	r.PrefixSteps = -1
	r.RollbackDepth = -1
	r.ViolFirst = -1
}

var recordPool = sync.Pool{New: func() any { return new(Record) }}

// Get returns a reset Record from the pool. Workers fill records off the
// campaign's hot path; the acceptor appends and Puts them back.
func Get() *Record {
	r := recordPool.Get().(*Record)
	r.Reset()
	return r
}

// Put returns a record to the pool.
func Put(r *Record) { recordPool.Put(r) }
