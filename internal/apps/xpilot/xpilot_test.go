package xpilot

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// newWorld builds the standard fleet with scripted client input.
func newWorld(t *testing.T, ticks int) *sim.World {
	t.Helper()
	w := sim.NewWorld(21, Fleet(ticks)...)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	for i := 1; i <= 3; i++ {
		w.Procs[i].Ctx().Inputs = KeyScript(strings.Repeat("wad ", 50))
	}
	w.MaxSteps = 2_000_000
	return w
}

func TestGameRunsToCompletion(t *testing.T) {
	w := newWorld(t, 30)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		for _, p := range w.Procs {
			t.Logf("proc %d: %v", p.Index, p.Status())
		}
		t.Fatal("fleet did not finish")
	}
	// Each client rendered every frame.
	for i := 1; i <= 3; i++ {
		if got := len(w.Outputs[i]); got != 30 {
			t.Errorf("client %d rendered %d frames, want 30", i, got)
		}
	}
	// Virtual time ≈ 30 frames at 15 fps = 2 s.
	if w.Clock < 1900*time.Millisecond || w.Clock > 2500*time.Millisecond {
		t.Errorf("clock = %v, want ≈2s", w.Clock)
	}
}

func TestFullSpeedIs15FPS(t *testing.T) {
	w := newWorld(t, 45)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	fps := float64(len(w.Outputs[1])) / w.Clock.Seconds()
	if fps < 14 || fps > 16 {
		t.Errorf("fps = %.1f, want ≈15", fps)
	}
}

func TestShipsMoveAndScore(t *testing.T) {
	w := sim.NewWorld(7, Fleet(60)...)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	// Client 1 thrusts constantly; client 2 fires constantly.
	w.Procs[1].Ctx().Inputs = KeyScript(strings.Repeat("w", 40))
	w.Procs[2].Ctx().Inputs = KeyScript(strings.Repeat(" ", 40))
	w.MaxSteps = 2_000_000
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	srv := w.Procs[0].Prog.(*Server)
	if srv.Ships[0].X == 100 && srv.Ships[0].Y == 400 {
		t.Error("thrusting ship never moved")
	}
	if srv.Ships[0].Fuel == 1000 {
		t.Error("thrust should burn fuel")
	}
}

func TestDirTable(t *testing.T) {
	// Heading 0 points along +x, 64 along +y.
	x, y := dir(0)
	if x != 16 || y != 0 {
		t.Errorf("dir(0) = (%d,%d), want (16,0)", x, y)
	}
	x, y = dir(64)
	if x != 0 || y != 16 {
		t.Errorf("dir(64) = (%d,%d), want (0,16)", x, y)
	}
	x, y = dir(128)
	if x != -16 || y != 0 {
		t.Errorf("dir(128) = (%d,%d), want (-16,0)", x, y)
	}
	x, y = dir(192)
	if x != 0 || y != -16 {
		t.Errorf("dir(192) = (%d,%d), want (0,-16)", x, y)
	}
}

func TestShotHitScores(t *testing.T) {
	s := NewServer(2, 100)
	// Place a shot right next to ship 1, owned by ship 0.
	s.Ships[1].X, s.Ships[1].Y = 500, 500
	s.Shots = []Shot{{X: 495, Y: 500, VX: 0, VY: 0, Owner: 0, TTL: 10}}
	s.physics()
	if s.Ships[0].Score != 1 {
		t.Errorf("owner score = %d, want 1", s.Ships[0].Score)
	}
	if s.Ships[1].Deaths != 1 {
		t.Errorf("victim deaths = %d, want 1", s.Ships[1].Deaths)
	}
	if len(s.Shots) != 0 {
		t.Error("shot should be consumed by the hit")
	}
	// Victim respawned at its spawn point.
	if s.Ships[1].X != 400 || s.Ships[1].Y != 400 {
		t.Errorf("victim at (%d,%d), want respawn (400,400)", s.Ships[1].X, s.Ships[1].Y)
	}
}

func TestShotExpiresAndWallStops(t *testing.T) {
	s := NewServer(1, 100)
	s.Shots = []Shot{
		{X: 300, Y: 700, VX: 0, VY: 0, Owner: 0, TTL: 1},   // expires
		{X: 450, Y: 310, VX: 0, VY: 40, Owner: 0, TTL: 10}, // flies into wall at y≈320
		{X: 300, Y: 600, VX: 4, VY: 0, Owner: 0, TTL: 100}, // survives
	}
	s.physics()
	if len(s.Shots) != 1 {
		t.Errorf("shots after tick = %d, want 1", len(s.Shots))
	}
}

func TestServerStateRoundTrip(t *testing.T) {
	s := NewServer(3, 50)
	s.Tick = 7
	s.Shots = []Shot{{X: 1, Y: 2, VX: 3, VY: 4, Owner: 1, TTL: 9}}
	img, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var s2 Server
	if err := s2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if s2.Tick != 7 || len(s2.Ships) != 3 || len(s2.Shots) != 1 || s2.Shots[0].TTL != 9 {
		t.Error("server state diverged")
	}
	if err := s2.UnmarshalState([]byte{1}); err == nil {
		t.Error("garbage must fail")
	}
}

func TestClientStateRoundTrip(t *testing.T) {
	c := NewClient(2)
	c.Frames = 11
	c.LastFrame = []byte{1, 2, 3}
	img, err := c.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var c2 Client
	if err := c2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if c2.Me != 2 || c2.Frames != 11 || len(c2.LastFrame) != 3 {
		t.Error("client state diverged")
	}
}

// TestGameSurvivesStopFailures: crash the server and a client mid-game
// under CBNDVS-LOG; the game must still finish with all frames rendered
// (frames may repeat, never regress by more than the redo).
func TestGameSurvivesStopFailures(t *testing.T) {
	for _, pol := range []protocol.Policy{protocol.CPVS, protocol.CBNDVSLog} {
		w := newWorld(t, 20)
		d := dc.New(w, pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, 50) // server mid-game
		w.ScheduleStop(2, 30) // one client
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			for _, p := range w.Procs {
				t.Logf("%s: %v", p.Prog.Name(), p.Status())
			}
			t.Fatalf("%s: fleet did not finish after failures", pol.Name)
		}
		if d.Stats.Recoveries < 2 {
			t.Errorf("%s: recoveries = %d, want >= 2", pol.Name, d.Stats.Recoveries)
		}
		// Consistent recovery allows repeats of earlier visible
		// events: a frame may re-render anything already shown, but
		// must never skip ahead of max-so-far + 1, and every frame
		// 1..20 must eventually appear.
		for ci := 1; ci <= 3; ci++ {
			maxSeen := 0
			seen := map[int]bool{}
			for _, o := range w.Outputs[ci] {
				var tick int
				if _, err := fmt.Sscanf(o, "frame %d", &tick); err != nil {
					t.Errorf("client %d: unparsable %q", ci, o)
					break
				}
				if tick > maxSeen+1 {
					t.Errorf("%s client %d: frame skipped ahead %d -> %d", pol.Name, ci, maxSeen, tick)
				}
				seen[tick] = true
				if tick > maxSeen {
					maxSeen = tick
				}
			}
			for f := 1; f <= 20; f++ {
				if !seen[f] {
					t.Errorf("%s client %d: frame %d never rendered", pol.Name, ci, f)
				}
			}
		}
	}
}
