// Package statemachine implements the paper's process model — a process is
// a finite state machine whose transitions are events — and the two
// dangerous-paths algorithms of Section 2.5 that underlie the Lose-work
// theorem.
//
// A crash event is a transition into a crash state (a state "filled black"
// in the paper's figures), from which the process cannot continue. The
// Single-Process Dangerous Paths Algorithm colors the set of events along
// which a commit could make recovery from a propagation failure impossible:
//
//   - color all crash events;
//   - color an event e if all events out of e's end state are colored;
//   - color an event e if at least one event out of e's end state is
//     colored and is a fixed non-deterministic event.
//
// The Multi-Process Dangerous Paths Algorithm reclassifies a process's
// receive events as transient or fixed non-deterministic based on a snapshot
// of where every other process last committed, then runs the single-process
// algorithm.
package statemachine

import (
	"fmt"
	"sort"

	"failtrans/internal/event"
)

// StateID names a state of a machine. States are dense, in [0, NumStates).
type StateID int

// EventID names a transition (an event type) of a machine. Event IDs are
// dense, in [0, len(Edges)).
type EventID int

// Edge is one transition of the machine. Multiple edges out of one state
// with the same observable cause model a non-deterministic choice.
type Edge struct {
	From, To StateID
	// ND classifies the transition's determinism. A state with several
	// outgoing edges representing alternative results of one action
	// should mark all of them with the action's ND class.
	ND event.NDClass
	// Msg tags receive edges with a message identity for the
	// multi-process algorithm; zero for non-receive edges.
	Msg int64
	// Label is a human-readable description with no semantic weight.
	Label string
}

// Machine is a single process's finite state machine.
type Machine struct {
	NumStates int
	Start     StateID
	Edges     []Edge
	// CrashStates marks states from which execution cannot continue.
	// Every edge into a crash state is a crash event.
	CrashStates map[StateID]bool
}

// New returns an empty machine with n states starting at state 0.
func New(n int) *Machine {
	return &Machine{NumStates: n, CrashStates: make(map[StateID]bool)}
}

// AddEdge appends a transition and returns its EventID.
func (m *Machine) AddEdge(e Edge) EventID {
	m.Edges = append(m.Edges, e)
	return EventID(len(m.Edges) - 1)
}

// MarkCrash marks state s as a crash state.
func (m *Machine) MarkCrash(s StateID) { m.CrashStates[s] = true }

// Validate checks structural sanity: states in range, crash states have no
// outgoing edges.
func (m *Machine) Validate() error {
	for i, e := range m.Edges {
		if e.From < 0 || int(e.From) >= m.NumStates {
			return fmt.Errorf("statemachine: edge %d: from-state %d out of range", i, e.From)
		}
		if e.To < 0 || int(e.To) >= m.NumStates {
			return fmt.Errorf("statemachine: edge %d: to-state %d out of range", i, e.To)
		}
		if m.CrashStates[e.From] {
			return fmt.Errorf("statemachine: edge %d leaves crash state %d", i, e.From)
		}
	}
	if m.Start < 0 || int(m.Start) >= m.NumStates {
		return fmt.Errorf("statemachine: start state %d out of range", m.Start)
	}
	return nil
}

// outgoing returns edge IDs grouped by from-state.
func (m *Machine) outgoing() [][]EventID {
	out := make([][]EventID, m.NumStates)
	for i, e := range m.Edges {
		out[e.From] = append(out[e.From], EventID(i))
	}
	return out
}

// IsCrashEvent reports whether edge id ends in a crash state.
func (m *Machine) IsCrashEvent(id EventID) bool {
	return m.CrashStates[m.Edges[id].To]
}

// Coloring is the result of the dangerous-paths computation.
type Coloring struct {
	m *Machine
	// Colored[id] reports that edge id lies on a dangerous path.
	Colored []bool
	// out caches the machine's adjacency (edge IDs grouped by from-state)
	// as of the fixpoint run, so per-commit queries like CommitUnsafeAt
	// cost O(out-degree) instead of rebuilding the O(E) index each call.
	out [][]EventID
}

// DangerousPaths runs the Single-Process Dangerous Paths Algorithm to a
// fixpoint and returns the coloring.
//
// One refinement over the paper's prose: the rule "color e if all events out
// of e's end state are colored" applies only to end states that have at
// least one outgoing event. A state with no outgoing events that is not a
// crash state models successful completion, and committing there is safe.
func (m *Machine) DangerousPaths() *Coloring {
	c := &Coloring{m: m, Colored: make([]bool, len(m.Edges)), out: m.outgoing()}
	out := c.out
	for i := range m.Edges {
		if m.IsCrashEvent(EventID(i)) {
			c.Colored[i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i, e := range m.Edges {
			if c.Colored[i] {
				continue
			}
			if c.stateDoomed(e.To, out) {
				c.Colored[i] = true
				changed = true
			}
		}
	}
	return c
}

// stateDoomed reports whether a commit taken while resident in state s lies
// on a dangerous path: every event out of s is colored (and there is at
// least one), or some colored event out of s is fixed non-deterministic.
func (c *Coloring) stateDoomed(s StateID, out [][]EventID) bool {
	edges := out[s]
	if len(edges) == 0 {
		return false
	}
	all := true
	for _, id := range edges {
		if !c.Colored[id] {
			all = false
		} else if c.m.Edges[id].ND == event.FixedND {
			return true
		}
	}
	return all
}

// DangerousEvents returns the sorted IDs of all colored events.
func (c *Coloring) DangerousEvents() []EventID {
	var ids []EventID
	for i, col := range c.Colored {
		if col {
			ids = append(ids, EventID(i))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dangerous reports whether edge id is on a dangerous path.
func (c *Coloring) Dangerous(id EventID) bool { return c.Colored[id] }

// CommitUnsafeAt reports whether executing a commit while resident in state
// s could violate the Lose-work invariant. Per the Lose-work theorem a
// commit is forbidden anywhere on a dangerous path; a commit "at" state s is
// on a dangerous path exactly when s is doomed under the coloring.
func (c *Coloring) CommitUnsafeAt(s StateID) bool {
	if c.m.CrashStates[s] {
		return true
	}
	return c.stateDoomed(s, c.out)
}

// SafeCommitStates returns all states where a commit cannot violate
// Lose-work, sorted.
func (c *Coloring) SafeCommitStates() []StateID {
	out := c.out
	var states []StateID
	for s := 0; s < c.m.NumStates; s++ {
		sid := StateID(s)
		if c.m.CrashStates[sid] {
			continue
		}
		if !c.stateDoomed(sid, out) {
			states = append(states, sid)
		}
	}
	return states
}
