// Package vista reimplements the mechanism of the Vista transaction library
// (Lowell & Chen, SOSP 1997) that Discount Checking is built on: a process
// maps its state into a segment of reliable memory; updates are trapped at
// page granularity (copy-on-write in the original, explicit Write calls
// here); before-images of updated pages go to a persistent undo log; and a
// commit atomically saves the register file, discards the undo log, and
// re-arms the write traps.
//
// Rolling back a process is applying the undo log in reverse; recovering
// after a crash is the same operation, because the undo log itself lives in
// reliable memory.
//
// The commit path is engineered to do work proportional to the *dirty*
// bytes with zero steady-state heap allocations: the dirty set is a
// reusable bitset cleared in place, undo-record page buffers are pooled
// across commit cycles, page comparison is word-wise, and a per-page hash
// cache (maintained across commits) lets SetContents reject changed pages
// after a single pass over the incoming image.
//
// A segment also supports the same trick one level up, for the fault
// campaign engine that forks whole worlds off memoized clean prefixes:
// Freeze seals a segment as an immutable template, and Fork of a frozen
// segment returns a copy-on-write fork that shares the template's memory
// image and page-hash cache. A fork privatizes a page into its private
// overlay on first write — exactly the Discount Checking first-touch trap,
// applied to the meta-level engine — so forking costs O(metadata), not
// O(state), and each fork pays only for the pages it actually changes.
package vista

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"failtrans/internal/obs"
)

// DefaultPageSize matches the i386 page size the original used.
const DefaultPageSize = 4096

// Stats reports what a commit had to write.
type Stats struct {
	// Pages is the number of distinct pages dirtied since the previous
	// commit.
	Pages int
	// Bytes is the total payload a commit must persist: the dirtied
	// pages plus the register file.
	Bytes int
}

type undoRec struct {
	page int
	data []byte
	// borrowed marks a before-image that aliases memory the record does
	// not own — a frozen template's page (immutable, so the slice IS the
	// before-image) or an undo buffer inherited from the template at fork.
	// Borrowed buffers must never be released into the fork's pool.
	borrowed bool
}

// pageBitset tracks dirty pages as one bit per page. Bits are cleared in
// place at commit/rollback (walking the undo log, which names exactly the
// set bits) so the steady state allocates nothing.
type pageBitset []uint64

func (b pageBitset) has(p int) bool { return b[p>>6]&(1<<(uint(p)&63)) != 0 }
func (b pageBitset) set(p int)      { b[p>>6] |= 1 << (uint(p) & 63) }
func (b pageBitset) clear(p int)    { b[p>>6] &^= 1 << (uint(p) & 63) }

// Segment is one process's persistent address space plus its undo log.
// The zero value is not usable; call NewSegment.
type Segment struct {
	pageSize int
	// size is the logical extent in bytes. For an ordinary (flat) segment
	// len(mem) == size; a frozen template's mem is padded to a page
	// boundary beyond size, and a COW fork's mem is nil (its contents live
	// in overlay and base).
	size int
	// A frozen template's mem is read by every COW fork through base, so
	// writes must first prove the segment private: mustMutable panics on
	// a frozen template, and touchPage privatizes a fork's page into
	// overlay before the write lands.
	//failtrans:cowshared mustMutable,touchPage
	mem []byte
	undo []undoRec
	dirty    pageBitset
	nDirty   int
	savedReg []byte

	// frozen marks a sealed template: mutators panic, and Fork returns a
	// copy-on-write fork sharing this segment's memory instead of a deep
	// copy. A frozen segment is immutable forever, so any number of forks
	// may read it concurrently without locking.
	frozen bool
	// base, when non-nil, is the frozen template this segment was COW-
	// forked from. Page contents are read overlay-first, then base; pages
	// past the base's extent (the fork grew) read as zeros until written.
	base *Segment
	// overlay holds the fork's privatized pages: full pageSize buffers
	// (drawn from bufPool) whose logical tail beyond the extent is kept
	// zeroed, so growth re-exposes zeros exactly like flat memory does.
	overlay map[int][]byte

	// pageHash caches, per page, the hash of the page's current contents
	// whenever the matching hashValid bit is set. SetContents maintains
	// it so a changed incoming page is detected from the hash alone —
	// without re-reading the segment's committed bytes. Write-path
	// updates (whose contents SetContents never sees) just invalidate.
	// A COW fork inherits the template's cache (valid entries carry over
	// because fork shares the template's bytes), so its first commit
	// skips clean pages without ever reading them.
	//failtrans:cowshared privatizeHash
	pageHash []uint64
	//failtrans:cowshared privatizeHash
	hashValid pageBitset
	// hashShared marks pageHash/hashValid as clamped views of the frozen
	// template's arrays: valid to read (the shared bytes cannot change),
	// privatized by privatizeHash before the first invalidation or update.
	hashShared bool

	// bufPool recycles undo-record page buffers across commit cycles.
	bufPool [][]byte

	// CommitCount and LoggedBytes accumulate usage statistics.
	CommitCount int
	LoggedBytes int64

	// CowPages and CowBytes count pages privatized out of the frozen base
	// and the bytes copied doing so — the total copy-on-write cost this
	// fork has paid since it was created.
	CowPages int
	CowBytes int64

	// Metrics, if non-nil, receives the segment's page-diff and undo-log
	// counters (plain increments: the commit hot path stays at zero
	// allocations with metrics enabled). Coordinated commits diff
	// different segments in parallel, so each segment must be wired to its
	// own slot.
	Metrics *obs.VistaMetrics
}

// NewSegment returns a segment of the given initial size. pageSize <= 0
// selects DefaultPageSize.
func NewSegment(size, pageSize int) *Segment {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	s := &Segment{
		pageSize: pageSize,
		size:     size,
		mem:      make([]byte, size),
	}
	s.sizeTracking()
	return s
}

// PageSize returns the trap granularity.
func (s *Segment) PageSize() int { return s.pageSize }

// Size returns the current segment size in bytes.
func (s *Segment) Size() int { return s.size }

// Frozen reports whether the segment has been sealed as a COW template.
func (s *Segment) Frozen() bool { return s.frozen }

// pages returns the current page count.
func (s *Segment) pages() int { return (s.size + s.pageSize - 1) / s.pageSize }

// pageExtent returns the byte range [start,end) page p covers within the
// segment's logical extent.
func (s *Segment) pageExtent(p int) (start, end int) {
	start = p * s.pageSize
	end = start + s.pageSize
	if end > s.size {
		end = s.size
	}
	return start, end
}

// sizeTracking (re)sizes the dirty/hash structures to the segment size,
// preserving existing entries.
func (s *Segment) sizeTracking() {
	np := s.pages()
	words := (np + 63) / 64
	for len(s.dirty) < words {
		s.dirty = append(s.dirty, 0)
	}
	for len(s.hashValid) < words {
		//failtrans:cowok a fork's view is capacity-clamped at cowFork, so append always reallocates instead of writing the frozen template's array
		s.hashValid = append(s.hashValid, 0)
	}
	for len(s.pageHash) < np {
		//failtrans:cowok a fork's view is capacity-clamped at cowFork, so append always reallocates instead of writing the frozen template's array
		s.pageHash = append(s.pageHash, 0)
	}
}

// grow extends the segment to at least n bytes. New memory is zeroed and
// considered committed (like fresh pages from the OS).
func (s *Segment) grow(n int) {
	if n <= s.size {
		return
	}
	if s.base != nil {
		// COW fork: new pages materialize lazily; until written they read
		// as zeros through the overlay-then-base lookup.
		s.size = n
		s.sizeTracking()
		return
	}
	if n <= cap(s.mem) {
		// The previous extent beyond len is kept zeroed (shrinking
		// SetContents zeroes tails; fresh capacity is zero already), so
		// re-extending within capacity needs no clearing or copying.
		s.mem = s.mem[:n]
	} else {
		//failtrans:alloc segment growth is O(log size) over a process lifetime; the steady-state commit cycle never grows
		bigger := make([]byte, n)
		copy(bigger, s.mem)
		s.mem = bigger
	}
	s.size = n
	s.sizeTracking()
}

// mustMutable panics if the segment has been frozen: a template is shared
// by every fork taken from it, so writing it would corrupt them all.
func (s *Segment) mustMutable() {
	if s.frozen {
		panic("vista: mutation of frozen template segment")
	}
}

// pageBuf returns an n-byte buffer for an undo record, recycling pooled
// buffers from earlier commit cycles when possible.
func (s *Segment) pageBuf(n int) []byte {
	if l := len(s.bufPool); l > 0 {
		b := s.bufPool[l-1]
		s.bufPool = s.bufPool[:l-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	//failtrans:alloc pool miss happens only until the pool reaches the working set; AllocsPerRun pins the warmed cycle at zero
	return make([]byte, n, s.pageSize)
}

// releaseUndo returns every owned undo record's page buffer to the pool and
// truncates the log, clearing the records' dirty bits in place. Borrowed
// before-images (template pages, inherited undo buffers) are dropped, not
// pooled — the fork does not own them.
func (s *Segment) releaseUndo() {
	for i := range s.undo {
		s.dirty.clear(s.undo[i].page)
		if !s.undo[i].borrowed {
			s.bufPool = append(s.bufPool, s.undo[i].data)
		}
		s.undo[i].data = nil
		s.undo[i].borrowed = false
	}
	s.undo = s.undo[:0]
	s.nDirty = 0
}

// basePage returns up to n bytes of frozen template page p. Freeze pads the
// template's mem to a page boundary, so every page below its padded extent
// is fully resident; beyond it (the fork grew) the page reads as zeros and
// basePage returns a short (possibly nil) slice.
func (s *Segment) basePage(p, n int) []byte {
	start := p * s.pageSize
	if start >= len(s.mem) {
		return nil
	}
	end := start + n
	if end > len(s.mem) {
		end = len(s.mem)
	}
	return s.mem[start:end]
}

// resident returns the current logical contents of page p without copying.
// The returned slice may be shorter than the page extent; the missing tail
// reads as zeros (a COW fork reading past the frozen base's extent).
func (s *Segment) resident(p int) []byte {
	start, end := s.pageExtent(p)
	if s.base == nil {
		return s.mem[start:end]
	}
	if b, ok := s.overlay[p]; ok {
		return b[:end-start]
	}
	return s.base.basePage(p, end-start)
}

// privatize gives page p of a COW fork its own overlay buffer, copying the
// current logical contents out of the frozen base — Discount Checking's
// first-touch copy, applied to the fork engine itself. No-op on flat
// segments and already-private pages.
func (s *Segment) privatize(p int) {
	if s.base == nil {
		return
	}
	if _, ok := s.overlay[p]; ok {
		return
	}
	buf := s.pageBuf(s.pageSize)
	n := copy(buf, s.base.basePage(p, s.pageSize))
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	if s.overlay == nil {
		//failtrans:alloc one-time per fork: the overlay map is deferred out of cowFork to the first privatized page
		s.overlay = make(map[int][]byte, 8)
	}
	s.overlay[p] = buf
	s.CowPages++
	s.CowBytes += int64(n)
	if m := s.Metrics; m != nil {
		m.PagesPrivatized++
		m.BytesCOW += int64(n)
	}
}

// privatizeHash unshares the hash cache from the frozen template before
// its first mutation. Shared reads need no copy — the template's entries
// stay correct for every page still served from its bytes.
func (s *Segment) privatizeHash() {
	if !s.hashShared {
		return
	}
	//failtrans:alloc one-time per fork: the hash cache is COW — shared at fork, copied at first invalidation
	s.pageHash = append([]uint64(nil), s.pageHash...)
	//failtrans:alloc one-time per fork: the hash cache is COW — shared at fork, copied at first invalidation
	s.hashValid = append(pageBitset(nil), s.hashValid...)
	s.hashShared = false
}

// writablePage returns the mutable extent of page p, privatizing it first
// on a COW fork.
func (s *Segment) writablePage(p int) []byte {
	start, end := s.pageExtent(p)
	if s.base == nil {
		return s.mem[start:end]
	}
	s.privatize(p)
	return s.overlay[p][:end-start]
}

// touchPage logs the before-image of page p on its first write since the
// last commit. On a COW fork whose page still lives in the frozen base, the
// base's slice is borrowed as the before-image outright — the template can
// never change, so no copy is needed.
func (s *Segment) touchPage(p int) {
	if s.dirty.has(p) {
		return
	}
	s.dirty.set(p)
	s.nDirty++
	start, end := s.pageExtent(p)
	var img []byte
	borrowed := false
	if s.base != nil {
		if _, ok := s.overlay[p]; !ok {
			img = s.base.basePage(p, end-start)
			borrowed = true
		}
	}
	if !borrowed {
		img = s.pageBuf(end - start)
		copy(img, s.resident(p))
	}
	s.undo = append(s.undo, undoRec{page: p, data: img, borrowed: borrowed})
	s.LoggedBytes += int64(len(img))
	if m := s.Metrics; m != nil {
		m.PagesDirtied++
		m.UndoBytes += int64(len(img))
	}
}

// Write copies data into the segment at off, growing it as needed and
// logging before-images of every touched page. The hash cache entries of
// the touched pages are invalidated (Write does not know the final page
// contents; SetContents recomputes them on its next pass).
//
//failtrans:hotpath
func (s *Segment) Write(off int, data []byte) error {
	s.mustMutable()
	if off < 0 {
		//failtrans:alloc cold error path: a negative offset aborts the write, so the formatting never runs in a committing cycle
		return fmt.Errorf("vista: negative offset %d", off)
	}
	if len(data) == 0 {
		return nil
	}
	s.grow(off + len(data))
	first, last := off/s.pageSize, (off+len(data)-1)/s.pageSize
	s.privatizeHash()
	for p := first; p <= last; p++ {
		s.touchPage(p)
		s.hashValid.clear(p)
	}
	if s.base == nil {
		copy(s.mem[off:], data)
		return nil
	}
	for p := first; p <= last; p++ {
		start := p * s.pageSize
		page := s.writablePage(p)
		in := 0
		if off > start {
			in = off - start
		}
		copy(page[in:], data[start+in-off:])
	}
	return nil
}

// Read copies n bytes at off out of the segment.
func (s *Segment) Read(off, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("vista: negative read length %d", n)
	}
	out := make([]byte, n)
	if err := s.ReadInto(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst with len(dst) bytes starting at off, without
// allocating.
func (s *Segment) ReadInto(off int, dst []byte) error {
	if off < 0 || off+len(dst) > s.size {
		return fmt.Errorf("vista: read [%d,%d) outside segment of %d bytes", off, off+len(dst), s.size)
	}
	if s.base == nil {
		copy(dst, s.mem[off:])
		return nil
	}
	for filled := 0; filled < len(dst); {
		pos := off + filled
		p := pos / s.pageSize
		start, end := s.pageExtent(p)
		n := end - pos
		if n > len(dst)-filled {
			n = len(dst) - filled
		}
		r := s.resident(p)
		in := pos - start
		copied := 0
		if in < len(r) {
			copied = copy(dst[filled:filled+n], r[in:])
		}
		for i := copied; i < n; i++ {
			dst[filled+i] = 0
		}
		filled += n
	}
	return nil
}

// SetContents replaces the whole segment with data, but touches only the
// pages that actually differ — the analogue of copy-on-write, where clean
// pages never fault. It is the path Discount Checking uses to lay a
// serialized process image into the segment.
//
// Each incoming page is hashed in one pass and compared against the cached
// hash of the resident page, so clean pages are skipped without reading
// the resident bytes at all; only pages without a cached hash yet fall
// back to a word-wise byte comparison. On a COW fork, a page is privatized
// only when it differs — clean pages keep reading through to the shared
// template.
//
//failtrans:hotpath
func (s *Segment) SetContents(data []byte) {
	s.mustMutable()
	s.grow(len(data))
	// Pages beyond len(data) that contain old bytes must be cleared.
	limit := s.size
	for start := 0; start < limit; start += s.pageSize {
		end := start + s.pageSize
		if end > limit {
			end = limit
		}
		var src []byte
		switch {
		case start >= len(data):
			src = nil
		case end > len(data):
			src = data[start:len(data):len(data)]
		default:
			src = data[start:end]
		}
		p := start / s.pageSize
		h := pageHashOf(src, end-start)
		if s.hashValid.has(p) {
			if s.pageHash[p] == h {
				// Clean: the cached hash of the resident page matches
				// the incoming page's, so the resident bytes are never
				// read at all. A 64-bit collision (~2^-64 per page)
				// would wrongly skip the copy; the commit path accepts
				// that in exchange for halving clean-page work.
				if m := s.Metrics; m != nil {
					m.HashHits++
				}
				continue
			}
			if m := s.Metrics; m != nil {
				m.HashMisses++
			}
		} else if pageEqual(s.resident(p), src) {
			// First sighting of a clean page: adopt its hash so the
			// next commit cycle skips the byte comparison path on a
			// mismatch.
			s.privatizeHash()
			s.pageHash[p] = h
			s.hashValid.set(p)
			continue
		}
		s.touchPage(p)
		page := s.writablePage(p)
		n := copy(page, src)
		for i := n; i < len(page); i++ {
			page[i] = 0
		}
		s.privatizeHash()
		s.pageHash[p] = h
		s.hashValid.set(p)
	}
}

// pageHashOf hashes the logical contents of one page extent: the bytes of
// src followed by implicit zeros out to extent bytes. Logical word j
// always lands in lane j%4 with its logical (zero-padded) value, so the
// result is a pure function of the extent's contents regardless of where
// len(src) falls. Four independent multiply lanes break the serial
// xor-multiply dependency chain and keep the common clean-page scan
// memory-bound rather than latency-bound.
func pageHashOf(src []byte, extent int) uint64 {
	const mul = 0x9E3779B97F4A7C15
	h0 := uint64(0x243F6A8885A308D3)
	h1 := uint64(0x13198A2E03707344)
	h2 := uint64(0xA4093822299F31D0)
	h3 := uint64(0x082EFA98EC4E6C89)
	n := len(src)
	i := 0
	for ; i+32 <= n; i += 32 {
		h0 = (h0 ^ binary.LittleEndian.Uint64(src[i:])) * mul
		h1 = (h1 ^ binary.LittleEndian.Uint64(src[i+8:])) * mul
		h2 = (h2 ^ binary.LittleEndian.Uint64(src[i+16:])) * mul
		h3 = (h3 ^ binary.LittleEndian.Uint64(src[i+24:])) * mul
	}
	// Tail: the remaining real words (zero-padded) and the implicit zero
	// words out to extent, one word at a time, continuing the round-robin
	// lane assignment the block loop established.
	for lane := (i / 8) & 3; i < extent; i += 8 {
		var w uint64
		switch {
		case i+8 <= n:
			w = binary.LittleEndian.Uint64(src[i:])
		case i < n:
			var tail [8]byte
			copy(tail[:], src[i:])
			w = binary.LittleEndian.Uint64(tail[:])
		}
		switch lane {
		case 0:
			h0 = (h0 ^ w) * mul
		case 1:
			h1 = (h1 ^ w) * mul
		case 2:
			h2 = (h2 ^ w) * mul
		default:
			h3 = (h3 ^ w) * mul
		}
		lane = (lane + 1) & 3
	}
	return ((h0*mul^h1)*mul^h2)*mul ^ h3
}

// pageEqual compares two views of one page extent, treating bytes beyond
// either slice's length as zero. The common full-length comparison runs
// word-wise through bytes.Equal.
func pageEqual(page, src []byte) bool {
	if len(page) > len(src) {
		page, src = src, page
	}
	if !bytes.Equal(src[:len(page)], page) {
		return false
	}
	for _, b := range src[len(page):] {
		if b != 0 {
			return false
		}
	}
	return true
}

// Contents returns a copy of the full segment.
func (s *Segment) Contents() []byte {
	return s.AppendContents(nil)
}

// AppendContents appends the full segment to buf and returns the extended
// slice — the zero-allocation companion of Contents for callers that reuse
// a buffer across commit cycles.
func (s *Segment) AppendContents(buf []byte) []byte {
	if s.base == nil {
		return append(buf, s.mem[:s.size]...)
	}
	np := s.pages()
	for p := 0; p < np; p++ {
		start, end := s.pageExtent(p)
		r := s.resident(p)
		buf = append(buf, r...)
		for i := start + len(r); i < end; i++ {
			buf = append(buf, 0)
		}
	}
	return buf
}

// ContentDigest folds every page's logical contents and the saved register
// file into one deterministic 64-bit value — the segment's contribution to
// a snapshot's content address. Two segments with identical committed
// state, extent and registers digest identically whether they are flat,
// frozen, or COW forks.
func (s *Segment) ContentDigest() uint64 {
	const mul = 0x9E3779B97F4A7C15
	h := uint64(0x5E97A11DC0117EC7)
	h = (h ^ uint64(s.size)) * mul
	np := s.pages()
	for p := 0; p < np; p++ {
		start, end := s.pageExtent(p)
		h = (h ^ pageHashOf(s.resident(p), end-start)) * mul
	}
	h = (h ^ uint64(len(s.savedReg))) * mul
	for _, c := range s.savedReg {
		h = (h ^ uint64(c)) * mul
	}
	return h
}

// Freeze seals the segment as an immutable copy-on-write template: every
// subsequent Fork returns an O(metadata) COW fork sharing this segment's
// memory image and page-hash cache, and every mutator panics. The memory
// image is padded to a page boundary so forks can borrow whole-page slices
// without bounds juggling. A frozen segment may be forked concurrently from
// any number of goroutines without locking — nothing ever writes it again.
func (s *Segment) Freeze() {
	if s.frozen {
		return
	}
	if s.base != nil {
		// Freezing a COW fork: materialize it flat first, so forks taken
		// from this template never chase a base chain.
		flat := make([]byte, 0, s.pages()*s.pageSize)
		flat = s.AppendContents(flat)
		s.mem = flat
		s.base = nil
		s.overlay = nil
	}
	if padded := s.pages() * s.pageSize; len(s.mem) < padded {
		//failtrans:cowok the frozen early-return above is the mustMutable check inlined: only an unfrozen segment reaches here, and an unfrozen segment's mem is private (a fork's is nil until materialized flat just above)
		s.mem = append(s.mem, make([]byte, padded-len(s.mem))...)
	}
	s.frozen = true
}

// Fork returns an independent copy of the segment, mid-transaction state
// included: memory image, undo log, dirty set and hash cache all carry
// over, so a rollback of either copy behaves identically. The buffer pool
// and Metrics sink do not carry over (the fork warms its own pool;
// observability is per-run).
//
// Forking a frozen template is O(metadata): the fork shares the template's
// memory image and privatizes pages only as it writes them. Forking an
// ordinary segment deep-copies, as a mutable segment cannot be safely
// shared.
func (s *Segment) Fork() *Segment {
	if s.frozen {
		return s.cowFork()
	}
	ns := &Segment{
		pageSize:    s.pageSize,
		size:        s.size,
		undo:        make([]undoRec, len(s.undo)),
		dirty:       append(pageBitset(nil), s.dirty...),
		nDirty:      s.nDirty,
		savedReg:    append([]byte(nil), s.savedReg...),
		pageHash:    append([]uint64(nil), s.pageHash...),
		hashValid:   append(pageBitset(nil), s.hashValid...),
		CommitCount: s.CommitCount,
		LoggedBytes: s.LoggedBytes,
	}
	if s.base == nil {
		ns.mem = append([]byte(nil), s.mem[:s.size]...)
	} else {
		// Deep fork of a COW fork: materialize the overlay-then-base view.
		ns.mem = s.AppendContents(make([]byte, 0, s.size))
	}
	for i, rec := range s.undo {
		ns.undo[i] = undoRec{page: rec.page, data: append([]byte(nil), rec.data...)}
	}
	return ns
}

// cowFork builds a copy-on-write fork of a frozen template. Only the small
// per-page metadata (dirty set, hash cache, undo headers) is copied; the
// memory image and any pending undo before-images are shared with the
// template, which Freeze guarantees can never change.
func (s *Segment) cowFork() *Segment {
	// Everything possible is shared or deferred: the hash cache stays a
	// clamped view of the template's arrays until first invalidation
	// (privatizeHash), and the overlay map waits for the first privatized
	// page. Only the dirty bitset is copied — touchPage mutates it on the
	// fork's first write, which for most campaign forks is immediate.
	nd := len(s.dirty)
	words := make([]uint64, nd)
	ns := &Segment{
		pageSize:    s.pageSize,
		size:        s.size,
		base:        s,
		undo:        make([]undoRec, len(s.undo)),
		dirty:       pageBitset(words[0:nd:nd]),
		nDirty:      s.nDirty,
		savedReg:    append([]byte(nil), s.savedReg...),
		pageHash:    s.pageHash[:len(s.pageHash):len(s.pageHash)],
		hashValid:   pageBitset(s.hashValid[:len(s.hashValid):len(s.hashValid)]),
		hashShared:  true,
		CommitCount: s.CommitCount,
		LoggedBytes: s.LoggedBytes,
	}
	copy(ns.dirty, s.dirty)
	for i, rec := range s.undo {
		ns.undo[i] = undoRec{page: rec.page, data: rec.data, borrowed: true}
	}
	return ns
}

// DirtyPages returns how many pages have been touched since the last
// commit.
func (s *Segment) DirtyPages() int { return s.nDirty }

// Commit atomically saves the register file, discards the undo log, and
// re-arms the page traps. It returns what had to be written to stable
// storage. The undo log's page buffers are recycled for future cycles, so
// a steady-state commit allocates nothing.
//
//failtrans:hotpath
func (s *Segment) Commit(registers []byte) Stats {
	s.mustMutable()
	st := Stats{Pages: s.nDirty, Bytes: s.nDirty*s.pageSize + len(registers)}
	s.savedReg = append(s.savedReg[:0], registers...)
	s.releaseUndo()
	s.CommitCount++
	if m := s.Metrics; m != nil {
		m.Commits++
	}
	return st
}

// RollbackPages applies the undo log in reverse, returning the segment to
// its last committed state, without copying out the saved register file —
// the zero-allocation form of Rollback for recovery paths that read the
// registers elsewhere. After a simulated crash this is exactly recovery:
// the undo log is persistent. Restored pages' hash cache entries are
// invalidated (their contents no longer match what SetContents last
// hashed).
//
//failtrans:hotpath
func (s *Segment) RollbackPages() {
	s.mustMutable()
	for i := len(s.undo) - 1; i >= 0; i-- {
		rec := s.undo[i]
		page := s.writablePage(rec.page)
		n := copy(page, rec.data)
		// A before-image shorter than the current extent means the page
		// grew after it was touched; the grown region was committed as
		// zeros, so restore zeros there.
		for j := n; j < len(page); j++ {
			page[j] = 0
		}
		s.privatizeHash()
		s.hashValid.clear(rec.page)
	}
	s.releaseUndo()
	if m := s.Metrics; m != nil {
		m.Rollbacks++
	}
}

// Rollback applies the undo log in reverse and returns a copy of the saved
// register file.
func (s *Segment) Rollback() []byte {
	s.RollbackPages()
	reg := make([]byte, len(s.savedReg))
	copy(reg, s.savedReg)
	return reg
}
