package faults

import (
	"fmt"

	"failtrans/internal/obs/ledger"
	"failtrans/internal/statemachine"
)

// The two-phase veto campaign: phase 1 runs the study as-is while an
// in-memory miner folds every accepted run into the per-app dangerous-path
// machine; its coloring becomes a commit-veto policy; phase 2 re-runs the
// identical seeds with the veto armed. Commits do not alter the faulted
// execution path (they checkpoint state and charge virtual time; the
// injected fault fires by fault-site visit count either way), so the two
// phases visit the same runs, crash the same runs, and differ only in
// where commits landed — which is exactly the Lose-work delta the paper's
// ">90% unrecoverable" number is about, and the induced Save-work cost the
// veto pays for it.

// VetoDelta is one fault kind's baseline-vs-veto comparison.
type VetoDelta struct {
	Kind     string
	Baseline TypeResult
	Vetoed   TypeResult
}

// ClawedBack is the number of Lose-work violations (commits on the
// dangerous path among crashed runs) the veto prevented for this kind.
func (d VetoDelta) ClawedBack() int { return d.Baseline.Violations - d.Vetoed.Violations }

// VetoOutcome is a two-phase campaign's full result.
type VetoOutcome struct {
	// Key is the mined machine the policy came from; Policy the policy
	// itself (loadable into further studies or serializable via
	// statemachine.WritePolicies).
	Key    string
	Policy *statemachine.VetoPolicy
	// Baseline and Vetoed are the two phases' per-kind results, in
	// AppFaultTypes order; Deltas pairs them up.
	Baseline []TypeResult
	Vetoed   []TypeResult
	Deltas   []VetoDelta
	// ClawedBack totals the violations prevented; VetoedCommits the
	// commits the policy deferred across phase 2; VetoedSaveWork the
	// deferrals at Save-work decision points (visible output left
	// uncovered by a commit — the induced cost).
	ClawedBack     int
	VetoedCommits  int
	VetoedSaveWork int
}

// BaselineViolations sums phase 1's violations.
func (v *VetoOutcome) BaselineViolations() int {
	n := 0
	for _, t := range v.Baseline {
		n += t.Violations
	}
	return n
}

// RunVeto executes the two-phase campaign. The study must not already
// carry a veto policy; its Ledger (when set) receives both phases'
// records — phase 2's marked with the 'V' flag — so one file feeds
// ftreport's veto section.
func (s *AppStudy) RunVeto() (*VetoOutcome, error) {
	if s.Veto != nil {
		return nil, fmt.Errorf("faults: RunVeto needs a veto-free study (phase 1 mines the policy)")
	}
	mn := ledger.NewMiner()
	prevHook := s.RecordHook
	s.RecordHook = func(r *ledger.Record) {
		mn.Add(r)
		if prevHook != nil {
			prevHook(r)
		}
	}
	base, err := s.Run()
	s.RecordHook = prevHook
	if err != nil {
		return nil, err
	}
	key := "table1/" + s.App + "/" + s.Policy.Name
	md := mn.Get(key)
	if md == nil {
		return nil, fmt.Errorf("faults: phase 1 mined no machine for %q (keys: %v)", key, mn.Keys())
	}
	out := &VetoOutcome{Key: key, Policy: md.VetoPolicy(), Baseline: base}
	s.Veto = out.Policy
	s.RecordHook = func(r *ledger.Record) {
		out.VetoedCommits += r.VetoN
		out.VetoedSaveWork += r.VetoSaveWorkN
		if prevHook != nil {
			prevHook(r)
		}
	}
	vet, err := s.Run()
	s.Veto = nil
	s.RecordHook = prevHook
	if err != nil {
		return nil, err
	}
	out.Vetoed = vet
	for i := range base {
		if i >= len(vet) {
			break
		}
		d := VetoDelta{Kind: base[i].Kind.String(), Baseline: base[i], Vetoed: vet[i]}
		out.Deltas = append(out.Deltas, d)
		out.ClawedBack += d.ClawedBack()
	}
	return out, nil
}
