package faults

import (
	"strings"
	"testing"

	"failtrans/internal/sim"
)

func TestNviSessionDeterministicAndTerminated(t *testing.T) {
	a := NviSession(7, 200)
	b := NviSession(7, 200)
	if a != b {
		t.Error("session generation must be deterministic")
	}
	if !strings.HasSuffix(a, ":wq\n") {
		t.Error("session must end with :wq")
	}
	if len(a) < 200 {
		t.Errorf("session length %d < 200", len(a))
	}
	if NviSession(8, 200) == a {
		t.Error("different seeds should give different sessions")
	}
}

func TestPostgresSessionShape(t *testing.T) {
	qs := PostgresSession(3, 100)
	if qs[len(qs)-1] != "quit" {
		t.Error("session must end with quit")
	}
	kinds := map[string]int{}
	for _, q := range qs {
		kinds[strings.Fields(q)[0]]++
	}
	for _, k := range []string{"insert", "select", "scan"} {
		if kinds[k] == 0 {
			t.Errorf("session has no %s operations", k)
		}
	}
	if kinds["insert"] < kinds["select"] {
		t.Error("inserts should dominate (growing keyspace)")
	}
}

// smallStudy shrinks the study for test runtime.
func smallStudy(app string) *AppStudy {
	s := NewAppStudy(app)
	s.CrashTarget = 4
	s.MaxRunsPerType = 30
	s.SessionLen = 150
	return s
}

func TestAppStudyNvi(t *testing.T) {
	s := smallStudy("nvi")
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("results for %d types, want 7", len(results))
	}
	totalCrashes, totalViolations := 0, 0
	for _, tr := range results {
		t.Logf("nvi %-18s runs=%-3d crashes=%-2d violations=%-2d (%.0f%%) wrong=%d",
			tr.Kind, tr.Runs, tr.Crashes, tr.Violations, tr.ViolationPct(), tr.WrongOutput)
		totalCrashes += tr.Crashes
		totalViolations += tr.Violations
		if tr.Violations > tr.Crashes {
			t.Errorf("%v: violations exceed crashes", tr.Kind)
		}
	}
	if totalCrashes == 0 {
		t.Fatal("no fault type crashed nvi; injection inert")
	}
	if totalViolations == 0 {
		t.Error("no Lose-work violations at all; latency modeling looks wrong")
	}
	if totalViolations == totalCrashes {
		t.Error("every crash violated; immediate-crash faults should be clean")
	}
}

func TestAppStudyPostgres(t *testing.T) {
	s := smallStudy("postgres")
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	totalCrashes, totalViolations := 0, 0
	for _, tr := range results {
		t.Logf("postgres %-18s runs=%-3d crashes=%-2d violations=%-2d (%.0f%%)",
			tr.Kind, tr.Runs, tr.Crashes, tr.Violations, tr.ViolationPct())
		totalCrashes += tr.Crashes
		totalViolations += tr.Violations
	}
	if totalCrashes == 0 {
		t.Fatal("no fault type crashed postgres")
	}
}

// TestEndToEndMatchesTimeline is the paper's validation: "runs recovered
// from crashes if and only if they did not commit after fault activation."
func TestEndToEndMatchesTimeline(t *testing.T) {
	s := smallStudy("nvi")
	clean, err := s.cleanOutputs(s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, kind := range []sim.FaultKind{sim.HeapBitFlip, sim.InitFault, sim.DeleteBranch} {
		for run := int64(0); run < 20 && checked < 12; run++ {
			res, err := s.RunOne(kind, s.Seed*100000+run, clean)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Crashed {
				continue
			}
			checked++
			if res.Violation == res.Recovered {
				t.Errorf("%v run %d: violation=%v but recovered=%v (should be opposites)",
					kind, run, res.Violation, res.Recovered)
			}
		}
	}
	if checked < 4 {
		t.Fatalf("only %d crashing runs checked", checked)
	}
}

func TestOSStudySmall(t *testing.T) {
	for _, app := range []string{"nvi", "postgres"} {
		o := NewOSStudy(app)
		o.CrashTarget = 3
		o.MaxRunsPerType = 15
		o.SessionLen = 150
		results, err := o.Run()
		if err != nil {
			t.Fatal(err)
		}
		crashes, failures := 0, 0
		for _, tr := range results {
			t.Logf("%s OS %-18s runs=%-3d crashes=%-2d failed=%-2d (%.0f%%)",
				app, tr.Kind, tr.Runs, tr.Crashes, tr.FailedRecoveries, tr.FailurePct())
			crashes += tr.Crashes
			failures += tr.FailedRecoveries
			if tr.FailedRecoveries > tr.Crashes {
				t.Errorf("%v: failures exceed crashes", tr.Kind)
			}
		}
		if crashes == 0 {
			t.Fatalf("%s: no kernel fault crashed anything", app)
		}
		if failures == crashes {
			t.Errorf("%s: every crash failed recovery; stop failures should mostly recover", app)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	s := NewAppStudy("emacs")
	if _, err := s.Run(); err == nil {
		t.Error("unknown app must error")
	}
}
