package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive tags understood by the toolchain. Like go:build directives,
// failtrans directives are written with no space after the comment marker:
//
//	//failtrans:nondet <reason>   silence a detlint finding
//	//failtrans:alloc <reason>    silence a hotpathcheck finding (and stop
//	                              hot-path propagation through a call on
//	                              that line)
//	//failtrans:errok <reason>    silence a durability finding
//	//failtrans:hotpath           mark a function as a zero-allocation
//	                              hot-path root (in its doc comment)
//	//failtrans:cowok <reason>    silence a cowcheck finding
//	//failtrans:cowshared <privatizers> [prose]
//	                              mark a struct field as possibly aliasing a
//	                              frozen fork template; <privatizers> is a
//	                              comma-separated list of the calls that
//	                              must dominate every store (or "none")
//	//failtrans:intercepted       mark a function as an interception-
//	                              alphabet boundary (in its doc comment)
//	//failtrans:uninterceptible <reason>
//	                              silence an interceptcheck finding and stop
//	                              alphabet-reachability through a call on
//	                              that line
//
// The suppression tags REQUIRE a human-readable reason; the driver
// reports a directive-level diagnostic when one is missing, so CI cannot
// go green with an unexplained suppression. A trailing suppression (code
// before it on the line) applies to findings on its own line; a standalone
// comment line applies to the line directly below it.
const (
	TagNondet          = "nondet"
	TagAlloc           = "alloc"
	TagErrok           = "errok"
	TagHotpath         = "hotpath"
	TagCowshared       = "cowshared"
	TagCowok           = "cowok"
	TagIntercepted     = "intercepted"
	TagUninterceptible = "uninterceptible"
)

const directivePrefix = "//failtrans:"

// A Directive is one parsed //failtrans: comment.
type Directive struct {
	Pos    token.Pos
	Tag    string
	Reason string
}

// parseDirective extracts a failtrans directive from one comment, if
// present.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	tag, reason, _ := strings.Cut(rest, " ")
	return Directive{Pos: c.Pos(), Tag: strings.TrimSpace(tag), Reason: strings.TrimSpace(reason)}, true
}

// Directives returns every failtrans directive in a comment group, in
// source order. Annotation-driven passes (cowcheck's field annotations,
// interceptcheck's boundary marks) read them from Doc/Comment groups.
func Directives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// FindDirective returns the first directive with the given tag in a
// comment group.
func FindDirective(cg *ast.CommentGroup, tag string) (Directive, bool) {
	for _, d := range Directives(cg) {
		if d.Tag == tag {
			return d, true
		}
	}
	return Directive{}, false
}

// HotpathAnnotated reports whether a function's doc comment carries the
// //failtrans:hotpath root annotation.
func HotpathAnnotated(doc *ast.CommentGroup) bool {
	_, ok := FindDirective(doc, TagHotpath)
	return ok
}

// InterceptedAnnotated reports whether a function's doc comment carries
// the //failtrans:intercepted boundary annotation.
func InterceptedAnnotated(doc *ast.CommentGroup) bool {
	_, ok := FindDirective(doc, TagIntercepted)
	return ok
}

// directiveIndex records, per file and line, the suppression tags in
// force.
type directiveIndex struct {
	fset *token.FileSet
	// byLine maps filename -> line -> tags suppressed there.
	byLine map[string]map[int][]string
	// all collects every directive for validation.
	all []Directive
}

func newDirectiveIndex(fset *token.FileSet) *directiveIndex {
	return &directiveIndex{fset: fset, byLine: make(map[string]map[int][]string)}
}

// addFile indexes every failtrans directive of one parsed file. A trailing
// directive (code precedes it on the line) suppresses its own line only; a
// standalone comment line suppresses the line below it.
func (ix *directiveIndex) addFile(f *ast.File) {
	// occupied records, per line, the leftmost column holding a
	// non-comment token, to tell trailing directives from standalone ones.
	occupied := make(map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		pos := ix.fset.Position(n.Pos())
		if c, ok := occupied[pos.Line]; !ok || pos.Column < c {
			occupied[pos.Line] = pos.Column
		}
		return true
	})
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			ix.all = append(ix.all, d)
			pos := ix.fset.Position(d.Pos)
			lines := ix.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]string)
				ix.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], d.Tag)
			if col, ok := occupied[pos.Line]; !ok || pos.Column < col {
				lines[pos.Line+1] = append(lines[pos.Line+1], d.Tag)
			}
		}
	}
}

// suppressed reports whether tag is in force at pos.
func (ix *directiveIndex) suppressed(pos token.Pos, tag string) bool {
	if tag == "" || !pos.IsValid() {
		return false
	}
	p := ix.fset.Position(pos)
	for _, t := range ix.byLine[p.Filename][p.Line] {
		if t == tag {
			return true
		}
	}
	return false
}

// validate reports malformed directives: unknown tags (typos would
// otherwise silently suppress nothing) and suppressions without a reason.
func (ix *directiveIndex) validate(report func(Diagnostic)) {
	for _, d := range ix.all {
		switch d.Tag {
		case TagNondet, TagAlloc, TagErrok, TagCowok, TagUninterceptible:
			if d.Reason == "" {
				report(Diagnostic{Pos: d.Pos, Analyzer: "directive",
					Message: "suppression //failtrans:" + d.Tag + " requires a reason"})
			}
		case TagCowshared:
			// An annotation carrying a payload: the privatizer list is
			// mandatory ("none" for fields whose every store needs a
			// written cowok justification).
			if d.Reason == "" {
				report(Diagnostic{Pos: d.Pos, Analyzer: "directive",
					Message: "//failtrans:cowshared requires a privatizer list (or \"none\")"})
			}
		case TagHotpath, TagIntercepted:
			// Annotations, not suppressions; no reason needed.
		default:
			report(Diagnostic{Pos: d.Pos, Analyzer: "directive",
				Message: "unknown failtrans directive tag \"" + d.Tag + "\""})
		}
	}
}
