package sim

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"failtrans/internal/event"
)

// counter emits n visible outputs then finishes.
type counter struct {
	N    int
	Done int
}

func (c *counter) Name() string        { return "counter" }
func (c *counter) Init(ctx *Ctx) error { return nil }
func (c *counter) MarshalState() ([]byte, error) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(c.N))
	binary.LittleEndian.PutUint64(b[8:16], uint64(c.Done))
	return b[:], nil
}
func (c *counter) UnmarshalState(d []byte) error {
	c.N = int(binary.LittleEndian.Uint64(d[0:8]))
	c.Done = int(binary.LittleEndian.Uint64(d[8:16]))
	return nil
}
func (c *counter) Step(ctx *Ctx) Status {
	if c.Done >= c.N {
		return Done
	}
	ctx.Compute(time.Millisecond)
	ctx.Output(fmt.Sprintf("tick %d", c.Done))
	c.Done++
	return Ready
}

func TestCounterRunsToCompletion(t *testing.T) {
	w := NewWorld(1, &counter{N: 3})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("world not done")
	}
	want := []string{"tick 0", "tick 1", "tick 2"}
	if len(w.Outputs[0]) != 3 {
		t.Fatalf("outputs = %v", w.Outputs[0])
	}
	for i, s := range want {
		if w.Outputs[0][i] != s {
			t.Errorf("output[%d] = %q, want %q", i, w.Outputs[0][i], s)
		}
	}
	// Virtual time advanced by 3 compute ms plus event overheads.
	if w.Clock < 3*time.Millisecond {
		t.Errorf("clock = %v, want >= 3ms", w.Clock)
	}
	// Trace contains 3 visible events.
	vis := 0
	for _, e := range w.Trace.Events {
		if e.Kind == event.Visible {
			vis++
		}
	}
	if vis != 3 {
		t.Errorf("visible events = %d, want 3", vis)
	}
}

// pinger sends Rounds pings to peer 1 and waits for each pong.
type pinger struct {
	Rounds       int
	Sent         int
	AwaitingPong bool
}

func (p *pinger) Name() string        { return "pinger" }
func (p *pinger) Init(ctx *Ctx) error { return nil }
func (p *pinger) MarshalState() ([]byte, error) {
	var b [17]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.Rounds))
	binary.LittleEndian.PutUint64(b[8:16], uint64(p.Sent))
	if p.AwaitingPong {
		b[16] = 1
	}
	return b[:], nil
}
func (p *pinger) UnmarshalState(d []byte) error {
	p.Rounds = int(binary.LittleEndian.Uint64(d[0:8]))
	p.Sent = int(binary.LittleEndian.Uint64(d[8:16]))
	p.AwaitingPong = d[16] == 1
	return nil
}
func (p *pinger) Step(ctx *Ctx) Status {
	if p.AwaitingPong {
		m, ok := ctx.Recv()
		if !ok {
			return WaitMsg
		}
		ctx.Output("pong: " + string(m.Payload))
		p.AwaitingPong = false
		return Ready
	}
	if p.Sent >= p.Rounds {
		return Done
	}
	if err := ctx.Send(1, []byte(fmt.Sprintf("ping %d", p.Sent))); err != nil {
		ctx.Crash(err.Error())
		return Crashed
	}
	p.Sent++
	p.AwaitingPong = true
	return Ready
}

// ponger echoes every ping back.
type ponger struct {
	Seen int
	Max  int
}

func (p *ponger) Name() string        { return "ponger" }
func (p *ponger) Init(ctx *Ctx) error { return nil }
func (p *ponger) MarshalState() ([]byte, error) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.Seen))
	binary.LittleEndian.PutUint64(b[8:16], uint64(p.Max))
	return b[:], nil
}
func (p *ponger) UnmarshalState(d []byte) error {
	p.Seen = int(binary.LittleEndian.Uint64(d[0:8]))
	p.Max = int(binary.LittleEndian.Uint64(d[8:16]))
	return nil
}
func (p *ponger) Step(ctx *Ctx) Status {
	if p.Seen >= p.Max {
		return Done
	}
	m, ok := ctx.Recv()
	if !ok {
		return WaitMsg
	}
	p.Seen++
	if err := ctx.Send(m.From, m.Payload); err != nil {
		ctx.Crash(err.Error())
		return Crashed
	}
	return Ready
}

func TestPingPong(t *testing.T) {
	w := NewWorld(7, &pinger{Rounds: 3}, &ponger{Max: 3})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatalf("statuses: %v %v", w.Procs[0].Status(), w.Procs[1].Status())
	}
	if len(w.Outputs[0]) != 3 || w.Outputs[0][2] != "pong: ping 2" {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
	// Message latency must show up in the clock: 6 hops.
	if w.Clock < 6*w.Latency {
		t.Errorf("clock %v < 6 latencies", w.Clock)
	}
	// The trace's receive events must match their sends.
	hb := event.NewHB(w.Trace)
	for _, e := range w.Trace.Events {
		if e.Kind != event.Receive {
			continue
		}
		found := false
		for _, s := range w.Trace.Events {
			if s.Kind == event.Send && s.Msg == e.Msg {
				if !hb.HappensBefore(s.ID, e.ID) {
					t.Errorf("send %v not before receive %v", s.ID, e.ID)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("receive %v has no matching send", e.ID)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]string, time.Duration, int64) {
		w := NewWorld(99, &pinger{Rounds: 5}, &ponger{Max: 5})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.GlobalOutputs, w.Clock, w.EventCount
	}
	o1, c1, e1 := run()
	o2, c2, e2 := run()
	if c1 != c2 || e1 != e2 || len(o1) != len(o2) {
		t.Fatalf("nondeterministic run: %v/%v %d/%d", c1, c2, e1, e2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("output %d differs: %q vs %q", i, o1[i], o2[i])
		}
	}
}

func TestSendToUnknownProcess(t *testing.T) {
	w := NewWorld(1, &pinger{Rounds: 1})
	// Peer 1 does not exist; the pinger crashes itself on the error.
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.Procs[0].Dead() {
		t.Error("process should be dead after unrecovered crash")
	}
	if w.Procs[0].Crashes != 1 {
		t.Errorf("Crashes = %d", w.Procs[0].Crashes)
	}
}

// panicker panics mid-step; the scheduler must convert it to a crash.
type panicker struct{ counter }

func (p *panicker) Step(ctx *Ctx) Status {
	var xs []int
	_ = xs[3] // index out of range
	return Done
}

func TestPanicBecomesCrash(t *testing.T) {
	w := NewWorld(1, &panicker{})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.Procs[0].Dead() {
		t.Error("panicking process should be dead")
	}
}

// inputEcho echoes scripted input to visible output.
type inputEcho struct{ counter }

func (p *inputEcho) Step(ctx *Ctx) Status {
	in, ok := ctx.Input()
	if !ok {
		return Done
	}
	ctx.Output(string(in))
	return Ready
}

func TestScriptedInput(t *testing.T) {
	w := NewWorld(1, &inputEcho{})
	w.Procs[0].ctx.Inputs = [][]byte{[]byte("a"), []byte("b")}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(w.Outputs[0]) != 2 || w.Outputs[0][0] != "a" || w.Outputs[0][1] != "b" {
		t.Errorf("outputs = %v", w.Outputs[0])
	}
	// Input events are fixed-ND in the trace.
	for _, e := range w.Trace.Events {
		if e.Label == "input" && e.ND != event.FixedND {
			t.Errorf("input event class = %v", e.ND)
		}
	}
}

// ndUser reads the clock and a random value then outputs.
type ndUser struct{ counter }

func (p *ndUser) Step(ctx *Ctx) Status {
	if p.Done >= 2 {
		return Done
	}
	p.Done++
	now := ctx.Now()
	r := ctx.Rand()
	ctx.Output(fmt.Sprintf("%d %d", now, r))
	return Ready
}

func TestNDEventsRecorded(t *testing.T) {
	w := NewWorld(3, &ndUser{})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var trans int
	for _, e := range w.Trace.Events {
		if e.ND == event.TransientND {
			trans++
		}
	}
	if trans != 4 {
		t.Errorf("transient ND events = %d, want 4 (2 clock + 2 rand)", trans)
	}
}

// hookRecorder is a Recovery stub that records hook invocations and can
// replay ND values.
type hookRecorder struct {
	befores []string
	afters  []string
	replay  map[string][][]byte
	logged  []string
}

func (h *hookRecorder) BeforeEvent(p *Proc, kind event.Kind, nd event.NDClass, label string) {
	h.befores = append(h.befores, fmt.Sprintf("%s/%s", kind, label))
}
func (h *hookRecorder) AfterEvent(p *Proc, ev event.Event) {
	h.afters = append(h.afters, fmt.Sprintf("%s/%s", ev.Kind, ev.Label))
}
func (h *hookRecorder) SupplyND(p *Proc, label string) ([]byte, bool) {
	q := h.replay[label]
	if len(q) == 0 {
		return nil, false
	}
	v := q[0]
	h.replay[label] = q[1:]
	return v, true
}
func (h *hookRecorder) RecordND(p *Proc, label string, val []byte) bool {
	h.logged = append(h.logged, label)
	return false
}
func (h *hookRecorder) EndStep(p *Proc)                     {}
func (h *hookRecorder) OnBlocked(p *Proc) bool              { return false }
func (h *hookRecorder) OnCrash(p *Proc, reason string) bool { return false }

func TestRecoveryHooksInvoked(t *testing.T) {
	h := &hookRecorder{replay: map[string][][]byte{}}
	w := NewWorld(5, &ndUser{})
	w.Recovery = h
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.befores) == 0 || len(h.afters) == 0 {
		t.Fatal("hooks not invoked")
	}
	if len(h.befores) != len(h.afters) {
		t.Errorf("before/after imbalance: %d vs %d", len(h.befores), len(h.afters))
	}
	// ND values were offered for logging.
	if len(h.logged) != 4 {
		t.Errorf("logged offers = %v, want 4", h.logged)
	}
}

func TestNDReplayOverridesLive(t *testing.T) {
	var fixed [8]byte
	binary.LittleEndian.PutUint64(fixed[:], 4242)
	h := &hookRecorder{replay: map[string][][]byte{
		"gettimeofday": {fixed[:], fixed[:]},
		"rand":         {fixed[:], fixed[:]},
	}}
	w := NewWorld(5, &ndUser{})
	w.Recovery = h
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Outputs[0] {
		if s != "4242 4242" {
			t.Errorf("output %q, want replayed 4242s", s)
		}
	}
	// Replayed events must be recorded as logged.
	for _, e := range w.Trace.Events {
		if e.ND == event.TransientND && !e.Logged {
			t.Errorf("replayed ND event not marked logged: %v", e)
		}
	}
}

func TestRetainedRedelivery(t *testing.T) {
	w := NewWorld(11, &pinger{Rounds: 1}, &ponger{Max: 1})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	p := w.Procs[0]
	// The pong the pinger consumed is retained (no commits happened).
	if len(p.retained) != 1 {
		t.Fatalf("retained = %d, want 1", len(p.retained))
	}
	// Rollback contract: the recovery layer restores the checkpointed
	// RecvHW (here: pre-consumption) before requeueing, so the duplicate
	// filter lets the redelivered message through. Redelivery is gated
	// by consumption position; a process that asks twice at the same
	// position without progress (as this test does, since it is not
	// really re-executing) falls back to live delivery.
	p.RecvHW = map[int]int64{}
	w.RequeueRetained(p)
	if len(p.replayQueue) != 1 {
		t.Fatalf("replay queue after requeue = %d", len(p.replayQueue))
	}
	if _, ok := p.ctx.Recv(); ok {
		t.Fatal("first Recv should be gated (position not due)")
	}
	// The scheduler flushes the queue when a process blocks before the
	// due position; emulate that divergence resolution here.
	w.flushReplayQueue(p)
	if m, ok := p.ctx.Recv(); !ok || string(m.Payload) != "ping 0" {
		t.Fatalf("fallback recv = %v %v", m, ok)
	}
	w.CommitPoint(p)
	if len(p.retained) != 0 {
		t.Error("commit point must clear retained messages")
	}
}

func TestCheckpointImageRoundTrip(t *testing.T) {
	w := NewWorld(1, &counter{N: 10})
	p := w.Procs[0]
	p.InputCursor = 7
	prog := p.Prog.(*counter)
	prog.Done = 4
	img, err := p.CheckpointImage(false)
	if err != nil {
		t.Fatal(err)
	}
	prog.Done = 9
	p.InputCursor = 99
	if err := p.RestoreCheckpointImage(img); err != nil {
		t.Fatal(err)
	}
	if prog.Done != 4 || p.InputCursor != 7 {
		t.Errorf("restored Done=%d cursor=%d", prog.Done, p.InputCursor)
	}
}

func TestRestoreCheckpointImageTruncated(t *testing.T) {
	w := NewWorld(1, &counter{N: 1})
	if err := w.Procs[0].RestoreCheckpointImage([]byte{1, 2}); err == nil {
		t.Error("truncated image must be rejected")
	}
}

// sleeper sleeps between outputs; checks virtual time accounting.
type sleeper struct{ counter }

func (p *sleeper) Step(ctx *Ctx) Status {
	if p.Done >= 3 {
		return Done
	}
	p.Done++
	ctx.Output("beat")
	ctx.Sleep(100 * time.Millisecond)
	return Sleeping
}

func TestSleepAdvancesClock(t *testing.T) {
	w := NewWorld(1, &sleeper{})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Clock < 300*time.Millisecond {
		t.Errorf("clock = %v, want >= 300ms", w.Clock)
	}
}

func TestMaxTimeStopsRun(t *testing.T) {
	w := NewWorld(1, &sleeper{})
	w.MaxTime = 150 * time.Millisecond
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.AllDone() {
		t.Error("run should have been cut off by MaxTime")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	w := NewWorld(1, &sleeper{})
	w.MaxSteps = 2
	if err := w.Run(); err == nil {
		t.Error("MaxSteps overrun must error")
	}
}

func TestTraceDisabled(t *testing.T) {
	w := NewWorld(1, &counter{N: 5})
	w.RecordTrace = false
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Trace.Len() != 0 {
		t.Error("trace recorded despite RecordTrace=false")
	}
	if w.EventCount == 0 {
		t.Error("EventCount must still count")
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{Ready: "ready", WaitMsg: "wait-msg", Sleeping: "sleeping", Done: "done", Crashed: "crashed", Status(9): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := []FaultKind{NoFault, StackBitFlip, HeapBitFlip, DestReg, InitFault, DeleteBranch, DeleteInstr, OffByOne}
	want := []string{"none", "stack bit flip", "heap bit flip", "destination reg", "initialization", "delete branch", "delete instruction", "off by one"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("FaultKind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

// sigEcho outputs every signal it takes, then its scripted input.
type sigEcho struct{ counter }

func (p *sigEcho) Step(ctx *Ctx) Status {
	if sig, ok := ctx.TakeSignal(); ok {
		ctx.Output("sig:" + sig)
		return Ready
	}
	in, ok := ctx.Input()
	if !ok {
		return Done
	}
	ctx.Output(string(in))
	ctx.Sleep(time.Millisecond)
	return Sleeping
}

func TestSignalDelivery(t *testing.T) {
	w := NewWorld(1, &sigEcho{})
	w.Procs[0].ctx.Inputs = [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	w.DeliverSignal(0, "SIGWINCH", 1500*time.Microsecond)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var sigs, keys int
	for _, o := range w.Outputs[0] {
		if o == "sig:SIGWINCH" {
			sigs++
		} else {
			keys++
		}
	}
	if sigs != 1 || keys != 3 {
		t.Errorf("outputs = %v, want 1 signal + 3 keys", w.Outputs[0])
	}
	// The signal event is transient-ND in the trace.
	found := false
	for _, e := range w.Trace.Events {
		if e.Label == "signal" {
			found = true
			if e.ND != event.TransientND {
				t.Errorf("signal class = %v", e.ND)
			}
		}
	}
	if !found {
		t.Error("no signal event recorded")
	}
}
