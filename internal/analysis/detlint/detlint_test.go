package detlint_test

import (
	"testing"

	"failtrans/internal/analysis/analysistest"
	"failtrans/internal/analysis/detlint"
)

// TestDetlint runs the pass over its golden fixture, which exercises all
// three rules (wall clock, global RNG, map-ordered output), the sanctioned
// patterns that must stay silent, and a reasoned suppression.
func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata/src", detlint.New("detcore"), "detcore")
}

// TestDetlintIgnoresUnrestrictedPackages proves the pass only fires inside
// the configured deterministic core: the same fixture, analyzed with a
// restriction list that does not include it, reports nothing — so the want
// comments would all fail to match and the run must be executed without
// them being honored. We express that by restricting to a non-existent
// package and asserting no diagnostics survive.
func TestDetlintIgnoresUnrestrictedPackages(t *testing.T) {
	a := detlint.New("someother/pkg")
	// The fixture still has `want` comments; running the restricted
	// analyzer must produce zero diagnostics, so we bypass the want
	// matcher and drive the driver directly.
	res := analysistest.Load(t, "testdata/src", a, "detcore")
	for _, d := range res.Diags {
		if d.Analyzer == "detlint" {
			t.Errorf("unexpected finding outside the deterministic core: %s",
				res.Fset.Position(d.Pos))
		}
	}
}
