package treadmarks

import (
	"encoding/binary"
	"fmt"
	"testing"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/dc"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// counterWorker increments a shared counter (8 bytes at the start of page
// 0) Rounds times, each under the global lock: acquire → fault in the page
// → read-modify-write → release. It is the canonical mutual-exclusion
// workload for the DSM's lock primitive.
type counterWorker struct {
	DSM    *dsm
	Rounds int
	I      int
	Phase  int // 0 acquire, 1 fault/incr, 2 release, 3 barrier, 4 report, 5 done
}

func newCounterFleet(nprocs, rounds int) []sim.Program {
	progs := make([]sim.Program, 0, nprocs)
	for me := 0; me < nprocs; me++ {
		progs = append(progs, &counterWorker{DSM: newDSM(me, nprocs, 1), Rounds: rounds})
	}
	return progs
}

func (c *counterWorker) Name() string            { return fmt.Sprintf("counter%d", c.DSM.Me) }
func (c *counterWorker) Init(ctx *sim.Ctx) error { return nil }

func (c *counterWorker) Step(ctx *sim.Ctx) sim.Status {
	if len(c.DSM.Outbox) > 0 {
		om := c.DSM.Outbox[0]
		if err := ctx.Send(om.To, om.Msg.encode()); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		c.DSM.Outbox = c.DSM.Outbox[1:] // pop after the send (commit contract)
		return sim.Ready
	}
	if c.DSM.AwaitPage >= 0 || c.DSM.BarrierWaiting || c.DSM.LockWaiting || c.Phase == 5 {
		if m, ok := ctx.Recv(); ok {
			dm, err := decodeMsg(m.Payload)
			if err != nil {
				ctx.Crash(err.Error())
				return sim.Crashed
			}
			if err := c.DSM.Handle(dm); err != nil {
				ctx.Crash(err.Error())
				return sim.Crashed
			}
			return sim.Ready
		}
		if c.Phase == 5 {
			return sim.Done
		}
		return sim.WaitMsg
	}
	switch c.Phase {
	case 0:
		if c.I >= c.Rounds {
			// Wait for every process to finish incrementing before
			// the final read.
			c.Phase = 3
			c.DSM.EnterBarrier()
			return sim.Ready
		}
		c.DSM.AcquireLock(0)
		c.Phase = 1
		return sim.Ready
	case 1:
		if !c.DSM.Have(0) {
			c.DSM.Fault(0)
			return sim.Ready
		}
		buf := c.DSM.Pages[0]
		v := binary.LittleEndian.Uint64(buf)
		binary.LittleEndian.PutUint64(buf, v+1)
		c.I++
		c.Phase = 2
		return sim.Ready
	case 2:
		c.DSM.ReleaseLock(0)
		c.Phase = 0
		return sim.Ready
	case 3: // past barrier 1: the coordinator reads and reports while
		// the peers wait at barrier 2, still serving transfers.
		if c.DSM.Me != 0 {
			c.Phase = 4
			c.DSM.EnterBarrier()
			return sim.Ready
		}
		if !c.DSM.Have(0) {
			c.DSM.Fault(0)
			return sim.Ready
		}
		v := binary.LittleEndian.Uint64(c.DSM.Pages[0])
		ctx.Output(fmt.Sprintf("counter=%d", v))
		c.Phase = 4
		c.DSM.EnterBarrier()
		return sim.Ready
	default: // past barrier 2
		c.Phase = 5
		return sim.Done
	}
}

func (c *counterWorker) MarshalState() ([]byte, error) {
	var e apputil.Enc
	c.DSM.marshal(&e)
	e.Int(c.Rounds)
	e.Int(c.I)
	e.Int(c.Phase)
	return e.B, nil
}

func (c *counterWorker) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	dsmState, err := unmarshalDSM(&d)
	if err != nil {
		return err
	}
	c.DSM = dsmState
	c.Rounds = d.Int()
	c.I = d.Int()
	c.Phase = d.Int()
	return d.Err
}

// TestLockMutualExclusion: 4 processes × 25 increments under the lock must
// total exactly 100 — lost updates would show ownership races.
func TestLockMutualExclusion(t *testing.T) {
	w := sim.NewWorld(17, newCounterFleet(4, 25)...)
	w.MaxSteps = 2_000_000
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		for _, p := range w.Procs {
			t.Logf("%s: %v", p.Prog.Name(), p.Status())
		}
		t.Fatal("fleet did not finish")
	}
	if len(w.Outputs[0]) != 1 || w.Outputs[0][0] != "counter=100" {
		t.Errorf("outputs = %v, want counter=100", w.Outputs[0])
	}
}

// TestLockFIFOUnderContention: the manager's FIFO queue serves waiters in
// arrival order (observable as a deadlock-free, complete run even with
// all four contending every round).
func TestLockFIFOUnderContention(t *testing.T) {
	w := sim.NewWorld(23, newCounterFleet(4, 40)...)
	w.MaxSteps = 4_000_000
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("contended run did not finish")
	}
	if w.Outputs[0][0] != "counter=160" {
		t.Errorf("counter = %v, want 160", w.Outputs[0])
	}
}

// TestLocksSurviveStopFailures: crashes of both a lock holder and the lock
// manager's clients must not lose increments under CPVS.
func TestLocksSurviveStopFailures(t *testing.T) {
	for _, pol := range []protocol.Policy{protocol.CPVS, protocol.CANDLog} {
		w := sim.NewWorld(17, newCounterFleet(4, 20)...)
		w.MaxSteps = 4_000_000
		d := dc.New(w, pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(1, 30)
		w.ScheduleStop(2, 90)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			for _, p := range w.Procs {
				t.Logf("%s: %v crashes=%d", p.Prog.Name(), p.Status(), p.Crashes)
			}
			t.Fatalf("%s: fleet did not finish after failures", pol.Name)
		}
		if d.Stats.Recoveries < 2 {
			t.Errorf("%s: recoveries = %d", pol.Name, d.Stats.Recoveries)
		}
		if got := w.Outputs[0][len(w.Outputs[0])-1]; got != "counter=80" {
			t.Errorf("%s: final %q, want counter=80 (no lost or doubled increments)", pol.Name, got)
		}
	}
}

func TestLockStateMarshalRoundTrip(t *testing.T) {
	d := newDSM(0, 4, 1)
	d.AcquireLock(3)
	d.LockQueue[3] = []int{2, 1}
	d.LockOwner[5] = 2
	var e apputil.Enc
	d.marshal(&e)
	got, err := unmarshalDSM(&apputil.Dec{B: e.B})
	if err != nil {
		t.Fatal(err)
	}
	if !got.HeldLocks[3] || got.LockOwner[5] != 2 || len(got.LockQueue[3]) != 2 {
		t.Errorf("lock state diverged: %+v", got)
	}
}
