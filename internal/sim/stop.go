package sim

import "sort"

// ScheduleStop arranges a stop failure for process pid: at the start of its
// next step once it has executed at least atStep events, the process
// crashes without executing anything — modeling a power loss or frozen
// machine. The recovery layer (if any) then rolls it back like any other
// crash.
func (w *World) ScheduleStop(pid, atStep int) {
	p := w.Procs[pid]
	p.stops = append(p.stops, atStep)
	sort.Ints(p.stops)
}

// pendingStop pops a due stop failure.
func (p *Proc) pendingStop() bool {
	if len(p.stops) == 0 || p.Steps < p.stops[0] {
		return false
	}
	p.stops = p.stops[1:]
	return true
}
