package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// safeStep runs one Program step, converting a runtime panic — an index out
// of range, a nil dereference — into a crash event, exactly as corrupted
// state crashes a real process. Applications detect faults and fail before
// producing incorrect output (the paper's fail-before-output assumption);
// the panic path models the detection the hardware/runtime provides for
// free.
func (p *Proc) safeStep() (st Status) {
	defer func() {
		if r := recover(); r != nil {
			p.ctx.crashed = true
			p.ctx.crashReason = fmt.Sprintf("runtime panic: %v", r)
			st = Crashed
		}
	}()
	return p.Prog.Step(p.ctx)
}

// CheckpointImage assembles the image Discount Checking must persist for
// this process: the application state plus the session/kernel state the
// library reconstructs during recovery — the input cursor, the message
// sequence counters, and (when an OS is attached) the per-process kernel
// blob.
//
// With essential=true and a Program implementing PartialState, only the
// application's essential state is captured (the §2.6 mitigation); the
// image records which form it holds so RestoreCheckpointImage can dispatch.
func (p *Proc) CheckpointImage(essential bool) ([]byte, error) {
	return p.AppendCheckpointImage(nil, essential)
}

// appendI64 appends v to buf in the image's little-endian wire format.
func appendI64(buf []byte, v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(buf, b[:]...)
}

// AppendCheckpointImage appends the checkpoint image to buf and returns the
// extended slice — the zero-allocation form of CheckpointImage for callers
// (Discount Checking's commit path) that reuse one buffer per process
// across commit cycles.
//
//failtrans:hotpath
func (p *Proc) AppendCheckpointImage(buf []byte, essential bool) ([]byte, error) {
	var app []byte
	var err error
	mode := byte(0)
	if ps, ok := p.Prog.(PartialState); ok && essential {
		mode = 1
		app, err = ps.MarshalEssential()
	} else {
		app, err = p.Prog.MarshalState()
	}
	if err != nil {
		//failtrans:alloc cold error path: a failed marshal aborts the commit, so the formatting never runs in a committing cycle
		return nil, fmt.Errorf("sim: marshal %s state: %w", p.Prog.Name(), err)
	}
	var kern []byte
	if p.World.OS != nil {
		kern = p.World.OS.SaveProcState(p.Index)
	}
	buf = append(buf, mode)
	buf = appendI64(buf, int64(p.InputCursor))
	buf = appendI64(buf, p.SendSeq)
	senders := p.ckptSenders[:0]
	for s := range p.RecvHW {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	p.ckptSenders = senders
	buf = appendI64(buf, int64(len(senders)))
	for _, s := range senders {
		buf = appendI64(buf, int64(s))
		buf = appendI64(buf, p.RecvHW[s])
	}
	buf = appendI64(buf, int64(len(app)))
	buf = append(buf, app...)
	buf = appendI64(buf, int64(len(kern)))
	buf = append(buf, kern...)
	return buf, nil
}

// Checkpoint images are validated with static errors: restore sits on the
// rollback hot path, and a malformed image aborts recovery either way, so
// the byte position a formatted message would carry isn't worth an
// allocation per check.
var (
	errImageEmpty     = errors.New("sim: empty checkpoint image")
	errImageTruncated = errors.New("sim: checkpoint image truncated")
	errImageOverrun   = errors.New("sim: checkpoint image section overruns")
)

// getI64 decodes the next little-endian word of a checkpoint image,
// advancing *pos.
func getI64(img []byte, pos *int) (int64, error) {
	if *pos+8 > len(img) {
		return 0, errImageTruncated
	}
	v := int64(binary.LittleEndian.Uint64(img[*pos:]))
	*pos += 8
	return v, nil
}

// RestoreCheckpointImage is the inverse of CheckpointImage: it reloads
// application state (full or essential, per the image's mode byte), the
// session counters, and kernel state. Like its Append counterpart it is
// allocation-free in the steady state — the receive-highwater map is
// cleared and refilled in place rather than rebuilt, and image parsing
// reads words directly out of img.
//
//failtrans:hotpath
func (p *Proc) RestoreCheckpointImage(img []byte) error {
	if len(img) < 1 {
		return errImageEmpty
	}
	mode := img[0]
	img = img[1:]
	pos := 0
	cursor, err := getI64(img, &pos)
	if err != nil {
		return err
	}
	sendSeq, err := getI64(img, &pos)
	if err != nil {
		return err
	}
	nhw, err := getI64(img, &pos)
	if err != nil {
		return err
	}
	if pos+int(nhw)*16 > len(img) {
		return errImageTruncated
	}
	hwPos := pos
	pos += int(nhw) * 16
	appLen, err := getI64(img, &pos)
	if err != nil {
		return err
	}
	if appLen < 0 || pos+int(appLen) > len(img) {
		return errImageOverrun
	}
	app := img[pos : pos+int(appLen)]
	pos += int(appLen)
	kernLen, err := getI64(img, &pos)
	if err != nil {
		return err
	}
	if kernLen < 0 || pos+int(kernLen) > len(img) {
		return errImageOverrun
	}
	kern := img[pos : pos+int(kernLen)]
	if mode == 1 {
		ps, ok := p.Prog.(PartialState)
		if !ok {
			//failtrans:alloc cold error path: a mode-mismatched image aborts recovery outright
			return fmt.Errorf("sim: essential image for %s, which lacks PartialState", p.Prog.Name())
		}
		if err := ps.UnmarshalEssential(app); err != nil {
			//failtrans:alloc cold error path: a corrupt image aborts recovery outright
			return fmt.Errorf("sim: unmarshal %s essential state: %w", p.Prog.Name(), err)
		}
	} else if err := p.Prog.UnmarshalState(app); err != nil {
		//failtrans:alloc cold error path: a corrupt image aborts recovery outright
		return fmt.Errorf("sim: unmarshal %s state: %w", p.Prog.Name(), err)
	}
	// Everything below here cannot fail: the image is fully validated, so
	// the in-place update leaves no torn state behind.
	p.InputCursor = int(cursor)
	p.SendSeq = sendSeq
	if p.RecvHW == nil {
		//failtrans:alloc first restore of a fork that started with no highwater map; every later rollback reuses it
		p.RecvHW = make(map[int]int64, nhw)
	} else {
		clear(p.RecvHW)
	}
	for i := int64(0); i < nhw; i++ {
		s := int64(binary.LittleEndian.Uint64(img[hwPos:]))
		v := int64(binary.LittleEndian.Uint64(img[hwPos+8:]))
		hwPos += 16
		p.RecvHW[int(s)] = v
	}
	if p.World.OS != nil {
		p.World.OS.RestoreProcState(p.Index, kern)
	}
	return nil
}
