package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"failtrans/internal/obs"
)

// serialReference runs the loop Run promises to reproduce.
func serialReference(n int, job func(i int) (int, error), accept func(i int, v int) bool) ([]int, []int, error) {
	var idx, vals []int
	for i := 0; i < n; i++ {
		v, err := job(i)
		if err != nil {
			return idx, vals, err
		}
		idx = append(idx, i)
		vals = append(vals, v)
		if !accept(i, v) {
			break
		}
	}
	return idx, vals, nil
}

// jitteryJob computes a deterministic value after a scheduling-dependent
// delay, so parallel completion order differs from index order.
func jitteryJob(seed int64) func(i int) (int, error) {
	return func(i int) (int, error) {
		r := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
		time.Sleep(time.Duration(r.Intn(300)) * time.Microsecond)
		return i*i + int(seed), nil
	}
}

func TestParallelMatchesSerialWithEarlyExit(t *testing.T) {
	for _, workers := range []int{2, 4, 9} {
		for _, stopAt := range []int{0, 1, 7, 23, 39} {
			job := jitteryJob(int64(workers * 1000))
			mkAccept := func(got *[]int) func(int, int) bool {
				return func(i, v int) bool {
					*got = append(*got, i)
					return i < stopAt
				}
			}
			var wantIdx []int
			wantAccept := mkAccept(&wantIdx)
			wi, _, err := serialReference(40, job, wantAccept)
			if err != nil {
				t.Fatal(err)
			}
			var gotIdx []int
			err = Run(Config{Workers: workers}, 40, job, mkAccept(&gotIdx))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotIdx, wi) {
				t.Errorf("workers=%d stopAt=%d: accepted %v, serial accepted %v", workers, stopAt, gotIdx, wi)
			}
		}
	}
}

func TestAcceptOrderStrict(t *testing.T) {
	next := 0
	err := Run(Config{Workers: 8}, 100, jitteryJob(7), func(i, v int) bool {
		if i != next {
			t.Fatalf("accepted index %d, want %d (out of order)", i, next)
		}
		if want := i*i + 7; v != want {
			t.Fatalf("accept(%d) got value %d, want %d", i, v, want)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 100 {
		t.Fatalf("accepted %d runs, want 100", next)
	}
}

func TestErrorPropagatedAtSerialPosition(t *testing.T) {
	boom := errors.New("boom")
	job := func(i int) (int, error) {
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		if i == 13 {
			return 0, boom
		}
		return i, nil
	}
	var accepted []int
	err := Run(Config{Workers: 6}, 50, job, func(i, v int) bool {
		accepted = append(accepted, i)
		return true
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Everything before the failing index, and nothing at or after it.
	if len(accepted) != 13 {
		t.Fatalf("accepted %d runs before the error, want 13: %v", len(accepted), accepted)
	}
	for k, i := range accepted {
		if i != k {
			t.Fatalf("accepted[%d] = %d", k, i)
		}
	}
}

func TestParallelDeterministicAcrossRepeats(t *testing.T) {
	run := func() []int {
		var got []int
		err := Run(Config{Workers: 5}, 60, jitteryJob(99), func(i, v int) bool {
			got = append(got, v)
			return v < 99+30*30
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := run()
	for rep := 0; rep < 5; rep++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("repeat %d diverged: %v vs %v", rep, again, first)
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := obs.NewCampaignMetrics(4)
	err := Run(Config{Workers: 4, Metrics: m}, 200, jitteryJob(3), func(i, v int) bool {
		return i < 20
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Accepted != 21 {
		t.Errorf("Accepted = %d, want 21", m.Accepted)
	}
	if m.Phases != 1 {
		t.Errorf("Phases = %d, want 1", m.Phases)
	}
	// Every dispatched run was either accepted or discarded; speculation
	// stays within the credit window past the stop point.
	var workerRuns int64
	for i := range m.Workers {
		workerRuns += m.Workers[i].Runs
	}
	if workerRuns != m.Accepted+m.Discarded {
		t.Errorf("worker runs %d != accepted %d + discarded %d", workerRuns, m.Accepted, m.Discarded)
	}
	if m.Dispatched < m.Accepted || m.Dispatched > m.Accepted+int64(4*speculation)+4 {
		t.Errorf("Dispatched = %d outside [%d, %d]: speculation unbounded?",
			m.Dispatched, m.Accepted, m.Accepted+int64(4*speculation)+4)
	}
	if m.SerialRuns != 0 {
		t.Errorf("SerialRuns = %d on the parallel path", m.SerialRuns)
	}
}

func TestSerialPathMetricsAndSpan(t *testing.T) {
	m := obs.NewCampaignMetrics(1)
	tr := obs.NewTracer()
	err := Run(Config{Workers: 1, Phase: "unit", Metrics: m, Tracer: tr}, 10,
		func(i int) (int, error) { return i, nil },
		func(i, v int) bool { return i < 4 })
	if err != nil {
		t.Fatal(err)
	}
	if m.SerialRuns != 5 || m.Accepted != 5 {
		t.Errorf("serial runs=%d accepted=%d, want 5/5", m.SerialRuns, m.Accepted)
	}
	if tr.Len() != 1 {
		t.Errorf("tracer has %d events, want 1 progress span", tr.Len())
	}
}

func TestZeroAndTinyN(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		for _, workers := range []int{1, 8} {
			var got []int
			err := Run(Config{Workers: workers}, n,
				func(i int) (int, error) { return i, nil },
				func(i, v int) bool { got = append(got, i); return true })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Errorf("n=%d workers=%d accepted %v", n, workers, got)
			}
		}
	}
}

func TestManyPhasesShareMetrics(t *testing.T) {
	m := obs.NewCampaignMetrics(3)
	tr := obs.NewTracer()
	for phase := 0; phase < 4; phase++ {
		err := Run(Config{Workers: 3, Phase: fmt.Sprintf("phase-%d", phase), Metrics: m, Tracer: tr}, 12,
			jitteryJob(int64(phase)),
			func(i, v int) bool { return i < 6 })
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Phases != 4 {
		t.Errorf("Phases = %d", m.Phases)
	}
	if m.Accepted != 4*7 {
		t.Errorf("Accepted = %d, want 28", m.Accepted)
	}
	if tr.Len() != 4 {
		t.Errorf("tracer has %d spans, want 4", tr.Len())
	}
}
