package protocol

import "fmt"

// EventMix summarizes an application's event profile, per process per unit
// of work (the absolute scale cancels out; only ratios matter).
type EventMix struct {
	Visible int
	// Sends counts messages to other processes.
	Sends int
	// Receives counts message receive events.
	Receives int
	// Input counts fixed-ND user input events.
	Input int
	// OtherND counts the remaining transient ND (clock reads, signals,
	// rand) that logging protocols do not capture.
	OtherND int
	// Distributed reports whether the computation has multiple
	// processes (2PC only makes sense then).
	Distributed bool
}

func (m EventMix) loggable() int { return m.Input + m.Receives }
func (m EventMix) nd() int       { return m.Input + m.Receives + m.OtherND }

// Recommend picks the measured protocol the paper's results say should win
// for this event mix, with the reasoning. The paper's §3 observation: "the
// protocols that perform best for each application are the ones that
// exploit the infrequent class of events for that application in deciding
// when to commit."
func Recommend(m EventMix) (Policy, string) {
	switch {
	case m.Distributed && m.Visible*10 < m.Sends+m.nd():
		// TreadMarks-shaped: copious messaging, almost no visible
		// events. Committing before sends (CPVS/CBNDVS) or after ND
		// (CAND) is ruinous; coordinate on the rare visibles instead.
		return CBNDV2PC, "visible events are the rare class: coordinate commits on them " +
			"and never commit for sends (the paper's TreadMarks result)"
	case m.OtherND == 0 && m.loggable() > 0:
		// Everything non-deterministic is loggable: logging removes
		// every forced commit.
		return CBNDVSLog, "all non-determinism is user input or receives: log it and " +
			"commit (almost) never (the paper's nvi CBNDVS-LOG result)"
	case m.loggable() > 0 && m.OtherND*5 < m.loggable():
		// nvi-shaped: ND dominated by input/receives with a little
		// residual clock/signal ND.
		return CBNDVSLog, "most non-determinism is loggable: logging collapses commit " +
			"frequency to the residual transient events"
	case m.nd()*2 < m.Visible+m.Sends:
		// magic-shaped: commits per visible exceed the ND rate, so
		// committing only when ND is actually pending wins.
		return CBNDVS, "non-determinism is the rare class: commit only between an ND " +
			"event and the next visible or send (the paper's magic result)"
	default:
		// xpilot-shaped: both classes are frequent per process; 2PC
		// only multiplies commits (the paper's noted exception), and
		// logging cannot capture the clock/effect ND. CBNDVS is the
		// least-bad general choice.
		return CBNDVS, "no rare event class exists; avoid 2PC (it raises the commit " +
			"rate, as the paper observed for xpilot) and skip no-op commits"
	}
}

// RecommendString renders the recommendation for humans.
func RecommendString(m EventMix) string {
	p, why := Recommend(m)
	return fmt.Sprintf("%s — %s", p.Name, why)
}
