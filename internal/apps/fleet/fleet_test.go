package fleet

import (
	"fmt"
	"testing"
	"time"

	"failtrans/internal/dc"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// run builds and runs a fleet world, returning it for inspection.
func run(t *testing.T, cfg Config, scan bool, pol *protocol.Policy) *sim.World {
	t.Helper()
	w := sim.NewWorld(17, Fleet(cfg)...)
	w.ScanSched = scan
	w.RecordTrace = false
	w.MaxSteps = 10_000_000
	if pol != nil {
		d := dc.New(w, *pol, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFleetRunsToCompletion(t *testing.T) {
	cfg := Sized(200)
	w := run(t, cfg, false, nil)
	if !w.AllDone() {
		for _, p := range w.Procs {
			if p.Status() != sim.Done {
				t.Logf("proc %d (%s): %v", p.Index, p.Prog.Name(), p.Status())
			}
		}
		t.Fatal("fleet did not finish")
	}
	// Every reporter printed one line per round, nobody else printed.
	want := cfg.Reporters * cfg.Rounds
	if got := len(w.GlobalOutputs); got != want {
		t.Fatalf("visible outputs = %d, want %d (= reporters×rounds)", got, want)
	}
	// Virtual time is bounded by rounds of think time, not fleet size.
	if w.Clock > time.Second {
		t.Errorf("clock = %v, want well under 1s", w.Clock)
	}
}

// TestFleetScanIndexedIdentical: the readiness index reproduces the legacy
// scan byte-identically on the fleet workload — same outputs, clock, step
// count, and per-proc event positions.
func TestFleetScanIndexedIdentical(t *testing.T) {
	cfg := Sized(300)
	a := run(t, cfg, true, nil)
	b := run(t, cfg, false, nil)
	if a.Clock != b.Clock || a.StepCount() != b.StepCount() || a.EventCount != b.EventCount {
		t.Fatalf("scan (clock=%v steps=%d events=%d) != indexed (clock=%v steps=%d events=%d)",
			a.Clock, a.StepCount(), a.EventCount, b.Clock, b.StepCount(), b.EventCount)
	}
	if fmt.Sprint(a.GlobalOutputs) != fmt.Sprint(b.GlobalOutputs) {
		t.Fatal("scan and indexed schedulers produced different visible output")
	}
	for i := range a.Procs {
		if a.Procs[i].Steps != b.Procs[i].Steps {
			t.Fatalf("proc %d: scan %d steps, indexed %d", i, a.Procs[i].Steps, b.Procs[i].Steps)
		}
	}
}

// TestFleetUnderProtocols: the fleet satisfies the checkpoint contract, so
// it completes under an uncoordinated and a coordinated protocol, and the
// visible output matches the unrecovered baseline.
func TestFleetUnderProtocols(t *testing.T) {
	cfg := Sized(120)
	base := run(t, cfg, false, nil)
	for _, name := range []string{"CPVS", "CPV-2PC"} {
		pol, err := protocol.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w := run(t, cfg, false, &pol)
		if !w.AllDone() {
			t.Fatalf("%s: fleet did not finish", name)
		}
		// Commit costs shift the global interleaving, but each process's
		// own visible sequence must match the baseline exactly.
		for i := range w.Outputs {
			if fmt.Sprint(w.Outputs[i]) != fmt.Sprint(base.Outputs[i]) {
				t.Fatalf("%s: proc %d visible output differs from baseline", name, i)
			}
		}
	}
}

// TestFleetStateRoundTrip: marshal → unmarshal reproduces server and client
// state.
func TestFleetStateRoundTrip(t *testing.T) {
	s := NewServer(Sized(100), 0)
	s.Byes = 3
	s.Pending = []reply{{To: 9, Payload: []byte{msgReply, 1, 2}}}
	blob, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(Sized(100), 0)
	if err := s2.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if s2.Byes != 3 || len(s2.Pending) != 1 || s2.Pending[0].To != 9 {
		t.Fatalf("server state did not round-trip: %+v", s2)
	}
	c := NewClient(Sized(100), 4)
	c.Phase = clAwait
	c.Round = 7
	blob, err = c.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(Sized(100), 4)
	if err := c2.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if c2.Phase != clAwait || c2.Round != 7 {
		t.Fatalf("client state did not round-trip: %+v", c2)
	}
}
