// Package trace serializes recorded event traces and computes summary
// statistics over them, so runs can be archived, diffed, and re-checked
// offline (cmd/ftsim can dump a trace; the checkers in internal/recovery
// can be re-run over a loaded one).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"failtrans/internal/event"
)

// jsonEvent is the stable on-disk form of one event.
type jsonEvent struct {
	P      int    `json:"p"`
	I      int    `json:"i"`
	Kind   uint8  `json:"k"`
	ND     uint8  `json:"nd,omitempty"`
	Logged bool   `json:"lg,omitempty"`
	Msg    int64  `json:"m,omitempty"`
	Peer   int    `json:"pe,omitempty"`
	Label  string `json:"l,omitempty"`
}

type header struct {
	Version  int `json:"version"`
	NumProcs int `json:"numProcs"`
	Events   int `json:"events"`
}

// Save writes a trace as a JSON-lines stream: one header line, then one
// line per event.
func Save(w io.Writer, t *event.Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Version: 1, NumProcs: t.NumProcs, Events: len(t.Events)}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range t.Events {
		je := jsonEvent{
			P: e.ID.P, I: e.ID.I, Kind: uint8(e.Kind), ND: uint8(e.ND),
			Logged: e.Logged, Msg: e.Msg, Peer: e.Peer, Label: e.Label,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save, re-validating event ordering.
func Load(r io.Reader) (*event.Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	if h.NumProcs <= 0 || h.NumProcs > 1<<16 {
		return nil, fmt.Errorf("trace: implausible process count %d", h.NumProcs)
	}
	t := event.NewTrace(h.NumProcs)
	for i := 0; i < h.Events; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		_, err := t.Append(event.Event{
			ID:     event.ID{P: je.P, I: je.I},
			Kind:   event.Kind(je.Kind),
			ND:     event.NDClass(je.ND),
			Logged: je.Logged,
			Msg:    je.Msg,
			Peer:   je.Peer,
			Label:  je.Label,
		})
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return t, nil
}

// Summary aggregates a trace's event mix.
type Summary struct {
	NumProcs int
	Events   int
	ByKind   map[event.Kind]int
	// EffectivelyND counts events still non-deterministic after logging.
	EffectivelyND int
	// Commits per process.
	CommitsPerProc []int
	// MessagesMatched counts receives whose send is in the trace.
	MessagesMatched   int
	MessagesUnmatched int
}

// Summarize computes a Summary.
func Summarize(t *event.Trace) Summary {
	s := Summary{
		NumProcs:       t.NumProcs,
		Events:         len(t.Events),
		ByKind:         make(map[event.Kind]int),
		CommitsPerProc: make([]int, t.NumProcs),
	}
	sends := make(map[int64]bool)
	for _, e := range t.Events {
		s.ByKind[e.Kind]++
		if e.EffectivelyND() {
			s.EffectivelyND++
		}
		switch e.Kind {
		case event.Commit:
			s.CommitsPerProc[e.ID.P]++
		case event.Send:
			sends[e.Msg] = true
		case event.Receive:
			if sends[e.Msg] {
				s.MessagesMatched++
			} else {
				s.MessagesUnmatched++
			}
		}
	}
	return s
}

// String renders the summary in one block.
func (s Summary) String() string {
	return fmt.Sprintf(
		"procs=%d events=%d visible=%d send=%d recv=%d commit=%d effND=%d matched=%d unmatched=%d",
		s.NumProcs, s.Events, s.ByKind[event.Visible], s.ByKind[event.Send],
		s.ByKind[event.Receive], s.ByKind[event.Commit], s.EffectivelyND,
		s.MessagesMatched, s.MessagesUnmatched)
}
