// Package interceptcheck enforces interception completeness, the paper's
// central contract: generic recovery is only sound when every
// externally-visible effect of the recoverable core flows through the
// intercepted event alphabet. An effect the recovery layer never sees —
// a direct file write, a socket send, a wall-clock read feeding output —
// silently breaks Save-work, because after a failure the environment has
// committed to an event the protocol cannot re-derive.
//
// The pass classifies functions three ways: workload (defined in a
// recoverable-core package: the apps, the simulated kernel, the protocol
// stacks), boundary (defined in an alphabet-implementation package — dc,
// sim, stablestore — or annotated //failtrans:intercepted in its doc
// comment), and everything else. It collects, per function, the direct
// effectful calls (os file mutation, any net/syscall/os-exec use, writes
// on *os.File, wall-clock reads, printing to the real stdout, and any
// direct use of the stable-storage API) plus the static call edges, then
// runs whole-program reachability from every workload function, stopping
// at boundaries: an effect inside or reachable from workload code without
// passing a boundary is a finding. Effects below a boundary are the
// alphabet's own implementation and sanctioned.
//
// //failtrans:uninterceptible <reason> suppresses a finding at the effect
// site and, on a call line, stops reachability through that call — the
// mandatory-reason escape hatch for effects the author asserts cannot be
// intercepted.
package interceptcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"failtrans/internal/analysis"
)

// Config names the package sets the contract is defined over. Entries are
// import-path prefixes: "x/internal/apps" covers "x/internal/apps/nvi".
type Config struct {
	// Core packages hold workload code: every function defined there is a
	// reachability root.
	Core []string
	// Boundary packages implement the intercepted event alphabet;
	// reachability stops at their functions, and their own effects are
	// sanctioned.
	Boundary []string
	// StableStore packages may only be used from dc; any direct call from
	// reachable workload code is an effect.
	StableStore []string
}

// New returns the interceptcheck analyzer for the given package sets.
func New(cfg Config) *analysis.Analyzer {
	c := &checker{cfg: cfg}
	return &analysis.Analyzer{
		Name:        "interceptcheck",
		Doc:         "externally-visible effects in the recoverable core must flow through the intercepted event alphabet",
		SuppressTag: analysis.TagUninterceptible,
		Run:         c.run,
		Finish:      c.finish,
	}
}

// fnFact summarizes one function for the whole-program phase.
type fnFact struct {
	fn       *types.Func
	core     bool
	boundary bool
	effects  []effect
	callees  []*types.Func
}

type effect struct {
	pos  token.Pos
	what string
}

type checker struct {
	cfg Config
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (c *checker) run(pass *analysis.Pass) error {
	path := pass.Pkg.Path
	core := hasPrefix(path, c.cfg.Core)
	boundaryPkg := hasPrefix(path, c.cfg.Boundary)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := &fnFact{
				fn:       fn,
				core:     core,
				boundary: boundaryPkg || analysis.InterceptedAnnotated(fd.Doc),
			}
			c.collect(pass, fd.Body, fact)
			pass.ExportObjectFact(fn, fact)
		}
	}
	return nil
}

// collect gathers one function's direct effects and call edges. A call on
// a line suppressed with //failtrans:uninterceptible contributes neither:
// the written reason sanctions the whole subtree.
func (c *checker) collect(pass *analysis.Pass, body *ast.BlockStmt, fact *fnFact) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.Suppressed(call.Pos()) {
			return true // reasoned escape hatch: no effect, no edge
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if b.Name() == "print" || b.Name() == "println" {
					fact.effects = append(fact.effects, effect{call.Pos(), "builtin " + b.Name() + " (writes the real stderr)"})
				}
				return true
			}
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil {
			return true
		}
		if what, ok := c.effectOf(fn, call, info); ok {
			fact.effects = append(fact.effects, effect{call.Pos(), what})
			return true
		}
		fact.callees = append(fact.callees, fn)
		return true
	})
}

// osFileMutators are the os package functions that change the real file
// system or process environment.
var osFileMutators = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "CreateTemp": true,
	"Truncate": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Link": true, "Symlink": true, "Setenv": true, "Unsetenv": true,
	"Exit": true, "StartProcess": true, "Pipe": true,
}

// osFileMethods are the (*os.File) methods that emit bytes to the real
// world.
var osFileMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Truncate": true, "Sync": true, "Chmod": true,
}

// wallClock are the time functions whose results make output depend on
// the real clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// effectOf classifies a resolved call as an externally-visible effect.
func (c *checker) effectOf(fn *types.Func, call *ast.CallExpr, info *types.Info) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "os":
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok &&
					named.Obj().Name() == "File" && osFileMethods[name] {
					return "(*os.File)." + name, true
				}
			}
			return "", false
		}
		if osFileMutators[name] {
			return "os." + name, true
		}
	case "time":
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() == nil && wallClock[name] {
			return "time." + name + " (wall clock)", true
		}
	case "fmt":
		switch name {
		case "Print", "Println", "Printf":
			return "fmt." + name + " (writes the real stdout)", true
		case "Fprint", "Fprintln", "Fprintf":
			if len(call.Args) > 0 && isStdStream(info, call.Args[0]) {
				return "fmt." + name + " to os.Stdout/os.Stderr", true
			}
		}
	}
	root := pkg.Path()
	if i := strings.Index(root, "/"); i >= 0 {
		root = root[:i]
	}
	switch root {
	case "net", "syscall":
		return pkg.Path() + "." + name, true
	}
	if pkg.Path() == "os/exec" {
		return "os/exec." + name, true
	}
	if hasPrefix(pkg.Path(), c.cfg.StableStore) {
		return "direct stable-store call " + shortPath(pkg.Path()) + "." + name, true
	}
	return "", false
}

func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

func shortPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// finish runs whole-program reachability from every workload function and
// reports the effects of every function reached without crossing a
// boundary.
func (c *checker) finish(f *analysis.Finish) {
	facts := f.AllObjectFacts()
	byFn := make(map[*types.Func]*fnFact, len(facts))
	var roots []*fnFact
	for _, of := range facts {
		fact := of.Fact.(*fnFact)
		byFn[fact.fn] = fact
		if fact.core && !fact.boundary {
			roots = append(roots, fact)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].fn.Pos() < roots[j].fn.Pos() })

	// witness records, per reached function, the workload root that first
	// reaches it (deterministic: roots are position-sorted, BFS).
	witness := make(map[*types.Func]*types.Func)
	queue := make([]*fnFact, 0, len(roots))
	for _, r := range roots {
		if _, seen := witness[r.fn]; seen {
			continue
		}
		witness[r.fn] = r.fn
		queue = append(queue, r)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, callee := range cur.callees {
				cf, ok := byFn[callee]
				if !ok || cf.boundary {
					continue // unknown (stdlib/interface) or alphabet implementation
				}
				if _, seen := witness[callee]; seen {
					continue
				}
				witness[callee] = witness[cur.fn]
				queue = append(queue, cf)
			}
		}
	}

	for _, of := range facts { // position-sorted
		fact := of.Fact.(*fnFact)
		root, reached := witness[fact.fn]
		if !reached {
			continue
		}
		via := "in workload function " + fact.fn.FullName()
		if root != fact.fn {
			via = "reachable from workload function " + root.FullName()
		}
		for _, e := range fact.effects {
			f.Reportf(e.pos,
				"%s bypasses the intercepted event alphabet (%s); route it through the dc/kernel/sim interception surface or suppress with //failtrans:uninterceptible <reason>",
				e.what, via)
		}
	}
}
