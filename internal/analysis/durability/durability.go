// Package durability reports discarded errors from the operations that
// make storage stable — the exact bug class of the FileStore torn-append
// fix, where a mishandled write error let replay silently drop committed
// records. An fsync that fails without anyone noticing is indistinguishable
// from an fsync that never ran; every error from the durability surface
// must be handled or explicitly waved off with a written reason.
//
// A call's error is "discarded" when the call is an expression statement,
// is deferred or spawned with go, or has every error result assigned to
// the blank identifier. The durability surface is:
//
//   - methods named Sync, Truncate, Seek, or Flush, on any receiver
//   - os.Rename (and os.Link/os.Symlink), whose loss breaks atomic
//     replacement
//   - Close on a write path: a receiver that, in the same function, is
//     also written through (Write/WriteString/WriteAt/Sync/Truncate/Seek)
//     or was opened by os.Create/os.OpenFile — for a writer, Close is the
//     last chance to observe a delayed write failure
//   - any error-returning function of the configured strict packages (the
//     stablestore / commit APIs), whose errors are recovery-correctness
//     signals by construction
//
// `//failtrans:errok <reason>` on the line (or the line above) silences a
// finding; the reason is mandatory.
package durability

import (
	"go/ast"
	"go/types"

	"failtrans/internal/analysis"
)

// New returns the durability analyzer. strictPkgs are import paths whose
// every discarded error is reported regardless of the callee's name.
func New(strictPkgs ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "durability",
		Doc:         "report discarded errors from fsync/truncate/seek/rename/close-on-write and the stable-storage APIs",
		SuppressTag: analysis.TagErrok,
		Run: func(pass *analysis.Pass) error {
			run(pass, strictPkgs)
			return nil
		},
	}
}

func run(pass *analysis.Pass, strictPkgs []string) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, strictPkgs)
		}
	}
}

// alwaysCheck are method names whose errors are durability signals on any
// receiver.
var alwaysCheck = map[string]bool{
	"Sync": true, "Truncate": true, "Seek": true, "Flush": true,
}

// writeEvidence are method names that mark their receiver as a write path,
// making a later discarded Close reportable.
var writeEvidence = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
	"Sync": true, "Truncate": true, "Seek": true, "Flush": true,
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, strictPkgs []string) {
	info := pass.Pkg.Info
	// First pass: which objects does this function treat as writers?
	writers := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && writeEvidence[sel.Sel.Name] {
				if fn := analysis.CalleeFunc(info, n); fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if obj := analysis.ExprObject(info, sel.X); obj != nil {
							writers[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			// f, err := os.Create(...) / os.OpenFile(...) marks f.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := analysis.CalleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" ||
					(fn.Name() != "Create" && fn.Name() != "OpenFile") {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					if obj := lhsObject(info, n.Lhs[i]); obj != nil {
						writers[obj] = true
					}
				} else if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
					if obj := lhsObject(info, n.Lhs[0]); obj != nil {
						writers[obj] = true
					}
				}
			}
		}
		return true
	})
	// Second pass: discarded errors.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				checkDiscarded(pass, info, call, writers, strictPkgs, "discarded")
			}
		case *ast.DeferStmt:
			checkDiscarded(pass, info, n.Call, writers, strictPkgs, "discarded by defer")
		case *ast.GoStmt:
			checkDiscarded(pass, info, n.Call, writers, strictPkgs, "discarded by go")
		case *ast.AssignStmt:
			checkBlankAssign(pass, info, n, writers, strictPkgs)
		}
		return true
	})
}

// lhsObject resolves the object an assignment's left-hand side defines or
// names.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return analysis.ExprObject(info, e)
}

// checkBlankAssign reports calls whose every error result lands in the
// blank identifier, e.g. `_ = f.Sync()` or `_, _ = f.Seek(0, 0)`.
func checkBlankAssign(pass *analysis.Pass, info *types.Info, n *ast.AssignStmt, writers map[types.Object]bool, strictPkgs []string) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	res := sig.Results()
	if res.Len() != len(n.Lhs) && len(n.Lhs) != 1 {
		return
	}
	for i := 0; i < res.Len(); i++ {
		if !analysis.IsErrorType(res.At(i).Type()) {
			continue
		}
		lhs := n.Lhs[0]
		if res.Len() == len(n.Lhs) {
			lhs = n.Lhs[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			return // the error is captured somewhere
		}
	}
	checkDiscarded(pass, info, call, writers, strictPkgs, "assigned to _")
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkDiscarded reports the call if it belongs to the durability surface
// and returns an error that the caller is dropping.
func checkDiscarded(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, writers map[types.Object]bool, strictPkgs []string, how string) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	returnsError := false
	for i := 0; i < sig.Results().Len(); i++ {
		if analysis.IsErrorType(sig.Results().At(i).Type()) {
			returnsError = true
		}
	}
	if !returnsError {
		return
	}
	name := fn.Name()
	recv := sig.Recv()
	switch {
	case recv != nil && alwaysCheck[name]:
		pass.Reportf(call.Pos(),
			"error from %s %s: a dropped %s error silently abandons durability; handle it or annotate //failtrans:errok <reason>",
			name, how, name)
	case recv == nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" &&
		(name == "Rename" || name == "Link" || name == "Symlink"):
		pass.Reportf(call.Pos(),
			"error from os.%s %s: a failed rename breaks atomic replacement; handle it or annotate //failtrans:errok <reason>",
			name, how)
	case recv != nil && name == "Close":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := analysis.ExprObject(info, sel.X); obj != nil && writers[obj] {
				pass.Reportf(call.Pos(),
					"error from Close %s on a write path: Close is the last chance to observe a delayed write failure; handle it or annotate //failtrans:errok <reason>",
					how)
			}
		}
	case fn.Pkg() != nil && inStrict(fn.Pkg().Path(), strictPkgs):
		pass.Reportf(call.Pos(),
			"error from %s.%s %s: stable-storage API errors are recovery-correctness signals; handle it or annotate //failtrans:errok <reason>",
			fn.Pkg().Name(), name, how)
	}
}

func inStrict(path string, strictPkgs []string) bool {
	for _, p := range strictPkgs {
		if path == p {
			return true
		}
	}
	return false
}
