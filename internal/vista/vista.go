// Package vista reimplements the mechanism of the Vista transaction library
// (Lowell & Chen, SOSP 1997) that Discount Checking is built on: a process
// maps its state into a segment of reliable memory; updates are trapped at
// page granularity (copy-on-write in the original, explicit Write calls
// here); before-images of updated pages go to a persistent undo log; and a
// commit atomically saves the register file, discards the undo log, and
// re-arms the write traps.
//
// Rolling back a process is applying the undo log in reverse; recovering
// after a crash is the same operation, because the undo log itself lives in
// reliable memory.
package vista

import "fmt"

// DefaultPageSize matches the i386 page size the original used.
const DefaultPageSize = 4096

// Stats reports what a commit had to write.
type Stats struct {
	// Pages is the number of distinct pages dirtied since the previous
	// commit.
	Pages int
	// Bytes is the total payload a commit must persist: the dirtied
	// pages plus the register file.
	Bytes int
}

type undoRec struct {
	page int
	data []byte
}

// Segment is one process's persistent address space plus its undo log.
// The zero value is not usable; call NewSegment.
type Segment struct {
	pageSize int
	mem      []byte
	undo     []undoRec
	dirty    map[int]bool
	savedReg []byte

	// CommitCount and LoggedBytes accumulate usage statistics.
	CommitCount int
	LoggedBytes int64
}

// NewSegment returns a segment of the given initial size. pageSize <= 0
// selects DefaultPageSize.
func NewSegment(size, pageSize int) *Segment {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Segment{
		pageSize: pageSize,
		mem:      make([]byte, size),
		dirty:    make(map[int]bool),
	}
}

// PageSize returns the trap granularity.
func (s *Segment) PageSize() int { return s.pageSize }

// Size returns the current segment size in bytes.
func (s *Segment) Size() int { return len(s.mem) }

// grow extends the segment to at least n bytes. New memory is zeroed and
// considered committed (like fresh pages from the OS).
func (s *Segment) grow(n int) {
	if n <= len(s.mem) {
		return
	}
	bigger := make([]byte, n)
	copy(bigger, s.mem)
	s.mem = bigger
}

// touchPage logs the before-image of page p on its first write since the
// last commit.
func (s *Segment) touchPage(p int) {
	if s.dirty[p] {
		return
	}
	s.dirty[p] = true
	start := p * s.pageSize
	end := start + s.pageSize
	if end > len(s.mem) {
		end = len(s.mem)
	}
	img := make([]byte, end-start)
	copy(img, s.mem[start:end])
	s.undo = append(s.undo, undoRec{page: p, data: img})
	s.LoggedBytes += int64(len(img))
}

// Write copies data into the segment at off, growing it as needed and
// logging before-images of every touched page.
func (s *Segment) Write(off int, data []byte) error {
	if off < 0 {
		return fmt.Errorf("vista: negative offset %d", off)
	}
	if len(data) == 0 {
		return nil
	}
	s.grow(off + len(data))
	for p := off / s.pageSize; p <= (off+len(data)-1)/s.pageSize; p++ {
		s.touchPage(p)
	}
	copy(s.mem[off:], data)
	return nil
}

// Read copies n bytes at off out of the segment.
func (s *Segment) Read(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(s.mem) {
		return nil, fmt.Errorf("vista: read [%d,%d) outside segment of %d bytes", off, off+n, len(s.mem))
	}
	out := make([]byte, n)
	copy(out, s.mem[off:])
	return out, nil
}

// SetContents replaces the whole segment with data, but touches only the
// pages that actually differ — the analogue of copy-on-write, where clean
// pages never fault. It is the path Discount Checking uses to lay a
// serialized process image into the segment.
func (s *Segment) SetContents(data []byte) {
	s.grow(len(data))
	// Pages beyond len(data) that contain old bytes must be cleared.
	limit := len(s.mem)
	for start := 0; start < limit; start += s.pageSize {
		end := start + s.pageSize
		if end > limit {
			end = limit
		}
		var src []byte
		switch {
		case start >= len(data):
			src = nil
		case end > len(data):
			src = data[start:len(data):len(data)]
		default:
			src = data[start:end]
		}
		if pageEqual(s.mem[start:end], src) {
			continue
		}
		s.touchPage(start / s.pageSize)
		n := copy(s.mem[start:end], src)
		for i := start + n; i < end; i++ {
			s.mem[i] = 0
		}
	}
}

// pageEqual compares a memory page against src, treating bytes beyond
// len(src) as zero.
func pageEqual(page, src []byte) bool {
	for i := range page {
		var b byte
		if i < len(src) {
			b = src[i]
		}
		if page[i] != b {
			return false
		}
	}
	return true
}

// Contents returns a copy of the full segment.
func (s *Segment) Contents() []byte {
	out := make([]byte, len(s.mem))
	copy(out, s.mem)
	return out
}

// DirtyPages returns how many pages have been touched since the last
// commit.
func (s *Segment) DirtyPages() int { return len(s.dirty) }

// Commit atomically saves the register file, discards the undo log, and
// re-arms the page traps. It returns what had to be written to stable
// storage.
func (s *Segment) Commit(registers []byte) Stats {
	st := Stats{Pages: len(s.dirty), Bytes: len(s.dirty)*s.pageSize + len(registers)}
	s.savedReg = append(s.savedReg[:0], registers...)
	s.undo = s.undo[:0]
	s.dirty = make(map[int]bool)
	s.CommitCount++
	return st
}

// Rollback applies the undo log in reverse, returning the segment to its
// last committed state, and returns the saved register file. After a
// simulated crash this is exactly recovery: the undo log is persistent.
func (s *Segment) Rollback() []byte {
	for i := len(s.undo) - 1; i >= 0; i-- {
		rec := s.undo[i]
		copy(s.mem[rec.page*s.pageSize:], rec.data)
	}
	s.undo = s.undo[:0]
	s.dirty = make(map[int]bool)
	reg := make([]byte, len(s.savedReg))
	copy(reg, s.savedReg)
	return reg
}
