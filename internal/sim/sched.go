package sim

import "time"

// This file is the event-driven scheduler: a readiness index that replaces
// Step's O(Procs) scan with an O(log active) heap lookup, so fleet-scale
// worlds (10⁴–10⁶ processes, most of them parked) pay only for the
// processes whose readiness actually changed.
//
// The index is a binary min-heap of runnable processes ordered by
// (readyAt, pid). That order is total and strict — no two processes share a
// pid — so the heap's minimum is the unique process the legacy scan would
// have picked: the scan keeps the first process with the strictly smallest
// readyAt, i.e. the lowest pid among the earliest. Byte-identical schedules
// therefore do not depend on the heap's internal arrangement, only on the
// comparison key, and the scan scheduler survives behind World.ScanSched as
// an escape hatch and differential oracle (CI diffs the two).
//
// Invalidation is lazy: every mutation that can change a process's readyAt
// — a message append (send, RequeueLogged), an inbox removal or rebuild
// (Recv, flushReplayQueue), a wake push-back (Delay), arming redelivery
// (RequeueRetained), and the stepped process's own status/wake transition —
// marks the process dirty on a to-reindex list, and the next scheduling
// decision re-keys each dirty process exactly once before peeking the
// minimum. Mutations that cannot change readyAt (DeliverSignal, which is
// polled; ScheduleStop, checked only once the process runs; CommitPoint and
// DropRetained, which touch only the retained list) are not hooked, exactly
// matching the scan's semantics. The heap rebuilds from scratch lazily
// after construction and after Fork (schedBuilt=false), so forking carries
// no index cost and frozen templates hold no index at all.

// DefaultScanSched selects the scheduler for worlds built by NewWorld: false
// (the default) uses the readiness index, true the legacy O(Procs) scan.
// Command-line `-sched=scan` escape hatches set it at startup; tests flip it
// between (never during) runs. Fork inherits the world's own setting, not
// this default.
var DefaultScanSched bool

// schedLess is the scheduling order: earliest readyAt first, lowest pid on
// ties. Strict and total over distinct processes.
//
//failtrans:hotpath
func schedLess(a, b *Proc) bool {
	return a.schedAt < b.schedAt || (a.schedAt == b.schedAt && a.Index < b.Index)
}

// schedTouch marks p's readiness stale; the next scheduling decision will
// reindex it. No-op until the index exists (the first indexed Step builds
// it from scratch, and scan-scheduled worlds never build one).
//
//failtrans:hotpath
func (w *World) schedTouch(p *Proc) {
	if !w.schedBuilt || p.schedDirty {
		return
	}
	p.schedDirty = true
	w.schedStale = append(w.schedStale, p)
}

// schedReindex re-keys one process: push if it became runnable, remove if it
// became blocked, sift if its wake-up moved. Same-timestamp deliveries batch
// naturally — however many messages arrived since the last decision, the
// process is reindexed once.
//
//failtrans:hotpath
func (w *World) schedReindex(p *Proc) {
	if m := w.Metrics; m != nil {
		m.SchedUpdates++
	}
	at, ok := w.readyAt(p)
	if !ok {
		if p.schedIdx >= 0 {
			w.schedRemove(p)
		}
		return
	}
	if p.schedIdx < 0 {
		p.schedAt = at
		w.schedPush(p)
		return
	}
	if at == p.schedAt {
		return
	}
	up := at < p.schedAt
	p.schedAt = at
	if up {
		w.schedUp(p.schedIdx)
	} else {
		w.schedDown(p.schedIdx)
	}
}

// schedBuild constructs the index from scratch: key every runnable process
// and heapify. Runs on the first indexed scheduling decision of a world
// (fresh, Init-ed, or forked).
func (w *World) schedBuild() {
	if cap(w.sched) < len(w.Procs) {
		//failtrans:alloc one-time heap backing per world; every later decision reuses it
		w.sched = make([]*Proc, 0, len(w.Procs))
	}
	w.sched = w.sched[:0]
	w.schedStale = w.schedStale[:0]
	for _, p := range w.Procs {
		p.schedDirty = false
		p.schedIdx = -1
		if at, ok := w.readyAt(p); ok {
			p.schedAt = at
			p.schedIdx = len(w.sched)
			w.sched = append(w.sched, p)
		}
	}
	for i := len(w.sched)/2 - 1; i >= 0; i-- {
		w.schedDown(i)
	}
	w.schedBuilt = true
	if m := w.Metrics; m != nil {
		m.SchedRebuilds++
	}
}

// schedPick returns the earliest runnable process and its readyAt via the
// index, or nil when nothing can run. It peeks without popping: the caller
// may decline to run the pick (MaxTime), and the post-step schedTouch
// re-keys the stepped process anyway.
//
//failtrans:hotpath
func (w *World) schedPick() (*Proc, time.Duration) {
	if !w.schedBuilt {
		w.schedBuild()
	}
	for _, p := range w.schedStale {
		p.schedDirty = false
		w.schedReindex(p)
	}
	w.schedStale = w.schedStale[:0]
	if len(w.sched) == 0 {
		return nil, 0
	}
	top := w.sched[0]
	return top, top.schedAt
}

// schedPush inserts p (schedAt already set) into the heap.
//
//failtrans:hotpath
func (w *World) schedPush(p *Proc) {
	p.schedIdx = len(w.sched)
	w.sched = append(w.sched, p)
	w.schedUp(p.schedIdx)
}

// schedRemove deletes p from the heap.
//
//failtrans:hotpath
func (w *World) schedRemove(p *Proc) {
	i := p.schedIdx
	n := len(w.sched) - 1
	last := w.sched[n]
	w.sched[n] = nil
	w.sched = w.sched[:n]
	p.schedIdx = -1
	if i == n {
		return
	}
	w.sched[i] = last
	last.schedIdx = i
	w.schedDown(i)
	w.schedUp(i)
}

// schedUp sifts the element at i toward the root.
//
//failtrans:hotpath
func (w *World) schedUp(i int) {
	s := w.sched
	p := s[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !schedLess(p, s[parent]) {
			break
		}
		s[i] = s[parent]
		s[i].schedIdx = i
		i = parent
	}
	s[i] = p
	p.schedIdx = i
}

// schedDown sifts the element at i toward the leaves.
//
//failtrans:hotpath
func (w *World) schedDown(i int) {
	s := w.sched
	n := len(s)
	p := s[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && schedLess(s[r], s[c]) {
			c = r
		}
		if !schedLess(s[c], p) {
			break
		}
		s[i] = s[c]
		s[i].schedIdx = i
		i = c
	}
	s[i] = p
	p.schedIdx = i
}

// SchedLen reports how many processes the readiness index currently holds —
// the "active" in O(active). Zero for scan-scheduled worlds and before the
// first indexed decision.
func (w *World) SchedLen() int { return len(w.sched) }
