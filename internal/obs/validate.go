package obs

import "encoding/json"

// chromeTrace mirrors the pieces of the Chrome trace-event schema the
// exporter must emit.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	ID   int64                  `json:"id"`
	BP   string                 `json:"bp"`
	Args map[string]interface{} `json:"args"`
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks the
// shapes the exporter promises: named tracks, at least one span, and flow
// arrows that start and finish. It is shared by the unit tests, the chaos
// gauntlet and the determinism suite.
func ValidateChromeTrace(data []byte) (tracks, spans, flowStarts, flowEnds int, err error) {
	var tr chromeTrace
	if err = json.Unmarshal(data, &tr); err != nil {
		return 0, 0, 0, 0, err
	}
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tracks++
			}
		case "X":
			spans++
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		}
	}
	return tracks, spans, flowStarts, flowEnds, nil
}
