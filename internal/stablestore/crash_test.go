package stablestore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// flakyFile wraps the store's log file, failing the Nth Write (optionally
// after letting a prefix of the buffer through — a torn write) or the Nth
// Sync or Truncate, like a disk dying mid-append.
type flakyFile struct {
	logFile
	writeCalls int
	failWrite  int // fail the k'th Write (1-based); 0 = never
	partial    int // bytes of the failing Write that still hit the file
	syncCalls  int
	failSync   int // fail the k'th Sync (1-based); 0 = never
	failTrunc  bool
}

var errInjected = errors.New("injected I/O failure")

func (f *flakyFile) Write(p []byte) (int, error) {
	f.writeCalls++
	if f.failWrite != 0 && f.writeCalls == f.failWrite {
		n := f.partial
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			f.logFile.Write(p[:n])
		}
		return n, errInjected
	}
	return f.logFile.Write(p)
}

func (f *flakyFile) Sync() error {
	f.syncCalls++
	if f.failSync != 0 && f.syncCalls == f.failSync {
		return errInjected
	}
	return f.logFile.Sync()
}

func (f *flakyFile) Truncate(size int64) error {
	if f.failTrunc {
		return errInjected
	}
	return f.logFile.Truncate(size)
}

// encodeRecord builds one on-disk record, for crash-point sweeps.
func encodeRecord(key string, val []byte) []byte {
	body := append([]byte(key), val...)
	rec := make([]byte, 16+len(body))
	binary.LittleEndian.PutUint32(rec[0:4], recordMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(body))
	copy(rec[16:], body)
	return rec
}

// TestTornHeaderAppendDoesNotLoseLaterPut is the headline regression: a
// failed append that leaves partial header bytes in the log must not cause
// the NEXT successful Put to be appended after garbage and silently
// discarded by replay on reopen.
func TestTornHeaderAppendDoesNotLoseLaterPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	ff := &flakyFile{logFile: s.f, failWrite: 1, partial: 7} // 7 torn header bytes
	s.f = ff
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("Put over a failing write must error")
	}
	ff.failWrite = 0
	if err := s.Put("c", []byte("gamma")); err != nil {
		t.Fatalf("Put after a rolled-back torn append: %v", err)
	}
	s.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || string(v) != "alpha" {
		t.Errorf("committed a lost: %q %v", v, ok)
	}
	if _, ok := s2.Get("b"); ok {
		t.Error("failed Put(b) must not be durable")
	}
	if v, ok := s2.Get("c"); !ok || string(v) != "gamma" {
		t.Errorf("committed Put(c) after the torn append was silently discarded: %q %v", v, ok)
	}
}

// TestTornBodyAppend is the same defect with the failure mid-body.
func TestTornBodyAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("alpha"))
	ff := &flakyFile{logFile: s.f, failWrite: 2, partial: 3} // header ok, body torn
	s.f = ff
	if err := s.Put("b", []byte("beta-long-value")); err == nil {
		t.Fatal("want error")
	}
	ff.failWrite = 0
	if err := s.Put("c", []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"a": "alpha", "c": "gamma"} {
		if v, ok := s2.Get(k); !ok || string(v) != want {
			t.Errorf("Get(%s) = %q %v, want %q", k, v, ok, want)
		}
	}
}

// TestSyncFailureRollsBack: the record's bytes were fully written but the
// fsync failed, so durability is unknown; the append must be rolled back
// and later committed Puts must survive a reopen.
func TestSyncFailureRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("alpha"))
	ff := &flakyFile{logFile: s.f, failSync: 1}
	s.f = ff
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("Put over a failing sync must error")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("failed Put(b) must not appear in the index")
	}
	if err := s.Put("c", []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("b"); ok {
		t.Error("b must not be durable")
	}
	if v, ok := s2.Get("c"); !ok || string(v) != "gamma" {
		t.Errorf("c lost after sync-failure rollback: %q %v", v, ok)
	}
}

// TestUnrollbackableAppendRefusesWrites: when both the append and the
// rollback truncation fail, the store must fail closed — refusing further
// appends instead of risking interior corruption — and a Compact must
// restore write availability from the in-memory index.
func TestUnrollbackableAppendRefusesWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("alpha"))
	ff := &flakyFile{logFile: s.f, failWrite: 1, partial: 5, failTrunc: true}
	s.f = ff
	if err := s.Put("b", []byte("beta")); err == nil {
		t.Fatal("want append error")
	}
	if err := s.Put("c", []byte("gamma")); err == nil {
		t.Fatal("store must refuse appends after an unrollbackable failure")
	}
	// Reads still work from the index.
	if v, ok := s.Get("a"); !ok || string(v) != "alpha" {
		t.Errorf("Get(a) = %q %v", v, ok)
	}
	// Compact rewrites the log from the index and clears the condition.
	ff.failTrunc = false
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact as recovery: %v", err)
	}
	if err := s.Put("c", []byte("gamma")); err != nil {
		t.Fatalf("Put after recovery compact: %v", err)
	}
	s.Close()
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"a": "alpha", "c": "gamma"} {
		if v, ok := s2.Get(k); !ok || string(v) != want {
			t.Errorf("Get(%s) = %q %v, want %q", k, v, ok, want)
		}
	}
}

// TestCrashAtEveryByteOfAppend simulates a process crash after N bytes of
// an in-flight append reached the disk, for every N: on reopen, the
// committed prefix must be intact, the torn tail truncated cleanly, and
// the store writable with the new record surviving a further reopen.
func TestCrashAtEveryByteOfAppend(t *testing.T) {
	rec := encodeRecord("torn-key", []byte("torn-value-payload"))
	for n := 1; n < len(rec); n++ {
		path := filepath.Join(t.TempDir(), "store.log")
		s, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("base", []byte("committed")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		good, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}

		// Crash: the first n bytes of the next record hit the disk, the
		// process died before the rest.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(rec[:n])
		f.Close()

		s2, err := OpenFile(path)
		if err != nil {
			t.Fatalf("n=%d: reopen: %v", n, err)
		}
		if v, ok := s2.Get("base"); !ok || string(v) != "committed" {
			t.Fatalf("n=%d: committed record lost: %q %v", n, v, ok)
		}
		if _, ok := s2.Get("torn-key"); ok {
			t.Fatalf("n=%d: torn record must not surface", n)
		}
		if st, err := os.Stat(path); err != nil || st.Size() != good.Size() {
			t.Fatalf("n=%d: torn tail not truncated: size %d, want %d", n, st.Size(), good.Size())
		}
		if err := s2.Put("next", []byte("after-crash")); err != nil {
			t.Fatalf("n=%d: Put after recovery: %v", n, err)
		}
		s2.Close()
		s3, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := s3.Get("next"); !ok || string(v) != "after-crash" {
			t.Fatalf("n=%d: post-recovery Put lost: %q %v", n, v, ok)
		}
		s3.Close()
	}
}

// TestFailedDeleteRollsBack exercises the rollback path through Delete.
func TestFailedDeleteRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("alpha"))
	ff := &flakyFile{logFile: s.f, failWrite: 1, partial: 9}
	s.f = ff
	if err := s.Delete("a"); err == nil {
		t.Fatal("want delete error")
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("failed delete must leave the key in the index")
	}
	ff.failWrite = 0
	if err := s.Put("b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("a"); !ok {
		t.Error("a must survive the failed delete")
	}
	if _, ok := s2.Get("b"); !ok {
		t.Error("b lost after rolled-back delete")
	}
}
