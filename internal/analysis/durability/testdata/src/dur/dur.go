// Package dur is the durability fixture: every way of discarding an error
// from the durability surface, next to the look-alikes the pass must leave
// alone (read-only Close, handled errors, reasoned suppressions).
package dur

import (
	"os"

	"dur/store"
)

// Save exercises the core surface: fsync-family methods, os.Rename, Close
// on a write path, and the strict stable-store package.
func Save(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync() // want `error from Sync discarded`
	_ = f.Sync() // want `error from Sync assigned to _`
	if _, err := f.Seek(0, 0); err != nil { // handled: silent
		return err
	}
	_, _ = f.Seek(0, 0) // want `error from Seek assigned to _`
	f.Truncate(0) // want `error from Truncate discarded`
	defer f.Close() // want `error from Close discarded by defer on a write path`
	os.Rename(path, path+".bak") // want `error from os\.Rename discarded: a failed rename breaks atomic replacement`
	store.Commit(data) // want `error from store\.Commit discarded: stable-storage API errors are recovery-correctness signals`
	store.Len() // no error result: silent even though store is strict
	return nil
}

// ReadOnly proves Close is only a finding on a write path: this file is
// opened read-only and never written through, so the bare Close is fine.
func ReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// Suppressed shows a reasoned //failtrans:errok waving off a finding.
func Suppressed(f *os.File) {
	if _, err := f.Write(nil); err != nil {
		f.Close() //failtrans:errok fixture: best-effort cleanup, the write error is the primary failure
		return
	}
	go f.Sync() // want `error from Sync discarded by go`
}
