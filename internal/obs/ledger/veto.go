package ledger

import "failtrans/internal/statemachine"

// The veto bridge: a mined machine's dangerous-path coloring, exported as
// a statemachine.VetoPolicy keyed by the miner's state names. Because the
// mined states live in commit-count space, a live run can locate itself in
// the machine with nothing but its own commit count and fault activation
// point — the same coordinates CommitStateKey/ActStateKey name — and dc's
// CommitVeto hook can ask "is the state I'm about to commit in doomed?"
// without replaying anything.

// VetoPolicy exports the mined machine's current coloring as a commit-veto
// policy: every named state where CommitUnsafeAt holds is unsafe.
func (md *Mined) VetoPolicy() *statemachine.VetoPolicy {
	return statemachine.NewVetoPolicyFromColoring(md.Key, md.Runs, md.states, md.Coloring())
}

// VetoPolicies exports one policy per mined machine, in ledger
// (first-appearance) order.
func (mn *Miner) VetoPolicies() []*statemachine.VetoPolicy {
	ps := make([]*statemachine.VetoPolicy, 0, len(mn.order))
	for _, key := range mn.order {
		ps = append(ps, mn.byKey[key].VetoPolicy())
	}
	return ps
}
