package interceptcheck_test

import (
	"testing"

	"failtrans/internal/analysis/analysistest"
	"failtrans/internal/analysis/interceptcheck"
)

// TestInterceptcheck runs the pass over its four-package fixture: direct
// effects in workload code (file write, wall clock, real stdout/stderr,
// direct stable-store use), propagation into a helper package with root
// attribution, the boundary-package and //failtrans:intercepted
// sanctioning, the uninterceptible escape hatch at both the effect and
// the call edge, and that effects with no workload path stay silent.
func TestInterceptcheck(t *testing.T) {
	a := interceptcheck.New(interceptcheck.Config{
		Core:        []string{"icept/app"},
		Boundary:    []string{"icept/alphabet"},
		StableStore: []string{"icept/store"},
	})
	analysistest.Run(t, "testdata/src", a, "icept/app", "icept/util", "icept/alphabet", "icept/store")
}
