module failtrans

go 1.22
