// Package bench regenerates every table and figure of the paper's
// evaluation: Figure 8's protocol-space performance plots for nvi, magic,
// xpilot and TreadMarks (checkpoints and runtime overhead under Discount
// Checking on reliable memory and on disk), Table 1's application-fault
// study, Table 2's OS-fault study, and the Figure 3 protocol-space map.
package bench

import (
	"fmt"
	"io"
	"time"

	"failtrans/internal/apps/magic"
	"failtrans/internal/apps/nvi"
	"failtrans/internal/apps/treadmarks"
	"failtrans/internal/apps/xpilot"
	"failtrans/internal/campaign"
	"failtrans/internal/dc"
	"failtrans/internal/faults"
	"failtrans/internal/kernel"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// Fig8Apps lists the four workloads of Figure 8.
var Fig8Apps = []string{"nvi", "magic", "xpilot", "treadmarks"}

// Fig8Row is one protocol's measurement for one application.
type Fig8Row struct {
	Protocol    string
	Checkpoints int
	// Interactive apps: percent runtime expansion vs the unrecoverable
	// baseline, for DC (Rio) and DC-disk.
	OverheadRioPct  float64
	OverheadDiskPct float64
	// xpilot only: checkpoints/second and sustained frames/second.
	CkptsPerSec float64
	FPSRio      float64
	FPSDisk     float64
	LogRecords  int64
	// Metrics is the observability-layer summary of the DC (Rio) run.
	Metrics obs.RunSummary
}

// Fig8Result is one application's protocol-space sweep.
type Fig8Result struct {
	App      string
	Baseline time.Duration
	Rows     []Fig8Row
}

// BuildWorld builds the measured workload for one app at the given scale
// (1 = quick, larger = longer sessions closer to the paper's).
func BuildWorld(app string, scale int, seed int64) (*sim.World, error) {
	if scale < 1 {
		scale = 1
	}
	switch app {
	case "nvi":
		e := nvi.New("doc.txt", faults.NviInitial())
		e.ThinkTime = 100 * time.Millisecond // the paper's keystroke pacing
		w := sim.NewWorld(seed, e)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = nvi.Script(faults.NviSession(seed, 400*scale))
		return w, nil
	case "magic":
		l := magic.New("m1", "m2", "poly")
		l.ThinkTime = time.Second // one command per second, as measured
		w := sim.NewWorld(seed, l)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = magic.Script(MagicSession(seed, 60*scale))
		return w, nil
	case "xpilot":
		w := sim.NewWorld(seed, xpilot.Fleet(75*scale)...)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		for i := 1; i <= 3; i++ {
			w.Procs[i].Ctx().Inputs = xpilot.KeyScript(repeatKeys("wad w d ", 40*scale))
		}
		w.MaxSteps = 40_000_000
		return w, nil
	case "treadmarks":
		// At least 5 iterations so the every-5th-iteration progress
		// report (the workload's only visible event) occurs even at
		// scale 1.
		iters := 4 * scale
		if iters < 5 {
			iters = 5
		}
		progs, err := treadmarks.Fleet(4, 72, iters)
		if err != nil {
			return nil, err
		}
		w := sim.NewWorld(seed, progs...)
		w.MaxSteps = 40_000_000
		return w, nil
	default:
		return nil, fmt.Errorf("bench: unknown app %q", app)
	}
}

func repeatKeys(pattern string, n int) string {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, pattern...)
	}
	return string(out[:n])
}

// MagicSession generates the layout-editing command session.
func MagicSession(seed int64, n int) []string {
	var out []string
	x, y := 0, 0
	for i := 0; len(out) < n; i++ {
		layer := []string{"m1", "m2", "poly"}[i%3]
		switch i % 7 {
		case 0, 1, 2:
			out = append(out, fmt.Sprintf("paint %s %d %d %d %d", layer, x%400, y%300, 8+i%20, 6+i%12))
			x += 37
			y += 23
		case 3:
			out = append(out, fmt.Sprintf("erase %s %d %d %d %d", layer, (x+11)%400, (y+7)%300, 10, 8))
		case 4:
			out = append(out, fmt.Sprintf("box %s 0 0 200 150", layer))
		case 5:
			out = append(out, fmt.Sprintf("area %s", layer))
		default:
			out = append(out, fmt.Sprintf("drc %s", layer))
		}
	}
	out = append(out, "quit")
	return out
}

// onceResult is one (app, protocol, medium) cell's measurements.
type onceResult struct {
	clock     time.Duration
	ckpts     int
	logs      int64
	frames    int
	steps     int // world step count (deterministic, fork-invariant)
	procSteps int // proc 0's step count
	metrics   obs.RunSummary
}

// runOnce executes one (app, protocol, medium) cell with the metrics
// registry attached and returns virtual duration, checkpoint count, log
// records, client frames (xpilot), and the metrics summary.
func runOnce(app string, scale int, pol *protocol.Policy, medium stablestore.Medium) (onceResult, error) {
	w, err := BuildWorld(app, scale, 11)
	if err != nil {
		return onceResult{}, err
	}
	w.RecordTrace = false
	m, _ := w.EnableObs(false)
	var d *dc.DC
	if pol != nil {
		d = dc.New(w, *pol, medium)
		if err := d.Attach(); err != nil {
			return onceResult{}, err
		}
	}
	if err := w.Run(); err != nil {
		return onceResult{}, err
	}
	res := onceResult{clock: w.Clock, steps: w.StepCount(), procSteps: w.Procs[0].Steps, metrics: m.Summarize()}
	if d != nil {
		res.ckpts = d.Stats.TotalCheckpoints()
		res.logs = d.Stats.LogRecords
	}
	if app == "xpilot" {
		res.frames = len(w.Outputs[1])
	}
	return res, nil
}

// Fig8 runs the full protocol sweep for one application. The baseline and
// the (protocol, medium) cells are independent simulations, so they fan
// out over workers (0 or 1 = serial); every cell lands at a fixed slice
// index, making the result identical to the serial sweep's. lw, if
// non-nil, receives one fault-free ledger record per cell, emitted from the
// ordered acceptor (so the ledger bytes are worker-count-invariant too).
func Fig8(app string, scale, workers int, lw *ledger.Writer) (*Fig8Result, error) {
	measured := protocol.Measured()
	cells := make([]onceResult, 1+2*len(measured))
	err := campaign.Run(campaign.Config{Workers: workers, Phase: "fig8/" + app}, len(cells),
		func(i int) (onceResult, error) {
			if i == 0 {
				return runOnce(app, scale, nil, stablestore.Rio) // unrecoverable baseline
			}
			pol := measured[(i-1)/2]
			medium := stablestore.Rio
			if (i-1)%2 == 1 {
				medium = stablestore.Disk
			}
			return runOnce(app, scale, &pol, medium)
		},
		func(i int, r onceResult) bool {
			cells[i] = r
			if lw != nil {
				rec := ledger.Get()
				rec.Run = i
				rec.Study = "fig8"
				rec.App = app
				rec.Protocol = "baseline"
				rec.Medium = stablestore.Rio.Name
				if i > 0 {
					rec.Protocol = measured[(i-1)/2].Name
					if (i-1)%2 == 1 {
						rec.Medium = stablestore.Disk.Name
					}
				}
				rec.Kind = "none"
				rec.Seed = 11
				rec.Outcome = ledger.Completed
				rec.CommitN = r.ckpts
				rec.Steps = r.procSteps
				rec.WorldSteps = r.steps
				rec.VClockUS = int64(r.clock / time.Microsecond)
				lw.Append(rec)
				ledger.Put(rec)
			}
			return true
		})
	if err != nil {
		return nil, err
	}
	base := cells[0]
	res := &Fig8Result{App: app, Baseline: base.clock}
	for i := range measured {
		pol := measured[i]
		rio, disk := cells[1+2*i], cells[2+2*i]
		row := Fig8Row{
			Protocol:        pol.Name,
			Checkpoints:     rio.ckpts,
			LogRecords:      rio.logs,
			OverheadRioPct:  100 * (rio.clock.Seconds() - base.clock.Seconds()) / base.clock.Seconds(),
			OverheadDiskPct: 100 * (disk.clock.Seconds() - base.clock.Seconds()) / base.clock.Seconds(),
			Metrics:         rio.metrics,
		}
		if app == "xpilot" {
			row.CkptsPerSec = float64(rio.ckpts) / rio.clock.Seconds()
			row.FPSRio = float64(rio.frames) / rio.clock.Seconds()
			row.FPSDisk = float64(disk.frames) / disk.clock.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the result in the paper's style.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8 (%s): baseline %.2fs virtual\n", r.App, r.Baseline.Seconds())
	if r.App == "xpilot" {
		fmt.Fprintf(w, "%-12s %10s %8s %8s\n", "protocol", "ckpts/s", "fps(DC)", "fps(dsk)")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-12s %10.1f %8.1f %8.1f\n", row.Protocol, row.CkptsPerSec, row.FPSRio, row.FPSDisk)
		}
		return
	}
	fmt.Fprintf(w, "%-12s %8s %8s %10s %10s\n", "protocol", "ckpts", "logrecs", "DC ovhd", "disk ovhd")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %8d %8d %9.1f%% %9.1f%%\n",
			row.Protocol, row.Checkpoints, row.LogRecords, row.OverheadRioPct, row.OverheadDiskPct)
	}
}
