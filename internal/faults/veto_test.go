package faults

import (
	"reflect"
	"strings"
	"testing"
)

// TestFirePointRange pins the S2 fix: the fire-point draw is total for
// every SessionLen >= 1 and lands in [fireBase, fireHorizon], and the
// snapshot horizon derives from the same fireSpan as the draw window.
func TestFirePointRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 150} {
		s := NewAppStudy("nvi")
		s.SessionLen = n
		span := s.fireSpan()
		if span < 1 {
			t.Fatalf("SessionLen %d: fireSpan %d, want >= 1", n, span)
		}
		if want := fireBase + span - 1; s.fireHorizon() != want {
			t.Fatalf("SessionLen %d: fireHorizon %d, want %d", n, s.fireHorizon(), want)
		}
		seen := map[int]bool{}
		for seed := int64(0); seed < 500; seed++ {
			at := s.fireAtFor(seed) // panicked for SessionLen < 2 before the fix
			if at < fireBase || at > s.fireHorizon() {
				t.Fatalf("SessionLen %d: fire point %d outside [%d, %d]", n, at, fireBase, s.fireHorizon())
			}
			seen[at] = true
		}
		if len(seen) != span {
			t.Errorf("SessionLen %d: draws hit %d distinct points, want the full span %d", n, len(seen), span)
		}
	}
}

func TestSessionLenValidated(t *testing.T) {
	s := smallStudy("nvi")
	s.SessionLen = 0
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "SessionLen") {
		t.Fatalf("SessionLen 0 not rejected (err %v)", err)
	}
}

// TestRunVetoClawsBack runs the two-phase campaign end to end on nvi: the
// mined commit veto must prevent some of the baseline's Lose-work
// violations, and the price it paid (deferred commits) must be accounted,
// not hidden.
func TestRunVetoClawsBack(t *testing.T) {
	s := smallStudy("nvi")
	out, err := s.RunVeto()
	if err != nil {
		t.Fatal(err)
	}
	if s.Veto != nil || s.RecordHook != nil {
		t.Fatal("RunVeto leaked phase-2 state into the study")
	}

	// Phase 1 must be byte-for-byte the plain study: veto-off runs are
	// unchanged by the subsystem's existence.
	plain := smallStudy("nvi")
	base, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Baseline, base) {
		t.Fatalf("phase 1 diverged from a veto-free study:\ngot  %+v\nwant %+v", out.Baseline, base)
	}

	if out.BaselineViolations() == 0 {
		t.Fatal("baseline has no violations; campaign too small to measure the veto")
	}
	if out.ClawedBack <= 0 {
		t.Fatalf("veto clawed back %d violations, want > 0 (baseline %d)", out.ClawedBack, out.BaselineViolations())
	}
	if out.VetoedCommits <= 0 {
		t.Fatal("violations disappeared but no commit was vetoed; bookkeeping lost the cost")
	}
	if out.VetoedSaveWork > out.VetoedCommits {
		t.Fatalf("save-work deferrals %d exceed total deferrals %d", out.VetoedSaveWork, out.VetoedCommits)
	}
	for _, d := range out.Deltas {
		if d.Vetoed.Crashes != d.Baseline.Crashes {
			t.Errorf("%s: crashes %d -> %d; the veto must not change the faulted path, only commit placement",
				d.Kind, d.Baseline.Crashes, d.Vetoed.Crashes)
		}
		if d.Vetoed.Violations > d.Baseline.Violations {
			t.Errorf("%s: veto increased violations %d -> %d", d.Kind, d.Baseline.Violations, d.Vetoed.Violations)
		}
	}
	t.Logf("baseline violations %d, clawed back %d, vetoed commits %d (%d at save-work points)",
		out.BaselineViolations(), out.ClawedBack, out.VetoedCommits, out.VetoedSaveWork)
}

// TestRunVetoModeInvariant pins the determinism contract under the veto:
// snapshot-served and from-scratch phase-2 campaigns must agree exactly.
func TestRunVetoModeInvariant(t *testing.T) {
	run := func(snap bool) *VetoOutcome {
		s := smallStudy("nvi")
		s.Snapshots = snap
		s.COW = snap
		out, err := s.RunVeto()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	scratch, snap := run(false), run(true)
	if !reflect.DeepEqual(scratch.Baseline, snap.Baseline) {
		t.Fatal("baseline phase diverges between snapshot and scratch modes")
	}
	if !reflect.DeepEqual(scratch.Vetoed, snap.Vetoed) {
		t.Fatal("veto phase diverges between snapshot and scratch modes")
	}
	if scratch.VetoedCommits != snap.VetoedCommits || scratch.VetoedSaveWork != snap.VetoedSaveWork {
		t.Fatalf("veto cost diverges: scratch (%d, %d) vs snapshot (%d, %d)",
			scratch.VetoedCommits, scratch.VetoedSaveWork, snap.VetoedCommits, snap.VetoedSaveWork)
	}
}
