package bench

import (
	"fmt"
	"io"

	"failtrans/internal/faults"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
)

// VetoResult wraps one application's two-phase commit-veto campaign for
// printing and -json.
type VetoResult struct {
	App     string
	Outcome *faults.VetoOutcome
}

// VetoCampaign runs the two-phase commit-veto campaign for one application:
// phase 1 reproduces the Table 1 study while mining the dangerous-path
// machine in memory, phase 2 re-runs the identical seeds with the mined
// commit veto armed. workers/snapshots/cow/campObs/lw behave as in Table1;
// both phases' records (phase 2 flagged 'V') land in lw when set.
func VetoCampaign(app string, crashTarget, workers int, snapshots, cow bool, campObs *obs.CampaignMetrics, lw *ledger.Writer) (*VetoResult, error) {
	s := faults.NewAppStudy(app)
	s.CrashTarget = crashTarget
	s.MaxRunsPerType = crashTarget * 12
	s.Parallel = workers
	s.Snapshots = snapshots
	s.COW = cow
	s.WallClock = wallClock
	s.CampaignObs = campObs
	s.Ledger = lw
	out, err := s.RunVeto()
	if err != nil {
		return nil, err
	}
	return &VetoResult{App: app, Outcome: out}, nil
}

// Print renders the per-kind baseline-vs-veto comparison and the totals.
func (v *VetoResult) Print(w io.Writer) {
	o := v.Outcome
	fmt.Fprintf(w, "Commit veto (two-phase) for %s\n", o.Key)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %12s\n", "Fault Type", "crashes", "base viol", "veto viol", "clawed back")
	for _, d := range o.Deltas {
		fmt.Fprintf(w, "%-20s %10d %10d %10d %12d\n",
			d.Kind, d.Baseline.Crashes, d.Baseline.Violations, d.Vetoed.Violations, d.ClawedBack())
	}
	base := o.BaselineViolations()
	fmt.Fprintf(w, "%-20s %10s %10d %10d %12d\n", "Total", "", base, base-o.ClawedBack, o.ClawedBack)
	fmt.Fprintf(w, "cost: %d commits vetoed, %d at save-work decision points\n", o.VetoedCommits, o.VetoedSaveWork)
	fmt.Fprintf(w, "policy: mined from %d runs, %d commit-unsafe states\n", o.Policy.Runs, len(o.Policy.Unsafe))
}
