// Package nvi reimplements the paper's first workload: nvi, the Berkeley
// re-implementation of the vi text editor. It is a real modal editor over a
// line buffer — command and insert modes, cursor movement, character and
// line deletion, ex commands (:w, :q) that write the file through the
// simulated kernel — driven by a scripted keystroke session (fixed
// non-deterministic user input).
//
// The editor follows the simulator's one-event-per-step contract: each
// keystroke costs three steps (read input; apply, which is pure
// computation; render, a visible event), and :w adds one step per syscall.
//
// Fault instrumentation: the seven Table 1 fault types corrupt the editor
// at its fault points with realistic consequences — a heap bit flip lands
// in a buffer line and stays latent until a periodic checksum check, a
// deleted branch skips the cursor clamp, an off-by-one inserts past the
// line end, and so on. Detection happens through the editor's own
// consistency checks or a runtime panic, both of which the simulator turns
// into crash events.
package nvi

import (
	"fmt"
	"strings"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/kernel"
	"failtrans/internal/sim"
)

// Phases of the keystroke cycle.
const (
	phaseRead = iota
	phaseApply
	phaseRender
	phaseWrite // emits one syscall per step while writing the file
	phaseDone
)

// DefaultCheckEvery is how often (in keystrokes) the editor runs its full
// consistency check, in addition to every :w. Checking more often shortens
// dangerous paths (the paper's §2.6 mitigation) at some CPU cost.
const DefaultCheckEvery = 50

// Editor is the nvi application state.
type Editor struct {
	// A fork of a frozen template aliases the template's line buffers
	// (headers and bytes) until privatizeLines or snapshotUndo unshares
	// them; mutating commands must privatize before touching a line.
	//failtrans:cowshared privatizeLines,snapshotUndo
	Lines [][]byte
	Row   int
	Col   int
	// Mode: 0 command, 1 insert, 2 ex (after ':').
	Mode  int
	ExBuf []byte
	// PendingOp holds the first 'd' of a dd.
	PendingOp byte
	// Undo state: classic vi's single-level undo. UndoLines/UndoSums/
	// UndoRow/UndoCol snapshot the buffer before the last mutating
	// command; 'u' swaps it with the current buffer (so a second 'u'
	// redoes).
	UndoValid bool
	//failtrans:cowshared snapshotUndo
	UndoLines [][]byte
	//failtrans:cowshared snapshotUndo
	UndoSums []uint32
	UndoRow   int
	UndoCol   int
	Filename  string
	Dirty     bool

	// LineCount shadows len(Lines); the delete-instruction fault skips
	// its update and the consistency check compares them.
	LineCount int
	// LineSums holds a maintained checksum per buffer line, updated only
	// by legitimate edits of that line; heap corruption diverges from
	// its line's sum until a consistency check notices.
	//failtrans:cowshared privatizeLines,snapshotUndo
	LineSums []uint32

	Phase     int
	Key       byte
	Keystroke int

	// writeQueue holds the remaining syscalls of an in-progress :w.
	WriteStep int
	WriteFD   int64

	// Config (constant over a run, still marshaled for simplicity).
	ThinkTime  time.Duration
	KeyCost    time.Duration
	UseSyscall bool // route screen updates through a kernel write
	// RecoveryFile enables nvi's per-keystroke recovery-file append (the
	// real editor's vi.recover behavior), which gives the process its
	// characteristic high syscall rate.
	RecoveryFile bool
	RecFD        int64
	// CheckEvery sets the periodic consistency-check interval in
	// keystrokes (0 disables periodic checks; :w always checks).
	CheckEvery int
	// LastSubst reports the most recent :s command's result (shown by
	// the next render's status line region; informational).
	LastSubst string

	faultSalt uint64
	skipClamp bool
	// encBuf is the reusable MarshalState buffer (not part of the
	// state; rebuilt lazily after a restore).
	encBuf []byte
	// pendingFlip defers a heap bit flip to after the checksum
	// maintenance in the same apply step, so the corruption is latent
	// (set and consumed within one step; no checkpoint can interleave).
	pendingFlip bool

	// frozen marks a sealed fork template (sim.Freezer): the editor will
	// never be stepped again, so Fork hands out its buffers for
	// structural sharing instead of deep-copying them.
	frozen bool
	// linesShared / undoShared mark Lines+LineSums / UndoLines+UndoSums
	// as aliasing a frozen template's buffers; every in-place mutation
	// privatizes first (the buffer-modifying commands all pass through
	// snapshotUndo, the heap-flip fault and the restore path are guarded
	// explicitly). Runtime bookkeeping, never marshaled.
	linesShared bool
	undoShared  bool
}

// New returns an editor whose session will edit `filename` with the given
// initial contents.
func New(filename string, contents []string) *Editor {
	e := &Editor{Filename: filename, ThinkTime: 100 * time.Millisecond, KeyCost: 200 * time.Microsecond, CheckEvery: DefaultCheckEvery}
	for _, l := range contents {
		e.Lines = append(e.Lines, []byte(l))
	}
	if len(e.Lines) == 0 {
		e.Lines = [][]byte{nil}
	}
	e.LineCount = len(e.Lines)
	e.LineSums = make([]uint32, len(e.Lines))
	for i := range e.Lines {
		e.setLineSum(i)
	}
	return e
}

func (e *Editor) setLineSum(i int) {
	//failtrans:cowok every caller privatizes first (or runs in New on a fresh editor) — checksum maintenance always follows the edit that already unshared the buffer
	e.LineSums[i] = apputil.Checksum(e.Lines[i])
}

// Freeze implements sim.Freezer: it seals the editor as an immutable fork
// template. A frozen editor must never be stepped again; its buffers are
// handed to forks read-only and privatized by each fork on first mutation.
func (e *Editor) Freeze() { e.frozen = true }

// Fork implements sim.Forker: an independent copy of the editor. Unlike a
// MarshalState round trip it never touches the receiver (no shared encBuf,
// no flag writes), so a quiescent template editor may be forked from many
// goroutines at once. A frozen template shares its line buffers with the
// fork (copy-on-write, O(header) instead of O(document)); an unfrozen
// editor deep-copies.
func (e *Editor) Fork() (sim.Program, error) {
	ne := *e
	if e.frozen {
		ne.linesShared = true
		ne.undoShared = true
	} else {
		ne.Lines = forkLines(e.Lines)
		ne.UndoLines = forkLines(e.UndoLines)
		ne.UndoSums = append([]uint32(nil), e.UndoSums...)
		ne.LineSums = append([]uint32(nil), e.LineSums...)
	}
	ne.ExBuf = append([]byte(nil), e.ExBuf...)
	ne.encBuf = nil
	ne.frozen = false
	return &ne, nil
}

// privatizeLines unshares the working buffer from a frozen template before
// an in-place mutation that bypasses snapshotUndo (the heap-flip fault).
// Lines and LineSums share one flag, so both privatize together.
func (e *Editor) privatizeLines() {
	if !e.linesShared {
		return
	}
	e.Lines = forkLines(e.Lines)
	e.LineSums = append([]uint32(nil), e.LineSums...)
	e.linesShared = false
}

// forkLines deep-copies a line buffer (line bytes are edited in place).
// All lines are packed into one arena allocation — two allocations per
// fork instead of one per line. Each line's capacity is clamped to its
// length, so growing a line reallocates it privately instead of
// scribbling its arena neighbor; in-place edits stay within the line's
// own range.
func forkLines(lines [][]byte) [][]byte {
	if lines == nil {
		return nil
	}
	total := 0
	for _, l := range lines {
		total += len(l)
	}
	arena := make([]byte, 0, total)
	out := make([][]byte, len(lines))
	for i, l := range lines {
		if len(l) == 0 {
			continue // mirror the per-line copy, which yields nil here
		}
		start := len(arena)
		arena = append(arena, l...)
		out[i] = arena[start:len(arena):len(arena)]
	}
	return out
}

// Script builds the keystroke input script for a session: sequences of vi
// commands as individual key bytes.
func Script(keys string) [][]byte {
	out := make([][]byte, 0, len(keys))
	for i := 0; i < len(keys); i++ {
		out = append(out, []byte{keys[i]})
	}
	return out
}

// Name implements sim.Program.
func (e *Editor) Name() string { return "nvi" }

// Init implements sim.Program.
func (e *Editor) Init(ctx *sim.Ctx) error { return nil }

// CheckConsistency implements sim.Checker: the editor's full integrity
// check (shadow line count, cursor bounds, per-line checksums).
func (e *Editor) CheckConsistency() error {
	if e.LineCount != len(e.Lines) {
		return fmt.Errorf("nvi: line count %d != %d", e.LineCount, len(e.Lines))
	}
	if e.Row < 0 || e.Row >= len(e.Lines) || e.Col < 0 || e.Col > len(e.Lines[e.Row]) {
		return fmt.Errorf("nvi: cursor (%d,%d) out of bounds", e.Row, e.Col)
	}
	if len(e.LineSums) != len(e.Lines) {
		return fmt.Errorf("nvi: %d line sums for %d lines", len(e.LineSums), len(e.Lines))
	}
	for i, l := range e.Lines {
		if apputil.Checksum(l) != e.LineSums[i] {
			return fmt.Errorf("nvi: line %d checksum mismatch", i)
		}
	}
	return nil
}

// check runs the consistency check, crashing the process on a failure.
func (e *Editor) check(ctx *sim.Ctx) bool {
	if err := e.CheckConsistency(); err != nil {
		ctx.Crash(err.Error())
		return false
	}
	return true
}

// clamp keeps the cursor inside the buffer (unless the deleted-branch fault
// removed it).
func (e *Editor) clamp() {
	if e.skipClamp {
		return
	}
	if e.Row < 0 {
		e.Row = 0
	}
	if e.Row >= len(e.Lines) {
		e.Row = len(e.Lines) - 1
	}
	if e.Col < 0 {
		e.Col = 0
	}
	if e.Col > len(e.Lines[e.Row]) {
		e.Col = len(e.Lines[e.Row])
	}
}

// Step implements sim.Program.
func (e *Editor) Step(ctx *sim.Ctx) sim.Status {
	switch e.Phase {
	case phaseRead:
		// Asynchronous signals are handled between keystrokes, as a
		// real editor's event loop does: SIGWINCH forces a redraw.
		if sig, ok := ctx.TakeSignal(); ok {
			if sig == "SIGWINCH" {
				e.Phase = phaseRender
			}
			return sim.Ready
		}
		in, ok := ctx.Input()
		if !ok {
			e.Phase = phaseDone
			return sim.Ready
		}
		e.Key = in[0]
		e.Keystroke++
		e.Phase = phaseApply
		if e.ThinkTime > 0 {
			ctx.Sleep(e.ThinkTime)
			return sim.Sleeping
		}
		return sim.Ready

	case phaseApply:
		ctx.Compute(e.KeyCost)
		e.injectAtKey(ctx)
		e.apply(ctx)
		if e.RecoveryFile {
			e.appendRecoveryRecord(ctx)
		}
		if e.CheckEvery > 0 && e.Keystroke%e.CheckEvery == 0 {
			ctx.Compute(time.Duration(len(e.Lines)) * time.Microsecond)
			e.check(ctx) // a failed check crashes via ctx.Crash
		}
		return sim.Ready

	case phaseRender:
		e.render(ctx)
		e.Phase = phaseRead
		return sim.Ready

	case phaseWrite:
		return e.writeFileStep(ctx)

	default:
		return sim.Done
	}
}

// render emits the screen update: status line plus the cursor line. It
// trusts the cursor: a corrupted row crashes here, before the visible
// event (and before any commit-prior-to-visible).
func (e *Editor) render(ctx *sim.Ctx) {
	screen := fmt.Sprintf("[%d,%d %dL%s] %s", e.Row, e.Col, len(e.Lines), map[bool]string{true: " +", false: ""}[e.Dirty], e.Lines[e.Row])
	if e.UseSyscall {
		if _, err := ctx.Syscall("write", kernel.I64(1), []byte(screen)); err != nil {
			ctx.Crash(err.Error())
			return
		}
	} else {
		ctx.Output(screen)
	}
}

// apply executes one keystroke against the buffer. Pure computation — the
// surrounding steps carry the events.
func (e *Editor) apply(ctx *sim.Ctx) {
	e.Phase = phaseRender
	key := e.Key
	switch e.Mode {
	case 1: // insert mode
		switch key {
		case 0x1b: // ESC
			e.Mode = 0
			if e.Col > 0 {
				e.Col--
			}
		case '\n':
			// A template frozen mid-insert-mode resumes here without
			// passing the i/a/o snapshotUndo, so unshare explicitly.
			e.privatizeLines()
			rest := append([]byte(nil), e.Lines[e.Row][e.Col:]...)
			e.Lines[e.Row] = e.Lines[e.Row][:e.Col]
			e.Lines = append(e.Lines[:e.Row+1], append([][]byte{rest}, e.Lines[e.Row+1:]...)...)
			e.LineSums = append(e.LineSums[:e.Row+1], append([]uint32{0}, e.LineSums[e.Row+1:]...)...)
			e.setLineSum(e.Row)
			e.setLineSum(e.Row + 1)
			e.Row++
			e.Col = 0
			e.LineCount++
			e.Dirty = true
		default:
			e.insertChar(ctx, key)
		}
	case 2: // ex mode
		if key == '\n' {
			e.execEx(ctx)
			return
		}
		e.ExBuf = append(e.ExBuf, key)
	default: // command mode
		switch key {
		case 'i':
			e.snapshotUndo()
			e.Mode = 1
		case 'a':
			e.snapshotUndo()
			e.Mode = 1
			if e.Col < len(e.Lines[e.Row]) {
				e.Col++
			}
		case 'o':
			e.snapshotUndo()
			e.Lines = append(e.Lines[:e.Row+1], append([][]byte{nil}, e.Lines[e.Row+1:]...)...)
			e.LineSums = append(e.LineSums[:e.Row+1], append([]uint32{apputil.Checksum(nil)}, e.LineSums[e.Row+1:]...)...)
			e.Row++
			e.Col = 0
			e.LineCount++
			e.Mode = 1
			e.Dirty = true
		case 'h':
			e.Col--
			e.clamp()
		case 'l':
			e.Col++
			e.clamp()
		case 'j':
			e.Row++
			e.clamp()
		case 'k':
			e.Row--
			e.clamp()
		case '0':
			e.Col = 0
		case '$':
			e.Col = len(e.Lines[e.Row])
		case 'x':
			e.snapshotUndo()
			e.deleteChar(ctx)
		case 'D':
			e.snapshotUndo()
			e.Lines[e.Row] = e.Lines[e.Row][:e.Col]
			e.setLineSum(e.Row)
			e.clamp()
			e.Dirty = true
		case 'w':
			e.wordForward()
		case 'b':
			e.wordBack()
		case 'u':
			e.undo()
		case 'd':
			if e.PendingOp == 'd' {
				e.PendingOp = 0
				e.snapshotUndo()
				e.deleteLine(ctx)
			} else {
				e.PendingOp = 'd'
			}
		case ':':
			e.Mode = 2
			e.ExBuf = e.ExBuf[:0]
		}
	}
	if e.pendingFlip {
		e.pendingFlip = false
		e.flipHeapBitNow()
	}
}

// insertChar inserts key at the cursor.
func (e *Editor) insertChar(ctx *sim.Ctx, key byte) {
	col := e.Col
	switch ctx.Fault("nvi.insert") {
	case sim.OffByOne:
		col = e.Col + 1 // insert one past the cursor: may overrun the line
	case sim.HeapBitFlip:
		e.flipHeapBit()
	case sim.DestReg:
		e.Row = col // computed column lands in the row register
	case sim.InitFault:
		col = 0xdead // uninitialized index
	case sim.DeleteBranch:
		e.skipClamp = true
	case sim.DeleteInstr:
		// Skip the buffer update entirely: screen and file diverge
		// from the maintained checksum... the checksum is recomputed
		// from the buffer afterwards, so instead skip the checksum
		// maintenance by corrupting the shadow count.
		e.LineCount++
		return
	case sim.StackBitFlip:
		col ^= 1 << (e.salt() % 20) // a bit of the index flips in flight
	}
	// Templates frozen mid-insert-mode reach here without a fresh
	// snapshotUndo; the splice below writes Lines, LineSums and (within
	// the line's capacity) the line bytes themselves, so unshare first.
	e.privatizeLines()
	line := e.Lines[e.Row]
	line = append(line[:col], append([]byte{key}, line[col:]...)...)
	e.Lines[e.Row] = line
	e.setLineSum(e.Row)
	e.Col = col + 1
	e.Dirty = true
}

// deleteChar implements 'x'.
func (e *Editor) deleteChar(ctx *sim.Ctx) {
	// The dispatcher snapshots undo before 'x', but privatize defensively:
	// the splice below shifts line bytes in place, which must never land
	// in a frozen template's arena. No-op when the buffer is already ours.
	e.privatizeLines()
	line := e.Lines[e.Row]
	if len(line) == 0 {
		return
	}
	col := e.Col
	if ctx.Fault("nvi.delete") == sim.OffByOne {
		col++
	}
	if col >= len(line) && !e.skipClamp {
		col = len(line) - 1
	}
	e.Lines[e.Row] = append(line[:col], line[col+1:]...)
	e.setLineSum(e.Row)
	e.clamp()
	e.Dirty = true
}

// deleteLine implements 'dd'.
func (e *Editor) deleteLine(ctx *sim.Ctx) {
	// Same defensive unshare as deleteChar: the header splice shifts
	// entries of Lines/LineSums in place.
	e.privatizeLines()
	kind := ctx.Fault("nvi.deleteline")
	e.Lines = append(e.Lines[:e.Row], e.Lines[e.Row+1:]...)
	e.LineSums = append(e.LineSums[:e.Row], e.LineSums[e.Row+1:]...)
	if len(e.Lines) == 0 {
		e.Lines = [][]byte{nil}
		e.LineSums = []uint32{apputil.Checksum(nil)}
	}
	if kind != sim.DeleteInstr {
		e.LineCount = len(e.Lines)
	}
	e.clamp()
	e.Dirty = true
}

// execEx runs an ex command from ExBuf.
func (e *Editor) execEx(ctx *sim.Ctx) {
	cmd := string(e.ExBuf)
	e.ExBuf = e.ExBuf[:0]
	e.Mode = 0
	switch cmd {
	case "w", "wq":
		if !e.check(ctx) {
			return
		}
		e.WriteStep = 0
		e.Phase = phaseWrite
		if cmd == "wq" {
			e.PendingOp = 'q'
		}
	case "q", "q!":
		e.Phase = phaseDone
	default:
		if strings.HasPrefix(cmd, "s/") || strings.HasPrefix(cmd, "%s/") {
			e.substitute(ctx, cmd)
			return
		}
		e.Phase = phaseRender // unknown command: beep via render
	}
}

// substitute implements :s/old/new/ (current line) and :%s/old/new/ (whole
// buffer), first occurrence per line, as classic vi does without the g
// flag.
func (e *Editor) substitute(ctx *sim.Ctx, cmd string) {
	e.Phase = phaseRender
	body := strings.TrimPrefix(cmd, "%")
	parts := strings.Split(body, "/")
	// "s/old/new" or "s/old/new/".
	if len(parts) < 3 || parts[0] != "s" || parts[1] == "" {
		e.LastSubst = "?substitute " + cmd
		return
	}
	old, repl := parts[1], parts[2]
	rows := []int{e.Row}
	if strings.HasPrefix(cmd, "%") {
		rows = rows[:0]
		for i := range e.Lines {
			rows = append(rows, i)
		}
	}
	e.snapshotUndo()
	changed := 0
	for _, r := range rows {
		line := string(e.Lines[r])
		if idx := strings.Index(line, old); idx >= 0 {
			e.Lines[r] = []byte(line[:idx] + repl + line[idx+len(old):])
			e.setLineSum(r)
			changed++
		}
	}
	if changed > 0 {
		e.Dirty = true
	}
	e.LastSubst = fmt.Sprintf("%d substitutions", changed)
	e.clamp()
}

// writeFileStep emits one syscall per step: open, then one write per line,
// then truncate+close combined with a final timestamp read.
func (e *Editor) writeFileStep(ctx *sim.Ctx) sim.Status {
	switch {
	case e.WriteStep == 0:
		ret, err := ctx.Syscall("open", []byte(e.Filename), []byte{1})
		if err != nil {
			ctx.Crash("nvi: " + err.Error())
			return sim.Crashed
		}
		e.WriteFD = kernel.Int(ret[0])
		e.WriteStep = 1
	case e.WriteStep <= len(e.Lines):
		line := e.Lines[e.WriteStep-1]
		buf := make([]byte, 0, len(line)+1)
		buf = append(buf, line...)
		buf = append(buf, '\n')
		if _, err := ctx.Syscall("write", kernel.I64(e.WriteFD), buf); err != nil {
			ctx.Crash("nvi: " + err.Error())
			return sim.Crashed
		}
		e.WriteStep++
	default:
		if _, err := ctx.Syscall("close", kernel.I64(e.WriteFD)); err != nil {
			ctx.Crash("nvi: " + err.Error())
			return sim.Crashed
		}
		e.Dirty = false
		e.WriteStep = 0
		if e.PendingOp == 'q' {
			e.Phase = phaseDone
		} else {
			e.Phase = phaseRender
		}
	}
	return sim.Ready
}

// appendRecoveryRecord writes this keystroke to the recovery file —
// deterministic syscalls, so they batch within the apply step.
func (e *Editor) appendRecoveryRecord(ctx *sim.Ctx) {
	if e.RecFD == 0 {
		ret, err := ctx.Syscall("open", []byte(e.Filename+".rec"), []byte{1})
		if err != nil {
			ctx.Crash("nvi: " + err.Error())
			return
		}
		e.RecFD = kernel.Int(ret[0])
	}
	rec := []byte{e.Key, byte(e.Row), byte(e.Col)}
	if _, err := ctx.Syscall("write", kernel.I64(e.RecFD), rec); err != nil {
		ctx.Crash("nvi: " + err.Error())
	}
}

// snapshotUndo saves the buffer for vi's single-level undo.
func (e *Editor) snapshotUndo() {
	if e.linesShared {
		// The shared frozen buffer is itself an immutable image: adopt
		// it as the undo snapshot and privatize the working copy — one
		// arena copy where the eager fork paid two.
		e.UndoLines, e.UndoSums = e.Lines, e.LineSums
		e.undoShared = true
		e.Lines = forkLines(e.Lines)
		e.LineSums = append([]uint32(nil), e.LineSums...)
		e.linesShared = false
	} else {
		e.UndoLines = forkLines(e.Lines)
		e.UndoSums = append([]uint32(nil), e.LineSums...)
	}
	e.UndoRow, e.UndoCol = e.Row, e.Col
	e.UndoValid = true
}

// undo swaps the buffer with the undo snapshot (a second 'u' redoes, as in
// classic vi).
func (e *Editor) undo() {
	if !e.UndoValid {
		return
	}
	e.Lines, e.UndoLines = e.UndoLines, e.Lines
	e.LineSums, e.UndoSums = e.UndoSums, e.LineSums
	// The shared-ness travels with the buffers: a swapped-in shared
	// buffer is read-only until the next mutating command privatizes it.
	e.linesShared, e.undoShared = e.undoShared, e.linesShared
	e.Row, e.UndoRow = e.UndoRow, e.Row
	e.Col, e.UndoCol = e.UndoCol, e.Col
	e.LineCount = len(e.Lines)
	e.clamp()
	e.Dirty = true
}

// wordForward implements 'w': move to the start of the next word,
// continuing onto following lines.
func (e *Editor) wordForward() {
	line := e.Lines[e.Row]
	col := e.Col
	for col < len(line) && line[col] != ' ' {
		col++
	}
	for col < len(line) && line[col] == ' ' {
		col++
	}
	if col >= len(line) && e.Row+1 < len(e.Lines) {
		e.Row++
		e.Col = 0
		return
	}
	e.Col = col
	e.clamp()
}

// wordBack implements 'b': move to the start of the previous word.
func (e *Editor) wordBack() {
	line := e.Lines[e.Row]
	col := e.Col
	for col > 0 && (col > len(line) || col == len(line) || line[col-1] == ' ') {
		col--
	}
	for col > 0 && line[col-1] != ' ' {
		col--
	}
	if col == e.Col && e.Row > 0 && col == 0 {
		e.Row--
		e.Col = len(e.Lines[e.Row])
		return
	}
	e.Col = col
	e.clamp()
}

// injectAtKey applies the short-lived (stack) corruption at keystroke
// dispatch.
func (e *Editor) injectAtKey(ctx *sim.Ctx) {
	switch ctx.Fault("nvi.key") {
	case sim.StackBitFlip:
		// Corrupt the key byte in flight; usually dispatches a wrong
		// or invalid command.
		k := []byte{e.Key}
		apputil.FlipBit(k, e.salt())
		e.Key = k[0]
	case sim.InitFault:
		// The cursor column is used before initialization.
		e.Col = 1 << 20
	case sim.DestReg:
		e.Row, e.Col = e.Col, e.Row
	case sim.DeleteBranch:
		e.skipClamp = true
	case sim.HeapBitFlip:
		e.flipHeapBit()
	case sim.OffByOne:
		e.Col++
	case sim.DeleteInstr:
		e.LineCount--
	}
}

// flipHeapBit schedules a corruption of a pseudo-random buffer line; it is
// applied after the step's checksum maintenance so it stays latent until a
// consistency check notices it.
func (e *Editor) flipHeapBit() { e.pendingFlip = true }

func (e *Editor) flipHeapBitNow() {
	if len(e.Lines) == 0 {
		return
	}
	e.privatizeLines() // the flip writes line bytes in place
	s := e.salt()
	line := e.Lines[int(s)%len(e.Lines)]
	apputil.FlipBit(line, s>>8)
}

func (e *Editor) salt() uint64 {
	e.faultSalt = e.faultSalt*6364136223846793005 + 1442695040888963407
	return e.faultSalt
}

// Done reports whether the session has ended (:q/:wq or script
// exhaustion).
func (e *Editor) Done() bool { return e.Phase == phaseDone }

// Contents returns the document as strings (for assertions).
func (e *Editor) Contents() []string {
	out := make([]string, len(e.Lines))
	for i, l := range e.Lines {
		out[i] = string(l)
	}
	return out
}

// MarshalState implements sim.Program. The returned slice reuses one
// buffer across calls (the runtime copies it into the checkpoint image
// before the next marshal), so a steady-state commit allocates nothing
// here.
func (e *Editor) MarshalState() ([]byte, error) {
	enc := apputil.Enc{B: e.encBuf[:0]}
	defer func() { e.encBuf = enc.B }()
	enc.Int(len(e.Lines))
	for _, l := range e.Lines {
		enc.Bytes(l)
	}
	enc.Int(e.Row)
	enc.Int(e.Col)
	enc.Int(e.Mode)
	enc.Bytes(e.ExBuf)
	enc.B = append(enc.B, e.PendingOp)
	enc.Bool(e.UndoValid)
	enc.Int(len(e.UndoLines))
	for _, l := range e.UndoLines {
		enc.Bytes(l)
	}
	enc.Int(len(e.UndoSums))
	for _, s := range e.UndoSums {
		enc.I64(int64(s))
	}
	enc.Int(e.UndoRow)
	enc.Int(e.UndoCol)
	enc.Str(e.Filename)
	enc.Bool(e.Dirty)
	enc.Int(e.LineCount)
	enc.Int(len(e.LineSums))
	for _, s := range e.LineSums {
		enc.I64(int64(s))
	}
	enc.Int(e.Phase)
	enc.B = append(enc.B, e.Key)
	enc.Int(e.Keystroke)
	enc.Int(e.WriteStep)
	enc.I64(e.WriteFD)
	enc.I64(int64(e.ThinkTime))
	enc.I64(int64(e.KeyCost))
	enc.Bool(e.UseSyscall)
	enc.Bool(e.RecoveryFile)
	enc.I64(e.RecFD)
	enc.Int(e.CheckEvery)
	enc.Str(e.LastSubst)
	enc.I64(int64(e.faultSalt))
	enc.Bool(e.skipClamp)
	return enc.B, nil
}

// decLines decodes n length-prefixed lines, reusing old's header array and
// per-line buffers. Safe because Lines and UndoLines never share buffers
// (saveUndo copies, undo swaps whole slices) and the image being decoded is
// separate memory from any line buffer.
func decLines(d *apputil.Dec, old [][]byte, n int) [][]byte {
	lines := old[:0]
	if cap(lines) < n {
		lines = make([][]byte, 0, n)
	}
	for i := 0; i < n; i++ {
		var buf []byte
		if i < len(old) {
			buf = old[i]
		}
		lines = append(lines, d.BytesInto(buf))
	}
	return lines
}

// decSums decodes n checksum words, reusing old's backing array.
func decSums(d *apputil.Dec, old []uint32, n int) []uint32 {
	sums := old[:0]
	if cap(sums) < n {
		sums = make([]uint32, 0, n)
	}
	for i := 0; i < n; i++ {
		sums = append(sums, uint32(d.I64()))
	}
	return sums
}

// UnmarshalState implements sim.Program. Like MarshalState it is
// allocation-free in the steady state: line buffers, checksum arrays and
// rarely-changing strings are decoded back into the editor's existing
// storage, so the rollback path (restore every crash) costs no garbage once
// the editor has reached its working size.
func (e *Editor) UnmarshalState(data []byte) error {
	// Decoding reuses the existing buffers as write targets; buffers still
	// shared with a frozen template must be dropped, not written through.
	if e.linesShared {
		e.Lines, e.LineSums = nil, nil
		e.linesShared = false
	}
	if e.undoShared {
		e.UndoLines, e.UndoSums = nil, nil
		e.undoShared = false
	}
	d := apputil.Dec{B: data}
	n := d.Int()
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("nvi: implausible line count %d", n)
	}
	e.Lines = decLines(&d, e.Lines, n)
	e.Row = d.Int()
	e.Col = d.Int()
	e.Mode = d.Int()
	e.ExBuf = d.BytesInto(e.ExBuf)
	e.PendingOp = d.Byte()
	e.UndoValid = d.Bool()
	un := d.Int()
	if un < 0 || un > 1<<24 {
		return fmt.Errorf("nvi: implausible undo line count %d", un)
	}
	e.UndoLines = decLines(&d, e.UndoLines, un)
	un = d.Int()
	if un < 0 || un > 1<<24 {
		return fmt.Errorf("nvi: implausible undo sum count %d", un)
	}
	e.UndoSums = decSums(&d, e.UndoSums, un)
	e.UndoRow = d.Int()
	e.UndoCol = d.Int()
	e.Filename = d.StrReuse(e.Filename)
	e.Dirty = d.Bool()
	e.LineCount = d.Int()
	ns := d.Int()
	if ns < 0 || ns > 1<<24 {
		return fmt.Errorf("nvi: implausible sum count %d", ns)
	}
	e.LineSums = decSums(&d, e.LineSums, ns)
	e.Phase = d.Int()
	e.Key = d.Byte()
	e.Keystroke = d.Int()
	e.WriteStep = d.Int()
	e.WriteFD = d.I64()
	e.ThinkTime = time.Duration(d.I64())
	e.KeyCost = time.Duration(d.I64())
	e.UseSyscall = d.Bool()
	e.RecoveryFile = d.Bool()
	e.RecFD = d.I64()
	e.CheckEvery = d.Int()
	e.LastSubst = d.StrReuse(e.LastSubst)
	e.faultSalt = uint64(d.I64())
	e.skipClamp = d.Bool()
	return d.Err
}

// MarshalEssential implements sim.PartialState (§2.6: "reduce the
// comprehensiveness of the state saved"). Only the document, cursor, and
// session control state are preserved; the per-line checksums and the undo
// snapshot are derived and will be recomputed during recovery — so
// corruption in them is never committed, and undo history is the (small)
// price of a failure.
func (e *Editor) MarshalEssential() ([]byte, error) {
	var enc apputil.Enc
	enc.Int(len(e.Lines))
	for _, l := range e.Lines {
		enc.Bytes(l)
	}
	enc.Int(e.Row)
	enc.Int(e.Col)
	enc.Int(e.Mode)
	enc.Bytes(e.ExBuf)
	enc.B = append(enc.B, e.PendingOp)
	enc.Str(e.Filename)
	enc.Bool(e.Dirty)
	enc.Int(e.Phase)
	enc.B = append(enc.B, e.Key)
	enc.Int(e.Keystroke)
	enc.Int(e.WriteStep)
	enc.I64(e.WriteFD)
	enc.I64(int64(e.ThinkTime))
	enc.I64(int64(e.KeyCost))
	enc.Bool(e.UseSyscall)
	enc.Bool(e.RecoveryFile)
	enc.I64(e.RecFD)
	enc.Int(e.CheckEvery)
	enc.Str(e.LastSubst)
	enc.I64(int64(e.faultSalt))
	return enc.B, nil
}

// UnmarshalEssential restores the essential state and recomputes everything
// derived: the shadow line count, the per-line checksums, and a cleared
// undo history.
func (e *Editor) UnmarshalEssential(data []byte) error {
	d := apputil.Dec{B: data}
	n := d.Int()
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("nvi: implausible line count %d", n)
	}
	lines := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		lines = append(lines, d.Bytes())
	}
	e.Lines = lines
	e.Row = d.Int()
	e.Col = d.Int()
	e.Mode = d.Int()
	e.ExBuf = d.Bytes()
	e.PendingOp = d.Byte()
	e.Filename = d.Str()
	e.Dirty = d.Bool()
	e.Phase = d.Int()
	e.Key = d.Byte()
	e.Keystroke = d.Int()
	e.WriteStep = d.Int()
	e.WriteFD = d.I64()
	e.ThinkTime = time.Duration(d.I64())
	e.KeyCost = time.Duration(d.I64())
	e.UseSyscall = d.Bool()
	e.RecoveryFile = d.Bool()
	e.RecFD = d.I64()
	e.CheckEvery = d.Int()
	e.LastSubst = d.Str()
	e.faultSalt = uint64(d.I64())
	if d.Err != nil {
		return d.Err
	}
	// Recompute derived state from the essentials.
	e.LineCount = len(e.Lines)
	e.LineSums = make([]uint32, len(e.Lines))
	for i := range e.Lines {
		e.setLineSum(i)
	}
	e.UndoValid = false
	e.UndoLines = nil
	e.UndoSums = nil
	e.linesShared = false // Lines/LineSums were rebuilt wholesale above
	e.undoShared = false
	e.skipClamp = false
	e.pendingFlip = false
	return nil
}
