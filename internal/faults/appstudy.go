package faults

import (
	"fmt"
	"time"

	"failtrans/internal/apps/nvi"
	"failtrans/internal/apps/postgres"
	"failtrans/internal/campaign"
	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/statemachine"
)

// AppFaultTypes lists Table 1's seven fault types in the paper's order.
var AppFaultTypes = []sim.FaultKind{
	sim.StackBitFlip,
	sim.HeapBitFlip,
	sim.DestReg,
	sim.InitFault,
	sim.DeleteBranch,
	sim.DeleteInstr,
	sim.OffByOne,
}

// oneShot fires once at the n'th visit of any matching fault site. A fork
// resuming from a prefix snapshot seeds visits with the snapshot's count so
// the fault fires at the same absolute visit as a from-scratch run.
type oneShot struct {
	kind   sim.FaultKind
	fireAt int
	visits int
	// fired marks activation explicitly: firedAt records p.Steps, which
	// can legitimately be 0 (activation on the process's first event) and
	// so cannot double as the fired flag.
	fired     bool
	firedAt   int // p.Steps at activation
	firedStep int // world step count at activation (steps-replayed metric)
}

// At is consulted at every fault-site visit of every injection run.
//
//failtrans:hotpath
func (f *oneShot) At(p *sim.Proc, site string) sim.FaultKind {
	if f.fired {
		return sim.NoFault
	}
	f.visits++
	if f.visits < f.fireAt {
		return sim.NoFault
	}
	f.fired = true
	f.firedAt = p.Steps
	f.firedStep = p.World.StepCount()
	return f.kind
}

// RunResult is the outcome of a single fault-injection run.
type RunResult struct {
	Crashed bool
	// Violation reports a commit between fault activation and the
	// crash — the Lose-work violation Table 1 counts.
	Violation bool
	// WrongOutput reports a run that completed with output differing
	// from the fault-free run (no crash, silent corruption).
	WrongOutput bool
	// Recovered reports the end-to-end check: with the fault suppressed
	// on re-execution, did recovery complete the run?
	Recovered bool
	Timeline  recovery.FaultTimeline
	// Rec is the run's forensic ledger record, filled by the worker only
	// when the study carries a Ledger; the campaign acceptor appends it in
	// run order and returns it to the pool. Excluded from JSON so studies
	// with and without a ledger attached stay byte-comparable.
	Rec *ledger.Record `json:"-"`
}

// TypeResult aggregates one fault type's runs.
type TypeResult struct {
	Kind        sim.FaultKind
	Runs        int
	Crashes     int
	Violations  int // commit after activation, among crashes
	WrongOutput int
}

// ViolationPct is the Table 1 cell: percent of crashes that committed
// after fault activation.
func (t TypeResult) ViolationPct() float64 {
	if t.Crashes == 0 {
		return 0
	}
	return 100 * float64(t.Violations) / float64(t.Crashes)
}

// AppStudy is the Table 1 experiment configuration.
type AppStudy struct {
	App string // "nvi" or "postgres"
	// CrashTarget is how many crashes to collect per fault type (the
	// paper used ~50).
	CrashTarget int
	// MaxRunsPerType bounds the search for crashing runs.
	MaxRunsPerType int
	Policy         protocol.Policy
	Seed           int64
	// SessionLen scales the workload.
	SessionLen int
	// CheckBeforeCommit enables the paper's §2.6 mitigation: refuse
	// commits that fail the application's consistency check.
	CheckBeforeCommit bool
	// Parallel fans injection runs out over this many workers; 0 or 1
	// runs serially. Results are byte-identical either way: runs are
	// dispatched speculatively but accepted strictly in serial run order,
	// stopping at exactly the run the serial loop would have (see
	// internal/campaign).
	Parallel int
	// Snapshots serves injection runs from a prefix-snapshot cache: one
	// template run per study executes the clean session, capturing world
	// snapshots keyed by fault-site visit count; each injection run forks
	// the snapshot below its fire point and resumes, skipping the clean
	// prefix. Results are byte-identical to the from-scratch loop.
	Snapshots bool
	// COW freezes every captured snapshot world as an immutable template,
	// so injection runs fork copy-on-write overlays — O(metadata) per fork,
	// pages privatized on first write — instead of deep copies. Off, forks
	// deep-copy the whole world. Results are byte-identical either way
	// (CI diffs the two study outputs); the knob exists for that check and
	// for the benchmark's before/after comparison.
	COW bool
	// Store, if non-nil, memoizes the study's frozen prefix cache
	// content-addressed by configuration and template digest, so repeated
	// studies of the same clean prefix (benchmark iterations, protocol
	// sweeps over one app/seed) skip the template run entirely. Only
	// consulted when COW is set: freezing is what guarantees a stored
	// template can never be mutated by the runs it serves.
	Store *SnapshotStore
	// WallClock, if set, supplies wall-clock nanoseconds for the fork
	// latency histogram. It is injected by the bench/cmd layers; the
	// deterministic core this study belongs to cannot call time.Now
	// itself.
	WallClock func() int64
	// CampaignObs, if non-nil, receives per-worker campaign counters.
	CampaignObs *obs.CampaignMetrics
	// CampaignTracer, if non-nil, receives one progress span per fault
	// type on track CampaignTrack.
	CampaignTracer *obs.Tracer
	CampaignTrack  int
	// Ledger, if non-nil, receives one forensic record per injection run,
	// appended from the campaign's ordered accept callback — strictly in
	// serial run order, on the calling goroutine — so the ledger bytes are
	// identical for any worker count. Records carry only logical run
	// coordinates (step positions, virtual time), which forking preserves,
	// so they are also identical with Snapshots/COW on or off.
	Ledger *ledger.Writer
	// RecordHook, if non-nil, also receives every accepted run's record (in
	// serial run order, before the record returns to the pool). The
	// two-phase veto campaign mines phase 1's machine through it without
	// any file round-trip.
	RecordHook func(*ledger.Record)
	// Veto, if non-nil, arms dc's commit-veto hook with a mined
	// dangerous-path policy: before every policy-driven commit the run
	// locates itself in the mined machine's commit-count space (the same
	// CommitStateKey/ActStateKey coordinates the miner uses) and the
	// commit is deferred when the policy marks that state doomed. Veto-off
	// studies are byte-identical to pre-veto ones — the hook is never
	// installed, and mined pre-activation states are never doomed (every
	// activation grants its source state an uncolorable escape edge), so
	// the shared snapshot template needs no veto of its own.
	Veto *statemachine.VetoPolicy
}

// NewAppStudy returns the paper's configuration for the given app.
func NewAppStudy(app string) *AppStudy {
	return &AppStudy{
		App:            app,
		CrashTarget:    50,
		MaxRunsPerType: 400,
		Policy:         protocol.CPVS,
		Seed:           1,
		SessionLen:     400,
		Snapshots:      true,
		COW:            true,
	}
}

// buildWorld constructs a fresh instrumented world for one run.
func (s *AppStudy) buildWorld(seed int64) (*sim.World, error) {
	switch s.App {
	case "nvi":
		e := nvi.New("study.txt", NviInitial())
		e.ThinkTime = 0       // the paper's crash tests used non-interactive nvi
		e.RecoveryFile = true // per-keystroke syscalls, ~10x postgres's rate
		w := sim.NewWorld(seed, e)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = nvi.Script(NviSession(seed, s.SessionLen))
		return w, nil
	case "postgres":
		db := postgres.New("study.dat")
		w := sim.NewWorld(seed, db)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = postgres.Script(PostgresSession(seed, s.SessionLen))
		return w, nil
	default:
		return nil, fmt.Errorf("faults: unknown app %q", s.App)
	}
}

// cleanOutputs runs the session fault-free and returns its visible output.
func (s *AppStudy) cleanOutputs(seed int64) ([]string, error) {
	w, err := s.buildWorld(seed)
	if err != nil {
		return nil, err
	}
	w.RecordTrace = false
	if err := w.Run(); err != nil {
		return nil, err
	}
	return w.Outputs[0], nil
}

// fireBase is the first eligible fire point, in fault-site visits: the
// paper skips the first few visits so faults land in steady-state
// execution, not in startup.
const fireBase = 5

// fireSpan is the width of the fire-point draw window. It scales with the
// session but never collapses below one, so fireAtFor is total for every
// SessionLen >= 1 (SessionLen/2 alone is zero for a one-step session, and
// Intn(0) panics).
func (s *AppStudy) fireSpan() int {
	span := s.SessionLen / 2
	if span < 1 {
		span = 1
	}
	return span
}

// fireHorizon is the deepest fault-site visit any injector can still fire
// at — the maximum fireAtFor draw. The snapshot template stops capturing
// past it; deriving both from fireSpan keeps the draw window and the
// template horizon from drifting apart.
func (s *AppStudy) fireHorizon() int { return fireBase + s.fireSpan() - 1 }

// fireAtFor derives the injection run's fire point (in fault-site visits)
// from its injection seed, uniform over [fireBase, fireHorizon].
func (s *AppStudy) fireAtFor(injSeed int64) int {
	r := newSplitmix(injSeed ^ 0x5deece66d)
	return fireBase + r.Intn(s.fireSpan())
}

// noteReplay accounts one activated run's re-executed clean prefix: the
// steps from the run's resume point (0 from scratch, the snapshot's step
// count for a fork) to fault activation.
func (s *AppStudy) noteReplay(inj *oneShot, baseSteps int) {
	if s.CampaignObs == nil || !inj.fired {
		return
	}
	s.CampaignObs.Snapshot.AddReplay(inj.firedStep - baseSteps)
}

// noteCOW accounts one finished fork's copy-on-write cost: segment pages
// privatized by the recovery layer plus files privatized by the kernel
// (counted as pages too — both are first-touch copy units), and the bytes
// moved. Zero for deep-copied forks, so the counters double as proof the
// COW path was actually exercised.
func (s *AppStudy) noteCOW(w *sim.World, d *dc.DC) {
	if s.CampaignObs == nil || d == nil {
		return
	}
	pages, bytes := d.CowStats()
	if k, ok := w.OS.(*kernel.Kernel); ok {
		pages += k.CowFiles
		bytes += k.CowBytes
	}
	if pages > 0 || bytes > 0 {
		s.CampaignObs.Snapshot.AddCOW(pages, bytes)
	}
}

// finishRun classifies a completed injection run (everything but the
// end-to-end recovery check, which needs a second run).
func (s *AppStudy) finishRun(w *sim.World, inj *oneShot, commits []int, clean []string) RunResult {
	var res RunResult
	p := w.Procs[0]
	if !inj.fired {
		return res // fault never activated: discard
	}
	res.Timeline = recovery.FaultTimeline{
		Commits:    commits,
		Activation: inj.firedAt,
		Crash:      p.Steps,
	}
	if !p.Dead() {
		// Completed despite the fault: silent wrong output?
		res.WrongOutput = !equalOutputs(w.Outputs[0], clean)
		return res
	}
	res.Crashed = true
	res.Violation = res.Timeline.CommitAfterActivation()
	return res
}

// records reports whether the study fills per-run forensic records (for
// the ledger file, the in-memory record hook, or both).
func (s *AppStudy) records() bool { return s.Ledger != nil || s.RecordHook != nil }

// armVeto installs the study's commit-veto policy on one run's DC. The
// closure tracks the run's position in the mined machine's commit-count
// space from the same commits slice the CommitHook fills: after n commits
// with no activation the run is at CommitStateKey(n); after activation it
// is at ActStateKey(k, kind, n-k) with k the commits strictly before the
// activation step — exactly how the miner places ledger records, so the
// policy's verdicts transfer.
func (s *AppStudy) armVeto(d *dc.DC, inj *oneShot, commits *[]int) {
	if s.Veto == nil {
		return
	}
	d.CommitVeto = func(p *sim.Proc, label string) bool {
		n := len(*commits)
		if !inj.fired {
			return s.Veto.CommitUnsafe(ledger.CommitStateKey(n))
		}
		k := 0
		for _, c := range *commits {
			if c < inj.firedAt {
				k++
			}
		}
		return s.Veto.CommitUnsafe(ledger.ActStateKey(k, inj.kind.String(), n-k))
	}
}

// ledgerRecord renders one finished injection run as a forensic record.
// Every field is a logical coordinate of the simulated run — process step
// positions, world step counts, virtual time — all of which World.Fork
// preserves, so a record is identical whether the run executed from
// scratch, from a deep-copied snapshot, or from a COW overlay. The
// physical counts that DO differ by mode (steps actually re-executed,
// fork latencies) stay in obs.SnapshotMetrics.
func (s *AppStudy) ledgerRecord(kind sim.FaultKind, w *sim.World, d *dc.DC, inj *oneShot, commits []int, res RunResult) *ledger.Record {
	r := ledger.Get()
	if s.Veto != nil {
		r.VetoActive = true
		r.VetoN = d.Stats.CommitsVetoed
		r.VetoSaveWorkN = d.Stats.VetoedSaveWork
	}
	r.Study = "table1"
	r.App = s.App
	r.Protocol = s.Policy.Name
	r.Medium = stablestore.Rio.Name
	r.Kind = kind.String()
	r.Seed = s.Seed
	r.FireAt = int64(inj.fireAt)
	p := w.Procs[0]
	r.Steps = p.Steps
	r.WorldSteps = w.StepCount()
	r.VClockUS = int64(w.Clock / time.Microsecond)
	if inj.fired {
		r.Activation = inj.firedAt
		r.PrefixSteps = inj.firedStep
	}
	r.CommitN = len(commits)
	r.Commits = append(r.Commits[:0], commits...)
	switch {
	case !inj.fired:
		r.Outcome = ledger.Inert
	case res.Crashed:
		r.Outcome = ledger.Crashed
		r.Crash = p.Steps
		r.LoseWork = res.Violation
		r.Recovered = res.Recovered
		last := 0
		for _, c := range commits {
			if c <= p.Steps {
				last = c
			}
		}
		r.RollbackDepth = p.Steps - last
		for i, c := range commits {
			if c >= inj.firedAt && c <= p.Steps {
				if r.ViolFirst < 0 {
					r.ViolFirst = i
				}
				r.ViolN++
			}
		}
	case res.WrongOutput:
		r.Outcome = ledger.WrongOutput
		r.SaveWork = true
	default:
		r.Outcome = ledger.Completed
	}
	return r
}

// acceptLedger appends a run's record (if the worker filled one) from the
// campaign acceptor and recycles it.
func (s *AppStudy) acceptLedger(run int, rec *ledger.Record) {
	if rec == nil {
		return
	}
	rec.Run = run
	if s.Ledger != nil {
		s.Ledger.Append(rec)
	}
	if s.RecordHook != nil {
		s.RecordHook(rec)
	}
	ledger.Put(rec)
}

// RunOne executes a single injection run from scratch: arm the fault at a
// point derived from injSeed (the workload session itself is fixed by the
// study seed), run under the study protocol, record the timeline, then
// (for crashes) re-run end-to-end with recovery enabled and the fault
// suppressed.
func (s *AppStudy) RunOne(kind sim.FaultKind, injSeed int64, clean []string) (RunResult, error) {
	var res RunResult
	w, err := s.buildWorld(s.Seed)
	if err != nil {
		return res, err
	}
	w.RecordTrace = false
	inj := &oneShot{kind: kind, fireAt: s.fireAtFor(injSeed)}
	w.Faults = inj
	d := dc.New(w, s.Policy, stablestore.Rio)
	d.DisableRecovery = true
	d.CheckBeforeCommit = s.CheckBeforeCommit
	var commits []int
	d.CommitHook = func(p *sim.Proc, label string) {
		commits = append(commits, p.Steps)
	}
	s.armVeto(d, inj, &commits)
	if err := d.Attach(); err != nil {
		return res, err
	}
	if err := w.Run(); err != nil {
		return res, err
	}
	s.noteReplay(inj, 0)
	res = s.finishRun(w, inj, commits, clean)
	if res.Crashed {
		res.Recovered = s.endToEnd(kind, inj.fireAt)
	}
	if s.records() {
		res.Rec = s.ledgerRecord(kind, w, d, inj, commits, res)
	}
	return res, nil
}

// endToEnd re-runs the same scenario with recovery enabled; the injector
// fires once (activating identically), the crash rolls the process back,
// and the one-shot injector stays quiet during re-execution ("suppressing
// the fault activation during recovery"). Success means the run completes
// without looping on crashes.
func (s *AppStudy) endToEnd(kind sim.FaultKind, fireAt int) bool {
	w, err := s.buildWorld(s.Seed)
	if err != nil {
		return false
	}
	w.RecordTrace = false
	inj := &oneShot{kind: kind, fireAt: fireAt}
	w.Faults = inj
	d := dc.New(w, s.Policy, stablestore.Rio)
	d.CheckBeforeCommit = s.CheckBeforeCommit
	// The end-to-end check runs under the same veto the measured run did;
	// a one-shot injector stays fired across rollback, so post-recovery
	// commits keep consulting the activated chain.
	var commits []int
	if s.Veto != nil {
		d.CommitHook = func(p *sim.Proc, label string) {
			commits = append(commits, p.Steps)
		}
		s.armVeto(d, inj, &commits)
	}
	crashes := 0
	d.RecoveryHook = func(p *sim.Proc, reason string) {
		crashes++
		if crashes > 3 {
			// Crash-looping: the committed state re-triggers the
			// failure every time. Give up, as an operator would.
			d.DisableRecovery = true
		}
	}
	if err := d.Attach(); err != nil {
		return false
	}
	if err := w.Run(); err != nil {
		return false
	}
	s.noteReplay(inj, 0)
	return w.AllDone()
}

func equalOutputs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// campaignConfig builds one fault type's executor configuration.
func (s *AppStudy) campaignConfig(phase string) campaign.Config {
	return campaign.Config{
		Workers: s.Parallel,
		Phase:   phase,
		Metrics: s.CampaignObs,
		Tracer:  s.CampaignTracer,
		Track:   s.CampaignTrack,
	}
}

// Run executes the study for every fault type. Injection runs within a
// fault type fan out over s.Parallel workers; because each run builds a
// fresh world from (kind, injSeed) alone and results are accepted in
// serial run order with the same early exit, the aggregate is
// byte-identical to the serial loop's. With Snapshots set, one template
// run's prefix-snapshot cache serves every injection run of every fault
// type (the clean prefix is fault-type-independent); the cache is
// immutable once built, so parallel workers fork it freely.
func (s *AppStudy) Run() ([]TypeResult, error) {
	if s.SessionLen < 1 {
		return nil, fmt.Errorf("faults: SessionLen %d, need >= 1", s.SessionLen)
	}
	var out []TypeResult
	clean, err := s.cleanOutputs(s.Seed)
	if err != nil {
		return nil, err
	}
	var cache *prefixCache
	if s.Snapshots {
		if cache, err = s.cachedPrefix("table1", s.buildPrefixCache); err != nil {
			return nil, err
		}
	}
	for _, kind := range AppFaultTypes {
		kind := kind
		tr := TypeResult{Kind: kind}
		err := campaign.Run(s.campaignConfig("table1/"+s.App+"/"+kind.String()), s.MaxRunsPerType,
			func(run int) (RunResult, error) {
				// The workload session is fixed by the study seed; only
				// the injection point varies.
				injSeed := s.Seed*100000 + int64(run)
				if cache != nil {
					return s.runOneSnap(kind, injSeed, clean, cache)
				}
				return s.RunOne(kind, injSeed, clean)
			},
			func(run int, res RunResult) bool {
				s.acceptLedger(run, res.Rec)
				tr.Runs++
				if res.WrongOutput {
					tr.WrongOutput++
				}
				if res.Crashed {
					tr.Crashes++
					if res.Violation {
						tr.Violations++
					}
				}
				return tr.Crashes < s.CrashTarget
			})
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
