// Commit-veto policies: the serializable form of a dangerous-paths
// coloring. A VetoPolicy names the machine's states (the mined machines
// key them in commit-count space, e.g. "c3" or "a2/stop:1") and records
// which of those states are doomed — states where CommitUnsafeAt holds,
// so a commit taken there lies on a dangerous path. dc consults the
// policy at each commit decision point and defers commits in doomed
// states; the policy file ("ftveto v1") is what carries a phase-1
// campaign's mined coloring into a phase-2 veto campaign.
package statemachine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// VetoMagic is the first line of a policy file.
const VetoMagic = "ftveto v1"

// VetoPolicy is one machine's commit-veto verdicts, keyed by state name.
type VetoPolicy struct {
	// Key identifies the machine the policy was mined from
	// (study/app/protocol for ledger-mined machines).
	Key string
	// Runs counts the runs the source machine merged — the policy's
	// evidence base.
	Runs int64
	// Unsafe holds the names of states where a commit is vetoed.
	Unsafe map[string]bool
}

// CommitUnsafe reports whether a commit in the named state is vetoed.
// A nil policy vetoes nothing, and so does an unknown state: the veto
// is evidence-based, and a state the mining never saw carries none.
func (p *VetoPolicy) CommitUnsafe(state string) bool {
	if p == nil {
		return false
	}
	return p.Unsafe[state]
}

// NewVetoPolicyFromColoring builds a policy from a coloring and a state
// naming. Crash states and doomed states (CommitUnsafeAt) are unsafe.
func NewVetoPolicyFromColoring(key string, runs int64, names map[string]StateID, col *Coloring) *VetoPolicy {
	p := &VetoPolicy{Key: key, Runs: runs, Unsafe: make(map[string]bool)}
	for name, id := range names {
		if col.CommitUnsafeAt(id) {
			p.Unsafe[name] = true
		}
	}
	return p
}

// WritePolicies serializes policies in the given order as an ftveto v1
// document: a magic line, then per policy one "machine|key|runs" line
// followed by its sorted "unsafe|state" lines. Sorting makes the bytes a
// pure function of the policy contents.
func WritePolicies(w io.Writer, ps []*VetoPolicy) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(VetoMagic + "\n"); err != nil {
		return err
	}
	for _, p := range ps {
		if strings.ContainsAny(p.Key, "|\n") {
			return fmt.Errorf("ftveto: machine key %q contains a delimiter", p.Key)
		}
		if _, err := fmt.Fprintf(bw, "machine|%s|%d\n", p.Key, p.Runs); err != nil {
			return err
		}
		states := make([]string, 0, len(p.Unsafe))
		for s, bad := range p.Unsafe {
			if bad {
				states = append(states, s)
			}
		}
		sort.Strings(states)
		for _, s := range states {
			if strings.ContainsAny(s, "|\n") {
				return fmt.Errorf("ftveto: state %q contains a delimiter", s)
			}
			if _, err := bw.WriteString("unsafe|" + s + "\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPolicies parses an ftveto v1 document, returning policies in file
// order.
func ReadPolicies(r io.Reader) ([]*VetoPolicy, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ftveto: empty input")
	}
	if sc.Text() != VetoMagic {
		return nil, fmt.Errorf("ftveto: bad magic %q, want %q", sc.Text(), VetoMagic)
	}
	var ps []*VetoPolicy
	var cur *VetoPolicy
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.Split(text, "|")
		switch fields[0] {
		case "machine":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ftveto: line %d: machine line has %d fields, want 3", line, len(fields))
			}
			runs, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ftveto: line %d: bad run count %q", line, fields[2])
			}
			cur = &VetoPolicy{Key: fields[1], Runs: runs, Unsafe: make(map[string]bool)}
			ps = append(ps, cur)
		case "unsafe":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ftveto: line %d: unsafe line has %d fields, want 2", line, len(fields))
			}
			if cur == nil {
				return nil, fmt.Errorf("ftveto: line %d: unsafe line before any machine line", line)
			}
			cur.Unsafe[fields[1]] = true
		default:
			return nil, fmt.Errorf("ftveto: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ps, nil
}

// FindPolicy returns the policy with the given key, or nil.
func FindPolicy(ps []*VetoPolicy, key string) *VetoPolicy {
	for _, p := range ps {
		if p.Key == key {
			return p
		}
	}
	return nil
}
