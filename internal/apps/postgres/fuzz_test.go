package postgres

import "testing"

// FuzzDecodeTuple: arbitrary bytes must decode or error, never panic, and
// a successful decode must re-encode consistently.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(EncodeTuple(42, []byte("value")))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, v, err := DecodeTuple(data)
		if err != nil {
			return
		}
		re := EncodeTuple(k, v)
		k2, v2, err := DecodeTuple(re)
		if err != nil || k2 != k || string(v2) != string(v) {
			t.Fatalf("re-decode mismatch: %d %q %v", k2, v2, err)
		}
	})
}

// FuzzPageRead: slot reads on a page with fuzzed contents must error or
// return, never panic (corrupted pages come off the simulated disk).
func FuzzPageRead(f *testing.F) {
	p := NewPage(1)
	p.Insert([]byte("hello"))
	f.Add(p.Data[:64], 0)
	f.Add(make([]byte, 64), 3)
	f.Fuzz(func(t *testing.T, prefix []byte, slot int) {
		var pg Page
		copy(pg.Data[:], prefix)
		_, _ = pg.Read(slot % 1024)
		_ = pg.FreeSpace()
		_ = pg.NSlots()
		_ = pg.LiveTuples()
		_, _ = pg.Compact()
	})
}
