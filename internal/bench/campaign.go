package bench

import (
	"runtime"
	"time"

	"failtrans/internal/faults"
	"failtrans/internal/obs"
)

// CampaignSnapshotResult is the campaign-snapshot bench row: the same
// reduced nvi Table 1 campaign measured from scratch and snapshot-served,
// at the study's default SessionLen (where the clean prefix dominates each
// injection run). Both modes produce byte-identical study results; the row
// quantifies what the prefix-snapshot cache saves.
type CampaignSnapshotResult struct {
	App  string `json:"app"`
	Runs int64  `json:"runs"` // injection runs executed per mode

	ScratchNsPerRun  float64 `json:"scratch_ns_per_run"`
	SnapshotNsPerRun float64 `json:"snapshot_ns_per_run"`
	SpeedupX         float64 `json:"speedup_x"`

	// Steps of the clean prefix re-executed before fault activation, per
	// activated injection run: the work memoization removes.
	ScratchStepsReplayedPerRun  float64 `json:"scratch_steps_replayed_per_run"`
	SnapshotStepsReplayedPerRun float64 `json:"snapshot_steps_replayed_per_run"`
	ReplayReductionX            float64 `json:"replay_reduction_x"`

	Snapshots  int64 `json:"snapshots"`
	Forks      int64 `json:"forks"`
	ForkMeanNs int64 `json:"fork_mean_ns"`
}

// CampaignCOWResult is the campaign-cow bench row: the same reduced nvi
// Table 1 campaign measured three ways — from scratch, served from
// deep-copied snapshots, and served from frozen copy-on-write templates
// through the content-addressed snapshot store. All three modes produce
// byte-identical study results; the row quantifies what structural sharing
// saves on top of memoization.
type CampaignCOWResult struct {
	App  string `json:"app"`
	Runs int64  `json:"runs"` // injection runs executed per mode

	ScratchNsPerRun  float64 `json:"scratch_ns_per_run"`
	DeepForkNsPerRun float64 `json:"deepfork_ns_per_run"`
	COWNsPerRun      float64 `json:"cow_ns_per_run"`
	SpeedupX         float64 `json:"speedup_x"` // scratch / cow

	DeepForkMeanNs int64   `json:"deepfork_fork_mean_ns"`
	COWForkMeanNs  int64   `json:"cow_fork_mean_ns"`
	ForkSpeedupX   float64 `json:"fork_speedup_x"` // deep / cow

	// COW traffic observed in the final cow-mode iteration.
	PagesPrivatized int64 `json:"pages_privatized"`
	BytesCOW        int64 `json:"bytes_cow"`
	// StoreHits across the best-of-3 cow iterations sharing one store:
	// iterations 2 and 3 skip their template runs entirely.
	StoreHits int64 `json:"store_hits"`
}

// benchCampaignCOW measures the three modes serially and best-of-three,
// with the cow mode sharing one SnapshotStore across its iterations so the
// row also exercises (and accounts) prefix reuse between campaigns.
func benchCampaignCOW(scale int) (CampaignCOWResult, error) {
	res := CampaignCOWResult{App: "nvi"}
	store := faults.NewSnapshotStore()
	var storeHits int64
	runMode := func(snapshots, cow, shared bool) (ns, forkNs int64, m *obs.CampaignMetrics, err error) {
		for i := 0; i < 3; i++ {
			s := faults.NewAppStudy("nvi") // default SessionLen
			s.CrashTarget = 2 * scale
			s.MaxRunsPerType = s.CrashTarget * 12
			s.Snapshots = snapshots
			s.COW = cow
			if shared {
				s.Store = store
			}
			s.WallClock = wallClock
			m = obs.NewCampaignMetrics(1)
			s.CampaignObs = m
			// Start each timed iteration from a collected heap (as testing.B
			// does): without this, assist debt left by the previous mode's
			// allocations is charged to whichever goroutine allocates next —
			// here, the forks being timed.
			runtime.GC()
			start := time.Now()
			if _, err := s.Run(); err != nil {
				return 0, 0, nil, err
			}
			if d := time.Since(start).Nanoseconds(); i == 0 || d < ns {
				ns = d
			}
			// Best-of-3 for the fork mean as well: each iteration runs the
			// identical fork sequence, so the minimum is the least-noisy
			// estimate of the same quantity.
			if fm := m.Snapshot.ForkLatency.Mean(); i == 0 || (fm > 0 && fm < forkNs) {
				forkNs = fm
			}
			storeHits += m.Snapshot.StoreHits
		}
		return ns, forkNs, m, nil
	}

	scratchNs, _, scratchM, err := runMode(false, false, false)
	if err != nil {
		return res, err
	}
	deepNs, deepForkNs, _, err := runMode(true, false, false)
	if err != nil {
		return res, err
	}
	storeHits = 0 // only the cow mode's store traffic belongs in the row
	cowNs, cowForkNs, cowM, err := runMode(true, true, true)
	if err != nil {
		return res, err
	}

	res.Runs = scratchM.SerialRuns
	if res.Runs > 0 {
		res.ScratchNsPerRun = float64(scratchNs) / float64(res.Runs)
		res.DeepForkNsPerRun = float64(deepNs) / float64(res.Runs)
		res.COWNsPerRun = float64(cowNs) / float64(res.Runs)
	}
	if res.COWNsPerRun > 0 {
		res.SpeedupX = res.ScratchNsPerRun / res.COWNsPerRun
	}
	res.DeepForkMeanNs = deepForkNs
	res.COWForkMeanNs = cowForkNs
	if res.COWForkMeanNs > 0 {
		res.ForkSpeedupX = float64(res.DeepForkMeanNs) / float64(res.COWForkMeanNs)
	}
	res.PagesPrivatized = cowM.Snapshot.PagesPrivatized
	res.BytesCOW = cowM.Snapshot.BytesCOW
	res.StoreHits = storeHits
	return res, nil
}

// benchCampaignSnapshot runs the reduced campaign in both modes, serially
// (so the ns/run comparison is not confounded by worker scheduling) and
// best-of-three (so a cold first iteration does not masquerade as the
// steady state). The counters come from the final iteration; they are
// identical across iterations.
func benchCampaignSnapshot(scale int) (CampaignSnapshotResult, error) {
	res := CampaignSnapshotResult{App: "nvi"}
	runCampaign := func(snapshots bool) (ns, forkNs int64, m *obs.CampaignMetrics, err error) {
		for i := 0; i < 3; i++ {
			s := faults.NewAppStudy("nvi") // default SessionLen
			s.CrashTarget = 2 * scale
			s.MaxRunsPerType = s.CrashTarget * 12
			s.Snapshots = snapshots
			s.WallClock = wallClock
			m = obs.NewCampaignMetrics(1)
			s.CampaignObs = m
			runtime.GC() // collected heap per iteration, as testing.B does
			start := time.Now()
			if _, err := s.Run(); err != nil {
				return 0, 0, nil, err
			}
			if d := time.Since(start).Nanoseconds(); i == 0 || d < ns {
				ns = d
			}
			if fm := m.Snapshot.ForkLatency.Mean(); i == 0 || (fm > 0 && fm < forkNs) {
				forkNs = fm // best-of-3, same estimator as the wall clock
			}
		}
		return ns, forkNs, m, nil
	}

	scratchNs, _, scratchM, err := runCampaign(false)
	if err != nil {
		return res, err
	}
	snapNs, snapForkNs, snapM, err := runCampaign(true)
	if err != nil {
		return res, err
	}

	// Both modes execute the identical run sequence, so either run count
	// divides both timings.
	res.Runs = scratchM.SerialRuns
	if res.Runs > 0 {
		res.ScratchNsPerRun = float64(scratchNs) / float64(res.Runs)
		res.SnapshotNsPerRun = float64(snapNs) / float64(res.Runs)
	}
	if res.SnapshotNsPerRun > 0 {
		res.SpeedupX = res.ScratchNsPerRun / res.SnapshotNsPerRun
	}
	ssteps, sruns := scratchM.Snapshot.ReplaySnapshot()
	nsteps, nruns := snapM.Snapshot.ReplaySnapshot()
	if sruns > 0 {
		res.ScratchStepsReplayedPerRun = float64(ssteps) / float64(sruns)
	}
	if nruns > 0 {
		res.SnapshotStepsReplayedPerRun = float64(nsteps) / float64(nruns)
	}
	if res.SnapshotStepsReplayedPerRun > 0 {
		res.ReplayReductionX = res.ScratchStepsReplayedPerRun / res.SnapshotStepsReplayedPerRun
	}
	res.Snapshots = snapM.Snapshot.Snapshots
	res.Forks = snapM.Snapshot.Forks
	res.ForkMeanNs = snapForkNs
	return res, nil
}
