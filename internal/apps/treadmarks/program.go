package treadmarks

import (
	"fmt"
	"time"

	"failtrans/internal/apps/apputil"
	"failtrans/internal/sim"
)

// bodiesPerPage is how many bodies fit a DSM page.
const bodiesPerPage = PageSize / BodySize

// Application phases.
const (
	phStamp = iota
	phRead
	phCompute
	phBarrier1
	phWrite
	phBarrier2
	phReport
	phDone
)

// TM is one process of the TreadMarks Barnes-Hut computation: the DSM
// engine plus the phase-structured application driver.
type TM struct {
	DSM *dsm

	NBodies int
	Iters   int
	Iter    int
	Lo, Hi  int // my body slice

	Phase    int
	Cursor   int    // page cursor within Read/Write phases
	Bodies   []Body // gathered view of all bodies
	Updated  []Body // my slice after integration
	Gathered int    // how many pages copied this Read phase

	ReportEvery int
	ForceCost   time.Duration // virtual cost per body force evaluation
}

// New builds process `me` of an nprocs-wide run over n bodies for iters
// iterations. n must divide evenly by nprocs.
func New(me, nprocs, n, iters int) (*TM, error) {
	if n%nprocs != 0 {
		return nil, fmt.Errorf("treadmarks: %d bodies not divisible by %d processes", n, nprocs)
	}
	npages := (n + bodiesPerPage - 1) / bodiesPerPage
	chunk := n / nprocs
	t := &TM{
		DSM:         newDSM(me, nprocs, npages),
		NBodies:     n,
		Iters:       iters,
		Lo:          me * chunk,
		Hi:          (me + 1) * chunk,
		Bodies:      make([]Body, n),
		ReportEvery: 5,
		ForceCost:   50 * time.Microsecond,
	}
	return t, nil
}

// Fleet builds all processes of a run.
func Fleet(nprocs, n, iters int) ([]sim.Program, error) {
	progs := make([]sim.Program, 0, nprocs)
	for me := 0; me < nprocs; me++ {
		t, err := New(me, nprocs, n, iters)
		if err != nil {
			return nil, err
		}
		progs = append(progs, t)
	}
	return progs, nil
}

// Name implements sim.Program.
func (t *TM) Name() string { return fmt.Sprintf("treadmarks%d", t.DSM.Me) }

// Init implements sim.Program: write the deterministic initial condition
// into the pages this process initially owns.
func (t *TM) Init(ctx *sim.Ctx) error {
	all := InitBodies(t.NBodies)
	for p := range t.DSM.Pages {
		t.writePage(p, all)
	}
	return nil
}

// writePage lays the relevant bodies of `all` into owned page p.
func (t *TM) writePage(p int, all []Body) {
	buf := t.DSM.Pages[p]
	for j := 0; j < bodiesPerPage; j++ {
		idx := p*bodiesPerPage + j
		if idx >= t.NBodies {
			break
		}
		EncodeBody(buf[j*BodySize:], all[idx])
	}
}

// readPage copies page p's bodies into t.Bodies.
func (t *TM) readPage(p int) {
	buf := t.DSM.Pages[p]
	for j := 0; j < bodiesPerPage; j++ {
		idx := p*bodiesPerPage + j
		if idx >= t.NBodies {
			break
		}
		t.Bodies[idx] = DecodeBody(buf[j*BodySize:])
	}
}

// Step implements sim.Program. Protocol messages are served only while the
// application is blocked on a fault or barrier: serving them eagerly would
// let a FETCH steal a just-granted page before the application ever reads
// it, live-locking the ownership rotation (real DSMs pin a faulted-in page
// until the faulting access completes, for the same reason).
func (t *TM) Step(ctx *sim.Ctx) sim.Status {
	// 1. Drain the protocol outbox, one send per step. The pop happens
	// AFTER the send: a commit taken in the pre-send hook must capture
	// the message still queued, or a rollback to that commit would skip
	// the send and diverge (the runtime's one-event-per-step contract).
	if len(t.DSM.Outbox) > 0 {
		om := t.DSM.Outbox[0]
		if err := ctx.Send(om.To, om.Msg.encode()); err != nil {
			ctx.Crash(err.Error())
			return sim.Crashed
		}
		t.DSM.Outbox = t.DSM.Outbox[1:]
		return sim.Ready
	}
	// 2. Blocked (or finished): serve incoming protocol traffic.
	if t.DSM.AwaitPage >= 0 || t.DSM.BarrierWaiting || t.DSM.LockWaiting || t.Phase == phDone {
		if m, ok := ctx.Recv(); ok {
			dm, err := decodeMsg(m.Payload)
			if err != nil {
				ctx.Crash(err.Error())
				return sim.Crashed
			}
			if err := t.DSM.Handle(dm); err != nil {
				ctx.Crash(err.Error())
				return sim.Crashed
			}
			return sim.Ready
		}
		if t.Phase == phDone {
			return sim.Done
		}
		return sim.WaitMsg
	}
	// 3. Application progress.
	return t.progress(ctx)
}

func (t *TM) progress(ctx *sim.Ctx) sim.Status {
	switch t.Phase {
	case phStamp:
		if t.Iter >= t.Iters {
			t.Phase = phDone
			return sim.Done
		}
		ctx.Now() // iteration timestamp: transient ND, as in the real code's timing
		t.Phase = phRead
		t.Cursor = 0
		return sim.Ready
	case phRead:
		if t.Cursor >= t.DSM.NumPages {
			t.Phase = phCompute
			return sim.Ready
		}
		p := t.Cursor
		if !t.DSM.Have(p) {
			t.DSM.Fault(p)
			return sim.Ready // sends + waits follow
		}
		t.readPage(p)
		t.Cursor++
		return sim.Ready
	case phCompute:
		ctx.Compute(time.Duration(t.Hi-t.Lo) * t.ForceCost)
		t.Updated = StepBodies(t.Bodies, t.Lo, t.Hi)
		t.Phase = phBarrier1
		t.DSM.EnterBarrier()
		return sim.Ready
	case phBarrier1:
		t.Phase = phWrite
		t.Cursor = t.Lo / bodiesPerPage
		return sim.Ready
	case phWrite:
		lastPage := (t.Hi - 1) / bodiesPerPage
		if t.Cursor > lastPage {
			t.Phase = phBarrier2
			t.DSM.EnterBarrier()
			return sim.Ready
		}
		p := t.Cursor
		if !t.DSM.Have(p) {
			t.DSM.Fault(p)
			return sim.Ready
		}
		t.writeMySlice(p)
		t.Cursor++
		return sim.Ready
	case phBarrier2:
		t.Iter++
		if t.DSM.Me == 0 && t.Iter%t.ReportEvery == 0 {
			t.Phase = phReport
		} else {
			t.Phase = phStamp
		}
		return sim.Ready
	case phReport:
		b0 := t.Updated[0]
		ctx.Output(fmt.Sprintf("iter %d body0=(%.4f,%.4f,%.4f)", t.Iter, b0.X, b0.Y, b0.Z))
		t.Phase = phStamp
		return sim.Ready
	default:
		return sim.Done
	}
}

// writeMySlice writes the updated bodies that fall in page p.
func (t *TM) writeMySlice(p int) {
	buf := t.DSM.Pages[p]
	for j := 0; j < bodiesPerPage; j++ {
		idx := p*bodiesPerPage + j
		if idx < t.Lo || idx >= t.Hi || idx >= t.NBodies {
			continue
		}
		EncodeBody(buf[j*BodySize:], t.Updated[idx-t.Lo])
	}
}

// FinalBodies extracts this process's authoritative view of its own slice.
func (t *TM) FinalBodies() []Body {
	return append([]Body(nil), t.Updated...)
}

// MarshalState implements sim.Program.
func (t *TM) MarshalState() ([]byte, error) {
	var e apputil.Enc
	t.DSM.marshal(&e)
	e.Int(t.NBodies)
	e.Int(t.Iters)
	e.Int(t.Iter)
	e.Int(t.Lo)
	e.Int(t.Hi)
	e.Int(t.Phase)
	e.Int(t.Cursor)
	e.Int(len(t.Bodies))
	for _, b := range t.Bodies {
		marshalBody(&e, b)
	}
	e.Int(len(t.Updated))
	for _, b := range t.Updated {
		marshalBody(&e, b)
	}
	e.Int(t.Gathered)
	e.Int(t.ReportEvery)
	e.I64(int64(t.ForceCost))
	return e.B, nil
}

func marshalBody(e *apputil.Enc, b Body) {
	e.F64(b.X)
	e.F64(b.Y)
	e.F64(b.Z)
	e.F64(b.VX)
	e.F64(b.VY)
	e.F64(b.VZ)
	e.F64(b.Mass)
}

func unmarshalBody(d *apputil.Dec) Body {
	return Body{d.F64(), d.F64(), d.F64(), d.F64(), d.F64(), d.F64(), d.F64()}
}

// UnmarshalState implements sim.Program.
func (t *TM) UnmarshalState(data []byte) error {
	d := apputil.Dec{B: data}
	dsm, err := unmarshalDSM(&d)
	if err != nil {
		return err
	}
	t.DSM = dsm
	t.NBodies = d.Int()
	t.Iters = d.Int()
	t.Iter = d.Int()
	t.Lo = d.Int()
	t.Hi = d.Int()
	t.Phase = d.Int()
	t.Cursor = d.Int()
	n := d.Int()
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("treadmarks: implausible body count %d", n)
	}
	t.Bodies = make([]Body, 0, n)
	for i := 0; i < n; i++ {
		t.Bodies = append(t.Bodies, unmarshalBody(&d))
	}
	n = d.Int()
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("treadmarks: implausible updated count %d", n)
	}
	t.Updated = make([]Body, 0, n)
	for i := 0; i < n; i++ {
		t.Updated = append(t.Updated, unmarshalBody(&d))
	}
	t.Gathered = d.Int()
	t.ReportEvery = d.Int()
	t.ForceCost = time.Duration(d.I64())
	return d.Err
}

// SequentialOracle runs the same physics without DSM: iters steps over n
// bodies, returning the final bodies. The distributed run must match it
// exactly.
func SequentialOracle(n, iters int) []Body {
	bodies := InitBodies(n)
	for it := 0; it < iters; it++ {
		next := StepBodies(bodies, 0, n)
		copy(bodies, next)
	}
	return bodies
}
