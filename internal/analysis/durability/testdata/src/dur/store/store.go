// Package store stands in for a stable-store package listed in the
// analyzer's strict set: every error-returning function here must have its
// error handled by callers, whatever the function is called.
package store

// Commit pretends to make state durable.
func Commit(data []byte) error { return nil }

// Len returns no error, so callers owe it nothing.
func Len() int { return 0 }
