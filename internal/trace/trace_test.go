package trace

import (
	"bytes"
	"strings"
	"testing"

	"failtrans/internal/event"
)

func sample() *event.Trace {
	t := event.NewTrace(2)
	t.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Internal, ND: event.TransientND, Label: "rand"})
	t.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Commit})
	t.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Send, Msg: 9, Peer: 1})
	t.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Receive, Msg: 9, Peer: 0, ND: event.TransientND, Logged: true})
	t.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Visible, Label: "out"})
	t.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Receive, Msg: 77, Peer: 0, ND: event.TransientND})
	return t
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs != tr.NumProcs || len(got.Events) != len(tr.Events) {
		t.Fatalf("shape mismatch: %d/%d", got.NumProcs, len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Load(strings.NewReader(`{"version":2,"numProcs":1,"events":0}`)); err == nil {
		t.Error("unknown version must fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"numProcs":0,"events":0}`)); err == nil {
		t.Error("zero processes must fail")
	}
	// Out-of-order events must be rejected by the trace validator.
	in := `{"version":1,"numProcs":1,"events":1}
{"p":0,"i":5,"k":0}
`
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Error("out-of-order event must fail")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Events != 6 || s.NumProcs != 2 {
		t.Errorf("summary shape: %+v", s)
	}
	if s.ByKind[event.Visible] != 1 || s.ByKind[event.Send] != 1 || s.ByKind[event.Receive] != 2 {
		t.Errorf("kind counts: %v", s.ByKind)
	}
	// rand is effectively ND; the logged receive is not; the unmatched
	// receive is.
	if s.EffectivelyND != 2 {
		t.Errorf("EffectivelyND = %d, want 2", s.EffectivelyND)
	}
	if s.CommitsPerProc[0] != 1 || s.CommitsPerProc[1] != 0 {
		t.Errorf("commits = %v", s.CommitsPerProc)
	}
	if s.MessagesMatched != 1 || s.MessagesUnmatched != 1 {
		t.Errorf("matched/unmatched = %d/%d", s.MessagesMatched, s.MessagesUnmatched)
	}
	str := s.String()
	if !strings.Contains(str, "events=6") {
		t.Errorf("String = %q", str)
	}
}
