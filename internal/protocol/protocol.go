// Package protocol defines the Save-work protocols of Section 2.4 as
// declarative commit/log policies, plus the two-dimensional protocol space
// of Figures 3 and 4 in which every consistent-recovery protocol lives.
//
// One axis of the space is effort made to identify or convert (by logging)
// application non-determinism; the other is effort made to commit only for
// true visible events. The seven policies the paper measures — CAND, CPVS,
// CBNDVS, CAND-LOG, CBNDVS-LOG, CPV-2PC and CBNDV-2PC — are runnable under
// Discount Checking (internal/dc); the remaining catalog entries (SBL, FBL,
// Manetho, Targon/32, Hypervisor, Optimistic Logging, Coordinated
// Checkpointing) are placed in the space for the Figure 3 reproduction, and
// the logging-complete ones are runnable too.
package protocol

import "fmt"

// TwoPhaseScope selects which processes a coordinated commit includes.
type TwoPhaseScope uint8

const (
	// NoTwoPhase disables coordinated commits.
	NoTwoPhase TwoPhaseScope = iota
	// AllProcesses commits every process whenever any process executes a
	// visible event (the paper's CPV-2PC).
	AllProcesses
	// DependentProcesses commits only the executing process and the
	// processes whose uncommitted non-determinism it causally depends on
	// (the paper's CBNDV-2PC refinement).
	DependentProcesses
)

// Policy is a declarative Save-work protocol: when to log, when to commit.
type Policy struct {
	Name string

	// LogInput renders fixed-ND user input deterministic by logging it.
	LogInput bool
	// LogReceives renders message receive events deterministic.
	LogReceives bool
	// LogAll logs every non-deterministic event (the Hypervisor point:
	// never forced to commit).
	LogAll bool
	// LogAsync writes log records to a volatile buffer and forces them
	// to stable storage only before visible events (and commits) — the
	// Optimistic Logging discipline: "processes write log records to
	// stable storage asynchronously; when a process wants to do a
	// visible event, it first waits for all relevant log records to
	// make it to disk."
	LogAsync bool

	// CommitEveryEvent commits after every event of any kind — the
	// trivial protocol at the origin of the space, needing no knowledge
	// of event types at all.
	CommitEveryEvent bool
	// CommitAfterND commits immediately after every event that is still
	// effectively non-deterministic after logging (the CAND family).
	CommitAfterND bool
	// CommitBeforeVisible commits just before each visible event.
	CommitBeforeVisible bool
	// CommitBeforeSend commits just before each send (the pessimistic
	// alternative to tracking cross-process causality).
	CommitBeforeSend bool
	// OnlyIfNDSinceCommit suppresses a before-commit when the process
	// has executed no effectively-ND event since its last commit (the
	// CBNDVS refinement).
	OnlyIfNDSinceCommit bool
	// TwoPhase makes visible events trigger a coordinated commit
	// instead of relying on commit-before-send.
	TwoPhase TwoPhaseScope

	// SpaceX and SpaceY are the protocol's coordinates in the Figure 3
	// space (0–10): X = effort to identify/convert non-determinism,
	// Y = effort to commit only visible events.
	SpaceX, SpaceY float64

	// Runnable reports whether internal/dc can execute this policy.
	Runnable bool

	// Note describes the protocol's historical origin.
	Note string
}

// String returns the policy name.
func (p Policy) String() string { return p.Name }

// Coordinated reports whether visible events trigger a two-phase
// coordinated commit (of any scope) instead of per-process commits.
func (p Policy) Coordinated() bool { return p.TwoPhase != NoTwoPhase }

// LogsLabel reports whether the policy logs ND events with the given
// runtime label ("input", "recv", "gettimeofday", "rand", "sys.*").
func (p Policy) LogsLabel(label string) bool {
	if p.LogAll {
		return true
	}
	switch label {
	case "input":
		return p.LogInput
	case "recv":
		return p.LogReceives
	default:
		return false
	}
}

// The seven measured protocols of Figure 8.
var (
	// CAND commits immediately after every non-deterministic event; it
	// needs no knowledge of visible events.
	CAND = Policy{
		Name: "CAND", CommitAfterND: true,
		SpaceX: 3, SpaceY: 0, Runnable: true,
		Note: "commit after non-deterministic",
	}
	// CPVS commits just before every visible or send event; it needs no
	// knowledge of non-determinism.
	CPVS = Policy{
		Name: "CPVS", CommitBeforeVisible: true, CommitBeforeSend: true,
		SpaceX: 3, SpaceY: 5, Runnable: true,
		Note: "commit prior to visible or send",
	}
	// CBNDVS commits before a visible or send event only if the process
	// executed a non-deterministic event since its last commit.
	CBNDVS = Policy{
		Name: "CBNDVS", CommitBeforeVisible: true, CommitBeforeSend: true, OnlyIfNDSinceCommit: true,
		SpaceX: 5, SpaceY: 5, Runnable: true,
		Note: "commit between non-deterministic and visible or send",
	}
	// CANDLog is CAND with user input and receives rendered
	// deterministic by logging.
	CANDLog = Policy{
		Name: "CAND-LOG", CommitAfterND: true, LogInput: true, LogReceives: true,
		SpaceX: 7, SpaceY: 0, Runnable: true,
		Note: "CAND + input/receive logging",
	}
	// CBNDVSLog is CBNDVS with input/receive logging.
	CBNDVSLog = Policy{
		Name: "CBNDVS-LOG", CommitBeforeVisible: true, CommitBeforeSend: true, OnlyIfNDSinceCommit: true,
		LogInput: true, LogReceives: true,
		SpaceX: 7, SpaceY: 5, Runnable: true,
		Note: "CBNDVS + input/receive logging",
	}
	// CPV2PC uses two-phase commit: every process commits whenever any
	// process executes a visible event; sends need no commit.
	CPV2PC = Policy{
		Name: "CPV-2PC", CommitBeforeVisible: true, TwoPhase: AllProcesses,
		SpaceX: 3, SpaceY: 8, Runnable: true,
		Note: "commit prior to visible, two-phase",
	}
	// CBNDV2PC coordinates a commit of only the causally dependent
	// processes, and only when relevant non-determinism is uncommitted.
	CBNDV2PC = Policy{
		Name: "CBNDV-2PC", CommitBeforeVisible: true, OnlyIfNDSinceCommit: true, TwoPhase: DependentProcesses,
		SpaceX: 5, SpaceY: 8, Runnable: true,
		Note: "commit between non-deterministic and visible, two-phase",
	}
)

// Catalog protocols from the literature, placed in the space of Figure 3.
var (
	// CommitAll sits at the origin: it commits every event, needing no
	// knowledge of event types at all.
	CommitAll = Policy{
		Name: "COMMIT-ALL", CommitEveryEvent: true,
		SpaceX: 0, SpaceY: 0, Runnable: true,
		Note: "commit every event (origin of the space)",
	}
	// SBL is sender-based message logging: receives are logged, other
	// non-determinism forces commits.
	SBL = Policy{
		Name: "SBL", CommitAfterND: true, LogReceives: true,
		SpaceX: 5, SpaceY: 0, Runnable: true,
		Note: "sender-based logging (Johnson & Zwaenepoel)",
	}
	// FBL is family-based logging; operationally like SBL here, with log
	// records kept by downstream processes.
	FBL = Policy{
		Name: "FBL", CommitAfterND: true, LogReceives: true,
		SpaceX: 5, SpaceY: 2, Runnable: true,
		Note: "family-based logging (Alvisi et al.)",
	}
	// Targon32 converts all non-determinism except signals into logged
	// messages; signals force commits.
	Targon32 = Policy{
		Name: "TARGON/32", CommitAfterND: true, LogInput: true, LogReceives: true,
		SpaceX: 8, SpaceY: 0, Runnable: true,
		Note: "Targon/32 (Borg et al.)",
	}
	// Hypervisor logs every source of non-determinism under a virtual
	// machine and never commits.
	Hypervisor = Policy{
		Name: "HYPERVISOR", LogAll: true,
		SpaceX: 10, SpaceY: 0, Runnable: true,
		Note: "hypervisor-based fault tolerance (Bressoud & Schneider)",
	}
	// OptimisticLogging writes log records asynchronously and waits for
	// them before visible events.
	OptimisticLogging = Policy{
		Name: "OPTIMISTIC", LogAll: true, LogAsync: true,
		SpaceX: 8, SpaceY: 7, Runnable: true,
		Note: "optimistic logging (Strom & Yemini)",
	}
	// Manetho maintains antecedence graphs of all non-determinism,
	// flushed to stable storage before visible events.
	Manetho = Policy{
		Name: "MANETHO", LogAll: true, LogAsync: true,
		SpaceX: 9, SpaceY: 9, Runnable: true,
		Note: "Manetho antecedence graphs (Elnozahy & Zwaenepoel)",
	}
	// CoordinatedCheckpointing forces all recently communicating
	// processes to commit when one executes a visible event.
	CoordinatedCheckpointing = Policy{
		Name: "COORDINATED", CommitBeforeVisible: true, TwoPhase: AllProcesses,
		SpaceX: 1, SpaceY: 8, Runnable: true,
		Note: "coordinated checkpointing (Koo & Toueg)",
	}
)

// Measured lists the seven protocols of Figure 8, in the paper's order.
func Measured() []Policy {
	return []Policy{CAND, CPVS, CBNDVS, CANDLog, CBNDVSLog, CPV2PC, CBNDV2PC}
}

// Space lists every cataloged protocol for the Figure 3 reproduction.
func Space() []Policy {
	return []Policy{
		CommitAll, CAND, SBL, FBL, Targon32, Hypervisor,
		CPVS, CBNDVS, CANDLog, CBNDVSLog,
		CPV2PC, CBNDV2PC, OptimisticLogging, Manetho, CoordinatedCheckpointing,
	}
}

// ByName finds a policy by its (case-sensitive) name.
func ByName(name string) (Policy, error) {
	for _, p := range Space() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("protocol: unknown protocol %q", name)
}

// LeavesNonDeterminism reports the design-variable trend of Figure 4:
// protocols further from the horizontal axis (higher Y, fewer forced
// commits per ND event) leave more non-determinism uncommitted in the
// application, improving its chances against propagation failures. The
// returned score is heuristic: Y minus a penalty for converting ND by
// logging (logged events are replayed, which pins execution just as a
// commit does).
func (p Policy) LeavesNonDeterminism() float64 {
	score := p.SpaceY
	if p.CommitAfterND {
		score -= 5
	}
	if p.LogAll {
		score -= 5
	} else {
		if p.LogReceives {
			score -= 2
		}
		if p.LogInput {
			score -= 1
		}
	}
	return score
}
