// Package failtrans is a reproduction of "Exploring Failure Transparency
// and the Limits of Generic Recovery" (Lowell, Chandra & Chen, OSDI 2000)
// as a production-quality Go library.
//
// It provides:
//
//   - the paper's recovery theory as executable artifacts: the Save-work
//     invariant checker, the consistent-recovery output-equivalence
//     checker, orphan detection, and the single- and multi-process
//     Dangerous Paths algorithms behind the Lose-work theorem
//     (CheckSaveWork, Equivalent, FindOrphans, NewMachine);
//
//   - a Discount Checking reimplementation over a deterministic
//     discrete-event process simulator: full-process checkpoints in Vista
//     persistent segments, the seven measured Save-work protocols (CAND,
//     CPVS, CBNDVS, their logging variants, and the two-phase-commit
//     variants) plus the protocol-space catalog of Figure 3, rollback with
//     constrained re-execution, duplicate-filtered message redelivery, and
//     Rio-memory vs synchronous-disk commit cost models (NewWorld, NewDC);
//
//   - the paper's workload suite, implemented for real: the nvi editor,
//     the magic VLSI layout engine, the xpilot multiplayer game, a
//     TreadMarks-class DSM running Barnes-Hut, and a postgres-class
//     storage engine;
//
//   - the evaluation harness that regenerates Figure 8, Table 1 and
//     Table 2 (Fig8, Table1, Table2).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// vs published results.
package failtrans

import (
	"io"
	"runtime"

	"failtrans/internal/bench"
	"failtrans/internal/dc"
	"failtrans/internal/event"
	"failtrans/internal/protocol"
	"failtrans/internal/recovery"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
	"failtrans/internal/statemachine"
)

// Event model.
type (
	// Event is one state transition executed by a process.
	Event = event.Event
	// EventID names event e_p^i.
	EventID = event.ID
	// Trace records one run's events.
	Trace = event.Trace
	// HB is a happens-before oracle over a trace.
	HB = event.HB
)

// Event kinds and non-determinism classes.
const (
	Internal      = event.Internal
	Visible       = event.Visible
	Send          = event.Send
	Receive       = event.Receive
	Commit        = event.Commit
	Crash         = event.Crash
	Deterministic = event.Deterministic
	TransientND   = event.TransientND
	FixedND       = event.FixedND
)

// NewTrace returns an empty trace for n processes.
func NewTrace(n int) *Trace { return event.NewTrace(n) }

// NewHB computes happens-before for a trace.
func NewHB(t *Trace) *HB { return event.NewHB(t) }

// Recovery theory.
type (
	// SaveWorkViolation is one uncommitted non-deterministic dependence.
	SaveWorkViolation = recovery.SaveWorkViolation
	// Orphan is a process that committed a dependence on a lost event.
	Orphan = recovery.Orphan
	// FaultTimeline positions a propagation failure's marks for the
	// Lose-work checks.
	FaultTimeline = recovery.FaultTimeline
)

// CheckSaveWork verifies the Save-work invariant over a trace.
func CheckSaveWork(t *Trace) []SaveWorkViolation { return recovery.CheckSaveWork(t) }

// FindOrphans finds orphans for a hypothetical stop failure.
func FindOrphans(t *Trace, failed, executed int) []Orphan {
	return recovery.FindOrphans(t, failed, executed)
}

// Equivalent implements the paper's duplicates-allowed output equivalence.
func Equivalent(got, legal []string) (equivalent, complete bool) {
	return recovery.Equivalent(got, legal)
}

// Dangerous paths (the Lose-work theorem's machinery).
type (
	// Machine is a process state machine.
	Machine = statemachine.Machine
	// MachineEdge is one transition.
	MachineEdge = statemachine.Edge
	// Coloring is the dangerous-paths result.
	Coloring = statemachine.Coloring
	// StateID and MachineEventID index machines.
	StateID        = statemachine.StateID
	MachineEventID = statemachine.EventID
)

// NewMachine returns a machine with n states.
func NewMachine(n int) *Machine { return statemachine.New(n) }

// MultiProcessDangerousPaths runs the multi-process algorithm for process p.
func MultiProcessDangerousPaths(m *Machine, tr *Trace, p int) (*Coloring, error) {
	return statemachine.MultiProcessDangerousPaths(m, tr, p)
}

// Protocols and the protocol space.
type Policy = protocol.Policy

// The seven measured protocols and notable catalog points.
var (
	CAND       = protocol.CAND
	CPVS       = protocol.CPVS
	CBNDVS     = protocol.CBNDVS
	CANDLog    = protocol.CANDLog
	CBNDVSLog  = protocol.CBNDVSLog
	CPV2PC     = protocol.CPV2PC
	CBNDV2PC   = protocol.CBNDV2PC
	CommitAll  = protocol.CommitAll
	Hypervisor = protocol.Hypervisor
)

// MeasuredProtocols lists Figure 8's seven protocols.
func MeasuredProtocols() []Policy { return protocol.Measured() }

// ProtocolSpace lists the full Figure 3 catalog.
func ProtocolSpace() []Policy { return protocol.Space() }

// ProtocolByName resolves a protocol by name.
func ProtocolByName(name string) (Policy, error) { return protocol.ByName(name) }

// Simulator and Discount Checking.
type (
	// World is one simulated computation.
	World = sim.World
	// Proc is one simulated process.
	Proc = sim.Proc
	// Ctx is the application runtime interface.
	Ctx = sim.Ctx
	// Program is an application process.
	Program = sim.Program
	// Status is a Program step result.
	Status = sim.Status
	// Checker is the optional consistency-check extension of Program
	// (used by DC.CheckBeforeCommit, the §2.6 mitigation).
	Checker = sim.Checker
	// PartialStater is the optional essential-state extension of Program
	// (used by DC.EssentialOnly, the §2.6 reduce-the-state mitigation).
	PartialStater = sim.PartialState
	// FaultKind enumerates the injectable programming-error types.
	FaultKind = sim.FaultKind
	// FaultInjector decides whether a fault fires at an application
	// fault site.
	FaultInjector = sim.FaultInjector
	// DC is a Discount Checking instance.
	DC = dc.DC
	// Medium is a stable-storage cost model.
	Medium = stablestore.Medium
)

// Program step statuses.
const (
	Ready    = sim.Ready
	WaitMsg  = sim.WaitMsg
	Sleeping = sim.Sleeping
	Done     = sim.Done
	Crashed  = sim.Crashed
)

// The injectable fault kinds of Table 1.
const (
	NoFault      = sim.NoFault
	StackBitFlip = sim.StackBitFlip
	HeapBitFlip  = sim.HeapBitFlip
	DestReg      = sim.DestReg
	InitFault    = sim.InitFault
	DeleteBranch = sim.DeleteBranch
	DeleteInstr  = sim.DeleteInstr
	OffByOne     = sim.OffByOne
)

// Commit media.
var (
	// Rio models reliable main memory (the Rio file cache).
	Rio = stablestore.Rio
	// Disk models a synchronous late-1990s SCSI disk (DC-disk).
	Disk = stablestore.Disk
)

// NewWorld creates a deterministic simulated computation.
func NewWorld(seed int64, progs ...Program) *World { return sim.NewWorld(seed, progs...) }

// NewDC attaches Discount Checking to a world with the given commit policy
// and medium. Call (*DC).Attach before World.Run to take the initial
// checkpoints.
func NewDC(w *World, pol Policy, medium Medium) *DC { return dc.New(w, pol, medium) }

// Evaluation harness.
type (
	// Fig8Result is one application's protocol sweep.
	Fig8Result = bench.Fig8Result
	// Table1Result is the application fault study.
	Table1Result = bench.Table1Result
	// Table2Result is the OS fault study.
	Table2Result = bench.Table2Result
)

// Fig8 reproduces Figure 8 for one of "nvi", "magic", "xpilot",
// "treadmarks" at the given scale (1 = quick). The sweep's cells run in
// parallel across the machine's cores; results are byte-identical to a
// serial sweep (see internal/campaign).
func Fig8(app string, scale int) (*Fig8Result, error) {
	return bench.Fig8(app, scale, runtime.GOMAXPROCS(0), nil)
}

// Table1 reproduces the application fault-injection study with the given
// crash target per fault type (the paper used 50). Injection runs fan out
// across the machine's cores and are served from a prefix-snapshot cache;
// results are byte-identical to a serial from-scratch study.
func Table1(crashTarget int) (*Table1Result, error) {
	return bench.Table1(crashTarget, runtime.GOMAXPROCS(0), true, true, nil, nil, nil)
}

// Table2 reproduces the OS fault-injection study, parallel and
// snapshot-served as in Table1.
func Table2(crashTarget int) (*Table2Result, error) {
	return bench.Table2(crashTarget, runtime.GOMAXPROCS(0), true, true, nil, nil, nil)
}

// PrintProtocolSpace renders the Figure 3 protocol space.
func PrintProtocolSpace(w io.Writer) { bench.PrintSpace(w) }
