package faults

import (
	"bytes"
	"testing"

	"failtrans/internal/obs/ledger"
)

// ledgerBytes runs one configured AppStudy with a ledger attached and
// returns the ledger bytes plus the study results.
func ledgerBytes(t *testing.T, configure func(*AppStudy)) ([]byte, []TypeResult) {
	t.Helper()
	s := smallStudy("nvi")
	configure(s)
	var buf bytes.Buffer
	s.Ledger = ledger.NewWriter(&buf)
	rs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ledger.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rs
}

// TestLedgerByteIdentity is the ledger's core promise: the bytes are
// invariant across worker counts and across snapshot/COW execution modes,
// because records are emitted from the ordered acceptor and hold only
// logical run coordinates.
func TestLedgerByteIdentity(t *testing.T) {
	want, _ := ledgerBytes(t, func(s *AppStudy) {})
	if len(want) == 0 {
		t.Fatal("serial ledger is empty")
	}
	modes := map[string]func(*AppStudy){
		"parallel-4":        func(s *AppStudy) { s.Parallel = 4 },
		"snapshots":         func(s *AppStudy) { s.Snapshots = true },
		"snapshots-cow":     func(s *AppStudy) { s.Snapshots = true; s.COW = true },
		"parallel-4-snap":   func(s *AppStudy) { s.Parallel = 4; s.Snapshots = true },
		"parallel-7-all-on": func(s *AppStudy) { s.Parallel = 7; s.Snapshots = true; s.COW = true },
	}
	for name, conf := range modes {
		got, _ := ledgerBytes(t, conf)
		if !bytes.Equal(got, want) {
			t.Errorf("%s ledger diverged from serial (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestOSLedgerByteIdentity is the same promise for the OS study.
func TestOSLedgerByteIdentity(t *testing.T) {
	run := func(configure func(*OSStudy)) []byte {
		o := NewOSStudy("nvi")
		o.CrashTarget = 3
		o.MaxRunsPerType = 12
		o.SessionLen = 120
		configure(o)
		var buf bytes.Buffer
		o.Ledger = ledger.NewWriter(&buf)
		if _, err := o.Run(); err != nil {
			t.Fatal(err)
		}
		if err := o.Ledger.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(func(o *OSStudy) {})
	if len(want) == 0 {
		t.Fatal("serial ledger is empty")
	}
	for name, conf := range map[string]func(*OSStudy){
		"parallel-4":    func(o *OSStudy) { o.Parallel = 4 },
		"snapshots":     func(o *OSStudy) { o.Snapshots = true },
		"snapshots-cow": func(o *OSStudy) { o.Snapshots = true; o.COW = true },
	} {
		if got := run(conf); !bytes.Equal(got, want) {
			t.Errorf("%s OS ledger diverged from serial (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestLedgerReproducesStudy checks that the ledger is forensically
// complete: re-aggregating the records reproduces the study's own
// violation/crash counts per fault kind, and the dangerous-path
// cross-check agrees with the emitter on every run with positions.
func TestLedgerReproducesStudy(t *testing.T) {
	raw, rs := ledgerBytes(t, func(s *AppStudy) { s.Parallel = 4 })
	recs, err := ledger.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rp := ledger.Analyze(recs)
	byKind := map[string]*ledger.Group{}
	for _, g := range rp.Agg.Groups() {
		byKind[g.Key.Kind] = g
	}
	for _, tr := range rs {
		g := byKind[tr.Kind.String()]
		if g == nil {
			t.Fatalf("kind %s missing from ledger aggregates", tr.Kind)
		}
		if int(g.Runs) != tr.Runs || int(g.Crashes) != tr.Crashes ||
			int(g.LoseWork) != tr.Violations || int(g.WrongOutput) != tr.WrongOutput {
			t.Errorf("%s: ledger runs/crashes/losework/wrong = %d/%d/%d/%d, study = %d/%d/%d/%d",
				tr.Kind, g.Runs, g.Crashes, g.LoseWork, g.WrongOutput,
				tr.Runs, tr.Crashes, tr.Violations, tr.WrongOutput)
		}
	}
	for _, key := range rp.Miner.Keys() {
		md := rp.Miner.Get(key)
		if md.Checked == 0 {
			t.Errorf("%s: no runs cross-checked", key)
		}
		if md.Mismatched != 0 {
			t.Errorf("%s: %d/%d cross-check mismatches, first: %s",
				key, md.Mismatched, md.Checked, md.FirstMismatch)
		}
	}
}

// TestOSLedgerReproducesStudy is the Table 2 half: ledger aggregates must
// reproduce the OS study's crash/failed-recovery/propagation counts.
func TestOSLedgerReproducesStudy(t *testing.T) {
	o := NewOSStudy("nvi")
	o.CrashTarget = 3
	o.MaxRunsPerType = 12
	o.SessionLen = 120
	o.Parallel = 4
	var buf bytes.Buffer
	o.Ledger = ledger.NewWriter(&buf)
	rs, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp := ledger.Analyze(recs)
	byKind := map[string]*ledger.Group{}
	for _, g := range rp.Agg.Groups() {
		byKind[g.Key.Kind] = g
	}
	for _, tr := range rs {
		g := byKind[tr.Kind.String()]
		if g == nil {
			t.Fatalf("kind %s missing from ledger aggregates", tr.Kind)
		}
		if int(g.Runs) != tr.Runs || int(g.Crashes) != tr.Crashes ||
			int(g.LoseWork) != tr.FailedRecoveries || int(g.SaveWork) != tr.Propagations {
			t.Errorf("%s: ledger runs/crashes/losework/savework = %d/%d/%d/%d, study = %d/%d/%d/%d",
				tr.Kind, g.Runs, g.Crashes, g.LoseWork, g.SaveWork,
				tr.Runs, tr.Crashes, tr.FailedRecoveries, tr.Propagations)
		}
	}
}

// TestLedgerOptional checks that attaching a ledger does not perturb the
// study results themselves (the ledger is pure observation).
func TestLedgerOptional(t *testing.T) {
	s1 := smallStudy("nvi")
	plain, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, withLedger := ledgerBytes(t, func(s *AppStudy) {})
	if asJSON(t, plain) != asJSON(t, withLedger) {
		t.Fatal("attaching a ledger changed the study results")
	}
}
