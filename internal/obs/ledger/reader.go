package ledger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// outcomeByName inverts outcomeNames for the reader.
func outcomeByName(s string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == s {
			return Outcome(i), true
		}
	}
	return 0, false
}

// ReadAll parses a complete ledger stream. It accepts comment lines
// (leading '#') anywhere and validates the version line, the field count
// of every record, and the commit-list/commit-count consistency.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ledger: %w", err)
		}
		return nil, fmt.Errorf("ledger: empty input")
	}
	magic := sc.Text()
	var v int
	if _, err := fmt.Sscanf(magic, "ftledger v%d", &v); err != nil {
		return nil, fmt.Errorf("ledger: bad magic line %q", magic)
	}
	if v != Version {
		return nil, fmt.Errorf("ledger: unsupported version %d (reader speaks v%d)", v, Version)
	}
	var out []Record
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return out, nil
}

// ReadFiles reads and concatenates several ledger files in argument order
// (the multi-shard ftreport input).
func ReadFiles(open func(string) (io.ReadCloser, error), paths []string) ([]Record, error) {
	var out []Record
	for _, p := range paths {
		f, err := open(p)
		if err != nil {
			return nil, err
		}
		recs, err := ReadAll(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

func parseLine(text string) (Record, error) {
	var r Record
	f := strings.Split(text, "|")
	if len(f) != 21 {
		return r, fmt.Errorf("have %d fields, want 21", len(f))
	}
	ints := func(idx int, dst *int) error {
		v, err := strconv.Atoi(f[idx])
		if err != nil {
			return fmt.Errorf("field %d: %w", idx, err)
		}
		*dst = v
		return nil
	}
	if err := ints(0, &r.Run); err != nil {
		return r, err
	}
	r.Study, r.App, r.Protocol, r.Medium, r.Kind = f[1], f[2], f[3], f[4], f[5]
	seed, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil {
		return r, fmt.Errorf("seed: %w", err)
	}
	r.Seed = seed
	fire, err := strconv.ParseInt(f[7], 10, 64)
	if err != nil {
		return r, fmt.Errorf("fire: %w", err)
	}
	r.FireAt = fire
	out, ok := outcomeByName(f[8])
	if !ok {
		return r, fmt.Errorf("unknown outcome %q", f[8])
	}
	r.Outcome = out
	for _, c := range f[9] {
		switch c {
		case 'L':
			r.LoseWork = true
		case 'S':
			r.SaveWork = true
		case 'R':
			r.Recovered = true
		case '-':
		default:
			return r, fmt.Errorf("unknown flag %q", string(c))
		}
	}
	if err := ints(10, &r.Activation); err != nil {
		return r, err
	}
	if err := ints(11, &r.Crash); err != nil {
		return r, err
	}
	if err := ints(12, &r.Steps); err != nil {
		return r, err
	}
	if err := ints(13, &r.WorldSteps); err != nil {
		return r, err
	}
	if err := ints(14, &r.PrefixSteps); err != nil {
		return r, err
	}
	vclock, err := strconv.ParseInt(f[15], 10, 64)
	if err != nil {
		return r, fmt.Errorf("vclock: %w", err)
	}
	r.VClockUS = vclock
	if err := ints(16, &r.RollbackDepth); err != nil {
		return r, err
	}
	if err := ints(17, &r.CommitN); err != nil {
		return r, err
	}
	if err := ints(18, &r.ViolFirst); err != nil {
		return r, err
	}
	if err := ints(19, &r.ViolN); err != nil {
		return r, err
	}
	if f[20] != "-" {
		parts := strings.Split(f[20], ",")
		r.Commits = make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return r, fmt.Errorf("commit %d: %w", i, err)
			}
			r.Commits[i] = v
		}
		if len(r.Commits) != r.CommitN {
			return r, fmt.Errorf("commit list has %d entries but commitn=%d", len(r.Commits), r.CommitN)
		}
	}
	return r, nil
}
