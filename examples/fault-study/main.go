// fault-study: a miniature of the paper's Section 4 measurement — how often
// do the Save-work and Lose-work invariants conflict?
//
// Seven types of programming errors are injected into the nvi editor while
// it upholds Save-work under CPVS. For every crash we check whether a
// commit landed between fault activation and the crash (a Lose-work
// violation, making generic recovery impossible), and verify the result
// end-to-end by actually attempting the recovery.
//
// Run: go run ./examples/fault-study
package main

import (
	"fmt"

	"failtrans/internal/faults"
)

func main() {
	fmt.Println("fault-study: injecting faults into nvi under CPVS (mini Table 1)")
	fmt.Println()

	s := faults.NewAppStudy("nvi")
	s.CrashTarget = 10
	s.MaxRunsPerType = 80
	s.SessionLen = 250
	results, err := s.Run()
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-20s %6s %8s %11s %12s\n", "fault type", "runs", "crashes", "violations", "wrong-output")
	totalCrash, totalViol := 0, 0
	for _, tr := range results {
		fmt.Printf("%-20s %6d %8d %9d (%3.0f%%) %8d\n",
			tr.Kind, tr.Runs, tr.Crashes, tr.Violations, tr.ViolationPct(), tr.WrongOutput)
		totalCrash += tr.Crashes
		totalViol += tr.Violations
	}
	fmt.Println()
	if totalCrash > 0 {
		pct := 100 * float64(totalViol) / float64(totalCrash)
		fmt.Printf("overall: %d/%d crashes (%.0f%%) committed after fault activation.\n", totalViol, totalCrash, pct)
		fmt.Println("For those runs, upholding Save-work preserved the very state that")
		fmt.Println("re-triggers the failure: Save-work and Lose-work conflicted, and no")
		fmt.Println("application-generic recovery is possible (the Lose-work theorem).")
	}
}
