package magic

import (
	"fmt"
	"strconv"

	"failtrans/internal/apps/apputil"
)

// Cell is a reusable layout definition — magic's hierarchy primitive. A
// cell has its own layer tile sets; instances place it at an offset in the
// top-level layout. One level of hierarchy is supported (cells cannot
// contain instances), which covers the standard-cell usage pattern.
type Cell struct {
	Name   string
	Layers []Layer
}

// Instance places a cell at an offset in the top-level layout.
type Instance struct {
	Cell   string
	DX, DY int
}

func (l *Layout) cell(name string) *Cell {
	for i := range l.Cells {
		if l.Cells[i].Name == name {
			return &l.Cells[i]
		}
	}
	return nil
}

// cellLayer finds (or creates) a named layer within a cell, mirroring the
// top-level layer names on demand.
func (c *Cell) cellLayer(name string) *Layer {
	for i := range c.Layers {
		if c.Layers[i].Name == name {
			return &c.Layers[i]
		}
	}
	c.Layers = append(c.Layers, Layer{Name: name})
	return &c.Layers[len(c.Layers)-1]
}

// Flatten returns every rectangle on the named layer in the flattened view:
// the top-level tiles plus each instance's cell tiles translated by the
// instance offset.
func (l *Layout) Flatten(layerName string) []Rect {
	var out []Rect
	if top := l.layer(layerName); top != nil {
		out = append(out, top.Rects...)
	}
	for _, inst := range l.Instances {
		c := l.cell(inst.Cell)
		if c == nil {
			continue
		}
		for i := range c.Layers {
			if c.Layers[i].Name != layerName {
				continue
			}
			for _, r := range c.Layers[i].Rects {
				out = append(out, Rect{r.X1 + inst.DX, r.Y1 + inst.DY, r.X2 + inst.DX, r.Y2 + inst.DY})
			}
		}
	}
	return out
}

// FlatDRC runs the min-spacing check over the flattened view of a layer,
// catching violations between instances that per-cell checks cannot see.
func (l *Layout) FlatDRC(layerName string) int {
	rects := l.Flatten(layerName)
	violations := 0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			if a.Intersects(b) {
				violations++
				continue
			}
			if s := a.Spacing(b); s > 0 && s < l.MinSpacing {
				violations++
			}
		}
	}
	return violations
}

// FlatArea sums tile areas in the flattened view (overlaps counted twice,
// as magic's raw area report does before extraction).
func (l *Layout) FlatArea(layerName string) int {
	area := 0
	for _, r := range l.Flatten(layerName) {
		area += r.Area()
	}
	return area
}

// applyCellCommand handles the hierarchy command subset:
//
//	defcell <name>          start (or reopen) a cell definition
//	endcell                 return to top-level editing
//	place <name> <dx> <dy>  instantiate a cell at an offset
//	flatdrc <layer>         DRC over the flattened hierarchy (renders)
//	flatarea <layer>        area over the flattened hierarchy (renders)
//
// It reports whether the command was one of these.
func (l *Layout) applyCellCommand(fields []string) bool {
	switch fields[0] {
	case "defcell":
		if len(fields) != 2 {
			l.LastMsg = "?defcell <name>"
			l.Phase = phaseRender
			return true
		}
		if l.cell(fields[1]) == nil {
			l.Cells = append(l.Cells, Cell{Name: fields[1]})
		}
		l.Editing = fields[1]
		return true
	case "endcell":
		l.Editing = ""
		return true
	case "place":
		if len(fields) != 4 {
			l.LastMsg = "?place <cell> <dx> <dy>"
			l.Phase = phaseRender
			return true
		}
		if l.cell(fields[1]) == nil {
			l.LastMsg = "?cell " + fields[1]
			l.Phase = phaseRender
			return true
		}
		dx, _ := strconv.Atoi(fields[2])
		dy, _ := strconv.Atoi(fields[3])
		l.Instances = append(l.Instances, Instance{Cell: fields[1], DX: dx, DY: dy})
		return true
	case "flatdrc":
		v := l.FlatDRC(field(fields, 1))
		l.LastMsg = fmt.Sprintf("flatdrc %s: %d violations", field(fields, 1), v)
		l.Phase = phaseStamp
		return true
	case "flatarea":
		l.LastMsg = fmt.Sprintf("flatarea %s: %d", field(fields, 1), l.FlatArea(field(fields, 1)))
		l.Phase = phaseRender
		return true
	}
	return false
}

// marshalCells serializes the hierarchy state.
func (l *Layout) marshalCells(e *apputil.Enc) {
	e.Int(len(l.Cells))
	for _, c := range l.Cells {
		e.Str(c.Name)
		e.Int(len(c.Layers))
		for _, layer := range c.Layers {
			e.Str(layer.Name)
			e.Int(layer.Area)
			e.Int(len(layer.Rects))
			for _, r := range layer.Rects {
				e.Int(r.X1)
				e.Int(r.Y1)
				e.Int(r.X2)
				e.Int(r.Y2)
			}
		}
	}
	e.Int(len(l.Instances))
	for _, in := range l.Instances {
		e.Str(in.Cell)
		e.Int(in.DX)
		e.Int(in.DY)
	}
	e.Str(l.Editing)
}

// unmarshalCells reverses marshalCells.
func (l *Layout) unmarshalCells(d *apputil.Dec) error {
	n := d.Int()
	if n < 0 || n > 1<<16 {
		return fmt.Errorf("magic: implausible cell count %d", n)
	}
	l.Cells = make([]Cell, 0, n)
	for i := 0; i < n; i++ {
		var c Cell
		c.Name = d.Str()
		ln := d.Int()
		if ln < 0 || ln > 1<<16 {
			return fmt.Errorf("magic: implausible cell layer count %d", ln)
		}
		for j := 0; j < ln; j++ {
			var layer Layer
			layer.Name = d.Str()
			layer.Area = d.Int()
			rn := d.Int()
			if rn < 0 || rn > 1<<24 {
				return fmt.Errorf("magic: implausible cell rect count %d", rn)
			}
			for k := 0; k < rn; k++ {
				layer.Rects = append(layer.Rects, Rect{d.Int(), d.Int(), d.Int(), d.Int()})
			}
			c.Layers = append(c.Layers, layer)
		}
		l.Cells = append(l.Cells, c)
	}
	n = d.Int()
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("magic: implausible instance count %d", n)
	}
	l.Instances = make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		l.Instances = append(l.Instances, Instance{Cell: d.Str(), DX: d.Int(), DY: d.Int()})
	}
	l.Editing = d.Str()
	return d.Err
}
