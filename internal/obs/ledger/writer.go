package ledger

import (
	"errors"
	"io"
	"strconv"
	"strings"
)

// Version is the ledger format version the writer emits. The reader also
// accepts v1 (21 fields, no veto columns, no 'V' flag); v2 appends the
// veton|vetosw columns before the commit list and adds the 'V' flag for
// veto-active runs.
const Version = 2

// header is the two-line file preamble: a versioned magic line and a
// column-name comment.
const header = "ftledger v2\n" +
	"# run|study|app|protocol|medium|kind|seed|fire|outcome|flags|act|crash|steps|wsteps|prefix|vclock_us|rbdepth|commitn|violfirst|violn|veton|vetosw|commits\n"

// errBadField rejects a record whose string field contains the separator
// or a newline; the sticky error surfaces at the first Err check.
var errBadField = errors.New("ledger: record field contains '|' or newline")

// Writer renders records into the versioned pipe-separated text format,
// one line per record. It is not safe for concurrent use — by design the
// single producer is the campaign executor's ordered accept callback,
// which is what makes ledgers byte-identical across worker counts. Errors
// are sticky: the first write failure suppresses all later appends and is
// reported by Err.
type Writer struct {
	w    io.Writer
	buf  []byte
	err  error
	recs int64
}

// NewWriter writes the format header and returns a writer. Wrap files in a
// bufio.Writer (and flush before closing): Append issues one small Write
// per record.
func NewWriter(w io.Writer) *Writer {
	lw := &Writer{w: w}
	if _, err := io.WriteString(w, header); err != nil {
		lw.err = err
	}
	return lw
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Records returns the number of records appended so far.
func (w *Writer) Records() int64 { return w.recs }

// appendStr appends one string field and the separator.
func appendStr(b []byte, s string) []byte {
	b = append(b, s...)
	b = append(b, '|')
	return b
}

// appendInt appends one integer field and the separator.
func appendInt(b []byte, v int64) []byte {
	b = strconv.AppendInt(b, v, 10)
	b = append(b, '|')
	return b
}

// fieldOK rejects strings that would corrupt the line format.
func fieldOK(s string) bool {
	return strings.IndexByte(s, '|') < 0 && strings.IndexByte(s, '\n') < 0
}

// Append renders one record and writes it. The render path reuses the
// writer's buffer and builds every field with strconv appends, so a warm
// writer appends with zero heap allocations — the campaign acceptor sits
// between speculative workers and their results, and must not become an
// allocation tax on the run loop.
//
//failtrans:hotpath
func (w *Writer) Append(r *Record) {
	if w.err != nil {
		return
	}
	if !fieldOK(r.Study) || !fieldOK(r.App) || !fieldOK(r.Protocol) || !fieldOK(r.Medium) || !fieldOK(r.Kind) {
		w.err = errBadField
		return
	}
	b := w.buf[:0]
	b = appendInt(b, int64(r.Run))
	b = appendStr(b, r.Study)
	b = appendStr(b, r.App)
	b = appendStr(b, r.Protocol)
	b = appendStr(b, r.Medium)
	b = appendStr(b, r.Kind)
	b = appendInt(b, r.Seed)
	b = appendInt(b, r.FireAt)
	out := r.Outcome
	if out >= outcomeCount {
		out = Inert
	}
	b = appendStr(b, outcomeNames[out])
	n := len(b)
	if r.LoseWork {
		b = append(b, 'L')
	}
	if r.SaveWork {
		b = append(b, 'S')
	}
	if r.Recovered {
		b = append(b, 'R')
	}
	if r.VetoActive {
		b = append(b, 'V')
	}
	if len(b) == n {
		b = append(b, '-')
	}
	b = append(b, '|')
	b = appendInt(b, int64(r.Activation))
	b = appendInt(b, int64(r.Crash))
	b = appendInt(b, int64(r.Steps))
	b = appendInt(b, int64(r.WorldSteps))
	b = appendInt(b, int64(r.PrefixSteps))
	b = appendInt(b, r.VClockUS)
	b = appendInt(b, int64(r.RollbackDepth))
	b = appendInt(b, int64(r.CommitN))
	b = appendInt(b, int64(r.ViolFirst))
	b = appendInt(b, int64(r.ViolN))
	b = appendInt(b, int64(r.VetoN))
	b = appendInt(b, int64(r.VetoSaveWorkN))
	if len(r.Commits) == 0 {
		b = append(b, '-')
	} else {
		for i, c := range r.Commits {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(c), 10)
		}
	}
	b = append(b, '\n')
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.recs++
}
