package statemachine

import (
	"testing"

	"failtrans/internal/event"
)

// figure2Trace builds the paper's Figure 2: process B executes a transient
// ND event then sends to A; A receives. withCommit controls whether B
// commits between its ND event and the send.
func figure2Trace(withCommit bool) *event.Trace {
	tr := event.NewTrace(2)
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Internal, ND: event.TransientND, Label: "ND"})
	if withCommit {
		tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Commit})
	}
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	return tr
}

func TestSnapshotFromTrace(t *testing.T) {
	tr := figure2Trace(true)
	snap := SnapshotFromTrace(tr)
	if snap[0] != -1 {
		t.Errorf("A never committed, snapshot = %d", snap[0])
	}
	if snap[1] != 1 {
		t.Errorf("B's last commit should be local index 1, got %d", snap[1])
	}
}

// TestClassifyReceivesTransient: with B uncommitted, A's receive carries B's
// transient non-determinism and must be classified transient.
func TestClassifyReceivesTransient(t *testing.T) {
	tr := figure2Trace(false)
	snap := SnapshotFromTrace(tr)
	class, err := ClassifyReceives(tr, 0, snap)
	if err != nil {
		t.Fatal(err)
	}
	recvID := event.ID{P: 0, I: 0}
	if class[recvID] != event.TransientND {
		t.Errorf("receive classified %v, want transient", class[recvID])
	}
}

// TestClassifyReceivesFixed: once B commits after its ND event and before
// the send, A's receive is fixed — B will regenerate the same message
// deterministically during recovery.
func TestClassifyReceivesFixed(t *testing.T) {
	tr := figure2Trace(true)
	snap := SnapshotFromTrace(tr)
	class, err := ClassifyReceives(tr, 0, snap)
	if err != nil {
		t.Fatal(err)
	}
	recvID := event.ID{P: 0, I: 0}
	if class[recvID] != event.FixedND {
		t.Errorf("receive classified %v, want fixed", class[recvID])
	}
}

// TestClassifyReceivesLoggedTransientIgnored: a logged transient event is
// effectively deterministic, so it does not make downstream receives
// transient.
func TestClassifyReceivesLoggedTransientIgnored(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Internal, ND: event.TransientND, Logged: true})
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	class, err := ClassifyReceives(tr, 0, SnapshotFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if class[event.ID{P: 0, I: 0}] != event.FixedND {
		t.Error("receive downstream of a logged transient must be fixed")
	}
}

func TestClassifyReceivesBadSnapshot(t *testing.T) {
	tr := figure2Trace(false)
	if _, err := ClassifyReceives(tr, 0, CommitSnapshot{-1}); err == nil {
		t.Error("snapshot of the wrong size must be rejected")
	}
}

func TestClassifyReceivesUnmatchedSend(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 9, Peer: 1})
	class, err := ClassifyReceives(tr, 0, SnapshotFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if class[event.ID{P: 0, I: 0}] != event.FixedND {
		t.Error("receive with unknown sender must default to fixed")
	}
}

func TestReclassifyReceives(t *testing.T) {
	m := New(4)
	m.AddEdge(Edge{From: 0, To: 1, ND: event.TransientND, Msg: 7, Label: "recv"})
	m.AddEdge(Edge{From: 0, To: 2, ND: event.TransientND, Msg: 8, Label: "recv other"})
	m.AddEdge(Edge{From: 1, To: 3, ND: event.TransientND, Label: "not a receive"})
	out := ReclassifyReceives(m, map[int64]event.NDClass{7: event.TransientND})
	if out.Edges[0].ND != event.TransientND {
		t.Error("classified receive must keep its assigned class")
	}
	if out.Edges[1].ND != event.FixedND {
		t.Error("unclassified receive must default to fixed")
	}
	if out.Edges[2].ND != event.TransientND {
		t.Error("non-receive edges must be untouched")
	}
	// The original machine must not be mutated.
	if m.Edges[1].ND != event.TransientND {
		t.Error("ReclassifyReceives mutated its input")
	}
}

// TestMultiProcessDangerousPaths: A's machine receives a message and then
// runs deterministically into a possible crash. If the sender's
// non-determinism is uncommitted, the receive is transient and A may safely
// commit before it; if the sender committed, the receive is fixed and the
// pre-receive state is dangerous.
func TestMultiProcessDangerousPaths(t *testing.T) {
	machineA := New(4)
	machineA.AddEdge(Edge{From: 0, To: 1, ND: event.TransientND, Msg: 1, Label: "recv bad"})
	machineA.AddEdge(Edge{From: 0, To: 3, ND: event.TransientND, Msg: 1, Label: "recv ok"})
	machineA.AddEdge(Edge{From: 1, To: 2, Label: "det crash path"})
	machineA.MarkCrash(2)

	// Sender uncommitted: receive stays transient; state 0 safe.
	c, err := MultiProcessDangerousPaths(machineA, figure2Trace(false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CommitUnsafeAt(0) {
		t.Error("with transient receive, commit before it should be safe")
	}

	// Sender committed: receive fixed; state 0 dangerous.
	c, err = MultiProcessDangerousPaths(machineA, figure2Trace(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.CommitUnsafeAt(0) {
		t.Error("with fixed receive into a crash path, commit before it must be unsafe")
	}
}
