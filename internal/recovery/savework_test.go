package recovery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"failtrans/internal/event"
)

func ev(p int, kind event.Kind, nd event.NDClass) event.Event {
	return event.Event{ID: event.ID{P: p, I: -1}, Kind: kind, ND: nd}
}

// TestSaveWorkCoinFlip reproduces the paper's Figure 1: an uncommitted
// transient ND event followed by a visible event violates Save-work.
func TestSaveWorkCoinFlip(t *testing.T) {
	tr := event.NewTrace(1)
	tr.MustAppend(ev(0, event.Internal, event.TransientND)) // coin flip
	tr.MustAppend(ev(0, event.Visible, event.Deterministic))
	vs := CheckSaveWork(tr)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	if vs[0].TargetKind != event.Visible {
		t.Errorf("violation should be of Save-work-visible, got %v", vs[0])
	}
}

// TestSaveWorkCommitBetween: a commit between the ND event and the visible
// event satisfies the invariant.
func TestSaveWorkCommitBetween(t *testing.T) {
	tr := event.NewTrace(1)
	tr.MustAppend(ev(0, event.Internal, event.TransientND))
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	tr.MustAppend(ev(0, event.Visible, event.Deterministic))
	if vs := CheckSaveWork(tr); len(vs) != 0 {
		t.Errorf("violations = %v, want none", vs)
	}
}

// TestSaveWorkCommitAtomicWithTarget: a commit covers its own process's
// earlier ND events even when the commit itself is the target.
func TestSaveWorkCommitAtomicWithTarget(t *testing.T) {
	tr := event.NewTrace(1)
	tr.MustAppend(ev(0, event.Internal, event.FixedND))
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	if vs := CheckSaveWork(tr); len(vs) != 0 {
		t.Errorf("violations = %v, want none", vs)
	}
}

// TestSaveWorkLoggedNDNeedsNoCommit: logging renders an ND event
// deterministic; no commit is required.
func TestSaveWorkLoggedNDNeedsNoCommit(t *testing.T) {
	tr := event.NewTrace(1)
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Internal, ND: event.TransientND, Logged: true})
	tr.MustAppend(ev(0, event.Visible, event.Deterministic))
	if vs := CheckSaveWork(tr); len(vs) != 0 {
		t.Errorf("violations = %v, want none", vs)
	}
}

// TestSaveWorkCommitAfterVisibleTooLate: committing after the visible event
// does not satisfy the invariant.
func TestSaveWorkCommitAfterVisibleTooLate(t *testing.T) {
	tr := event.NewTrace(1)
	tr.MustAppend(ev(0, event.Internal, event.TransientND))
	tr.MustAppend(ev(0, event.Visible, event.Deterministic))
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	vs := CheckSaveWork(tr)
	// The late commit creates a second violation: the ND event also
	// causally precedes the commit without coverage... no — the late
	// commit itself covers the ND event with respect to that commit
	// (i<j, c==target). Only the visible target is violated.
	if len(vs) != 1 || vs[0].TargetKind != event.Visible {
		t.Fatalf("violations = %v, want one visible violation", vs)
	}
}

// TestSaveWorkOrphanRule reproduces Figure 2: B's uncommitted ND event
// causally precedes A's commit through a message — a Save-work-orphan
// violation.
func TestSaveWorkOrphanRule(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(1, event.Internal, event.TransientND))
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1, ND: event.TransientND})
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	vs := CheckSaveWork(tr)
	// Two uncovered ND events precede A's commit: B's internal ND and
	// A's own ND receive... A's receive is covered by A's commit
	// (same process, i<j, c==target). So exactly one violation: B's ND.
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want one", vs)
	}
	if vs[0].ND.P != 1 || vs[0].TargetKind != event.Commit {
		t.Errorf("violation = %v, want B's ND against A's commit", vs[0])
	}
}

// TestSaveWorkSenderCommitBeforeSend: B committing between its ND event and
// the send covers the dependence (the CPVS discipline).
func TestSaveWorkSenderCommitBeforeSend(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(1, event.Internal, event.TransientND))
	tr.MustAppend(ev(1, event.Commit, event.Deterministic))
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	if vs := CheckSaveWork(tr); len(vs) != 0 {
		t.Errorf("violations = %v, want none", vs)
	}
}

// TestSaveWorkConcurrentNDIgnored: ND events that do not causally precede
// any visible or commit event need not be committed.
func TestSaveWorkConcurrentNDIgnored(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(0, event.Visible, event.Deterministic))
	tr.MustAppend(ev(1, event.Internal, event.TransientND)) // after, concurrent
	if vs := CheckSaveWork(tr); len(vs) != 0 {
		t.Errorf("violations = %v, want none", vs)
	}
}

func TestFindOrphansFigure2(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(1, event.Internal, event.TransientND))
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	// B fails after executing both of its events; neither committed.
	orphans := FindOrphans(tr, 1, 2)
	if len(orphans) != 1 {
		t.Fatalf("orphans = %v, want A", orphans)
	}
	if orphans[0].Process != 0 || orphans[0].LostND.P != 1 {
		t.Errorf("orphan = %+v", orphans[0])
	}
}

func TestFindOrphansNoneWhenSenderCommitted(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(1, event.Internal, event.TransientND))
	tr.MustAppend(ev(1, event.Commit, event.Deterministic))
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	if orphans := FindOrphans(tr, 1, 3); len(orphans) != 0 {
		t.Errorf("orphans = %v, want none: B's ND event was committed", orphans)
	}
}

func TestFindOrphansFailureBeforeND(t *testing.T) {
	tr := event.NewTrace(2)
	tr.MustAppend(ev(1, event.Internal, event.TransientND))
	tr.MustAppend(event.Event{ID: event.ID{P: 1, I: -1}, Kind: event.Send, Msg: 1, Peer: 0})
	tr.MustAppend(event.Event{ID: event.ID{P: 0, I: -1}, Kind: event.Receive, Msg: 1, Peer: 1})
	tr.MustAppend(ev(0, event.Commit, event.Deterministic))
	// B "fails" before executing anything: nothing is lost.
	if orphans := FindOrphans(tr, 1, 0); len(orphans) != 0 {
		t.Errorf("orphans = %v, want none", orphans)
	}
}

// TestSaveWorkNoViolationsImpliesNoOrphans is the theory link: if a trace
// satisfies Save-work, then no stop failure at any point leaves an orphan.
func TestSaveWorkNoViolationsImpliesNoOrphans(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomProtocolTrace(r, true)
		if len(CheckSaveWork(tr)) != 0 {
			return true // only examine Save-work-clean traces
		}
		for p := 0; p < tr.NumProcs; p++ {
			n := len(tr.ByProcess(p))
			for cut := 0; cut <= n; cut++ {
				if len(FindOrphans(tr, p, cut)) != 0 {
					t.Logf("seed %d: orphan despite Save-work holding (fail p%d at %d)", seed, p, cut)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomProtocolTrace generates a random multi-process trace; when
// disciplined is true each process commits before every send and visible
// event (the CPVS protocol), which should always uphold Save-work.
func randomProtocolTrace(r *rand.Rand, disciplined bool) *event.Trace {
	nproc := 2 + r.Intn(2)
	tr := event.NewTrace(nproc)
	var msg int64
	type inflight struct {
		msg  int64
		from int
	}
	var fly []inflight
	steps := 8 + r.Intn(12)
	for i := 0; i < steps; i++ {
		p := r.Intn(nproc)
		switch r.Intn(5) {
		case 0:
			tr.MustAppend(ev(p, event.Internal, event.TransientND))
		case 1:
			tr.MustAppend(ev(p, event.Internal, event.Deterministic))
		case 2:
			if disciplined {
				tr.MustAppend(ev(p, event.Commit, event.Deterministic))
			}
			msg++
			to := (p + 1) % nproc
			tr.MustAppend(event.Event{ID: event.ID{P: p, I: -1}, Kind: event.Send, Msg: msg, Peer: to})
			fly = append(fly, inflight{msg, p})
		case 3:
			if len(fly) > 0 {
				m := fly[0]
				fly = fly[1:]
				to := (m.from + 1) % nproc
				tr.MustAppend(event.Event{ID: event.ID{P: to, I: -1}, Kind: event.Receive, Msg: m.msg, Peer: m.from, ND: event.TransientND})
			}
		default:
			if disciplined {
				tr.MustAppend(ev(p, event.Commit, event.Deterministic))
			}
			tr.MustAppend(ev(p, event.Visible, event.Deterministic))
		}
	}
	return tr
}

// TestCPVSUpholdsSaveWorkVisible: the disciplined generator above must never
// violate the visible rule; orphan-rule violations can still occur because
// receives are ND and commits do not precede them... they cannot: each
// process commits before sends, so no uncommitted foreign ND crosses a
// message. The whole invariant must hold.
func TestCPVSUpholdsSaveWork(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomProtocolTrace(r, true)
		vs := CheckSaveWork(tr)
		if len(vs) != 0 {
			t.Logf("seed %d: CPVS-style trace violated Save-work: %v", seed, vs[0])
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
