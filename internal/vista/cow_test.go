package vista

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomOps drives one segment through n random mutations (Write,
// SetContents, Commit, Rollback) from rng, mirroring the randomized
// reference test's operation mix.
func randomOp(rng *rand.Rand, seg *Segment, ps int, iter int) {
	switch rng.Intn(6) {
	case 0, 1, 2:
		n := rng.Intn(6*ps + 1)
		img := make([]byte, n)
		for i := range img {
			if rng.Intn(3) > 0 {
				img[i] = byte(rng.Intn(256))
			}
		}
		seg.SetContents(img)
	case 3:
		off := rng.Intn(5 * ps)
		data := pat(rng.Intn(ps)+1, byte(iter))
		if err := seg.Write(off, data); err != nil {
			panic(err)
		}
	case 4:
		seg.Commit([]byte{byte(iter)})
	default:
		seg.Rollback()
	}
}

// TestCOWForkMatchesDeepForkOracle is the fork-isolation property test: a
// template segment is built up with random operations, deep-forked (the
// oracle, taken while still mutable), then frozen and COW-forked. The same
// randomized operation stream is applied to both forks; after every step
// their contents must be byte-identical, and the frozen template must never
// change.
func TestCOWForkMatchesDeepForkOracle(t *testing.T) {
	const ps = 32
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tmpl := NewSegment(0, ps)
		for i := 0; i < 50; i++ {
			randomOp(rng, tmpl, ps, i)
		}
		oracle := tmpl.Fork() // deep copy, taken while still mutable
		tmpl.Freeze()
		cow := tmpl.Fork()
		if cow.base == nil {
			t.Fatal("fork of a frozen segment is not a COW fork")
		}
		tmplBefore := tmpl.Contents()

		for i := 0; i < 400; i++ {
			opSeed := seed*1000 + int64(i)
			randomOp(rand.New(rand.NewSource(opSeed)), cow, ps, i)
			randomOp(rand.New(rand.NewSource(opSeed)), oracle, ps, i)
			got, want := cow.Contents(), oracle.Contents()
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d iter %d: COW fork diverged from deep-fork oracle (len %d vs %d)", seed, i, len(got), len(want))
			}
		}
		if !bytes.Equal(tmpl.Contents(), tmplBefore) {
			t.Fatalf("seed %d: frozen template mutated by its fork", seed)
		}
		if cow.CowPages == 0 {
			t.Fatalf("seed %d: fork privatized no pages across 400 random mutations", seed)
		}
	}
}

// TestCOWForksConcurrentNeverAlias runs N concurrent COW forks of one
// frozen template, each mutating independently, and checks that no fork's
// writes leak into another fork or into the template: every fork must end
// byte-identical to a serial deep-fork oracle given the same operations.
func TestCOWForksConcurrentNeverAlias(t *testing.T) {
	const ps = 64
	const forks = 8
	tmpl := NewSegment(0, ps)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		randomOp(rng, tmpl, ps, i)
	}
	oracles := make([]*Segment, forks)
	for i := range oracles {
		oracles[i] = tmpl.Fork() // deep copies while mutable
	}
	tmpl.Freeze()
	tmplBefore := tmpl.Contents()

	var wg sync.WaitGroup
	results := make([][]byte, forks)
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := tmpl.Fork()
			r := rand.New(rand.NewSource(int64(i) * 7919))
			for op := 0; op < 300; op++ {
				randomOp(r, f, ps, op)
			}
			results[i] = f.Contents()
		}(i)
	}
	wg.Wait()

	for i := 0; i < forks; i++ {
		r := rand.New(rand.NewSource(int64(i) * 7919))
		for op := 0; op < 300; op++ {
			randomOp(r, oracles[i], ps, op)
		}
		if !bytes.Equal(results[i], oracles[i].Contents()) {
			t.Errorf("fork %d diverged from its deep-fork oracle", i)
		}
	}
	if !bytes.Equal(tmpl.Contents(), tmplBefore) {
		t.Fatal("frozen template mutated by concurrent forks")
	}
}

// TestCOWRollbackPrivatizesUndo proves a crashed COW fork recovers through
// its own undo log without disturbing the template: mid-transaction state
// (dirty pages, undo records) carries across the fork, and rolling the fork
// back restores the template's committed image — the crash-injection
// contract the fault campaigns rely on.
func TestCOWRollbackPrivatizesUndo(t *testing.T) {
	const ps = 32
	tmpl := NewSegment(0, ps)
	committed := pat(ps*3+7, 9)
	tmpl.SetContents(committed)
	tmpl.Commit([]byte("regs"))
	// Leave an open transaction in the template: the fork inherits its
	// undo records (borrowed), exactly like a snapshot captured mid-step.
	if err := tmpl.Write(5, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	tmpl.Freeze()
	tmplBefore := tmpl.Contents()

	f := tmpl.Fork()
	// The fork keeps writing, then "crashes" and recovers via rollback.
	if err := f.Write(ps*2+3, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f.SetContents(pat(ps*4, 13))
	reg := f.Rollback()
	if string(reg) != "regs" {
		t.Fatalf("rollback returned registers %q, want %q", reg, "regs")
	}
	want := make([]byte, ps*4) // rollback does not shrink; tail reads zero
	copy(want, committed)
	if got := f.Contents(); !bytes.Equal(got, want) {
		t.Fatalf("rolled-back fork != committed template image\ngot  %v\nwant %v", got, want)
	}
	if !bytes.Equal(tmpl.Contents(), tmplBefore) {
		t.Fatal("rollback of fork mutated the frozen template")
	}
	// A second fork must see the template's pristine mid-transaction state.
	f2 := tmpl.Fork()
	if got := f2.Contents(); !bytes.Equal(got, tmplBefore) {
		t.Fatal("second fork does not see the template's state")
	}
}

// TestFrozenSegmentMutationPanics pins the Freeze contract: every mutator
// on a sealed template panics instead of corrupting the forks sharing it.
func TestFrozenSegmentMutationPanics(t *testing.T) {
	mutations := map[string]func(*Segment){
		"Write":       func(s *Segment) { _ = s.Write(0, []byte{1}) },
		"SetContents": func(s *Segment) { s.SetContents([]byte{1}) },
		"Commit":      func(s *Segment) { s.Commit(nil) },
		"Rollback":    func(s *Segment) { s.Rollback() },
	}
	for name, mut := range mutations {
		s := NewSegment(64, 32)
		s.Freeze()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen segment did not panic", name)
				}
			}()
			mut(s)
		}()
	}
}

// TestCOWForkCommitCycleZeroAllocs extends the zero-allocation pin to COW
// forks: once a fork has privatized its working set, a SetContents→commit
// cycle allocates nothing — overlay lookups are map reads, undo buffers
// come from the pool, and borrowed before-images are plain slices.
func TestCOWForkCommitCycleZeroAllocs(t *testing.T) {
	tmpl := NewSegment(0, 4096)
	img := make([]byte, 64*1024)
	tmpl.SetContents(img)
	tmpl.Commit(nil)
	tmpl.Freeze()

	f := tmpl.Fork()
	i := 0
	cycle := func() {
		img[(i*4096+17)%len(img)] ^= 1
		f.SetContents(img)
		f.Commit(nil)
		i++
	}
	// Warm: privatize every page the cycle touches and fill the pool.
	for w := 0; w < len(img)/4096+2; w++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Errorf("warmed COW fork SetContents→commit cycle allocates %.1f times per run, want 0", n)
	}
	if f.CowPages == 0 {
		t.Fatal("fork never privatized a page")
	}
}

// TestDeepForkOfCOWForkMaterializes checks the remaining fork direction: a
// deep Fork taken from a live COW fork materializes the overlay-then-base
// view into an independent flat segment.
func TestDeepForkOfCOWForkMaterializes(t *testing.T) {
	const ps = 32
	tmpl := NewSegment(0, ps)
	tmpl.SetContents(pat(ps*3, 3))
	tmpl.Commit(nil)
	tmpl.Freeze()

	f := tmpl.Fork()
	if err := f.Write(ps+1, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	deep := f.Fork()
	if deep.base != nil {
		t.Fatal("deep fork of a COW fork still chains to a base")
	}
	if !bytes.Equal(deep.Contents(), f.Contents()) {
		t.Fatal("materialized deep fork != COW fork contents")
	}
	deep.SetContents(pat(ps*2, 5))
	if bytes.Equal(deep.Contents(), f.Contents()) {
		t.Fatal("deep fork still aliases the COW fork")
	}
}

// TestRollbackZeroesGrownPageTail pins the rollback semantics the COW
// engine relies on (and that the flat path needs too): memory a page gains
// by growing *after* it was touched is committed-as-zero, so rollback must
// restore zeros there even though the before-image predates the growth.
func TestRollbackZeroesGrownPageTail(t *testing.T) {
	const ps = 32
	s := NewSegment(0, ps)
	s.SetContents(pat(ps+2, 1)) // page 1 has extent 2
	s.Commit(nil)
	if err := s.Write(ps+1, []byte{7}); err != nil { // touch page 1 at extent 2
		t.Fatal(err)
	}
	if err := s.Write(ps*2-4, []byte{1, 2, 3, 4}); err != nil { // grow page 1 to full extent
		t.Fatal(err)
	}
	s.Rollback()
	want := make([]byte, ps*2)
	copy(want, pat(ps+2, 1))
	if got := s.Contents(); !bytes.Equal(got, want) {
		t.Fatalf("rollback left grown-page bytes behind\ngot  %v\nwant %v", got, want)
	}
}

func ExampleSegment_Freeze() {
	tmpl := NewSegment(0, 4096)
	tmpl.SetContents([]byte("template state"))
	tmpl.Commit(nil)
	tmpl.Freeze()
	f := tmpl.Fork()
	f.Write(0, []byte("fork"))
	fmt.Printf("fork=%q template=%q privatized=%d\n",
		f.Contents()[:14], tmpl.Contents(), f.CowPages)
	// Output: fork="forklate state" template="template state" privatized=1
}
