package hotpath_test

import (
	"testing"

	"failtrans/internal/analysis/analysistest"
	"failtrans/internal/analysis/hotpath"
)

// TestHotpath runs the pass over a two-package fixture: the annotated root
// in hp/root, the reached helper in hp/lib. The fixture demonstrates every
// allocation class the pass reports, the two sanctioned append idioms, the
// propagation-cutting //failtrans:alloc call suppression, and — via the
// want in hp/lib — that hotness facts cross package boundaries.
func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotpath.New(), "hp/root")
}
