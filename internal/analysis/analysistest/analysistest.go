// Package analysistest runs analyzers over golden source fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: a fixture is a
// GOPATH-src-shaped tree (testdata/src/<importpath>/...) whose files carry
// `// want "regexp"` comments on the lines where diagnostics are expected.
// Every reported diagnostic must match a want on its line and every want
// must be matched, so the fixtures double as documentation of exactly what
// each pass catches — and, via suppressed lines with no want, what it lets
// through.
package analysistest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"failtrans/internal/analysis"
)

// wantRe matches the payload of one expectation: a double-quoted or
// backquoted regular expression.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Load runs the analyzer over the given import paths from srcRoot (a
// directory laid out like GOPATH/src) and returns the raw result, for
// tests that assert on diagnostics directly instead of via want comments.
func Load(t *testing.T, srcRoot string, a *analysis.Analyzer, patterns ...string) *analysis.Result {
	t.Helper()
	res, err := analysis.Run(analysis.Config{Dir: srcRoot, Patterns: patterns},
		[]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return res
}

// Run loads the given import paths from srcRoot (a directory laid out like
// GOPATH/src) with the analyzer and checks the diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	res := Load(t, srcRoot, a, patterns...)

	var wants []*want
	for _, pkg := range res.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, res, c)...)
				}
			}
		}
	}

	for _, d := range res.Diags {
		pos := res.Fset.Position(d.Pos)
		if !matchWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
}

func parseWants(t *testing.T, res *analysis.Result, c *ast.Comment) []*want {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil
	}
	pos := res.Fset.Position(c.Pos())
	var out []*want
	for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
		raw := m[1]
		if m[2] != "" {
			raw = m[2]
		} else if m[1] != "" {
			// Double-quoted form: unescape \" and \\.
			raw = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(m[1])
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no quoted regexp", pos)
	}
	return out
}

func matchWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	// Allow several diagnostics on one line to share a single want (e.g.
	// a fmt call that also boxes its arguments).
	for _, w := range wants {
		if w.file == file && w.line == line && w.re.MatchString(msg) {
			return true
		}
	}
	return false
}
