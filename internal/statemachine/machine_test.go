package statemachine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"failtrans/internal/event"
)

// chain builds s0 -> s1 -> ... -> s(n) with deterministic edges; if crash is
// true the final state is a crash state.
func chain(n int, crash bool) *Machine {
	m := New(n + 1)
	for i := 0; i < n; i++ {
		m.AddEdge(Edge{From: StateID(i), To: StateID(i + 1)})
	}
	if crash {
		m.MarkCrash(StateID(n))
	}
	return m
}

// TestPaperFigure6A: a string of deterministic events ending in a crash
// event is entirely dangerous; committing anywhere on it violates
// Lose-work.
func TestPaperFigure6A(t *testing.T) {
	m := chain(3, true)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := m.DangerousPaths()
	for i := range m.Edges {
		if !c.Dangerous(EventID(i)) {
			t.Errorf("edge %d should be colored", i)
		}
	}
	for s := 0; s < 3; s++ {
		if !c.CommitUnsafeAt(StateID(s)) {
			t.Errorf("commit at state %d should violate Lose-work", s)
		}
	}
}

// TestCompletionChainSafe: the same chain ending in successful completion
// has no dangerous paths.
func TestCompletionChainSafe(t *testing.T) {
	m := chain(3, false)
	c := m.DangerousPaths()
	if ids := c.DangerousEvents(); len(ids) != 0 {
		t.Errorf("completion chain colored %v, want none", ids)
	}
	if len(c.SafeCommitStates()) != 4 {
		t.Errorf("all 4 states should be safe commit points, got %v", c.SafeCommitStates())
	}
}

// figure6Machine builds the B/C cases of the paper's Figure 6: state 0 has a
// non-deterministic event with two possible results, one of which leads
// deterministically to a crash, the other to completion.
func figure6Machine(nd event.NDClass) *Machine {
	m := New(5)
	m.AddEdge(Edge{From: 0, To: 1, ND: nd, Label: "bad result"})
	m.AddEdge(Edge{From: 0, To: 2, ND: nd, Label: "good result"})
	m.AddEdge(Edge{From: 1, To: 3, Label: "doomed det"})
	m.AddEdge(Edge{From: 2, To: 4, Label: "completes"})
	m.MarkCrash(3)
	return m
}

// TestPaperFigure6B: committing before a transient ND event is safe when at
// least one possible result avoids the crash.
func TestPaperFigure6B(t *testing.T) {
	m := figure6Machine(event.TransientND)
	c := m.DangerousPaths()
	if c.CommitUnsafeAt(0) {
		t.Error("commit before transient ND with an escape should be safe")
	}
	// The doomed branch itself is colored.
	if !c.Dangerous(0) || !c.Dangerous(2) {
		t.Error("bad-result branch should be colored")
	}
	if c.Dangerous(1) || c.Dangerous(3) {
		t.Error("good-result branch must not be colored")
	}
	// Committing once on the doomed branch is fatal.
	if !c.CommitUnsafeAt(1) {
		t.Error("commit at state 1 (after bad result) should be unsafe")
	}
}

// TestPaperFigure6C: committing before a fixed ND event is unsafe if any of
// its possible results leads to a crash — recovery cannot rely on fixed
// events changing.
func TestPaperFigure6C(t *testing.T) {
	m := figure6Machine(event.FixedND)
	c := m.DangerousPaths()
	if !c.CommitUnsafeAt(0) {
		t.Error("commit before fixed ND leading possibly to crash must be unsafe")
	}
}

// TestPaperFigure5: the buffer-overrun timeline. A transient ND event e is
// followed by deterministic buffer init / pointer overwrite / pointer use
// (crash). A commit any time after e dooms recovery; a commit before e is
// safe.
func TestPaperFigure5(t *testing.T) {
	m := New(7)
	m.AddEdge(Edge{From: 0, To: 1, ND: event.TransientND, Label: "e (bad)"})
	m.AddEdge(Edge{From: 0, To: 6, ND: event.TransientND, Label: "e (good)"})
	m.AddEdge(Edge{From: 1, To: 2, Label: "begin buffer init"})
	m.AddEdge(Edge{From: 2, To: 3, Label: "overwrite pointer"})
	m.AddEdge(Edge{From: 3, To: 4, Label: "use pointer"})
	m.MarkCrash(4)
	c := m.DangerousPaths()
	if c.CommitUnsafeAt(0) {
		t.Error("commit before e should be safe")
	}
	for s := StateID(1); s <= 3; s++ {
		if !c.CommitUnsafeAt(s) {
			t.Errorf("commit at state %d (after e) should doom recovery", s)
		}
	}
}

// TestPaperFigure7 builds a machine in the spirit of Figure 7: a mix of
// fixed-ND and transient branches around crash events, checking that fixed
// non-determinism propagates danger while transient non-determinism stops
// it.
func TestPaperFigure7(t *testing.T) {
	m := New(9)
	// 0 --det--> 1; at 1 a fixed ND splits to 2 (crash chain) or 3 (ok).
	e01 := m.AddEdge(Edge{From: 0, To: 1})
	e12 := m.AddEdge(Edge{From: 1, To: 2, ND: event.FixedND})
	e13 := m.AddEdge(Edge{From: 1, To: 3, ND: event.FixedND})
	e24 := m.AddEdge(Edge{From: 2, To: 4}) // 4 is crash
	// At 3 a transient ND splits to 5 (crash) or 6 (continues to 7).
	e35 := m.AddEdge(Edge{From: 3, To: 5, ND: event.TransientND})
	e36 := m.AddEdge(Edge{From: 3, To: 6, ND: event.TransientND})
	e67 := m.AddEdge(Edge{From: 6, To: 7})
	m.MarkCrash(4)
	m.MarkCrash(5)
	c := m.DangerousPaths()
	// The crash events are colored.
	if !c.Dangerous(e24) || !c.Dangerous(e35) {
		t.Error("crash events must be colored")
	}
	// The fixed branch into the crash chain is colored, and danger leaks
	// through the fixed ND back to edge 0->1.
	if !c.Dangerous(e12) {
		t.Error("fixed-ND edge into doomed state must be colored")
	}
	if !c.Dangerous(e01) {
		t.Error("danger must propagate backwards through a colored fixed-ND successor")
	}
	// The transient escape is not colored, and neither is what follows.
	if c.Dangerous(e36) || c.Dangerous(e67) {
		t.Error("transient escape branch must stay uncolored")
	}
	// The good fixed result is not colored either (its continuation is
	// safe) — but committing at state 1 is unsafe because one colored
	// fixed-ND edge leaves it.
	if c.Dangerous(e13) {
		t.Error("fixed edge to safe continuation must stay uncolored")
	}
	if !c.CommitUnsafeAt(1) {
		t.Error("state 1 has a colored fixed-ND out-edge; commit must be unsafe")
	}
	// State 3's danger is behind a transient choice with an escape.
	if c.CommitUnsafeAt(3) {
		t.Error("state 3 has a transient escape; commit should be safe")
	}
}

func TestValidate(t *testing.T) {
	m := New(2)
	m.AddEdge(Edge{From: 0, To: 5})
	if err := m.Validate(); err == nil {
		t.Error("out-of-range to-state must fail validation")
	}
	m2 := New(2)
	m2.AddEdge(Edge{From: 5, To: 0})
	if err := m2.Validate(); err == nil {
		t.Error("out-of-range from-state must fail validation")
	}
	m3 := New(2)
	m3.MarkCrash(0)
	m3.AddEdge(Edge{From: 0, To: 1})
	if err := m3.Validate(); err == nil {
		t.Error("edge leaving a crash state must fail validation")
	}
	m4 := New(1)
	m4.Start = 3
	if err := m4.Validate(); err == nil {
		t.Error("out-of-range start state must fail validation")
	}
}

// randomDAG builds a random acyclic machine: edges only go from lower to
// higher state numbers; the last k states may be crash states.
func randomDAG(r *rand.Rand) *Machine {
	n := 4 + r.Intn(8)
	m := New(n)
	for s := 0; s < n-1; s++ {
		edges := 1 + r.Intn(2)
		for j := 0; j < edges; j++ {
			to := s + 1 + r.Intn(n-s-1)
			nd := event.NDClass(r.Intn(3))
			m.Edges = append(m.Edges, Edge{From: StateID(s), To: StateID(to), ND: nd})
		}
	}
	for s := n - 1; s >= n-2 && s >= 0; s-- {
		if r.Intn(2) == 0 {
			m.MarkCrash(StateID(s))
		}
	}
	// Crash states must not have outgoing edges; drop any offenders.
	var keep []Edge
	for _, e := range m.Edges {
		if !m.CrashStates[e.From] {
			keep = append(keep, e)
		}
	}
	m.Edges = keep
	return m
}

// semanticDoomed is a recursive oracle for acyclic machines: a state is
// doomed iff (some fixed-ND out-edge is colored) or (all out-edges are
// colored), where an edge is colored iff it is a crash event or its target
// is doomed.
func semanticDoomed(m *Machine, s StateID, memo map[StateID]int) bool {
	if v, ok := memo[s]; ok {
		return v == 1
	}
	out := m.outgoing()
	edges := out[s]
	if len(edges) == 0 {
		memo[s] = 0
		return false
	}
	colored := func(id EventID) bool {
		return m.IsCrashEvent(id) || semanticDoomed(m, m.Edges[id].To, memo)
	}
	all := true
	doomed := false
	for _, id := range edges {
		if colored(id) {
			if m.Edges[id].ND == event.FixedND {
				doomed = true
			}
		} else {
			all = false
		}
	}
	if all {
		doomed = true
	}
	if doomed {
		memo[s] = 1
	} else {
		memo[s] = 0
	}
	return doomed
}

// TestColoringMatchesSemanticOracle compares the fixpoint coloring against
// the recursive oracle on random DAGs.
func TestColoringMatchesSemanticOracle(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomDAG(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid random machine: %v", err)
		}
		c := m.DangerousPaths()
		memo := make(map[StateID]int)
		for s := 0; s < m.NumStates; s++ {
			if m.CrashStates[StateID(s)] {
				continue
			}
			want := semanticDoomed(m, StateID(s), memo)
			got := c.CommitUnsafeAt(StateID(s))
			if got != want {
				t.Logf("seed %d state %d: coloring=%v oracle=%v", seed, s, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestColoringMonotone: adding a crash edge to a machine never removes
// colored events (danger only grows as more crashes exist).
func TestColoringMonotone(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomDAG(r)
		before := m.DangerousPaths()
		// Add a fresh crash state reachable from a random non-crash state.
		var from StateID = -1
		for tries := 0; tries < 20; tries++ {
			s := StateID(r.Intn(m.NumStates))
			if !m.CrashStates[s] {
				from = s
				break
			}
		}
		if from < 0 {
			return true
		}
		crash := StateID(m.NumStates)
		m.NumStates++
		m.MarkCrash(crash)
		m.AddEdge(Edge{From: from, To: crash, ND: event.NDClass(r.Intn(3))})
		after := m.DangerousPaths()
		for i := range before.Colored {
			if before.Colored[i] && !after.Colored[i] {
				t.Logf("seed %d: edge %d lost its color after adding a crash", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestColoringIdempotent: recomputing the coloring yields identical output.
func TestColoringIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		m := randomDAG(r)
		a := m.DangerousPaths()
		b := m.DangerousPaths()
		for j := range a.Colored {
			if a.Colored[j] != b.Colored[j] {
				t.Fatalf("coloring not deterministic at edge %d", j)
			}
		}
	}
}

// TestCyclicMachine: danger computation terminates and is sane on cycles. A
// loop with a deterministic exit to a crash is dangerous everywhere.
func TestCyclicMachine(t *testing.T) {
	m := New(3)
	m.AddEdge(Edge{From: 0, To: 1})
	m.AddEdge(Edge{From: 1, To: 0})
	m.AddEdge(Edge{From: 1, To: 2})
	m.MarkCrash(2)
	c := m.DangerousPaths()
	// State 1 has an uncolored loop edge back to 0... which itself can
	// only reach 1. The loop offers no escape: but the coloring is the
	// operational fixpoint, which colors only what the rules force. The
	// crash edge must be colored; the loop edges' color depends on the
	// fixpoint reached.
	if !c.Dangerous(2) {
		t.Error("crash edge must be colored")
	}
}

func TestWriteDot(t *testing.T) {
	m := figure6Machine(event.FixedND)
	c := m.DangerousPaths()
	var buf strings.Builder
	if err := c.WriteDot(&buf, "fig6c"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"fig6c\"",
		"fillcolor=black", // the crash state
		"color=red",       // a dangerous event
		"style=dashed",    // fixed-ND edges
		"s0 -> s1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
