package bench

import (
	"encoding/json"
	"testing"

	"failtrans/internal/sim"
)

// These tests are the cross-layer half of the scheduler-equivalence
// guarantee (the sim package pins the per-world edge cases): full seeded
// studies — fault campaigns and the Figure 8 sweep — must serialize to
// byte-identical JSON whichever scheduler built their worlds. CI runs the
// same check end-to-end through the ftbench binary.

// withScan runs fn with the package-default scheduler forced to the legacy
// scan, restoring the default afterwards.
func withScan(fn func()) {
	prev := sim.DefaultScanSched
	sim.DefaultScanSched = true
	defer func() { sim.DefaultScanSched = prev }()
	fn()
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestTable1ScanIndexedIdentical(t *testing.T) {
	indexed, err := Table1(2, 2, true, true, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scan *Table1Result
	withScan(func() { scan, err = Table1(2, 2, true, true, nil, nil, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, indexed), mustJSON(t, scan); got != want {
		t.Errorf("table1 JSON diverged between schedulers:\nindexed: %s\nscan:    %s", got, want)
	}
}

func TestFig8ScanIndexedIdentical(t *testing.T) {
	indexed, err := Fig8("nvi", 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scan *Fig8Result
	withScan(func() { scan, err = Fig8("nvi", 1, 2, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, indexed), mustJSON(t, scan); got != want {
		t.Errorf("fig8 JSON diverged between schedulers:\nindexed: %s\nscan:    %s", got, want)
	}
}

// TestFleetCurvesShape runs the sweep at its smallest size and checks the
// result carries what BENCH.json's regression gates key on: both scheduler
// rows for the baseline, one row per measured protocol, and the speedup
// ratio.
func TestFleetCurvesShape(t *testing.T) {
	res, err := FleetCurves([]int{100})
	if err != nil {
		t.Fatal(err)
	}
	var scanRows, indexedNone, protoRows int
	for _, p := range res.Points {
		switch {
		case p.Sched == "scan":
			scanRows++
		case p.Protocol == "NONE":
			indexedNone++
		default:
			protoRows++
		}
		if p.Steps == 0 || p.StepNs <= 0 {
			t.Errorf("point %+v has empty measurements", p)
		}
	}
	if scanRows != 1 || indexedNone != 1 {
		t.Errorf("baseline rows: scan=%d indexed=%d, want 1 and 1", scanRows, indexedNone)
	}
	if protoRows != 7 {
		t.Errorf("protocol rows = %d, want 7 (the measured protocol set)", protoRows)
	}
	if _, ok := res.SpeedupAt["100"]; !ok {
		t.Error("missing indexed-vs-scan speedup at n=100")
	}
}
