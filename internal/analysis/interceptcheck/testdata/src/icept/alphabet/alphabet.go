// Package alphabet implements the intercepted event alphabet: the real
// effects below it are the recovery layer's own, and sanctioned.
package alphabet

import "os"

// Send journals and emits a payload — the interception boundary.
func Send(data []byte) error {
	return os.WriteFile("wire.dat", data, 0o644)
}
