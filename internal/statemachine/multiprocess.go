package statemachine

import (
	"fmt"

	"failtrans/internal/event"
)

// CommitSnapshot records, for every process in a computation, the local
// index of its last commit event (-1 if the process has never committed).
// It is the "snapshot of where each process in the computation last
// committed" that the Multi-Process Dangerous Paths Algorithm collects.
type CommitSnapshot []int

// SnapshotFromTrace computes the commit snapshot at the end of a trace.
func SnapshotFromTrace(tr *event.Trace) CommitSnapshot {
	snap := make(CommitSnapshot, tr.NumProcs)
	for i := range snap {
		snap[i] = -1
	}
	for _, e := range tr.Events {
		if e.Kind == event.Commit {
			snap[e.ID.P] = e.ID.I
		}
	}
	return snap
}

// ClassifyReceives implements the reclassification step of the
// Multi-Process Dangerous Paths Algorithm for process p: each receive event
// p has executed is treated as a transient non-deterministic event if the
// sender's last commit occurred before the send and the sender executed a
// transient non-deterministic event between its last commit and the send;
// all other receives are fixed non-deterministic.
//
// The returned map is keyed by the receive event's ID in the trace.
func ClassifyReceives(tr *event.Trace, p int, snap CommitSnapshot) (map[event.ID]event.NDClass, error) {
	if len(snap) != tr.NumProcs {
		return nil, fmt.Errorf("statemachine: snapshot for %d processes, trace has %d", len(snap), tr.NumProcs)
	}
	// Locate each send by message id.
	type sendInfo struct {
		proc  int
		index int
	}
	sends := make(map[int64]sendInfo)
	for _, e := range tr.Events {
		if e.Kind == event.Send && e.Msg != 0 {
			sends[e.Msg] = sendInfo{proc: e.ID.P, index: e.ID.I}
		}
	}
	// Per process, the sorted indexes of transient ND events.
	transients := make([][]int, tr.NumProcs)
	for _, e := range tr.Events {
		if e.ND == event.TransientND && !e.Logged {
			transients[e.ID.P] = append(transients[e.ID.P], e.ID.I)
		}
	}
	hasTransientIn := func(proc, after, before int) bool {
		for _, i := range transients[proc] {
			if i > after && i < before {
				return true
			}
		}
		return false
	}
	out := make(map[event.ID]event.NDClass)
	for _, e := range tr.Events {
		if e.ID.P != p || e.Kind != event.Receive {
			continue
		}
		class := event.FixedND
		if s, ok := sends[e.Msg]; ok {
			lastCommit := snap[s.proc]
			if lastCommit < s.index && hasTransientIn(s.proc, lastCommit, s.index) {
				class = event.TransientND
			}
		}
		out[e.ID] = class
	}
	return out, nil
}

// ReclassifyReceives returns a copy of m with the ND class of each receive
// edge (Msg != 0) replaced according to class, keyed by message id. Receive
// edges with no entry in class default to fixed non-deterministic, the
// conservative choice.
func ReclassifyReceives(m *Machine, class map[int64]event.NDClass) *Machine {
	out := &Machine{NumStates: m.NumStates, Start: m.Start, CrashStates: make(map[StateID]bool, len(m.CrashStates))}
	for s := range m.CrashStates {
		out.CrashStates[s] = true
	}
	out.Edges = make([]Edge, len(m.Edges))
	copy(out.Edges, m.Edges)
	for i := range out.Edges {
		e := &out.Edges[i]
		if e.Msg == 0 {
			continue
		}
		if c, ok := class[e.Msg]; ok {
			e.ND = c
		} else {
			e.ND = event.FixedND
		}
	}
	return out
}

// MultiProcessDangerousPaths runs the full multi-process algorithm for
// process p: collect the commit snapshot from the trace, classify p's
// receives, apply the classification to p's machine (receive edges matched
// by message id), and run the single-process algorithm.
func MultiProcessDangerousPaths(m *Machine, tr *event.Trace, p int) (*Coloring, error) {
	snap := SnapshotFromTrace(tr)
	byID, err := ClassifyReceives(tr, p, snap)
	if err != nil {
		return nil, err
	}
	// Re-key by message id so the machine's receive edges can be matched.
	byMsg := make(map[int64]event.NDClass)
	for id, class := range byID {
		for _, e := range tr.Events {
			if e.ID == id {
				byMsg[e.Msg] = class
			}
		}
	}
	return ReclassifyReceives(m, byMsg).DangerousPaths(), nil
}
