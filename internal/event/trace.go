package event

import "fmt"

// Trace records the events of one run of a computation in the global order
// the simulator executed them. Within the slice, the events of each process
// appear with strictly increasing event indexes, and every Receive appears
// after its matching Send.
type Trace struct {
	NumProcs int
	Events   []Event

	next []int // next expected event index per process, len == NumProcs
}

// NewTrace returns an empty trace for n processes.
func NewTrace(n int) *Trace {
	return &Trace{NumProcs: n, next: make([]int, n)}
}

// Append validates and records e, assigning its per-process index if
// e.ID.I is negative. It returns the recorded event.
func (t *Trace) Append(e Event) (Event, error) {
	if e.ID.P < 0 || e.ID.P >= t.NumProcs {
		return Event{}, fmt.Errorf("event: process %d out of range [0,%d)", e.ID.P, t.NumProcs)
	}
	if e.ID.I < 0 {
		e.ID.I = t.next[e.ID.P]
	} else if e.ID.I != t.next[e.ID.P] {
		return Event{}, fmt.Errorf("event: %v out of order, expected index %d", e.ID, t.next[e.ID.P])
	}
	t.next[e.ID.P]++
	t.Events = append(t.Events, e)
	return e, nil
}

// MustAppend is Append for constructing traces in tests; it panics on error.
func (t *Trace) MustAppend(e Event) Event {
	out, err := t.Append(e)
	if err != nil {
		panic(err)
	}
	return out
}

// Fork returns an independent deep copy of the trace: appends to either
// copy never affect the other. Events are value types, so copying the
// slice suffices.
func (t *Trace) Fork() *Trace {
	nt := &Trace{
		NumProcs: t.NumProcs,
		Events:   append([]Event(nil), t.Events...),
		next:     append([]int(nil), t.next...),
	}
	return nt
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// ByProcess returns the events of process p in execution order.
func (t *Trace) ByProcess(p int) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.ID.P == p {
			out = append(out, e)
		}
	}
	return out
}

// Clocks computes the vector clock of every event in the trace. The clock of
// event e counts e itself, so clocks[i][p] is the number of events of p in
// the causal past of t.Events[i], inclusive. Receives merge the clock of
// their matching send; unmatched receives merge nothing (their sender's
// history is unknown, e.g. input from outside the computation).
func (t *Trace) Clocks() []VC {
	clocks := make([]VC, len(t.Events))
	cur := make([]VC, t.NumProcs)
	for p := range cur {
		cur[p] = NewVC(t.NumProcs)
	}
	sendClock := make(map[int64]VC)
	for i, e := range t.Events {
		c := cur[e.ID.P]
		if e.Kind == Receive && e.Msg != 0 {
			if sc, ok := sendClock[e.Msg]; ok {
				c.Merge(sc)
			}
		}
		c[e.ID.P]++
		if e.Kind == Send && e.Msg != 0 {
			sendClock[e.Msg] = c.Clone()
		}
		clocks[i] = c.Clone()
	}
	return clocks
}

// HB is a precomputed happens-before oracle over one trace.
type HB struct {
	trace  *Trace
	clocks []VC
	pos    map[ID]int
}

// NewHB computes the happens-before relation for t.
func NewHB(t *Trace) *HB {
	h := &HB{trace: t, clocks: t.Clocks(), pos: make(map[ID]int, len(t.Events))}
	for i, e := range t.Events {
		h.pos[e.ID] = i
	}
	return h
}

// Clock returns the vector clock of event id (ok=false if id is not in the
// trace).
func (h *HB) Clock(id ID) (VC, bool) {
	i, ok := h.pos[id]
	if !ok {
		return nil, false
	}
	return h.clocks[i], true
}

// HappensBefore reports whether event a happens-before event b. Events not
// in the trace are related to nothing.
func (h *HB) HappensBefore(a, b ID) bool {
	if a == b {
		return false
	}
	ca, ok := h.Clock(a)
	if !ok {
		return false
	}
	cb, ok := h.Clock(b)
	if !ok {
		return false
	}
	// Clocks are inclusive of their own event, so a happens-before b iff
	// a's clock is component-wise ≤ b's: b's view then contains a's own
	// event, which can only arrive along a causal path.
	return ca.LE(cb)
}

// CausallyPrecedes is the paper's causality approximation: identical to
// HappensBefore, named separately to keep call sites honest about intent.
func (h *HB) CausallyPrecedes(a, b ID) bool { return h.HappensBefore(a, b) }

// CausalPast returns the IDs of all events that happen-before id, in trace
// order.
func (h *HB) CausalPast(id ID) []ID {
	i, ok := h.pos[id]
	if !ok {
		return nil
	}
	target := h.clocks[i]
	var out []ID
	for j, e := range h.trace.Events {
		if j == i {
			continue
		}
		c := h.clocks[j]
		// e is in the past of id iff e's count of itself is visible in
		// target's clock.
		if target[e.ID.P] >= c[e.ID.P] && c.LE(target) {
			out = append(out, e.ID)
		}
	}
	return out
}
