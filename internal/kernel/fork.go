package kernel

import (
	"sort"
	"time"

	"failtrans/internal/sim"
)

// ForkOS implements sim.ForkableOS: it copies every node — filesystem
// contents, open-file tables, fault window, corruption counters — into a
// new kernel wired to the forked world's clock. The Metrics/Tracer sinks
// and the OnCorrupt/OnPanic callbacks do not carry over: they are per-run
// harness wiring, and the original's callbacks would observe the wrong
// world. An open fault window forks with traced cleared, since the fork has
// no tracer holding the matching Begin.
//
// Forking a frozen kernel is copy-on-write and O(1): the fork carries only
// a base reference to the template kernel, each node is cloned out of the
// base on the fork's first touch (node()), and within a cloned node the
// file contents stay shared until first mutation privatizes them. Forking
// a mutable kernel deep-copies, materializing any COW overlay the source
// itself carries.
func (k *Kernel) ForkOS(clock func() time.Duration) sim.OS {
	if k.frozen {
		// Nothing is copied up front: nodes clone lazily on first touch, so
		// forks that crash before their next syscall pay one struct.
		return &Kernel{Clock: clock, base: k}
	}
	nk := &Kernel{Clock: clock, nodes: make(map[int]*node, len(k.nodes))}
	for _, pid := range k.pids() {
		n, _ := k.lookup(pid)
		nn := &node{
			fds:     make(map[int]*fdEntry, len(n.fds)),
			nextFD:  n.nextFD,
			fdLimit: n.fdLimit,
			edits:   n.edits,
			Syscall: n.Syscall,
		}
		set := make(map[string]bool, len(n.fs))
		n.addNames(set)
		nn.fs = make(map[string][]byte, len(set))
		for path := range set {
			data, _ := n.file(path)
			nn.fs[path] = append([]byte(nil), data...)
		}
		// One backing array for all fd entries: the capacity is exact, so
		// the appends never relocate the pointers already handed out.
		if len(n.fds) > 0 {
			entries := make([]fdEntry, 0, len(n.fds))
			for fd, e := range n.fds {
				entries = append(entries, fdEntry{Path: e.Path, Offset: e.Offset})
				nn.fds[fd] = &entries[len(entries)-1]
			}
		}
		if n.fault != nil {
			nn.fault = &kernelFault{
				start:     n.fault.start,
				window:    n.fault.window,
				corrupted: n.fault.corrupted,
				panicked:  n.fault.panicked,
			}
		}
		nk.nodes[pid] = nn
	}
	return nk
}

// cloneNode copies a frozen template node for a COW fork: file tables and
// counters are copied, file contents stay shared behind the base reference
// (tn belongs to a frozen kernel, so it can never change), and an open
// fault window clones with traced cleared, since the fork has no tracer
// holding the matching Begin.
func cloneNode(tn *node) *node {
	nn := &node{
		nextFD:  tn.nextFD,
		fdLimit: tn.fdLimit,
		edits:   tn.edits,
		Syscall: tn.Syscall,
		base:    tn,
	}
	if len(tn.fds) > 0 {
		nn.fds = make(map[int]*fdEntry, len(tn.fds))
		entries := make([]fdEntry, 0, len(tn.fds))
		for fd, e := range tn.fds {
			entries = append(entries, fdEntry{Path: e.Path, Offset: e.Offset})
			nn.fds[fd] = &entries[len(entries)-1]
		}
	} else {
		nn.fds = make(map[int]*fdEntry)
	}
	if tn.fault != nil {
		nn.fault = &kernelFault{
			start:     tn.fault.start,
			window:    tn.fault.window,
			corrupted: tn.fault.corrupted,
			panicked:  tn.fault.panicked,
		}
	}
	return nn
}

// ContentDigest returns a deterministic digest of every node's live
// filesystem contents and file tables — the kernel's contribution to a
// snapshot's content address.
func (k *Kernel) ContentDigest() uint64 {
	const mul = 0x9E3779B97F4A7C15
	h := uint64(0x8BADF00D5CA1AB1E)
	for _, pid := range k.pids() {
		n, _ := k.lookup(pid)
		h = (h ^ uint64(pid)) * mul
		set := make(map[string]bool, len(n.fs))
		n.addNames(set)
		paths := make([]string, 0, len(set))
		for p := range set {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			for _, c := range []byte(p) {
				h = (h ^ uint64(c)) * mul
			}
			data, _ := n.file(p)
			h = (h ^ uint64(len(data))) * mul
			for _, c := range data {
				h = (h ^ uint64(c)) * mul
			}
		}
		h = (h ^ uint64(n.nextFD)) * mul
		h = (h ^ uint64(len(n.fds))) * mul
	}
	return h
}
